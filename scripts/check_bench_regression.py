#!/usr/bin/env python3
"""Gate on campaign-throughput regressions between two BENCH_table3.json files.

Usage: check_bench_regression.py BASELINE.json FRESH.json [--threshold 0.30]

Absolute injections/sec are machine-dependent, so each cell is first
normalized by the same engine's serial cell (1 thread, checkpoint off) from
the same file: the compared quantity is "injections/sec relative to this
engine's seed path on the same machine" — i.e. the speedup the execution
model (checkpointing, threading, batching) delivers — which is stable across
runner generations where raw rates are not. A fresh cell slower than
(1 - threshold) x baseline fails the gate, as does a drop in the headline
bit-parallel-vs-levelized ratio (the one gated cross-engine number). Cells
whose baseline measurement is too short to be meaningful (< 0.25 s
simulated) are reported but not gated — dropped cells are always printed.

Cells with no baseline counterpart (the bench matrix grew, or the committed
baseline predates an engine) are reported as new and not gated: a stale
baseline must never crash the gate or block a run it cannot judge. A cell
that disappears from the fresh results, by contrast, still fails — losing
coverage is a regression — with one exception: when the fresh file is a
smoke run ("smoke": true) gated against a full-matrix baseline, the smoke
matrix is a deliberate subset, so baseline-only cells are reported and
skipped rather than failed.

Thread scaling is judged core-aware: the fresh file's packed_4t_over_1t
(packed-engine 4-thread over 1-thread rate, checkpoint on) must be >= 1.0
when the fresh run had >= 4 hardware_threads, and >= 0.75 otherwise — on a
1- or 2-core runner wall-clock speedup is physically impossible, so only
outright contention collapse fails.
"""

import argparse
import json
import sys


def load_cells(path):
    with open(path) as f:
        data = json.load(f)
    cells = {}
    for cell in data["cells"]:
        key = (cell["engine"], cell["threads"], cell["checkpoint"])
        cells[key] = cell
    return data, cells


def seed_rate(cells, engine):
    """Serial rate used to normalize `engine`'s cells, or None when the file
    has no usable (engine, 1 thread, ckpt off) cell — callers must then skip
    gating that engine rather than crash on a stale or partial file."""
    cell = cells.get((engine, 1, False))
    if cell is None or cell.get("inj_per_sec", 0) <= 0:
        return None
    return cell["inj_per_sec"]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max tolerated fractional regression")
    args = parser.parse_args()

    base_data, base_cells = load_cells(args.baseline)
    fresh_data, fresh_cells = load_cells(args.fresh)

    failures = []
    print(f"{'engine':>14} {'thr':>3} {'ckpt':>4} {'base-rel':>9} "
          f"{'fresh-rel':>9} {'ratio':>6}")
    for key in sorted(set(base_cells) | set(fresh_cells)):
        engine, threads, ckpt = key
        row = (f"{engine:>14} {threads:>3} {'on' if ckpt else 'off':>4}")
        base = base_cells.get(key)
        fresh = fresh_cells.get(key)
        if fresh is None:
            if fresh_data.get("smoke") and not base_data.get("smoke"):
                print(f"{row} {'?':>9} {'---':>9} {'':>6}  "
                      "(full-matrix cell, not in smoke run)")
            else:
                failures.append(f"cell {key} missing from fresh results")
                print(f"{row} {'?':>9} {'---':>9} {'':>6}"
                      "  << MISSING FRESH CELL")
            continue
        fresh_seed = seed_rate(fresh_cells, engine)
        fresh_rel = (fresh["inj_per_sec"] / fresh_seed
                     if fresh_seed else float("nan"))
        base_seed = seed_rate(base_cells, engine) if base else None
        if base is None or base_seed is None:
            why = ("no baseline cell" if base is None
                   else "baseline seed cell missing/degenerate")
            print(f"{row} {'---':>9} {fresh_rel:9.3f} {'':>6}  ({why}, "
                  "not gated)")
            continue
        base_rel = base["inj_per_sec"] / base_seed
        ratio = fresh_rel / base_rel if base_rel > 0 else float("inf")
        gated = base["sim_seconds"] >= 0.25
        flag = ""
        if ratio < 1.0 - args.threshold:
            if gated:
                failures.append(
                    f"cell {key}: {fresh_rel:.3f} vs baseline {base_rel:.3f} "
                    f"relative inj/s ({ratio:.2f}x)")
                flag = "  << REGRESSION"
            else:
                flag = "  (noisy cell, not gated)"
        print(f"{row} {base_rel:9.3f} {fresh_rel:9.3f} {ratio:6.2f}{flag}")

    if not fresh_data.get("all_identical", False):
        failures.append("fresh matrix cells disagree on campaign records")
    base_ratio = base_data.get("bitparallel_vs_levelized_1thread_ckpt", 0.0)
    fresh_ratio = fresh_data.get("bitparallel_vs_levelized_1thread_ckpt", 0.0)
    print(f"bit-parallel vs levelized: baseline {base_ratio:.2f}x, "
          f"fresh {fresh_ratio:.2f}x")
    if base_ratio > 0 and fresh_ratio < base_ratio * (1.0 - args.threshold):
        failures.append(
            f"bit-parallel speedup regressed: {fresh_ratio:.2f}x vs "
            f"baseline {base_ratio:.2f}x")

    scaling = fresh_data.get("packed_4t_over_1t", 0.0)
    hw = fresh_data.get("hardware_threads", 0)
    if scaling > 0.0:
        floor = 1.0 if hw >= 4 else 0.75
        print(f"packed 4T/1T scaling: {scaling:.2f}x on {hw} hardware "
              f"threads (floor {floor:.2f}x)")
        if scaling < floor:
            failures.append(
                f"packed 4-thread throughput {scaling:.2f}x of 1-thread "
                f"(floor {floor:.2f}x on {hw} hardware threads)")

    if failures:
        print("\nFAIL: throughput regression gate "
              f"(threshold {args.threshold:.0%}):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: all cells within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
