#!/usr/bin/env python3
"""Keep the documentation honest: dead links and CLI drift fail CI.

Two checks, both run by the CI `docs` job:

1. Markdown link check — every relative link in README.md, ROADMAP.md,
   and docs/*.md must point at a file (or file#anchor whose file) that
   exists in the repo. External http(s)/mailto links are not fetched.

2. CLI drift check — docs/CLI.md is compared against the live `--help`
   output of ssresf and ssresf_campaign, in both directions: a flag the
   binaries advertise but the page never mentions is missing
   documentation; a flag the page mentions but no binary advertises is
   stale documentation. Either direction fails.

Usage: check_docs.py [--repo-root DIR] [--ssresf BIN] [--campaign BIN]
                     [--skip-cli]

--skip-cli runs only the link check (for doc edits without a build).
"""

import argparse
import pathlib
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")


def check_links(root):
    """Returns a list of 'file: broken link' strings."""
    pages = [root / "README.md", root / "ROADMAP.md"]
    pages += sorted((root / "docs").glob("*.md"))
    failures = []
    for page in pages:
        if not page.exists():
            failures.append(f"{page}: page listed for checking does not exist")
            continue
        text = page.read_text(encoding="utf-8")
        # Fenced code blocks routinely contain array-index or shell text
        # that parses like a markdown link; links don't belong there anyway.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure same-page anchor: #section
                continue
            resolved = (page.parent / path).resolve()
            if not resolved.exists():
                failures.append(f"{page.relative_to(root)}: broken link "
                                f"'{target}'")
    return failures


def help_flags(binary):
    """Flags advertised by `binary --help` (it exits non-zero on some CLIs;
    only the text matters)."""
    proc = subprocess.run([binary, "--help"], capture_output=True, text=True)
    text = proc.stdout + proc.stderr
    if "usage:" not in text:
        raise RuntimeError(f"{binary} --help produced no usage text")
    return set(FLAG_RE.findall(text))


def check_cli(root, binaries):
    page = root / "docs" / "CLI.md"
    documented = set(FLAG_RE.findall(page.read_text(encoding="utf-8")))
    # Both binaries accept --help without listing it in their usage text.
    advertised = {"--help"}
    for binary in binaries:
        advertised |= help_flags(binary)
    failures = []
    for flag in sorted(advertised - documented):
        failures.append(f"docs/CLI.md: flag {flag} is in --help but "
                        "undocumented")
    for flag in sorted(documented - advertised):
        failures.append(f"docs/CLI.md: flag {flag} is documented but no "
                        "binary advertises it (stale)")
    return failures


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--repo-root", default=".")
    parser.add_argument("--ssresf", default="build/ssresf")
    parser.add_argument("--campaign", default="build/ssresf_campaign")
    parser.add_argument("--skip-cli", action="store_true",
                        help="only run the link check")
    args = parser.parse_args()
    root = pathlib.Path(args.repo_root).resolve()

    failures = check_links(root)
    if not args.skip_cli:
        failures += check_cli(root, [args.ssresf, args.campaign])

    if failures:
        print("FAIL: documentation checks:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("OK: links resolve and docs/CLI.md matches --help")
    return 0


if __name__ == "__main__":
    sys.exit(main())
