#pragma once

// Shared helpers for the paper-reproduction benches: scale selection,
// Table-I row construction, and campaign configuration.
//
// Every bench honours SSRESF_BENCH_SCALE = quick (default) | full. "quick"
// keeps the whole bench suite in minutes; "full" raises the sampling volume
// for tighter statistics.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/ssresf.h"
#include "soc/programs.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace ssresf::bench {

struct BenchScale {
  const char* name;
  double fraction;
  int min_per_cluster;
  int max_per_cluster;
  int memory_macro_draws;
  int cv_folds;
};

inline BenchScale bench_scale() {
  const char* env = std::getenv("SSRESF_BENCH_SCALE");
  if (env != nullptr && std::string(env) == "full") {
    return {"full", 0.03, 12, 64, 64, 10};
  }
  return {"quick", 0.005, 3, 12, 12, 8};
}

/// Cluster counts (KN) per Table I row, as reported in the paper.
inline int row_clusters(std::size_t row_index) {
  static constexpr int kn[10] = {5, 6, 8, 9, 14, 15, 18, 19, 21, 23};
  return row_index < 10 ? kn[row_index] : 8;
}

/// Builds the SoC for a Table I row, running the ISA-matched composite
/// benchmark workload (light variant: campaign cost stays bounded on the
/// 100k+-cell rows while every ISA extension still executes).
inline soc::SocModel build_row_soc(const soc::SocConfig& config) {
  const auto core_cfg = soc::CoreConfig::from_isa(config.cpu_isa);
  const soc::Workload workload =
      soc::benchmark_workload(core_cfg, /*light=*/true);
  const soc::Program programs[] = {soc::assemble(workload.source)};
  return soc::build_soc(config, programs);
}

inline fi::CampaignConfig row_campaign(std::size_t row_index,
                                       std::uint64_t seed = 2024) {
  const BenchScale scale = bench_scale();
  fi::CampaignConfig cfg;
  cfg.clustering.num_clusters = row_clusters(row_index);
  cfg.sampling.fraction = scale.fraction;
  cfg.sampling.min_per_cluster = scale.min_per_cluster;
  cfg.sampling.max_per_cluster = scale.max_per_cluster;
  cfg.sampling.memory_macro_draws = scale.memory_macro_draws;
  cfg.environment.flux = 5e8;
  cfg.environment.let = 37.0;
  cfg.seed = seed + row_index;
  return cfg;
}

inline std::string pct(double v) { return util::format("%.2f%%", v); }
inline std::string sci(double v) { return util::format("%.2e", v); }

}  // namespace ssresf::bench
