// Reproduces Fig. 7: the proportion of highly sensitive circuit nodes in
// the Memory / Bus / CPU-logic groups, measured by fault-injection
// simulation at flux 4e8..8e8 and predicted by the SVM classifier.
//
// Expected shape vs the paper: the per-module ordering is consistent
// between every simulation series and the SVM column (the paper finds
// bus >= memory >= CPU logic).
#include "bench_common.h"

#include "fi/sensitivity.h"
#include "util/error.h"

using namespace ssresf;

int main() {
  const auto scale = bench::bench_scale();
  std::printf("SSRESF Fig. 7 reproduction (scale: %s)\n", scale.name);
  std::printf("benchmark: PULP SoC1\n\n");

  const auto rows = soc::pulp_soc_table();
  const soc::SocModel model = bench::build_row_soc(rows[0]);
  const auto db = radiation::SoftErrorDatabase::default_database();

  util::Table table({"Series", "Memory", "Bus", "CPU Logic", "Peripheral"});
  auto add_series = [&](const std::string& name,
                        const std::array<double, netlist::kModuleClassCount>& percents) {
    table.add_row(
        {name,
         util::format("%.2f%%", percents[static_cast<int>(netlist::ModuleClass::kMemory)]),
         util::format("%.2f%%", percents[static_cast<int>(netlist::ModuleClass::kBus)]),
         util::format("%.2f%%", percents[static_cast<int>(netlist::ModuleClass::kCpu)]),
         util::format("%.2f%%",
                      percents[static_cast<int>(netlist::ModuleClass::kPeripheral)])});
  };

  int n = 0;
  for (const double flux : {4e8, 5e8, 6e8, 7e8, 8e8}) {
    fi::CampaignConfig cfg = bench::row_campaign(0, 555 + n);
    cfg.environment.flux = flux;
    cfg.sampling.fraction = std::max(cfg.sampling.fraction, 0.03);
    cfg.sampling.min_per_cluster = std::max(cfg.sampling.min_per_cluster, 12);
    const auto campaign = fi::run_campaign(model, cfg, db);
    add_series(util::format("Simulation-%.0e", flux),
               fi::high_sensitivity_percent_by_class(campaign));
    ++n;
    std::fflush(stdout);
  }

  // SVM prediction series over the fault-injection-list nodes.
  core::PipelineConfig pcfg;
  pcfg.campaign = bench::row_campaign(0, 556);  // the flux-5e8 series seed
  pcfg.campaign.sampling.fraction =
      std::max(pcfg.campaign.sampling.fraction, 0.03);
  pcfg.campaign.sampling.min_per_cluster =
      std::max(pcfg.campaign.sampling.min_per_cluster, 16);
  pcfg.campaign.sampling.memory_macro_draws =
      std::max(pcfg.campaign.sampling.memory_macro_draws, 24);
  pcfg.cv_folds = scale.cv_folds;
  pcfg.svm.kernel.gamma = 0.5;
  pcfg.svm.c = 4.0;
  try {
    const auto pipeline = core::run_pipeline(model, pcfg, db);
    add_series("SVM Classifier", pipeline.predicted_class_percent);
  } catch (const ssresf::Error& e) {
    std::printf("SVM series unavailable at this scale: %s\n", e.what());
  }

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference (Fig. 7): the distribution of highly sensitive\n"
      "nodes across bus / memory / CPU logic is consistent between the\n"
      "five simulation series and the SVM prediction. Note: the SVM series\n"
      "labels nodes by the cluster-level rule, so its absolute level sits\n"
      "above the per-injection simulation ratios; compare the ordering.\n");
  return 0;
}
