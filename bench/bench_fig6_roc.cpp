// Reproduces Fig. 6: the ROC curve of the SVM sensitive-node classifier
// (held-out decision values from 10-fold cross-validation).
//
// Expected shape vs the paper: the curve bows toward the upper-left corner;
// AUC well above the 0.5 diagonal.
#include <fstream>

#include "bench_common.h"

#include "util/csv.h"

using namespace ssresf;

int main() {
  const auto scale = bench::bench_scale();
  std::printf("SSRESF Fig. 6 reproduction (scale: %s)\n\n", scale.name);

  const auto rows = soc::pulp_soc_table();
  const soc::SocModel model = bench::build_row_soc(rows[0]);  // SoC1
  const auto db = radiation::SoftErrorDatabase::default_database();
  core::PipelineConfig cfg;
  cfg.campaign = bench::row_campaign(0, 777);
  cfg.campaign.sampling.fraction =
      std::max(cfg.campaign.sampling.fraction, 0.03);
  cfg.cv_folds = scale.cv_folds;
  cfg.svm.kernel.gamma = 0.5;
  cfg.svm.c = 4.0;
  const auto result = core::run_pipeline(model, cfg, db);

  const auto curve = ml::roc_curve(result.cv.decision_values, result.cv.labels);
  const double auc = ml::roc_auc(curve);

  // ASCII rendering of the curve plus a CSV dump for plotting.
  constexpr int kGrid = 20;
  char plot[kGrid][kGrid + 1];
  for (int r = 0; r < kGrid; ++r) {
    for (int c = 0; c < kGrid; ++c) plot[r][c] = r == kGrid - 1 - c ? '.' : ' ';
    plot[r][kGrid] = '\0';
  }
  for (const auto& p : curve) {
    const int col = std::min(kGrid - 1, static_cast<int>(p.fpr * kGrid));
    const int row_idx =
        std::min(kGrid - 1, kGrid - 1 - static_cast<int>(p.tpr * (kGrid - 1)));
    plot[row_idx][col] = '*';
  }
  std::printf("TPR\n");
  for (int r = 0; r < kGrid; ++r) std::printf(" |%s\n", plot[r]);
  std::printf(" +%s FPR\n\n", std::string(kGrid, '-').c_str());

  util::Table table({"FPR", "TPR", "threshold"});
  for (std::size_t i = 0; i < curve.size();
       i += std::max<std::size_t>(1, curve.size() / 16)) {
    table.add_row({util::format("%.3f", curve[i].fpr),
                   util::format("%.3f", curve[i].tpr),
                   util::format("%.3f", curve[i].threshold)});
  }
  table.add_row({util::format("%.3f", curve.back().fpr),
                 util::format("%.3f", curve.back().tpr), "-inf"});
  std::printf("%s\nAUC = %.4f\n", table.render().c_str(), auc);

  std::ofstream csv_file("fig6_roc.csv");
  util::CsvWriter csv(csv_file);
  csv.header({"fpr", "tpr", "threshold"});
  for (const auto& p : curve) {
    csv.row({util::CsvWriter::num(p.fpr), util::CsvWriter::num(p.tpr),
             util::CsvWriter::num(p.threshold)});
  }
  std::printf("full curve written to fig6_roc.csv\n");
  std::printf(
      "Paper reference (Fig. 6): ROC bows to the upper-left corner\n"
      "(AUC visibly near 0.9).\n");
  return 0;
}
