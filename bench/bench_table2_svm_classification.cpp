// Reproduces Table II: TNR / TPR / precision / accuracy / F1 of the SVM
// sensitive-node classifier on each of the 10 SoC benchmarks (10-fold CV),
// plus the average row.
//
// Expected shape vs the paper: all metrics in the ~0.8-1.0 band, TNR
// somewhat above TPR, average accuracy near the paper's 87.69%.
#include "bench_common.h"

#include "util/error.h"

using namespace ssresf;

int main() {
  const auto scale = bench::bench_scale();
  std::printf("SSRESF Table II reproduction (scale: %s)\n\n", scale.name);

  const auto db = radiation::SoftErrorDatabase::default_database();
  util::Table table({"Benchmark", "TNR", "TPR", "Precision", "Accuracy",
                     "F1 Score", "Nodes"});
  ml::Dataset cache_check_data;
  ml::SvmConfig cache_check_cfg;
  double sum_tnr = 0;
  double sum_tpr = 0;
  double sum_prec = 0;
  double sum_acc = 0;
  double sum_f1 = 0;
  int rows_done = 0;

  const auto rows = soc::pulp_soc_table();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const soc::SocModel model = bench::build_row_soc(rows[i]);
    core::PipelineConfig cfg;
    cfg.campaign = bench::row_campaign(i, 4096);
    // The classifier needs enough labeled nodes per row; keep a floor even
    // at quick scale.
    cfg.campaign.sampling.fraction =
        std::max(cfg.campaign.sampling.fraction, 0.02);
    cfg.campaign.sampling.min_per_cluster =
        std::max(cfg.campaign.sampling.min_per_cluster, 6);
    cfg.campaign.sampling.max_per_cluster =
        std::min(cfg.campaign.sampling.max_per_cluster, 18);
    cfg.campaign.sampling.memory_macro_draws =
        std::max(cfg.campaign.sampling.memory_macro_draws, 18);
    cfg.cv_folds = scale.cv_folds;
    cfg.svm.kernel.type = ml::KernelType::kRbf;
    cfg.svm.kernel.gamma = 0.5;
    cfg.svm.c = 4.0;
    core::PipelineResult result;
    try {
      result = core::run_pipeline(model, cfg, db);
    } catch (const ssresf::Error& e) {
      // A campaign can observe zero soft errors at quick scale, leaving a
      // single-class dataset the SVM cannot train on.
      table.add_row({rows[i].name, "n/a", "n/a", "n/a", "n/a", "n/a",
                     std::string("(") + e.what() + ")"});
      continue;
    }
    if (result.dataset.size() > cache_check_data.size()) {
      cache_check_data = result.dataset;
      cache_check_cfg = cfg.svm;
    }
    const auto& cm = result.cv.aggregate;
    table.add_row({rows[i].name, util::format("%.2f%%", 100 * cm.tnr()),
                   util::format("%.2f%%", 100 * cm.tpr()),
                   util::format("%.2f%%", 100 * cm.precision()),
                   util::format("%.2f%%", 100 * cm.accuracy()),
                   util::format("%.2f", cm.f1()),
                   std::to_string(result.dataset.size())});
    sum_tnr += cm.tnr();
    sum_tpr += cm.tpr();
    sum_prec += cm.precision();
    sum_acc += cm.accuracy();
    sum_f1 += cm.f1();
    ++rows_done;
    std::fflush(stdout);
  }
  const double n = rows_done;
  table.add_row({"Average", util::format("%.2f%%", 100 * sum_tnr / n),
                 util::format("%.2f%%", 100 * sum_tpr / n),
                 util::format("%.2f%%", 100 * sum_prec / n),
                 util::format("%.2f%%", 100 * sum_acc / n),
                 util::format("%.2f", sum_f1 / n), ""});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference (Table II): average TNR 90.91%%, TPR 83.56%%,\n"
      "precision 87.77%%, accuracy 87.69%%, F1 0.86.\n");

  // Regression guard for the SMO Q-row LRU cache: training a Table-II-sized
  // dataset must not spend more kernel evaluations than the old triangular
  // full-matrix precompute, n(n+1)/2 (the cache reaches exactly that bound
  // when every row fits, and must never exceed it on these sizes).
  if (cache_check_data.size() >= 2) {
    ml::SvmClassifier probe(cache_check_cfg);
    util::Timer train_timer;
    probe.train(cache_check_data);
    const double train_s = train_timer.seconds();
    const std::uint64_t n = cache_check_data.size();
    const std::uint64_t full_matrix = n * (n + 1) / 2;
    std::printf(
        "\nSMO kernel cache: n=%llu, %llu kernel evals (full-matrix "
        "precompute: %llu), train %.3fs\n",
        static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(probe.kernel_evals()),
        static_cast<unsigned long long>(full_matrix), train_s);
    if (probe.kernel_evals() > full_matrix) {
      std::fprintf(stderr,
                   "FAIL: SMO kernel-row cache regressed past the full-matrix "
                   "precompute\n");
      return 1;
    }
  }
  return 0;
}
