// Reproduces Fig. 5: mean 10-fold cross-validation score of the SVM model
// as a function of the number of (Fisher-ranked) features included.
//
// Expected shape vs the paper: the score climbs steeply for the first few
// features and plateaus (the paper peaks at 6 of its candidate features);
// extra weak features add little or slightly hurt.
#include "bench_common.h"

#include "ml/feature_selection.h"

using namespace ssresf;

int main() {
  const auto scale = bench::bench_scale();
  std::printf("SSRESF Fig. 5 reproduction (scale: %s)\n\n", scale.name);

  // One mid-size SoC provides the sensitive-node dataset.
  const auto rows = soc::pulp_soc_table();
  const soc::SocModel model = bench::build_row_soc(rows[2]);  // SoC3
  const auto db = radiation::SoftErrorDatabase::default_database();
  auto campaign_cfg = bench::row_campaign(2);
  campaign_cfg.sampling.fraction = std::max(campaign_cfg.sampling.fraction, 0.03);
  const auto campaign = fi::run_campaign(model, campaign_cfg, db);
  const auto dataset = core::build_dataset(model, campaign);
  std::printf("dataset: %zu nodes (%zu high / %zu low), %zu features\n\n",
              dataset.size(), dataset.count_label(1), dataset.count_label(-1),
              dataset.num_features());

  ml::SvmConfig svm;
  svm.kernel.type = ml::KernelType::kRbf;
  svm.kernel.gamma = 0.5;
  svm.c = 4.0;
  util::Rng rng(97);
  const auto selection =
      ml::select_features(dataset, svm, scale.cv_folds, rng);

  util::Table table({"#features", "added feature", "mean CV score"});
  for (std::size_t k = 0; k < selection.cv_score_by_count.size(); ++k) {
    const int feature = selection.ranked[k];
    table.add_row({std::to_string(k + 1),
                   dataset.feature_names()[static_cast<std::size_t>(feature)],
                   util::format("%.4f", selection.cv_score_by_count[k])});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("selected feature count: %d (paper: 6)\n", selection.best_count);
  std::printf(
      "Paper reference (Fig. 5): score rises from ~0.35 at 1 feature to\n"
      "~0.9 at 6 features, then flattens.\n");
  return 0;
}
