// Micro-benchmarks (google-benchmark) for the design choices DESIGN.md
// calls out:
//  - Eq. 1 clustering: scope-level fast path vs the naive cell-level
//    algorithm;
//  - simulation engines: event-driven vs levelized throughput on the same
//    SoC workload;
//  - SMO training cost vs dataset size.
#include <benchmark/benchmark.h>

#include "cluster/kcluster.h"
#include "ml/svm.h"
#include "netlist/builder.h"
#include "soc/assembler.h"
#include "soc/programs.h"
#include "soc/run.h"
#include "soc/soc.h"

namespace {

using namespace ssresf;

netlist::Netlist clustering_design(int leaves, int cells_per_leaf) {
  netlist::NetlistBuilder b("t");
  const auto in = b.input("in");
  std::vector<netlist::NetId> outs;
  for (int m = 0; m < leaves; ++m) {
    const auto outer = b.scope("mod" + std::to_string(m / 4));
    const auto inner = b.scope("leaf" + std::to_string(m));
    auto x = in;
    for (int i = 0; i < cells_per_leaf; ++i) x = b.inv(x);
    outs.push_back(x);
  }
  for (std::size_t i = 0; i < outs.size(); ++i) {
    b.output(outs[i], "o" + std::to_string(i));
  }
  return b.finish();
}

void BM_ClusteringScopeLevel(benchmark::State& state) {
  const auto nl = clustering_design(16, static_cast<int>(state.range(0)));
  cluster::ClusteringConfig cfg;
  cfg.num_clusters = 6;
  cfg.expand_memory_weight = false;
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(cluster::cluster_cells(nl, cfg, rng));
  }
  state.SetLabel(std::to_string(nl.num_cells()) + " cells");
}
BENCHMARK(BM_ClusteringScopeLevel)->Arg(8)->Arg(32)->Arg(128);

void BM_ClusteringNaive(benchmark::State& state) {
  const auto nl = clustering_design(16, static_cast<int>(state.range(0)));
  cluster::ClusteringConfig cfg;
  cfg.num_clusters = 6;
  cfg.expand_memory_weight = false;
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(cluster::naive_cluster_cells(nl, cfg, rng));
  }
  state.SetLabel(std::to_string(nl.num_cells()) + " cells");
}
BENCHMARK(BM_ClusteringNaive)->Arg(8)->Arg(32);

const soc::SocModel& shared_soc() {
  static const soc::SocModel model = [] {
    soc::SocConfig cfg;
    cfg.mem_bytes = 16 * 1024;
    cfg.cpu_isa = "RV32I";
    cfg.bus_width_bits = 64;
    cfg.bus = soc::BusProtocol::kAhb;
    const soc::Program programs[] = {
        soc::assemble(soc::checksum_workload(8).source)};
    return soc::build_soc(cfg, programs);
  }();
  return model;
}

void BM_EventEngineRun(benchmark::State& state) {
  const auto& model = shared_soc();
  soc::SocRunner runner(model, sim::EngineKind::kEvent);
  for (auto _ : state) {
    runner.engine().reset_state();
    sim::TestbenchConfig cfg;
    cfg.clk = model.clk;
    cfg.rstn = model.rstn;
    cfg.monitored = model.monitored;
    cfg.clock_period_ps = soc::pick_clock_period(model.netlist);
    sim::Testbench tb(runner.engine(), cfg);
    tb.reset();
    tb.run_cycles(static_cast<int>(state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventEngineRun)->Arg(64)->Arg(256);

void BM_LevelizedEngineRun(benchmark::State& state) {
  const auto& model = shared_soc();
  auto engine = sim::make_engine(sim::EngineKind::kLevelized, model.netlist);
  for (auto _ : state) {
    engine->reset_state();
    sim::TestbenchConfig cfg;
    cfg.clk = model.clk;
    cfg.rstn = model.rstn;
    cfg.monitored = model.monitored;
    cfg.clock_period_ps = soc::pick_clock_period(model.netlist);
    sim::Testbench tb(*engine, cfg);
    tb.reset();
    tb.run_cycles(static_cast<int>(state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LevelizedEngineRun)->Arg(64)->Arg(256);

void BM_SmoTraining(benchmark::State& state) {
  util::Rng rng(5);
  ml::Dataset d({"x", "y"});
  for (int i = 0; i < state.range(0); ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    d.add({rng.uniform(-1, 1) + label, rng.uniform(-1, 1)}, label);
  }
  ml::SvmConfig cfg;
  cfg.kernel.gamma = 0.7;
  for (auto _ : state) {
    ml::SvmClassifier model(cfg);
    model.train(d);
    benchmark::DoNotOptimize(model.num_support_vectors());
  }
}
BENCHMARK(BM_SmoTraining)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
