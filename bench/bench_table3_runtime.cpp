// Reproduces Table III: runtime comparison between full fault-injection
// simulation on the two engines (the roles of Synopsys VCS and OSS-CVC)
// and SVM model prediction, across flux 4e8..8e8, with the model's
// agreement ("Model Accuracy") per flux.
//
// Expected shape vs the paper: simulation runtime grows with flux (more
// injections to simulate), prediction time is flat and far smaller; the
// paper reports 11.44x / 12.78x average speed-ups at 94.58% accuracy.
//
// Also benchmarks the campaign execution engine itself: a throughput matrix
// over {engine: event / levelized / bit-parallel / bit-parallel-256} x
// {threads} x {checkpoint on/off}, in injections per second and speedup
// against the serial seed path (1 thread, no checkpoint, no early exit).
// Packed rows are additionally checked record-identical against the
// levelized reference (the engines share the zero-delay timing model). The
// matrix is emitted as machine-readable BENCH_table3.json for CI artifacts,
// stamped with hardware_threads so downstream gates can judge thread
// scaling relative to the cores that were actually available (a 1-core
// container cannot show wall-clock speedup at any thread count).
// SSRESF_BENCH_SMOKE=1 runs a trimmed matrix at a smaller injection volume
// and skips the flux/ML table (the CI smoke mode); the full matrix raises
// sampling until the campaign exceeds 2000 injections per cell so the
// rates are steady-state, not fixed-cost noise.
#include <fstream>
#include <thread>

#include "bench_common.h"

using namespace ssresf;

namespace {

double campaign_runtime(const soc::SocModel& model, sim::EngineKind engine,
                        fi::CampaignConfig cfg,
                        const radiation::SoftErrorDatabase& db,
                        fi::CampaignResult* out = nullptr) {
  cfg.engine = engine;
  util::Timer timer;
  auto result = fi::run_campaign(model, cfg, db);
  const double seconds = timer.seconds();
  if (out != nullptr) *out = std::move(result);
  return seconds;
}

/// A row family of the throughput matrix: an engine plus its lane width
/// (the packed engine appears twice, at 64 and 256 lanes).
struct EngineVariant {
  sim::EngineKind kind;
  int lanes;
  const char* name;
};

constexpr EngineVariant kVariants[] = {
    {sim::EngineKind::kEvent, 64, "event"},
    {sim::EngineKind::kLevelized, 64, "levelized"},
    {sim::EngineKind::kBitParallel, 64, "bit-parallel"},
    {sim::EngineKind::kBitParallel, 256, "bit-parallel-256"},
};

struct MatrixCell {
  const char* engine;
  int threads;
  bool checkpoint;
  int lanes;
  std::size_t injections;
  double sim_seconds;
  double inj_per_sec;
  double speedup;
  bool identical;
};

bool records_identical(const fi::CampaignResult& a,
                       const fi::CampaignResult& b) {
  if (a.records.size() != b.records.size() ||
      a.chip_ser_percent != b.chip_ser_percent) {
    return false;
  }
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (a.records[i].soft_error != b.records[i].soft_error ||
        a.records[i].event.time_ps != b.records[i].event.time_ps ||
        a.records[i].first_mismatch_cycle !=
            b.records[i].first_mismatch_cycle) {
      return false;
    }
  }
  return true;
}

void write_bench_json(const std::vector<MatrixCell>& cells,
                      double bitparallel_speedup, double packed_4t_over_1t,
                      bool all_identical, bool smoke) {
  std::ofstream out("BENCH_table3.json");
  out << "{\n  \"benchmark\": \"table3_campaign_throughput\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"bitparallel_vs_levelized_1thread_ckpt\": "
      << util::format("%.3f", bitparallel_speedup) << ",\n"
      << "  \"packed_4t_over_1t\": "
      << util::format("%.3f", packed_4t_over_1t) << ",\n"
      << "  \"all_identical\": " << (all_identical ? "true" : "false")
      << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const MatrixCell& c = cells[i];
    out << "    {\"engine\": \"" << c.engine << "\", \"threads\": " << c.threads
        << ", \"checkpoint\": " << (c.checkpoint ? "true" : "false")
        << ", \"lanes\": " << c.lanes
        << ", \"injections\": " << c.injections
        << ", \"sim_seconds\": " << util::format("%.4f", c.sim_seconds)
        << ", \"inj_per_sec\": " << util::format("%.2f", c.inj_per_sec)
        << ", \"speedup\": " << util::format("%.3f", c.speedup)
        << ", \"identical\": " << (c.identical ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int run_throughput_matrix(const soc::SocModel& model,
                          const radiation::SoftErrorDatabase& db, bool smoke) {
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf(
      "campaign throughput matrix (baseline: 1 thread, checkpoint off,\n"
      "early exit off = the serial seed path; %u hardware threads)\n",
      hw_threads);
  util::Table table({"Engine", "Threads", "Checkpoint", "Injections",
                     "Sim (s)", "Inj/s", "Speedup", "Identical"});
  // Checkpoint-on rows carry the thread-scaling story, so the full matrix
  // sweeps {1,2,4,8} there; checkpoint-off rows only anchor the serial seed
  // rate and get a trimmed sweep (they are the slowest cells by far).
  const std::vector<int> ckpt_threads =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> nockpt_threads = std::vector<int>{1, 4};

  std::vector<MatrixCell> cells;
  bool all_identical = true;
  // Injections/sec at {1 thread, checkpoint on} per engine, for the
  // headline acceptance ratios.
  double level_ckpt_rate = 0.0;
  double bitpar_ckpt_rate = 0.0;
  // Packed-engine thread scaling (checkpoint on): rate at 4 threads over
  // rate at 1 thread, best of the two lane widths.
  double packed_1t_rate = 0.0;
  double packed_4t_rate = 0.0;
  fi::CampaignResult levelized_reference;
  bool have_levelized_reference = false;

  for (const EngineVariant& variant : kVariants) {
    double base_rate = 0.0;
    bool have_reference = false;
    fi::CampaignResult reference;
    for (const bool checkpoint : {false, true}) {
      for (const int threads : checkpoint ? ckpt_threads : nockpt_threads) {
        fi::CampaignConfig cfg = bench::row_campaign(0, 90210);
        // Throughput is a steady-state metric: raise the injection volume
        // above the quick-scale default so per-campaign fixed costs (golden
        // run, clustering, checkpoint ladder) do not dominate the rates.
        // The full matrix pushes past 2000 injections per cell; smoke keeps
        // the volume small enough for the CI time budget.
        if (smoke) {
          cfg.sampling.fraction = 0.05;
          cfg.sampling.min_per_cluster = 10;
          cfg.sampling.max_per_cluster = 48;
          cfg.sampling.memory_macro_draws = 40;
        } else {
          cfg.sampling.fraction = 1.0;
          cfg.sampling.min_per_cluster = 64;
          cfg.sampling.max_per_cluster = 1000;
          cfg.sampling.memory_macro_draws = 320;
        }
        cfg.engine = variant.kind;
        cfg.lanes = variant.lanes;
        cfg.threads = threads;
        cfg.use_checkpoint = checkpoint;
        // "Checkpoint off" disables the whole fast path: the seed execution
        // model of one full re-simulation per fault.
        cfg.early_exit = checkpoint;
        cfg.masked_exit = checkpoint;
        const auto result = fi::run_campaign(model, cfg, db);

        // Bit-identical results across every cell of the matrix; the
        // packed engines must also match the levelized records.
        bool identical = true;
        if (!have_reference) {
          reference = result;
          have_reference = true;
        } else {
          identical = records_identical(result, reference);
        }
        if (variant.kind == sim::EngineKind::kLevelized &&
            !have_levelized_reference) {
          levelized_reference = result;
          have_levelized_reference = true;
        }
        if (variant.kind == sim::EngineKind::kBitParallel &&
            have_levelized_reference) {
          identical = identical && records_identical(result, levelized_reference);
        }
        all_identical = all_identical && identical;

        const double rate =
            static_cast<double>(result.records.size()) /
            std::max(result.simulation_seconds, 1e-9);
        if (!checkpoint && threads == 1) base_rate = rate;
        if (checkpoint && threads == 1) {
          if (variant.kind == sim::EngineKind::kLevelized) {
            level_ckpt_rate = rate;
          }
          if (variant.kind == sim::EngineKind::kBitParallel &&
              variant.lanes == 64) {
            bitpar_ckpt_rate = rate;
          }
        }
        if (checkpoint && variant.kind == sim::EngineKind::kBitParallel) {
          if (threads == 1) packed_1t_rate = std::max(packed_1t_rate, rate);
          if (threads == 4) packed_4t_rate = std::max(packed_4t_rate, rate);
        }
        cells.push_back({variant.name, threads, checkpoint, variant.lanes,
                         result.records.size(), result.simulation_seconds,
                         rate, rate / base_rate, identical});
        table.add_row({variant.name, std::to_string(threads),
                       checkpoint ? "on" : "off",
                       std::to_string(result.records.size()),
                       util::format("%.2f", result.simulation_seconds),
                       util::format("%.1f", rate),
                       util::format("%.2fx", rate / base_rate),
                       identical ? "yes" : "NO"});
        std::fflush(stdout);
      }
    }
  }
  std::printf("%s\n", table.render().c_str());

  const double word_speedup =
      level_ckpt_rate > 0 ? bitpar_ckpt_rate / level_ckpt_rate : 0.0;
  const double packed_scaling =
      packed_1t_rate > 0 ? packed_4t_rate / packed_1t_rate : 0.0;
  std::printf(
      "bit-parallel vs levelized (1 thread, checkpoint on): %.2fx "
      "injections/sec, records %s\n",
      word_speedup, all_identical ? "identical" : "NOT IDENTICAL");
  std::printf(
      "packed engine 4 threads vs 1 thread (checkpoint on): %.2fx on %u "
      "hardware threads\n\n",
      packed_scaling, hw_threads);
  write_bench_json(cells, word_speedup, packed_scaling, all_identical, smoke);
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: matrix cells disagree on campaign records\n");
    return 1;
  }
  // Thread-scaling gate, judged against the cores actually available: on a
  // >= 4-core machine 4 campaign workers must beat 1 (the historical bug
  // this pins was 4 threads running *slower* than 1 due to false sharing
  // and per-injection allocation churn); on fewer cores wall-clock speedup
  // is physically impossible, so the gate only rejects outright collapse
  // from contention overhead.
  const double floor = hw_threads >= 4 ? 1.0 : 0.75;
  if (packed_scaling > 0.0 && packed_scaling < floor) {
    std::fprintf(stderr,
                 "FAIL: packed 4-thread throughput %.2fx of 1-thread "
                 "(floor %.2fx on %u hardware threads)\n",
                 packed_scaling, floor, hw_threads);
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  const auto scale = bench::bench_scale();
  std::printf("SSRESF Table III reproduction (scale: %s)\n", scale.name);
  std::printf("benchmark: PULP SoC1, injection volume scales with flux\n\n");

  const auto rows = soc::pulp_soc_table();
  const soc::SocModel model = bench::build_row_soc(rows[0]);
  const auto db = radiation::SoftErrorDatabase::default_database();

  const char* smoke_env = std::getenv("SSRESF_BENCH_SMOKE");
  const bool smoke = smoke_env != nullptr && std::string(smoke_env) == "1";
  const int matrix_status = run_throughput_matrix(model, db, smoke);
  if (smoke || matrix_status != 0) return matrix_status;

  util::Table table({"Flux", "Event sim (s)", "Levelized sim (s)",
                     "Model pred (s)", "Speedup(evt)", "Speedup(lvl)",
                     "Model accuracy"});
  double sum_s_event = 0;
  double sum_s_level = 0;
  double sum_acc = 0;
  int n = 0;

  for (const double flux : {4e8, 5e8, 6e8, 7e8, 8e8}) {
    fi::CampaignConfig cfg = bench::row_campaign(0, 31337 + n);
    cfg.environment.flux = flux;
    // The fault-injection volume follows the expected number of beam
    // upsets: more flux, more events to simulate (as in the paper's
    // growing VCS runtimes).
    const double flux_factor = flux / 4e8;
    cfg.sampling.fraction *= flux_factor;
    cfg.sampling.min_per_cluster =
        static_cast<int>(cfg.sampling.min_per_cluster * flux_factor);
    cfg.sampling.memory_macro_draws =
        static_cast<int>(cfg.sampling.memory_macro_draws * flux_factor);

    fi::CampaignResult event_result;
    const double s_event =
        campaign_runtime(model, sim::EngineKind::kEvent, cfg, db, &event_result);
    const double s_level =
        campaign_runtime(model, sim::EngineKind::kLevelized, cfg, db);

    // ML phase: train on the event campaign's dataset, measure prediction
    // over every node of the netlist, accuracy from held-out CV folds.
    core::PipelineConfig pcfg;
    pcfg.campaign = cfg;
    pcfg.cv_folds = scale.cv_folds;
    pcfg.svm.kernel.gamma = 0.5;
    pcfg.svm.c = 4.0;
    const auto pipeline = core::run_pipeline(model, pcfg, db);
    const double s_model = pipeline.train_seconds + pipeline.predict_seconds;
    const double accuracy = pipeline.model_accuracy();

    table.add_row({util::format("%.0e", flux), util::format("%.2f", s_event),
                   util::format("%.2f", s_level),
                   util::format("%.4f", s_model),
                   util::format("%.1fx", s_event / s_model),
                   util::format("%.1fx", s_level / s_model),
                   util::format("%.1f%%", 100 * accuracy)});
    sum_s_event += s_event / s_model;
    sum_s_level += s_level / s_model;
    sum_acc += accuracy;
    ++n;
    std::fflush(stdout);
  }
  table.add_row({"Avg.", "", "", "", util::format("%.1fx", sum_s_event / n),
                 util::format("%.1fx", sum_s_level / n),
                 util::format("%.1f%%", 100 * sum_acc / n)});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference (Table III): VCS 170-380s, CVC 200-410s, model\n"
      "~24s; average speed-ups 11.44x (VCS) and 12.78x (CVC) at 94.58%%\n"
      "average accuracy. Our absolute times are smaller (simulated\n"
      "substrate); compare the growth with flux and the sim >> model gap.\n");
  return 0;
}
