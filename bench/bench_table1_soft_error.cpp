// Reproduces Table I: soft-error results for the different functional
// modules of the 10 PULP SoC configurations — per-module SER, cluster
// count, and total SET/SEU cross-sections.
//
// Expected shape vs the paper: SER(bus) and SER(memory) above SER(CPU
// logic) on most rows; SER rising with memory size / bus width / core
// count; rad-hard SRAM (SoC10) well below the SRAM/DRAM rows; cluster
// count and cross-sections growing monotonically with SoC complexity.
#include "bench_common.h"

#include "fi/sensitivity.h"

using namespace ssresf;

int main() {
  const auto scale = bench::bench_scale();
  std::printf("SSRESF Table I reproduction (scale: %s)\n", scale.name);
  std::printf("flux 5e8 p/cm^2/s, LET 37, per-row seeds fixed\n\n");

  const auto db = radiation::SoftErrorDatabase::default_database();
  util::Table table({"Benchmark", "Memory", "Size", "Mem SER", "Bus", "Width",
                     "Bus SER", "CPU", "Cores", "CPU SER", "Clusters",
                     "SET Xsect", "SEU Xsect", "Samples", "Time"});

  const auto rows = soc::pulp_soc_table();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const soc::SocConfig& cfg = rows[i];
    util::Timer timer;
    const soc::SocModel model = bench::build_row_soc(cfg);
    const auto result =
        fi::run_campaign(model, bench::row_campaign(i), db);

    const auto& mem = result.per_class[static_cast<int>(netlist::ModuleClass::kMemory)];
    const auto& bus = result.per_class[static_cast<int>(netlist::ModuleClass::kBus)];
    const auto& cpu = result.per_class[static_cast<int>(netlist::ModuleClass::kCpu)];
    table.add_row({cfg.name, std::string(netlist::mem_tech_name(cfg.mem_tech)),
                   cfg.mem_size_string(), bench::pct(mem.ser_percent),
                   std::string(soc::bus_protocol_name(cfg.bus)),
                   std::to_string(cfg.bus_width_bits),
                   bench::pct(bus.ser_percent), cfg.cpu_isa,
                   std::to_string(cfg.num_cores), bench::pct(cpu.ser_percent),
                   std::to_string(result.clusters.size()),
                   bench::sci(result.set_xsect_cm2),
                   bench::sci(result.seu_xsect_cm2),
                   std::to_string(result.records.size()),
                   util::format("%.1fs", timer.seconds())});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference (Table I): SER rows 0.03%%-1.39%%; SET xsect\n"
      "1.1e-3..1.1e-2 cm^2; SEU xsect 1.3e-3..1.4e-2 cm^2; clusters 5..23.\n"
      "Absolute values differ (simulated substrate, calibrated database);\n"
      "compare ordering and growth trends.\n");
  return 0;
}
