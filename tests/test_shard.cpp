// The distributed campaign layer: deterministic shard partitioning, the
// shard file format (write + streaming read), and the merge path. The core
// guarantee under test is the acceptance criterion of the distribution
// model: merged records from an N-shard run are byte-identical to the
// single-process run_campaign output for the same seed, for any N.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "fi/campaign_exec.h"
#include "fi/golden_bundle.h"
#include "fi/shard.h"
#include "soc/programs.h"
#include "util/error.h"
#include "util/subprocess.h"

namespace ssresf {
namespace {

namespace fs = std::filesystem;

soc::SocModel small_soc() {
  soc::SocConfig cfg;
  cfg.name = "shard-soc";
  cfg.mem_bytes = 8 * 1024;
  cfg.cpu_isa = "RV32I";
  cfg.bus = soc::BusProtocol::kAhb;
  const soc::Workload w = soc::checksum_workload(6);
  const soc::Program programs[] = {soc::assemble(w.source)};
  return soc::build_soc(cfg, programs);
}

fi::CampaignConfig small_campaign(std::uint64_t seed = 17) {
  fi::CampaignConfig cfg;
  cfg.engine = sim::EngineKind::kLevelized;
  cfg.clustering.num_clusters = 5;
  cfg.sampling.fraction = 0.01;
  cfg.sampling.min_per_cluster = 4;
  cfg.sampling.max_per_cluster = 10;
  cfg.sampling.memory_macro_draws = 8;
  cfg.seed = seed;
  cfg.threads = 2;
  return cfg;
}

/// Unique scratch path under the gtest temp dir.
std::string scratch_file(const std::string& name) {
  return (fs::path(testing::TempDir()) / ("ssresf_" + name)).string();
}

fi::ShardFileMeta meta_for(const soc::SocModel& model,
                           const fi::CampaignConfig& config,
                           const fi::ShardRunResult& run, int index,
                           int count) {
  fi::ShardFileMeta meta;
  meta.seed = config.seed;
  meta.shard_index = static_cast<std::uint32_t>(index);
  meta.shard_count = static_cast<std::uint32_t>(count);
  meta.total_injections = run.total_injections;
  meta.config_digest = fi::campaign_config_digest(model, config);
  meta.num_records = run.records.size();
  return meta;
}

TEST(Shard, SpecOwnershipPartitionsIndices) {
  const fi::ShardSpec a{0, 3};
  const fi::ShardSpec b{1, 3};
  const fi::ShardSpec c{2, 3};
  for (std::uint64_t i = 0; i < 100; ++i) {
    const int owners = (a.owns(i) ? 1 : 0) + (b.owns(i) ? 1 : 0) +
                       (c.owns(i) ? 1 : 0);
    EXPECT_EQ(owners, 1) << "index " << i;
  }
  EXPECT_TRUE((fi::ShardSpec{0, 1}.owns(12345)));
}

TEST(Shard, RejectsOutOfRangeSpecs) {
  const soc::SocModel model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignConfig config = small_campaign();
  EXPECT_THROW((void)fi::run_campaign_shard(model, config, db, {2, 2}),
               InvalidArgument);
  EXPECT_THROW((void)fi::run_campaign_shard(model, config, db, {-1, 2}),
               InvalidArgument);
  EXPECT_THROW((void)fi::run_campaign_shard(model, config, db, {0, 0}),
               InvalidArgument);
}

TEST(Shard, MergedShardsAreByteIdenticalToSingleProcess) {
  const soc::SocModel model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignConfig config = small_campaign();

  const fi::CampaignResult baseline = fi::run_campaign(model, config, db);
  ASSERT_GT(baseline.records.size(), 8u);

  for (const int count : {1, 2, 7}) {
    std::vector<std::string> paths;
    for (int k = 0; k < count; ++k) {
      const fi::ShardRunResult run =
          fi::run_campaign_shard(model, config, db, {k, count});
      EXPECT_EQ(run.total_injections, baseline.records.size());
      for (const fi::ShardRecord& r : run.records) {
        EXPECT_TRUE((fi::ShardSpec{k, count}.owns(r.index)));
      }
      const std::string path = scratch_file("merge_" + std::to_string(count) +
                                            "_" + std::to_string(k) + ".ssfs");
      fi::write_shard_file(path, meta_for(model, config, run, k, count),
                           run.records);
      paths.push_back(path);
    }
    const fi::CampaignResult merged =
        fi::merge_shard_files(model, config, db, paths);

    // Records byte-identical, and every aggregate derived from them too.
    ASSERT_EQ(merged.records.size(), baseline.records.size());
    for (std::size_t i = 0; i < merged.records.size(); ++i) {
      EXPECT_EQ(merged.records[i], baseline.records[i]) << "record " << i;
    }
    ASSERT_EQ(merged.clusters.size(), baseline.clusters.size());
    for (std::size_t k = 0; k < merged.clusters.size(); ++k) {
      EXPECT_EQ(merged.clusters[k].samples, baseline.clusters[k].samples);
      EXPECT_EQ(merged.clusters[k].errors, baseline.clusters[k].errors);
      EXPECT_EQ(merged.clusters[k].ser_percent, baseline.clusters[k].ser_percent);
      EXPECT_EQ(merged.clusters[k].xsect_cm2, baseline.clusters[k].xsect_cm2);
    }
    EXPECT_EQ(merged.chip_ser_percent, baseline.chip_ser_percent);
    EXPECT_EQ(merged.set_xsect_cm2, baseline.set_xsect_cm2);
    EXPECT_EQ(merged.seu_xsect_cm2, baseline.seu_xsect_cm2);
    EXPECT_EQ(merged.golden_cycles, baseline.golden_cycles);
    for (const std::string& path : paths) fs::remove(path);
  }
}

TEST(Shard, FileReaderStreamsRecordsBack) {
  const soc::SocModel model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignConfig config = small_campaign();
  const fi::ShardRunResult run =
      fi::run_campaign_shard(model, config, db, {1, 2});
  ASSERT_FALSE(run.records.empty());

  const std::string path = scratch_file("stream.ssfs");
  const fi::ShardFileMeta meta = meta_for(model, config, run, 1, 2);
  fi::write_shard_file(path, meta, run.records);

  fi::ShardFileReader reader(path);
  EXPECT_EQ(reader.meta().seed, config.seed);
  EXPECT_EQ(reader.meta().shard_index, 1u);
  EXPECT_EQ(reader.meta().shard_count, 2u);
  EXPECT_EQ(reader.meta().total_injections, run.total_injections);
  EXPECT_EQ(reader.meta().config_digest,
            fi::campaign_config_digest(model, config));
  EXPECT_EQ(reader.meta().num_records, run.records.size());

  // One record at a time, in order, then a clean end-of-stream.
  fi::ShardRecord record;
  for (const fi::ShardRecord& expected : run.records) {
    ASSERT_TRUE(reader.next(record));
    EXPECT_EQ(record, expected);
  }
  EXPECT_FALSE(reader.next(record));
  fs::remove(path);
}

TEST(Shard, MergeRejectsMismatchedAndIncompleteFiles) {
  const soc::SocModel model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignConfig config = small_campaign(17);

  const fi::ShardRunResult half0 =
      fi::run_campaign_shard(model, config, db, {0, 2});
  const std::string path0 = scratch_file("reject_0.ssfs");
  fi::write_shard_file(path0, meta_for(model, config, half0, 0, 2),
                       half0.records);

  // Incomplete coverage: one of two shards.
  EXPECT_THROW((void)fi::merge_shard_files(model, config, db, {path0}),
               InvalidArgument);
  // Duplicate coverage: the same shard twice.
  EXPECT_THROW((void)fi::merge_shard_files(model, config, db, {path0, path0}),
               InvalidArgument);
  // Digest mismatch: merging under a different seed must fail loudly.
  const fi::CampaignConfig other = small_campaign(18);
  EXPECT_THROW((void)fi::merge_shard_files(model, other, db, {path0}),
               InvalidArgument);
  // Malformed file.
  const std::string garbage = scratch_file("garbage.ssfs");
  {
    std::FILE* f = std::fopen(garbage.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a shard file", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)fi::merge_shard_files(model, config, db, {garbage}),
               InvalidArgument);
  fs::remove(path0);
  fs::remove(garbage);
}

TEST(Shard, DigestBindsProgramContents) {
  // Two SoCs identical in shape but running different programs must digest
  // differently — otherwise shards of different workloads would merge
  // silently into a result matching neither campaign.
  const fi::CampaignConfig config = small_campaign();
  soc::SocConfig cfg;
  cfg.name = "digest-soc";
  cfg.mem_bytes = 8 * 1024;
  cfg.cpu_isa = "RV32I";
  const soc::Program checksum[] = {
      soc::assemble(soc::checksum_workload(6).source)};
  const soc::Program fibonacci[] = {
      soc::assemble(soc::fibonacci_workload(6).source)};
  const soc::SocModel a = soc::build_soc(cfg, checksum);
  const soc::SocModel b = soc::build_soc(cfg, fibonacci);
  EXPECT_NE(fi::campaign_config_digest(a, config),
            fi::campaign_config_digest(b, config));
  // And the digest is stable for identical inputs.
  EXPECT_EQ(fi::campaign_config_digest(a, config),
            fi::campaign_config_digest(a, config));
}

TEST(Shard, WriteValidatesRecordOrderAndCounts) {
  fi::ShardFileMeta meta;
  meta.num_records = 2;
  std::vector<fi::ShardRecord> out_of_order(2);
  out_of_order[0].index = 5;
  out_of_order[1].index = 3;
  const std::string path = scratch_file("order.ssfs");
  EXPECT_THROW(fi::write_shard_file(path, meta, out_of_order), InvalidArgument);
  meta.num_records = 3;
  EXPECT_THROW(fi::write_shard_file(path, meta, out_of_order), InvalidArgument);
  fs::remove(path);
}

TEST(Shard, GoldenBundleShardsMatchFreshlyPreparedShards) {
  // The --workers fast path: shards fed a shipped golden bundle must emit
  // exactly the records of shards that re-derive the golden work locally.
  const soc::SocModel model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignConfig config = small_campaign();

  const fi::detail::CampaignPrep prep =
      fi::detail::prepare_campaign(model, config, db, /*for_execution=*/true);
  const fi::GoldenBundle bundle =
      fi::extract_golden_bundle(model, config, prep);
  for (int k = 0; k < 2; ++k) {
    const fi::ShardRunResult fresh =
        fi::run_campaign_shard(model, config, db, {k, 2});
    const fi::ShardRunResult shipped =
        fi::run_campaign_shard(model, config, db, {k, 2}, &bundle);
    ASSERT_EQ(shipped.records.size(), fresh.records.size());
    for (std::size_t i = 0; i < fresh.records.size(); ++i) {
      EXPECT_EQ(shipped.records[i], fresh.records[i]) << "record " << i;
    }
  }
}

TEST(Subprocess, RunsAndReportsExitCodes) {
  EXPECT_EQ(util::Subprocess::run({"/bin/sh", "-c", "exit 0"}), 0);
  EXPECT_EQ(util::Subprocess::run({"/bin/sh", "-c", "exit 7"}), 7);
  // exec failure surfaces as 127 (shell convention).
  EXPECT_EQ(util::Subprocess::run({"/nonexistent/ssresf-no-such-binary"}), 127);
  EXPECT_THROW(util::Subprocess::run({}), InvalidArgument);
}

TEST(Subprocess, TerminateKillsARunningChild) {
  util::Subprocess child({"/bin/sh", "-c", "sleep 30"});
  EXPECT_TRUE(child.running());
  child.terminate();
  EXPECT_EQ(child.wait(), 128 + 9);  // SIGKILL, shell convention
  child.terminate();                 // no-op after reaping
}

TEST(Subprocess, ParallelChildrenJoinIndependently) {
  std::vector<util::Subprocess> children;
  for (int i = 0; i < 4; ++i) {
    children.emplace_back(std::vector<std::string>{
        "/bin/sh", "-c", "exit " + std::to_string(i)});
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(children[static_cast<std::size_t>(i)].wait(), i);
    // wait() is idempotent.
    EXPECT_EQ(children[static_cast<std::size_t>(i)].wait(), i);
  }
}

}  // namespace
}  // namespace ssresf
