// Bit-parallel packed simulation: exhaustive lane-wise equivalence of the
// PackedLogic plane algebra against the scalar 4-valued ops, engine-level
// equivalence of per-slot runs against scalar levelized runs, and campaign
// determinism (kBitParallel records byte-identical to kLevelized).
#include <gtest/gtest.h>

#include <array>

#include "fi/campaign.h"
#include "netlist/builder.h"
#include "netlist/cell_library.h"
#include "netlist/logic.h"
#include "sim/bit_parallel_sim.h"
#include "sim/levelized_sim.h"
#include "sim/testbench.h"
#include "soc/programs.h"
#include "util/bytes.h"
#include "util/error.h"

namespace ssresf {
namespace {

using netlist::Logic;
using netlist::PackedLogic;

constexpr std::array<Logic, 4> kAll = {Logic::L0, Logic::L1, Logic::X,
                                       Logic::Z};

/// Fills all 64 lanes with a rotating pattern of the given symbols so every
/// lane position is exercised, not just lane 0.
template <std::size_t N>
PackedLogic pack_pattern(const std::array<Logic, N>& symbols, int phase) {
  PackedLogic p;
  for (int lane = 0; lane < 64; ++lane) {
    packed_set(p, lane, symbols[(static_cast<std::size_t>(lane + phase)) % N]);
  }
  return p;
}

TEST(PackedLogic, SplatGetSetRoundTrip) {
  for (const Logic v : kAll) {
    const PackedLogic p = netlist::packed_splat(v);
    for (int lane = 0; lane < 64; ++lane) {
      EXPECT_EQ(netlist::packed_get(p, lane), v);
    }
  }
  PackedLogic p = netlist::packed_splat(Logic::X);
  for (int lane = 0; lane < 64; ++lane) {
    const Logic v = kAll[static_cast<std::size_t>(lane) % 4];
    packed_set(p, lane, v);
  }
  for (int lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(netlist::packed_get(p, lane),
              kAll[static_cast<std::size_t>(lane) % 4]);
  }
}

TEST(PackedLogic, UnaryOpsMatchScalarExhaustively) {
  // Every 4-valued input symbol, in every lane position.
  for (int phase = 0; phase < 4; ++phase) {
    const PackedLogic a = pack_pattern(kAll, phase);
    const PackedLogic nt = netlist::packed_not(a);
    const PackedLogic ai = netlist::packed_as_input(a);
    const PackedLogic fl = netlist::packed_flip(a);
    for (int lane = 0; lane < 64; ++lane) {
      const Logic sa = netlist::packed_get(a, lane);
      EXPECT_EQ(netlist::packed_get(nt, lane), netlist::logic_not(sa));
      EXPECT_EQ(netlist::packed_get(ai, lane), netlist::as_input(sa));
      EXPECT_EQ(netlist::packed_get(fl, lane), netlist::logic_flip(sa));
    }
  }
}

TEST(PackedLogic, BinaryOpsMatchScalarExhaustively) {
  // All 16 (a, b) symbol combinations; the b operand rotates against a so
  // every pairing lands in every lane position across phases.
  for (int pa = 0; pa < 4; ++pa) {
    for (int pb = 0; pb < 4; ++pb) {
      const PackedLogic a = pack_pattern(kAll, pa);
      const PackedLogic b = pack_pattern(kAll, pb);
      const PackedLogic o_and = netlist::packed_and(a, b);
      const PackedLogic o_or = netlist::packed_or(a, b);
      const PackedLogic o_xor = netlist::packed_xor(a, b);
      for (int lane = 0; lane < 64; ++lane) {
        const Logic sa = netlist::packed_get(a, lane);
        const Logic sb = netlist::packed_get(b, lane);
        EXPECT_EQ(netlist::packed_get(o_and, lane), netlist::logic_and(sa, sb))
            << netlist::to_char(sa) << " & " << netlist::to_char(sb);
        EXPECT_EQ(netlist::packed_get(o_or, lane), netlist::logic_or(sa, sb))
            << netlist::to_char(sa) << " | " << netlist::to_char(sb);
        EXPECT_EQ(netlist::packed_get(o_xor, lane), netlist::logic_xor(sa, sb))
            << netlist::to_char(sa) << " ^ " << netlist::to_char(sb);
      }
    }
  }
}

TEST(PackedLogic, MuxMatchesScalarExhaustively) {
  // All 64 (sel, a0, a1) symbol combinations via three rotating phases.
  for (int ps = 0; ps < 4; ++ps) {
    for (int p0 = 0; p0 < 4; ++p0) {
      for (int p1 = 0; p1 < 4; ++p1) {
        const PackedLogic sel = pack_pattern(kAll, ps);
        const PackedLogic a0 = pack_pattern(kAll, p0);
        const PackedLogic a1 = pack_pattern(kAll, p1);
        const PackedLogic out = netlist::packed_mux(sel, a0, a1);
        for (int lane = 0; lane < 64; ++lane) {
          EXPECT_EQ(netlist::packed_get(out, lane),
                    netlist::logic_mux(netlist::packed_get(sel, lane),
                                       netlist::packed_get(a0, lane),
                                       netlist::packed_get(a1, lane)));
        }
      }
    }
  }
}

TEST(PackedLogic, EveryCombinationalCellKindMatchesScalar) {
  // Drives eval_cell_packed against eval_cell for every combinational cell
  // kind over every 4^num_inputs input tuple, checked on all 64 lanes.
  for (int k = 0; k < netlist::kNumCellKinds; ++k) {
    const auto kind = static_cast<netlist::CellKind>(k);
    if (netlist::is_sequential(kind)) continue;
    const int n = netlist::spec(kind).num_inputs;
    const int tuples = 1 << (2 * n);  // 4^n
    for (int t = 0; t < tuples; ++t) {
      std::array<Logic, 4> scalar_in{};
      std::array<PackedLogic, 4> packed_in{};
      for (int i = 0; i < n; ++i) {
        const Logic v = kAll[static_cast<std::size_t>((t >> (2 * i)) & 3)];
        scalar_in[static_cast<std::size_t>(i)] = v;
        // Place the tuple's symbol in every lane, with a rotated decoy in
        // the others so cross-lane leaks are caught.
        packed_in[static_cast<std::size_t>(i)] = netlist::packed_splat(v);
      }
      const Logic expect = netlist::eval_cell(
          kind, std::span<const Logic>(scalar_in.data(),
                                       static_cast<std::size_t>(n)));
      const PackedLogic got = netlist::eval_cell_packed(
          kind, std::span<const PackedLogic>(packed_in.data(),
                                             static_cast<std::size_t>(n)));
      for (int lane = 0; lane < 64; ++lane) {
        ASSERT_EQ(netlist::packed_get(got, lane), expect)
            << netlist::spec(kind).lib_name << " tuple " << t << " lane "
            << lane;
      }
    }
  }
}

// --- wide (256-lane) plane algebra -------------------------------------------

using WidePlanes = netlist::PackedVecT<4>;

TEST(PackedWide, EveryCombinationalCellKindKernelsMatchScalar) {
  // The acceptance truth-table: for every combinational cell kind and every
  // 4^num_inputs input tuple, the generic word-loop kernel and the AVX2
  // kernel (when this CPU has one) must agree lane-wise with the scalar
  // 4-valued evaluator on all 256 lanes. Each lane carries a different
  // tuple so cross-lane leaks are caught in the same pass.
  const netlist::EvalCellW4Fn generic = netlist::eval_cell_w4_generic();
  const netlist::EvalCellW4Fn avx2 = netlist::eval_cell_w4_avx2();
  ASSERT_NE(generic, nullptr);
  if (avx2 == nullptr) {
    std::fprintf(stderr, "note: no AVX2 on this CPU, generic kernel only\n");
  }
  for (int k = 0; k < netlist::kNumCellKinds; ++k) {
    const auto kind = static_cast<netlist::CellKind>(k);
    if (netlist::is_sequential(kind)) continue;
    const int n = netlist::spec(kind).num_inputs;
    const int tuples = 1 << (2 * n);  // 4^n <= 64 (n <= 3)
    for (int base = 0; base < tuples; ++base) {
      // Lane l carries tuple (base + l) % tuples.
      std::array<WidePlanes, 4> in{};
      for (int i = 0; i < n; ++i) {
        for (int lane = 0; lane < 256; ++lane) {
          const int t = (base + lane) % tuples;
          netlist::wide_set(in[static_cast<std::size_t>(i)], lane,
                            kAll[static_cast<std::size_t>((t >> (2 * i)) & 3)]);
        }
      }
      const WidePlanes got_generic =
          generic(kind, in.data(), static_cast<std::size_t>(n));
      for (int lane = 0; lane < 256; ++lane) {
        const int t = (base + lane) % tuples;
        std::array<Logic, 4> scalar_in{};
        for (int i = 0; i < n; ++i) {
          scalar_in[static_cast<std::size_t>(i)] =
              kAll[static_cast<std::size_t>((t >> (2 * i)) & 3)];
        }
        const Logic expect = netlist::eval_cell(
            kind, std::span<const Logic>(scalar_in.data(),
                                         static_cast<std::size_t>(n)));
        ASSERT_EQ(netlist::wide_get(got_generic, lane), expect)
            << netlist::spec(kind).lib_name << " tuple " << t << " lane "
            << lane << " (generic kernel)";
      }
      if (avx2 != nullptr) {
        const WidePlanes got_avx2 =
            avx2(kind, in.data(), static_cast<std::size_t>(n));
        for (int w = 0; w < 4; ++w) {
          ASSERT_EQ(got_avx2.val[static_cast<std::size_t>(w)],
                    got_generic.val[static_cast<std::size_t>(w)])
              << netlist::spec(kind).lib_name << " base " << base << " word "
              << w << " (avx2 val plane)";
          ASSERT_EQ(got_avx2.unk[static_cast<std::size_t>(w)],
                    got_generic.unk[static_cast<std::size_t>(w)])
              << netlist::spec(kind).lib_name << " base " << base << " word "
              << w << " (avx2 unk plane)";
        }
      }
    }
  }
}

TEST(PackedWide, LaneMaskOps) {
  using Mask = netlist::LaneMaskT<4>;
  Mask m = Mask::first_lanes(100);
  EXPECT_EQ(m.count(), 100);
  EXPECT_TRUE(m.test(0));
  EXPECT_TRUE(m.test(99));
  EXPECT_FALSE(m.test(100));
  m.reset(0);
  EXPECT_EQ(m.count(), 99);
  EXPECT_EQ(m.lowest(), 1);
  int seen = 0;
  int last = 0;
  netlist::for_each_set_lane(m, [&](int lane) {
    EXPECT_GE(lane, last);  // ascending order
    last = lane;
    ++seen;
  });
  EXPECT_EQ(seen, 99);
  EXPECT_EQ(last, 99);
  const Mask inv = ~m;
  EXPECT_EQ(inv.count(), 256 - 99);
  EXPECT_TRUE((m & inv).none());
  EXPECT_EQ((m | inv).count(), 256);
}

// --- engine-level equivalence ------------------------------------------------

using netlist::NetlistBuilder;
using sim::BitParallelSimulator;
using sim::LevelizedSimulator;
using sim::NetId;
using sim::OutputTrace;
using sim::Testbench;
using sim::TestbenchConfig;

struct RingDesign {
  netlist::Netlist netlist;
  NetId clk, rstn;
  std::vector<NetId> monitored;
  netlist::CellId ff0;
  NetId stage0;
};

RingDesign make_ring() {
  NetlistBuilder b("ring");
  RingDesign d;
  d.clk = b.input("clk");
  d.rstn = b.input("rstn");
  const NetId feedback = b.wire("fb");
  std::vector<NetId> qs(5);
  NetId prev = feedback;
  for (int i = 0; i < 5; ++i) {
    const auto ff = b.dffr(prev, d.clk, d.rstn, "s" + std::to_string(i));
    if (i == 0) {
      d.ff0 = ff.cell;
      d.stage0 = ff.q;
    }
    qs[static_cast<std::size_t>(i)] = ff.q;
    prev = ff.q;
  }
  b.drive(feedback, b.inv(qs[4]));
  const NetId parity = b.xor2(b.xor2(qs[0], qs[2]), qs[4]);
  const NetId gated = b.and2(qs[1], b.inv(qs[3]));
  const NetId mux = b.mux2(qs[0], qs[4], parity);
  b.output(qs[4], "tail");
  b.output(parity, "parity");
  b.output(gated, "gated");
  b.output(mux, "mux");
  d.netlist = b.finish();
  for (const auto& [net, name] : d.netlist.primary_outputs()) {
    d.monitored.push_back(net);
  }
  return d;
}

TestbenchConfig ring_tb_config(const RingDesign& d) {
  TestbenchConfig cfg;
  cfg.clk = d.clk;
  cfg.rstn = d.rstn;
  cfg.monitored = d.monitored;
  cfg.clock_period_ps = 1000;
  return cfg;
}

TEST(BitParallelEngine, ScalarDriveMatchesLevelized) {
  // Driven through the scalar Engine interface only, the packed engine must
  // reproduce the levelized engine's trace exactly (all 64 lanes broadcast).
  const RingDesign d = make_ring();
  const TestbenchConfig cfg = ring_tb_config(d);

  LevelizedSimulator level(d.netlist);
  Testbench level_tb(level, cfg);
  level_tb.reset();
  level_tb.run_cycles(30);

  BitParallelSimulator packed(d.netlist);
  Testbench packed_tb(packed, cfg);
  packed_tb.reset();
  packed_tb.run_cycles(30);

  EXPECT_EQ(OutputTrace::first_mismatch(level_tb.trace(), packed_tb.trace()),
            std::nullopt);
}

TEST(BitParallelEngine, SlotFaultMatchesScalarRun) {
  // A fault injected into slot k must evolve exactly like the same fault in
  // a scalar levelized run, while slot 0 stays golden.
  const RingDesign d = make_ring();
  const TestbenchConfig cfg = ring_tb_config(d);
  constexpr int kCycles = 24;
  constexpr int kFaultCycle = 9;

  // Scalar reference: an SEU on ff0 mid-run.
  LevelizedSimulator golden(d.netlist);
  Testbench golden_tb(golden, cfg);
  golden_tb.reset();
  golden_tb.run_cycles(kCycles - cfg.reset_cycles);

  LevelizedSimulator faulty(d.netlist);
  Testbench faulty_tb(faulty, cfg);
  faulty_tb.at(kFaultCycle * 1000 + 100, [&](sim::Engine& e) {
    e.deposit_ff(d.ff0, netlist::logic_flip(e.ff_state(d.ff0)));
  });
  faulty_tb.reset();
  faulty_tb.run_cycles(kCycles - cfg.reset_cycles);

  // Packed: same stimulus, fault on slot 7 at the same time.
  BitParallelSimulator packed(d.netlist);
  Testbench packed_tb(packed, cfg);
  packed_tb.at(kFaultCycle * 1000 + 100, [&](sim::Engine&) {
    packed.deposit_ff_slot(
        d.ff0, 7, netlist::logic_flip(packed.ff_state_slot(d.ff0, 7)));
  });
  packed_tb.reset();
  packed_tb.run_cycles(kCycles - cfg.reset_cycles);

  // Slot 0 equals the golden run (the testbench samples lane 0).
  EXPECT_EQ(OutputTrace::first_mismatch(golden_tb.trace(), packed_tb.trace()),
            std::nullopt);
  // The golden and faulty scalar runs disagree somewhere, and slot 7's lane
  // reproduces the faulty scalar value on every monitored net right after
  // the strike (spot check at the end of the run).
  EXPECT_NE(OutputTrace::first_mismatch(golden_tb.trace(), faulty_tb.trace()),
            std::nullopt);
  for (std::size_t j = 0; j < d.monitored.size(); ++j) {
    EXPECT_EQ(packed.value_slot(d.monitored[j], 7),
              faulty.value(d.monitored[j]));
    EXPECT_EQ(packed.value_slot(d.monitored[j], 0),
              golden.value(d.monitored[j]));
  }
  // The flipped bit recirculates in the ring forever: slot 7 stays diverged
  // from the golden lane, and only slot 7.
  EXPECT_EQ(packed.state_diff_from_golden().w[0], std::uint64_t{1} << 7);
}

TEST(BitParallelEngine, StateDiffTracksDivergedLanes) {
  const RingDesign d = make_ring();
  const TestbenchConfig cfg = ring_tb_config(d);
  BitParallelSimulator packed(d.netlist);
  Testbench tb(packed, cfg);
  tb.reset();
  tb.run_cycles(6);
  EXPECT_EQ(packed.state_diff_from_golden().w[0], 0u);
  // A forced net marks its lane diverged until released and recaptured.
  packed.force_net_slot(d.stage0, 3, Logic::L1);
  EXPECT_NE(packed.state_diff_from_golden().w[0] & (1ull << 3), 0u);
  packed.release_net_slot(d.stage0, 3);
  EXPECT_EQ(packed.state_diff_from_golden().w[0], 0u);
  // A deposited FF flip diverges the lane's sequential state.
  packed.deposit_ff_slot(
      d.ff0, 5, netlist::logic_flip(packed.ff_state_slot(d.ff0, 5)));
  EXPECT_NE(packed.state_diff_from_golden().w[0] & (1ull << 5), 0u);
}

TEST(BitParallelEngine, SnapshotRestoreRoundTrip) {
  const RingDesign d = make_ring();
  const TestbenchConfig cfg = ring_tb_config(d);
  BitParallelSimulator a(d.netlist);
  Testbench tb_a(a, cfg);
  tb_a.reset();
  tb_a.run_cycles(6);
  const auto snapshot = a.save_state();
  EXPECT_TRUE(a.state_matches(*snapshot));

  BitParallelSimulator b(d.netlist);
  b.restore_state(*snapshot);
  Testbench tb_b(b, cfg);
  tb_b.resume_at(tb_a.cycles_run(), tb_a.trace());
  tb_a.run_cycles(16);
  tb_b.run_cycles(16);
  EXPECT_EQ(OutputTrace::first_mismatch(tb_a.trace(), tb_b.trace()),
            std::nullopt);
}

TEST(BitParallel256Engine, HighSlotFaultMatchesScalarRun) {
  // Same contract as SlotFaultMatchesScalarRun, but on the 256-lane engine
  // with the fault in a slot far beyond the first machine word — proving the
  // wide planes keep per-lane independence above lane 63.
  const RingDesign d = make_ring();
  const TestbenchConfig cfg = ring_tb_config(d);
  constexpr int kCycles = 24;
  constexpr int kFaultCycle = 9;
  constexpr int kSlot = 200;

  LevelizedSimulator golden(d.netlist);
  Testbench golden_tb(golden, cfg);
  golden_tb.reset();
  golden_tb.run_cycles(kCycles - cfg.reset_cycles);

  LevelizedSimulator faulty(d.netlist);
  Testbench faulty_tb(faulty, cfg);
  faulty_tb.at(kFaultCycle * 1000 + 100, [&](sim::Engine& e) {
    e.deposit_ff(d.ff0, netlist::logic_flip(e.ff_state(d.ff0)));
  });
  faulty_tb.reset();
  faulty_tb.run_cycles(kCycles - cfg.reset_cycles);

  sim::BitParallelSimulator256 packed(d.netlist);
  Testbench packed_tb(packed, cfg);
  packed_tb.at(kFaultCycle * 1000 + 100, [&](sim::Engine&) {
    packed.deposit_ff_slot(
        d.ff0, kSlot,
        netlist::logic_flip(packed.ff_state_slot(d.ff0, kSlot)));
  });
  packed_tb.reset();
  packed_tb.run_cycles(kCycles - cfg.reset_cycles);

  EXPECT_EQ(OutputTrace::first_mismatch(golden_tb.trace(), packed_tb.trace()),
            std::nullopt);
  for (std::size_t j = 0; j < d.monitored.size(); ++j) {
    EXPECT_EQ(packed.value_slot(d.monitored[j], kSlot),
              faulty.value(d.monitored[j]));
    EXPECT_EQ(packed.value_slot(d.monitored[j], 0),
              golden.value(d.monitored[j]));
  }
  // Only the struck lane diverges; the ring recirculates the flip forever.
  auto diff = packed.state_diff_from_golden();
  EXPECT_EQ(diff.count(), 1);
  EXPECT_TRUE(diff.test(kSlot));
}

TEST(BitParallel256Engine, ScalarDriveMatchesLevelized) {
  const RingDesign d = make_ring();
  const TestbenchConfig cfg = ring_tb_config(d);

  LevelizedSimulator level(d.netlist);
  Testbench level_tb(level, cfg);
  level_tb.reset();
  level_tb.run_cycles(30);

  sim::BitParallelSimulator256 packed(d.netlist);
  Testbench packed_tb(packed, cfg);
  packed_tb.reset();
  packed_tb.run_cycles(30);

  EXPECT_EQ(OutputTrace::first_mismatch(level_tb.trace(), packed_tb.trace()),
            std::nullopt);
}

TEST(BitParallel256Engine, AdoptGoldenAndSerializationInterop) {
  // A W=1 engine's serialized state round-trips through the W=4 engine's
  // codec path contract: adopt_golden from a levelized run, then save /
  // serialize / deserialize / restore must reproduce the same lane-0 values.
  const RingDesign d = make_ring();
  const TestbenchConfig cfg = ring_tb_config(d);
  LevelizedSimulator level(d.netlist);
  Testbench tb(level, cfg);
  tb.reset();
  tb.run_cycles(9);

  sim::BitParallelSimulator256 packed(d.netlist);
  packed.adopt_golden(level);
  EXPECT_TRUE(packed.state_diff_from_golden().none());
  for (const NetId net : d.monitored) {
    EXPECT_EQ(packed.value(net), level.value(net));
    for (const int slot : {1, 63, 64, 128, 255}) {
      EXPECT_EQ(packed.value_slot(net, slot), level.value(net));
    }
  }

  const auto snapshot = packed.save_state();
  util::ByteWriter writer;
  packed.serialize_state(*snapshot, writer);
  util::ByteReader reader(writer.data());
  const auto decoded = packed.deserialize_state(reader);
  sim::BitParallelSimulator256 restored(d.netlist);
  restored.restore_state(*decoded);
  EXPECT_TRUE(restored.state_matches(*snapshot));
  for (const NetId net : d.monitored) {
    EXPECT_EQ(restored.value(net), packed.value(net));
  }
}

// --- campaign determinism ----------------------------------------------------

soc::SocModel small_soc() {
  soc::SocConfig cfg;
  cfg.mem_bytes = 16 * 1024;
  cfg.cpu_isa = "RV32I";
  cfg.bus = soc::BusProtocol::kAhb;
  cfg.bus_width_bits = 64;
  const soc::Workload w = soc::checksum_workload(8);
  const soc::Program programs[] = {soc::assemble(w.source)};
  return soc::build_soc(cfg, programs);
}

fi::CampaignConfig small_campaign(std::uint64_t seed = 17) {
  fi::CampaignConfig cfg;
  cfg.clustering.num_clusters = 5;
  cfg.sampling.fraction = 0.01;
  cfg.sampling.min_per_cluster = 4;
  cfg.sampling.max_per_cluster = 10;
  cfg.sampling.memory_macro_draws = 8;
  cfg.seed = seed;
  return cfg;
}

void expect_records_identical(const fi::CampaignResult& a,
                              const fi::CampaignResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    EXPECT_EQ(ra.event.target.cell, rb.event.target.cell) << "record " << i;
    EXPECT_EQ(ra.event.target.kind, rb.event.target.kind) << "record " << i;
    EXPECT_EQ(ra.event.target.word, rb.event.target.word) << "record " << i;
    EXPECT_EQ(ra.event.target.bit, rb.event.target.bit) << "record " << i;
    EXPECT_EQ(ra.event.time_ps, rb.event.time_ps) << "record " << i;
    EXPECT_EQ(ra.event.set_width_ps, rb.event.set_width_ps) << "record " << i;
    EXPECT_EQ(ra.cluster, rb.cluster) << "record " << i;
    EXPECT_EQ(ra.module_class, rb.module_class) << "record " << i;
    EXPECT_EQ(ra.soft_error, rb.soft_error) << "record " << i;
    EXPECT_EQ(ra.first_mismatch_cycle, rb.first_mismatch_cycle)
        << "record " << i;
  }
  EXPECT_DOUBLE_EQ(a.chip_ser_percent, b.chip_ser_percent);
}

TEST(BitParallelCampaign, RecordsByteIdenticalToLevelized) {
  // The paper-facing guarantee of the word-parallel backend: same seed, same
  // records, bit for bit, against the scalar levelized engine.
  const auto model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  auto level = small_campaign(51);
  level.engine = sim::EngineKind::kLevelized;
  auto packed = small_campaign(51);
  packed.engine = sim::EngineKind::kBitParallel;
  expect_records_identical(fi::run_campaign(model, level, db),
                           fi::run_campaign(model, packed, db));
}

TEST(BitParallelCampaign, ByteIdenticalAcrossThreadsAndLaneWidths) {
  // The full identity sweep of the word-batch scheduler: every combination
  // of {1,2,4,8} campaign workers x {64,256} lanes must reproduce the
  // 1-thread levelized records bit for bit. The workload is raised well
  // past 64 injections so 256-lane batches actually populate slots beyond
  // the first machine word, and so multiple checkpoint segments and worker
  // hand-offs occur.
  const auto model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  auto big = small_campaign(59);
  big.sampling.fraction = 0.2;
  big.sampling.min_per_cluster = 8;
  big.sampling.max_per_cluster = 64;
  big.sampling.memory_macro_draws = 48;

  auto reference_cfg = big;
  reference_cfg.engine = sim::EngineKind::kLevelized;
  reference_cfg.threads = 1;
  const auto reference = fi::run_campaign(model, reference_cfg, db);
  // Enough volume that a 256-lane batch uses slots above 63.
  ASSERT_GT(reference.records.size(), 100u);

  for (const int threads : {1, 2, 4, 8}) {
    for (const int lanes : {64, 256}) {
      auto cfg = big;
      cfg.engine = sim::EngineKind::kBitParallel;
      cfg.threads = threads;
      cfg.lanes = lanes;
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " lanes=" + std::to_string(lanes));
      expect_records_identical(reference, fi::run_campaign(model, cfg, db));
    }
  }
}

TEST(BitParallelCampaign, RejectsInvalidLaneWidth) {
  const auto model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  auto cfg = small_campaign(61);
  cfg.engine = sim::EngineKind::kBitParallel;
  cfg.lanes = 128;
  EXPECT_THROW(fi::run_campaign(model, cfg, db), InvalidArgument);
}

TEST(BitParallelCampaign, DeterministicAcrossThreadsAndKnobs) {
  const auto model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  auto fast = small_campaign(53);
  fast.engine = sim::EngineKind::kBitParallel;
  fast.threads = 4;
  auto slow = small_campaign(53);
  slow.engine = sim::EngineKind::kBitParallel;
  slow.threads = 1;
  slow.use_checkpoint = false;
  slow.early_exit = false;
  slow.masked_exit = false;
  expect_records_identical(fi::run_campaign(model, fast, db),
                           fi::run_campaign(model, slow, db));
}

}  // namespace
}  // namespace ssresf
