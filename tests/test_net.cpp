// The socket campaign transport: frame codec (round trip, corruption and
// truncation rejection via the payload digest), campaign spec codec, golden
// bundle shipping (workers skip all golden simulation without changing a
// record), and the coordinator/worker loop — loopback equivalence for
// several worker counts and byte-identical results under mid-campaign
// worker defection (the deterministic stand-in for a killed worker).
#include <gtest/gtest.h>

#include <bit>
#include <future>
#include <thread>

#include "fi/campaign_exec.h"
#include "fi/golden_bundle.h"
#include "fi/shard.h"
#include "net/auth.h"
#include "net/coordinator.h"
#include "net/protocol.h"
#include "net/worker.h"
#include "util/error.h"

namespace ssresf {
namespace {

net::CampaignSpec small_spec(std::uint64_t seed = 17) {
  net::CampaignSpec spec;
  spec.workload = "checksum";
  spec.isa = "RV32I";
  spec.bus = "ahb";
  spec.mem_kb = 8;
  spec.config.engine = sim::EngineKind::kLevelized;
  spec.config.clustering.num_clusters = 5;
  spec.config.sampling.fraction = 0.01;
  spec.config.sampling.min_per_cluster = 4;
  spec.config.sampling.max_per_cluster = 8;
  spec.config.sampling.weighting = cluster::SampleWeighting::kMixed;
  spec.config.sampling.memory_macro_draws = 8;
  spec.config.seed = seed;
  return spec;
}

void expect_same_result(const fi::CampaignResult& got,
                        const fi::CampaignResult& want) {
  ASSERT_EQ(got.records.size(), want.records.size());
  for (std::size_t i = 0; i < got.records.size(); ++i) {
    EXPECT_EQ(got.records[i], want.records[i]) << "record " << i;
  }
  EXPECT_EQ(got.chip_ser_percent, want.chip_ser_percent);
  EXPECT_EQ(got.golden_cycles, want.golden_cycles);
}

// --- frame codec --------------------------------------------------------------

TEST(NetProtocol, FrameRoundTripsAcrossASocket) {
  auto [a, b] = util::Socket::pair();
  for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                 std::size_t{1000}, std::size_t{70000}}) {
    std::vector<std::uint8_t> payload(size);
    for (std::size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
    }
    net::send_frame(a, net::MsgType::kRecords, payload);
    net::Frame frame;
    ASSERT_TRUE(net::recv_frame(b, frame));
    EXPECT_EQ(frame.type, net::MsgType::kRecords);
    EXPECT_EQ(frame.payload, payload);
  }
  // Clean EOF between frames reads as false, not an error.
  a.close();
  net::Frame frame;
  EXPECT_FALSE(net::recv_frame(b, frame));
}

TEST(NetProtocol, FrameRejectsCorruptPayload) {
  auto [a, b] = util::Socket::pair();
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  std::vector<std::uint8_t> wire =
      net::encode_frame(net::MsgType::kWork, payload);
  wire.back() ^= 0x40;  // flip one payload bit
  a.send_all(wire.data(), wire.size());
  net::Frame frame;
  EXPECT_THROW((void)net::recv_frame(b, frame), InvalidArgument);
}

TEST(NetProtocol, FrameRejectsTruncationBadMagicAndBadLength) {
  {
    // Connection dropped inside a frame: an Error, never a clean EOF.
    auto [a, b] = util::Socket::pair();
    const std::vector<std::uint8_t> payload(100, 0xab);
    const std::vector<std::uint8_t> wire =
        net::encode_frame(net::MsgType::kWork, payload);
    a.send_all(wire.data(), wire.size() - 40);
    a.close();
    net::Frame frame;
    EXPECT_THROW((void)net::recv_frame(b, frame), Error);
  }
  {
    auto [a, b] = util::Socket::pair();
    std::vector<std::uint8_t> wire = net::encode_frame(net::MsgType::kWork, {});
    wire[0] = 'X';
    a.send_all(wire.data(), wire.size());
    net::Frame frame;
    EXPECT_THROW((void)net::recv_frame(b, frame), InvalidArgument);
  }
  {
    // A length above the cap is rejected before any allocation.
    auto [a, b] = util::Socket::pair();
    std::vector<std::uint8_t> wire = net::encode_frame(net::MsgType::kWork, {});
    wire[6] = 0xff;
    wire[7] = 0xff;
    wire[8] = 0xff;
    wire[9] = 0xff;
    a.send_all(wire.data(), wire.size());
    net::Frame frame;
    EXPECT_THROW((void)net::recv_frame(b, frame), InvalidArgument);
  }
}

// --- campaign spec ------------------------------------------------------------

TEST(NetProtocol, CampaignSpecRoundTrips) {
  net::CampaignSpec spec = small_spec(99);
  spec.workload = "fibonacci";
  spec.isa = "RV32IM";
  spec.bus = "apb";
  spec.mem_kb = 4;
  spec.config.engine = sim::EngineKind::kBitParallel;
  spec.config.environment.let = 1e-7;  // must survive exactly (digest input)
  spec.config.sampling.fraction = 0.12345678901234567;

  util::ByteWriter out;
  spec.encode(out);
  const std::vector<std::uint8_t> bytes = out.data();
  util::ByteReader in(bytes);
  const net::CampaignSpec back = net::CampaignSpec::decode(in);
  EXPECT_TRUE(in.at_end());
  EXPECT_EQ(back.workload, spec.workload);
  EXPECT_EQ(back.isa, spec.isa);
  EXPECT_EQ(back.bus, spec.bus);
  EXPECT_EQ(back.mem_kb, spec.mem_kb);
  EXPECT_EQ(back.config.engine, spec.config.engine);
  EXPECT_EQ(back.config.seed, spec.config.seed);
  EXPECT_EQ(back.config.environment.let, spec.config.environment.let);
  EXPECT_EQ(back.config.environment.flux, spec.config.environment.flux);
  EXPECT_EQ(back.config.sampling.fraction, spec.config.sampling.fraction);
  EXPECT_EQ(back.config.sampling.weighting, spec.config.sampling.weighting);
  EXPECT_EQ(back.config.clustering.num_clusters,
            spec.config.clustering.num_clusters);
  EXPECT_EQ(back.config.run_cycles, spec.config.run_cycles);
  EXPECT_EQ(back.config.max_cycles, spec.config.max_cycles);

  // The rebuilt (model, config) digests identically — the worker-side check.
  const soc::SocModel model = net::build_model(small_spec(7));
  EXPECT_EQ(fi::campaign_config_digest(model, small_spec(7).config),
            fi::campaign_config_digest(model, small_spec(7).config));

  util::ByteReader truncated(std::span<const std::uint8_t>(bytes.data(), 5));
  EXPECT_THROW((void)net::CampaignSpec::decode(truncated), Error);
}

TEST(NetProtocol, RecordsMessageRoundTrips) {
  net::RecordsMsg msg;
  msg.start = 10;
  msg.count = 3;
  for (std::uint64_t i = 10; i < 13; ++i) {
    fi::ShardRecord r;
    r.index = i;
    r.record.event.target.kind = radiation::FaultKind::kSeu;
    r.record.event.target.cell = netlist::CellId{42};
    r.record.event.time_ps = 1000 * i;
    r.record.cluster = 2;
    r.record.module_class = netlist::ModuleClass::kCpu;
    r.record.soft_error = i % 2 == 0;
    r.record.first_mismatch_cycle = i;
    msg.records.push_back(r);
  }
  const std::vector<std::uint8_t> payload = net::encode_payload(msg);
  util::ByteReader in(payload);
  const net::RecordsMsg back = net::RecordsMsg::decode(in);
  EXPECT_EQ(back.start, msg.start);
  EXPECT_EQ(back.count, msg.count);
  ASSERT_EQ(back.records.size(), msg.records.size());
  for (std::size_t i = 0; i < msg.records.size(); ++i) {
    EXPECT_EQ(back.records[i], msg.records[i]);
  }
}

TEST(NetProtocol, HelloMessageRoundTripsAdvertisedHost) {
  net::HelloMsg hello;
  hello.worker_id = 7;
  hello.nonce = 3;
  hello.peer_port = 45123;
  hello.peer_host = "worker-3.rack2.example";
  const std::vector<std::uint8_t> payload = net::encode_payload(hello);
  util::ByteReader in(payload);
  const net::HelloMsg back = net::HelloMsg::decode(in);
  EXPECT_TRUE(in.at_end());
  EXPECT_EQ(back.worker_id, hello.worker_id);
  EXPECT_EQ(back.nonce, hello.nonce);
  EXPECT_EQ(back.peer_port, hello.peer_port);
  EXPECT_EQ(back.peer_host, hello.peer_host);

  net::HelloMsg plain;
  plain.worker_id = 1;
  const std::vector<std::uint8_t> p2 = net::encode_payload(plain);
  util::ByteReader in2(p2);
  EXPECT_TRUE(net::HelloMsg::decode(in2).peer_host.empty());
}

TEST(NetProtocol, PredictMessagesRoundTripBitExactly) {
  net::PredictRequestMsg req;
  req.alias = "checksum-demo";
  req.config_digest = 0x0123456789abcdefull;
  // Mixed columns: small integral doubles (varint-coded), a fractional
  // column, and awkward values that must NOT take the varint path.
  req.rows = {{3.0, 0.25, -0.0, 1e300},
              {7.0, 0.5, 4.0, -2.5},
              {1048576.0, 0.125, 9.0, 0.1}};
  req.num_rows = req.rows.size();
  req.num_features = req.rows[0].size();
  const std::vector<std::uint8_t> payload = net::encode_payload(req);
  util::ByteReader in(payload);
  const net::PredictRequestMsg back = net::PredictRequestMsg::decode(in);
  EXPECT_TRUE(in.at_end());
  EXPECT_EQ(back.alias, req.alias);
  EXPECT_EQ(back.config_digest, req.config_digest);
  ASSERT_EQ(back.rows.size(), req.rows.size());
  for (std::size_t r = 0; r < req.rows.size(); ++r) {
    for (std::size_t c = 0; c < req.rows[r].size(); ++c) {
      // Bit-exact, including the sign of -0.0.
      EXPECT_EQ(std::bit_cast<std::uint64_t>(back.rows[r][c]),
                std::bit_cast<std::uint64_t>(req.rows[r][c]))
          << "row " << r << " col " << c;
    }
  }

  net::PredictResponseMsg resp;
  resp.alias = "checksum-demo";
  resp.config_digest = req.config_digest;
  resp.generation = 12;
  resp.labels = {1, -1, -1, 1, 1, -1, 1, -1, -1};
  const std::vector<std::uint8_t> rp = net::encode_payload(resp);
  util::ByteReader rin(rp);
  const net::PredictResponseMsg rback = net::PredictResponseMsg::decode(rin);
  EXPECT_TRUE(rin.at_end());
  EXPECT_EQ(rback.alias, resp.alias);
  EXPECT_EQ(rback.generation, resp.generation);
  EXPECT_EQ(rback.labels, resp.labels);
}

TEST(NetProtocol, PredictRequestRejectsHostileShapes) {
  net::PredictRequestMsg req;
  req.alias = "m";
  req.rows = {{1.0, 2.0}};
  req.num_rows = 1;
  req.num_features = 2;
  std::vector<std::uint8_t> payload = net::encode_payload(req);
  // A row count far beyond the payload must refuse before allocating.
  {
    util::ByteWriter out;
    out.sized_bytes("m", 1);
    out.fixed64(0);
    out.varint(net::kMaxPredictRows);  // claims 2^20 rows
    out.varint(1);
    const std::vector<std::uint8_t> hostile = out.data();
    util::ByteReader in(hostile);
    EXPECT_THROW((void)net::PredictRequestMsg::decode(in), Error);
  }
  // Truncated mid-columns.
  util::ByteReader trunc(
      std::span<const std::uint8_t>(payload.data(), payload.size() - 3));
  EXPECT_THROW((void)net::PredictRequestMsg::decode(trunc), Error);
}

// --- golden bundle ------------------------------------------------------------

TEST(GoldenBundle, ShippedGoldenWorkProducesIdenticalRecords) {
  const net::CampaignSpec spec = small_spec();
  const soc::SocModel model = net::build_model(spec);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignConfig& config = spec.config;

  fi::detail::CampaignPrep full =
      fi::detail::prepare_campaign(model, config, db, /*for_execution=*/true);
  ASSERT_FALSE(full.ladder.empty());

  // Extract, push through the byte codec, and rebuild on the "worker".
  util::ByteWriter out;
  fi::encode_golden_bundle(out, fi::extract_golden_bundle(model, config, full));
  const std::vector<std::uint8_t> bytes = out.data();
  util::ByteReader in(bytes);
  const fi::GoldenBundle bundle = fi::decode_golden_bundle(in);
  EXPECT_TRUE(in.at_end());
  EXPECT_EQ(bundle.run_cycles, full.run_cycles);
  EXPECT_EQ(bundle.rungs.size(), full.ladder.size());

  fi::detail::CampaignPrep shipped =
      fi::prepare_campaign_with_bundle(model, config, db, bundle);
  ASSERT_EQ(shipped.plan.size(), full.plan.size());
  EXPECT_EQ(shipped.total_cycles, full.total_cycles);
  EXPECT_EQ(shipped.golden_trace.num_cycles(), full.golden_trace.num_cycles());
  ASSERT_EQ(shipped.ladder.size(), full.ladder.size());

  // Execute everything on both preps: byte-identical records.
  std::vector<std::size_t> owned(full.plan.size());
  for (std::size_t i = 0; i < owned.size(); ++i) owned[i] = i;
  std::vector<fi::InjectionRecord> a(full.plan.size());
  std::vector<fi::InjectionRecord> b(full.plan.size());
  fi::detail::execute_injections(model, config, full, owned, a);
  fi::detail::execute_injections(model, config, shipped, owned, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "record " << i;
  }
}

TEST(GoldenBundle, FileIsDigestBound) {
  const net::CampaignSpec spec = small_spec();
  const soc::SocModel model = net::build_model(spec);
  const auto db = radiation::SoftErrorDatabase::default_database();

  fi::detail::CampaignPrep prep = fi::detail::prepare_campaign(
      model, spec.config, db, /*for_execution=*/true);
  const std::string path =
      testing::TempDir() + "/ssresf_bundle_digest.ssgb";
  fi::write_golden_bundle_file(path, model, spec.config,
                               fi::extract_golden_bundle(model, spec.config,
                                                         prep));
  // Same campaign: loads.
  const fi::GoldenBundle ok =
      fi::read_golden_bundle_file(path, model, spec.config);
  EXPECT_EQ(ok.run_cycles, prep.run_cycles);
  // Different seed: digest mismatch, loud failure.
  EXPECT_THROW(
      (void)fi::read_golden_bundle_file(path, model, small_spec(18).config),
      InvalidArgument);
  std::remove(path.c_str());
}

// --- coordinator / worker loopback --------------------------------------------

fi::CampaignResult run_loopback(const net::CampaignSpec& spec,
                                const radiation::SoftErrorDatabase& db,
                                std::vector<net::WorkerOptions> workers,
                                std::uint64_t chunk = 0) {
  net::CoordinatorOptions copts;
  copts.port = 0;
  copts.loopback_only = true;
  copts.chunk_injections = chunk;
  net::Coordinator coordinator(spec, db, copts);
  const std::uint16_t port = coordinator.port();

  auto result = std::async(std::launch::async,
                           [&coordinator] { return coordinator.run(); });
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (net::WorkerOptions wopts : workers) {
    wopts.host = "127.0.0.1";
    wopts.port = port;
    // Tight fleet knobs: a worker that loses the race against the campaign's
    // completion (connects after the listener closed) must give up in
    // seconds, not ride the production-sized retry ladder past the test
    // timeout. The equivalence assertions never involve such a straggler.
    wopts.connect_timeout_seconds = 1.0;
    wopts.backoff_base_seconds = 0.01;
    threads.emplace_back([&db, wopts] {
      try {
        net::Worker worker(db, wopts);
        (void)worker.run();
      } catch (const Error&) {
        // A defecting worker's abrupt exit is part of the test.
      }
    });
  }
  const fi::CampaignResult merged = result.get();
  for (std::thread& t : threads) t.join();
  return merged;
}

TEST(NetCampaign, LoopbackMatchesSingleProcessForSeveralWorkerCounts) {
  const net::CampaignSpec spec = small_spec();
  const soc::SocModel model = net::build_model(spec);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignResult baseline = fi::run_campaign(model, spec.config, db);
  ASSERT_GT(baseline.records.size(), 8u);

  for (const int n : {1, 2, 5}) {
    std::vector<net::WorkerOptions> workers(static_cast<std::size_t>(n));
    const fi::CampaignResult merged = run_loopback(spec, db, workers);
    expect_same_result(merged, baseline);
  }
}

TEST(NetCampaign, BitParallelWorkersMatchSingleProcess) {
  net::CampaignSpec spec = small_spec();
  spec.config.engine = sim::EngineKind::kBitParallel;
  const soc::SocModel model = net::build_model(spec);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignResult baseline = fi::run_campaign(model, spec.config, db);

  std::vector<net::WorkerOptions> workers(2);
  const fi::CampaignResult merged = run_loopback(spec, db, workers);
  expect_same_result(merged, baseline);
}

TEST(NetCampaign, WorkerDefectionMidCampaignIsReassignedDeterministically) {
  const net::CampaignSpec spec = small_spec();
  const soc::SocModel model = net::build_model(spec);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignResult baseline = fi::run_campaign(model, spec.config, db);
  ASSERT_GT(baseline.records.size(), 12u);

  // Small chunks force many work items; one worker completes a single chunk
  // and then vanishes with its next one unanswered (= killed mid-chunk), one
  // leaves cleanly after two chunks, one soldiers on. The coordinator must
  // reassign the lost chunk and still merge a byte-identical result.
  std::vector<net::WorkerOptions> workers(3);
  workers[0].defect_after_chunks = 1;
  workers[1].max_chunks = 2;
  const fi::CampaignResult merged =
      run_loopback(spec, db, workers, /*chunk=*/3);
  expect_same_result(merged, baseline);
}

TEST(NetCampaign, WorkerRejectsDigestMismatch) {
  // A hand-rolled "coordinator" that serves a campaign whose digest does not
  // match the spec it sent: the worker must refuse before simulating.
  const auto db = radiation::SoftErrorDatabase::default_database();
  util::ListenSocket listener(0, /*loopback_only=*/true);
  std::thread fake([&listener] {
    util::Socket conn = listener.accept();
    net::Frame frame;
    ASSERT_TRUE(net::recv_frame(conn, frame));
    ASSERT_EQ(frame.type, net::MsgType::kHello);
    util::ByteReader hello_payload(frame.payload);
    const net::HelloMsg hello = net::HelloMsg::decode(hello_payload);

    // Pass the (open-fleet) handshake honestly; only the digest lies.
    net::ChallengeMsg challenge;
    challenge.nonce = net::fresh_nonce();
    challenge.config_digest = 0xdeadbeef;  // wrong on purpose
    challenge.mac =
        net::handshake_mac("", net::kProtocolVersion, challenge.config_digest,
                           challenge.epoch, hello.nonce);
    net::send_frame(conn, net::MsgType::kChallenge,
                    net::encode_payload(challenge));
    ASSERT_TRUE(net::recv_frame(conn, frame));
    ASSERT_EQ(frame.type, net::MsgType::kAuth);

    net::CampaignMsg campaign;
    campaign.spec = small_spec();
    campaign.config_digest = 0xdeadbeef;
    campaign.total_injections = 1;
    net::send_frame(conn, net::MsgType::kCampaign,
                    net::encode_payload(campaign));
    // The worker replies with an error frame before throwing.
    net::Frame reply;
    if (net::recv_frame(conn, reply)) {
      EXPECT_EQ(reply.type, net::MsgType::kError);
    }
  });
  net::WorkerOptions wopts;
  wopts.host = "127.0.0.1";
  wopts.port = listener.port();
  net::Worker worker(db, wopts);
  EXPECT_THROW((void)worker.run(), InvalidArgument);
  fake.join();
}

TEST(NetSocket, ConnectTimesOutAgainstNoListener) {
  // Port 1 on loopback: nothing listens there in any sane environment.
  EXPECT_THROW((void)util::connect_to("127.0.0.1", 1, 0.2), Error);
}

// --- per-frame receive deadline (slow-loris guard) ---------------------------

TEST(NetProtocol, FrameDeadlineAcceptsATimelyFrame) {
  auto [a, b] = util::Socket::pair();
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  net::send_frame(a, net::MsgType::kWork, payload);
  net::Frame frame;
  ASSERT_TRUE(net::recv_frame_deadline(b, frame, 5.0));
  EXPECT_EQ(frame.type, net::MsgType::kWork);
  EXPECT_EQ(frame.payload, payload);
  // Clean EOF between frames is still a false, not a deadline error.
  a.close();
  EXPECT_FALSE(net::recv_frame_deadline(b, frame, 5.0));
}

TEST(NetProtocol, FrameDeadlineRejectsASlowLorisPeer) {
  // The peer trickles a frame header and then stalls forever with the
  // connection open: a plain blocking read would hang the coordinator's
  // whole dispatch loop. The deadline read throws with byte progress.
  auto [a, b] = util::Socket::pair();
  const std::vector<std::uint8_t> wire =
      net::encode_frame(net::MsgType::kWork, std::vector<std::uint8_t>(64, 1));
  a.send_all(wire.data(), 10);  // header + 0 of 64 payload bytes, then silence
  net::Frame frame;
  try {
    (void)net::recv_frame_deadline(b, frame, 0.2);
    FAIL() << "expected the deadline to fire";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos)
        << e.what();
  }
}

TEST(NetProtocol, FrameDeadlineRejectsNonPositiveDeadline) {
  auto [a, b] = util::Socket::pair();
  net::Frame frame;
  EXPECT_THROW((void)net::recv_frame_deadline(b, frame, 0.0), InvalidArgument);
  EXPECT_THROW((void)net::recv_frame_deadline(b, frame, -1.0), InvalidArgument);
}

}  // namespace
}  // namespace ssresf
