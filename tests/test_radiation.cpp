// Radiation model tests: the soft-error database (defaults, YAML round
// trip, interpolation), environment math, and fault injection semantics.
#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "radiation/environment.h"
#include "radiation/injector.h"
#include "radiation/soft_error_db.h"
#include "sim/event_sim.h"
#include "sim/testbench.h"
#include "util/error.h"

namespace ssresf::radiation {
namespace {

using netlist::CellKind;
using netlist::MemTech;

TEST(SoftErrorDb, DefaultCoversAllKinds) {
  const auto db = SoftErrorDatabase::default_database();
  for (int k = 0; k < netlist::kNumCellKinds; ++k) {
    const auto kind = static_cast<CellKind>(k);
    if (kind == CellKind::kConst0 || kind == CellKind::kConst1) {
      EXPECT_DOUBLE_EQ(db.cell_xsect(kind, 37.0), 0.0);
      continue;
    }
    if (kind == CellKind::kMemory) continue;
    EXPECT_GT(db.cell_xsect(kind, 37.0), 0.0) << "kind " << k;
  }
  for (const MemTech tech :
       {MemTech::kSram, MemTech::kDram, MemTech::kRadHardSram}) {
    EXPECT_GT(db.mem_bit_xsect(tech, 37.0), 0.0);
  }
}

TEST(SoftErrorDb, CrossSectionsGrowWithLet) {
  const auto db = SoftErrorDatabase::default_database();
  for (const CellKind kind : {CellKind::kDff, CellKind::kNand2, CellKind::kXor2}) {
    EXPECT_LT(db.cell_xsect(kind, 1.0), db.cell_xsect(kind, 37.0));
    EXPECT_LT(db.cell_xsect(kind, 37.0), db.cell_xsect(kind, 100.0));
  }
}

TEST(SoftErrorDb, TechOrderingSramDramRadhard) {
  const auto db = SoftErrorDatabase::default_database();
  for (const double let : {1.0, 37.0, 100.0}) {
    EXPECT_GT(db.mem_bit_xsect(MemTech::kSram, let),
              db.mem_bit_xsect(MemTech::kDram, let));
    EXPECT_GT(db.mem_bit_xsect(MemTech::kDram, let),
              100 * db.mem_bit_xsect(MemTech::kRadHardSram, let));
  }
}

TEST(SoftErrorDb, InterpolationIsMonotoneAndClamped) {
  const auto db = SoftErrorDatabase::default_database();
  const CellEntry* entry = db.find("DFFX1");
  ASSERT_NE(entry, nullptr);
  const double at_1 = entry->xsect_at(1.0);
  const double at_20 = entry->xsect_at(20.0);
  const double at_37 = entry->xsect_at(37.0);
  EXPECT_GT(at_20, at_1);
  EXPECT_LT(at_20, at_37);
  EXPECT_DOUBLE_EQ(entry->xsect_at(0.1), at_1);      // clamp low
  EXPECT_DOUBLE_EQ(entry->xsect_at(500.0), entry->xsect_at(100.0));
}

TEST(SoftErrorDb, YamlRoundTrip) {
  const auto db = SoftErrorDatabase::default_database();
  const std::string yaml = db.to_yaml();
  const auto parsed = SoftErrorDatabase::from_yaml(yaml);
  EXPECT_EQ(parsed.entries().size(), db.entries().size());
  for (const double let : {1.0, 37.0, 100.0}) {
    EXPECT_DOUBLE_EQ(parsed.cell_xsect(CellKind::kDffR, let),
                     db.cell_xsect(CellKind::kDffR, let));
    EXPECT_DOUBLE_EQ(parsed.mem_bit_xsect(MemTech::kDram, let),
                     db.mem_bit_xsect(MemTech::kDram, let));
  }
  // The dump uses the Fig. 3 schema.
  EXPECT_NE(yaml.find("CellName:"), std::string::npos);
  EXPECT_NE(yaml.find("subXsect:"), std::string::npos);
  EXPECT_NE(yaml.find("SEU 1->0"), std::string::npos);
  EXPECT_NE(yaml.find("(q==1) & (qn==0)"), std::string::npos);
}

TEST(SoftErrorDb, DuplicateEntryRejected) {
  auto db = SoftErrorDatabase::default_database();
  CellEntry dup;
  dup.cell_name = "DFFX1";
  EXPECT_THROW(db.add(std::move(dup)), InvalidArgument);
}

TEST(SoftErrorDb, NetlistXsectAggregates) {
  netlist::NetlistBuilder b("t");
  const auto clk = b.input("clk");
  const auto a = b.input("a");
  const auto x = b.nand2(a, a);
  const auto q = b.dff(x, clk).q;
  b.output(q, "q");
  const auto nl = b.finish();
  const auto db = SoftErrorDatabase::default_database();
  const auto xsect = db.netlist_xsect(nl, 37.0);
  EXPECT_DOUBLE_EQ(xsect.set_cm2, db.cell_xsect(CellKind::kNand2, 37.0));
  EXPECT_DOUBLE_EQ(xsect.seu_cm2, db.cell_xsect(CellKind::kDff, 37.0));
}

TEST(Environment, PoissonMath) {
  Environment env;
  env.flux = 1e9;
  // Expected upsets = flux * sigma * T.
  EXPECT_NEAR(env.expected_upsets(1e-8, 1'000'000), 1e9 * 1e-8 * 1e-6, 1e-15);
  // Small-rate regime: p ~ rate.
  EXPECT_NEAR(env.upset_probability(1e-12, 1000), 1e9 * 1e-12 * 1e-9, 1e-15);
  // Large-rate regime saturates below 1.
  env.flux = 1e15;
  const double p = env.upset_probability(1e-5, 1'000'000'000);
  EXPECT_GT(p, 0.99);
  EXPECT_LE(p, 1.0);
}

TEST(Environment, PulseWidthGrowsWithLet) {
  Environment low;
  low.let = 1.0;
  Environment mid;
  mid.let = 37.0;
  Environment high;
  high.let = 100.0;
  EXPECT_LT(low.set_pulse_width_ps(), mid.set_pulse_width_ps());
  EXPECT_LT(mid.set_pulse_width_ps(), high.set_pulse_width_ps());
  EXPECT_GT(low.set_pulse_width_ps(), 30u);   // wider than a gate delay
  EXPECT_LT(high.set_pulse_width_ps(), 1000u);
}

TEST(Injector, TargetKindsFollowCellKinds) {
  netlist::NetlistBuilder b("t");
  const auto clk = b.input("clk");
  const auto a = b.input("a");
  const auto x = b.xor2(a, a);
  const auto ff = b.dff(x, clk);
  netlist::MemoryInfo info;
  info.words = 16;
  info.width = 8;
  std::vector<netlist::NetId> addr(4, a);
  std::vector<netlist::NetId> wdata(8, a);
  const auto mem =
      b.memory(std::move(info), clk, b.one(), b.zero(), addr, addr, wdata, "m");
  b.output(ff.q, "q");
  b.output(mem.rdata[0], "r");
  const auto nl = b.finish();

  const Injector injector(nl);
  util::Rng rng(1);
  const auto xor_cell = nl.net(x).driver;
  EXPECT_EQ(injector.target_for_cell(xor_cell, rng).kind, FaultKind::kSet);
  EXPECT_EQ(injector.target_for_cell(ff.cell, rng).kind, FaultKind::kSeu);
  const auto mem_target = injector.target_for_cell(mem.cell, rng);
  EXPECT_EQ(mem_target.kind, FaultKind::kMemBit);
  EXPECT_LT(mem_target.word, 16u);
  EXPECT_LT(mem_target.bit, 8u);
}

TEST(Injector, RandomEventWithinWindow) {
  netlist::NetlistBuilder b("t");
  const auto a = b.input("a");
  b.output(b.inv(a), "y");
  const auto nl = b.finish();
  const Injector injector(nl);
  util::Rng rng(9);
  Environment env;
  FaultTarget target;
  target.kind = FaultKind::kSet;
  target.cell = netlist::CellId{0};
  for (int i = 0; i < 100; ++i) {
    const auto event = injector.random_event(target, 1000, 5000, env, rng);
    EXPECT_GE(event.time_ps, 1000u);
    EXPECT_LT(event.time_ps, 5000u);
    EXPECT_EQ(event.set_width_ps, env.set_pulse_width_ps());
  }
  EXPECT_THROW((void)injector.random_event(target, 100, 100, env, rng),
               InvalidArgument);
}

TEST(Injector, ScheduledSeuFlipsAndHeals) {
  netlist::NetlistBuilder b("t");
  const auto clk = b.input("clk");
  const auto rstn = b.input("rstn");
  const auto ff = b.dffr(b.zero(), clk, rstn, "u_ff");  // always captures 0
  b.output(ff.q, "q");
  const auto nl = b.finish();

  sim::EventSimulator engine(nl);
  sim::TestbenchConfig cfg;
  cfg.clk = nl.find_net("clk");
  cfg.rstn = nl.find_net("rstn");
  cfg.monitored = {ff.q};
  sim::Testbench tb(engine, cfg);

  const Injector injector(nl);
  FaultEvent event;
  event.target.kind = FaultKind::kSeu;
  event.target.cell = ff.cell;
  event.time_ps = tb.sample_time(6) + 100;  // just after cycle 6's sample
  injector.schedule(tb, event);

  tb.reset();
  tb.run_cycles(8);
  const auto& trace = tb.trace();
  // Cycle 7 samples the flipped state; cycle 8+ has recaptured 0. (4 reset
  // cycles + indices: flip lands between samples 6 and 7.)
  EXPECT_EQ(trace.cycle(6)[0], netlist::Logic::L0);
  EXPECT_EQ(trace.cycle(7)[0], netlist::Logic::L1);
  EXPECT_EQ(trace.cycle(8)[0], netlist::Logic::L0);
}

TEST(Injector, ScheduledSetIsTransient) {
  netlist::NetlistBuilder b("t");
  const auto clk = b.input("clk");
  const auto a = b.input("a");
  const auto x = b.buf(a);
  b.output(x, "y");
  (void)clk;
  const auto nl = b.finish();

  sim::EventSimulator engine(nl);
  sim::TestbenchConfig cfg;
  cfg.clk = nl.find_net("clk");
  cfg.rstn = netlist::kNoNet;
  cfg.monitored = {x};
  sim::Testbench tb(engine, cfg);
  engine.set_input(nl.find_net("a"), netlist::Logic::L0);

  const Injector injector(nl);
  FaultEvent event;
  event.target.kind = FaultKind::kSet;
  event.target.cell = nl.net(x).driver;
  event.time_ps = tb.sample_time(2) - 100;
  event.set_width_ps = 400;  // covers the cycle-2 sample, gone by cycle 3
  injector.schedule(tb, event);
  tb.run_cycles(5);
  EXPECT_EQ(tb.trace().cycle(1)[0], netlist::Logic::L0);
  EXPECT_EQ(tb.trace().cycle(2)[0], netlist::Logic::L1);  // pulse visible
  EXPECT_EQ(tb.trace().cycle(3)[0], netlist::Logic::L0);  // released
}

}  // namespace
}  // namespace ssresf::radiation
