// Property-based suites: randomly generated netlists swept over seeds, with
// invariants checked on each — structural Verilog write/parse must be a
// lossless round trip, both engines must agree cycle-by-cycle, logic depth
// must bound the critical-path estimate, and clustering must be a stable
// partition.
#include <gtest/gtest.h>

#include "cluster/kcluster.h"
#include "netlist/builder.h"
#include "netlist/stats.h"
#include "netlist/verilog.h"
#include "sim/event_sim.h"
#include "sim/levelized_sim.h"
#include "sim/testbench.h"
#include "util/rng.h"

namespace ssresf {
namespace {

using netlist::CellKind;
using netlist::Logic;
using netlist::Netlist;
using netlist::NetlistBuilder;
using netlist::NetId;

struct RandomDesign {
  Netlist netlist;
  NetId clk;
  NetId rstn;
  std::vector<NetId> inputs;
  std::vector<NetId> outputs;
};

/// Random hierarchical sequential netlist: scopes two levels deep, a mix of
/// every combinational kind, DFF variants, and (optionally) a memory macro.
RandomDesign random_design(std::uint64_t seed, bool with_memory) {
  util::Rng rng(seed);
  NetlistBuilder b("rand" + std::to_string(seed));
  RandomDesign d{Netlist{}, {}, {}, {}, {}};
  d.clk = b.input("clk");
  d.rstn = b.input("rstn");
  for (int i = 0; i < 4; ++i) {
    d.inputs.push_back(b.input("in" + std::to_string(i)));
  }
  std::vector<NetId> pool = d.inputs;
  const auto pick = [&] {
    return pool[static_cast<std::size_t>(rng.below(pool.size()))];
  };

  const int num_scopes = 2 + static_cast<int>(rng.below(3));
  for (int s = 0; s < num_scopes; ++s) {
    const auto mclass = static_cast<netlist::ModuleClass>(1 + rng.below(4));
    const auto outer = b.scope("blk" + std::to_string(s), mclass);
    const auto inner = b.scope("sub" + std::to_string(s));
    const int gates = 10 + static_cast<int>(rng.below(30));
    for (int g = 0; g < gates; ++g) {
      NetId out;
      switch (rng.below(12)) {
        case 0:
          out = b.inv(pick());
          break;
        case 1:
          out = b.and2(pick(), pick());
          break;
        case 2:
          out = b.or2(pick(), pick());
          break;
        case 3:
          out = b.nand2(pick(), pick());
          break;
        case 4:
          out = b.nor2(pick(), pick());
          break;
        case 5:
          out = b.xor2(pick(), pick());
          break;
        case 6:
          out = b.xnor2(pick(), pick());
          break;
        case 7:
          out = b.mux2(pick(), pick(), pick());
          break;
        case 8:
          out = b.aoi21(pick(), pick(), pick());
          break;
        case 9:
          out = b.oai21(pick(), pick(), pick());
          break;
        case 10:
          out = b.dffr(pick(), d.clk, d.rstn).q;
          break;
        default:
          out = b.dffe(pick(), d.clk, d.rstn, pick()).q;
          break;
      }
      pool.push_back(out);
    }
  }
  if (with_memory) {
    const auto scope = b.scope("ram", netlist::ModuleClass::kMemory);
    netlist::MemoryInfo info;
    info.words = 16;
    info.width = 4;
    info.tech = netlist::MemTech::kDram;
    info.init = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0};
    std::vector<NetId> raddr = {pick(), pick(), pick(), pick()};
    std::vector<NetId> waddr = {pick(), pick(), pick(), pick()};
    std::vector<NetId> wdata = {pick(), pick(), pick(), pick()};
    const auto mem = b.memory(std::move(info), d.clk, b.one(), pick(), raddr,
                              waddr, wdata, "u_ram");
    for (const NetId r : mem.rdata) pool.push_back(r);
  }
  for (int i = 0; i < 6; ++i) {
    const NetId out = pool[pool.size() - 1 - static_cast<std::size_t>(i)];
    d.outputs.push_back(out);
    b.output(out, "out" + std::to_string(i));
  }
  d.netlist = b.finish();
  return d;
}

class RandomNetlist : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNetlist, VerilogRoundTripIsLossless) {
  const RandomDesign d = random_design(GetParam(), GetParam() % 2 == 0);
  const std::string text = netlist::write_verilog(d.netlist);
  const Netlist parsed = netlist::parse_verilog(text);
  EXPECT_EQ(parsed.num_cells(), d.netlist.num_cells());
  EXPECT_EQ(parsed.num_nets(), d.netlist.num_nets());
  EXPECT_EQ(parsed.num_sequential_cells(), d.netlist.num_sequential_cells());
  EXPECT_EQ(parsed.primary_inputs().size(), d.netlist.primary_inputs().size());
  EXPECT_EQ(parsed.primary_outputs().size(),
            d.netlist.primary_outputs().size());
  // Every cell path must resolve in the parsed design with the same kind
  // and module class.
  for (const auto id : d.netlist.all_cells()) {
    const auto path = d.netlist.cell_path(id);
    const auto pid = parsed.find_cell(path);
    ASSERT_TRUE(pid.valid()) << path;
    EXPECT_EQ(parsed.cell(pid).kind, d.netlist.cell(id).kind) << path;
    EXPECT_EQ(parsed.cell_class(pid), d.netlist.cell_class(id)) << path;
  }
  // And a second write must be byte-identical (canonical form).
  EXPECT_EQ(netlist::write_verilog(parsed), text);
}

TEST_P(RandomNetlist, EnginesAgreeCycleByCycle) {
  const RandomDesign d = random_design(GetParam(), GetParam() % 2 == 0);
  sim::EventSimulator event_engine(d.netlist);
  sim::LevelizedSimulator level_engine(d.netlist);
  sim::TestbenchConfig cfg;
  cfg.clk = d.clk;
  cfg.rstn = d.rstn;
  cfg.monitored = d.outputs;
  // Inputs toggle a quarter-period before each sample, so the quarter
  // period must itself cover the critical path (otherwise the event engine
  // correctly samples unsettled logic and diverges from the zero-delay
  // levelized engine).
  cfg.clock_period_ps = static_cast<std::uint64_t>(
      netlist::estimate_critical_path_ps(d.netlist) * 5);
  sim::Testbench tb_event(event_engine, cfg);
  sim::Testbench tb_level(level_engine, cfg);

  util::Rng stim(GetParam() ^ 0xABCD);
  for (int cyc = 0; cyc < 30; ++cyc) {
    for (const NetId in : d.inputs) {
      const Logic v = netlist::from_bool(stim.chance(0.5));
      const std::uint64_t t =
          tb_event.sample_time(static_cast<std::uint64_t>(cyc)) -
          cfg.clock_period_ps / 4;
      tb_event.at(t, [in, v](sim::Engine& e) { e.set_input(in, v); });
      tb_level.at(t, [in, v](sim::Engine& e) { e.set_input(in, v); });
    }
  }
  tb_event.reset();
  tb_level.reset();
  tb_event.run_cycles(24);
  tb_level.run_cycles(24);
  EXPECT_EQ(sim::OutputTrace::first_mismatch(tb_event.trace(),
                                             tb_level.trace()),
            std::nullopt)
      << "seed " << GetParam();
}

TEST_P(RandomNetlist, LogicDepthBoundsCriticalPath) {
  const RandomDesign d = random_design(GetParam(), false);
  const auto depths = netlist::compute_logic_depths(d.netlist);
  int max_depth = 0;
  for (const int v : depths) max_depth = std::max(max_depth, v);
  const auto crit = netlist::estimate_critical_path_ps(d.netlist);
  // Every level contributes at least the fastest cell delay and at most the
  // slowest (memory) delay, plus launch/setup margins.
  EXPECT_GE(crit, 8 * max_depth);
  EXPECT_LE(crit, 70 + 60 * (max_depth + 2));
}

TEST_P(RandomNetlist, ClusteringIsStablePartition) {
  const RandomDesign d = random_design(GetParam(), GetParam() % 2 == 0);
  cluster::ClusteringConfig cfg;
  cfg.num_clusters = 4;
  util::Rng rng_a(GetParam());
  util::Rng rng_b(GetParam());
  const auto a = cluster::cluster_cells(d.netlist, cfg, rng_a);
  const auto b = cluster::cluster_cells(d.netlist, cfg, rng_b);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
  std::size_t total = 0;
  for (const auto& c : a.clusters) total += c.size();
  EXPECT_EQ(total, d.netlist.num_cells());
  std::uint64_t weight = 0;
  for (const auto w : a.cluster_weight) weight += w;
  EXPECT_GE(weight, d.netlist.num_cells());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetlist,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace ssresf
