// The model-serving subsystem: registry scan/hot-reload semantics (including
// the failed-reload-keeps-old-generation contract and the memoized bundle
// loader), the prediction daemon's SSNP and HTTP fronts answering
// bit-identically to the offline core::bundle_classify arithmetic under
// concurrent clients and mid-load hot reloads, loud digest-mismatch
// refusals, malformed-input rejection that never kills the daemon, the
// graceful drain, and Session's publish_dir hand-off into the registry.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model_io.h"
#include "core/scenario.h"
#include "core/session.h"
#include "net/protocol.h"
#include "radiation/soft_error_db.h"
#include "serve/http.h"
#include "serve/predict_client.h"
#include "serve/predict_server.h"
#include "serve/registry.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/socket.h"

namespace ssresf {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path dir;
  explicit TempDir(const std::string& tag) {
    dir = fs::temp_directory_path() /
          ("ssresf_serve_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~TempDir() {
    std::error_code ignored;
    fs::remove_all(dir, ignored);
  }
  [[nodiscard]] std::string path() const { return dir.string(); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (dir / name).string();
  }
};

/// A small trained bundle over two features, separable on x. `invert` flips
/// every label — two genuinely different models for hot-reload tests.
core::ModelBundle make_bundle(std::uint64_t digest, bool invert = false) {
  util::Rng rng(7);
  ml::Dataset d({"x", "y"});
  for (int i = 0; i < 60; ++i) {
    const double x = rng.uniform(-2, 2);
    const int label = ((x > 0) != invert) ? 1 : -1;
    d.add({x, rng.uniform(-2, 2)}, label);
  }
  core::ModelBundle b;
  b.config_digest = digest;
  b.scenario_name = "serve-test";
  b.chosen_svm.kernel.type = ml::KernelType::kLinear;
  b.chosen_svm.c = 4.0;
  b.selected_features = {0, 1};
  b.feature_names = {"x", "y"};
  b.cv_mean_accuracy = 0.99;
  b.scaler.fit(d);
  ml::Dataset scaled = d;
  b.scaler.transform(scaled);
  b.model = ml::SvmClassifier(b.chosen_svm);
  b.model.train(scaled);
  return b;
}

std::vector<std::vector<double>> make_rows(std::size_t n) {
  util::Rng rng(23);
  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back({rng.uniform(-2, 2), rng.uniform(-2, 2)});
  }
  return rows;
}

std::vector<int> local_labels(const core::ModelBundle& bundle,
                              const std::vector<std::vector<double>>& rows) {
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    out.push_back(core::bundle_classify(bundle, row));
  }
  return out;
}

/// Rewrites `path` and guarantees its on-disk identity actually changed:
/// a same-size rewrite inside one filesystem-timestamp tick would be
/// invisible to the (path, mtime, size) signatures the loader cache and
/// registry use — exactly the ambiguity this helper spins past.
void rewrite_bundle(const std::string& path, const core::ModelBundle& bundle) {
  const auto before = fs::last_write_time(path);
  core::write_model_file(path, bundle);
  for (int i = 0; i < 500 && fs::last_write_time(path) == before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    core::write_model_file(path, bundle);
  }
  ASSERT_NE(fs::last_write_time(path), before);
}

serve::PredictServerOptions quiet_options(const std::string& models_dir) {
  serve::PredictServerOptions o;
  o.models_dir = models_dir;
  o.threads = 4;
  o.reload_interval_seconds = 0;  // tests drive reloads deterministically
  return o;
}

/// One raw HTTP exchange: send `request` verbatim, read until the headers
/// plus the Content-Length-framed body have fully arrived (or EOF).
std::string raw_http(std::uint16_t port, const std::string& request) {
  util::Socket s = util::connect_to("127.0.0.1", port, 5.0);
  s.send_all(request.data(), request.size());
  std::string response;
  std::size_t want = std::string::npos;
  char buf[4096];
  while (s.wait_readable(5000)) {
    const std::size_t n = s.recv_some(buf, sizeof(buf));
    if (n == 0) break;
    response.append(buf, n);
    if (want == std::string::npos) {
      const std::size_t header_end = response.find("\r\n\r\n");
      if (header_end == std::string::npos) continue;
      std::size_t body_len = 0;
      const std::size_t at = response.find("Content-Length:");
      if (at != std::string::npos && at < header_end) {
        body_len = std::stoul(response.substr(at + 15));
      }
      want = header_end + 4 + body_len;
    }
    if (response.size() >= want) break;
  }
  return response;
}

// --- registry ----------------------------------------------------------------

TEST(Registry, ScansAliasesByStemAndRetiresVanishedFiles) {
  TempDir tmp("scan");
  core::write_model_file(tmp.file("alpha.ssmd"), make_bundle(0x1111));
  core::write_model_file(tmp.file("beta.ssmd"), make_bundle(0x2222));

  serve::ModelRegistry registry(tmp.path());
  EXPECT_EQ(registry.refresh(), 2u);
  ASSERT_EQ(registry.list().size(), 2u);

  const auto alpha = registry.find("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->alias, "alpha");
  EXPECT_EQ(alpha->bundle->config_digest, 0x1111u);
  EXPECT_EQ(registry.find("nope"), nullptr);

  const auto by_digest = registry.find_by_digest(0x2222);
  ASSERT_NE(by_digest, nullptr);
  EXPECT_EQ(by_digest->alias, "beta");

  // Unchanged files do not reload; a vanished file retires its alias.
  EXPECT_EQ(registry.refresh(), 0u);
  fs::remove(tmp.file("beta.ssmd"));
  registry.refresh();
  EXPECT_EQ(registry.find("beta"), nullptr);
  EXPECT_EQ(registry.list().size(), 1u);
}

TEST(Registry, HotReloadBumpsGenerationAndKeepsOldBundlesAlive) {
  TempDir tmp("reload");
  core::write_model_file(tmp.file("m.ssmd"), make_bundle(0x1111));
  serve::ModelRegistry registry(tmp.path());
  registry.refresh();
  const auto old_entry = registry.find("m");
  ASSERT_NE(old_entry, nullptr);
  const std::uint64_t old_generation = registry.generation();

  const std::vector<std::vector<double>> rows = make_rows(16);
  const std::vector<int> old_labels = local_labels(*old_entry->bundle, rows);

  rewrite_bundle(tmp.file("m.ssmd"), make_bundle(0x1111, true));
  EXPECT_EQ(registry.refresh(), 1u);
  EXPECT_GT(registry.generation(), old_generation);
  const auto new_entry = registry.find("m");
  ASSERT_NE(new_entry, nullptr);
  EXPECT_GT(new_entry->generation, old_entry->generation);

  // The swapped-out generation still answers for whoever holds it — and the
  // inverted model really is a different model.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(core::bundle_classify(*old_entry->bundle, rows[i]),
              old_labels[i]);
    EXPECT_EQ(core::bundle_classify(*new_entry->bundle, rows[i]),
              -old_labels[i]);
  }
}

TEST(Registry, FailedDecodeIsRecordedAndKeepsTheOldGenerationServing) {
  TempDir tmp("badfile");
  core::write_model_file(tmp.file("m.ssmd"), make_bundle(0x1111));
  serve::ModelRegistry registry(tmp.path());
  registry.refresh();
  const std::uint64_t generation = registry.generation();

  std::ofstream(tmp.file("m.ssmd"), std::ios::trunc) << "not a model bundle";
  registry.refresh();
  ASSERT_EQ(registry.load_errors().size(), 1u);
  EXPECT_NE(registry.load_errors()[0].first.find("m.ssmd"), std::string::npos);
  // Crucially: the previously published generation is untouched.
  EXPECT_EQ(registry.generation(), generation);
  const auto entry = registry.find("m");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->bundle->config_digest, 0x1111u);
}

TEST(Registry, LoadFileIsMemoizedPerOnDiskIdentity) {
  TempDir tmp("memo");
  const std::string path = tmp.file("m.ssmd");
  core::write_model_file(path, make_bundle(0x1111));
  const auto first = serve::ModelRegistry::load_file(path);
  const auto again = serve::ModelRegistry::load_file(path);
  EXPECT_EQ(first.get(), again.get());  // one warm copy, process-wide

  rewrite_bundle(path, make_bundle(0x2222, true));
  const auto reloaded = serve::ModelRegistry::load_file(path);
  EXPECT_NE(first.get(), reloaded.get());
  EXPECT_EQ(reloaded->config_digest, 0x2222u);
  EXPECT_THROW((void)serve::ModelRegistry::load_file(tmp.file("missing.ssmd")),
               Error);
}

// --- the daemon's two fronts --------------------------------------------------

TEST(Serve, BothFrontsMatchOfflineArithmeticBitExactly) {
  TempDir tmp("fronts");
  const core::ModelBundle bundle = make_bundle(0xd1d1);
  core::write_model_file(tmp.file("m.ssmd"), bundle);
  serve::PredictServer server(quiet_options(tmp.path()));
  server.start();

  const std::vector<std::vector<double>> rows = make_rows(64);
  const std::vector<int> expected = local_labels(bundle, rows);

  serve::PredictClient ssnp("127.0.0.1", server.ssnp_port());
  const serve::PredictResult a = ssnp.predict("m", 0xd1d1, rows);
  EXPECT_EQ(a.labels, expected);
  EXPECT_EQ(a.alias, "m");
  EXPECT_EQ(a.config_digest, 0xd1d1u);

  serve::HttpPredictClient http("127.0.0.1", server.http_port());
  const serve::PredictResult b = http.predict("m", 0xd1d1, rows);
  EXPECT_EQ(b.labels, expected);
  EXPECT_EQ(b.config_digest, 0xd1d1u);

  // Resolve-by-digest with an empty alias works too.
  EXPECT_EQ(ssnp.predict("", 0xd1d1, rows).labels, expected);

  // The metrics saw all three accepted batches: alias-addressed requests
  // under "m", the by-digest one under its hex digest key.
  const serve::ModelStats stats = server.registry().stats("m");
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.rows, 2 * rows.size());
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(server.registry().stats("0x000000000000d1d1").requests, 1u);
  EXPECT_NE(server.stats_table().find("m"), std::string::npos);
}

TEST(Serve, ConcurrentClientsOnBothFrontsAgree) {
  TempDir tmp("concurrent");
  const core::ModelBundle bundle = make_bundle(0xc0c0);
  core::write_model_file(tmp.file("m.ssmd"), bundle);
  serve::PredictServer server(quiet_options(tmp.path()));
  server.start();

  const std::vector<std::vector<double>> rows = make_rows(32);
  const std::vector<int> expected = local_labels(bundle, rows);

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&, t] {
      try {
        for (int round = 0; round < 8; ++round) {
          serve::PredictResult result;
          if (t % 2 == 0) {
            serve::PredictClient c("127.0.0.1", server.ssnp_port());
            result = c.predict("m", 0, rows);
          } else {
            serve::HttpPredictClient c("127.0.0.1", server.http_port());
            result = c.predict("m", 0, rows);
          }
          if (result.labels != expected) mismatches.fetch_add(1);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.registry().stats("m").requests, 48u);
}

TEST(Serve, DigestMismatchAndUnknownAliasAreRefusedLoudly) {
  TempDir tmp("refuse");
  core::write_model_file(tmp.file("m.ssmd"), make_bundle(0xaaaa));
  serve::PredictServer server(quiet_options(tmp.path()));
  server.start();
  const std::vector<std::vector<double>> rows = make_rows(4);

  serve::PredictClient client("127.0.0.1", server.ssnp_port());
  try {
    (void)client.predict("m", 0xbbbb, rows);
    FAIL() << "digest mismatch was answered";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("digest mismatch"), std::string::npos) << what;
    // Both digests are named — the operator can see what went stale.
    EXPECT_NE(what.find("aaaa"), std::string::npos) << what;
    EXPECT_NE(what.find("bbbb"), std::string::npos) << what;
  }
  EXPECT_THROW((void)client.predict("ghost", 0, rows), Error);
  // Refusals are in-band: the same connection still answers good batches.
  EXPECT_EQ(client.predict("m", 0xaaaa, rows).alias, "m");
  EXPECT_EQ(server.registry().stats("m").errors, 1u);

  // The HTTP front refuses with the matching statuses.
  const std::string conflict = raw_http(
      server.http_port(),
      "POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 48\r\n\r\n"
      "{\"model\":\"m\",\"digest\":\"bbbb\",\"rows\":[[0.5,0.5]]}");
  EXPECT_NE(conflict.find("409"), std::string::npos) << conflict;
  const std::string missing = raw_http(
      server.http_port(),
      "POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 36\r\n\r\n"
      "{\"model\":\"ghost\",\"rows\":[[0.5,0.5]]}");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;
}

TEST(Serve, HotReloadUnderLoadServesOldOrNewNeverGarbage) {
  TempDir tmp("hotload");
  const core::ModelBundle old_bundle = make_bundle(0xe1e1);
  const core::ModelBundle new_bundle = make_bundle(0xe1e1, true);
  core::write_model_file(tmp.file("m.ssmd"), old_bundle);
  serve::PredictServer server(quiet_options(tmp.path()));
  server.start();

  const std::vector<std::vector<double>> rows = make_rows(16);
  const std::vector<int> old_labels = local_labels(old_bundle, rows);
  const std::vector<int> new_labels = local_labels(new_bundle, rows);
  ASSERT_NE(old_labels, new_labels);

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::atomic<int> saw_new{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      serve::PredictClient c("127.0.0.1", server.ssnp_port());
      while (!stop.load()) {
        const serve::PredictResult r = c.predict("m", 0xe1e1, rows);
        // Every answer is one coherent generation: exactly the old model's
        // labels or exactly the new model's — never a torn mix.
        if (r.labels == new_labels) {
          saw_new.fetch_add(1);
        } else if (r.labels != old_labels) {
          bad.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  rewrite_bundle(tmp.file("m.ssmd"), new_bundle);  // atomic publish
  server.registry().refresh();  // what the watcher thread does on its tick
  // Keep hammering until the swap is observed.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  while (saw_new.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(saw_new.load(), 0);
}

TEST(Serve, MalformedInputsNeverKillTheDaemon) {
  TempDir tmp("malformed");
  const core::ModelBundle bundle = make_bundle(0xf00d);
  core::write_model_file(tmp.file("m.ssmd"), bundle);
  serve::PredictServer server(quiet_options(tmp.path()));
  server.start();
  const std::vector<std::vector<double>> rows = make_rows(4);

  // Unframeable garbage on the SSNP port: the connection is dropped...
  {
    util::Socket s = util::connect_to("127.0.0.1", server.ssnp_port(), 5.0);
    const char garbage[] = "this is definitely not an SSNP frame";
    s.send_all(garbage, sizeof(garbage));
    char buf[64];
    std::size_t n = 1;
    try {
      ASSERT_TRUE(s.wait_readable(5000));
      n = s.recv_some(buf, sizeof(buf));
    } catch (const Error&) {
      n = 0;  // an RST (unread bytes at close) is also "dropped", not a crash
    }
    EXPECT_EQ(n, 0u);
  }
  // ...a wrong-but-well-framed message type is answered in-band...
  {
    util::Socket s = util::connect_to("127.0.0.1", server.ssnp_port(), 5.0);
    net::send_frame(s, net::MsgType::kHello,
                    net::encode_payload(net::HelloMsg{}));
    net::Frame reply;
    ASSERT_TRUE(net::recv_frame(s, reply));
    EXPECT_EQ(reply.type, net::MsgType::kError);
  }
  // ...and HTTP garbage, bad JSON, ragged rows, wrong methods, and unknown
  // endpoints all get status-coded answers.
  EXPECT_NE(raw_http(server.http_port(), "WHAT EVEN\r\n\r\n").find("400"),
            std::string::npos);
  EXPECT_NE(raw_http(server.http_port(),
                     "POST /v1/predict HTTP/1.1\r\nHost: x\r\n"
                     "Content-Length: 9\r\n\r\nnot json!")
                .find("400"),
            std::string::npos);
  EXPECT_NE(raw_http(server.http_port(),
                     "POST /v1/predict HTTP/1.1\r\nHost: x\r\n"
                     "Content-Length: 41\r\n\r\n"
                     "{\"model\":\"m\",\"rows\":[[1.0,2.0],[3.0]]}   ")
                .find("400"),
            std::string::npos);
  EXPECT_NE(raw_http(server.http_port(),
                     "DELETE /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(raw_http(server.http_port(),
                     "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("404"),
            std::string::npos);
  EXPECT_NE(raw_http(server.http_port(),
                     "POST /v1/predict HTTP/1.1\r\nHost: x\r\n"
                     "Transfer-Encoding: chunked\r\n\r\n")
                .find("501"),
            std::string::npos);

  // After all of that, the daemon still answers correctly on both fronts.
  serve::PredictClient client("127.0.0.1", server.ssnp_port());
  EXPECT_EQ(client.predict("m", 0, rows).labels, local_labels(bundle, rows));
  EXPECT_NE(raw_http(server.http_port(),
                     "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("ok"),
            std::string::npos);
}

TEST(Serve, ModelsEndpointReportsRegistryAndMetrics) {
  TempDir tmp("models");
  core::write_model_file(tmp.file("m.ssmd"), make_bundle(0xbeef));
  serve::PredictServer server(quiet_options(tmp.path()));
  server.start();

  serve::PredictClient client("127.0.0.1", server.ssnp_port());
  (void)client.predict("m", 0, make_rows(8));

  const std::string response = raw_http(
      server.http_port(), "GET /v1/models HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const serve::JsonValue doc = serve::parse_json(
      response.substr(body_at + 4));
  ASSERT_TRUE(doc.is_object());
  const serve::JsonValue* models = doc.get("models");
  ASSERT_NE(models, nullptr);
  ASSERT_EQ(models->array.size(), 1u);
  const serve::JsonValue& m = models->array[0];
  EXPECT_EQ(m.get("alias")->string, "m");
  EXPECT_EQ(m.get("digest")->string, "0x000000000000beef");
  EXPECT_EQ(m.get("requests")->number, 1.0);
  EXPECT_EQ(m.get("rows")->number, 8.0);
}

TEST(Serve, DrainReleasesIdleConnectionsAndRefusesNewOnes) {
  TempDir tmp("drain");
  core::write_model_file(tmp.file("m.ssmd"), make_bundle(0xdead));
  auto server = std::make_unique<serve::PredictServer>(
      quiet_options(tmp.path()));
  server->start();
  const std::uint16_t ssnp_port = server->ssnp_port();

  // Leave live keep-alive connections open on both fronts: the drain must
  // release them at a poll tick, not wait for them to hang up.
  serve::PredictClient idle_ssnp("127.0.0.1", ssnp_port);
  serve::HttpPredictClient idle_http("127.0.0.1", server->http_port());
  (void)idle_ssnp.predict("m", 0, make_rows(2));
  (void)idle_http.predict("m", 0, make_rows(2));

  const auto begin = std::chrono::steady_clock::now();
  server->stop();
  server->stop();  // idempotent
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  EXPECT_LT(seconds, 10.0);
  server.reset();
  EXPECT_THROW((void)util::connect_to("127.0.0.1", ssnp_port, 0.5), Error);
}

// --- Session publish hand-off -------------------------------------------------

TEST(Serve, SessionPublishesTrainedBundleIntoTheRegistry) {
  TempDir artifacts("publish_artifacts");
  TempDir models("publish_models");

  core::ScenarioSpec spec;
  spec.name = "publish-demo";
  spec.campaign.workload = "checksum";
  spec.campaign.isa = "RV32I";
  spec.campaign.mem_kb = 4;
  spec.campaign.config.engine = sim::EngineKind::kLevelized;
  spec.campaign.config.seed = 11;
  spec.campaign.config.max_cycles = 1500;
  spec.campaign.config.clustering.num_clusters = 5;
  spec.campaign.config.sampling.fraction = 0.02;
  spec.campaign.config.sampling.min_per_cluster = 6;
  spec.campaign.config.sampling.max_per_cluster = 24;
  spec.campaign.config.sampling.memory_macro_draws = 12;
  spec.cv_folds = 4;
  spec.run_grid_search = false;

  const auto db = radiation::SoftErrorDatabase::default_database();
  core::SessionOptions options;
  options.artifact_dir = artifacts.path();
  options.publish_dir = models.path();
  core::Session session(spec, db, options);
  const core::ModelBundle& trained = session.train();

  serve::ModelRegistry registry(models.path());
  EXPECT_EQ(registry.refresh(), 1u);
  const auto entry = registry.find("publish-demo");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->bundle->config_digest, trained.config_digest);
  EXPECT_EQ(entry->bundle->scenario_name, "publish-demo");

  // The published copy answers exactly like the in-session model.
  serve::PredictServerOptions sopts = quiet_options(models.path());
  serve::PredictServer server(std::move(sopts));
  server.start();
  std::vector<std::vector<double>> rows;
  util::Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    std::vector<double> row;
    for (std::size_t f = 0; f < trained.feature_names.size(); ++f) {
      row.push_back(rng.uniform(0, 4));
    }
    rows.push_back(std::move(row));
  }
  serve::PredictClient client("127.0.0.1", server.ssnp_port());
  const serve::PredictResult result =
      client.predict("publish-demo", trained.config_digest, rows);
  EXPECT_EQ(result.labels, local_labels(trained, rows));
}

}  // namespace
}  // namespace ssresf
