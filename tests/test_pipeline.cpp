// Integration tests for the fault-injection campaign and the end-to-end
// SSRESF pipeline (dynamic-simulation phase + machine-learning phase).
#include <gtest/gtest.h>

#include "core/ssresf.h"
#include "soc/programs.h"
#include "util/error.h"

namespace ssresf {
namespace {

soc::SocModel small_soc() {
  soc::SocConfig cfg;
  cfg.mem_bytes = 16 * 1024;
  cfg.cpu_isa = "RV32I";
  cfg.bus = soc::BusProtocol::kAhb;
  cfg.bus_width_bits = 64;
  const soc::Workload w = soc::checksum_workload(8);
  const soc::Program programs[] = {soc::assemble(w.source)};
  return soc::build_soc(cfg, programs);
}

fi::CampaignConfig small_campaign(std::uint64_t seed = 11) {
  fi::CampaignConfig cfg;
  cfg.clustering.num_clusters = 5;
  cfg.sampling.fraction = 0.02;
  cfg.sampling.min_per_cluster = 6;
  cfg.sampling.max_per_cluster = 24;
  cfg.sampling.memory_macro_draws = 12;
  cfg.seed = seed;
  return cfg;
}

TEST(Campaign, ProducesConsistentAccounting) {
  const auto model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  const auto result = fi::run_campaign(model, small_campaign(), db);

  EXPECT_FALSE(result.records.empty());
  EXPECT_GT(result.golden_cycles, 50);
  EXPECT_GT(result.clock_period_ps, 0u);
  EXPECT_GT(result.set_xsect_cm2, 0.0);
  EXPECT_GT(result.seu_xsect_cm2, result.set_xsect_cm2);  // memory dominates

  std::size_t samples = 0;
  std::size_t errors = 0;
  for (const auto& c : result.clusters) {
    samples += c.samples;
    errors += c.errors;
    EXPECT_LE(c.errors, c.samples);
    EXPECT_GE(c.ser_percent, 0.0);
  }
  EXPECT_EQ(samples, result.records.size());
  std::size_t record_errors = 0;
  for (const auto& r : result.records) record_errors += r.soft_error;
  EXPECT_EQ(errors, record_errors);

  // Eq. 2 is a weighted mean: chip SER lies within the cluster SER range.
  double min_ser = 1e9;
  double max_ser = -1.0;
  for (const auto& c : result.clusters) {
    min_ser = std::min(min_ser, c.ser_percent);
    max_ser = std::max(max_ser, c.ser_percent);
  }
  EXPECT_GE(result.chip_ser_percent, min_ser - 1e-12);
  EXPECT_LE(result.chip_ser_percent, max_ser + 1e-12);
}

TEST(Campaign, DeterministicForSeed) {
  const auto model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  const auto a = fi::run_campaign(model, small_campaign(21), db);
  const auto b = fi::run_campaign(model, small_campaign(21), db);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].soft_error, b.records[i].soft_error);
    EXPECT_EQ(a.records[i].event.time_ps, b.records[i].event.time_ps);
  }
  EXPECT_DOUBLE_EQ(a.chip_ser_percent, b.chip_ser_percent);
}

TEST(Campaign, EquationTwoMatchesManualComputation) {
  std::vector<fi::ClusterStats> clusters(3);
  clusters[0].num_cells = 100;
  clusters[0].ser_percent = 1.0;
  clusters[1].num_cells = 300;
  clusters[1].ser_percent = 0.5;
  clusters[2].num_cells = 600;
  clusters[2].ser_percent = 0.0;
  EXPECT_NEAR(fi::chip_ser_percent(clusters),
              (100 * 1.0 + 300 * 0.5) / 1000.0, 1e-12);
}

TEST(Campaign, NoFaultMeansNoSoftError) {
  // A campaign with an empty injection schedule must match golden exactly:
  // run the golden twice through the public API and compare.
  const auto model = small_soc();
  soc::SocRunner a(model, sim::EngineKind::kEvent);
  soc::SocRunner b(model, sim::EngineKind::kEvent);
  for (auto* r : {&a, &b}) {
    r->reset();
    r->run(150);
  }
  EXPECT_EQ(sim::OutputTrace::first_mismatch(a.trace(), b.trace()),
            std::nullopt);
}

TEST(Campaign, HigherFluxRaisesSer) {
  const auto model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  auto cfg_low = small_campaign(31);
  cfg_low.environment.flux = 1e8;
  auto cfg_high = small_campaign(31);
  cfg_high.environment.flux = 8e8;
  const auto low = fi::run_campaign(model, cfg_low, db);
  const auto high = fi::run_campaign(model, cfg_high, db);
  // Same seed -> same injections and propagation; only the upset
  // probability scales.
  EXPECT_GE(high.chip_ser_percent, low.chip_ser_percent);
}

TEST(Features, ExtractionShapesAndRanges) {
  const auto model = small_soc();
  const core::FeatureExtractor extractor(model.netlist);
  for (const auto id : model.netlist.all_cells()) {
    const auto f = extractor.extract(id);
    ASSERT_EQ(f.size(), static_cast<std::size_t>(core::kNumNodeFeatures));
    EXPECT_GE(f[0], 0);  // module class
    EXPECT_LE(f[0], 4);
    EXPECT_GE(f[2], 0);  // logic depth
    EXPECT_GE(f[4], 0);  // layer depth
  }
  EXPECT_EQ(core::node_feature_names().size(),
            static_cast<std::size_t>(core::kNumNodeFeatures));
  EXPECT_EQ(core::node_feature_names()[0], "top_mod_type");
  EXPECT_EQ(core::node_feature_names()[5], "signal_bit");
}

TEST(Pipeline, EndToEndProducesModelAndMetrics) {
  const auto model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  core::PipelineConfig cfg;
  cfg.campaign = small_campaign(41);
  cfg.cv_folds = 5;
  const auto result = core::run_pipeline(model, cfg, db);

  EXPECT_EQ(result.dataset.size(), result.campaign.records.size());
  EXPECT_GT(result.dataset.count_label(1), 0u);
  EXPECT_GT(result.dataset.count_label(-1), 0u);
  EXPECT_GT(result.cv.mean_accuracy, 0.6);
  EXPECT_TRUE(result.model.trained());
  EXPECT_GT(result.model.num_support_vectors(), 0u);
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_GT(result.predict_seconds, 0.0);
  // Prediction must be much faster than the simulation campaign (the
  // paper's speed-up claim at small scale).
  EXPECT_LT(result.predict_seconds, result.campaign.simulation_seconds);
}

TEST(Pipeline, PredictNodesMatchesModel) {
  const auto model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  core::PipelineConfig cfg;
  cfg.campaign = small_campaign(51);
  cfg.cv_folds = 4;
  const auto result = core::run_pipeline(model, cfg, db);

  const core::FeatureExtractor extractor(model.netlist);
  std::vector<netlist::CellId> cells = {model.netlist.all_cells()[10],
                                        model.netlist.all_cells()[100]};
  const auto preds =
      core::predict_nodes(model, result.model, result.scaler, cells);
  ASSERT_EQ(preds.size(), 2u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto f = extractor.extract(cells[i]);
    EXPECT_EQ(preds[i],
              result.model.predict(result.scaler.transform_row(f)));
  }
}

TEST(Sensitivity, ClassProportionsAndOrdering) {
  const auto model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  const auto campaign = fi::run_campaign(model, small_campaign(61), db);
  const auto percents = fi::high_sensitivity_percent_by_class(campaign);
  for (const double p : percents) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 100.0);
  }
  const auto sorted = fi::clusters_by_ser(campaign);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_GE(sorted[i - 1].ser_percent, sorted[i].ser_percent);
  }
}

}  // namespace
}  // namespace ssresf
