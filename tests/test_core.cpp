// End-to-end program execution tests: assemble workloads, build SoCs, run on
// the event-driven engine, and compare the output-port stream against the
// software-computed expectations.
#include <gtest/gtest.h>

#include "soc/assembler.h"
#include "soc/programs.h"
#include "soc/run.h"
#include "soc/soc.h"

namespace ssresf::soc {
namespace {

SocConfig small_config(const std::string& isa, BusProtocol bus,
                       int cores = 1) {
  SocConfig cfg;
  cfg.name = "test";
  cfg.mem_bytes = 16 * 1024;
  cfg.mem_tech = netlist::MemTech::kSram;
  cfg.bus = bus;
  cfg.bus_width_bits = 32;
  cfg.cpu_isa = isa;
  cfg.num_cores = cores;
  return cfg;
}

std::vector<std::uint32_t> run_workload(const Workload& w,
                                        const SocConfig& cfg,
                                        sim::EngineKind kind,
                                        int max_cycles = 6000) {
  const Program prog = assemble(w.source);
  const Program programs[] = {prog};
  const SocModel model = build_soc(cfg, programs);
  SocRunner runner(model, kind);
  runner.reset();
  runner.run_until_halt(max_cycles);
  EXPECT_TRUE(runner.halted()) << w.name << " did not halt";
  return runner.emitted_words();
}

struct WorkloadCase {
  std::string isa;
  BusProtocol bus;
  const char* label;
};

class WorkloadSweep
    : public ::testing::TestWithParam<std::tuple<WorkloadCase, int>> {};

TEST_P(WorkloadSweep, MatchesExpectedOutputs) {
  const auto& [cc, workload_index] = GetParam();
  const CoreConfig core_cfg = CoreConfig::from_isa(cc.isa);
  const auto workloads = workloads_for(core_cfg);
  if (workload_index >= static_cast<int>(workloads.size())) {
    GTEST_SKIP() << "no such workload for " << cc.isa;
  }
  const Workload& w = workloads[static_cast<std::size_t>(workload_index)];
  const auto got =
      run_workload(w, small_config(cc.isa, cc.bus), sim::EngineKind::kEvent);
  EXPECT_EQ(got, w.expected_outputs) << cc.isa << " " << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    IsaAndWorkload, WorkloadSweep,
    ::testing::Combine(
        ::testing::Values(WorkloadCase{"RV32I", BusProtocol::kApb, "rv32i_apb"},
                          WorkloadCase{"RV32IM", BusProtocol::kAhb, "rv32im_ahb"},
                          WorkloadCase{"RV32IMAFD", BusProtocol::kApb,
                                       "rv32imafd_apb"},
                          WorkloadCase{"RV64I", BusProtocol::kAhb, "rv64i_ahb"}),
        ::testing::Range(0, 7)));

TEST(Core, ChecksumOnAxiBus) {
  const Workload w = checksum_workload(8);
  const auto got = run_workload(w, small_config("RV32I", BusProtocol::kAxi),
                                sim::EngineKind::kEvent);
  EXPECT_EQ(got, w.expected_outputs);
}

TEST(Core, ChecksumOnLevelizedEngine) {
  const Workload w = checksum_workload(8);
  const auto got = run_workload(w, small_config("RV32I", BusProtocol::kApb),
                                sim::EngineKind::kLevelized);
  EXPECT_EQ(got, w.expected_outputs);
}

TEST(Core, FibonacciRv64OnAxi) {
  const Workload w = fibonacci_workload(10);
  const auto got = run_workload(w, small_config("RV64I", BusProtocol::kAxi),
                                sim::EngineKind::kEvent);
  EXPECT_EQ(got, w.expected_outputs);
}

TEST(Core, BenchmarkWorkloadRv32im) {
  const Workload w = benchmark_workload(CoreConfig::from_isa("RV32IM"));
  const auto got = run_workload(w, small_config("RV32IM", BusProtocol::kAhb),
                                sim::EngineKind::kEvent, 12000);
  EXPECT_EQ(got, w.expected_outputs);
}

TEST(Core, BenchmarkWorkloadRv32imafd) {
  const Workload w = benchmark_workload(CoreConfig::from_isa("RV32IMAFD"));
  const auto got = run_workload(w, small_config("RV32IMAFD", BusProtocol::kAxi),
                                sim::EngineKind::kEvent, 12000);
  EXPECT_EQ(got, w.expected_outputs);
}

TEST(Core, StoreLoadForwardingStress) {
  // Back-to-back store/load sequences to the same address exercise the
  // posted-write forwarding of AHB and AXI.
  Workload w;
  w.name = "fwd";
  w.source =
      "  li a0, 0x40000000\n"
      "  li t0, 0x80\n"
      "  li t1, 1\n"
      "  li t2, 0\n"
      "loop:\n"
      "  sw t1, 0(t0)\n"
      "  lw t3, 0(t0)\n"   // must see the just-posted value
      "  add t2, t2, t3\n"
      "  sw t2, 4(t0)\n"
      "  lw t4, 4(t0)\n"
      "  sw t4, 0(a0)\n"
      "  addi t1, t1, 1\n"
      "  li t5, 6\n"
      "  blt t1, t5, loop\n"
      "  ecall\n";
  std::uint32_t sum = 0;
  for (std::uint32_t i = 1; i < 6; ++i) {
    sum += i;
    w.expected_outputs.push_back(sum);
  }
  for (const BusProtocol bus :
       {BusProtocol::kApb, BusProtocol::kAhb, BusProtocol::kAxi}) {
    const auto got =
        run_workload(w, small_config("RV32I", bus), sim::EngineKind::kEvent);
    EXPECT_EQ(got, w.expected_outputs)
        << "bus " << bus_protocol_name(bus);
  }
}

TEST(Core, SubWordAccesses) {
  Workload w;
  w.name = "subword";
  w.source =
      "  li a0, 0x40000000\n"
      "  li t0, 0x90\n"
      "  li t1, 0x11\n"
      "  sb t1, 0(t0)\n"
      "  li t1, 0xA2\n"
      "  sb t1, 1(t0)\n"
      "  li t1, 0x33\n"
      "  sb t1, 2(t0)\n"
      "  li t1, 0xF4\n"
      "  sb t1, 3(t0)\n"
      "  lw t2, 0(t0)\n"
      "  sw t2, 0(a0)\n"     // 0xF433A211
      "  lbu t3, 1(t0)\n"
      "  sw t3, 0(a0)\n"     // 0xA2
      "  lb t4, 3(t0)\n"
      "  sw t4, 0(a0)\n"     // sign-extended 0xF4
      "  lhu t5, 2(t0)\n"
      "  sw t5, 0(a0)\n"     // 0xF433
      "  lh t6, 0(t0)\n"
      "  sw t6, 0(a0)\n"     // sign-extended 0xA211
      "  li t1, 0x55AA\n"
      "  sh t1, 2(t0)\n"
      "  lw t2, 0(t0)\n"
      "  sw t2, 0(a0)\n"     // 0x55AAA211
      "  ecall\n";
  w.expected_outputs = {0xF433A211u, 0xA2u,    0xFFFFFFF4u,
                        0xF433u,     0xFFFFA211u, 0x55AAA211u};
  const auto got = run_workload(w, small_config("RV32I", BusProtocol::kAhb),
                                sim::EngineKind::kEvent);
  EXPECT_EQ(got, w.expected_outputs);
}

TEST(Core, JalJalrLinkValues) {
  Workload w;
  w.name = "call";
  w.source =
      "  li a0, 0x40000000\n"
      "  jal ra, func\n"
      "after:\n"
      "  sw a1, 0(a0)\n"
      "  ecall\n"
      "func:\n"
      "  mv a1, ra\n"     // link register = address of 'after'
      "  ret\n";
  const auto got = run_workload(w, small_config("RV32I", BusProtocol::kApb),
                                sim::EngineKind::kEvent);
  ASSERT_EQ(got.size(), 1u);
  // li expands to one instruction (0x40000000 needs lui+addi = 2 words);
  // jal is the next word; 'after' is right behind it.
  const Program prog = assemble(w.source);
  EXPECT_EQ(got[0], prog.symbols.at("after"));
}

TEST(Core, TimerMmioRead) {
  Workload w;
  w.name = "timer";
  w.source =
      "  li a0, 0x40000000\n"
      "  lw t0, 8(a0)\n"
      "  li t2, 0\n"
      "  addi t2, t2, 1\n"
      "  addi t2, t2, 1\n"
      "  addi t2, t2, 1\n"
      "  lw t1, 8(a0)\n"
      "  sub t3, t1, t0\n"
      "  sw t3, 0(a0)\n"
      "  ecall\n";
  const auto got = run_workload(w, small_config("RV32I", BusProtocol::kApb),
                                sim::EngineKind::kEvent);
  ASSERT_EQ(got.size(), 1u);
  // li + three addi between the reads; the second lw itself executes five
  // cycles after the first on a single-cycle core.
  EXPECT_EQ(got[0], 5u);
}

TEST(Core, DualCoreBothEmit) {
  const Workload w = checksum_workload(6);
  const Program prog = assemble(w.source);
  const Program programs[] = {prog, prog};
  const SocModel model = build_soc(small_config("RV32I", BusProtocol::kApb, 2),
                                   programs);
  SocRunner runner(model, sim::EngineKind::kEvent);
  runner.reset();
  runner.run_until_halt(6000);
  EXPECT_TRUE(runner.halted());
  const auto got = runner.emitted_words();
  // Both cores emit the same prefix-sum stream, interleaved in some order;
  // verify multiset equality against two copies of the expected stream.
  std::vector<std::uint32_t> expected;
  expected.insert(expected.end(), w.expected_outputs.begin(),
                  w.expected_outputs.end());
  expected.insert(expected.end(), w.expected_outputs.begin(),
                  w.expected_outputs.end());
  std::vector<std::uint32_t> got_sorted = got;
  std::sort(got_sorted.begin(), got_sorted.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got_sorted, expected);
}

TEST(Core, HaltFreezesOutputs) {
  const Workload w = fibonacci_workload(4);
  const Program prog = assemble(w.source);
  const Program programs[] = {prog};
  const SocModel model =
      build_soc(small_config("RV32I", BusProtocol::kApb), programs);
  SocRunner runner(model, sim::EngineKind::kEvent);
  runner.reset();
  runner.run_until_halt(2000);
  ASSERT_TRUE(runner.halted());
  const auto before = runner.emitted_words();
  runner.run(100);  // keep clocking a halted SoC
  EXPECT_EQ(runner.emitted_words(), before);
}

}  // namespace
}  // namespace ssresf::soc
