// SoC-level tests: engine trace equivalence, configuration table sanity,
// assembler behaviour, FPU blocks, and structural properties of generated
// netlists.
#include <gtest/gtest.h>

#include <bit>

#include "netlist/stats.h"
#include "netlist/verilog.h"
#include "sim/levelized_sim.h"
#include "soc/assembler.h"
#include "util/error.h"
#include "soc/encoding.h"
#include "soc/fpu.h"
#include "soc/programs.h"
#include "soc/run.h"
#include "soc/soc.h"

namespace ssresf::soc {
namespace {

TEST(Assembler, BasicEncodings) {
  const Program p = assemble(
      "start:\n"
      "  addi x1, x0, 5\n"
      "  add  x2, x1, x1\n"
      "  lw   x3, 8(x1)\n"
      "  sw   x3, 12(x2)\n"
      "  beq  x1, x2, start\n"
      "  lui  x4, 0xFFFFF\n"
      "  jal  x5, start\n"
      "  ecall\n");
  ASSERT_EQ(p.words.size(), 8u);
  EXPECT_EQ(p.words[0], 0x00500093u);  // addi x1, x0, 5
  EXPECT_EQ(p.words[1], 0x00108133u);  // add x2, x1, x1
  EXPECT_EQ(p.words[2], 0x0080A183u);  // lw x3, 8(x1)
  EXPECT_EQ(p.words[3], 0x00312623u);  // sw x3, 12(x2)
  EXPECT_EQ(p.words[4], 0xFE2088E3u);  // beq x1, x2, -16
  EXPECT_EQ(p.words[5], 0xFFFFF237u);  // lui x4, 0xFFFFF
  EXPECT_EQ(p.words[6], 0xFE9FF2EFu);  // jal x5, -24
  EXPECT_EQ(p.words[7], 0x00000073u);  // ecall
}

TEST(Assembler, PseudoInstructions) {
  const Program p = assemble(
      "  li t0, 100\n"         // one word
      "  li t1, 0x12345\n"     // lui + addi
      "  mv a0, t0\n"
      "  nop\n"
      "  ret\n");
  EXPECT_EQ(p.words.size(), 6u);
  EXPECT_EQ(p.words[0], 0x06400293u);  // addi t0, x0, 100
}

TEST(Assembler, LiLargeValuesRoundTrip) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{2047},
        std::int64_t{-2048}, std::int64_t{0x7FFFF000}, std::int64_t{0x12345678},
        std::int64_t{-0x12345678}}) {
    const Program p =
        assemble("  li t0, " + std::to_string(v) + "\n  ecall\n");
    // Decode the li expansion manually.
    std::int64_t result = 0;
    std::size_t i = 0;
    if ((p.words[0] & 0x7F) == rv::kOpLui) {
      result = static_cast<std::int32_t>(p.words[0] & 0xFFFFF000u);
      ++i;
    }
    const auto addi = p.words[i];
    ASSERT_EQ(addi & 0x7F, rv::kOpImm);
    result += static_cast<std::int32_t>(addi) >> 20;
    EXPECT_EQ(static_cast<std::int32_t>(result), static_cast<std::int32_t>(v))
        << "li " << v;
  }
}

TEST(Assembler, ErrorsOnBadInput) {
  EXPECT_THROW(assemble("  bogus x1, x2\n"), ParseError);
  EXPECT_THROW(assemble("  addi x1, x2\n"), ParseError);     // missing operand
  EXPECT_THROW(assemble("  addi x99, x0, 1\n"), ParseError); // bad register
  EXPECT_THROW(assemble("  beq x1, x2, nowhere\n"), ParseError);
  EXPECT_THROW(assemble("  lw x1, 4[x2]\n"), ParseError);
}

TEST(Assembler, RegisterNames) {
  EXPECT_EQ(parse_register("zero"), 0);
  EXPECT_EQ(parse_register("ra"), 1);
  EXPECT_EQ(parse_register("sp"), 2);
  EXPECT_EQ(parse_register("a0"), 10);
  EXPECT_EQ(parse_register("t6"), 31);
  EXPECT_EQ(parse_register("x17"), 17);
  EXPECT_EQ(parse_register("fp"), 8);
  EXPECT_THROW((void)parse_register("q7"), ParseError);
  EXPECT_EQ(parse_fp_register("f31"), 31);
  EXPECT_THROW((void)parse_fp_register("f32"), ParseError);
}

TEST(SocTable, HasTenRowsMatchingPaper) {
  const auto table = pulp_soc_table();
  ASSERT_EQ(table.size(), 10u);
  EXPECT_EQ(table[0].cpu_isa, "RV32I");
  EXPECT_EQ(table[0].bus_width_bits, 8);
  EXPECT_EQ(table[9].mem_tech, netlist::MemTech::kRadHardSram);
  EXPECT_EQ(table[9].bus_width_bits, 4096);
  EXPECT_EQ(table[9].num_cores, 2);
  // Monotone growth axes from the paper.
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_GE(table[i].mem_bytes, table[i - 1].mem_bytes);
  }
}

TEST(Soc, EngineTraceEquivalenceOnChecksum) {
  SocConfig cfg;
  cfg.mem_bytes = 16 * 1024;
  cfg.bus = BusProtocol::kAhb;
  cfg.bus_width_bits = 64;
  cfg.cpu_isa = "RV32I";
  cfg.num_cores = 1;
  const Workload w = checksum_workload(6);
  const Program programs[] = {assemble(w.source)};
  const SocModel model = build_soc(cfg, programs);

  SocRunner event_runner(model, sim::EngineKind::kEvent);
  SocRunner level_runner(model, sim::EngineKind::kLevelized);
  for (SocRunner* r : {&event_runner, &level_runner}) {
    r->reset();
    r->run(400);
  }
  EXPECT_EQ(sim::OutputTrace::first_mismatch(event_runner.trace(),
                                             level_runner.trace()),
            std::nullopt)
      << "engines disagree";
  EXPECT_EQ(event_runner.emitted_words(), w.expected_outputs);
}

TEST(Soc, ModuleClassesCoverAllGroups) {
  SocConfig cfg;
  cfg.mem_bytes = 16 * 1024;
  cfg.cpu_isa = "RV32I";
  cfg.bus_width_bits = 32;
  const Program programs[] = {assemble(checksum_workload(4).source)};
  const SocModel model = build_soc(cfg, programs);
  const auto stats = netlist::compute_stats(model.netlist);
  EXPECT_GT(stats.per_class[static_cast<int>(netlist::ModuleClass::kCpu)], 0u);
  EXPECT_GT(stats.per_class[static_cast<int>(netlist::ModuleClass::kMemory)], 0u);
  EXPECT_GT(stats.per_class[static_cast<int>(netlist::ModuleClass::kBus)], 0u);
  EXPECT_GT(
      stats.per_class[static_cast<int>(netlist::ModuleClass::kPeripheral)], 0u);
  EXPECT_EQ(stats.num_memory_macros, 2u);  // imem + dmem
}

TEST(Soc, GateCountGrowsAcrossTable) {
  // Build the first and last Table I SoCs (smallest/largest) and check the
  // structural-complexity ordering the paper reports.
  const auto table = pulp_soc_table();
  const Program programs[] = {assemble(checksum_workload(4).source)};
  const SocModel small = build_soc(table[0], programs);
  const SocModel large = build_soc(table[7], programs);
  EXPECT_GT(large.netlist.num_cells(), 2 * small.netlist.num_cells());
}

TEST(Soc, BusWidthScalesBusCells) {
  SocConfig narrow;
  narrow.mem_bytes = 16 * 1024;
  narrow.cpu_isa = "RV32I";
  narrow.bus_width_bits = 32;
  SocConfig wide = narrow;
  wide.bus_width_bits = 256;
  const Program programs[] = {assemble(checksum_workload(4).source)};
  const auto count_bus = [&](const SocModel& m) {
    return netlist::compute_stats(m.netlist)
        .per_class[static_cast<int>(netlist::ModuleClass::kBus)];
  };
  const SocModel nm = build_soc(narrow, programs);
  const SocModel wm = build_soc(wide, programs);
  EXPECT_GT(count_bus(wm), 4 * count_bus(nm));
}

TEST(Fpu, SingleAddAndMulExactCases) {
  using netlist::NetlistBuilder;
  NetlistBuilder b("fpu");
  const auto a = b.input_bus("a", 32);
  const auto c = b.input_bus("c", 32);
  const auto sum = build_fp_adder(b, a, c, FpFormat::single());
  const auto prod = build_fp_multiplier(b, a, c, FpFormat::single());
  b.output_bus(sum, "sum");
  b.output_bus(prod, "prod");
  const auto nl = b.finish();
  sim::LevelizedSimulator sim(nl);
  auto eval = [&](float x, float y, const Bus& out) {
    const auto xb = std::bit_cast<std::uint32_t>(x);
    const auto yb = std::bit_cast<std::uint32_t>(y);
    for (int i = 0; i < 32; ++i) {
      sim.set_input(a[static_cast<std::size_t>(i)],
                    netlist::from_bool((xb >> i) & 1));
      sim.set_input(c[static_cast<std::size_t>(i)],
                    netlist::from_bool((yb >> i) & 1));
    }
    std::uint32_t r = 0;
    for (int i = 0; i < 32; ++i) {
      if (sim.value(out[static_cast<std::size_t>(i)]) == netlist::Logic::L1) {
        r |= 1u << i;
      }
    }
    return std::bit_cast<float>(r);
  };
  // Exactly-representable cases where truncation matches IEEE.
  EXPECT_EQ(eval(1.0f, 2.0f, sum), 3.0f);
  EXPECT_EQ(eval(1.5f, 2.5f, sum), 4.0f);
  EXPECT_EQ(eval(-1.0f, 3.0f, sum), 2.0f);
  EXPECT_EQ(eval(5.0f, -2.0f, sum), 3.0f);
  EXPECT_EQ(eval(2.0f, -2.0f, sum), 0.0f);
  EXPECT_EQ(eval(0.0f, 7.25f, sum), 7.25f);
  EXPECT_EQ(eval(7.25f, 0.0f, sum), 7.25f);
  EXPECT_EQ(eval(1.0f, 2.0f, prod), 2.0f);
  EXPECT_EQ(eval(1.5f, 3.0f, prod), 4.5f);
  EXPECT_EQ(eval(-2.0f, 2.5f, prod), -5.0f);
  EXPECT_EQ(eval(0.0f, 123.0f, prod), 0.0f);
  EXPECT_EQ(eval(0.125f, 8.0f, prod), 1.0f);
}

TEST(Fpu, DoubleAddExactCases) {
  using netlist::NetlistBuilder;
  NetlistBuilder b("fpu64");
  const auto a = b.input_bus("a", 64);
  const auto c = b.input_bus("c", 64);
  const auto sum = build_fp_adder(b, a, c, FpFormat::double_());
  b.output_bus(sum, "sum");
  const auto nl = b.finish();
  sim::LevelizedSimulator sim(nl);
  auto eval = [&](double x, double y) {
    const auto xb = std::bit_cast<std::uint64_t>(x);
    const auto yb = std::bit_cast<std::uint64_t>(y);
    for (int i = 0; i < 64; ++i) {
      sim.set_input(a[static_cast<std::size_t>(i)],
                    netlist::from_bool((xb >> i) & 1));
      sim.set_input(c[static_cast<std::size_t>(i)],
                    netlist::from_bool((yb >> i) & 1));
    }
    std::uint64_t r = 0;
    for (int i = 0; i < 64; ++i) {
      if (sim.value(sum[static_cast<std::size_t>(i)]) == netlist::Logic::L1) {
        r |= std::uint64_t{1} << i;
      }
    }
    return std::bit_cast<double>(r);
  };
  EXPECT_EQ(eval(1.0, 2.0), 3.0);
  EXPECT_EQ(eval(-4.5, 1.5), -3.0);
  EXPECT_EQ(eval(1024.0, 0.5), 1024.5);
}

TEST(Soc, RejectsBadConfigs) {
  SocConfig cfg;
  cfg.cpu_isa = "RV32I";
  cfg.num_cores = 0;
  const Program programs[] = {assemble("  ecall\n")};
  EXPECT_THROW(build_soc(cfg, programs), InvalidArgument);
  cfg.num_cores = 1;
  EXPECT_THROW(build_soc(cfg, {}), InvalidArgument);
  SocConfig big = cfg;
  big.imem_words = 4;  // program won't fit
  const Program long_prog[] = {assemble(checksum_workload(8).source)};
  EXPECT_THROW(build_soc(big, long_prog), InvalidArgument);
  EXPECT_THROW(CoreConfig::from_isa("RV128I"), InvalidArgument);
  EXPECT_THROW(CoreConfig::from_isa("RV32IXQ"), InvalidArgument);
}

TEST(Soc, VerilogExportOfSocParsesBack) {
  SocConfig cfg;
  cfg.mem_bytes = 4 * 1024;
  cfg.cpu_isa = "RV32I";
  cfg.bus_width_bits = 32;
  cfg.imem_words = 256;
  const Program programs[] = {assemble(fibonacci_workload(4).source)};
  const SocModel model = build_soc(cfg, programs);
  const std::string text = netlist::write_verilog(model.netlist);
  const netlist::Netlist parsed = netlist::parse_verilog(text);
  EXPECT_EQ(parsed.num_cells(), model.netlist.num_cells());
  EXPECT_EQ(parsed.num_sequential_cells(),
            model.netlist.num_sequential_cells());
}

}  // namespace
}  // namespace ssresf::soc
