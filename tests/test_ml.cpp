// ML library tests: dataset handling, scalers, kernels, SMO SVM training on
// separable and XOR data, metrics math, ROC properties, cross-validation,
// grid search, and feature selection.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/cross_validation.h"
#include "ml/feature_selection.h"
#include "util/error.h"

namespace ssresf::ml {
namespace {

Dataset linearly_separable(int n, util::Rng& rng, double margin = 1.0) {
  Dataset d({"x", "y"});
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(-3, 3);
    const double noise = rng.uniform(-0.3, 0.3);
    // Separator: y = x; positives above by at least `margin`.
    const int label = i % 2 == 0 ? 1 : -1;
    d.add({x, x + label * (margin + std::abs(noise))}, label);
  }
  return d;
}

Dataset xor_dataset(int per_quadrant, util::Rng& rng) {
  Dataset d({"x", "y"});
  for (int i = 0; i < per_quadrant; ++i) {
    for (const double sx : {-1.0, 1.0}) {
      for (const double sy : {-1.0, 1.0}) {
        const double x = sx * rng.uniform(0.5, 1.5);
        const double y = sy * rng.uniform(0.5, 1.5);
        d.add({x, y}, sx * sy > 0 ? 1 : -1);
      }
    }
  }
  return d;
}

TEST(Dataset, AddAndSubsetAndProject) {
  Dataset d({"a", "b", "c"});
  d.add({1, 2, 3}, 1);
  d.add({4, 5, 6}, -1);
  d.add({7, 8, 9}, 1);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.count_label(1), 2u);
  const std::size_t idx[] = {2, 0};
  const Dataset sub = d.subset(idx);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.row(0)[0], 7);
  const int features[] = {2, 0};
  const Dataset proj = d.project(features);
  EXPECT_EQ(proj.num_features(), 2u);
  EXPECT_EQ(proj.row(1)[0], 6);
  EXPECT_EQ(proj.feature_names()[0], "c");
  EXPECT_THROW(d.add({1, 2}, 1), InvalidArgument);
  EXPECT_THROW(d.add({1, 2, 3}, 0), InvalidArgument);
}

TEST(Dataset, StratifiedKFoldBalanced) {
  util::Rng rng(1);
  Dataset d({"x"});
  for (int i = 0; i < 50; ++i) d.add({static_cast<double>(i)}, 1);
  for (int i = 0; i < 100; ++i) d.add({static_cast<double>(i)}, -1);
  const auto folds = stratified_kfold(d, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::size_t total = 0;
  for (const auto& fold : folds) {
    std::size_t pos = 0;
    for (const std::size_t i : fold) pos += d.label(i) == 1;
    EXPECT_EQ(pos, 10u);            // 50 positives / 5 folds
    EXPECT_EQ(fold.size(), 30u);    // 150 / 5
    total += fold.size();
  }
  EXPECT_EQ(total, d.size());
}

TEST(Scaler, MinMaxMapsToUnitInterval) {
  Dataset d({"a", "b"});
  d.add({0, 100}, 1);
  d.add({10, 200}, -1);
  d.add({5, 150}, 1);
  MinMaxScaler scaler;
  scaler.fit_transform(d);
  EXPECT_DOUBLE_EQ(d.row(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(d.row(1)[0], 1.0);
  EXPECT_DOUBLE_EQ(d.row(2)[0], 0.5);
  EXPECT_DOUBLE_EQ(d.row(2)[1], 0.5);
}

TEST(Scaler, ConstantFeatureMapsToZero) {
  Dataset d({"a"});
  d.add({7}, 1);
  d.add({7}, -1);
  MinMaxScaler scaler;
  scaler.fit_transform(d);
  EXPECT_DOUBLE_EQ(d.row(0)[0], 0.0);
}

TEST(Scaler, StandardizeZeroMeanUnitVar) {
  Dataset d({"a"});
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) d.add({v}, 1);
  d.add({6.0}, -1);
  StandardScaler scaler;
  scaler.fit_transform(d);
  double mean = 0;
  for (std::size_t i = 0; i < d.size(); ++i) mean += d.row(i)[0];
  EXPECT_NEAR(mean / static_cast<double>(d.size()), 0.0, 1e-12);
}

TEST(Kernel, Values) {
  const double a[] = {1.0, 0.0};
  const double b[] = {0.0, 1.0};
  KernelConfig linear{KernelType::kLinear};
  EXPECT_DOUBLE_EQ(kernel_eval(linear, a, a), 1.0);
  EXPECT_DOUBLE_EQ(kernel_eval(linear, a, b), 0.0);
  KernelConfig rbf{KernelType::kRbf, 0.5};
  EXPECT_DOUBLE_EQ(kernel_eval(rbf, a, a), 1.0);
  EXPECT_NEAR(kernel_eval(rbf, a, b), std::exp(-1.0), 1e-12);
  KernelConfig poly{KernelType::kPoly, 1.0, 2, 1.0};
  EXPECT_DOUBLE_EQ(kernel_eval(poly, a, a), 4.0);  // (1*1+1)^2
}

TEST(Svm, LearnsLinearlySeparableData) {
  util::Rng rng(42);
  const Dataset train = linearly_separable(120, rng);
  SvmConfig config;
  config.kernel.type = KernelType::kLinear;
  config.c = 10.0;
  SvmClassifier model(config);
  model.train(train);
  EXPECT_GT(model.num_support_vectors(), 0u);
  const Dataset test = linearly_separable(60, rng);
  EXPECT_GE(evaluate(model, test).accuracy(), 0.95);
}

TEST(Svm, RbfSolvesXor) {
  util::Rng rng(7);
  const Dataset train = xor_dataset(25, rng);
  SvmConfig config;
  config.kernel.type = KernelType::kRbf;
  config.kernel.gamma = 1.0;
  config.c = 10.0;
  SvmClassifier model(config);
  model.train(train);
  const Dataset test = xor_dataset(10, rng);
  EXPECT_GE(evaluate(model, test).accuracy(), 0.95)
      << "RBF SVM should separate XOR";
}

TEST(Svm, LinearCannotSolveXor) {
  util::Rng rng(7);
  const Dataset train = xor_dataset(25, rng);
  SvmConfig config;
  config.kernel.type = KernelType::kLinear;
  SvmClassifier model(config);
  model.train(train);
  EXPECT_LE(evaluate(model, train).accuracy(), 0.75);
}

TEST(Svm, DecisionValueSignMatchesMargin) {
  util::Rng rng(3);
  const Dataset train = linearly_separable(80, rng, 2.0);
  SvmConfig config;
  config.kernel.type = KernelType::kLinear;
  config.c = 5.0;
  SvmClassifier model(config);
  model.train(train);
  const double far_pos[] = {0.0, 10.0};
  const double far_neg[] = {0.0, -10.0};
  EXPECT_GT(model.decision_value(far_pos), 1.0);
  EXPECT_LT(model.decision_value(far_neg), -1.0);
}

TEST(Svm, SingleClassTrainsConstantClassifier) {
  // A campaign that observed no soft errors yields a single-class dataset;
  // training then degenerates to the constant majority classifier instead
  // of failing the whole pipeline.
  Dataset d({"x"});
  d.add({1}, 1);
  d.add({2}, 1);
  SvmClassifier model;
  model.train(d);
  EXPECT_EQ(model.num_support_vectors(), 0u);
  const double anywhere[] = {-7.0};
  EXPECT_EQ(model.predict(anywhere), 1);

  Dataset neg({"x"});
  neg.add({1}, -1);
  SvmClassifier neg_model;
  neg_model.train(neg);
  EXPECT_EQ(neg_model.predict(anywhere), -1);

  Dataset empty({"x"});
  SvmClassifier empty_model;
  EXPECT_THROW(empty_model.train(empty), InvalidArgument);
}

TEST(Metrics, ConfusionMathAndF1) {
  ConfusionMatrix cm;
  // 8 TP, 2 FN, 85 TN, 5 FP.
  for (int i = 0; i < 8; ++i) cm.add(1, 1);
  for (int i = 0; i < 2; ++i) cm.add(1, -1);
  for (int i = 0; i < 85; ++i) cm.add(-1, -1);
  for (int i = 0; i < 5; ++i) cm.add(-1, 1);
  EXPECT_DOUBLE_EQ(cm.tpr(), 0.8);
  EXPECT_NEAR(cm.tnr(), 85.0 / 90.0, 1e-12);
  EXPECT_NEAR(cm.precision(), 8.0 / 13.0, 1e-12);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.93);
  const double p = 8.0 / 13.0;
  const double r = 0.8;
  EXPECT_NEAR(cm.f1(), 2 * p * r / (p + r), 1e-12);
}

TEST(Metrics, RocPerfectAndRandom) {
  // Perfectly ranked scores -> AUC 1.
  const double perfect[] = {0.9, 0.8, 0.2, 0.1};
  const int labels[] = {1, 1, -1, -1};
  const auto curve = roc_curve(perfect, labels);
  EXPECT_DOUBLE_EQ(roc_auc(curve), 1.0);
  // Inverted scores -> AUC 0.
  const double inverted[] = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(roc_auc(roc_curve(inverted, labels)), 0.0);
}

TEST(Metrics, RocMonotonicAndEndsAtOne) {
  util::Rng rng(5);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    const int y = rng.chance(0.4) ? 1 : -1;
    scores.push_back(y * 0.3 + rng.uniform(-1, 1));
    labels.push_back(y);
  }
  const auto curve = roc_curve(scores, labels);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
  }
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  const double auc = roc_auc(curve);
  EXPECT_GT(auc, 0.5);
  EXPECT_LE(auc, 1.0);
}

TEST(CrossValidation, ReportsReasonableAccuracy) {
  util::Rng rng(11);
  const Dataset d = linearly_separable(150, rng);
  SvmConfig config;
  config.kernel.type = KernelType::kLinear;
  config.c = 5.0;
  util::Rng cv_rng(1);
  const CvResult cv = cross_validate(d, config, 5, cv_rng);
  EXPECT_EQ(cv.fold_accuracies.size(), 5u);
  EXPECT_GE(cv.mean_accuracy, 0.9);
  EXPECT_EQ(cv.aggregate.total(), d.size());
  EXPECT_EQ(cv.decision_values.size(), d.size());
}

TEST(GridSearch, FindsWorkingHyperparameters) {
  util::Rng rng(13);
  const Dataset d = xor_dataset(20, rng);
  SvmConfig base;
  base.kernel.type = KernelType::kRbf;
  const double cs[] = {0.01, 1.0, 10.0};
  const double gammas[] = {0.001, 1.0};
  util::Rng gs_rng(2);
  const auto result = grid_search(d, base, cs, gammas, 4, gs_rng);
  EXPECT_EQ(result.grid.size(), 6u);
  EXPECT_GE(result.best_score, 0.9);
  EXPECT_GT(result.best.kernel.gamma, 0.001);  // tiny gamma can't fit XOR
}

TEST(FeatureSelection, FisherRanksDiscriminativeFirst) {
  util::Rng rng(17);
  Dataset d({"signal", "noise1", "noise2"});
  for (int i = 0; i < 200; ++i) {
    const int y = i % 2 == 0 ? 1 : -1;
    d.add({y * 2.0 + rng.uniform(-0.5, 0.5), rng.uniform(-1, 1),
           rng.uniform(-1, 1)},
          y);
  }
  const auto scores = fisher_scores(d);
  EXPECT_GT(scores[0], scores[1] * 10);
  EXPECT_GT(scores[0], scores[2] * 10);

  SvmConfig config;
  config.kernel.type = KernelType::kLinear;
  util::Rng fs_rng(3);
  const auto sel = select_features(d, config, 4, fs_rng);
  EXPECT_EQ(sel.ranked[0], 0);
  EXPECT_EQ(sel.cv_score_by_count.size(), 3u);
  // The single informative feature should already reach peak accuracy.
  EXPECT_LE(sel.best_count, 2);
  EXPECT_GE(sel.cv_score_by_count[0], 0.9);
}

}  // namespace
}  // namespace ssresf::ml
