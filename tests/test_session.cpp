// Tests for the Pipeline API v2: the staged core::Session, the declarative
// ScenarioSpec YAML codec, and the digest-bound .ssds / .ssmd artifacts.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "core/model_io.h"
#include "core/session.h"
#include "util/error.h"

namespace ssresf {
namespace {

/// Unique per-test artifact directory, removed on scope exit.
struct TempDir {
  std::filesystem::path dir;
  explicit TempDir(const std::string& tag) {
    dir = std::filesystem::temp_directory_path() /
          ("ssresf_test_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }
  ~TempDir() {
    std::error_code ignored;
    std::filesystem::remove_all(dir, ignored);
  }
  [[nodiscard]] std::string path() const { return dir.string(); }
};

core::ScenarioSpec small_scenario(std::uint64_t seed = 11) {
  core::ScenarioSpec spec;
  spec.name = "session-test";
  spec.campaign.workload = "checksum";
  spec.campaign.isa = "RV32I";
  spec.campaign.mem_kb = 4;
  spec.campaign.config.engine = sim::EngineKind::kLevelized;
  spec.campaign.config.seed = seed;
  spec.campaign.config.max_cycles = 1500;
  spec.campaign.config.clustering.num_clusters = 5;
  spec.campaign.config.sampling.fraction = 0.02;
  spec.campaign.config.sampling.min_per_cluster = 6;
  spec.campaign.config.sampling.max_per_cluster = 24;
  spec.campaign.config.sampling.memory_macro_draws = 12;
  spec.cv_folds = 4;
  spec.run_grid_search = false;
  return spec;
}

core::SessionOptions with_dir(const std::string& dir, bool resume = true) {
  core::SessionOptions options;
  options.artifact_dir = dir;
  options.resume = resume;
  return options;
}

const radiation::SoftErrorDatabase& database() {
  static const auto db = radiation::SoftErrorDatabase::default_database();
  return db;
}

// --- ScenarioSpec YAML codec --------------------------------------------------

TEST(Scenario, EmptyDocumentYieldsDefaults) {
  const auto spec = core::ScenarioSpec::parse("");
  const core::ScenarioSpec defaults;
  EXPECT_EQ(spec.name, defaults.name);
  EXPECT_EQ(spec.campaign.workload, defaults.campaign.workload);
  EXPECT_EQ(spec.campaign.isa, defaults.campaign.isa);
  EXPECT_EQ(spec.campaign.mem_kb, defaults.campaign.mem_kb);
  EXPECT_EQ(spec.svm, defaults.svm);
  EXPECT_EQ(spec.cv_folds, defaults.cv_folds);
  EXPECT_EQ(spec.grid_c, defaults.grid_c);
  EXPECT_EQ(spec.ml_seed, defaults.ml_seed);
}

TEST(Scenario, ParseReadsEverySection) {
  const auto spec = core::ScenarioSpec::parse(
      "scenario: full\n"
      "model:\n"
      "  workload: sort\n"
      "  isa: RV32IM\n"
      "  bus: apb\n"
      "  mem_kb: 8\n"
      "campaign:\n"
      "  engine: bit-parallel\n"
      "  seed: 77\n"
      "  max_cycles: 2222\n"
      "  environment:\n"
      "    flux: 1e9\n"
      "    let: 20.5\n"
      "  clustering:\n"
      "    clusters: 7\n"
      "    layer_depth: 3\n"
      "  sampling:\n"
      "    fraction: 0.125\n"
      "    weighting: xsect\n"
      "ml:\n"
      "  kernel: poly\n"
      "  gamma: 0.25\n"
      "  c: 4\n"
      "  cv_folds: 3\n"
      "  grid_search: true\n"
      "  grid_c: [1, 2]\n"
      "  grid_gamma: [0.5, 2]\n"
      "  feature_selection: true\n"
      "  seed: 99\n");
  EXPECT_EQ(spec.name, "full");
  EXPECT_EQ(spec.campaign.workload, "sort");
  EXPECT_EQ(spec.campaign.bus, "apb");
  EXPECT_EQ(spec.campaign.mem_kb, 8);
  EXPECT_EQ(spec.campaign.config.engine, sim::EngineKind::kBitParallel);
  EXPECT_EQ(spec.campaign.config.seed, 77u);
  EXPECT_EQ(spec.campaign.config.max_cycles, 2222);
  EXPECT_DOUBLE_EQ(spec.campaign.config.environment.flux, 1e9);
  EXPECT_DOUBLE_EQ(spec.campaign.config.environment.let, 20.5);
  EXPECT_EQ(spec.campaign.config.clustering.num_clusters, 7);
  EXPECT_EQ(spec.campaign.config.clustering.layer_depth, 3);
  EXPECT_DOUBLE_EQ(spec.campaign.config.sampling.fraction, 0.125);
  EXPECT_EQ(spec.campaign.config.sampling.weighting,
            cluster::SampleWeighting::kXsectWeighted);
  EXPECT_EQ(spec.svm.kernel.type, ml::KernelType::kPoly);
  EXPECT_DOUBLE_EQ(spec.svm.kernel.gamma, 0.25);
  EXPECT_DOUBLE_EQ(spec.svm.c, 4.0);
  EXPECT_EQ(spec.cv_folds, 3);
  EXPECT_TRUE(spec.run_grid_search);
  EXPECT_EQ(spec.grid_c, (std::vector<double>{1, 2}));
  EXPECT_EQ(spec.grid_gamma, (std::vector<double>{0.5, 2}));
  EXPECT_TRUE(spec.feature_selection);
  EXPECT_EQ(spec.ml_seed, 99u);
}

TEST(Scenario, DumpParseIsAFixedPoint) {
  core::ScenarioSpec spec = small_scenario(123);
  // Values chosen to stress round-trip-exact double formatting.
  spec.campaign.config.environment.flux = 5.00000001e8;
  spec.campaign.config.sampling.fraction = 1.0 / 3.0;
  spec.svm.tolerance = 1e-7;
  spec.grid_gamma = {0.05, 1.0 / 7.0, 4.0};
  spec.run_grid_search = true;
  spec.feature_selection = true;

  const std::string once = spec.dump();
  const auto reparsed = core::ScenarioSpec::parse(once);
  EXPECT_EQ(reparsed.dump(), once);
  EXPECT_EQ(reparsed.campaign.config.sampling.fraction,
            spec.campaign.config.sampling.fraction);
  EXPECT_EQ(reparsed.svm.tolerance, spec.svm.tolerance);
  EXPECT_EQ(reparsed.grid_gamma, spec.grid_gamma);
  EXPECT_EQ(reparsed.campaign.config.environment.flux,
            spec.campaign.config.environment.flux);
}

TEST(Scenario, RoundTripPreservesCampaignDigest) {
  const core::ScenarioSpec spec = small_scenario(31);
  const auto reparsed = core::ScenarioSpec::parse(spec.dump());
  core::Session a(spec, database());
  core::Session b(reparsed, database());
  EXPECT_EQ(a.config_digest(), b.config_digest());
}

TEST(Scenario, UnknownKeysAreRejectedWithTheirPath) {
  try {
    (void)core::ScenarioSpec::parse("campaign:\n  samplig:\n    fraction: 1\n");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("campaign.samplig"),
              std::string::npos)
        << e.what();
  }
  try {
    (void)core::ScenarioSpec::parse("ml:\n  gamma: 0.5\n  kernal: rbf\n");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("ml.kernal"), std::string::npos)
        << e.what();
  }
}

TEST(Scenario, BadValuesAreRejectedWithDiagnostics) {
  EXPECT_THROW((void)core::ScenarioSpec::parse("campaign:\n  engine: vcs\n"),
               InvalidArgument);
  EXPECT_THROW(
      (void)core::ScenarioSpec::parse("campaign:\n  seed: banana\n"),
      InvalidArgument);
  EXPECT_THROW((void)core::ScenarioSpec::parse("ml:\n  cv_folds: 1\n"),
               InvalidArgument);
  EXPECT_THROW(
      (void)core::ScenarioSpec::parse("ml:\n  grid_c: [1, two]\n"),
      InvalidArgument);
  EXPECT_THROW((void)core::ScenarioSpec::parse("model:\n  mem_kb: 0\n"),
               InvalidArgument);
  // Malformed YAML surfaces the yaml_lite ParseError (with line info).
  EXPECT_THROW((void)core::ScenarioSpec::parse("model:\n\tworkload: x\n"),
               ParseError);
}

// --- artifact codecs ----------------------------------------------------------

TEST(ModelIo, DatasetRoundTripIsBitExact) {
  TempDir tmp("ssds");
  ml::Dataset dataset(std::vector<std::string>{"alpha", "beta", "gamma"});
  dataset.add({0.1 + 1e-17, -3.5e-9, 1e300}, 1);
  dataset.add({0.0, -0.0, 1.0 / 3.0}, -1);
  dataset.add({5e8, 37.25, -1e-300}, 1);

  const std::string path = tmp.path() + "/roundtrip.ssds";
  core::write_dataset_file(path, core::DatasetArtifact{0xabcdef1234u, dataset});
  const auto loaded = core::read_dataset_file(path);
  EXPECT_EQ(loaded.config_digest, 0xabcdef1234u);
  ASSERT_EQ(loaded.dataset.size(), dataset.size());
  ASSERT_EQ(loaded.dataset.num_features(), dataset.num_features());
  EXPECT_EQ(loaded.dataset.feature_names(), dataset.feature_names());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(loaded.dataset.label(i), dataset.label(i));
    for (std::size_t f = 0; f < dataset.num_features(); ++f) {
      // Bit-exact, including signed zero.
      EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded.dataset.row(i)[f]),
                std::bit_cast<std::uint64_t>(dataset.row(i)[f]));
    }
  }
}

TEST(ModelIo, ModelRoundTripPredictsIdentically) {
  TempDir tmp("ssmd");
  core::Session session(small_scenario(21), database(),
                        with_dir(tmp.path()));
  const core::ModelBundle& trained = session.train();
  const core::SessionPrediction& before = session.predict();

  const core::ModelBundle loaded = core::read_model_file(session.model_path());
  EXPECT_EQ(loaded.config_digest, session.config_digest());
  EXPECT_EQ(loaded.scenario_name, "session-test");
  EXPECT_EQ(loaded.chosen_svm, trained.chosen_svm);
  EXPECT_EQ(loaded.selected_features, trained.selected_features);
  EXPECT_EQ(loaded.feature_names, trained.feature_names);
  EXPECT_EQ(loaded.model.num_support_vectors(),
            trained.model.num_support_vectors());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded.model.bias()),
            std::bit_cast<std::uint64_t>(trained.model.bias()));

  // A fresh session adopting the reloaded bundle must classify every node
  // identically — the acceptance criterion of the .ssmd artifact.
  core::Session reloaded(small_scenario(21), database());
  reloaded.adopt_model(loaded);
  const core::SessionPrediction& after = reloaded.predict();
  ASSERT_EQ(after.cells.size(), before.cells.size());
  EXPECT_EQ(after.labels, before.labels);
  EXPECT_EQ(after.class_percent, before.class_percent);
}

TEST(ModelIo, CorruptArtifactsAreRejected) {
  TempDir tmp("corrupt");
  core::Session session(small_scenario(41), database(),
                        with_dir(tmp.path()));
  (void)session.train();

  for (const std::string& path :
       {session.model_path(), session.dataset_path()}) {
    // Flip one payload byte: the artifact digest must catch it.
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(0, std::ios::end);
    const auto size = static_cast<long>(file.tellg());
    file.seekp(size - 3);
    char byte = 0;
    file.seekg(size - 3);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(size - 3);
    file.write(&byte, 1);
    file.close();
  }
  EXPECT_THROW((void)core::read_model_file(session.model_path()),
               InvalidArgument);
  EXPECT_THROW((void)core::read_dataset_file(session.dataset_path()),
               InvalidArgument);

  // Wrong magic / cross-loading the other artifact type.
  EXPECT_THROW((void)core::read_model_file(session.dataset_path()),
               InvalidArgument);
  // Truncation.
  const std::string truncated = tmp.path() + "/truncated.ssmd";
  {
    std::ifstream in(session.model_path(), std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::ofstream out(truncated, std::ios::binary);
    out.write(bytes.data(), static_cast<long>(bytes.size()) / 2);
  }
  EXPECT_THROW((void)core::read_model_file(truncated), Error);
}

// --- staged session -----------------------------------------------------------

TEST(Session, StagedRunMatchesInMemoryRun) {
  TempDir tmp("staged");
  core::Session persisted(small_scenario(51), database(),
                          with_dir(tmp.path()));
  core::Session in_memory(small_scenario(51), database());

  // Stage by stage on one, all-at-once on the other.
  (void)persisted.simulate();
  (void)persisted.build_dataset();
  (void)persisted.tune();
  (void)persisted.train();
  const auto& staged = persisted.predict();
  const auto& direct = in_memory.predict();

  EXPECT_EQ(persisted.simulate().records, in_memory.simulate().records);
  EXPECT_EQ(persisted.cv().mean_accuracy, in_memory.cv().mean_accuracy);
  EXPECT_EQ(staged.labels, direct.labels);
}

TEST(Session, RunAllMatchesRunPipelineWrapper) {
  const core::ScenarioSpec spec = small_scenario(61);
  const soc::SocModel model = spec.build_model();

  core::PipelineConfig config;
  config.campaign = spec.campaign.config;
  config.svm = spec.svm;
  config.cv_folds = spec.cv_folds;
  config.run_grid_search = spec.run_grid_search;
  config.ml_seed = spec.ml_seed;
  const core::PipelineResult via_wrapper =
      core::run_pipeline(model, config, database());

  core::Session session(spec, database());
  const core::PipelineResult via_session = session.run_all();

  EXPECT_EQ(via_wrapper.campaign.records, via_session.campaign.records);
  EXPECT_EQ(via_wrapper.cv.mean_accuracy, via_session.cv.mean_accuracy);
  EXPECT_EQ(via_wrapper.predicted_class_percent,
            via_session.predicted_class_percent);
  EXPECT_EQ(via_wrapper.model.num_support_vectors(),
            via_session.model.num_support_vectors());
}

TEST(Session, ResumesFromArtifactsWithoutSimulating) {
  TempDir tmp("resume");
  const core::SessionOptions options = with_dir(tmp.path());
  std::vector<int> labels;
  {
    core::Session first(small_scenario(71), database(), options);
    labels = first.predict().labels;
  }
  core::Session second(small_scenario(71), database(), options);
  const auto& prediction = second.predict();
  EXPECT_EQ(prediction.labels, labels);
  // The model bundle alone satisfied the predict stage: no campaign was
  // re-simulated and no dataset reloaded.
  EXPECT_FALSE(second.has_campaign());
  EXPECT_FALSE(second.has_dataset());
  EXPECT_FALSE(second.has_cv());

  // The dataset artifact alone satisfies the tune stage of a third session
  // asked for cross-validation metrics.
  core::Session third(small_scenario(71), database(),
                      with_dir(tmp.path()));
  std::filesystem::remove(third.model_path());
  (void)third.tune();
  EXPECT_TRUE(third.has_dataset());
  EXPECT_FALSE(third.has_campaign());
}

TEST(Session, RunAllWorksOnResumedArtifacts) {
  TempDir tmp("runall");
  core::PipelineResult first;
  {
    core::Session session(small_scenario(73), database(),
                          with_dir(tmp.path()));
    first = session.run_all();
  }
  // A fresh session resumes every stage from disk: train() short-circuits on
  // the .ssmd, yet run_all() must still deliver the dataset and campaign.
  core::Session resumed(small_scenario(73), database(), with_dir(tmp.path()));
  const core::PipelineResult second = resumed.run_all();
  EXPECT_EQ(second.campaign.records, first.campaign.records);
  EXPECT_EQ(second.dataset.size(), first.dataset.size());
  EXPECT_GT(second.dataset.size(), 0u);
  EXPECT_EQ(second.predicted_class_percent, first.predicted_class_percent);
}

TEST(Session, ZeroThreadsOptionInheritsConfigThreads) {
  // The run_pipeline wrapper path: a caller-provided campaign thread count
  // must survive the Session translation (records stay bit-identical for
  // any thread count, so only equality of results is observable here).
  core::ScenarioSpec spec = small_scenario(74);
  spec.campaign.config.threads = 2;
  core::Session threaded(spec, database());
  core::ScenarioSpec serial = small_scenario(74);
  core::Session baseline(serial, database());
  EXPECT_EQ(threaded.simulate().records, baseline.simulate().records);
}

TEST(Session, StaleArtifactsAreRejectedLoudly) {
  TempDir tmp("stale");
  const core::SessionOptions options = with_dir(tmp.path());
  {
    core::Session first(small_scenario(81), database(), options);
    (void)first.train();
  }
  // Same scenario name, different campaign seed: every stage that would
  // resume from the stale artifact must throw, never silently recompute.
  core::Session changed(small_scenario(82), database(), options);
  EXPECT_THROW((void)changed.train(), InvalidArgument);
  EXPECT_THROW((void)changed.build_dataset(), InvalidArgument);
  EXPECT_THROW((void)changed.simulate(), InvalidArgument);
  // Resume off: recomputes cleanly.
  core::Session fresh(small_scenario(82), database(),
                      with_dir(tmp.path(), false));
  EXPECT_NO_THROW((void)fresh.train());
}

TEST(Session, AdoptModelEnforcesDigestUnlessCrossNetlist) {
  TempDir tmp("adopt");
  core::Session trainer(small_scenario(91), database(),
                        with_dir(tmp.path()));
  (void)trainer.train();
  const core::ModelBundle bundle = core::read_model_file(trainer.model_path());

  // A modified netlist (bigger memory) has a different campaign digest.
  core::ScenarioSpec modified = small_scenario(91);
  modified.campaign.mem_kb = 8;
  core::Session transfer(modified, database());
  ASSERT_NE(transfer.config_digest(), trainer.config_digest());
  EXPECT_THROW(transfer.adopt_model(bundle), InvalidArgument);
  transfer.adopt_model(bundle, /*allow_digest_mismatch=*/true);
  const auto& prediction = transfer.predict();
  EXPECT_EQ(prediction.cells.size(), prediction.labels.size());
  EXPECT_GT(prediction.cells.size(), 0u);
}

TEST(Session, FeatureSelectionMaskIsPersistedAndApplied) {
  TempDir tmp("select");
  core::ScenarioSpec spec = small_scenario(95);
  spec.feature_selection = true;
  core::Session session(spec, database(),
                        with_dir(tmp.path()));
  const core::ModelBundle& bundle = session.train();
  EXPECT_GE(bundle.selected_features.size(), 1u);
  EXPECT_LE(bundle.selected_features.size(), bundle.feature_names.size());
  const auto& before = session.predict();

  core::Session reloaded(spec, database(),
                         with_dir(tmp.path()));
  EXPECT_EQ(reloaded.train().selected_features, bundle.selected_features);
  EXPECT_EQ(reloaded.predict().labels, before.labels);
}

TEST(Session, ProgressReportsEveryStage) {
  struct Collector {
    std::mutex mutex;
    std::vector<core::StageProgress> events;
  };
  auto collector = std::make_shared<Collector>();
  core::SessionOptions options;
  options.threads = 2;
  options.progress = [collector](const core::StageProgress& p) {
    const std::lock_guard<std::mutex> lock(collector->mutex);
    collector->events.push_back(p);
  };
  core::Session session(small_scenario(99), database(), options);
  (void)session.run_all();

  bool saw_counted_simulate = false;
  std::uint64_t max_done = 0;
  std::set<std::string> stages;
  for (const auto& event : collector->events) {
    stages.insert(event.stage);
    if (event.stage == "simulate" && event.total > 0) {
      saw_counted_simulate = true;
      EXPECT_LE(event.completed, event.total);
      max_done = std::max(max_done, event.completed);
    }
  }
  EXPECT_TRUE(saw_counted_simulate);
  EXPECT_EQ(max_done, session.simulate().records.size());
  for (const char* stage :
       {"simulate", "build_dataset", "tune", "train", "predict"}) {
    EXPECT_TRUE(stages.count(stage)) << "missing stage " << stage;
  }
}

}  // namespace
}  // namespace ssresf
