// Unit tests for the util library: strings, rng, csv, table, yaml-lite.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/csv.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/yaml_lite.h"

namespace ssresf::util {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello \t\r\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, SplitWs) {
  EXPECT_EQ(split_ws("  a \t b\nc "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("he", "hello"));
  EXPECT_TRUE(ends_with("hello", "lo"));
  EXPECT_FALSE(ends_with("lo", "hello"));
}

TEST(Strings, JoinAndLowerAndFormat) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(42);
  Rng child = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == child.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  shuffle(w, rng);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(w, v);
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row({"plain", "with,comma"});
  csv.row({"with\"quote", "multi\nline"});
  EXPECT_EQ(out.str(),
            "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",\"multi\nline\"\n");
}

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Yaml, ParsesScalarsListsMaps) {
  const auto doc = YamlNode::parse(
      "name: DFF\n"
      "ports: [D, CK, Q]\n"
      "count: 42\n"
      "xsect: 1.5e-8\n"
      "nested:\n"
      "  a: 1\n"
      "  b: two\n");
  EXPECT_EQ(doc.at("name").as_string(), "DFF");
  EXPECT_EQ(doc.at("ports").size(), 3u);
  EXPECT_EQ(doc.at("ports").at(std::size_t{1}).as_string(), "CK");
  EXPECT_EQ(doc.at("count").as_int(), 42);
  EXPECT_DOUBLE_EQ(doc.at("xsect").as_double(), 1.5e-8);
  EXPECT_EQ(doc.at("nested").at("b").as_string(), "two");
}

TEST(Yaml, ParsesPaperDatabaseShape) {
  // The exact schema of the paper's Fig. 3.
  const auto doc = YamlNode::parse(
      "CellName: DFFDEGLX2\n"
      "Ports: [D, CK, Q, QN]\n"
      "Model: SEU-DFF\n"
      "SoftErrors:\n"
      "  - LET: 37.0\n"
      "    subXsect:\n"
      "    - name: SEU 1->0\n"
      "      cond: (q==1) & (qn==0)\n"
      "      xsect: 1.5e-8\n"
      "    - name: SEU 0->1\n"
      "      cond: (q==0) & (qn==1)\n"
      "      xsect: 2.0e-8\n");
  const auto& errors = doc.at("SoftErrors");
  ASSERT_EQ(errors.size(), 1u);
  const auto& entry = errors.at(std::size_t{0});
  EXPECT_DOUBLE_EQ(entry.at("LET").as_double(), 37.0);
  const auto& sub = entry.at("subXsect");
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.at(std::size_t{0}).at("name").as_string(), "SEU 1->0");
  EXPECT_EQ(sub.at(std::size_t{1}).at("cond").as_string(), "(q==0) & (qn==1)");
  EXPECT_DOUBLE_EQ(sub.at(std::size_t{1}).at("xsect").as_double(), 2.0e-8);
}

TEST(Yaml, RoundTripsDump) {
  const char* text =
      "CellName: DFFX1\n"
      "Ports: [D, CK]\n"
      "SoftErrors:\n"
      "  - LET: 1.0\n"
      "    xsect: 1e-9\n"
      "  - LET: 37.0\n"
      "    xsect: 2e-8\n";
  const auto doc = YamlNode::parse(text);
  const auto doc2 = YamlNode::parse(doc.dump());
  EXPECT_EQ(doc2.at("CellName").as_string(), "DFFX1");
  ASSERT_EQ(doc2.at("SoftErrors").size(), 2u);
  EXPECT_DOUBLE_EQ(
      doc2.at("SoftErrors").at(std::size_t{1}).at("xsect").as_double(), 2e-8);
}

TEST(Yaml, RejectsMalformedInput) {
  EXPECT_THROW(YamlNode::parse("key without colon\n"), ParseError);
  EXPECT_THROW(YamlNode::parse("a: [unterminated\n"), ParseError);
  EXPECT_THROW(YamlNode::parse("\ta: tabs-not-allowed\n"), ParseError);
}

TEST(Yaml, TypeErrors) {
  const auto doc = YamlNode::parse("a: hello\nb: [1, 2]\n");
  EXPECT_THROW((void)doc.at("a").as_int(), InvalidArgument);
  EXPECT_THROW((void)doc.at("b").as_string(), InvalidArgument);
  EXPECT_THROW((void)doc.at("missing"), InvalidArgument);
  EXPECT_FALSE(doc.has("missing"));
  EXPECT_TRUE(doc.has("a"));
}

}  // namespace
}  // namespace ssresf::util
