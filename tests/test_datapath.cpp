// Unit tests for the width-generic datapath builders, evaluated through the
// levelized engine on small combinational netlists.
#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "sim/levelized_sim.h"
#include "soc/datapath.h"
#include "soc/alu.h"
#include "util/error.h"
#include "util/rng.h"

namespace ssresf::soc {
namespace {

using netlist::Logic;
using netlist::Netlist;
using netlist::NetlistBuilder;

/// Builds a combinational function with the given input widths, evaluates it
/// for arbitrary input values through the levelized engine.
class CombHarness {
 public:
  template <typename Fn>
  CombHarness(std::vector<int> widths, Fn&& build) {
    NetlistBuilder b("comb");
    for (std::size_t i = 0; i < widths.size(); ++i) {
      inputs_.push_back(b.input_bus("in" + std::to_string(i), widths[i]));
    }
    output_ = build(b, inputs_);
    b.output_bus(output_, "out");
    netlist_ = std::make_unique<Netlist>(b.finish());
    sim_ = std::make_unique<sim::LevelizedSimulator>(*netlist_);
  }

  std::uint64_t eval(const std::vector<std::uint64_t>& values) {
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
      for (std::size_t k = 0; k < inputs_[i].size(); ++k) {
        sim_->set_input(inputs_[i][k],
                        netlist::from_bool((values[i] >> k) & 1));
      }
    }
    std::uint64_t out = 0;
    for (std::size_t k = 0; k < output_.size(); ++k) {
      const Logic v = sim_->value(output_[k]);
      EXPECT_TRUE(netlist::is_known(v)) << "output bit " << k << " is X/Z";
      if (v == Logic::L1) out |= std::uint64_t{1} << k;
    }
    return out;
  }

  [[nodiscard]] std::size_t num_cells() const { return netlist_->num_cells(); }

 private:
  std::unique_ptr<Netlist> netlist_;
  std::unique_ptr<sim::LevelizedSimulator> sim_;
  std::vector<Bus> inputs_;
  Bus output_;
};

std::uint64_t mask_of(int width) {
  return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

TEST(Datapath, RippleAddExhaustive4Bit) {
  CombHarness h({4, 4}, [](NetlistBuilder& b, const std::vector<Bus>& in) {
    auto r = ripple_add(b, in[0], in[1], b.zero());
    Bus out = r.sum;
    out.push_back(r.carry);
    return out;
  });
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t c = 0; c < 16; ++c) {
      EXPECT_EQ(h.eval({a, c}), a + c) << a << " + " << c;
    }
  }
}

TEST(Datapath, AddRandom32Bit) {
  CombHarness h({32, 32}, [](NetlistBuilder& b, const std::vector<Bus>& in) {
    return add(b, in[0], in[1]);
  });
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next() & 0xFFFFFFFF;
    const std::uint64_t c = rng.next() & 0xFFFFFFFF;
    EXPECT_EQ(h.eval({a, c}), (a + c) & 0xFFFFFFFF);
  }
}

TEST(Datapath, SubtractAndBorrow) {
  CombHarness h({8, 8}, [](NetlistBuilder& b, const std::vector<Bus>& in) {
    auto r = subtract(b, in[0], in[1]);
    Bus out = r.sum;
    out.push_back(r.carry);
    return out;
  });
  for (std::uint64_t a = 0; a < 256; a += 7) {
    for (std::uint64_t c = 0; c < 256; c += 5) {
      const std::uint64_t got = h.eval({a, c});
      EXPECT_EQ(got & 0xFF, (a - c) & 0xFF);
      EXPECT_EQ((got >> 8) & 1, a >= c ? 1u : 0u) << a << " - " << c;
    }
  }
}

TEST(Datapath, NegateTwosComplement) {
  CombHarness h({8}, [](NetlistBuilder& b, const std::vector<Bus>& in) {
    return negate(b, in[0]);
  });
  for (std::uint64_t a = 0; a < 256; ++a) {
    EXPECT_EQ(h.eval({a}), (0 - a) & 0xFF);
  }
}

TEST(Datapath, CompareOps) {
  CombHarness h({6, 6}, [](NetlistBuilder& b, const std::vector<Bus>& in) {
    Bus out;
    out.push_back(equal(b, in[0], in[1]));
    out.push_back(less_unsigned(b, in[0], in[1]));
    out.push_back(less_signed(b, in[0], in[1]));
    out.push_back(is_zero(b, in[0]));
    return out;
  });
  for (std::uint64_t a = 0; a < 64; a += 3) {
    for (std::uint64_t c = 0; c < 64; c += 5) {
      const std::uint64_t got = h.eval({a, c});
      const auto sa = static_cast<std::int64_t>(a << 58) >> 58;
      const auto sc = static_cast<std::int64_t>(c << 58) >> 58;
      EXPECT_EQ(got & 1, a == c ? 1u : 0u);
      EXPECT_EQ((got >> 1) & 1, a < c ? 1u : 0u);
      EXPECT_EQ((got >> 2) & 1, sa < sc ? 1u : 0u) << sa << " <s " << sc;
      EXPECT_EQ((got >> 3) & 1, a == 0 ? 1u : 0u);
    }
  }
}

TEST(Datapath, ShiftsExhaustive8Bit) {
  CombHarness h({8, 3}, [](NetlistBuilder& b, const std::vector<Bus>& in) {
    Bus out = shift_left(b, in[0], in[1]);
    const Bus srl = shift_right(b, in[0], in[1], b.zero());
    const Bus sra = shift_right(b, in[0], in[1], in[0].back());
    out.insert(out.end(), srl.begin(), srl.end());
    out.insert(out.end(), sra.begin(), sra.end());
    return out;
  });
  for (std::uint64_t a = 0; a < 256; a += 3) {
    for (std::uint64_t s = 0; s < 8; ++s) {
      const std::uint64_t got = h.eval({a, s});
      EXPECT_EQ(got & 0xFF, (a << s) & 0xFF);
      EXPECT_EQ((got >> 8) & 0xFF, a >> s);
      const auto sa = static_cast<std::int8_t>(a);
      EXPECT_EQ((got >> 16) & 0xFF,
                static_cast<std::uint8_t>(sa >> s)) << a << ">>s" << s;
    }
  }
}

TEST(Datapath, MultiplyExhaustive6x6) {
  CombHarness h({6, 6}, [](NetlistBuilder& b, const std::vector<Bus>& in) {
    return multiply(b, in[0], in[1]);
  });
  for (std::uint64_t a = 0; a < 64; ++a) {
    for (std::uint64_t c = 0; c < 64; ++c) {
      EXPECT_EQ(h.eval({a, c}), a * c) << a << " * " << c;
    }
  }
}

TEST(Datapath, MultiplyRandom32x32) {
  CombHarness h({32, 32}, [](NetlistBuilder& b, const std::vector<Bus>& in) {
    return multiply(b, in[0], in[1]);
  });
  util::Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t a = rng.next() & 0xFFFFFFFF;
    const std::uint64_t c = rng.next() & 0xFFFFFFFF;
    EXPECT_EQ(h.eval({a, c}), a * c);
  }
}

TEST(Datapath, DivideUnsigned) {
  CombHarness h({8, 8}, [](NetlistBuilder& b, const std::vector<Bus>& in) {
    auto r = divide_unsigned(b, in[0], in[1]);
    Bus out = r.quotient;
    out.insert(out.end(), r.remainder.begin(), r.remainder.end());
    return out;
  });
  for (std::uint64_t a = 0; a < 256; a += 3) {
    for (std::uint64_t c = 0; c < 256; c += 11) {
      const std::uint64_t got = h.eval({a, c});
      if (c == 0) {
        EXPECT_EQ(got & 0xFF, 0xFFu);          // RISC-V: q = all ones
        EXPECT_EQ((got >> 8) & 0xFF, a);       // r = dividend
      } else {
        EXPECT_EQ(got & 0xFF, a / c);
        EXPECT_EQ((got >> 8) & 0xFF, a % c);
      }
    }
  }
}

TEST(Datapath, DivideSignedRiscvSemantics) {
  CombHarness h({8, 8}, [](NetlistBuilder& b, const std::vector<Bus>& in) {
    auto r = divide_signed(b, in[0], in[1]);
    Bus out = r.quotient;
    out.insert(out.end(), r.remainder.begin(), r.remainder.end());
    return out;
  });
  auto s8 = [](std::uint64_t v) { return static_cast<std::int8_t>(v); };
  for (std::uint64_t a = 0; a < 256; a += 5) {
    for (std::uint64_t c = 0; c < 256; c += 7) {
      const std::uint64_t got = h.eval({a, c});
      const int sa = s8(a);
      const int sc = s8(c);
      int expect_q;
      int expect_r;
      if (sc == 0) {
        expect_q = -1;
        expect_r = sa;
      } else if (sa == -128 && sc == -1) {
        expect_q = -128;  // overflow case per the spec
        expect_r = 0;
      } else {
        expect_q = sa / sc;
        expect_r = sa % sc;
      }
      EXPECT_EQ(got & 0xFF, static_cast<std::uint64_t>(expect_q) & 0xFF)
          << sa << " / " << sc;
      EXPECT_EQ((got >> 8) & 0xFF, static_cast<std::uint64_t>(expect_r) & 0xFF)
          << sa << " % " << sc;
    }
  }
}

TEST(Datapath, MuxTreeSelectsOptions) {
  CombHarness h({3, 8, 8, 8, 8, 8},
                [](NetlistBuilder& b, const std::vector<Bus>& in) {
                  const Bus options[5] = {in[1], in[2], in[3], in[4], in[5]};
                  return bus_mux_tree(b, in[0], options);
                });
  // 5 options with a 3-bit select; out-of-range selects fall through to the
  // last option at each level.
  EXPECT_EQ(h.eval({0, 10, 20, 30, 40, 50}), 10u);
  EXPECT_EQ(h.eval({1, 10, 20, 30, 40, 50}), 20u);
  EXPECT_EQ(h.eval({2, 10, 20, 30, 40, 50}), 30u);
  EXPECT_EQ(h.eval({3, 10, 20, 30, 40, 50}), 40u);
  EXPECT_EQ(h.eval({4, 10, 20, 30, 40, 50}), 50u);
}

TEST(Datapath, DecodeOneHot) {
  CombHarness h({3}, [](NetlistBuilder& b, const std::vector<Bus>& in) {
    auto lines = decode(b, in[0]);
    return Bus(lines.begin(), lines.end());
  });
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(h.eval({v}), std::uint64_t{1} << v);
  }
}

TEST(Datapath, NormalizeLeft) {
  CombHarness h({8}, [](NetlistBuilder& b, const std::vector<Bus>& in) {
    auto r = normalize_left(b, in[0]);
    Bus out = r.value;
    out.insert(out.end(), r.amount.begin(), r.amount.end());
    return out;
  });
  for (std::uint64_t a = 1; a < 256; ++a) {
    const std::uint64_t got = h.eval({a});
    const std::uint64_t value = got & 0xFF;
    const std::uint64_t amount = (got >> 8) & 0x7;  // 3 shift bits for w=8
    const std::uint64_t zero_flag = (got >> 11) & 1;
    EXPECT_EQ(value, (a << amount) & 0xFF);
    EXPECT_TRUE(value & 0x80) << "not normalized for " << a;
    EXPECT_EQ(zero_flag, 0u);
  }
  // All-zero input sets the zero flag.
  const std::uint64_t got = h.eval({0});
  EXPECT_EQ((got >> 11) & 1, 1u);
}

TEST(Datapath, SignZeroExtendAndSlice) {
  CombHarness h({4}, [](NetlistBuilder& b, const std::vector<Bus>& in) {
    Bus out = sign_extend(in[0], 8);
    const Bus z = zero_extend(b, in[0], 8);
    out.insert(out.end(), z.begin(), z.end());
    return out;
  });
  EXPECT_EQ(h.eval({0x5}), 0x05u | (0x05u << 8));
  EXPECT_EQ(h.eval({0xC}), 0xFCu | (0x0Cu << 8));
}

TEST(Datapath, WidthMismatchThrows) {
  EXPECT_THROW(
      CombHarness({4, 5},
                  [](NetlistBuilder& b, const std::vector<Bus>& in) {
                    return add(b, in[0], in[1]);
                  }),
      InvalidArgument);
}

// --- ALU --------------------------------------------------------------------

struct AluCase {
  AluOp op;
  std::uint64_t a, b, expected;
};

class AluTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluTest, Computes16Bit) {
  const AluCase c = GetParam();
  CombHarness h({16, 16, 4}, [](NetlistBuilder& b, const std::vector<Bus>& in) {
    return build_alu(b, in[0], in[1], in[2]);
  });
  EXPECT_EQ(h.eval({c.a, c.b, static_cast<std::uint64_t>(c.op)}),
            c.expected & mask_of(16));
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluTest,
    ::testing::Values(
        AluCase{AluOp::kAdd, 0x1234, 0x0FF1, 0x2225},
        AluCase{AluOp::kSub, 0x1000, 0x0001, 0x0FFF},
        AluCase{AluOp::kSub, 3, 5, 0xFFFE},
        AluCase{AluOp::kAnd, 0xF0F0, 0xFF00, 0xF000},
        AluCase{AluOp::kOr, 0xF0F0, 0x0F00, 0xFFF0},
        AluCase{AluOp::kXor, 0xFFFF, 0x0F0F, 0xF0F0},
        AluCase{AluOp::kSlt, 0xFFFF, 1, 1},      // -1 < 1 signed
        AluCase{AluOp::kSlt, 1, 0xFFFF, 0},
        AluCase{AluOp::kSltu, 0xFFFF, 1, 0},     // unsigned
        AluCase{AluOp::kSltu, 1, 0xFFFF, 1},
        AluCase{AluOp::kSll, 0x0001, 12, 0x1000},
        AluCase{AluOp::kSrl, 0x8000, 15, 0x0001},
        AluCase{AluOp::kSra, 0x8000, 15, 0xFFFF},
        AluCase{AluOp::kPassB, 0xAAAA, 0x1234, 0x1234}));

TEST(Alu, ShiftAmountUsesLowBitsOnly) {
  CombHarness h({16, 16, 4}, [](NetlistBuilder& b, const std::vector<Bus>& in) {
    return build_alu(b, in[0], in[1], in[2]);
  });
  // Shift amount 0x12 on a 16-bit ALU uses the low 4 bits: shift by 2.
  EXPECT_EQ(h.eval({0x0001, 0x12, static_cast<std::uint64_t>(AluOp::kSll)}),
            0x4u);
}

}  // namespace
}  // namespace ssresf::soc
