// The chunked columnar `.ssfs` v2 store and the RecordSink / RecordSource
// streaming API. Under test: round trips (empty through multi-chunk),
// arrival-order appends replayed in ascending order, corruption detection
// that names the offending byte offset, v1/v2 interchangeability behind
// open_record_source, the begin() lifecycle of deferred sinks, and the
// central equivalence contract — streaming CampaignStats bit-identical to
// the vector path's CampaignResult, with bounded peak memory.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/features.h"
#include "fi/campaign.h"
#include "fi/record_store.h"
#include "fi/sensitivity.h"
#include "fi/shard.h"
#include "soc/programs.h"
#include "util/error.h"

namespace ssresf {
namespace {

namespace fs = std::filesystem;

soc::SocModel small_soc() {
  soc::SocConfig cfg;
  cfg.name = "store-soc";
  cfg.mem_bytes = 8 * 1024;
  cfg.cpu_isa = "RV32I";
  cfg.bus = soc::BusProtocol::kAhb;
  const soc::Workload w = soc::checksum_workload(6);
  const soc::Program programs[] = {soc::assemble(w.source)};
  return soc::build_soc(cfg, programs);
}

fi::CampaignConfig small_campaign(std::uint64_t seed = 17) {
  fi::CampaignConfig cfg;
  cfg.engine = sim::EngineKind::kLevelized;
  cfg.clustering.num_clusters = 5;
  cfg.sampling.fraction = 0.01;
  cfg.sampling.min_per_cluster = 4;
  cfg.sampling.max_per_cluster = 10;
  cfg.sampling.memory_macro_draws = 8;
  cfg.seed = seed;
  cfg.threads = 2;
  return cfg;
}

std::string scratch_file(const std::string& name) {
  return (fs::path(testing::TempDir()) / ("ssresf_rs_" + name)).string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Deterministic synthetic record for codec-level tests (no campaign run).
fi::ShardRecord make_record(std::uint64_t index) {
  fi::ShardRecord r;
  r.index = index;
  r.record.event.target.kind =
      static_cast<radiation::FaultKind>(index % 3);
  r.record.event.target.cell = netlist::CellId(
      static_cast<std::uint32_t>((index * 37) % 1000));
  r.record.event.target.word = static_cast<std::uint32_t>(index % 64);
  r.record.event.target.bit = static_cast<std::uint32_t>(index % 32);
  r.record.event.time_ps = 1000 + index * 13;
  r.record.event.set_width_ps = static_cast<std::uint32_t>(50 + index % 7);
  r.record.cluster = static_cast<int>(index % 5);
  r.record.module_class = static_cast<netlist::ModuleClass>(index % 5);
  r.record.soft_error = (index % 3) == 0;
  r.record.first_mismatch_cycle = r.record.soft_error ? index % 97 : 0;
  return r;
}

std::vector<fi::ShardRecord> make_records(std::uint64_t count,
                                          std::uint64_t first = 0,
                                          std::uint64_t stride = 1) {
  std::vector<fi::ShardRecord> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(make_record(first + i * stride));
  }
  return out;
}

fi::ShardFileMeta synthetic_meta(std::uint64_t total) {
  fi::ShardFileMeta meta;
  meta.seed = 42;
  meta.shard_index = 0;
  meta.shard_count = 1;
  meta.total_injections = total;
  meta.config_digest = 0xabcdef0123456789ull;
  meta.num_records = total;
  return meta;
}

std::vector<fi::ShardRecord> drain(fi::RecordSource& source) {
  std::vector<fi::ShardRecord> out;
  fi::RecordBatch batch;
  while (source.next_batch(batch)) {
    for (std::size_t i = 0; i < batch.row_count(); ++i) {
      out.push_back(batch.row(i));
    }
  }
  return out;
}

/// VmRSS in KiB from /proc/self/status, or -1 when unavailable.
long vm_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
  return -1;
}

TEST(RecordStore, V2RoundTripsEmptyOneRowAndMultiChunk) {
  for (const std::uint64_t count : {0ull, 1ull, 23ull}) {
    const std::vector<fi::ShardRecord> records = make_records(count);
    const std::string path =
        scratch_file("roundtrip_" + std::to_string(count) + ".ssfs");
    // chunk_rows=3 forces multiple chunks for the 23-row case.
    fi::write_columnar_file(path, synthetic_meta(count), records,
                            /*chunk_rows=*/3);

    fi::ColumnarFileSource source(path);
    EXPECT_EQ(source.meta().seed, 42u);
    EXPECT_EQ(source.meta().total_injections, count);
    EXPECT_EQ(source.meta().config_digest, 0xabcdef0123456789ull);
    EXPECT_EQ(source.meta().num_records, count);
    EXPECT_EQ(source.total_records(), count);

    const std::vector<fi::ShardRecord> back = drain(source);
    ASSERT_EQ(back.size(), records.size());
    for (std::size_t i = 0; i < back.size(); ++i) {
      EXPECT_EQ(back[i], records[i]) << "record " << i;
    }
    fs::remove(path);
  }
}

TEST(RecordStore, ArrivalOrderAppendsReadBackAscending) {
  // A socket coordinator appends in worker-arrival order: contiguous runs
  // from different shards interleave. The reader must replay the whole
  // stream ascending regardless.
  const std::string path = scratch_file("arrival.ssfs");
  fi::ColumnarFileWriter writer(path, synthetic_meta(30), /*chunk_rows=*/4);
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> runs = {
      {20, 10}, {0, 10}, {10, 10}};  // {first, count}, out of order
  for (const auto& [first, count] : runs) {
    fi::RecordBatch batch;
    for (std::uint64_t i = 0; i < count; ++i) {
      batch.push_back(make_record(first + i));
    }
    writer.append(batch);
  }
  writer.flush();
  EXPECT_EQ(writer.records_written(), 30u);

  fi::ColumnarFileSource source(path);
  const std::vector<fi::ShardRecord> back = drain(source);
  ASSERT_EQ(back.size(), 30u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].index, i);
    EXPECT_EQ(back[i], make_record(i)) << "record " << i;
  }
  fs::remove(path);
}

TEST(RecordStore, StrideShardStreamsKeepChunksFull) {
  // A stride-N shard emits non-contiguous indices (0, 3, 6, ...). Chunks
  // are only cut early on a *broken run between batches* — within one
  // producer's stream the gaps must still coalesce into full chunks, not
  // degenerate into per-batch chunks.
  const std::string path = scratch_file("stride.ssfs");
  const std::vector<fi::ShardRecord> records =
      make_records(64, /*first=*/0, /*stride=*/3);
  fi::ShardFileMeta meta = synthetic_meta(64);
  meta.total_injections = 64 * 3;
  fi::write_columnar_file(path, meta, records, /*chunk_rows=*/16);

  fi::ColumnarFileSource source(path);
  fi::RecordBatch batch;
  std::size_t chunks = 0;
  std::size_t rows = 0;
  while (source.next_batch(batch)) {
    ++chunks;
    rows += batch.row_count();
  }
  EXPECT_EQ(rows, 64u);
  EXPECT_EQ(chunks, 4u);  // 64 rows / 16 per chunk, despite the index gaps
  fs::remove(path);
}

TEST(RecordStore, WriterRejectsInterleavedBatches) {
  const std::string path = scratch_file("interleave.ssfs");
  fi::ColumnarFileWriter writer(path, synthetic_meta(20), /*chunk_rows=*/4);
  fi::RecordBatch first;
  for (std::uint64_t i = 0; i < 10; ++i) first.push_back(make_record(i));
  writer.append(first);
  fi::RecordBatch overlap;
  for (std::uint64_t i = 5; i < 8; ++i) overlap.push_back(make_record(i));
  // The overlap only becomes visible at chunk granularity: flush detects it.
  EXPECT_THROW(
      {
        writer.append(overlap);
        writer.flush();
      },
      InvalidArgument);

  fi::RecordBatch descending;
  descending.index = {3, 1};
  descending.kind = {0, 0};
  descending.cell = {0, 0};
  descending.word = {0, 0};
  descending.bit = {0, 0};
  descending.time_ps = {0, 0};
  descending.set_width_ps = {0, 0};
  descending.cluster = {0, 0};
  descending.module_class = {0, 0};
  descending.soft_error = {0, 0};
  descending.first_mismatch_cycle = {0, 0};
  fi::ColumnarFileWriter writer2(scratch_file("desc.ssfs"),
                                 synthetic_meta(4));
  EXPECT_THROW(writer2.append(descending), InvalidArgument);
}

TEST(RecordStore, ChunkCorruptionNamesTheByteOffset) {
  const std::string path = scratch_file("corrupt_chunk.ssfs");
  fi::write_columnar_file(path, synthetic_meta(8), make_records(8),
                          /*chunk_rows=*/8);
  std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 21u);
  // Layout from the tail: "SSF2" tail magic (4) preceded by fixed64
  // footer_len (8); the chunk's fixed64 checksum sits just before the
  // footer, and the payload just before that.
  std::uint64_t footer_len = 0;
  for (int i = 0; i < 8; ++i) {
    footer_len |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
                      bytes[bytes.size() - 12 + static_cast<std::size_t>(i)]))
                  << (8 * i);
  }
  const std::size_t footer_start = bytes.size() - 12 - footer_len;
  const std::size_t payload_byte = footer_start - 9;  // inside the payload
  bytes[payload_byte] = static_cast<char>(bytes[payload_byte] ^ 0x40);
  write_file(path, bytes);

  fi::ColumnarFileSource source(path);  // footer still intact
  fi::RecordBatch batch;
  try {
    (void)source.next_batch(batch);
    FAIL() << "corrupted chunk was accepted";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
  }
  fs::remove(path);
}

TEST(RecordStore, SelectRangeReadsOnlyIntersectingChunks) {
  const std::string path = scratch_file("pushdown_range.ssfs");
  const std::vector<fi::ShardRecord> records = make_records(64);
  fi::write_columnar_file(path, synthetic_meta(64), records,
                          /*chunk_rows=*/16);  // chunks [0,15] ... [48,63]

  fi::ColumnarFileSource source(path);
  source.select_range(20, 40);
  const std::vector<fi::ShardRecord> back = drain(source);
  ASSERT_EQ(back.size(), 20u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].index, 20 + i);
  }
  // [20, 40) intersects chunks [16,31] and [32,47] only.
  EXPECT_EQ(source.chunks_decoded(), 2u);
  EXPECT_EQ(source.chunks_skipped(), 2u);

  // Reading must not start before select_range.
  fi::ColumnarFileSource late(path);
  fi::RecordBatch batch;
  ASSERT_TRUE(late.next_batch(batch));
  EXPECT_THROW(late.select_range(0, 1), InternalError);
  fs::remove(path);
}

TEST(RecordStore, SelectRangeNeverDecodesSkippedChunks) {
  const std::string path = scratch_file("pushdown_corrupt.ssfs");
  fi::write_columnar_file(path, synthetic_meta(24), make_records(24),
                          /*chunk_rows=*/8);  // chunks [0,7] [8,15] [16,23]
  // Flip a payload byte of the LAST chunk (it sits just before the footer —
  // same offset math as ChunkCorruptionNamesTheByteOffset).
  std::string bytes = read_file(path);
  std::uint64_t footer_len = 0;
  for (int i = 0; i < 8; ++i) {
    footer_len |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
                      bytes[bytes.size() - 12 + static_cast<std::size_t>(i)]))
                  << (8 * i);
  }
  const std::size_t footer_start = bytes.size() - 12 - footer_len;
  const std::size_t payload_byte = footer_start - 9;
  bytes[payload_byte] = static_cast<char>(bytes[payload_byte] ^ 0x40);
  write_file(path, bytes);

  // A full scan trips over the corruption...
  fi::ColumnarFileSource full(path);
  EXPECT_THROW(drain(full), InvalidArgument);

  // ...but a range read that excludes the corrupt chunk never touches it:
  // the chunk is skipped from the footer index alone, so its checksum is
  // never even computed.
  fi::ColumnarFileSource ranged(path);
  ranged.select_range(0, 16);
  const std::vector<fi::ShardRecord> back = drain(ranged);
  ASSERT_EQ(back.size(), 16u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].index, i);
  }
  EXPECT_EQ(ranged.chunks_decoded(), 2u);
  EXPECT_EQ(ranged.chunks_skipped(), 1u);
  fs::remove(path);
}

TEST(RecordStore, SelectRangeHandlesIndexGapsAndEmptyWindows) {
  const std::string path = scratch_file("pushdown_gaps.ssfs");
  // Indices 0,4,8,...,28 in chunks spanning [0,12] and [16,28].
  fi::write_columnar_file(path, synthetic_meta(29),
                          make_records(8, /*first=*/0, /*stride=*/4),
                          /*chunk_rows=*/4);

  // The window falls into the gap between the chunks: both skipped.
  fi::ColumnarFileSource gap(path);
  gap.select_range(13, 16);
  EXPECT_TRUE(drain(gap).empty());
  EXPECT_EQ(gap.chunks_decoded(), 0u);
  EXPECT_EQ(gap.chunks_skipped(), 2u);

  // The window intersects a chunk's span but none of its actual indices:
  // the chunk decodes, trims to nothing, and the stream ends cleanly.
  fi::ColumnarFileSource sparse(path);
  sparse.select_range(1, 4);
  EXPECT_TRUE(drain(sparse).empty());
  EXPECT_EQ(sparse.chunks_decoded(), 1u);
  EXPECT_EQ(sparse.chunks_skipped(), 1u);

  // Degenerate lo >= hi window: everything is skipped up front.
  fi::ColumnarFileSource empty(path);
  empty.select_range(8, 8);
  EXPECT_TRUE(drain(empty).empty());
  EXPECT_EQ(empty.chunks_decoded(), 0u);
  EXPECT_EQ(empty.chunks_skipped(), 2u);

  // Row-level trim across a chunk boundary.
  fi::ColumnarFileSource trim(path);
  trim.select_range(4, 21);
  const std::vector<fi::ShardRecord> back = drain(trim);
  ASSERT_EQ(back.size(), 5u);  // 4, 8, 12, 16, 20
  EXPECT_EQ(back.front().index, 4u);
  EXPECT_EQ(back.back().index, 20u);
  EXPECT_EQ(trim.chunks_decoded(), 2u);
  fs::remove(path);
}

TEST(RecordStore, FooterAndTailCorruptionAreRejected) {
  const std::string path = scratch_file("corrupt_footer.ssfs");
  fi::write_columnar_file(path, synthetic_meta(8), make_records(8));
  const std::string pristine = read_file(path);
  std::uint64_t footer_len = 0;
  for (int i = 0; i < 8; ++i) {
    footer_len |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
                      pristine[pristine.size() - 12 +
                               static_cast<std::size_t>(i)]))
                  << (8 * i);
  }
  const std::size_t footer_start = pristine.size() - 12 - footer_len;

  std::string bad_footer = pristine;
  bad_footer[footer_start] = static_cast<char>(bad_footer[footer_start] ^ 1);
  write_file(path, bad_footer);
  try {
    fi::ColumnarFileSource source(path);
    FAIL() << "corrupted footer was accepted";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("footer digest mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
  }

  std::string bad_tail = pristine;
  bad_tail.back() = static_cast<char>(bad_tail.back() ^ 1);
  write_file(path, bad_tail);
  EXPECT_THROW(fi::ColumnarFileSource bad(path), InvalidArgument);

  // Truncation loses the tail; open_record_source still sniffs the magic
  // but the columnar parse must fail loudly.
  write_file(path, pristine.substr(0, pristine.size() / 2));
  EXPECT_THROW((void)fi::open_record_source(path), InvalidArgument);
  fs::remove(path);
}

TEST(RecordStore, DeferredWriterAndVectorSinkFollowBeginLifecycle) {
  const std::string path = scratch_file("deferred.ssfs");
  fi::ColumnarFileWriter writer(path);  // no metadata yet
  fi::RecordBatch batch;
  batch.push_back(make_record(0));
  EXPECT_THROW(writer.append(batch), InternalError);
  EXPECT_THROW(writer.flush(), InternalError);
  writer.begin(synthetic_meta(1));
  writer.append(batch);
  writer.flush();
  fi::ColumnarFileSource source(path);
  EXPECT_EQ(source.meta().seed, 42u);
  EXPECT_EQ(source.total_records(), 1u);
  fs::remove(path);

  fi::VectorSink sink;  // deferred sizing
  sink.begin(synthetic_meta(3));
  fi::RecordBatch three;
  for (std::uint64_t i = 0; i < 3; ++i) three.push_back(make_record(i));
  sink.append(three);
  EXPECT_EQ(sink.filled(), 3u);
  EXPECT_EQ(sink.take_records().size(), 3u);

  fi::VectorSink strict;
  strict.begin(synthetic_meta(2));
  fi::RecordBatch out_of_range;
  out_of_range.push_back(make_record(5));
  EXPECT_THROW(strict.append(out_of_range), InvalidArgument);
  fi::RecordBatch dup;
  dup.push_back(make_record(0));
  strict.append(dup);
  EXPECT_THROW(strict.append(dup), InvalidArgument);
  EXPECT_THROW((void)strict.take_records(), InternalError);  // slot 1 unfilled
}

TEST(RecordStore, V1AndV2FilesAreInterchangeableSources) {
  const soc::SocModel model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignConfig config = small_campaign();
  const fi::ShardRunResult run =
      fi::run_campaign_shard(model, config, db, {1, 2});
  ASSERT_FALSE(run.records.empty());

  fi::ShardFileMeta meta;
  meta.seed = config.seed;
  meta.shard_index = 1;
  meta.shard_count = 2;
  meta.total_injections = run.total_injections;
  meta.config_digest = fi::campaign_config_digest(model, config);
  meta.num_records = run.records.size();

  const std::string v1_path = scratch_file("interop_v1.ssfs");
  const std::string v2_path = scratch_file("interop_v2.ssfs");
  fi::write_shard_file(v1_path, meta, run.records);
  fi::write_columnar_file(v2_path, meta, run.records, /*chunk_rows=*/7);

  const auto v1 = fi::open_record_source(v1_path);
  const auto v2 = fi::open_record_source(v2_path);
  EXPECT_EQ(v1->meta().config_digest, v2->meta().config_digest);
  EXPECT_EQ(v1->meta().total_injections, v2->meta().total_injections);
  const std::vector<fi::ShardRecord> r1 = drain(*v1);
  const std::vector<fi::ShardRecord> r2 = drain(*v2);
  ASSERT_EQ(r1.size(), run.records.size());
  ASSERT_EQ(r2.size(), run.records.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i], run.records[i]) << "v1 record " << i;
    EXPECT_EQ(r2[i], run.records[i]) << "v2 record " << i;
  }
  fs::remove(v1_path);
  fs::remove(v2_path);
}

TEST(RecordStore, MixedVersionMergeMatchesSingleProcess) {
  const soc::SocModel model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignConfig config = small_campaign();
  const fi::CampaignResult baseline = fi::run_campaign(model, config, db);

  std::vector<std::string> paths;
  for (int k = 0; k < 3; ++k) {
    const fi::ShardRunResult run =
        fi::run_campaign_shard(model, config, db, {k, 3});
    fi::ShardFileMeta meta;
    meta.seed = config.seed;
    meta.shard_index = static_cast<std::uint32_t>(k);
    meta.shard_count = 3;
    meta.total_injections = run.total_injections;
    meta.config_digest = fi::campaign_config_digest(model, config);
    meta.num_records = run.records.size();
    const std::string path =
        scratch_file("mixed_" + std::to_string(k) + ".ssfs");
    // Shard 1 stays v1; the rest are v2 — the merge must not care.
    if (k == 1) {
      fi::write_shard_file(path, meta, run.records);
    } else {
      fi::write_columnar_file(path, meta, run.records, /*chunk_rows=*/5);
    }
    paths.push_back(path);
  }

  fi::VectorSink sink;
  const fi::CampaignStats stats =
      fi::merge_record_files(model, config, db, paths, sink);
  const std::vector<fi::InjectionRecord> merged = sink.take_records();
  ASSERT_EQ(merged.size(), baseline.records.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i], baseline.records[i]) << "record " << i;
  }
  EXPECT_EQ(stats.num_records, baseline.records.size());
  EXPECT_EQ(stats.chip_ser_percent, baseline.chip_ser_percent);
  EXPECT_EQ(stats.set_xsect_cm2, baseline.set_xsect_cm2);
  EXPECT_EQ(stats.seu_xsect_cm2, baseline.seu_xsect_cm2);

  // Digest binding: a v2 file written for seed 17 must not merge under a
  // different campaign.
  const fi::CampaignConfig other = small_campaign(18);
  fi::VectorSink reject;
  EXPECT_THROW(
      (void)fi::merge_record_files(model, other, db, paths, reject),
      InvalidArgument);
  for (const std::string& path : paths) fs::remove(path);
}

TEST(RecordStore, StreamingStatsAreBitIdenticalToVectorPath) {
  const soc::SocModel model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignConfig config = small_campaign();

  const fi::CampaignResult baseline = fi::run_campaign(model, config, db);
  fi::VectorSink sink;
  const fi::CampaignStats stats = fi::run_campaign(model, config, db, sink);

  // Records identical through the sink...
  const std::vector<fi::InjectionRecord> streamed = sink.take_records();
  ASSERT_EQ(streamed.size(), baseline.records.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i], baseline.records[i]) << "record " << i;
  }
  // ...and every double bit-identical (EXPECT_EQ, not NEAR: both paths
  // reduce the same integer counters through one shared kernel).
  EXPECT_EQ(stats.num_records, baseline.records.size());
  EXPECT_EQ(stats.chip_ser_percent, baseline.chip_ser_percent);
  EXPECT_EQ(stats.set_xsect_cm2, baseline.set_xsect_cm2);
  EXPECT_EQ(stats.seu_xsect_cm2, baseline.seu_xsect_cm2);
  EXPECT_EQ(stats.golden_cycles, baseline.golden_cycles);
  EXPECT_EQ(stats.clock_period_ps, baseline.clock_period_ps);
  ASSERT_EQ(stats.clusters.size(), baseline.clusters.size());
  for (std::size_t k = 0; k < stats.clusters.size(); ++k) {
    EXPECT_EQ(stats.clusters[k].samples, baseline.clusters[k].samples);
    EXPECT_EQ(stats.clusters[k].errors, baseline.clusters[k].errors);
    EXPECT_EQ(stats.clusters[k].propagation_ratio,
              baseline.clusters[k].propagation_ratio);
    EXPECT_EQ(stats.clusters[k].xsect_cm2, baseline.clusters[k].xsect_cm2);
    EXPECT_EQ(stats.clusters[k].ser_percent, baseline.clusters[k].ser_percent);
  }
  for (std::size_t c = 0; c < netlist::kModuleClassCount; ++c) {
    EXPECT_EQ(stats.per_class[c].samples, baseline.per_class[c].samples);
    EXPECT_EQ(stats.per_class[c].errors, baseline.per_class[c].errors);
  }

  // The sensitivity CSV — the artifact CI byte-diffs — must be identical
  // whether written from the CampaignResult or the streamed CampaignStats.
  const std::string csv_vector = scratch_file("sens_vector.csv");
  const std::string csv_stream = scratch_file("sens_stream.csv");
  fi::write_sensitivity_csv(csv_vector, baseline);
  fi::write_sensitivity_csv(csv_stream, stats);
  EXPECT_EQ(read_file(csv_vector), read_file(csv_stream));
  fs::remove(csv_vector);
  fs::remove(csv_stream);
}

TEST(RecordStore, SourceBasedDatasetMatchesLegacyBuildDataset) {
  const soc::SocModel model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignConfig config = small_campaign();
  const fi::CampaignResult campaign = fi::run_campaign(model, config, db);

  const ml::Dataset legacy = core::build_dataset(model, campaign);
  fi::VectorSource source(campaign.records, /*batch_rows=*/16);
  const ml::Dataset streamed =
      core::build_dataset(model, source, campaign.clusters);

  ASSERT_EQ(streamed.size(), legacy.size());
  ASSERT_EQ(streamed.num_features(), legacy.num_features());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed.label(i), legacy.label(i)) << "row " << i;
    const auto a = streamed.row(i);
    const auto b = legacy.row(i);
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j], b[j]) << "row " << i << " feature " << j;
    }
  }
}

TEST(RecordStore, RecordsCsvFromSourceMatchesVectorWriter) {
  const soc::SocModel model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignConfig config = small_campaign();
  const fi::CampaignResult campaign = fi::run_campaign(model, config, db);

  const std::string csv_vector = scratch_file("records_vector.csv");
  const std::string csv_source = scratch_file("records_source.csv");
  fi::write_records_csv(csv_vector, campaign.records);

  std::vector<fi::ShardRecord> tagged;
  for (std::size_t i = 0; i < campaign.records.size(); ++i) {
    tagged.push_back({i, campaign.records[i]});
  }
  const std::string store = scratch_file("records_csv.ssfs");
  fi::ShardFileMeta meta;
  meta.seed = config.seed;
  meta.total_injections = campaign.records.size();
  meta.config_digest = fi::campaign_config_digest(model, config);
  meta.num_records = campaign.records.size();
  fi::write_columnar_file(store, meta, tagged, /*chunk_rows=*/11);
  const auto source = fi::open_record_source(store);
  fi::write_records_csv(csv_source, *source);

  EXPECT_EQ(read_file(csv_vector), read_file(csv_source));
  fs::remove(csv_vector);
  fs::remove(csv_source);
  fs::remove(store);
}

TEST(RecordStore, ScaleSmokeBoundsPeakMemoryByChunkSize) {
  // The acceptance criterion of the streaming redesign: pushing a campaign
  // two orders of magnitude past the unit-test sizes (>= 100k records, here
  // 1M) through writer + reader must not grow resident memory anywhere
  // near the ~50 MiB a resident vector<InjectionRecord> of that plan would
  // cost — the writer buffers one chunk, the reader decodes one chunk.
  constexpr std::uint64_t kRows = 1'000'000;
  constexpr std::size_t kChunkRows = 4096;
  constexpr std::uint64_t kBatchRows = 1000;

  const std::string path = scratch_file("scale.ssfs");
  const long rss_before_kb = vm_rss_kb();

  fi::ColumnarFileWriter writer(path, synthetic_meta(kRows), kChunkRows);
  fi::RecordBatch batch;
  for (std::uint64_t first = 0; first < kRows; first += kBatchRows) {
    batch.clear();
    for (std::uint64_t i = first; i < first + kBatchRows; ++i) {
      batch.push_back(make_record(i));
    }
    writer.append(batch);
  }
  writer.flush();
  EXPECT_EQ(writer.records_written(), kRows);
  // The writer's own buffering never exceeds one chunk.
  EXPECT_LE(writer.peak_buffered_rows(), kChunkRows);

  fi::ColumnarFileSource source(path);
  std::uint64_t rows = 0;
  std::uint64_t next_index = 0;
  fi::RecordBatch in;
  while (source.next_batch(in)) {
    EXPECT_LE(in.row_count(), kChunkRows);
    EXPECT_EQ(in.index.front(), next_index);
    rows += in.row_count();
    next_index = in.index.back() + 1;
  }
  EXPECT_EQ(rows, kRows);

  const long rss_after_kb = vm_rss_kb();
  if (rss_before_kb < 0 || rss_after_kb < 0) {
    GTEST_SKIP() << "/proc/self/status unavailable";
  }
  // Generous allowance for allocator slack — but far below the resident
  // record vector the v1 flow would have required for this plan.
  EXPECT_LT(rss_after_kb - rss_before_kb, 24 * 1024)
      << "streaming path grew RSS by " << (rss_after_kb - rss_before_kb)
      << " KiB";
  fs::remove(path);
}

}  // namespace
}  // namespace ssresf
