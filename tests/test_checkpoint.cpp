// Engine snapshot/restore semantics and the campaign execution model built
// on them: a restored checkpoint must continue bit-identically to an
// uninterrupted run (even after an injected fault perturbed the engine in
// between), and campaign results must not depend on thread count,
// checkpointing, or early exit.
#include <gtest/gtest.h>

#include "fi/campaign.h"
#include "netlist/builder.h"
#include "sim/event_sim.h"
#include "sim/levelized_sim.h"
#include "sim/testbench.h"
#include "soc/programs.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace ssresf {
namespace {

using netlist::NetlistBuilder;
using sim::Engine;
using sim::EventSimulator;
using sim::LevelizedSimulator;
using sim::Logic;
using sim::NetId;
using sim::OutputTrace;
using sim::Testbench;
using sim::TestbenchConfig;

// A self-stimulating sequential design (twisted-ring counter with some
// combinational logic): needs only clk/rstn, so a testbench can run it from
// any checkpoint without replaying input stimulus.
struct RingDesign {
  netlist::Netlist netlist;
  NetId clk, rstn;
  std::vector<NetId> monitored;
  netlist::CellId ff0;
  NetId stage0;
};

RingDesign make_ring() {
  NetlistBuilder b("ring");
  RingDesign d;
  d.clk = b.input("clk");
  d.rstn = b.input("rstn");
  // 5-stage Johnson counter: the head recaptures the inverted tail, so the
  // state pattern oscillates forever (period 10) after reset.
  const NetId feedback = b.wire("fb");
  std::vector<NetId> qs(5);
  NetId prev = feedback;
  for (int i = 0; i < 5; ++i) {
    const auto ff = b.dffr(prev, d.clk, d.rstn, "s" + std::to_string(i));
    if (i == 0) {
      d.ff0 = ff.cell;
      d.stage0 = ff.q;
    }
    qs[static_cast<std::size_t>(i)] = ff.q;
    prev = ff.q;
  }
  b.drive(feedback, b.inv(qs[4]));
  // Combinational observers over the state: exercise AND/XOR/MUX cones.
  const NetId parity = b.xor2(b.xor2(qs[0], qs[2]), qs[4]);
  const NetId gated = b.and2(qs[1], b.inv(qs[3]));
  const NetId mux = b.mux2(qs[0], qs[4], parity);
  b.output(qs[4], "tail");
  b.output(parity, "parity");
  b.output(gated, "gated");
  b.output(mux, "mux");
  d.netlist = b.finish();
  for (const auto& [net, name] : d.netlist.primary_outputs()) {
    d.monitored.push_back(net);
  }
  return d;
}

TestbenchConfig ring_tb_config(const RingDesign& d) {
  TestbenchConfig cfg;
  cfg.clk = d.clk;
  cfg.rstn = d.rstn;
  cfg.monitored = d.monitored;
  cfg.clock_period_ps = 1000;
  return cfg;
}

// snapshot -> inject faults -> restore -> re-run golden must equal a fresh
// uninterrupted golden run, on either engine.
template <typename Sim>
void check_snapshot_inject_restore() {
  const RingDesign d = make_ring();
  const TestbenchConfig cfg = ring_tb_config(d);
  constexpr int kWarm = 10;
  constexpr int kTail = 30;

  // Uninterrupted golden run.
  Sim fresh(d.netlist);
  Testbench fresh_tb(fresh, cfg);
  fresh_tb.reset();
  fresh_tb.run_cycles(kWarm - cfg.reset_cycles + kTail);
  const OutputTrace& golden = fresh_tb.trace();

  // Warm up a second engine to the checkpoint.
  Sim sim(d.netlist);
  Testbench warm_tb(sim, cfg);
  warm_tb.reset();
  warm_tb.run_cycles(kWarm - cfg.reset_cycles);
  const auto snapshot = sim.save_state();
  const OutputTrace prefix = warm_tb.trace();
  ASSERT_EQ(prefix.num_cycles(), static_cast<std::size_t>(kWarm));

  // Perturb the engine thoroughly: SET force, SEU deposit, extra cycles.
  {
    Testbench faulty_tb(sim, cfg);
    faulty_tb.resume_at(kWarm, prefix);
    faulty_tb.at(kWarm * 1000 + 100, [&](Engine& e) {
      e.force_net(d.stage0, Logic::L1);
      e.deposit_ff(d.ff0, Logic::X);
    });
    faulty_tb.run_cycles(7);
  }

  // Restore and re-run the tail cleanly: must match the fresh golden run.
  sim.restore_state(*snapshot);
  Testbench resumed_tb(sim, cfg);
  resumed_tb.resume_at(kWarm, prefix);
  resumed_tb.run_cycles(kTail);
  EXPECT_EQ(OutputTrace::first_mismatch(golden, resumed_tb.trace()),
            std::nullopt);
  EXPECT_EQ(resumed_tb.trace().num_cycles(), golden.num_cycles());
}

TEST(Checkpoint, EventEngineRestoreReproducesGolden) {
  check_snapshot_inject_restore<EventSimulator>();
}

TEST(Checkpoint, LevelizedEngineRestoreReproducesGolden) {
  check_snapshot_inject_restore<LevelizedSimulator>();
}

TEST(Checkpoint, SnapshotRestoresAcrossEngineInstances) {
  // A snapshot from one engine instance seeds a different instance over the
  // same netlist (how campaign workers consume the shared checkpoint).
  const RingDesign d = make_ring();
  const TestbenchConfig cfg = ring_tb_config(d);

  EventSimulator a(d.netlist);
  Testbench tb_a(a, cfg);
  tb_a.reset();
  tb_a.run_cycles(6);
  const auto snapshot = a.save_state();

  EventSimulator b(d.netlist);
  b.restore_state(*snapshot);
  Testbench tb_b(b, cfg);
  tb_b.resume_at(tb_a.cycles_run(), tb_a.trace());

  tb_a.run_cycles(20);
  tb_b.run_cycles(20);
  EXPECT_EQ(OutputTrace::first_mismatch(tb_a.trace(), tb_b.trace()),
            std::nullopt);
}

TEST(Checkpoint, RestoreRejectsForeignState) {
  const RingDesign d = make_ring();
  EventSimulator event_sim(d.netlist);
  LevelizedSimulator level_sim(d.netlist);
  const auto event_state = event_sim.save_state();
  const auto level_state = level_sim.save_state();
  EXPECT_THROW(event_sim.restore_state(*level_state), InvalidArgument);
  EXPECT_THROW(level_sim.restore_state(*event_state), InvalidArgument);
}

TEST(Testbench, EarlyExitStopsAfterConfirmationWindow) {
  const RingDesign d = make_ring();
  const TestbenchConfig cfg = ring_tb_config(d);

  EventSimulator golden_sim(d.netlist);
  Testbench golden_tb(golden_sim, cfg);
  golden_tb.reset();
  golden_tb.run_cycles(40);

  EventSimulator faulty_sim(d.netlist);
  Testbench faulty_tb(faulty_sim, cfg);
  faulty_tb.compare_against(&golden_tb.trace(), /*confirm_cycles=*/3);
  // A stuck-at on the first stage diverges the ring permanently.
  faulty_tb.at(12'000, [&](Engine& e) { e.force_net(d.stage0, Logic::L1); });
  faulty_tb.reset();
  faulty_tb.run_cycles(40);

  ASSERT_TRUE(faulty_tb.first_divergence().has_value());
  EXPECT_TRUE(faulty_tb.stopped_early());
  const std::size_t diverged = *faulty_tb.first_divergence();
  EXPECT_EQ(faulty_tb.trace().num_cycles(), diverged + 1 + 3);
  // The reported divergence matches a full-trace comparison.
  EXPECT_EQ(OutputTrace::first_mismatch(golden_tb.trace(), faulty_tb.trace()),
            diverged);
}

// --- campaign determinism ----------------------------------------------------

soc::SocModel small_soc() {
  soc::SocConfig cfg;
  cfg.mem_bytes = 16 * 1024;
  cfg.cpu_isa = "RV32I";
  cfg.bus = soc::BusProtocol::kAhb;
  cfg.bus_width_bits = 64;
  const soc::Workload w = soc::checksum_workload(8);
  const soc::Program programs[] = {soc::assemble(w.source)};
  return soc::build_soc(cfg, programs);
}

fi::CampaignConfig small_campaign(std::uint64_t seed = 17) {
  fi::CampaignConfig cfg;
  cfg.clustering.num_clusters = 5;
  cfg.sampling.fraction = 0.01;
  cfg.sampling.min_per_cluster = 4;
  cfg.sampling.max_per_cluster = 10;
  cfg.sampling.memory_macro_draws = 8;
  cfg.seed = seed;
  return cfg;
}

void expect_identical(const fi::CampaignResult& a, const fi::CampaignResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    EXPECT_EQ(ra.event.target.cell, rb.event.target.cell);
    EXPECT_EQ(ra.event.target.kind, rb.event.target.kind);
    EXPECT_EQ(ra.event.target.word, rb.event.target.word);
    EXPECT_EQ(ra.event.target.bit, rb.event.target.bit);
    EXPECT_EQ(ra.event.time_ps, rb.event.time_ps);
    EXPECT_EQ(ra.event.set_width_ps, rb.event.set_width_ps);
    EXPECT_EQ(ra.cluster, rb.cluster);
    EXPECT_EQ(ra.module_class, rb.module_class);
    EXPECT_EQ(ra.soft_error, rb.soft_error);
    EXPECT_EQ(ra.first_mismatch_cycle, rb.first_mismatch_cycle);
  }
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t k = 0; k < a.clusters.size(); ++k) {
    EXPECT_EQ(a.clusters[k].samples, b.clusters[k].samples);
    EXPECT_EQ(a.clusters[k].errors, b.clusters[k].errors);
    EXPECT_DOUBLE_EQ(a.clusters[k].ser_percent, b.clusters[k].ser_percent);
  }
  for (std::size_t c = 0; c < a.per_class.size(); ++c) {
    EXPECT_EQ(a.per_class[c].samples, b.per_class[c].samples);
    EXPECT_EQ(a.per_class[c].errors, b.per_class[c].errors);
    EXPECT_DOUBLE_EQ(a.per_class[c].ser_percent, b.per_class[c].ser_percent);
  }
  EXPECT_DOUBLE_EQ(a.chip_ser_percent, b.chip_ser_percent);
}

TEST(CampaignDeterminism, OneVsFourThreads) {
  const auto model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  auto cfg1 = small_campaign();
  cfg1.threads = 1;
  auto cfg4 = small_campaign();
  cfg4.threads = 4;
  expect_identical(fi::run_campaign(model, cfg1, db),
                   fi::run_campaign(model, cfg4, db));
}

TEST(CampaignDeterminism, CheckpointOnVsOff) {
  const auto model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  auto on = small_campaign(23);
  on.use_checkpoint = true;
  auto off = small_campaign(23);
  off.use_checkpoint = false;
  expect_identical(fi::run_campaign(model, on, db),
                   fi::run_campaign(model, off, db));
}

TEST(CampaignDeterminism, EarlyExitOnVsOff) {
  const auto model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  auto on = small_campaign(29);
  on.early_exit = true;
  auto off = small_campaign(29);
  off.early_exit = false;
  expect_identical(fi::run_campaign(model, on, db),
                   fi::run_campaign(model, off, db));
}

TEST(CampaignDeterminism, MaskedExitOnVsOff) {
  // Reconvergence detection must be a pure optimisation: stopping a run once
  // its state equals the golden checkpoint cannot change any record.
  const auto model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  auto on = small_campaign(37);
  on.masked_exit = true;
  auto off = small_campaign(37);
  off.masked_exit = false;
  expect_identical(fi::run_campaign(model, on, db),
                   fi::run_campaign(model, off, db));
}

TEST(CampaignDeterminism, FullFastPathVsFullSlowPath) {
  // Every optimisation on (threads, checkpoint, early exit, masked exit)
  // against the serial seed execution model.
  const auto model = small_soc();
  const auto db = radiation::SoftErrorDatabase::default_database();
  auto fast = small_campaign(43);
  fast.threads = 4;
  auto slow = small_campaign(43);
  slow.threads = 1;
  slow.use_checkpoint = false;
  slow.early_exit = false;
  slow.masked_exit = false;
  expect_identical(fi::run_campaign(model, fast, db),
                   fi::run_campaign(model, slow, db));
}

TEST(ThreadPool, RunsJobsAndPropagatesExceptions) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 64 * 63 / 2);

  auto failing = pool.submit([] { throw ssresf::Error("boom"); });
  EXPECT_THROW(failing.get(), ssresf::Error);
}

TEST(Rng, StreamDerivationIsOrderIndependent) {
  const auto a = util::Rng::from_stream(42, 7).next();
  util::Rng scratch(9001);
  scratch.next();
  const auto b = util::Rng::from_stream(42, 7).next();
  EXPECT_EQ(a, b);
  // Neighbouring streams decorrelate.
  EXPECT_NE(util::Rng::from_stream(42, 7).next(),
            util::Rng::from_stream(42, 8).next());
  EXPECT_NE(util::Rng::from_stream(42, 7).next(),
            util::Rng::from_stream(43, 7).next());
}

}  // namespace
}  // namespace ssresf
