// Unit tests for the netlist data model, builder, cell library, stats, and
// the structural Verilog writer/parser round trip.
#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "netlist/stats.h"
#include "netlist/verilog.h"
#include "util/error.h"

namespace ssresf::netlist {
namespace {

TEST(Logic, TruthTables) {
  EXPECT_EQ(logic_and(Logic::L0, Logic::X), Logic::L0);
  EXPECT_EQ(logic_and(Logic::L1, Logic::X), Logic::X);
  EXPECT_EQ(logic_and(Logic::L1, Logic::L1), Logic::L1);
  EXPECT_EQ(logic_or(Logic::L1, Logic::X), Logic::L1);
  EXPECT_EQ(logic_or(Logic::L0, Logic::X), Logic::X);
  EXPECT_EQ(logic_xor(Logic::L1, Logic::L0), Logic::L1);
  EXPECT_EQ(logic_xor(Logic::L1, Logic::X), Logic::X);
  EXPECT_EQ(logic_not(Logic::Z), Logic::X);
  EXPECT_EQ(logic_mux(Logic::X, Logic::L1, Logic::L1), Logic::L1);
  EXPECT_EQ(logic_mux(Logic::X, Logic::L0, Logic::L1), Logic::X);
  EXPECT_EQ(logic_mux(Logic::L0, Logic::L1, Logic::L0), Logic::L1);
  EXPECT_EQ(logic_mux(Logic::L1, Logic::L1, Logic::L0), Logic::L0);
}

TEST(CellLibrary, SpecsAndNames) {
  EXPECT_EQ(spec(CellKind::kNand2).num_inputs, 2);
  EXPECT_EQ(spec(CellKind::kDffR).num_inputs, 3);
  EXPECT_EQ(spec(CellKind::kDffR).num_outputs, 2);
  EXPECT_TRUE(spec(CellKind::kDff).sequential);
  EXPECT_FALSE(spec(CellKind::kXor2).sequential);
  EXPECT_EQ(kind_from_name("NAND2X1"), CellKind::kNand2);
  EXPECT_EQ(kind_from_name("SSRESF_MEM"), CellKind::kMemory);
  EXPECT_EQ(kind_from_name("BOGUS"), std::nullopt);
  EXPECT_EQ(input_port_name(CellKind::kDff, 1), "CK");
  EXPECT_EQ(output_port_name(CellKind::kDff, 1), "QN");
  EXPECT_EQ(input_port_name(CellKind::kMux2, 0), "S");
}

TEST(CellLibrary, EvalAllCombKinds) {
  const Logic l0 = Logic::L0;
  const Logic l1 = Logic::L1;
  const Logic in2[] = {l1, l0};
  EXPECT_EQ(eval_cell(CellKind::kAnd2, in2), l0);
  EXPECT_EQ(eval_cell(CellKind::kNand2, in2), l1);
  EXPECT_EQ(eval_cell(CellKind::kOr2, in2), l1);
  EXPECT_EQ(eval_cell(CellKind::kNor2, in2), l0);
  EXPECT_EQ(eval_cell(CellKind::kXor2, in2), l1);
  EXPECT_EQ(eval_cell(CellKind::kXnor2, in2), l0);
  const Logic in3[] = {l1, l1, l0};
  EXPECT_EQ(eval_cell(CellKind::kAnd3, in3), l0);
  EXPECT_EQ(eval_cell(CellKind::kAoi21, in3), l0);   // !((1&1)|0) = 0
  EXPECT_EQ(eval_cell(CellKind::kOai21, in3), l1);   // !((1|1)&0) = 1
  const Logic mux_in[] = {l0, l1, l0};               // S=0 -> A
  EXPECT_EQ(eval_cell(CellKind::kMux2, mux_in), l1);
  EXPECT_THROW((void)eval_cell(CellKind::kDff, in2), InvalidArgument);
}

TEST(Netlist, BuilderProducesValidDesign) {
  NetlistBuilder b("t");
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  const NetId clk = b.input("clk");
  const NetId rstn = b.input("rstn");
  NetId q;
  {
    const auto scope = b.scope("sub", ModuleClass::kCpu);
    const NetId x = b.xor2(a, c);
    q = b.dffr(x, clk, rstn, "ff").q;
  }
  b.output(q, "q");
  const Netlist nl = b.finish();
  EXPECT_TRUE(nl.finalized());
  EXPECT_EQ(nl.primary_inputs().size(), 4u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.num_sequential_cells(), 1u);
  const CellId ff = nl.find_cell("t/sub/ff");
  ASSERT_TRUE(ff.valid());
  EXPECT_EQ(nl.cell_class(ff), ModuleClass::kCpu);
  EXPECT_EQ(nl.cell_path(ff), "t/sub/ff");
}

TEST(Netlist, UndrivenNetRejected) {
  NetlistBuilder b("t");
  const NetId w = b.wire("floating");
  b.output(w, "out");
  EXPECT_THROW(b.finish(), Error);
}

TEST(Netlist, DoubleDriverRejected) {
  NetlistBuilder b("t");
  const NetId a = b.input("a");
  const NetId y = b.inv(a);
  EXPECT_THROW(b.drive(y, a), InvalidArgument);
}

TEST(Netlist, FanoutIndex) {
  NetlistBuilder b("t");
  const NetId a = b.input("a");
  const NetId x = b.inv(a);
  const NetId y = b.and2(a, x);
  b.output(y, "y");
  const Netlist nl = b.finish();
  // 'a' feeds the inverter and the AND gate.
  EXPECT_EQ(nl.fanout(a).size(), 2u);
  EXPECT_EQ(nl.fanout(x).size(), 1u);
}

TEST(Netlist, EffectiveClassInherits) {
  NetlistBuilder b("t");
  const NetId a = b.input("a");
  NetId out;
  {
    const auto outer = b.scope("mem_block", ModuleClass::kMemory);
    const auto inner = b.scope("decoder");  // inherits kMemory
    out = b.inv(a);
  }
  b.output(out, "y");
  const Netlist nl = b.finish();
  const CellId inv_cell = nl.net(out).driver;
  EXPECT_EQ(nl.cell_class(inv_cell), ModuleClass::kMemory);
}

TEST(Netlist, AncestorAtDepth) {
  NetlistBuilder b("t");
  const NetId a = b.input("a");
  ScopeId leaf;
  {
    const auto s1 = b.scope("l1");
    const auto s2 = b.scope("l2");
    const auto s3 = b.scope("l3");
    leaf = b.current_scope();
    b.output(b.inv(a), "y");
  }
  const Netlist nl = b.finish();
  EXPECT_EQ(nl.scope(leaf).depth, 3);
  EXPECT_EQ(nl.scope_path(nl.ancestor_at_depth(leaf, 1)), "t/l1");
  EXPECT_EQ(nl.scope_path(nl.ancestor_at_depth(leaf, 3)), "t/l1/l2/l3");
  EXPECT_THROW((void)nl.ancestor_at_depth(leaf, 9), InvalidArgument);
}

TEST(Stats, CountsAndDepth) {
  NetlistBuilder b("t");
  const NetId a = b.input("a");
  const NetId c = b.input("b");
  const NetId clk = b.input("clk");
  const NetId x = b.and2(a, c);      // depth 1
  const NetId y = b.xor2(x, a);      // depth 2
  const NetId q = b.dff(y, clk).q;
  const NetId z = b.inv(q);          // depth 1 (starts from FF output)
  b.output(z, "z");
  const Netlist nl = b.finish();
  const NetlistStats stats = compute_stats(nl);
  EXPECT_EQ(stats.num_sequential, 1u);
  EXPECT_EQ(stats.num_combinational, 3u);
  EXPECT_EQ(stats.max_logic_depth, 2);
  const auto depths = compute_logic_depths(nl);
  EXPECT_EQ(depths[nl.net(z).driver.index()], 1);
  EXPECT_EQ(depths[nl.net(y).driver.index()], 2);
}

TEST(Stats, CombinationalCycleDetected) {
  // Hand-build a loop: two inverters feeding each other.
  Netlist nl;
  const NetId n1 = nl.add_net("n1");
  const NetId n2 = nl.add_net("n2");
  nl.add_cell(CellKind::kInv, nl.root_scope(), "i1", {n1}, {n2});
  nl.add_cell(CellKind::kInv, nl.root_scope(), "i2", {n2}, {n1});
  nl.finalize();
  EXPECT_THROW(compute_logic_depths(nl), Error);
}

Netlist example_design() {
  NetlistBuilder b("chip");
  const NetId a = b.input("a");
  const NetId c = b.input("b_in");
  const NetId clk = b.input("clk");
  const NetId rstn = b.input("rstn");
  NetId q;
  {
    const auto cpu = b.scope("cpu0", ModuleClass::kCpu);
    const NetId x = b.nand2(a, c);
    const NetId y = b.mux2(a, x, c);
    q = b.dffr(y, clk, rstn, "state").q;
  }
  {
    const auto mem = b.scope("ram", ModuleClass::kMemory);
    MemoryInfo info;
    info.words = 16;
    info.width = 4;
    info.tech = MemTech::kDram;
    std::vector<NetId> addr = {a, c, q, a};
    std::vector<NetId> wdata = {c, q, a, c};
    const auto m = b.memory(std::move(info), clk, b.one(), a, addr, addr,
                            wdata, "u_ram");
    b.output(m.rdata[0], "r0");
  }
  b.output(q, "q");
  return b.finish();
}

TEST(Verilog, WriteParseRoundTrip) {
  const Netlist original = example_design();
  const std::string text = write_verilog(original);
  const Netlist parsed = parse_verilog(text);

  EXPECT_EQ(parsed.name(), original.name());
  EXPECT_EQ(parsed.num_cells(), original.num_cells());
  EXPECT_EQ(parsed.primary_inputs().size(), original.primary_inputs().size());
  EXPECT_EQ(parsed.primary_outputs().size(),
            original.primary_outputs().size());
  EXPECT_EQ(parsed.num_sequential_cells(), original.num_sequential_cells());

  // Scope classes survive the round trip via annotations.
  const CellId ff = parsed.find_cell("chip/cpu0/state");
  ASSERT_TRUE(ff.valid());
  EXPECT_EQ(parsed.cell_class(ff), ModuleClass::kCpu);
  const CellId ram = parsed.find_cell("chip/ram/u_ram");
  ASSERT_TRUE(ram.valid());
  EXPECT_EQ(parsed.cell_class(ram), ModuleClass::kMemory);
  EXPECT_EQ(parsed.memory(parsed.cell(ram).memory_index).tech, MemTech::kDram);
  EXPECT_EQ(parsed.memory(parsed.cell(ram).memory_index).words, 16u);
}

TEST(Verilog, MemInitSurvivesRoundTrip) {
  NetlistBuilder b("t");
  const NetId clk = b.input("clk");
  const NetId a0 = b.input("a0");
  MemoryInfo info;
  info.words = 8;
  info.width = 16;
  info.init = {0, 0xBEEF, 0, 0, 0x1234, 0, 0, 0xFFFF};
  std::vector<NetId> addr = {a0, a0, a0};
  std::vector<NetId> wdata(16, a0);
  const auto m =
      b.memory(std::move(info), clk, b.one(), b.zero(), addr, addr, wdata, "rom");
  b.output(m.rdata[0], "r0");
  const Netlist nl = b.finish();
  const Netlist parsed = parse_verilog(write_verilog(nl));
  const CellId mem = parsed.find_cell("t/rom");
  ASSERT_TRUE(mem.valid());
  const MemoryInfo& mi = parsed.memory(parsed.cell(mem).memory_index);
  ASSERT_EQ(mi.init.size(), 8u);
  EXPECT_EQ(mi.init[1], 0xBEEFu);
  EXPECT_EQ(mi.init[4], 0x1234u);
  EXPECT_EQ(mi.init[7], 0xFFFFu);
  EXPECT_EQ(mi.init[0], 0u);
}

TEST(Verilog, ParserRejectsMalformed) {
  EXPECT_THROW(parse_verilog("module m (a; endmodule"), ParseError);
  EXPECT_THROW(parse_verilog("module m (); BOGUS g (.A(x)); endmodule"),
               ParseError);
  EXPECT_THROW(
      parse_verilog("module m (); INVX1 g (.A(x)); endmodule"),
      Error);  // y missing -> undriven/undeclared somewhere
  EXPECT_THROW(parse_verilog("module m ()"), ParseError);
  // Duplicate port connection.
  EXPECT_THROW(
      parse_verilog("module m (a, y); input a; output y;\n"
                    "INVX1 g (.A(a), .A(a), .Y(y)); endmodule"),
      ParseError);
}

TEST(Verilog, EscapedIdentifiers) {
  NetlistBuilder b("top");
  const NetId a = b.input("data[0]");  // needs escaping
  NetId y;
  {
    const auto s = b.scope("u0");
    y = b.inv(a);
  }
  b.output(y, "out[0]");
  const Netlist nl = b.finish();
  const std::string text = write_verilog(nl);
  EXPECT_NE(text.find("\\data[0] "), std::string::npos);
  const Netlist parsed = parse_verilog(text);
  EXPECT_TRUE(parsed.find_cell("top/u0/INVX1_0").valid());
}

TEST(Netlist, MemoryValidation) {
  Netlist nl;
  MemoryInfo bad_width;
  bad_width.words = 8;
  bad_width.width = 65;
  EXPECT_THROW(nl.add_memory(std::move(bad_width)), InvalidArgument);
  MemoryInfo bad_words;
  bad_words.words = 7;  // not a power of two
  bad_words.width = 8;
  EXPECT_THROW(nl.add_memory(std::move(bad_words)), InvalidArgument);
}

}  // namespace
}  // namespace ssresf::netlist
