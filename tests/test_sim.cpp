// Simulator semantics tests: event scheduling, inertial filtering, DFF and
// reset behaviour, X propagation, forcing (SET), deposits (SEU), memory
// macros, testbench sampling, engine equivalence, and the VCD writer.
#include <gtest/gtest.h>

#include <sstream>

#include "netlist/builder.h"
#include "sim/event_sim.h"
#include "sim/levelized_sim.h"
#include "sim/injection.h"
#include "sim/testbench.h"
#include "sim/vcd.h"
#include "util/error.h"
#include "util/rng.h"

namespace ssresf::sim {
namespace {

using netlist::CellKind;
using netlist::MemoryInfo;
using netlist::NetlistBuilder;

struct InvChain {
  Netlist netlist;
  NetId in;
  NetId out;
};

InvChain make_inv_chain(int n) {
  NetlistBuilder b("chain");
  const NetId in = b.input("in");
  NetId x = in;
  for (int i = 0; i < n; ++i) x = b.inv(x);
  b.output(x, "out");
  return {b.finish(), in, x};
}

TEST(EventSim, PropagatesThroughInverterChain) {
  auto c = make_inv_chain(4);
  EventSimulator sim(c.netlist);
  sim.set_input(c.in, Logic::L0);
  sim.advance_to(1000);
  EXPECT_EQ(sim.value(c.out), Logic::L0);
  sim.set_input(c.in, Logic::L1);
  // Before the propagation delay has elapsed the output still holds.
  sim.advance_to(sim.now() + 1);
  EXPECT_EQ(sim.value(c.out), Logic::L0);
  sim.advance_to(sim.now() + 1000);
  EXPECT_EQ(sim.value(c.out), Logic::L1);
}

TEST(EventSim, InertialFilteringMasksNarrowPulse) {
  // A pulse narrower than the gate delay is swallowed by the first gate.
  auto c = make_inv_chain(2);
  EventSimulator sim(c.netlist);
  sim.set_input(c.in, Logic::L0);
  sim.advance_to(1000);
  const Logic settled = sim.value(c.out);
  std::uint64_t changes = 0;
  sim.set_observer([&](NetId net, std::uint64_t, Logic) {
    if (net == c.out) ++changes;
  });
  sim.set_input(c.in, Logic::L1);
  sim.advance_to(1002);  // 2 ps — narrower than the 8 ps inverter delay
  sim.set_input(c.in, Logic::L0);
  sim.advance_to(2000);
  EXPECT_EQ(sim.value(c.out), settled);
  EXPECT_EQ(changes, 0u) << "narrow glitch leaked through";
}

TEST(EventSim, WidePulsePropagates) {
  auto c = make_inv_chain(2);
  EventSimulator sim(c.netlist);
  sim.set_input(c.in, Logic::L0);
  sim.advance_to(1000);
  std::uint64_t changes = 0;
  sim.set_observer([&](NetId net, std::uint64_t, Logic) {
    if (net == c.out) ++changes;
  });
  sim.set_input(c.in, Logic::L1);
  sim.advance_to(1100);
  sim.set_input(c.in, Logic::L0);
  sim.advance_to(2000);
  EXPECT_EQ(changes, 2u);  // rise and fall both arrive
}

struct DffDesign {
  Netlist netlist;
  NetId d, clk, rstn, q, qn;
  netlist::CellId ff;
};

DffDesign make_dff() {
  NetlistBuilder b("ff");
  const NetId d = b.input("d");
  const NetId clk = b.input("clk");
  const NetId rstn = b.input("rstn");
  auto ff = b.dffr(d, clk, rstn, "u_ff");
  b.output(ff.q, "q");
  b.output(ff.qn, "qn");
  DffDesign out{b.finish(), d, clk, rstn, ff.q, ff.qn, ff.cell};
  return out;
}

TEST(EventSim, DffCapturesOnRisingEdgeOnly) {
  auto d = make_dff();
  EventSimulator sim(d.netlist);
  sim.set_input(d.rstn, Logic::L1);
  sim.set_input(d.clk, Logic::L0);
  sim.set_input(d.d, Logic::L1);
  sim.advance_to(100);
  EXPECT_EQ(sim.value(d.q), Logic::X);  // never clocked, no reset applied
  sim.set_input(d.clk, Logic::L1);      // rising edge
  sim.advance_to(200);
  EXPECT_EQ(sim.value(d.q), Logic::L1);
  EXPECT_EQ(sim.value(d.qn), Logic::L0);
  sim.set_input(d.d, Logic::L0);
  sim.advance_to(300);
  EXPECT_EQ(sim.value(d.q), Logic::L1);  // D change alone does nothing
  sim.set_input(d.clk, Logic::L0);       // falling edge: no capture
  sim.advance_to(400);
  EXPECT_EQ(sim.value(d.q), Logic::L1);
}

TEST(EventSim, AsyncResetClearsAndDominates) {
  auto d = make_dff();
  EventSimulator sim(d.netlist);
  sim.set_input(d.clk, Logic::L0);
  sim.set_input(d.d, Logic::L1);
  sim.set_input(d.rstn, Logic::L0);  // async clear, no clock needed
  sim.advance_to(100);
  EXPECT_EQ(sim.value(d.q), Logic::L0);
  sim.set_input(d.clk, Logic::L1);  // edge during reset: stays 0
  sim.advance_to(200);
  EXPECT_EQ(sim.value(d.q), Logic::L0);
  sim.set_input(d.clk, Logic::L0);
  sim.set_input(d.rstn, Logic::L1);
  sim.advance_to(300);
  sim.set_input(d.clk, Logic::L1);  // now captures
  sim.advance_to(400);
  EXPECT_EQ(sim.value(d.q), Logic::L1);
}

TEST(EventSim, DepositFlipsStateUntilNextCapture) {
  auto d = make_dff();
  EventSimulator sim(d.netlist);
  sim.set_input(d.clk, Logic::L0);
  sim.set_input(d.rstn, Logic::L1);
  sim.set_input(d.d, Logic::L0);
  sim.set_input(d.clk, Logic::L1);
  sim.advance_to(100);
  EXPECT_EQ(sim.value(d.q), Logic::L0);

  // SEU: flip the stored bit.
  InjectionPort port(sim);
  port.deposit(d.ff, Logic::L1);
  sim.advance_to(150);
  EXPECT_EQ(sim.value(d.q), Logic::L1);
  EXPECT_EQ(sim.value(d.qn), Logic::L0);
  EXPECT_EQ(sim.ff_state(d.ff), Logic::L1);

  // Next rising edge recaptures D and heals the upset.
  sim.set_input(d.clk, Logic::L0);
  sim.advance_to(200);
  sim.set_input(d.clk, Logic::L1);
  sim.advance_to(300);
  EXPECT_EQ(sim.value(d.q), Logic::L0);
}

TEST(EventSim, ForceAndReleaseModelSet) {
  auto c = make_inv_chain(3);
  EventSimulator sim(c.netlist);
  sim.set_input(c.in, Logic::L0);
  sim.advance_to(1000);
  EXPECT_EQ(sim.value(c.out), Logic::L1);
  // Force an internal net: the first inverter's output.
  const NetId mid = c.netlist.cell(netlist::CellId{0}).outputs[0];
  sim.force_net(mid, Logic::L0);
  sim.advance_to(2000);
  EXPECT_EQ(sim.value(c.out), Logic::L0);
  // While forced, driver changes are hidden.
  sim.set_input(c.in, Logic::L1);
  sim.advance_to(3000);
  EXPECT_EQ(sim.value(c.out), Logic::L0);
  // Release: the driven value (inv of 1 = 0) reappears -> out = 1... wait,
  // the forced value already equals the driven value now, so no change.
  sim.release_net(mid);
  sim.advance_to(4000);
  EXPECT_EQ(sim.value(c.out), Logic::L0);
  sim.set_input(c.in, Logic::L0);
  sim.advance_to(5000);
  EXPECT_EQ(sim.value(c.out), Logic::L1);
}

TEST(EventSim, XPropagatesAndResolves) {
  NetlistBuilder b("x");
  const NetId a = b.input("a");
  const NetId c = b.input("c");
  const NetId y = b.and2(a, c);
  const NetId z = b.or2(a, c);
  b.output(y, "y");
  b.output(z, "z");
  const Netlist nl = b.finish();
  EventSimulator sim(nl);
  sim.set_input(a, Logic::L0);
  sim.advance_to(100);
  EXPECT_EQ(sim.value(y), Logic::L0);  // 0 & X = 0
  EXPECT_EQ(sim.value(z), Logic::X);   // 0 | X = X
  sim.set_input(c, Logic::L1);
  sim.advance_to(200);
  EXPECT_EQ(sim.value(y), Logic::L0);
  EXPECT_EQ(sim.value(z), Logic::L1);
}

struct MemDesign {
  Netlist netlist;
  NetId clk, we;
  std::vector<NetId> raddr, waddr, wdata, rdata;
  netlist::CellId mem;
};

MemDesign make_mem() {
  NetlistBuilder b("m");
  MemDesign d;
  d.clk = b.input("clk");
  d.we = b.input("we");
  d.raddr = b.input_bus("raddr", 3);
  d.waddr = b.input_bus("waddr", 3);
  d.wdata = b.input_bus("wdata", 8);
  MemoryInfo info;
  info.words = 8;
  info.width = 8;
  info.init = {10, 20, 30, 40, 50, 60, 70, 80};
  auto m = b.memory(std::move(info), d.clk, b.one(), d.we, d.raddr, d.waddr,
                    d.wdata, "u_mem");
  d.rdata = m.rdata;
  d.mem = m.cell;
  b.output_bus(d.rdata, "rdata");
  d.netlist = b.finish();
  return d;
}

void set_bus(Engine& sim, const std::vector<NetId>& bus, std::uint64_t value) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    sim.set_input(bus[i], netlist::from_bool((value >> i) & 1));
  }
}

std::uint64_t get_bus(const Engine& sim, const std::vector<NetId>& bus) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    EXPECT_TRUE(netlist::is_known(sim.value(bus[i])));
    if (sim.value(bus[i]) == Logic::L1) v |= std::uint64_t{1} << i;
  }
  return v;
}

TEST(EventSim, MemoryAsyncReadSyncWrite) {
  auto d = make_mem();
  EventSimulator sim(d.netlist);
  sim.set_input(d.clk, Logic::L0);
  sim.set_input(d.we, Logic::L0);
  set_bus(sim, d.raddr, 2);
  set_bus(sim, d.waddr, 2);
  set_bus(sim, d.wdata, 99);
  sim.advance_to(1000);
  EXPECT_EQ(get_bus(sim, d.rdata), 30u);  // init contents
  // WE low: clock edge does not write.
  sim.set_input(d.clk, Logic::L1);
  sim.advance_to(2000);
  EXPECT_EQ(get_bus(sim, d.rdata), 30u);
  // Write 99 at address 2.
  sim.set_input(d.clk, Logic::L0);
  sim.set_input(d.we, Logic::L1);
  sim.advance_to(3000);
  sim.set_input(d.clk, Logic::L1);
  sim.advance_to(4000);
  EXPECT_EQ(get_bus(sim, d.rdata), 99u);
  EXPECT_EQ(sim.read_mem_word(d.mem, 2), 99u);
  // Async read: address change re-reads without a clock.
  sim.set_input(d.clk, Logic::L0);
  sim.set_input(d.we, Logic::L0);
  set_bus(sim, d.raddr, 7);
  sim.advance_to(5000);
  EXPECT_EQ(get_bus(sim, d.rdata), 80u);
  // Direct bit flip through the injection port (memory SEU).
  InjectionPort port(sim);
  port.flip_mem_bit(d.mem, 7, 4);  // 80 ^ 16 = 64
  sim.advance_to(6000);
  EXPECT_EQ(get_bus(sim, d.rdata), 64u);
}

TEST(LevelizedSim, MatchesMemorySemantics) {
  auto d = make_mem();
  LevelizedSimulator sim(d.netlist);
  sim.set_input(d.clk, Logic::L0);
  sim.set_input(d.we, Logic::L1);
  set_bus(sim, d.raddr, 5);
  set_bus(sim, d.waddr, 5);
  set_bus(sim, d.wdata, 123);
  EXPECT_EQ(get_bus(sim, d.rdata), 60u);
  sim.set_input(d.clk, Logic::L1);
  EXPECT_EQ(get_bus(sim, d.rdata), 123u);
}

TEST(Engines, RandomSequentialEquivalence) {
  // A small random sequential design driven identically on both engines must
  // produce identical sampled traces.
  NetlistBuilder b("rand");
  util::Rng rng(2024);
  const NetId clk = b.input("clk");
  const NetId rstn = b.input("rstn");
  std::vector<NetId> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(b.input("i" + std::to_string(i)));
  std::vector<NetId> pool = ins;
  std::vector<NetId> ffq;
  for (int g = 0; g < 60; ++g) {
    const auto pick = [&] {
      return pool[static_cast<std::size_t>(rng.below(pool.size()))];
    };
    const int kind = static_cast<int>(rng.below(6));
    NetId out;
    switch (kind) {
      case 0:
        out = b.and2(pick(), pick());
        break;
      case 1:
        out = b.or2(pick(), pick());
        break;
      case 2:
        out = b.xor2(pick(), pick());
        break;
      case 3:
        out = b.inv(pick());
        break;
      case 4:
        out = b.mux2(pick(), pick(), pick());
        break;
      default: {
        auto ff = b.dffr(pick(), clk, rstn);
        out = ff.q;
        ffq.push_back(ff.q);
        break;
      }
    }
    pool.push_back(out);
  }
  for (int i = 0; i < 8; ++i) {
    b.output(pool[pool.size() - 1 - static_cast<std::size_t>(i)],
             "o" + std::to_string(i));
  }
  const Netlist nl = b.finish();

  std::vector<NetId> monitored;
  for (const auto& [net, name] : nl.primary_outputs()) monitored.push_back(net);

  EventSimulator event_sim(nl);
  LevelizedSimulator level_sim(nl);
  TestbenchConfig cfg;
  cfg.clk = clk;
  cfg.rstn = rstn;
  cfg.monitored = monitored;
  Testbench tb_event(event_sim, cfg);
  Testbench tb_level(level_sim, cfg);

  // Drive the same random input stimulus on both.
  util::Rng stim(7);
  for (int cyc = 0; cyc < 50; ++cyc) {
    for (const NetId in : ins) {
      const Logic v = netlist::from_bool(stim.chance(0.5));
      tb_event.at(tb_event.sample_time(static_cast<std::uint64_t>(cyc)) - 400,
                  [in, v](Engine& e) { e.set_input(in, v); });
      tb_level.at(tb_level.sample_time(static_cast<std::uint64_t>(cyc)) - 400,
                  [in, v](Engine& e) { e.set_input(in, v); });
    }
  }
  tb_event.reset();
  tb_level.reset();
  tb_event.run_cycles(44);
  tb_level.run_cycles(44);
  EXPECT_EQ(OutputTrace::first_mismatch(tb_event.trace(), tb_level.trace()),
            std::nullopt);
}

TEST(Testbench, SamplesOncePerCycleAndTracksCycles) {
  auto d = make_dff();
  EventSimulator sim(d.netlist);
  TestbenchConfig cfg;
  cfg.clk = d.clk;
  cfg.rstn = d.rstn;
  cfg.monitored = {d.q};
  Testbench tb(sim, cfg);
  tb.reset();
  tb.run_cycles(10);
  EXPECT_EQ(tb.trace().num_cycles(), 14u);  // 4 reset + 10
  EXPECT_EQ(tb.cycles_run(), 14u);
}

TEST(Trace, MismatchDetection) {
  OutputTrace a({NetId{0}});
  OutputTrace b({NetId{0}});
  a.append_cycle({Logic::L0});
  b.append_cycle({Logic::L0});
  EXPECT_EQ(OutputTrace::first_mismatch(a, b), std::nullopt);
  a.append_cycle({Logic::L1});
  b.append_cycle({Logic::L0});
  EXPECT_EQ(OutputTrace::first_mismatch(a, b), 1u);
  EXPECT_EQ(OutputTrace::mismatch_count(a, b), 1u);
  // Length mismatch counts as divergence at the common length.
  b.append_cycle({Logic::L0});
  EXPECT_EQ(OutputTrace::mismatch_count(a, b), 2u);
}

TEST(Vcd, EmitsHeaderAndChanges) {
  auto c = make_inv_chain(1);
  EventSimulator sim(c.netlist);
  std::ostringstream out;
  VcdWriter vcd(out, c.netlist, {c.in, c.out});
  vcd.attach(sim);
  sim.set_input(c.in, Logic::L0);
  sim.advance_to(100);
  sim.set_input(c.in, Logic::L1);
  sim.advance_to(200);
  vcd.finish();
  const std::string text = out.str();
  EXPECT_NE(text.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! in $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(text.find("#0"), std::string::npos);
  EXPECT_NE(text.find("1!"), std::string::npos);  // rising change on 'in'
}

TEST(Engines, InjectionApisValidateTargets) {
  auto c = make_inv_chain(1);
  EventSimulator sim(c.netlist);
  EXPECT_THROW(sim.deposit_ff(netlist::CellId{0}, Logic::L1), InvalidArgument);
  EXPECT_THROW((void)sim.read_mem_word(netlist::CellId{0}, 0), InvalidArgument);
  auto d = make_mem();
  EventSimulator msim(d.netlist);
  EXPECT_THROW((void)msim.read_mem_word(d.mem, 100), InvalidArgument);
}

}  // namespace
}  // namespace ssresf::sim
