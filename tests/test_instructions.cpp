// Per-instruction correctness sweeps: each RISC-V instruction class is
// exercised through assembled snippets on the gate-level core, and the
// emitted result is checked against semantics computed in C++.
#include <gtest/gtest.h>

#include "soc/assembler.h"
#include "soc/run.h"
#include "soc/soc.h"
#include "util/strings.h"

namespace ssresf::soc {
namespace {

/// Runs a snippet that leaves its result in t2 and emits it; returns the
/// emitted word.
std::uint32_t run_snippet(const std::string& body, const std::string& isa,
                          int xlen_hint = 32) {
  SocConfig cfg;
  cfg.mem_bytes = 16 * 1024;
  cfg.cpu_isa = isa;
  cfg.bus_width_bits = xlen_hint;
  const Program programs[] = {assemble("  li a0, 0x40000000\n" + body +
                                       "  sw t2, 0(a0)\n  ecall\n")};
  const SocModel model = build_soc(cfg, programs);
  SocRunner runner(model, sim::EngineKind::kEvent);
  runner.reset();
  runner.run_until_halt(600);
  EXPECT_TRUE(runner.halted());
  const auto words = runner.emitted_words();
  EXPECT_EQ(words.size(), 1u);
  return words.empty() ? 0xDEADBEEF : words[0];
}

struct RTypeCase {
  const char* mnemonic;
  std::int32_t a;
  std::int32_t b;
  std::uint32_t expected;
};

class RType : public ::testing::TestWithParam<RTypeCase> {};

TEST_P(RType, ComputesExpected) {
  const RTypeCase c = GetParam();
  const std::string body = util::format(
      "  li t0, %d\n  li t1, %d\n  %s t2, t0, t1\n", c.a, c.b, c.mnemonic);
  const bool needs_m = std::string(c.mnemonic).front() == 'm' ||
                       std::string(c.mnemonic).front() == 'd' ||
                       std::string(c.mnemonic).front() == 'r';
  EXPECT_EQ(run_snippet(body, needs_m ? "RV32IM" : "RV32I"), c.expected)
      << c.mnemonic << " " << c.a << ", " << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, RType,
    ::testing::Values(
        RTypeCase{"add", 41, 1, 42}, RTypeCase{"add", -5, 3, 0xFFFFFFFE},
        RTypeCase{"add", 0x7FFFFFFF, 1, 0x80000000},
        RTypeCase{"sub", 10, 3, 7}, RTypeCase{"sub", 3, 10, 0xFFFFFFF9},
        RTypeCase{"and", 0x0FF0, 0x00FF, 0x00F0},
        RTypeCase{"or", 0x0F00, 0x00F0, 0x0FF0},
        RTypeCase{"xor", 0x0FF0, 0x00FF, 0x0F0F},
        RTypeCase{"slt", -1, 1, 1}, RTypeCase{"slt", 1, -1, 0},
        RTypeCase{"slt", 5, 5, 0},
        RTypeCase{"sltu", -1, 1, 0},  // 0xFFFFFFFF > 1 unsigned
        RTypeCase{"sltu", 1, -1, 1},
        RTypeCase{"sll", 1, 31, 0x80000000},
        RTypeCase{"sll", 3, 33, 6},   // shift amount masked to 5 bits
        RTypeCase{"srl", -1, 28, 0xF},
        RTypeCase{"sra", -16, 2, 0xFFFFFFFC},
        RTypeCase{"sra", 16, 2, 4}));

INSTANTIATE_TEST_SUITE_P(
    MulDiv, RType,
    ::testing::Values(
        RTypeCase{"mul", 7, 6, 42},
        RTypeCase{"mul", -7, 6, static_cast<std::uint32_t>(-42)},
        RTypeCase{"mul", 0x10000, 0x10000, 0},  // low 32 bits only
        RTypeCase{"mulh", -1, -1, 0},           // (-1*-1) >> 32 = 0
        RTypeCase{"mulh", 0x40000000, 4, 1},
        RTypeCase{"mulhu", static_cast<std::int32_t>(0x80000000), 2, 1},
        RTypeCase{"mulhsu", -1, 2, 0xFFFFFFFF},  // -2 >> 32
        RTypeCase{"div", 42, 6, 7},
        RTypeCase{"div", -42, 6, static_cast<std::uint32_t>(-7)},
        RTypeCase{"div", 42, 0, 0xFFFFFFFF},     // div by zero
        RTypeCase{"div", static_cast<std::int32_t>(0x80000000), -1,
                  0x80000000},                   // overflow case
        RTypeCase{"divu", 42, 5, 8},
        RTypeCase{"rem", 43, 6, 1},
        RTypeCase{"rem", -43, 6, static_cast<std::uint32_t>(-1)},
        RTypeCase{"rem", 43, 0, 43},
        RTypeCase{"remu", 43, 6, 1}));

struct ITypeCase {
  const char* mnemonic;
  std::int32_t a;
  std::int32_t imm;
  std::uint32_t expected;
};

class IType : public ::testing::TestWithParam<ITypeCase> {};

TEST_P(IType, ComputesExpected) {
  const ITypeCase c = GetParam();
  const std::string body = util::format("  li t0, %d\n  %s t2, t0, %d\n", c.a,
                                        c.mnemonic, c.imm);
  EXPECT_EQ(run_snippet(body, "RV32I"), c.expected)
      << c.mnemonic << " " << c.a << ", " << c.imm;
}

INSTANTIATE_TEST_SUITE_P(
    Immediates, IType,
    ::testing::Values(
        ITypeCase{"addi", 40, 2, 42}, ITypeCase{"addi", 0, -1, 0xFFFFFFFF},
        ITypeCase{"slti", -5, -4, 1}, ITypeCase{"slti", -4, -5, 0},
        ITypeCase{"sltiu", 1, -1, 1},  // imm sign-extends then unsigned
        ITypeCase{"xori", 0xFF, 0x0F, 0xF0},
        ITypeCase{"ori", 0xF0, 0x0F, 0xFF},
        ITypeCase{"andi", 0xFF, 0x0F, 0x0F},
        ITypeCase{"slli", 1, 12, 0x1000},
        ITypeCase{"srli", -1, 20, 0xFFF},
        ITypeCase{"srai", -256, 4, 0xFFFFFFF0}));

struct BranchCase {
  const char* mnemonic;
  std::int32_t a;
  std::int32_t b;
  bool taken;
};

class Branches : public ::testing::TestWithParam<BranchCase> {};

TEST_P(Branches, TakenOrNot) {
  const BranchCase c = GetParam();
  // t2 = 1 if the branch was taken, 2 otherwise.
  const std::string body = util::format(
      "  li t0, %d\n  li t1, %d\n  %s t0, t1, yes\n  li t2, 2\n  j done\n"
      "yes:\n  li t2, 1\ndone:\n",
      c.a, c.b, c.mnemonic);
  EXPECT_EQ(run_snippet(body, "RV32I"), c.taken ? 1u : 2u)
      << c.mnemonic << " " << c.a << ", " << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    AllConditions, Branches,
    ::testing::Values(
        BranchCase{"beq", 5, 5, true}, BranchCase{"beq", 5, 6, false},
        BranchCase{"bne", 5, 6, true}, BranchCase{"bne", 5, 5, false},
        BranchCase{"blt", -1, 1, true}, BranchCase{"blt", 1, -1, false},
        BranchCase{"blt", 3, 3, false},
        BranchCase{"bge", 1, -1, true}, BranchCase{"bge", 3, 3, true},
        BranchCase{"bge", -1, 1, false},
        BranchCase{"bltu", 1, -1, true},   // -1 is UINT_MAX
        BranchCase{"bltu", -1, 1, false},
        BranchCase{"bgeu", -1, 1, true},
        BranchCase{"bgeu", 1, -1, false}));

struct W64Case {
  const char* body;
  std::uint32_t expected;
};

class Rv64WOps : public ::testing::TestWithParam<W64Case> {};

TEST_P(Rv64WOps, ComputesExpected) {
  const W64Case c = GetParam();
  EXPECT_EQ(run_snippet(c.body, "RV64I", 64), c.expected) << c.body;
}

INSTANTIATE_TEST_SUITE_P(
    WordOps, Rv64WOps,
    ::testing::Values(
        // addiw truncates to 32 bits then sign-extends.
        W64Case{"  li t0, 0x7FFFFFFF\n  addiw t2, t0, 1\n", 0x80000000},
        W64Case{"  li t0, 100\n  addiw t2, t0, -1\n", 99},
        W64Case{"  li t0, 5\n  li t1, 7\n  addw t2, t0, t1\n", 12},
        W64Case{"  li t0, 3\n  li t1, 10\n  subw t2, t0, t1\n", 0xFFFFFFF9},
        W64Case{"  li t0, 1\n  li t1, 31\n  sllw t2, t0, t1\n", 0x80000000},
        W64Case{"  li t0, -1\n  li t1, 4\n  srlw t2, t0, t1\n", 0x0FFFFFFF},
        W64Case{"  li t0, -64\n  li t1, 3\n  sraw t2, t0, t1\n", 0xFFFFFFF8},
        W64Case{"  li t0, 12\n  slliw t2, t0, 2\n", 48},
        W64Case{"  li t0, -1\n  srliw t2, t0, 28\n", 0xF},
        W64Case{"  li t0, -256\n  sraiw t2, t0, 4\n", 0xFFFFFFF0}));

TEST(Rv64Memory, LoadStoreDoubleword) {
  // sd/ld round-trip a 64-bit pattern built from two 32-bit halves; lwu
  // loads the low half zero-extended.
  const std::string body =
      "  li t0, 0x12345678\n"
      "  li t1, 32\n"
      "  sll t3, t0, t1\n"        // t3 = 0x12345678_00000000
      "  li t4, 0x0ABCDEF0\n"
      "  or t3, t3, t4\n"         // t3 = 0x12345678_0ABCDEF0
      "  li t5, 0x200\n"
      "  sd t3, 0(t5)\n"
      "  ld t6, 0(t5)\n"
      "  lwu t2, 4(t5)\n";        // upper word, zero-extended
  EXPECT_EQ(run_snippet(body, "RV64I", 64), 0x12345678u);
}

TEST(UpperImmediates, LuiAuipc) {
  EXPECT_EQ(run_snippet("  lui t2, 0xABCDE\n", "RV32I"), 0xABCDE000u);
  // auipc at a known PC: li (2 words) puts auipc at byte 8.
  EXPECT_EQ(run_snippet("  auipc t2, 1\n", "RV32I"), 0x1000u + 8u);
}

TEST(Atomics, RemainingAmoOps) {
  const std::string body =
      "  li t3, 0x280\n"
      "  li t0, 0xF0F0\n"
      "  sw t0, 0(t3)\n"
      "  li t1, 0x0FF0\n"
      "  amoxor.w t4, t1, (t3)\n"  // mem = 0xFF00
      "  li t5, 0x00FF\n"
      "  amoor.w t6, t5, (t3)\n"   // mem = 0xFFFF
      "  lw t2, 0(t3)\n";
  EXPECT_EQ(run_snippet(body, "RV32IMAFD"), 0xFFFFu);
}

TEST(Atomics, LrScSequence) {
  const std::string body =
      "  li t3, 0x280\n"
      "  li t0, 77\n"
      "  sw t0, 0(t3)\n"
      "  lr.w t4, x0, (t3)\n"      // t4 = 77
      "  addi t4, t4, 1\n"
      "  sc.w t5, t4, (t3)\n"      // always succeeds: t5 = 0
      "  lw t6, 0(t3)\n"           // 78
      "  add t2, t6, t5\n";
  EXPECT_EQ(run_snippet(body, "RV32IMAFD"), 78u);
}

TEST(FloatMoves, RoundTripBits) {
  const std::string body =
      "  li t0, 0x40490FDB\n"      // pi as float bits
      "  fmv.w.x f3, t0\n"
      "  fmv.x.w t2, f3\n";
  EXPECT_EQ(run_snippet(body, "RV32IMAFD"), 0x40490FDBu);
}

TEST(JalrIndirect, ComputedCall) {
  const std::string body =
      "  li t0, 0\n"
      "  la_func:\n"
      "  auipc t1, 0\n"            // t1 = address of la_func
      "  addi t1, t1, 16\n"        // t1 = target (4 instructions ahead)
      "  jalr t3, 0(t1)\n"
      "  li t0, 99\n"              // skipped
      "target:\n"
      "  li t2, 55\n";
  EXPECT_EQ(run_snippet(body, "RV32I"), 55u);
}

}  // namespace
}  // namespace ssresf::soc
