// Clustering tests: Eq. 1 distance properties, Algorithm 1 behaviour, the
// scope-level optimization vs the naive reference, and sampling invariants.
#include <gtest/gtest.h>

#include <set>

#include "cluster/distance.h"
#include "cluster/kcluster.h"
#include "cluster/sampling.h"
#include "netlist/builder.h"
#include "util/error.h"

namespace ssresf::cluster {
namespace {

using netlist::CellId;
using netlist::ModuleClass;
using netlist::Netlist;
using netlist::NetlistBuilder;

/// A three-module design: cpu (2 sub-blocks), mem, bus.
Netlist hierarchical_design(int cells_per_leaf = 4) {
  NetlistBuilder b("chip");
  const auto in = b.input("in");
  auto chain = [&](int n) {
    auto x = in;
    for (int i = 0; i < n; ++i) x = b.inv(x);
    return x;
  };
  std::vector<netlist::NetId> outs;
  {
    const auto cpu = b.scope("cpu", ModuleClass::kCpu);
    {
      const auto alu = b.scope("alu");
      outs.push_back(chain(cells_per_leaf));
    }
    {
      const auto reg = b.scope("regfile");
      outs.push_back(chain(cells_per_leaf));
    }
  }
  {
    const auto mem = b.scope("mem", ModuleClass::kMemory);
    outs.push_back(chain(cells_per_leaf));
  }
  {
    const auto bus = b.scope("bus", ModuleClass::kBus);
    outs.push_back(chain(cells_per_leaf));
  }
  for (std::size_t i = 0; i < outs.size(); ++i) {
    b.output(outs[i], "o" + std::to_string(i));
  }
  return b.finish();
}

TEST(Distance, SameScopeIsZero) {
  const Netlist nl = hierarchical_design();
  const HierarchyDistance dist(nl);
  const CellId a = nl.find_cell("chip/cpu/alu/INVX1_0");
  const CellId b = nl.find_cell("chip/cpu/alu/INVX1_1");
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(dist.between_cells(a, b), 0u);
  EXPECT_EQ(dist.between_cells(a, a), 0u);
}

TEST(Distance, DeeperDivergenceIsCloser) {
  const Netlist nl = hierarchical_design();
  const HierarchyDistance dist(nl);
  const CellId alu = nl.find_cell("chip/cpu/alu/INVX1_0");
  const CellId reg = nl.find_cell("chip/cpu/regfile/INVX1_4");
  const CellId mem = nl.find_cell("chip/mem/INVX1_8");
  ASSERT_TRUE(alu.valid() && reg.valid() && mem.valid());
  // alu vs regfile diverge at layer 2; alu vs mem diverge at layer 1.
  EXPECT_LT(dist.between_cells(alu, reg), dist.between_cells(alu, mem));
}

TEST(Distance, MatchesEq1Weights) {
  const Netlist nl = hierarchical_design();
  // Max depth is 2 -> LN = 2; weights are 2^(2-1)=2 at layer 1, 2^0=1 at
  // layer 2.
  const HierarchyDistance dist(nl, 2);
  const CellId alu = nl.find_cell("chip/cpu/alu/INVX1_0");
  const CellId reg = nl.find_cell("chip/cpu/regfile/INVX1_4");
  const CellId mem = nl.find_cell("chip/mem/INVX1_8");
  EXPECT_EQ(dist.between_cells(alu, reg), 1u);   // differ at layer 2 only
  EXPECT_EQ(dist.between_cells(alu, mem), 3u);   // differ at layers 1 and 2
}

TEST(Distance, SymmetryAndTriangle) {
  const Netlist nl = hierarchical_design();
  const HierarchyDistance dist(nl);
  const auto cells = nl.all_cells();
  for (std::size_t i = 0; i < cells.size(); i += 3) {
    for (std::size_t j = 0; j < cells.size(); j += 3) {
      EXPECT_EQ(dist.between_cells(cells[i], cells[j]),
                dist.between_cells(cells[j], cells[i]));
      for (std::size_t k = 0; k < cells.size(); k += 5) {
        EXPECT_LE(dist.between_cells(cells[i], cells[j]),
                  dist.between_cells(cells[i], cells[k]) +
                      dist.between_cells(cells[k], cells[j]));
      }
    }
  }
}

TEST(Distance, RejectsHugeLayerDepth) {
  const Netlist nl = hierarchical_design();
  EXPECT_THROW(HierarchyDistance(nl, 70), InvalidArgument);
}

TEST(Clustering, PartitionsAllCells) {
  const Netlist nl = hierarchical_design(6);
  ClusteringConfig cfg;
  cfg.num_clusters = 3;
  util::Rng rng(5);
  const ClusteringResult result = cluster_cells(nl, cfg, rng);
  EXPECT_EQ(result.clusters.size(), 3u);
  std::size_t total = 0;
  for (const auto& c : result.clusters) total += c.size();
  EXPECT_EQ(total, nl.num_cells());
  for (std::uint32_t ci = 0; ci < nl.num_cells(); ++ci) {
    const int k = result.cluster_of[ci];
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 3);
    const auto& members = result.clusters[static_cast<std::size_t>(k)];
    EXPECT_NE(std::find(members.begin(), members.end(), CellId{ci}),
              members.end());
  }
}

TEST(Clustering, SameScopeCellsStayTogether) {
  const Netlist nl = hierarchical_design(8);
  ClusteringConfig cfg;
  cfg.num_clusters = 4;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    const ClusteringResult result = cluster_cells(nl, cfg, rng);
    for (std::uint32_t ci = 1; ci < nl.num_cells(); ++ci) {
      for (std::uint32_t cj = 0; cj < ci; ++cj) {
        if (nl.cell(CellId{ci}).scope == nl.cell(CellId{cj}).scope) {
          EXPECT_EQ(result.cluster_of[ci], result.cluster_of[cj])
              << "seed " << seed;
        }
      }
    }
  }
}

TEST(Clustering, OptimizedMatchesNaive) {
  const Netlist nl = hierarchical_design(5);
  ClusteringConfig cfg;
  cfg.num_clusters = 3;
  cfg.expand_memory_weight = false;  // naive has no memory expansion
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng_a(seed);
    util::Rng rng_b(seed);
    const ClusteringResult fast = cluster_cells(nl, cfg, rng_a);
    const ClusteringResult slow = naive_cluster_cells(nl, cfg, rng_b);
    EXPECT_EQ(fast.cluster_of, slow.cluster_of) << "seed " << seed;
  }
}

TEST(Clustering, DeterministicForSeed) {
  const Netlist nl = hierarchical_design(7);
  ClusteringConfig cfg;
  cfg.num_clusters = 4;
  util::Rng rng_a(99);
  util::Rng rng_b(99);
  EXPECT_EQ(cluster_cells(nl, cfg, rng_a).cluster_of,
            cluster_cells(nl, cfg, rng_b).cluster_of);
}

TEST(Clustering, ConvergesWithinIterationBudget) {
  const Netlist nl = hierarchical_design(9);
  ClusteringConfig cfg;
  cfg.num_clusters = 4;
  util::Rng rng(3);
  const ClusteringResult result = cluster_cells(nl, cfg, rng);
  EXPECT_LE(result.iterations, cfg.max_iterations);
  EXPECT_GT(result.iterations, 0);
}

TEST(Clustering, MemoryWeightExpansion) {
  // A design with a memory macro: with expansion, the macro's words make
  // its cluster weight dominate.
  NetlistBuilder b("m");
  const auto clk = b.input("clk");
  const auto a = b.input("a");
  {
    const auto cpu = b.scope("cpu", ModuleClass::kCpu);
    auto x = a;
    for (int i = 0; i < 10; ++i) x = b.inv(x);
    b.output(x, "y");
  }
  {
    const auto mem = b.scope("mem", ModuleClass::kMemory);
    netlist::MemoryInfo info;
    info.words = 1024;
    info.width = 8;
    std::vector<netlist::NetId> addr(10, a);
    std::vector<netlist::NetId> wdata(8, a);
    const auto m = b.memory(std::move(info), clk, b.one(), b.zero(), addr,
                            addr, wdata, "u_mem");
    b.output(m.rdata[0], "r");
  }
  const Netlist nl = b.finish();
  ClusteringConfig cfg;
  cfg.num_clusters = 2;
  util::Rng rng(1);
  const ClusteringResult result = cluster_cells(nl, cfg, rng);
  std::uint64_t max_weight = 0;
  for (const auto w : result.cluster_weight) max_weight = std::max(max_weight, w);
  EXPECT_GE(max_weight, 1024u);
}

TEST(Sampling, EqualProportionBounds) {
  const Netlist nl = hierarchical_design(16);
  ClusteringConfig ccfg;
  ccfg.num_clusters = 4;
  util::Rng rng(2);
  const ClusteringResult clustering = cluster_cells(nl, ccfg, rng);
  SamplingConfig scfg;
  scfg.fraction = 0.25;
  scfg.min_per_cluster = 2;
  scfg.max_per_cluster = 6;
  const auto samples = sample_clusters(nl, clustering, scfg, rng);
  for (const ClusterSample& cs : samples) {
    const auto cluster_size =
        clustering.clusters[static_cast<std::size_t>(cs.cluster)].size();
    EXPECT_GE(cs.cells.size(), std::min<std::size_t>(2, cluster_size));
    EXPECT_LE(cs.cells.size(), 6u);
    // No duplicates (no memory macros in this design).
    std::set<std::uint32_t> unique;
    for (const CellId id : cs.cells) unique.insert(id.index());
    EXPECT_EQ(unique.size(), cs.cells.size());
    // All members belong to the right cluster.
    for (const CellId id : cs.cells) {
      EXPECT_EQ(clustering.cluster_of[id.index()], cs.cluster);
    }
  }
}

TEST(Sampling, RejectsBadFraction) {
  const Netlist nl = hierarchical_design();
  ClusteringConfig ccfg;
  util::Rng rng(1);
  const ClusteringResult clustering = cluster_cells(nl, ccfg, rng);
  SamplingConfig scfg;
  scfg.fraction = 0.0;
  EXPECT_THROW(sample_clusters(nl, clustering, scfg, rng), InvalidArgument);
  scfg.fraction = 0.5;
  scfg.weighting = SampleWeighting::kXsectWeighted;
  EXPECT_THROW(sample_clusters(nl, clustering, scfg, rng), InvalidArgument);
}

TEST(Sampling, WeightedModePrefersHeavyCells) {
  const Netlist nl = hierarchical_design(12);
  ClusteringConfig ccfg;
  ccfg.num_clusters = 1;
  util::Rng rng(7);
  const ClusteringResult clustering = cluster_cells(nl, ccfg, rng);
  // Give one specific cell an overwhelming weight.
  std::vector<double> weights(nl.num_cells(), 1e-12);
  weights[5] = 1.0;
  SamplingConfig scfg;
  scfg.fraction = 0.02;
  scfg.min_per_cluster = 1;
  scfg.max_per_cluster = 1;
  scfg.weighting = SampleWeighting::kXsectWeighted;
  int hits = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng r(seed);
    const auto samples = sample_clusters(nl, clustering, scfg, r, weights);
    ASSERT_EQ(samples.size(), 1u);
    ASSERT_EQ(samples[0].cells.size(), 1u);
    hits += samples[0].cells[0].index() == 5;
  }
  EXPECT_GE(hits, 19);  // ~always the heavy cell
}

}  // namespace
}  // namespace ssresf::cluster
