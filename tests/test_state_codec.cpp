// The portable checkpoint format: Engine::serialize_state /
// deserialize_state and the framed, optionally RLE-compressed container in
// sim/state_codec.h. The contract under test is round-trip fidelity — for
// every engine kind and both codecs, a decoded snapshot satisfies
// state_matches against the original, restores into a fresh engine, and
// that engine's future is bit-identical to the donor's.
#include <gtest/gtest.h>

#include "sim/bit_parallel_sim.h"
#include "sim/event_sim.h"
#include "sim/levelized_sim.h"
#include "sim/state_codec.h"
#include "sim/testbench.h"
#include "soc/programs.h"
#include "soc/run.h"
#include "util/bytes.h"
#include "util/error.h"
#include "util/rng.h"

namespace ssresf {
namespace {

using netlist::Logic;
using sim::Engine;
using sim::EngineKind;
using sim::StateCodec;

// --- byte-stream primitives --------------------------------------------------

TEST(Bytes, VarintRoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,    1,    127,        128,
                                  300,  16383, 16384,     (1ull << 32) - 1,
                                  1ull << 32, ~std::uint64_t{0}};
  util::ByteWriter w;
  for (const std::uint64_t v : values) w.varint(v);
  util::ByteReader r(w.data());
  for (const std::uint64_t v : values) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, Fixed64AndVectorsRoundTrip) {
  util::ByteWriter w;
  w.fixed64(0x0123456789abcdefull);
  w.u64_vec({0, ~std::uint64_t{0}, 42});
  w.byte_vec(std::vector<std::uint8_t>{1, 2, 3});
  util::ByteReader r(w.data());
  EXPECT_EQ(r.fixed64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.u64_vec(), (std::vector<std::uint64_t>{0, ~std::uint64_t{0}, 42}));
  EXPECT_EQ(r.byte_vec<std::uint8_t>(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, ReaderThrowsOnTruncation) {
  util::ByteWriter w;
  w.varint(1000);
  std::vector<std::uint8_t> data = w.take();
  data.pop_back();
  util::ByteReader r(data);
  EXPECT_THROW((void)r.varint(), Error);
  util::ByteReader r2(data);
  EXPECT_THROW((void)r2.fixed64(), Error);
}

// --- RLE ---------------------------------------------------------------------

TEST(Rle, RoundTripsRandomBuffers) {
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> data(rng.below(2000));
    for (auto& b : data) {
      // Mix long runs with noise: both RLE paths get exercised.
      b = rng.chance(0.7) ? 0 : static_cast<std::uint8_t>(rng.below(256));
    }
    const auto compressed = sim::rle_compress(data);
    EXPECT_EQ(sim::rle_decompress(compressed, data.size()), data);
  }
}

TEST(Rle, CompressesRuns) {
  const std::vector<std::uint8_t> zeros(10000, 0);
  const auto compressed = sim::rle_compress(zeros);
  EXPECT_LT(compressed.size(), zeros.size() / 50);
  EXPECT_EQ(sim::rle_decompress(compressed, zeros.size()), zeros);
}

TEST(Rle, HandlesEmptyAndIncompressible) {
  EXPECT_TRUE(sim::rle_compress({}).empty());
  EXPECT_TRUE(sim::rle_decompress({}, 0).empty());
  std::vector<std::uint8_t> ramp(300);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<std::uint8_t>(i);
  }
  const auto compressed = sim::rle_compress(ramp);
  EXPECT_EQ(sim::rle_decompress(compressed, ramp.size()), ramp);
}

TEST(Rle, DecompressValidatesDeclaredSize) {
  const std::vector<std::uint8_t> data(100, 7);
  const auto compressed = sim::rle_compress(data);
  EXPECT_THROW((void)sim::rle_decompress(compressed, 99), InvalidArgument);
  EXPECT_THROW((void)sim::rle_decompress(compressed, 101), InvalidArgument);
  // Truncated stream.
  auto cut = compressed;
  cut.pop_back();
  EXPECT_THROW((void)sim::rle_decompress(cut, 100), InvalidArgument);
}

// --- engine snapshot round trips --------------------------------------------

soc::SocModel codec_soc() {
  soc::SocConfig cfg;
  cfg.name = "codec-soc";
  cfg.mem_bytes = 4 * 1024;
  cfg.cpu_isa = "RV32I";
  const soc::Workload w = soc::checksum_workload(6);
  const soc::Program programs[] = {soc::assemble(w.source)};
  return soc::build_soc(cfg, programs);
}

/// Round-trips `state` through the codec and verifies semantic identity on
/// `engine` (which currently holds exactly that state).
void expect_roundtrip(const Engine& engine, const sim::EngineState& state,
                      StateCodec codec) {
  const std::vector<std::uint8_t> blob = sim::encode_state(engine, state, codec);
  const std::unique_ptr<sim::EngineState> decoded =
      sim::decode_state(engine, blob);
  EXPECT_TRUE(engine.state_matches(*decoded));
}

/// Full distributed-checkpoint scenario for one engine kind: simulate,
/// snapshot at several depths, ship each snapshot through the codec,
/// restore into a *fresh* engine, and require the clone's future to be
/// bit-identical to the donor's.
void roundtrip_and_continue(EngineKind kind, StateCodec codec) {
  const soc::SocModel model = codec_soc();
  const std::uint64_t period = soc::pick_clock_period(model.netlist);

  sim::TestbenchConfig tb_config;
  tb_config.clk = model.clk;
  tb_config.rstn = model.rstn;
  tb_config.monitored = model.monitored;
  tb_config.clock_period_ps = period;

  const auto donor = sim::make_engine(kind, model.netlist);
  sim::Testbench tb(*donor, tb_config);
  tb.reset();

  for (const int cycles : {3, 17, 40}) {
    tb.run_cycles(cycles);
    const auto snapshot = donor->save_state();
    const std::vector<std::uint8_t> blob =
        sim::encode_state(*donor, *snapshot, codec);
    const auto clone = sim::make_engine(kind, model.netlist);
    clone->restore_state(*sim::decode_state(*clone, blob));
    EXPECT_TRUE(clone->state_matches(*snapshot));
    EXPECT_TRUE(donor->state_matches(*snapshot));
    EXPECT_EQ(clone->now(), donor->now());

    // Drive both engines with the identical stimulus and compare sampled
    // outputs: the decoded checkpoint must seed an indistinguishable future.
    for (int c = 0; c < 12; ++c) {
      const std::uint64_t start = donor->now();
      for (Engine* e : {donor.get(), clone.get()}) {
        e->advance_to(start + period / 2);
        e->set_input(model.clk, Logic::L1);
        e->advance_to(start + period);
        e->set_input(model.clk, Logic::L0);
      }
      for (const netlist::NetId net : model.monitored) {
        ASSERT_EQ(donor->value(net), clone->value(net));
      }
    }
    // Re-sync the testbench-side donor to keep using tb for the next depth:
    // the manual clocking above advanced the donor outside the testbench,
    // so fold those cycles back in by restoring the snapshot.
    donor->restore_state(*snapshot);
  }
}

TEST(StateCodec, EventEngineRoundTripsRaw) {
  roundtrip_and_continue(EngineKind::kEvent, StateCodec::kRaw);
}
TEST(StateCodec, EventEngineRoundTripsRle) {
  roundtrip_and_continue(EngineKind::kEvent, StateCodec::kRle);
}
TEST(StateCodec, LevelizedEngineRoundTripsRaw) {
  roundtrip_and_continue(EngineKind::kLevelized, StateCodec::kRaw);
}
TEST(StateCodec, LevelizedEngineRoundTripsRle) {
  roundtrip_and_continue(EngineKind::kLevelized, StateCodec::kRle);
}
TEST(StateCodec, BitParallelEngineRoundTripsRaw) {
  roundtrip_and_continue(EngineKind::kBitParallel, StateCodec::kRaw);
}
TEST(StateCodec, BitParallelEngineRoundTripsRle) {
  roundtrip_and_continue(EngineKind::kBitParallel, StateCodec::kRle);
}

TEST(StateCodec, RandomPerturbedStatesRoundTrip) {
  // Property test: random mid-simulation perturbations (forces, FF deposits,
  // memory writes) — exactly the state shapes a campaign checkpoint can
  // carry — round-trip on every engine and codec.
  const soc::SocModel model = codec_soc();
  const std::uint64_t period = soc::pick_clock_period(model.netlist);
  std::vector<netlist::CellId> ffs;
  std::vector<netlist::CellId> mems;
  std::vector<netlist::NetId> comb_outs;
  for (const netlist::CellId id : model.netlist.all_cells()) {
    const auto& cell = model.netlist.cell(id);
    if (netlist::is_flip_flop(cell.kind)) {
      ffs.push_back(id);
    } else if (cell.kind == netlist::CellKind::kMemory) {
      mems.push_back(id);
    } else if (!cell.outputs.empty() &&
               cell.kind != netlist::CellKind::kConst0 &&
               cell.kind != netlist::CellKind::kConst1) {
      comb_outs.push_back(cell.outputs[0]);
    }
  }
  ASSERT_FALSE(ffs.empty());
  ASSERT_FALSE(mems.empty());

  for (const EngineKind kind :
       {EngineKind::kEvent, EngineKind::kLevelized, EngineKind::kBitParallel}) {
    util::Rng rng(7 + static_cast<std::uint64_t>(kind));
    const auto engine = sim::make_engine(kind, model.netlist);
    sim::TestbenchConfig tb_config;
    tb_config.clk = model.clk;
    tb_config.rstn = model.rstn;
    tb_config.monitored = model.monitored;
    tb_config.clock_period_ps = period;
    sim::Testbench tb(*engine, tb_config);
    tb.reset();

    for (int trial = 0; trial < 8; ++trial) {
      tb.run_cycles(static_cast<int>(rng.below(6)) + 1);
      // Random perturbation (applied mid-cycle, like an injector).
      switch (rng.below(3)) {
        case 0: {
          const auto ff = ffs[rng.below(ffs.size())];
          engine->deposit_ff(ff, netlist::logic_flip(engine->ff_state(ff)));
          break;
        }
        case 1: {
          const auto net = comb_outs[rng.below(comb_outs.size())];
          if (rng.chance(0.5)) {
            engine->force_net(net, netlist::logic_flip(engine->value(net)));
          } else {
            engine->force_net(net, Logic::X);
          }
          break;
        }
        default: {
          const auto mem = mems[rng.below(mems.size())];
          const auto& mi =
              model.netlist.memory(model.netlist.cell(mem).memory_index);
          const std::uint32_t word =
              static_cast<std::uint32_t>(rng.below(mi.words));
          engine->write_mem_word(mem, word,
                                 engine->read_mem_word(mem, word) ^ 0b101);
          break;
        }
      }
      const auto snapshot = engine->save_state();
      expect_roundtrip(*engine, *snapshot, StateCodec::kRaw);
      expect_roundtrip(*engine, *snapshot, StateCodec::kRle);
    }
  }
}

TEST(StateCodec, RleShrinksSocCheckpoints) {
  const soc::SocModel model = codec_soc();
  const auto engine = sim::make_engine(EngineKind::kLevelized, model.netlist);
  sim::TestbenchConfig tb_config;
  tb_config.clk = model.clk;
  tb_config.rstn = model.rstn;
  tb_config.monitored = model.monitored;
  tb_config.clock_period_ps = soc::pick_clock_period(model.netlist);
  sim::Testbench tb(*engine, tb_config);
  tb.reset();
  tb.run_cycles(20);
  const auto snapshot = engine->save_state();
  const auto raw = sim::encode_state(*engine, *snapshot, StateCodec::kRaw);
  const auto rle = sim::encode_state(*engine, *snapshot, StateCodec::kRle);
  // A real SoC state (mostly-zero memories, settled logic) must compress
  // substantially — this is the "memory-heavy SoC" motivation of the codec.
  EXPECT_LT(rle.size(), raw.size() / 4);
}

TEST(StateCodec, RejectsForeignAndMalformedBlobs) {
  const soc::SocModel model = codec_soc();
  const auto event = sim::make_engine(EngineKind::kEvent, model.netlist);
  const auto levelized = sim::make_engine(EngineKind::kLevelized, model.netlist);
  const auto snapshot = event->save_state();
  const auto blob = sim::encode_state(*event, *snapshot, StateCodec::kRle);

  // Wrong engine kind.
  EXPECT_THROW((void)sim::decode_state(*levelized, blob), InvalidArgument);
  // Wrong snapshot type at encode time.
  EXPECT_THROW((void)sim::encode_state(*levelized, *snapshot, StateCodec::kRaw),
               InvalidArgument);
  // Bad magic.
  auto garbled = blob;
  garbled[0] ^= 0xff;
  EXPECT_THROW((void)sim::decode_state(*event, garbled), InvalidArgument);
  // Truncation anywhere in the frame.
  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{8}, blob.size() / 2, blob.size() - 1}) {
    const std::vector<std::uint8_t> cut(blob.begin(),
                                        blob.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)sim::decode_state(*event, cut), InvalidArgument);
  }
  // Unsupported version.
  auto versioned = blob;
  versioned[4] = 99;
  EXPECT_THROW((void)sim::decode_state(*event, versioned), InvalidArgument);
}

}  // namespace
}  // namespace ssresf
