// The fault-tolerant fleet runtime: authenticated handshake (both rejection
// directions, before any campaign data moves), deterministic reconnect
// backoff, the network-chaos harness and its recovery paths, the dispatch
// journal (corruption, torn tails, resume), coordinator failover to a
// standby, and health-based quarantine. Every fault here is injected at a
// deterministic seam (op indices, test hooks, byte surgery on files) — no
// sleeps or retries in any assertion path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <future>
#include <iterator>
#include <memory>
#include <thread>
#include <type_traits>

#include "core/scenario.h"
#include "fi/campaign_exec.h"
#include "fi/golden_bundle.h"
#include "fi/shard.h"
#include "net/auth.h"
#include "net/chaos.h"
#include "net/coordinator.h"
#include "net/election.h"
#include "net/health.h"
#include "net/journal.h"
#include "net/protocol.h"
#include "net/worker.h"
#include "util/atomic_file.h"
#include "util/error.h"
#include "util/socket.h"

namespace ssresf {
namespace {

net::CampaignSpec small_spec(std::uint64_t seed = 17) {
  net::CampaignSpec spec;
  spec.workload = "checksum";
  spec.isa = "RV32I";
  spec.bus = "ahb";
  spec.mem_kb = 8;
  spec.config.engine = sim::EngineKind::kLevelized;
  spec.config.clustering.num_clusters = 5;
  spec.config.sampling.fraction = 0.01;
  spec.config.sampling.min_per_cluster = 4;
  spec.config.sampling.max_per_cluster = 8;
  spec.config.sampling.weighting = cluster::SampleWeighting::kMixed;
  spec.config.sampling.memory_macro_draws = 8;
  spec.config.seed = seed;
  return spec;
}

void expect_same_result(const fi::CampaignResult& got,
                        const fi::CampaignResult& want) {
  ASSERT_EQ(got.records.size(), want.records.size());
  for (std::size_t i = 0; i < got.records.size(); ++i) {
    EXPECT_EQ(got.records[i], want.records[i]) << "record " << i;
  }
  EXPECT_EQ(got.chip_ser_percent, want.chip_ser_percent);
  EXPECT_EQ(got.golden_cycles, want.golden_cycles);
}

std::vector<fi::ShardRecord> some_records(std::uint64_t start,
                                          std::size_t count) {
  std::vector<fi::ShardRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    fi::ShardRecord r;
    r.index = start + i;
    r.record.event.target.kind = radiation::FaultKind::kSeu;
    r.record.event.target.cell = netlist::CellId{static_cast<std::uint32_t>(i)};
    r.record.event.time_ps = 500 * (start + i);
    r.record.cluster = static_cast<int>(i % 3);
    r.record.module_class = netlist::ModuleClass::kCpu;
    r.record.soft_error = (start + i) % 2 == 0;
    r.record.first_mismatch_cycle = static_cast<int>(i);
    records.push_back(r);
  }
  return records;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(file),
          std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
}

// --- reconnect backoff --------------------------------------------------------

TEST(FleetBackoff, DeterministicBoundedExponential) {
  const double base = 0.05;
  const double cap = 2.0;
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const double once = net::reconnect_backoff_seconds(42, attempt, base, cap);
    const double again = net::reconnect_backoff_seconds(42, attempt, base, cap);
    EXPECT_EQ(once, again) << "attempt " << attempt;  // bit-identical replay
    double exponential = base;
    for (int i = 1; i < attempt && exponential < cap; ++i) exponential *= 2.0;
    exponential = std::min(exponential, cap);
    EXPECT_GE(once, 0.5 * exponential) << "attempt " << attempt;
    EXPECT_LT(once, exponential + 1e-12) << "attempt " << attempt;
  }
  EXPECT_EQ(net::reconnect_backoff_seconds(42, 0, base, cap), 0.0);
  // Jitter decorrelates workers: two ids almost surely differ somewhere.
  bool differs = false;
  for (int attempt = 1; attempt <= 12; ++attempt) {
    differs |= net::reconnect_backoff_seconds(1, attempt, base, cap) !=
               net::reconnect_backoff_seconds(2, attempt, base, cap);
  }
  EXPECT_TRUE(differs);
}

TEST(FleetBackoff, WorkerRejectsNonPositiveConnectTimeout) {
  const auto db = radiation::SoftErrorDatabase::default_database();
  net::WorkerOptions wopts;
  wopts.connect_timeout_seconds = 0.0;
  EXPECT_THROW(net::Worker(db, wopts), InvalidArgument);
  wopts.connect_timeout_seconds = -3.0;
  EXPECT_THROW(net::Worker(db, wopts), InvalidArgument);
}

TEST(FleetConfig, CoordinatorRejectsBadTimeoutsAndJournallessHandoff) {
  const auto db = radiation::SoftErrorDatabase::default_database();
  const net::CampaignSpec spec = small_spec();
  {
    net::CoordinatorOptions copts;
    copts.worker_timeout_seconds = 0.0;
    EXPECT_THROW(net::Coordinator(spec, db, copts), InvalidArgument);
  }
  {
    net::CoordinatorOptions copts;
    copts.frame_deadline_seconds = -1.0;
    EXPECT_THROW(net::Coordinator(spec, db, copts), InvalidArgument);
  }
  {
    net::CoordinatorOptions copts;
    copts.handoff_after_frames = 5;  // handoff without a journal strands work
    EXPECT_THROW(net::Coordinator(spec, db, copts), InvalidArgument);
  }
}

// --- scenario fleet section ---------------------------------------------------

TEST(FleetConfig, ScenarioFleetSectionRoundTrips) {
  const core::ScenarioSpec spec = core::ScenarioSpec::parse(
      "scenario: fleet-demo\n"
      "fleet:\n"
      "  secret: lab-7\n"
      "  connect_timeout: 3\n"
      "  worker_timeout: 9\n"
      "  frame_deadline: 2\n"
      "  election_timeout: 1.5\n"
      "  peer_port: 39999\n"
      "  advertise_addr: worker-3.rack2\n");
  EXPECT_EQ(spec.fleet.secret, "lab-7");
  EXPECT_EQ(spec.fleet.connect_timeout, 3.0);
  EXPECT_EQ(spec.fleet.worker_timeout, 9.0);
  EXPECT_EQ(spec.fleet.frame_deadline, 2.0);
  EXPECT_EQ(spec.fleet.election_timeout, 1.5);
  EXPECT_EQ(spec.fleet.peer_port, 39999);
  EXPECT_EQ(spec.fleet.advertise_addr, "worker-3.rack2");

  const core::ScenarioSpec back = core::ScenarioSpec::parse(spec.dump());
  EXPECT_EQ(back.fleet.secret, spec.fleet.secret);
  EXPECT_EQ(back.fleet.connect_timeout, spec.fleet.connect_timeout);
  EXPECT_EQ(back.fleet.worker_timeout, spec.fleet.worker_timeout);
  EXPECT_EQ(back.fleet.frame_deadline, spec.fleet.frame_deadline);
  EXPECT_EQ(back.fleet.election_timeout, spec.fleet.election_timeout);
  EXPECT_EQ(back.fleet.peer_port, spec.fleet.peer_port);
  EXPECT_EQ(back.fleet.advertise_addr, spec.fleet.advertise_addr);

  // advertise_addr is execution-only: it must not move the campaign digest.
  core::ScenarioSpec plain = spec;
  plain.fleet.advertise_addr.clear();
  const soc::SocModel model = plain.build_model();
  EXPECT_EQ(fi::campaign_config_digest(model, spec.campaign.config),
            fi::campaign_config_digest(model, plain.campaign.config));

  // An empty secret survives the round trip too (open fleet stays open).
  const core::ScenarioSpec open = core::ScenarioSpec::parse("scenario: x\n");
  EXPECT_EQ(core::ScenarioSpec::parse(open.dump()).fleet.secret, "");
}

TEST(FleetConfig, ScenarioRejectsNonPositiveFleetTimeouts) {
  EXPECT_THROW((void)core::ScenarioSpec::parse("fleet:\n"
                                               "  worker_timeout: 0\n"),
               InvalidArgument);
  EXPECT_THROW((void)core::ScenarioSpec::parse("fleet:\n"
                                               "  connect_timeout: -2\n"),
               InvalidArgument);
  EXPECT_THROW((void)core::ScenarioSpec::parse("fleet:\n"
                                               "  frame_deadline: 0\n"),
               InvalidArgument);
  // Election knobs: the timeout may be 0 (= disabled) but never negative,
  // and the peer port must actually be a port.
  EXPECT_THROW((void)core::ScenarioSpec::parse("fleet:\n"
                                               "  election_timeout: -1\n"),
               InvalidArgument);
  EXPECT_THROW((void)core::ScenarioSpec::parse("fleet:\n"
                                               "  peer_port: 70000\n"),
               InvalidArgument);
  EXPECT_EQ(core::ScenarioSpec::parse(
                "scenario: x\nfleet:\n  election_timeout: 0\n")
                .fleet.election_timeout,
            0.0);
}

// --- authenticated handshake --------------------------------------------------

TEST(FleetAuth, HandshakeMacIsKeyedAndNonceBound) {
  const std::uint64_t mac = net::handshake_mac("lab-7", net::kProtocolVersion,
                                               0x1234, /*epoch=*/0, 0x5678);
  EXPECT_EQ(mac, net::handshake_mac("lab-7", net::kProtocolVersion, 0x1234, 0,
                                    0x5678));
  EXPECT_NE(mac, net::handshake_mac("lab-8", net::kProtocolVersion, 0x1234, 0,
                                    0x5678));
  EXPECT_NE(mac, net::handshake_mac("lab-7", net::kProtocolVersion, 0x1235, 0,
                                    0x5678));
  EXPECT_NE(mac, net::handshake_mac("lab-7", net::kProtocolVersion, 0x1234, 0,
                                    0x5679));
  EXPECT_NE(mac,
            net::handshake_mac("", net::kProtocolVersion, 0x1234, 0, 0x5678));
  // The election epoch is bound into the MAC: a deposed primary cannot
  // reuse its old proofs against a post-election fleet.
  EXPECT_NE(mac, net::handshake_mac("lab-7", net::kProtocolVersion, 0x1234,
                                    /*epoch=*/1, 0x5678));
}

TEST(FleetAuth, WrongSecretIsRejectedBeforeAnyCampaignData) {
  const net::CampaignSpec spec = small_spec();
  const soc::SocModel model = net::build_model(spec);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignResult baseline = fi::run_campaign(model, spec.config, db);

  net::CoordinatorOptions copts;
  copts.port = 0;
  copts.loopback_only = true;
  copts.secret = "lab-7";
  net::Coordinator coordinator(spec, db, copts);
  const std::uint16_t port = coordinator.port();

  auto merged = std::async(std::launch::async,
                           [&coordinator] { return coordinator.run(); });

  // Direction 1: the worker unmasks a coordinator that cannot prove the
  // secret — here simulated by a worker keyed differently. Its failure is
  // final (WorkerRejected), before it computes or receives anything.
  std::thread wrong([&db, port] {
    net::WorkerOptions wopts;
    wopts.host = "127.0.0.1";
    wopts.port = port;
    wopts.secret = "not-lab-7";
    net::Worker worker(db, wopts);
    EXPECT_THROW((void)worker.run(), net::WorkerRejected);
  });

  // Direction 2: a hand-rolled client that forges its auth proof. The
  // coordinator must answer kError — never kCampaign — so the spec, digest,
  // and golden bundle stay unseen.
  std::thread forged([port] {
    util::Socket conn = util::connect_to("127.0.0.1", port, 10.0);
    net::HelloMsg hello;
    hello.worker_id = 7777;
    hello.threads = 1;
    hello.nonce = net::fresh_nonce();
    net::send_frame(conn, net::MsgType::kHello, net::encode_payload(hello));
    net::Frame frame;
    ASSERT_TRUE(net::recv_frame(conn, frame));
    ASSERT_EQ(frame.type, net::MsgType::kChallenge);
    util::ByteReader payload(frame.payload);
    const net::ChallengeMsg challenge = net::ChallengeMsg::decode(payload);
    net::AuthMsg auth;
    auth.mac =
        net::handshake_mac("guessed-wrong", net::kProtocolVersion,
                           challenge.config_digest, challenge.epoch,
                           challenge.nonce);
    net::send_frame(conn, net::MsgType::kAuth, net::encode_payload(auth));
    if (net::recv_frame(conn, frame)) {
      EXPECT_EQ(frame.type, net::MsgType::kError);
    }
  });

  // A properly keyed worker finishes the campaign regardless.
  std::thread good([&db, port] {
    net::WorkerOptions wopts;
    wopts.host = "127.0.0.1";
    wopts.port = port;
    wopts.secret = "lab-7";
    net::Worker worker(db, wopts);
    (void)worker.run();
  });

  expect_same_result(merged.get(), baseline);
  wrong.join();
  forged.join();
  good.join();
}

// --- chaos harness ------------------------------------------------------------

TEST(FleetChaos, EachFaultKindSurfacesThroughTheNormalFailureMachinery) {
  {
    // kGarbleSend: one flipped bit, the receiver's digest check rejects.
    auto [a, b] = util::Socket::pair();
    net::ChaosSchedule chaos;
    chaos.add({0, net::ChaosKind::kGarbleSend, 0});
    const std::vector<std::uint8_t> payload(32, 0xcd);
    EXPECT_FALSE(chaos.send_frame(a, net::MsgType::kRecords, payload));
    net::Frame frame;
    EXPECT_THROW((void)net::recv_frame(b, frame), InvalidArgument);
  }
  {
    // kTruncateSend: mid-frame EOF, an Error (never a clean end-of-stream).
    auto [a, b] = util::Socket::pair();
    net::ChaosSchedule chaos;
    chaos.add({0, net::ChaosKind::kTruncateSend, 9});
    const std::vector<std::uint8_t> payload(32, 0xcd);
    EXPECT_FALSE(chaos.send_frame(a, net::MsgType::kRecords, payload));
    net::Frame frame;
    EXPECT_THROW((void)net::recv_frame(b, frame), Error);
  }
  {
    // kDisconnect: nothing sent, clean EOF on the far side.
    auto [a, b] = util::Socket::pair();
    net::ChaosSchedule chaos;
    chaos.add({0, net::ChaosKind::kDisconnect, 0});
    EXPECT_FALSE(chaos.send_frame(a, net::MsgType::kRecords, {}));
    net::Frame frame;
    EXPECT_FALSE(net::recv_frame(b, frame));
  }
  {
    // kDelayMs: latency only; the frame arrives intact.
    auto [a, b] = util::Socket::pair();
    net::ChaosSchedule chaos;
    chaos.add({0, net::ChaosKind::kDelayMs, 1});
    const std::vector<std::uint8_t> payload = {1, 2, 3};
    EXPECT_TRUE(chaos.send_frame(a, net::MsgType::kWork, payload));
    net::Frame frame;
    ASSERT_TRUE(net::recv_frame(b, frame));
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(FleetChaos, EventsFireAtTheirOpIndexAndAreConsumedOnce) {
  auto [a, b] = util::Socket::pair();
  net::ChaosSchedule chaos;
  chaos.add({1, net::ChaosKind::kGarbleSend, 0});
  EXPECT_EQ(chaos.pending(), 1u);
  const std::vector<std::uint8_t> payload = {5, 5, 5};
  // Op 0: clean. Op 1: garbled. The event is then gone.
  EXPECT_TRUE(chaos.send_frame(a, net::MsgType::kWork, payload));
  EXPECT_FALSE(chaos.send_frame(a, net::MsgType::kWork, payload));
  EXPECT_EQ(chaos.pending(), 0u);
  EXPECT_EQ(chaos.ops_sent(), 2u);
  net::Frame frame;
  ASSERT_TRUE(net::recv_frame(b, frame));  // the clean op-0 frame
  EXPECT_EQ(frame.payload, payload);
  EXPECT_THROW((void)net::recv_frame(b, frame), InvalidArgument);  // garbled
}

TEST(FleetChaos, SeededScheduleIsDeterministic) {
  const net::ChaosSchedule a = net::ChaosSchedule::from_seed(9, 5, 2, 40);
  EXPECT_EQ(a.pending(), 5u);
  EXPECT_TRUE(net::ChaosSchedule::from_seed(9, 0, 0, 10).empty());
}

TEST(FleetChaos, CampaignSurvivesChaosFleetWithIdenticalRecords) {
  const net::CampaignSpec spec = small_spec();
  const soc::SocModel model = net::build_model(spec);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignResult baseline = fi::run_campaign(model, spec.config, db);
  ASSERT_GT(baseline.records.size(), 8u);

  net::CoordinatorOptions copts;
  copts.port = 0;
  copts.loopback_only = true;
  copts.chunk_injections = 2;
  net::Coordinator coordinator(spec, db, copts);
  const std::uint16_t port = coordinator.port();
  auto merged = std::async(std::launch::async,
                           [&coordinator] { return coordinator.run(); });

  // One worker per fault kind (plus a clean one), each faulting a few frames
  // into its session and then recovering through reconnect-and-resume.
  net::ChaosSchedule garble, truncate, drop, delay;
  garble.add({4, net::ChaosKind::kGarbleSend, 0});
  truncate.add({5, net::ChaosKind::kTruncateSend, 11});
  drop.add({3, net::ChaosKind::kDisconnect, 0});
  delay.add({2, net::ChaosKind::kDelayMs, 5});
  net::ChaosSchedule* schedules[] = {&garble, &truncate, &drop, &delay,
                                     nullptr};
  std::vector<std::thread> threads;
  for (std::size_t k = 0; k < std::size(schedules); ++k) {
    net::WorkerOptions wopts;
    wopts.host = "127.0.0.1";
    wopts.port = port;
    wopts.worker_id = 100 + k;
    wopts.chaos = schedules[k];
    wopts.backoff_base_seconds = 0.01;  // keep the test quick
    threads.emplace_back([&db, wopts] {
      try {
        net::Worker worker(db, wopts);
        (void)worker.run();
      } catch (const Error&) {
        // A worker that exhausts its chaos-riddled session is fine; the
        // coordinator reassigns.
      }
    });
  }
  expect_same_result(merged.get(), baseline);
  for (std::thread& t : threads) t.join();
}

// --- dispatch journal ---------------------------------------------------------

TEST(FleetJournal, RoundTripsAndResumesAcrossWriters) {
  const std::string path = testing::TempDir() + "/ssresf_journal_rt.ssjl";
  const std::uint64_t digest = 0xabcdef0123456789ull;
  {
    net::JournalWriter writer(path, digest, 10);
    writer.append(0, some_records(0, 3));
    writer.append(5, some_records(5, 2));
  }
  net::JournalContents contents = net::read_journal(path, digest, true);
  EXPECT_EQ(contents.config_digest, digest);
  EXPECT_EQ(contents.total_injections, 10u);
  ASSERT_EQ(contents.entries.size(), 2u);
  EXPECT_EQ(contents.entries[0].start, 0u);
  EXPECT_EQ(contents.entries[0].records.size(), 3u);
  EXPECT_EQ(contents.entries[1].start, 5u);
  EXPECT_EQ(contents.entries[1].records[1].index, 6u);

  // Resume appends past the existing entries.
  {
    net::JournalWriter writer = net::JournalWriter::resume(path, contents);
    writer.append(8, some_records(8, 2));
  }
  contents = net::read_journal(path, digest, true);
  ASSERT_EQ(contents.entries.size(), 3u);
  EXPECT_EQ(contents.entries[2].start, 8u);
  std::remove(path.c_str());
}

TEST(FleetJournal, RejectsAForeignCampaignDigestLoudly) {
  const std::string path = testing::TempDir() + "/ssresf_journal_digest.ssjl";
  {
    net::JournalWriter writer(path, 0xfeed, 4);
    writer.append(0, some_records(0, 1));
  }
  try {
    (void)net::read_journal(path, 0xbeef, true);
    FAIL() << "expected a digest mismatch";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    // Both digests are named: the operator sees *which* campaign the file
    // belongs to, not just that it is wrong.
    EXPECT_NE(what.find("0x000000000000feed"), std::string::npos) << what;
    EXPECT_NE(what.find("0x000000000000beef"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(FleetJournal, CorruptEntryNamesOffsetStrictButTolerantCutsTheTail) {
  const std::string path = testing::TempDir() + "/ssresf_journal_corrupt.ssjl";
  const std::uint64_t digest = 0x1111;
  {
    net::JournalWriter writer(path, digest, 8);
    writer.append(0, some_records(0, 2));
    writer.append(4, some_records(4, 2));
  }
  const net::JournalContents clean = net::read_journal(path, digest, true);
  ASSERT_EQ(clean.entries.size(), 2u);

  // Flip one byte inside the second entry's payload.
  std::vector<std::uint8_t> bytes = slurp(path);
  const std::size_t second = static_cast<std::size_t>(
      21 + (clean.valid_bytes - 21) / 2);  // somewhere inside entry 2
  bytes[second + 20] ^= 0x10;
  spit(path, bytes);

  try {
    (void)net::read_journal(path, digest, true);
    FAIL() << "expected strict read to reject the corrupt entry";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
        << e.what();
  }
  // The tolerant (crash-recovery) reader keeps everything before the defect.
  const net::JournalContents cut = net::read_journal(path, digest, false);
  ASSERT_EQ(cut.entries.size(), 1u);
  EXPECT_EQ(cut.entries[0].start, 0u);
  EXPECT_LT(cut.valid_bytes, bytes.size());

  // A torn tail (half-written final entry) behaves the same way, and resume
  // truncates it so the journal is strict-clean again.
  bytes.resize(bytes.size() - 7);
  spit(path, bytes);
  const net::JournalContents torn = net::read_journal(path, digest, false);
  ASSERT_EQ(torn.entries.size(), 1u);
  {
    net::JournalWriter writer = net::JournalWriter::resume(path, torn);
    writer.append(4, some_records(4, 2));
  }
  EXPECT_EQ(net::read_journal(path, digest, true).entries.size(), 2u);
  std::remove(path.c_str());
}

TEST(FleetJournal, TruncatedHeaderIsRejectedWithByteCounts) {
  const std::string path = testing::TempDir() + "/ssresf_journal_header.ssjl";
  spit(path, {0x53, 0x53, 0x4a});  // "SSJ" and nothing else
  try {
    (void)net::read_journal(path, 0, true);
    FAIL() << "expected a truncated-header rejection";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("truncated header"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

// --- golden bundle file corruption (satellite of the same robustness story) ---

TEST(FleetJournal, CorruptGoldenBundleFileNamesTheOffset) {
  const net::CampaignSpec spec = small_spec();
  const soc::SocModel model = net::build_model(spec);
  const auto db = radiation::SoftErrorDatabase::default_database();
  fi::detail::CampaignPrep prep = fi::detail::prepare_campaign(
      model, spec.config, db, /*for_execution=*/true);
  const std::string path = testing::TempDir() + "/ssresf_corrupt.ssgb";
  fi::write_golden_bundle_file(
      path, model, spec.config,
      fi::extract_golden_bundle(model, spec.config, prep));

  // Bit flip deep inside the encoded trace: decode must fail and name where.
  std::vector<std::uint8_t> bytes = slurp(path);
  ASSERT_GT(bytes.size(), 200u);
  bytes[bytes.size() / 2] ^= 0x04;
  spit(path, bytes);
  try {
    (void)fi::read_golden_bundle_file(path, model, spec.config);
    // A flipped logic-value bit may still decode to a *valid* value; the
    // strict structural checks make that overwhelmingly unlikely here, but
    // if it decodes, the trace/ladder cross-checks downstream still guard
    // correctness. Either way a throw with an offset is the expected path.
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
        << e.what();
  }

  // Truncation mid-stream: rejected, never silently partial.
  bytes.resize(bytes.size() / 3);
  spit(path, bytes);
  EXPECT_THROW((void)fi::read_golden_bundle_file(path, model, spec.config),
               InvalidArgument);

  // Digest mismatch names both digests.
  try {
    std::remove(path.c_str());
    fi::write_golden_bundle_file(
        path, model, spec.config,
        fi::extract_golden_bundle(model, spec.config, prep));
    (void)fi::read_golden_bundle_file(path, model, small_spec(18).config);
    FAIL() << "expected a digest mismatch";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("0x"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

// --- fleet health / quarantine ------------------------------------------------

TEST(FleetHealth, SlowOutlierIsQuarantinedAgainstTheRestOfTheFleet) {
  net::FleetMonitor monitor;
  ASSERT_TRUE(monitor.on_connect(1));
  ASSERT_TRUE(monitor.on_connect(2));
  ASSERT_TRUE(monitor.on_connect(3));
  const auto beat = [](std::uint64_t id, double seconds) {
    net::HeartbeatMsg hb;
    hb.worker_id = id;
    hb.chunks_done = 1;
    hb.records_produced = 2;
    hb.last_chunk_seconds = seconds;
    hb.total_seconds = seconds;
    hb.last_records_digest = 0x77;
    return hb;
  };
  // Workers 1 and 2 build the fleet baseline: ten 0.1s chunks.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(monitor.on_heartbeat(beat(1, 0.1), 0x77),
              net::QuarantineReason::kNone);
    EXPECT_EQ(monitor.on_heartbeat(beat(2, 0.1), 0x77),
              net::QuarantineReason::kNone);
  }
  // Worker 3 reports 10s chunks: far outside any sane z-score once it has
  // min_worker_samples of its own.
  EXPECT_EQ(monitor.on_heartbeat(beat(3, 10.0), 0x77),
            net::QuarantineReason::kNone);
  EXPECT_EQ(monitor.on_heartbeat(beat(3, 10.0), 0x77),
            net::QuarantineReason::kSlow);
  EXPECT_TRUE(monitor.quarantined(3));
  EXPECT_EQ(monitor.healthy_count(), 2u);
  // A quarantined worker is refused at its next hello.
  EXPECT_FALSE(monitor.on_connect(3));
  // The status table names it.
  EXPECT_NE(monitor.status_table().find("slow"), std::string::npos);
}

TEST(FleetHealth, DigestMismatchIsQuarantinedImmediately) {
  net::FleetMonitor monitor;
  ASSERT_TRUE(monitor.on_connect(1));
  ASSERT_TRUE(monitor.on_connect(2));
  net::HeartbeatMsg hb;
  hb.worker_id = 2;
  hb.chunks_done = 1;
  hb.last_records_digest = 0xbad;
  EXPECT_EQ(monitor.on_heartbeat(hb, 0x600d),
            net::QuarantineReason::kDigestMismatch);
  EXPECT_TRUE(monitor.quarantined(2));
  // With nothing accepted yet (digest 0) there is no basis to judge.
  net::HeartbeatMsg first;
  first.worker_id = 1;
  first.last_records_digest = 0x123;
  EXPECT_EQ(monitor.on_heartbeat(first, 0), net::QuarantineReason::kNone);
}

TEST(FleetHealth, FlappingWorkerIsRefused) {
  net::HealthOptions options;
  options.flap_limit = 3;
  net::FleetMonitor monitor(options);
  ASSERT_TRUE(monitor.on_connect(9));  // keeps the fleet from going empty
  for (int c = 1; c <= 4; ++c) {
    EXPECT_TRUE(monitor.on_connect(5)) << "connect " << c;
  }
  EXPECT_FALSE(monitor.on_connect(5));  // 4 reconnects > flap_limit 3
  EXPECT_EQ(monitor.workers().at(5).reason,
            net::QuarantineReason::kFlapping);
}

TEST(FleetHealth, NeverQuarantinesTheLastHealthyWorker) {
  net::FleetMonitor monitor;
  ASSERT_TRUE(monitor.on_connect(1));
  net::HeartbeatMsg hb;
  hb.worker_id = 1;
  hb.last_records_digest = 0xbad;
  // Solo fleet: even a digest mismatch is tolerated — a degraded fleet that
  // finishes beats a pristine one that stalls.
  EXPECT_EQ(monitor.on_heartbeat(hb, 0x600d), net::QuarantineReason::kNone);
  EXPECT_FALSE(monitor.quarantined(1));
  // The moment a second worker exists, the next offense sticks.
  ASSERT_TRUE(monitor.on_connect(2));
  EXPECT_EQ(monitor.on_heartbeat(hb, 0x600d),
            net::QuarantineReason::kDigestMismatch);
}

TEST(FleetHealth, DeadWorkersDoNotCountTowardTheLastHealthyGuard) {
  net::FleetMonitor monitor;
  ASSERT_TRUE(monitor.on_connect(1));
  ASSERT_TRUE(monitor.on_connect(2));
  ASSERT_TRUE(monitor.on_connect(3));
  const auto beat = [](std::uint64_t id, double seconds) {
    net::HeartbeatMsg hb;
    hb.worker_id = id;
    hb.chunks_done = 1;
    hb.last_chunk_seconds = seconds;
    hb.total_seconds = seconds;
    hb.last_records_digest = 0x77;
    return hb;
  };
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(monitor.on_heartbeat(beat(1, 0.1), 0x77),
              net::QuarantineReason::kNone);
    EXPECT_EQ(monitor.on_heartbeat(beat(2, 0.1), 0x77),
              net::QuarantineReason::kNone);
  }
  // Workers 1 and 2 die without ever being quarantined (SIGKILL, say).
  monitor.on_disconnect(1);
  monitor.on_disconnect(2);
  // Worker 3 is now the only one alive. Its 10s chunks are a clear outlier
  // against the dead workers' baseline, but quarantining it would leave the
  // campaign with nobody — the guard must count live workers, not ghosts.
  EXPECT_EQ(monitor.on_heartbeat(beat(3, 10.0), 0x77),
            net::QuarantineReason::kNone);
  EXPECT_EQ(monitor.on_heartbeat(beat(3, 10.0), 0x77),
            net::QuarantineReason::kNone);
  EXPECT_FALSE(monitor.quarantined(3));
}

TEST(FleetHealth, QuarantinedWorkerIsParoledWhenTheFleetWouldStarve) {
  net::HealthOptions options;
  options.flap_limit = 1;
  net::FleetMonitor monitor(options);
  ASSERT_TRUE(monitor.on_connect(1));
  ASSERT_TRUE(monitor.on_connect(2));
  ASSERT_TRUE(monitor.on_connect(2));  // reconnect 1: at the limit
  EXPECT_FALSE(monitor.on_connect(2));  // reconnect 2: quarantined
  EXPECT_TRUE(monitor.quarantined(2));
  // While worker 1 is alive, worker 2 stays refused.
  EXPECT_FALSE(monitor.on_connect(2));
  // Worker 1 dies. Now refusing worker 2 would stall the campaign forever:
  // its next hello is paroled instead.
  monitor.on_disconnect(1);
  monitor.on_disconnect(2);
  EXPECT_TRUE(monitor.on_connect(2));
  EXPECT_FALSE(monitor.quarantined(2));
}

TEST(FleetHealth, CorruptDigestWorkerIsQuarantinedMidCampaign) {
  const net::CampaignSpec spec = small_spec();
  const soc::SocModel model = net::build_model(spec);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignResult baseline = fi::run_campaign(model, spec.config, db);

  net::CoordinatorOptions copts;
  copts.port = 0;
  copts.loopback_only = true;
  copts.chunk_injections = 1;  // many chunks -> many heartbeats
  net::Coordinator coordinator(spec, db, copts);
  const std::uint16_t port = coordinator.port();
  auto merged = std::async(std::launch::async,
                           [&coordinator] { return coordinator.run(); });

  std::thread good([&db, port] {
    net::WorkerOptions wopts;
    wopts.host = "127.0.0.1";
    wopts.port = port;
    wopts.worker_id = 1;
    net::Worker worker(db, wopts);
    (void)worker.run();
  });
  std::thread bad([&db, port] {
    net::WorkerOptions wopts;
    wopts.host = "127.0.0.1";
    wopts.port = port;
    wopts.worker_id = 2;
    wopts.corrupt_heartbeat_digest = true;
    net::Worker worker(db, wopts);
    // Quarantine surfaces as a rejection (or a dropped session that runs out
    // of retries against a coordinator that refuses readmission).
    EXPECT_THROW((void)worker.run(), Error);
  });

  expect_same_result(merged.get(), baseline);
  good.join();
  bad.join();
  EXPECT_TRUE(coordinator.monitor().quarantined(2));
  EXPECT_EQ(coordinator.monitor().workers().at(2).reason,
            net::QuarantineReason::kDigestMismatch);
  // Records already accepted from worker 2 stayed — determinism makes them
  // as good as anyone's — which expect_same_result above already proved.
}

// --- coordinator failover -----------------------------------------------------

TEST(FleetFailover, StandbyResumesFromJournalWithIdenticalRecords) {
  const net::CampaignSpec spec = small_spec();
  const soc::SocModel model = net::build_model(spec);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignResult baseline = fi::run_campaign(model, spec.config, db);
  ASSERT_GT(baseline.records.size(), 8u);
  const std::uint64_t digest = fi::campaign_config_digest(model, spec.config);

  const std::string journal = testing::TempDir() + "/ssresf_failover.ssjl";
  std::remove(journal.c_str());

  // The standby binds its port first (it is the redirect target), but only
  // runs once the primary has handed off.
  net::CoordinatorOptions standby_opts;
  standby_opts.port = 0;
  standby_opts.loopback_only = true;
  standby_opts.chunk_injections = 2;
  standby_opts.secret = "failover-demo";
  standby_opts.journal_path = journal;
  net::Coordinator standby(spec, db, standby_opts);

  net::CoordinatorOptions primary_opts = standby_opts;
  primary_opts.handoff_after_frames = 14;  // mid-campaign, deterministically
  primary_opts.handoff_port = standby.port();
  auto primary = std::make_unique<net::Coordinator>(spec, db, primary_opts);
  const std::uint16_t port = primary->port();

  auto merged = std::async(std::launch::async, [&primary, &standby] {
    try {
      return primary->run();
    } catch (const net::CoordinatorHandoff&) {
      // The old incarnation is gone for good — its listen port closes, so a
      // straggler that missed the redirect gets a refused connect (and then
      // reassignment), never a silent hang against a dead coordinator. The
      // journal carries the progress across the succession.
      primary.reset();
      return standby.run();
    }
  });

  std::vector<std::thread> threads;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    net::WorkerOptions wopts;
    wopts.host = "127.0.0.1";
    wopts.port = port;
    wopts.worker_id = id;
    wopts.secret = "failover-demo";
    wopts.backoff_base_seconds = 0.01;
    wopts.connect_timeout_seconds = 1.0;  // the primary's port dies mid-test
    threads.emplace_back([&db, wopts] {
      try {
        net::Worker worker(db, wopts);
        (void)worker.run();
      } catch (const Error&) {
      }
    });
  }
  expect_same_result(merged.get(), baseline);
  for (std::thread& t : threads) t.join();

  // The journal the succession ran on is strict-clean and campaign-bound.
  const net::JournalContents contents = net::read_journal(journal, digest,
                                                          /*strict=*/true);
  EXPECT_EQ(contents.total_injections, baseline.records.size());
  std::remove(journal.c_str());
}

TEST(FleetFailover, RestartedCoordinatorResumesACompletedPrefix) {
  // Coordinator "crash" modeled directly at the journal layer: a first run
  // journals a prefix of the campaign, a second coordinator on the same
  // journal finishes only the gaps — and the merge equals the single-process
  // result bit-for-bit.
  const net::CampaignSpec spec = small_spec();
  const soc::SocModel model = net::build_model(spec);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignResult baseline = fi::run_campaign(model, spec.config, db);
  const std::uint64_t digest = fi::campaign_config_digest(model, spec.config);
  const std::string journal = testing::TempDir() + "/ssresf_restart.ssjl";
  std::remove(journal.c_str());

  // Pre-seed the journal with a "previous incarnation's" accepted batches:
  // the genuinely computed records for a prefix of the plan.
  {
    std::vector<fi::ShardRecord> prefix;
    for (std::size_t i = 0; i < baseline.records.size() / 2; ++i) {
      prefix.push_back({i, baseline.records[i]});
    }
    net::JournalWriter writer(journal, digest, baseline.records.size());
    writer.append(0, prefix);
  }

  net::CoordinatorOptions copts;
  copts.port = 0;
  copts.loopback_only = true;
  copts.chunk_injections = 2;
  copts.journal_path = journal;
  net::Coordinator restarted(spec, db, copts);
  const std::uint16_t port = restarted.port();
  auto merged = std::async(std::launch::async,
                           [&restarted] { return restarted.run(); });
  std::thread worker_thread([&db, port] {
    net::WorkerOptions wopts;
    wopts.host = "127.0.0.1";
    wopts.port = port;
    net::Worker worker(db, wopts);
    (void)worker.run();
  });
  const fi::CampaignResult result = merged.get();
  worker_thread.join();
  expect_same_result(result, baseline);
  std::remove(journal.c_str());
}

// --- torn journal tails at exact frame boundaries -----------------------------

TEST(FleetJournal, TornExactlyAtTheEntryCrcBoundaryIsCutCleanly) {
  const std::string path = testing::TempDir() + "/ssresf_journal_torn_crc.ssjl";
  const std::uint64_t digest = 0x2222;
  {
    net::JournalWriter writer(path, digest, 8);
    writer.append(0, some_records(0, 2));
    writer.append(4, some_records(4, 2));
  }
  const std::vector<std::uint8_t> clean = slurp(path);

  // The on-disk entry frame and the kJournalSync replication unit are the
  // same bytes — the invariant the whole replica design rests on.
  const std::vector<std::uint8_t> entry1 =
      net::encode_journal_entry(0, some_records(0, 2));
  ASSERT_LT(21 + entry1.size(), clean.size());
  EXPECT_TRUE(std::equal(entry1.begin(), entry1.end(), clean.begin() + 21));

  // Truncation exactly between the second entry's 13-byte header (marker |
  // len | CRC) and its first payload byte: the nastiest tear, since marker,
  // length, and CRC all read back plausibly — only the missing payload gives
  // it away.
  const std::size_t entry2_offset = 21 + entry1.size();
  std::vector<std::uint8_t> torn(clean.begin(),
                                 clean.begin() + static_cast<std::ptrdiff_t>(
                                                     entry2_offset + 13));
  spit(path, torn);
  net::JournalContents cut = net::read_journal(path, digest, /*strict=*/false);
  ASSERT_EQ(cut.entries.size(), 1u);
  EXPECT_EQ(cut.valid_bytes, entry2_offset);
  EXPECT_THROW((void)net::read_journal(path, digest, true), InvalidArgument);

  // A tear inside the CRC field itself cuts at the same point.
  torn.resize(entry2_offset + 5);
  spit(path, torn);
  cut = net::read_journal(path, digest, false);
  ASSERT_EQ(cut.entries.size(), 1u);
  EXPECT_EQ(cut.valid_bytes, entry2_offset);

  // Resume truncates the debris and appends cleanly: strict again after.
  {
    net::JournalWriter writer = net::JournalWriter::resume(path, cut);
    writer.append(4, some_records(4, 2));
  }
  EXPECT_EQ(net::read_journal(path, digest, true).entries.size(), 2u);
  std::remove(path.c_str());
}

// --- crash-safe artifact publication ------------------------------------------

TEST(FleetCrashSafety, AtomicWriteLeavesTheOldFileOrNoFileOnCrash) {
  const std::string path = testing::TempDir() + "/ssresf_atomic.bin";
  std::remove(path.c_str());
  const std::vector<std::uint8_t> v1 = {1, 2, 3, 4};
  const std::vector<std::uint8_t> v2 = {9, 9, 9, 9, 9};

  // Killed during the very first write: no file at all — never a torn one.
  util::atomic_write_file(path, v1, /*crash_before_rename=*/true);
  EXPECT_FALSE(std::ifstream(path).good());

  util::atomic_write_file(path, v1);
  EXPECT_EQ(slurp(path), v1);

  // Killed during an overwrite: the complete old file survives.
  util::atomic_write_file(path, v2, /*crash_before_rename=*/true);
  EXPECT_EQ(slurp(path), v1);

  // The interrupted attempt's tmp debris does not block the next one.
  util::atomic_write_file(path, v2);
  EXPECT_EQ(slurp(path), v2);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(FleetCrashSafety, KilledShardOverwriteLeavesTheOldFileReadable) {
  // Every artifact writer (.ssfs shard, .ssgb bundle, .ssmd model) publishes
  // through atomic_write_file; drive the seam against a real reader once.
  const std::string path = testing::TempDir() + "/ssresf_crash.ssfs";
  std::remove(path.c_str());
  fi::ShardFileMeta meta;
  meta.seed = 3;
  meta.total_injections = 4;
  meta.config_digest = 0x77;
  meta.num_records = 4;
  fi::write_shard_file(path, meta, some_records(0, 4));
  const std::vector<std::uint8_t> published = slurp(path);

  // "kill -9" between the replacement's flush and its rename: the bytes on
  // disk are still the old artifact, byte for byte, and still parse.
  const std::vector<std::uint8_t> junk(37, 0xAB);
  util::atomic_write_file(path, junk, /*crash_before_rename=*/true);
  EXPECT_EQ(slurp(path), published);
  fi::ShardFileReader reader(path);
  EXPECT_EQ(reader.meta().config_digest, 0x77u);
  std::size_t n = 0;
  for (fi::ShardRecord r; reader.next(r);) ++n;
  EXPECT_EQ(n, 4u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// --- coordinator election -----------------------------------------------------

static_assert(std::is_base_of_v<net::WorkerRejected, net::StaleCoordinator>,
              "a stale coordinator must be final when elections are off");

TEST(FleetElection, StalePrimaryIsRejectedByTheEpochGuard) {
  // A coordinator at epoch 0 against a worker that has lived through an
  // election (epoch 1): the MAC binds the epoch, so the deposed primary is
  // refused outright — split-brain is impossible, not just unlikely.
  const net::CampaignSpec spec = small_spec();
  const soc::SocModel model = net::build_model(spec);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignResult baseline = fi::run_campaign(model, spec.config, db);

  net::CoordinatorOptions copts;
  copts.port = 0;
  copts.loopback_only = true;
  copts.chunk_injections = 2;
  copts.secret = "epoch-demo";  // the guard works on authenticated fleets too
  net::Coordinator coordinator(spec, db, copts);
  const std::uint16_t port = coordinator.port();
  auto merged = std::async(std::launch::async,
                           [&coordinator] { return coordinator.run(); });

  std::thread stale([&db, port] {
    net::WorkerOptions wopts;
    wopts.host = "127.0.0.1";
    wopts.port = port;
    wopts.secret = "epoch-demo";
    wopts.initial_epoch = 1;  // this worker followed an elected coordinator
    net::Worker worker(db, wopts);
    EXPECT_THROW((void)worker.run(), net::StaleCoordinator);
  });
  std::thread good([&db, port] {
    net::WorkerOptions wopts;
    wopts.host = "127.0.0.1";
    wopts.port = port;
    wopts.secret = "epoch-demo";
    net::Worker worker(db, wopts);
    (void)worker.run();
  });
  expect_same_result(merged.get(), baseline);
  stale.join();
  good.join();
}

TEST(FleetElection, PrefixReplicaPromotionRequeuesTheUnmirroredTail) {
  // The promotion half in isolation: a replica that is a strict PREFIX of
  // the dead primary's journal (its final batches were flushed locally but
  // died before the kJournalSync broadcast). The promoted coordinator must
  // serve every injection the replica does not cover — and nothing it does.
  const net::CampaignSpec spec = small_spec();
  const soc::SocModel model = net::build_model(spec);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignResult baseline = fi::run_campaign(model, spec.config, db);
  const std::uint64_t digest = fi::campaign_config_digest(model, spec.config);
  const std::string journal = testing::TempDir() + "/ssresf_replica.ssjl";
  std::remove(journal.c_str());

  const std::size_t half = baseline.records.size() / 2;
  ASSERT_GE(half, 2u);
  std::vector<fi::ShardRecord> first, second;
  for (std::size_t i = 0; i < half / 2; ++i) {
    first.push_back({i, baseline.records[i]});
  }
  for (std::size_t i = half / 2; i < half; ++i) {
    second.push_back({i, baseline.records[i]});
  }
  std::vector<std::vector<std::uint8_t>> entries;
  entries.push_back(net::encode_journal_entry(0, first));
  entries.push_back(net::encode_journal_entry(half / 2, second));
  net::write_replica_journal(journal, digest, baseline.records.size(), entries);

  // The persisted replica IS a journal: strict-clean and campaign-bound.
  const net::JournalContents replayed =
      net::read_journal(journal, digest, /*strict=*/true);
  ASSERT_EQ(replayed.entries.size(), 2u);
  EXPECT_EQ(replayed.total_injections, baseline.records.size());

  net::CoordinatorOptions copts;
  copts.port = 0;
  copts.loopback_only = true;
  copts.chunk_injections = 2;
  copts.journal_path = journal;
  copts.epoch = 1;  // a promoted worker serves at its known epoch + 1
  net::Coordinator promoted(spec, db, copts);
  const std::uint16_t port = promoted.port();
  auto merged =
      std::async(std::launch::async, [&promoted] { return promoted.run(); });
  std::thread worker_thread([&db, port] {
    net::WorkerOptions wopts;
    wopts.host = "127.0.0.1";
    wopts.port = port;
    net::Worker worker(db, wopts);
    (void)worker.run();
  });
  expect_same_result(merged.get(), baseline);
  worker_thread.join();

  // The finished journal = the replica prefix + only the re-queued tail:
  // every injection has exactly one record across all entries.
  const net::JournalContents finished = net::read_journal(journal, digest,
                                                          /*strict=*/true);
  std::size_t journaled = 0;
  for (const net::JournalEntry& e : finished.entries) {
    journaled += e.records.size();
  }
  EXPECT_EQ(journaled, baseline.records.size());
  std::remove(journal.c_str());
}

TEST(FleetElection, WorkersElectAReplacementAfterCoordinatorDeath) {
  // The tentpole, end to end and fully deterministic: the coordinator is
  // SIGKILLed (in-process stand-in: connections and listener dropped cold
  // after a fixed frame count), NO standby exists, and the workers heal the
  // fleet on their own — the lowest-id survivor promotes itself on its
  // journal replica, the other follows via a peer query, and the merged
  // result is byte-identical to the single-process campaign.
  const net::CampaignSpec spec = small_spec();
  const soc::SocModel model = net::build_model(spec);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignResult baseline = fi::run_campaign(model, spec.config, db);
  ASSERT_GT(baseline.records.size(), 8u);

  const std::string journal = testing::TempDir() + "/ssresf_election.ssjl";
  const std::string promote_journal =
      testing::TempDir() + "/ssresf_election_promoted.ssjl";
  std::remove(journal.c_str());
  std::remove(promote_journal.c_str());

  net::CoordinatorDeathSchedule death(/*die_at_frame=*/12);
  net::CoordinatorOptions copts;
  copts.port = 0;
  copts.loopback_only = true;
  copts.chunk_injections = 2;
  copts.secret = "election-demo";
  copts.journal_path = journal;
  copts.death = &death;
  net::Coordinator coordinator(spec, db, copts);
  const std::uint16_t port = coordinator.port();
  auto doomed = std::async(std::launch::async, [&coordinator] {
    try {
      (void)coordinator.run();
      return false;  // survived — the schedule never fired
    } catch (const net::CoordinatorKilled&) {
      return true;
    }
  });

  const auto make_worker = [&](std::uint64_t id) {
    net::WorkerOptions wopts;
    wopts.host = "127.0.0.1";
    wopts.port = port;
    wopts.worker_id = id;
    wopts.secret = "election-demo";
    wopts.connect_timeout_seconds = 0.3;
    wopts.backoff_base_seconds = 0.01;
    wopts.backoff_cap_seconds = 0.1;
    wopts.max_reconnect_attempts = 20;
    wopts.election_timeout_seconds = 0.05;
    wopts.promote_journal_path = promote_journal;
    return std::make_unique<net::Worker>(db, wopts);
  };
  const std::unique_ptr<net::Worker> w1 = make_worker(1);
  const std::unique_ptr<net::Worker> w2 = make_worker(2);
  std::thread t1([&w1] { (void)w1->run(); });
  std::thread t2([&w2] { (void)w2->run(); });
  t1.join();
  t2.join();
  EXPECT_TRUE(doomed.get()) << "the death schedule must fire mid-campaign";

  // Exactly one winner — the lowest id — and ITS process holds the merged
  // result the dead primary would have emitted, byte for byte.
  EXPECT_TRUE(w1->promoted());
  EXPECT_FALSE(w2->promoted());
  ASSERT_TRUE(w1->promoted_result().has_value());
  expect_same_result(*w1->promoted_result(), baseline);

  // The promotion journal is a strict-clean, campaign-bound journal whose
  // entries cover every injection exactly once (replica prefix + re-queued
  // tail).
  const std::uint64_t digest = fi::campaign_config_digest(model, spec.config);
  const net::JournalContents finished =
      net::read_journal(promote_journal, digest, /*strict=*/true);
  EXPECT_EQ(finished.total_injections, baseline.records.size());
  std::size_t journaled = 0;
  for (const net::JournalEntry& e : finished.entries) {
    journaled += e.records.size();
  }
  EXPECT_EQ(journaled, baseline.records.size());

  std::remove(journal.c_str());
  std::remove(promote_journal.c_str());
}

}  // namespace
}  // namespace ssresf
