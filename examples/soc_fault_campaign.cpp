// Runs the dynamic-simulation phase of SSRESF on a RISC-V SoC: build a
// PULP-style SoC running a real program, cluster its netlist (Algorithm 1),
// inject sampled SEU/SET faults, and report per-cluster and per-module
// soft-error rates (Eq. 2).
#include <cstdio>

#include "fi/sensitivity.h"
#include "soc/programs.h"
#include "util/table.h"
#include "util/strings.h"

using namespace ssresf;

int main() {
  // PULP SoC3-like configuration: RV32IM core, AHB bus, 256KB SRAM.
  soc::SocConfig cfg;
  cfg.name = "example-soc";
  cfg.mem_bytes = 256 * 1024;
  cfg.mem_tech = netlist::MemTech::kSram;
  cfg.bus = soc::BusProtocol::kAhb;
  cfg.bus_width_bits = 64;
  cfg.cpu_isa = "RV32IM";

  const auto core_cfg = soc::CoreConfig::from_isa(cfg.cpu_isa);
  const soc::Workload workload = soc::benchmark_workload(core_cfg, true);
  const soc::Program programs[] = {soc::assemble(workload.source)};
  const soc::SocModel model = soc::build_soc(cfg, programs);
  std::printf("SoC: %zu cells (%zu sequential), workload '%s'\n",
              model.netlist.num_cells(), model.netlist.num_sequential_cells(),
              workload.name.c_str());

  fi::CampaignConfig campaign;
  campaign.clustering.num_clusters = 8;
  campaign.sampling.fraction = 0.01;
  campaign.sampling.min_per_cluster = 6;
  campaign.sampling.max_per_cluster = 24;
  campaign.environment.flux = 5e8;   // particles / cm^2 / s
  campaign.environment.let = 37.0;   // MeV cm^2 / mg
  campaign.seed = 7;

  const auto db = radiation::SoftErrorDatabase::default_database();
  const auto result = fi::run_campaign(model, campaign, db);

  std::printf("\ngolden run: %d cycles @ %llu ps/cycle, %zu injections\n",
              result.golden_cycles,
              static_cast<unsigned long long>(result.clock_period_ps),
              result.records.size());

  util::Table clusters({"cluster", "cells(w)", "samples", "errors",
                        "propagation", "xsect", "SER"});
  for (const auto& c : fi::clusters_by_ser(result)) {
    clusters.add_row({std::to_string(c.cluster), std::to_string(c.num_cells),
                      std::to_string(c.samples), std::to_string(c.errors),
                      util::format("%.1f%%", 100 * c.propagation_ratio),
                      util::format("%.2e", c.xsect_cm2),
                      util::format("%.4f%%", c.ser_percent)});
  }
  std::printf("\nclusters by SER (the sensitive-node list order):\n%s",
              clusters.render().c_str());

  util::Table classes({"module group", "samples", "errors", "SER"});
  for (const auto cls :
       {netlist::ModuleClass::kMemory, netlist::ModuleClass::kBus,
        netlist::ModuleClass::kCpu, netlist::ModuleClass::kPeripheral}) {
    const auto& s = result.per_class[static_cast<int>(cls)];
    classes.add_row({std::string(netlist::module_class_name(cls)),
                     std::to_string(s.samples), std::to_string(s.errors),
                     util::format("%.4f%%", s.ser_percent)});
  }
  std::printf("\nper module group:\n%s", classes.render().c_str());
  std::printf("\nchip SER (Eq. 2): %.4f%%\n", result.chip_ser_percent);
  std::printf("SET xsect %.3e cm^2, SEU xsect %.3e cm^2\n",
              result.set_xsect_cm2, result.seu_xsect_cm2);
  return 0;
}
