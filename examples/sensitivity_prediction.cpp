// The full SSRESF flow (Fig. 1) on the Pipeline API v2: a staged
// core::Session runs simulate -> build_dataset -> tune -> train -> predict,
// persists the digest-bound artifacts (.ssfs / .ssds / .ssmd), and the saved
// model bundle is then reloaded and transferred to a *modified* netlist —
// the paper's deployment story: train once, classify any design at a
// fraction of simulation cost.
//
// usage: sensitivity_prediction [scenario.yaml [out_dir [predictions.csv]]]
//
// With a scenario file this doubles as the programmatic half of the CI
// scenario-equivalence check: its predictions CSV must be byte-identical to
// `ssresf run --scenario <file>` on the same scenario.
#include <algorithm>
#include <cstdio>

#include "core/session.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ssresf;

namespace {

core::ScenarioSpec default_scenario() {
  core::ScenarioSpec spec;
  spec.name = "sensitivity-demo";
  spec.campaign.workload = "benchmark";
  spec.campaign.isa = "RV32I";
  spec.campaign.bus = "ahb";
  spec.campaign.mem_kb = 64;
  spec.campaign.config.clustering.num_clusters = 6;
  spec.campaign.config.sampling.fraction = 0.02;
  spec.campaign.config.sampling.min_per_cluster = 10;
  spec.campaign.config.sampling.max_per_cluster = 40;
  spec.campaign.config.seed = 3;
  spec.cv_folds = 10;
  spec.run_grid_search = true;  // optimize (C, gamma) as in Sec. IV-B
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const auto db = radiation::SoftErrorDatabase::default_database();
  core::ScenarioSpec spec = argc > 1
                                ? core::ScenarioSpec::load_file(argv[1])
                                : default_scenario();
  core::SessionOptions options;
  options.artifact_dir = argc > 2 ? argv[2] : "sensitivity_artifacts";

  core::Session session(spec, db, options);
  const fi::CampaignResult& campaign = session.simulate();
  std::printf("campaign: %zu injections, %.2fs of simulation\n",
              campaign.records.size(), campaign.simulation_seconds);
  const core::ModelBundle& bundle = session.train();
  if (spec.run_grid_search && session.has_cv()) {
    std::printf("grid search chose C=%.2f gamma=%.2f\n", bundle.chosen_svm.c,
                bundle.chosen_svm.kernel.gamma);
  }

  if (session.has_cv()) {
    const auto& cm = session.cv().aggregate;
    util::Table metrics({"metric", "value"});
    metrics.add_row({"TNR", util::format("%.2f%%", 100 * cm.tnr())});
    metrics.add_row({"TPR", util::format("%.2f%%", 100 * cm.tpr())});
    metrics.add_row({"Precision", util::format("%.2f%%", 100 * cm.precision())});
    metrics.add_row({"Accuracy", util::format("%.2f%%", 100 * cm.accuracy())});
    metrics.add_row({"F1", util::format("%.2f", cm.f1())});
    metrics.add_row({"Support vectors",
                     std::to_string(bundle.model.num_support_vectors())});
    std::printf("\n%d-fold cross-validation (Table II metrics):\n%s",
                spec.cv_folds, metrics.render().c_str());
  }

  // The persisted bundle is the deployment artifact: classify every node of
  // this SoC straight from disk (bit-identical to the in-process model).
  const core::SessionPrediction& prediction = session.predict();
  std::printf("\npredicted %zu nodes in %.4fs (simulation: %.2fs, %.0fx)\n",
              prediction.cells.size(), prediction.predict_seconds,
              campaign.simulation_seconds,
              campaign.simulation_seconds /
                  std::max(prediction.predict_seconds, 1e-9));
  if (argc > 3) {
    core::write_predictions_csv(argv[3], session.model(), prediction);
    std::printf("predictions written to %s\n", argv[3]);
  }

  // Cross-netlist transfer: reload the saved .ssmd and classify a *modified*
  // design — same workload, doubled data memory — that the campaign never
  // simulated. The digest check must be overridden deliberately.
  core::ScenarioSpec modified = spec;
  modified.name = spec.name + "-modified";
  modified.campaign.mem_kb = spec.campaign.mem_kb * 2;
  core::Session transfer(modified, db);
  transfer.adopt_model(core::read_model_file(session.model_path()),
                       /*allow_digest_mismatch=*/true);
  const core::SessionPrediction& transferred = transfer.predict();

  util::Table classes({"module class", "trained SoC", "modified SoC"});
  for (std::size_t c = 0; c < netlist::kModuleClassCount; ++c) {
    classes.add_row(
        {std::string(
             netlist::module_class_name(static_cast<netlist::ModuleClass>(c))),
         util::format("%.2f%%", prediction.class_percent[c]),
         util::format("%.2f%%", transferred.class_percent[c])});
  }
  std::printf("\nhigh-sensitivity share per module class (SVM prediction):\n%s",
              classes.render().c_str());
  std::printf(
      "\nmodel bundle %s transferred to a %d KiB variant: %zu nodes "
      "classified without a single new simulation\n",
      session.model_path().c_str(), modified.campaign.mem_kb,
      transferred.cells.size());
  return 0;
}
