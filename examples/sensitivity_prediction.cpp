// The full SSRESF flow (Fig. 1): dynamic-simulation phase feeding the
// machine-learning phase. Trains the SVM on campaign data, cross-validates,
// and uses the trained model as a fast sensitive-node prediction service —
// then shows the speed-up over re-running simulation.
#include <cstdio>

#include "core/ssresf.h"
#include "soc/programs.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ssresf;

int main() {
  soc::SocConfig cfg;
  cfg.mem_bytes = 64 * 1024;
  cfg.cpu_isa = "RV32I";
  cfg.bus = soc::BusProtocol::kAhb;
  cfg.bus_width_bits = 64;
  const soc::Workload workload =
      soc::benchmark_workload(soc::CoreConfig::from_isa(cfg.cpu_isa));
  const soc::Program programs[] = {soc::assemble(workload.source)};
  const soc::SocModel model = soc::build_soc(cfg, programs);

  core::PipelineConfig pipeline;
  pipeline.campaign.clustering.num_clusters = 6;
  pipeline.campaign.sampling.fraction = 0.02;
  pipeline.campaign.sampling.min_per_cluster = 10;
  pipeline.campaign.sampling.max_per_cluster = 40;
  pipeline.campaign.seed = 3;
  pipeline.cv_folds = 10;
  pipeline.run_grid_search = true;  // optimize (C, gamma) as in Sec. IV-B

  const auto db = radiation::SoftErrorDatabase::default_database();
  const auto result = core::run_pipeline(model, pipeline, db);

  std::printf("campaign: %zu injections, %.2fs of simulation\n",
              result.campaign.records.size(),
              result.campaign.simulation_seconds);
  std::printf("grid search chose C=%.2f gamma=%.2f\n", result.chosen_svm.c,
              result.chosen_svm.kernel.gamma);

  const auto& cm = result.cv.aggregate;
  util::Table metrics({"metric", "value"});
  metrics.add_row({"TNR", util::format("%.2f%%", 100 * cm.tnr())});
  metrics.add_row({"TPR", util::format("%.2f%%", 100 * cm.tpr())});
  metrics.add_row({"Precision", util::format("%.2f%%", 100 * cm.precision())});
  metrics.add_row({"Accuracy", util::format("%.2f%%", 100 * cm.accuracy())});
  metrics.add_row({"F1", util::format("%.2f", cm.f1())});
  metrics.add_row({"Support vectors",
                   std::to_string(result.model.num_support_vectors())});
  std::printf("\n10-fold cross-validation (Table II metrics):\n%s",
              metrics.render().c_str());

  // The trained model as a prediction service: classify some nodes the
  // simulation never touched.
  std::vector<netlist::CellId> probe_nodes;
  for (const auto id : model.netlist.all_cells()) {
    const auto kind = model.netlist.cell(id).kind;
    if (kind == netlist::CellKind::kConst0 || kind == netlist::CellKind::kConst1)
      continue;
    if (probe_nodes.size() < 8 && id.index() % 97 == 0) probe_nodes.push_back(id);
  }
  const auto predictions =
      core::predict_nodes(model, result.model, result.scaler, probe_nodes);
  std::printf("\nprediction service examples:\n");
  for (std::size_t i = 0; i < probe_nodes.size(); ++i) {
    std::printf("  %-40s -> %s sensitivity\n",
                model.netlist.cell_path(probe_nodes[i]).c_str(),
                predictions[i] == 1 ? "HIGH" : "low");
  }

  std::printf("\ntiming: simulation %.2fs vs train+predict %.4fs (%.0fx)\n",
              result.campaign.simulation_seconds,
              result.train_seconds + result.predict_seconds,
              result.campaign.simulation_seconds /
                  (result.train_seconds + result.predict_seconds));
  return 0;
}
