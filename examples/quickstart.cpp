// Quickstart: build a tiny gate-level circuit, simulate it, inject a single
// SEU through the VPI-style interface, and watch the soft error appear on
// the output trace. Start here to learn the SSRESF public API.
#include <cstdio>

#include "netlist/builder.h"
#include "radiation/injector.h"
#include "sim/event_sim.h"
#include "sim/testbench.h"

using namespace ssresf;

int main() {
  // --- 1. Describe a circuit: a 4-bit counter with a parity output. -------
  netlist::NetlistBuilder b("counter");
  const auto clk = b.input("clk");
  const auto rstn = b.input("rstn");
  std::vector<netlist::NetId> q(4);
  std::vector<netlist::CellId> flops(4);
  {
    const auto scope = b.scope("count", netlist::ModuleClass::kCpu);
    // q <= q + 1 every cycle (ripple increment).
    std::vector<netlist::NetId> d(4);
    for (int i = 0; i < 4; ++i) d[i] = b.wire();
    for (int i = 0; i < 4; ++i) {
      const auto ff = b.dffr(d[i], clk, rstn, "q" + std::to_string(i));
      q[static_cast<std::size_t>(i)] = ff.q;
      flops[static_cast<std::size_t>(i)] = ff.cell;
    }
    auto carry = b.one();
    for (int i = 0; i < 4; ++i) {
      b.drive(d[i], b.xor2(q[static_cast<std::size_t>(i)], carry));
      carry = b.and2(q[static_cast<std::size_t>(i)], carry);
    }
  }
  const auto parity =
      b.xor2(b.xor2(q[0], q[1]), b.xor2(q[2], q[3]));
  b.output(parity, "parity");
  b.output_bus(q, "count");
  const netlist::Netlist netlist = b.finish();
  std::printf("built '%s': %zu cells, %zu nets\n", netlist.name().c_str(),
              netlist.num_cells(), netlist.num_nets());

  // --- 2. Simulate the golden run. ------------------------------------------
  sim::TestbenchConfig tb_cfg;
  tb_cfg.clk = clk;
  tb_cfg.rstn = rstn;
  tb_cfg.monitored = {parity, q[0], q[1], q[2], q[3]};

  sim::EventSimulator golden_engine(netlist);
  sim::Testbench golden(golden_engine, tb_cfg);
  golden.reset();
  golden.run_cycles(12);

  // --- 3. Same run, but a particle strikes bit 2 at cycle 8. ----------------
  sim::EventSimulator faulty_engine(netlist);
  sim::Testbench faulty(faulty_engine, tb_cfg);
  const radiation::Injector injector(netlist);
  radiation::FaultEvent seu;
  seu.target.kind = radiation::FaultKind::kSeu;
  seu.target.cell = flops[2];
  seu.time_ps = faulty.sample_time(8) + 50;
  injector.schedule(faulty, seu);
  faulty.reset();
  faulty.run_cycles(12);

  // --- 4. Compare traces: the SEU becomes a visible soft error. -------------
  std::printf("\ncycle  golden  faulty   (parity, count bits 0..3)\n");
  for (std::size_t c = 0; c < golden.trace().num_cycles(); ++c) {
    std::printf("%5zu  %s   %s%s\n", c,
                golden.trace().cycle_string(c).c_str(),
                faulty.trace().cycle_string(c).c_str(),
                golden.trace().cycle(c) == faulty.trace().cycle(c) ? ""
                                                                   : "  <-- soft error");
  }
  const auto mismatch =
      sim::OutputTrace::first_mismatch(golden.trace(), faulty.trace());
  if (mismatch.has_value()) {
    std::printf("\nSEU on %s propagated to the outputs at cycle %zu\n",
                netlist.cell_path(flops[2]).c_str(), *mismatch);
  }
  return 0;
}
