// Netlist tooling tour: export a generated SoC to structural Verilog,
// parse it back, print design statistics and the Eq. 1 clustering, and dump
// a VCD waveform of the first cycles — the artifacts an engineer would
// inspect when bringing SSRESF up on their own design.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "cluster/kcluster.h"
#include "netlist/stats.h"
#include "netlist/verilog.h"
#include "sim/event_sim.h"
#include "sim/testbench.h"
#include "sim/vcd.h"
#include "soc/programs.h"
#include "soc/run.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ssresf;

int main() {
  soc::SocConfig cfg;
  cfg.mem_bytes = 16 * 1024;
  cfg.cpu_isa = "RV32I";
  cfg.bus_width_bits = 32;
  cfg.imem_words = 256;
  const soc::Program programs[] = {
      soc::assemble(soc::fibonacci_workload(6).source)};
  const soc::SocModel model = soc::build_soc(cfg, programs);

  // --- structural Verilog round trip -----------------------------------------
  const std::string verilog = netlist::write_verilog(model.netlist);
  std::ofstream("soc.v") << verilog;
  const netlist::Netlist parsed = netlist::parse_verilog(verilog);
  std::printf("wrote soc.v (%zu bytes); parsed back %zu cells (%s)\n",
              verilog.size(), parsed.num_cells(),
              parsed.num_cells() == model.netlist.num_cells() ? "lossless"
                                                              : "MISMATCH");

  // --- design statistics --------------------------------------------------------
  const auto stats = netlist::compute_stats(model.netlist);
  util::Table table({"metric", "value"});
  table.add_row({"cells", std::to_string(stats.num_cells)});
  table.add_row({"sequential", std::to_string(stats.num_sequential)});
  table.add_row({"combinational", std::to_string(stats.num_combinational)});
  table.add_row({"memory macros", std::to_string(stats.num_memory_macros)});
  table.add_row({"memory bits", std::to_string(stats.memory_bits)});
  table.add_row({"max logic depth", std::to_string(stats.max_logic_depth)});
  table.add_row({"critical path",
                 util::format("%lld ps", static_cast<long long>(
                     netlist::estimate_critical_path_ps(model.netlist)))});
  std::printf("\n%s", table.render().c_str());

  // --- Algorithm 1 clustering ------------------------------------------------------
  cluster::ClusteringConfig ccfg;
  ccfg.num_clusters = 6;
  util::Rng rng(1);
  const auto clustering = cluster::cluster_cells(model.netlist, ccfg, rng);
  std::printf("\nEq. 1 clustering (KN=6, LN=%d, %d iterations):\n",
              clustering.layer_depth, clustering.iterations);
  for (std::size_t k = 0; k < clustering.clusters.size(); ++k) {
    if (clustering.clusters[k].empty()) continue;
    // Representative scope = scope of the first member.
    const auto scope =
        model.netlist.cell(clustering.clusters[k].front()).scope;
    std::printf("  cluster %zu: %6zu cells (w=%llu)  e.g. %s\n", k,
                clustering.clusters[k].size(),
                static_cast<unsigned long long>(clustering.cluster_weight[k]),
                model.netlist.scope_path(scope).c_str());
  }

  // --- VCD waveform dump ---------------------------------------------------------------
  sim::EventSimulator engine(model.netlist);
  std::ostringstream vcd_stream;
  {
    std::vector<netlist::NetId> watch = model.monitored;
    sim::VcdWriter vcd(vcd_stream, model.netlist, watch);
    vcd.attach(engine);
    sim::TestbenchConfig tb_cfg;
    tb_cfg.clk = model.clk;
    tb_cfg.rstn = model.rstn;
    tb_cfg.monitored = model.monitored;
    tb_cfg.clock_period_ps = soc::pick_clock_period(model.netlist);
    sim::Testbench tb(engine, tb_cfg);
    tb.reset();
    tb.run_cycles(40);
  }
  std::ofstream("soc.vcd") << vcd_stream.str();
  std::printf("\nwrote soc.vcd (%zu bytes) covering reset + 40 cycles\n",
              vcd_stream.str().size());
  return 0;
}
