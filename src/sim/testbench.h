#pragma once

#include <functional>
#include <map>
#include <optional>

#include "sim/engine.h"
#include "sim/trace.h"

namespace ssresf::sim {

/// Clock/reset driver and sampling harness around an Engine.
///
/// The testbench owns the timeline: it toggles the clock, holds reset for the
/// configured number of cycles, samples the monitored nets just before every
/// rising edge, and interleaves scheduled actions (fault injections) at their
/// exact picosecond times.
struct TestbenchConfig {
  NetId clk;
  NetId rstn;  // active-low reset input; kNoNet if the design has none
  std::vector<NetId> monitored;
  std::uint64_t clock_period_ps = 1000;
  int reset_cycles = 4;
};

class Testbench {
 public:
  Testbench(Engine& engine, TestbenchConfig config);

  /// Apply the reset sequence: rstn low for reset_cycles cycles, then high.
  /// Counts towards the trace like normal cycles.
  void reset();

  /// Run `n` full clock cycles, sampling once per cycle. Stops early only
  /// when a reference trace is set (see compare_against) and the divergence
  /// plus its confirmation window have been observed.
  void run_cycles(int n);

  /// Resume a timeline already simulated up to `cycle` full cycles: the
  /// engine must hold the matching state (restored from an Engine snapshot
  /// taken at that point) and `prefix` supplies the samples of the cycles
  /// already run, so the final trace is indistinguishable from an
  /// uninterrupted run. The checkpoint fast-path of the fault-injection
  /// campaign is built on this.
  void resume_at(std::uint64_t cycle, OutputTrace prefix);

  /// Prefix-free resume: like the overload above but without materialising
  /// the already-run samples. trace() then holds only the cycles sampled
  /// after the resume point, while cycle numbering (cycles_run,
  /// first_divergence, reference comparison) stays absolute. The campaign's
  /// checkpoint fast-path uses this — the prefix is the golden trace, which
  /// the reference comparison already holds, so copying it per injection
  /// bought nothing but allocation churn.
  void resume_at(std::uint64_t cycle);

  /// Return the testbench to its just-constructed state (empty trace, no
  /// scheduled actions, no reference, clock low, reset deasserted) so one
  /// instance can drive many faulty runs. The engine's dynamic state is the
  /// caller's business — restore or reset it first.
  void restart();

  /// Stream-compare every sampled cycle against `golden` (not owned; must
  /// outlive the testbench). After the first mismatching cycle, run_cycles
  /// runs `confirm_cycles` further cycles and then stops — a faulty run is
  /// abandoned once the soft error is established, instead of simulating to
  /// the end. Runs that never diverge (masked faults) are unaffected. A
  /// negative `confirm_cycles` only tracks the divergence without ever
  /// stopping early (the full-simulation execution mode).
  void compare_against(const OutputTrace* golden, int confirm_cycles);

  /// First sampled cycle that differed from the reference, if any.
  [[nodiscard]] std::optional<std::size_t> first_divergence() const {
    return divergence_;
  }
  /// True when run_cycles stopped at the confirmation window's end.
  [[nodiscard]] bool stopped_early() const { return stopped_early_; }

  /// Schedule a callback at an absolute time (ps). Actions scheduled in the
  /// past run at the start of the next run_cycles call.
  void at(std::uint64_t time_ps, std::function<void(Engine&)> action);

  [[nodiscard]] const OutputTrace& trace() const { return trace_; }
  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] std::uint64_t cycles_run() const { return cycles_; }
  [[nodiscard]] const TestbenchConfig& config() const { return config_; }

  /// Time of the sampling point of cycle index `c` (0-based, counting every
  /// cycle the testbench has or will run, including reset cycles).
  [[nodiscard]] std::uint64_t sample_time(std::uint64_t c) const {
    return c * config_.clock_period_ps + config_.clock_period_ps / 2;
  }

 private:
  void drain_actions_until(std::uint64_t time_ps);
  void sample();

  Engine& engine_;
  TestbenchConfig config_;
  OutputTrace trace_;
  std::uint64_t cycles_ = 0;
  std::uint64_t trace_offset_ = 0;  // cycles resumed over without samples
  std::multimap<std::uint64_t, std::function<void(Engine&)>> actions_;

  const OutputTrace* reference_ = nullptr;
  int confirm_cycles_ = 0;
  std::optional<std::size_t> divergence_;
  std::optional<std::uint64_t> stop_after_cycle_;
  bool stopped_early_ = false;
};

}  // namespace ssresf::sim
