#pragma once

#include <functional>
#include <map>

#include "sim/engine.h"
#include "sim/trace.h"

namespace ssresf::sim {

/// Clock/reset driver and sampling harness around an Engine.
///
/// The testbench owns the timeline: it toggles the clock, holds reset for the
/// configured number of cycles, samples the monitored nets just before every
/// rising edge, and interleaves scheduled actions (fault injections) at their
/// exact picosecond times.
struct TestbenchConfig {
  NetId clk;
  NetId rstn;  // active-low reset input; kNoNet if the design has none
  std::vector<NetId> monitored;
  std::uint64_t clock_period_ps = 1000;
  int reset_cycles = 4;
};

class Testbench {
 public:
  Testbench(Engine& engine, TestbenchConfig config);

  /// Apply the reset sequence: rstn low for reset_cycles cycles, then high.
  /// Counts towards the trace like normal cycles.
  void reset();

  /// Run `n` full clock cycles, sampling once per cycle.
  void run_cycles(int n);

  /// Schedule a callback at an absolute time (ps). Actions scheduled in the
  /// past run at the start of the next run_cycles call.
  void at(std::uint64_t time_ps, std::function<void(Engine&)> action);

  [[nodiscard]] const OutputTrace& trace() const { return trace_; }
  [[nodiscard]] Engine& engine() { return engine_; }
  [[nodiscard]] std::uint64_t cycles_run() const { return cycles_; }
  [[nodiscard]] const TestbenchConfig& config() const { return config_; }

  /// Time of the sampling point of cycle index `c` (0-based, counting every
  /// cycle the testbench has or will run, including reset cycles).
  [[nodiscard]] std::uint64_t sample_time(std::uint64_t c) const {
    return c * config_.clock_period_ps + config_.clock_period_ps / 2;
  }

 private:
  void drain_actions_until(std::uint64_t time_ps);
  void sample();

  Engine& engine_;
  TestbenchConfig config_;
  OutputTrace trace_;
  std::uint64_t cycles_ = 0;
  std::multimap<std::uint64_t, std::function<void(Engine&)>> actions_;
};

}  // namespace ssresf::sim
