#include "sim/state_codec.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "util/bytes.h"
#include "util/error.h"

namespace ssresf::sim {

namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'S', 'E', 'S'};
constexpr std::uint8_t kVersion = 1;

// Minimum run worth a (control, byte) pair instead of literals.
constexpr std::size_t kMinRun = 3;
constexpr std::size_t kMaxRun = 130;      // 3 + 127
constexpr std::size_t kMaxLiteral = 128;  // 1 + 127

}  // namespace

std::vector<std::uint8_t> rle_compress(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out;
  out.reserve(data.size() / 4 + 16);
  std::size_t i = 0;
  std::size_t literal_start = 0;

  const auto flush_literals = [&](std::size_t end) {
    while (literal_start < end) {
      const std::size_t n = std::min(end - literal_start, kMaxLiteral);
      out.push_back(static_cast<std::uint8_t>(n - 1));
      out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(literal_start),
                 data.begin() + static_cast<std::ptrdiff_t>(literal_start + n));
      literal_start += n;
    }
  };

  while (i < data.size()) {
    std::size_t run = 1;
    while (i + run < data.size() && data[i + run] == data[i] && run < kMaxRun) {
      ++run;
    }
    if (run >= kMinRun) {
      flush_literals(i);
      out.push_back(static_cast<std::uint8_t>(128 + (run - kMinRun)));
      out.push_back(data[i]);
      i += run;
      literal_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(data.size());
  return out;
}

std::vector<std::uint8_t> rle_decompress(std::span<const std::uint8_t> data,
                                         std::size_t expected_size) {
  // A (control, byte) pair expands to at most kMaxRun bytes, so a declared
  // size beyond that bound is malformed — reject before reserving, keeping
  // allocation proportional to the actual input.
  if (expected_size > data.size() * kMaxRun) {
    throw InvalidArgument("rle_decompress: declared size exceeds input bound");
  }
  std::vector<std::uint8_t> out;
  out.reserve(expected_size);
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint8_t control = data[i++];
    if (control < 128) {
      const std::size_t n = static_cast<std::size_t>(control) + 1;
      if (i + n > data.size()) {
        throw InvalidArgument("rle_decompress: truncated literal run");
      }
      out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(i),
                 data.begin() + static_cast<std::ptrdiff_t>(i + n));
      i += n;
    } else {
      if (i >= data.size()) {
        throw InvalidArgument("rle_decompress: truncated repeat run");
      }
      const std::size_t n = static_cast<std::size_t>(control) - 128 + kMinRun;
      out.insert(out.end(), n, data[i++]);
    }
    if (out.size() > expected_size) {
      throw InvalidArgument("rle_decompress: output exceeds declared size");
    }
  }
  if (out.size() != expected_size) {
    throw InvalidArgument("rle_decompress: output shorter than declared size");
  }
  return out;
}

std::vector<std::uint8_t> encode_state(const Engine& engine,
                                       const EngineState& state,
                                       StateCodec codec) {
  util::ByteWriter payload;
  engine.serialize_state(state, payload);
  const std::vector<std::uint8_t> raw = payload.take();

  std::vector<std::uint8_t> body;
  if (codec == StateCodec::kRle) {
    body = rle_compress(raw);
    // A blob that does not shrink is stored raw — decode cost for nothing.
    if (body.size() >= raw.size()) {
      codec = StateCodec::kRaw;
      body = raw;
    }
  } else {
    body = raw;
  }

  util::ByteWriter out;
  out.bytes(kMagic, sizeof(kMagic));
  out.u8(kVersion);
  out.u8(static_cast<std::uint8_t>(codec));
  const std::string_view name = engine.name();
  out.sized_bytes(name.data(), name.size());
  out.varint(raw.size());
  out.sized_bytes(body.data(), body.size());
  return out.take();
}

std::unique_ptr<EngineState> decode_state(const Engine& engine,
                                          std::span<const std::uint8_t> blob) {
  try {
    util::ByteReader in(blob);
    std::uint8_t magic[4];
    in.bytes(magic, sizeof(magic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      throw InvalidArgument("decode_state: bad magic (not an SSES blob)");
    }
    const std::uint8_t version = in.u8();
    if (version != kVersion) {
      throw InvalidArgument("decode_state: unsupported version " +
                            std::to_string(version));
    }
    const std::uint8_t codec = in.u8();
    const auto name = in.byte_vec<char>();
    if (std::string_view(name.data(), name.size()) != engine.name()) {
      throw InvalidArgument(
          "decode_state: snapshot was encoded by engine '" +
          std::string(name.data(), name.size()) + "', not '" +
          std::string(engine.name()) + "'");
    }
    const std::uint64_t raw_size = in.varint();
    auto body = in.byte_vec<std::uint8_t>();
    if (!in.at_end()) {
      throw InvalidArgument("decode_state: trailing bytes after payload");
    }

    std::vector<std::uint8_t> raw;
    switch (static_cast<StateCodec>(codec)) {
      case StateCodec::kRaw:
        if (body.size() != raw_size) {
          throw InvalidArgument("decode_state: raw payload size mismatch");
        }
        raw = std::move(body);
        break;
      case StateCodec::kRle:
        raw = rle_decompress(body, static_cast<std::size_t>(raw_size));
        break;
      default:
        throw InvalidArgument("decode_state: unknown codec " +
                              std::to_string(codec));
    }

    util::ByteReader payload(raw);
    auto decoded = engine.deserialize_state(payload);
    if (!payload.at_end()) {
      throw InvalidArgument("decode_state: trailing bytes in payload");
    }
    return decoded;
  } catch (const InvalidArgument&) {
    throw;
  } catch (const Error& e) {
    // Truncation errors from ByteReader surface as InvalidArgument: callers
    // treat any malformed blob uniformly.
    throw InvalidArgument(std::string("decode_state: ") + e.what());
  }
}

}  // namespace ssresf::sim
