#include "sim/event_sim.h"

#include <algorithm>

#include "netlist/stats.h"
#include "util/bytes.h"
#include "util/error.h"

namespace ssresf::sim {

using netlist::as_input;
using netlist::Cell;
using netlist::CellKind;
using netlist::eval_cell;
using netlist::Fanout;
using netlist::from_bool;
using netlist::is_flip_flop;
using netlist::is_known;
using netlist::logic_not;
using netlist::MemoryInfo;
using netlist::spec;

EventSimulator::EventSimulator(const Netlist& netlist) : netlist_(netlist) {
  if (!netlist.finalized()) {
    throw InvalidArgument("EventSimulator requires a finalized netlist");
  }
  const auto depths = netlist::compute_logic_depths(netlist_);
  init_order_ = netlist_.all_cells();
  std::stable_sort(init_order_.begin(), init_order_.end(),
                   [&](CellId a, CellId b) {
                     return depths[a.index()] < depths[b.index()];
                   });
  reset_state();
}

void EventSimulator::reset_state() {
  now_ = 0;
  seq_ = 0;
  events_processed_ = 0;
  driven_.assign(netlist_.num_nets(), Logic::X);
  forced_val_.assign(netlist_.num_nets(), Logic::X);
  forced_.assign(netlist_.num_nets(), false);
  pending_gen_.assign(netlist_.num_nets(), 0);
  has_pending_.assign(netlist_.num_nets(), false);
  ff_q_.assign(netlist_.num_cells(), Logic::X);
  // At most one live transition per net (inertial cancelling keeps stale
  // entries around only briefly): pre-size the heap's backing vector so the
  // first simulated cycles don't pay repeated growth.
  std::vector<Event> backing;
  backing.reserve(netlist_.num_nets() / 4 + 64);
  queue_ = decltype(queue_)(std::greater<>{}, std::move(backing));

  mems_.clear();
  init_constants_and_memories();
}

struct EventSimulator::State final : EngineState {
  std::uint64_t now = 0;
  std::uint64_t seq = 0;
  std::uint64_t events_processed = 0;
  std::vector<Logic> driven;
  std::vector<Logic> forced_val;
  std::vector<bool> forced;
  std::vector<std::uint64_t> pending_gen;
  std::vector<bool> has_pending;
  std::vector<Logic> ff_q;
  std::vector<std::vector<std::uint64_t>> mems;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
};

std::unique_ptr<EngineState> EventSimulator::save_state() const {
  auto state = std::make_unique<State>();
  state->now = now_;
  state->seq = seq_;
  state->events_processed = events_processed_;
  state->driven = driven_;
  state->forced_val = forced_val_;
  state->forced = forced_;
  state->pending_gen = pending_gen_;
  state->has_pending = has_pending_;
  state->ff_q = ff_q_;
  state->mems = mems_;
  state->queue = queue_;
  return state;
}

namespace {

/// Pending transitions that are still live (not cancelled), in application
/// order. Two engines with equal state vectors and equal live sequences
/// evolve identically; absolute seq/gen counters are bookkeeping.
struct LiveEvent {
  std::uint64_t time;
  NetId net;
  Logic value;
  bool operator==(const LiveEvent&) const = default;
};

template <typename Queue>
std::vector<LiveEvent> live_events(Queue queue,
                                   const std::vector<bool>& has_pending,
                                   const std::vector<std::uint64_t>& gen) {
  std::vector<LiveEvent> out;
  while (!queue.empty()) {
    const auto& e = queue.top();
    if (has_pending[e.net.index()] && e.gen == gen[e.net.index()]) {
      out.push_back({e.time, e.net, e.value});
    }
    queue.pop();
  }
  return out;  // (time, seq) ascending: the order events would apply in
}

}  // namespace

bool EventSimulator::state_matches(const EngineState& state) const {
  const auto* s = dynamic_cast<const State*>(&state);
  if (s == nullptr) return false;
  if (now_ != s->now || driven_ != s->driven || ff_q_ != s->ff_q ||
      forced_ != s->forced || has_pending_ != s->has_pending ||
      mems_ != s->mems) {
    return false;
  }
  // Forced overlay values matter only where a force is active (released
  // forces leave stale values behind).
  for (std::size_t n = 0; n < forced_.size(); ++n) {
    if (forced_[n] && forced_val_[n] != s->forced_val[n]) return false;
  }
  return live_events(queue_, has_pending_, pending_gen_) ==
         live_events(s->queue, s->has_pending, s->pending_gen);
}

void EventSimulator::serialize_state(const EngineState& state,
                                     util::ByteWriter& out) const {
  const auto* s = dynamic_cast<const State*>(&state);
  if (s == nullptr) {
    throw InvalidArgument(
        "serialize_state: snapshot is not an event-engine state");
  }
  out.varint(s->now);
  out.varint(s->events_processed);
  out.byte_vec(s->driven);
  out.byte_vec(s->forced_val);
  std::vector<std::uint8_t> forced(s->forced.size());
  for (std::size_t n = 0; n < forced.size(); ++n) forced[n] = s->forced[n];
  out.byte_vec(forced);
  out.byte_vec(s->ff_q);
  out.varint(s->mems.size());
  for (const auto& mem : s->mems) out.u64_vec(mem);
  // The priority queue is serialized in normalized form: only live (not
  // cancelled) transitions, in application order. Sequence numbers and
  // per-net generations are bookkeeping and are re-minted on decode; the
  // round-tripped snapshot still satisfies state_matches because that
  // comparison is over the same normalization.
  const std::vector<LiveEvent> live =
      live_events(s->queue, s->has_pending, s->pending_gen);
  out.varint(live.size());
  for (const LiveEvent& e : live) {
    out.varint(e.time);
    out.varint(e.net.index());
    out.u8(static_cast<std::uint8_t>(e.value));
  }
}

std::unique_ptr<EngineState> EventSimulator::deserialize_state(
    util::ByteReader& in) const {
  auto s = std::make_unique<State>();
  s->now = in.varint();
  s->events_processed = in.varint();
  s->driven = in.byte_vec<Logic>();
  s->forced_val = in.byte_vec<Logic>();
  const auto forced = in.byte_vec<std::uint8_t>();
  s->forced.assign(forced.size(), false);
  for (std::size_t n = 0; n < forced.size(); ++n) s->forced[n] = forced[n] != 0;
  s->ff_q = in.byte_vec<Logic>();
  // element_count bounds the count by the remaining input (each array is at
  // least its one-byte length prefix), so a malformed count cannot drive an
  // oversized allocation.
  const std::size_t num_mems = in.element_count(1);
  s->mems.reserve(num_mems);
  for (std::size_t m = 0; m < num_mems; ++m) s->mems.push_back(in.u64_vec());
  if (s->driven.size() != netlist_.num_nets() ||
      s->forced_val.size() != netlist_.num_nets() ||
      s->forced.size() != netlist_.num_nets() ||
      s->ff_q.size() != netlist_.num_cells()) {
    throw InvalidArgument("deserialize_state: snapshot from a different design");
  }
  // Memory arrays must match this engine's shape exactly: a truncated array
  // would otherwise become an out-of-bounds access on the next memory read.
  if (s->mems.size() != mems_.size()) {
    throw InvalidArgument("deserialize_state: memory count mismatch");
  }
  for (std::size_t m = 0; m < mems_.size(); ++m) {
    if (s->mems[m].size() != mems_[m].size()) {
      throw InvalidArgument("deserialize_state: memory array size mismatch");
    }
  }
  // Rebuild the pending-transition machinery from the live list. schedule()
  // maintains at most one live transition per net, so generation 1 per net
  // is enough; seq restarts at the live count, preserving the application
  // order of same-time events.
  s->pending_gen.assign(netlist_.num_nets(), 0);
  s->has_pending.assign(netlist_.num_nets(), false);
  const std::uint64_t num_live = in.varint();
  for (std::uint64_t i = 0; i < num_live; ++i) {
    Event e;
    e.time = in.varint();
    const std::uint64_t net = in.varint();
    const std::uint8_t value = in.u8();
    if (net >= netlist_.num_nets() || value > 3 || e.time < s->now ||
        s->has_pending[static_cast<std::size_t>(net)]) {
      throw InvalidArgument("deserialize_state: malformed event list");
    }
    e.net = NetId{static_cast<std::uint32_t>(net)};
    e.value = static_cast<Logic>(value);
    e.seq = i + 1;
    e.gen = 1;
    s->pending_gen[static_cast<std::size_t>(net)] = 1;
    s->has_pending[static_cast<std::size_t>(net)] = true;
    s->queue.push(e);
  }
  s->seq = num_live;
  return s;
}

void EventSimulator::restore_state(const EngineState& state) {
  const auto* s = dynamic_cast<const State*>(&state);
  if (s == nullptr) {
    throw InvalidArgument("restore_state: snapshot is not an event-engine state");
  }
  if (s->driven.size() != netlist_.num_nets() ||
      s->ff_q.size() != netlist_.num_cells()) {
    throw InvalidArgument("restore_state: snapshot from a different design");
  }
  now_ = s->now;
  seq_ = s->seq;
  events_processed_ = s->events_processed;
  driven_ = s->driven;
  forced_val_ = s->forced_val;
  forced_ = s->forced;
  pending_gen_ = s->pending_gen;
  has_pending_ = s->has_pending;
  ff_q_ = s->ff_q;
  mems_ = s->mems;
  queue_ = s->queue;
}

void EventSimulator::init_constants_and_memories() {
  // Memory arrays from the netlist's initial contents.
  std::vector<std::int32_t> mem_count;
  for (const CellId id : netlist_.all_cells()) {
    const Cell& cell = netlist_.cell(id);
    if (cell.kind != CellKind::kMemory) continue;
    const MemoryInfo& mi = netlist_.memory(cell.memory_index);
    if (mems_.size() <= static_cast<std::size_t>(cell.memory_index)) {
      mems_.resize(static_cast<std::size_t>(cell.memory_index) + 1);
    }
    auto& array = mems_[static_cast<std::size_t>(cell.memory_index)];
    if (mi.init.empty()) {
      array.assign(mi.words, 0);
    } else {
      array = mi.init;
    }
  }

  // Constants drive their outputs from time zero.
  for (const CellId id : netlist_.all_cells()) {
    const Cell& cell = netlist_.cell(id);
    if (cell.kind == CellKind::kConst0) {
      driven_[cell.outputs[0].index()] = Logic::L0;
    } else if (cell.kind == CellKind::kConst1) {
      driven_[cell.outputs[0].index()] = Logic::L1;
    }
  }

  // One settling sweep in topological order so constant cones start resolved
  // (everything else is X until inputs arrive).
  for (const CellId id : init_order_) {
    const Cell& cell = netlist_.cell(id);
    if (netlist::is_sequential(cell.kind)) {
      if (cell.kind == CellKind::kMemory) {
        // Async read with X address yields X — already the default.
      }
      continue;
    }
    if (cell.kind == CellKind::kConst0 || cell.kind == CellKind::kConst1) {
      continue;
    }
    std::vector<Logic> ins;
    ins.reserve(cell.inputs.size());
    for (const NetId in : cell.inputs) ins.push_back(driven_[in.index()]);
    driven_[cell.outputs[0].index()] = eval_cell(cell.kind, ins);
  }
}

Logic EventSimulator::effective(NetId net) const {
  return forced_[net.index()] ? forced_val_[net.index()]
                              : driven_[net.index()];
}

Logic EventSimulator::value(NetId net) const { return effective(net); }

void EventSimulator::set_input(NetId net, Logic v) {
  if (!netlist_.net(net).is_primary_input) {
    throw InvalidArgument("set_input on non-primary-input net '" +
                          netlist_.net_name(net) + "'");
  }
  const Logic old_driven = driven_[net.index()];
  if (old_driven == v) return;
  driven_[net.index()] = v;
  if (!forced_[net.index()]) propagate_change(net, old_driven, v);
}

void EventSimulator::advance_to(std::uint64_t time_ps) {
  while (!queue_.empty() && queue_.top().time <= time_ps) {
    const Event ev = queue_.top();
    queue_.pop();
    if (ev.gen != pending_gen_[ev.net.index()]) continue;  // cancelled
    now_ = ev.time;
    apply_event(ev);
  }
  now_ = std::max(now_, time_ps);
}

void EventSimulator::schedule(NetId net, Logic v, std::uint64_t time) {
  const auto n = net.index();
  if (has_pending_[n]) {
    ++pending_gen_[n];  // cancel the pending transition (inertial behaviour)
    if (v == driven_[n]) {
      has_pending_[n] = false;  // glitch collapsed entirely
      return;
    }
    queue_.push(Event{time, ++seq_, net, v, pending_gen_[n]});
    return;
  }
  if (v == driven_[n]) return;  // no change
  ++pending_gen_[n];
  has_pending_[n] = true;
  queue_.push(Event{time, ++seq_, net, v, pending_gen_[n]});
}

void EventSimulator::apply_event(const Event& event) {
  const auto n = event.net.index();
  has_pending_[n] = false;
  ++events_processed_;
  const Logic old_driven = driven_[n];
  if (old_driven == event.value) return;
  driven_[n] = event.value;
  if (forced_[n]) return;  // hidden behind the force overlay
  propagate_change(event.net, old_driven, event.value);
}

void EventSimulator::propagate_change(NetId net, Logic old_effective,
                                      Logic new_effective) {
  if (has_observer_) observer_(net, now_, new_effective);
  for (const Fanout& fo : netlist_.fanout(net)) {
    const Cell& cell = netlist_.cell(fo.cell);
    switch (cell.kind) {
      case CellKind::kDff:
      case CellKind::kDffR:
      case CellKind::kDffE: {
        if (fo.input_index == 1) {  // CK
          const bool posedge =
              old_effective == Logic::L0 && new_effective == Logic::L1;
          const bool maybe_edge =
              (old_effective == Logic::X && new_effective == Logic::L1) ||
              (old_effective == Logic::L0 && new_effective == Logic::X);
          if (posedge) {
            on_clock_edge(fo.cell);
          } else if (maybe_edge) {
            // An edge may or may not have happened: degrade to X if capturing
            // would change the state.
            const Logic d = as_input(effective(cell.inputs[0]));
            if (d != ff_q_[fo.cell.index()]) {
              set_ff_state(fo.cell, Logic::X, /*immediate=*/false);
            }
          }
        } else if (fo.input_index == 2 && cell.kind != CellKind::kDff) {
          on_async_pin_change(fo.cell);
        }
        // D and EN changes are sampled at the next clock edge.
        break;
      }
      case CellKind::kMemory: {
        if (fo.input_index == 0) {  // CLK
          const bool posedge =
              old_effective == Logic::L0 && new_effective == Logic::L1;
          if (posedge) on_clock_edge(fo.cell);
        } else if (fo.input_index >= 3) {
          const MemoryInfo& mi = netlist_.memory(cell.memory_index);
          if (fo.input_index < 3u + mi.addr_bits) {
            evaluate_memory_read(fo.cell);  // async read path
          }
          // WDATA is sampled at the write edge.
        }
        break;
      }
      default:
        evaluate_comb(fo.cell);
        break;
    }
  }
}

void EventSimulator::evaluate_comb(CellId id) {
  const Cell& cell = netlist_.cell(id);
  Logic ins[4];
  for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
    ins[i] = effective(cell.inputs[i]);
  }
  const Logic out =
      eval_cell(cell.kind, std::span<const Logic>(ins, cell.inputs.size()));
  schedule(cell.outputs[0], out,
           now_ + static_cast<std::uint64_t>(spec(cell.kind).delay_ps));
}

void EventSimulator::on_clock_edge(CellId id) {
  const Cell& cell = netlist_.cell(id);
  if (is_flip_flop(cell.kind)) {
    if (cell.kind != CellKind::kDff) {
      const Logic rn = as_input(effective(cell.inputs[2]));
      if (rn == Logic::L0) return;  // held in reset by the async path
      if (rn == Logic::X) {
        if (ff_q_[id.index()] != Logic::L0) {
          set_ff_state(id, Logic::X, /*immediate=*/false);
        }
        return;
      }
    }
    if (cell.kind == CellKind::kDffE) {
      const Logic en = as_input(effective(cell.inputs[3]));
      if (en == Logic::L0) return;  // hold
      if (en == Logic::X) {
        const Logic d = as_input(effective(cell.inputs[0]));
        if (d != ff_q_[id.index()]) {
          set_ff_state(id, Logic::X, /*immediate=*/false);
        }
        return;
      }
    }
    const Logic d = as_input(effective(cell.inputs[0]));
    if (d != ff_q_[id.index()]) set_ff_state(id, d, /*immediate=*/false);
    return;
  }

  // Memory write port: WADDR sits after RADDR, WDATA after both.
  const MemoryInfo& mi = netlist_.memory(cell.memory_index);
  const Logic en = as_input(effective(cell.inputs[1]));
  const Logic we = as_input(effective(cell.inputs[2]));
  if (en != Logic::L1 || we != Logic::L1) return;
  std::uint64_t addr = 0;
  for (int i = 0; i < mi.addr_bits; ++i) {
    const Logic bit =
        as_input(effective(cell.inputs[3u + mi.addr_bits + i]));
    if (!is_known(bit)) return;  // write to unknown address: dropped
    if (bit == Logic::L1) addr |= 1ull << i;
  }
  if (addr >= mi.words) return;
  std::uint64_t word = 0;
  bool word_known = true;
  for (int i = 0; i < mi.width; ++i) {
    const Logic bit =
        as_input(effective(cell.inputs[3u + 2u * mi.addr_bits + i]));
    if (!is_known(bit)) {
      word_known = false;
      break;
    }
    if (bit == Logic::L1) word |= 1ull << i;
  }
  if (!word_known) return;
  mems_[static_cast<std::size_t>(cell.memory_index)][addr] = word;
  evaluate_memory_read(id);  // write-through visibility
}

void EventSimulator::on_async_pin_change(CellId id) {
  const Cell& cell = netlist_.cell(id);
  const Logic rn = as_input(effective(cell.inputs[2]));
  if (rn == Logic::L0) {
    if (ff_q_[id.index()] != Logic::L0) {
      set_ff_state(id, Logic::L0, /*immediate=*/false);
    }
  } else if (rn == Logic::X && ff_q_[id.index()] != Logic::L0) {
    set_ff_state(id, Logic::X, /*immediate=*/false);
  }
}

void EventSimulator::evaluate_memory_read(CellId id) {
  const Cell& cell = netlist_.cell(id);
  const MemoryInfo& mi = netlist_.memory(cell.memory_index);
  std::uint64_t addr = 0;
  bool addr_known = true;
  for (int i = 0; i < mi.addr_bits; ++i) {
    const Logic bit = as_input(effective(cell.inputs[3u + i]));
    if (!is_known(bit)) {
      addr_known = false;
      break;
    }
    if (bit == Logic::L1) addr |= 1ull << i;
  }
  const std::uint64_t delay =
      static_cast<std::uint64_t>(spec(CellKind::kMemory).delay_ps);
  if (!addr_known || addr >= mi.words) {
    for (int i = 0; i < mi.width; ++i) {
      schedule(cell.outputs[i], Logic::X, now_ + delay);
    }
    return;
  }
  const std::uint64_t word =
      mems_[static_cast<std::size_t>(cell.memory_index)][addr];
  for (int i = 0; i < mi.width; ++i) {
    schedule(cell.outputs[i], from_bool((word >> i) & 1), now_ + delay);
  }
}

void EventSimulator::set_ff_state(CellId id, Logic q, bool immediate) {
  const Cell& cell = netlist_.cell(id);
  ff_q_[id.index()] = q;
  const std::uint64_t delay =
      immediate ? 0 : static_cast<std::uint64_t>(spec(cell.kind).delay_ps);
  schedule(cell.outputs[0], q, now_ + delay);
  schedule(cell.outputs[1], logic_not(q), now_ + delay);
}

void EventSimulator::force_net(NetId net, Logic v) {
  const auto n = net.index();
  const Logic old_effective = effective(net);
  forced_[n] = true;
  forced_val_[n] = v;
  if (old_effective != v) propagate_change(net, old_effective, v);
}

void EventSimulator::release_net(NetId net) {
  const auto n = net.index();
  if (!forced_[n]) return;
  const Logic old_effective = forced_val_[n];
  forced_[n] = false;
  if (driven_[n] != old_effective) {
    propagate_change(net, old_effective, driven_[n]);
  }
}

void EventSimulator::deposit_ff(CellId ff, Logic q) {
  const Cell& cell = netlist_.cell(ff);
  if (!is_flip_flop(cell.kind)) {
    throw InvalidArgument("deposit_ff on non-flip-flop cell");
  }
  set_ff_state(ff, q, /*immediate=*/true);
  advance_to(now_);  // apply the Q/QN updates right away
}

Logic EventSimulator::ff_state(CellId ff) const {
  const Cell& cell = netlist_.cell(ff);
  if (!is_flip_flop(cell.kind)) {
    throw InvalidArgument("ff_state on non-flip-flop cell");
  }
  return ff_q_[ff.index()];
}

void EventSimulator::write_mem_word(CellId mem, std::uint32_t word,
                                    std::uint64_t v) {
  const Cell& cell = netlist_.cell(mem);
  if (cell.kind != CellKind::kMemory) {
    throw InvalidArgument("write_mem_word on non-memory cell");
  }
  const MemoryInfo& mi = netlist_.memory(cell.memory_index);
  if (word >= mi.words) throw InvalidArgument("memory word out of range");
  mems_[static_cast<std::size_t>(cell.memory_index)][word] = v;
  evaluate_memory_read(mem);
  advance_to(now_);
}

std::uint64_t EventSimulator::read_mem_word(CellId mem,
                                            std::uint32_t word) const {
  const Cell& cell = netlist_.cell(mem);
  if (cell.kind != CellKind::kMemory) {
    throw InvalidArgument("read_mem_word on non-memory cell");
  }
  const MemoryInfo& mi = netlist_.memory(cell.memory_index);
  if (word >= mi.words) throw InvalidArgument("memory word out of range");
  return mems_[static_cast<std::size_t>(cell.memory_index)][word];
}

}  // namespace ssresf::sim
