#pragma once

#include <queue>
#include <vector>

#include "sim/engine.h"

namespace ssresf::sim {

/// Timing-accurate event-driven gate-level simulator.
///
/// Semantics:
///  - four-valued logic; everything powers up X except constants;
///  - per-cell intrinsic delays (CellSpec::delay_ps) with inertial filtering:
///    a newly scheduled output transition cancels the pending one, so pulses
///    narrower than a gate's delay are electrically masked — the effect that
///    limits SET propagation in real silicon;
///  - DFF captures D on a 0->1 transition of CK; DFFR/DFFE have asynchronous
///    active-low reset, DFFE also a clock enable (X on EN/CK degrades the
///    state to X);
///  - memory macros: asynchronous read (ADDR -> RDATA after the macro delay),
///    synchronous write on posedge CLK when EN & WE are 1.
class EventSimulator final : public Engine {
 public:
  explicit EventSimulator(const Netlist& netlist);

  [[nodiscard]] const Netlist& design() const override { return netlist_; }
  void reset_state() override;
  [[nodiscard]] std::unique_ptr<EngineState> save_state() const override;
  void restore_state(const EngineState& state) override;
  void serialize_state(const EngineState& state,
                       util::ByteWriter& out) const override;
  [[nodiscard]] std::unique_ptr<EngineState> deserialize_state(
      util::ByteReader& in) const override;
  [[nodiscard]] bool state_matches(const EngineState& state) const override;
  void set_input(NetId net, Logic value) override;
  void advance_to(std::uint64_t time_ps) override;
  [[nodiscard]] std::uint64_t now() const override { return now_; }
  [[nodiscard]] Logic value(NetId net) const override;

  void force_net(NetId net, Logic value) override;
  void release_net(NetId net) override;
  void deposit_ff(CellId ff, Logic q) override;
  [[nodiscard]] Logic ff_state(CellId ff) const override;
  void write_mem_word(CellId mem, std::uint32_t word,
                      std::uint64_t value) override;
  [[nodiscard]] std::uint64_t read_mem_word(CellId mem,
                                            std::uint32_t word) const override;
  void set_observer(ChangeObserver observer) override {
    observer_ = std::move(observer);
    has_observer_ = static_cast<bool>(observer_);
  }
  [[nodiscard]] std::string_view name() const override { return "event"; }

  /// Number of events applied since construction/reset (activity metric for
  /// the ablation benches).
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

 private:
  struct Event {
    std::uint64_t time;
    std::uint64_t seq;
    NetId net;
    Logic value;
    std::uint64_t gen;
    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  struct State;

  void schedule(NetId net, Logic value, std::uint64_t time);
  void apply_event(const Event& event);
  void propagate_change(NetId net, Logic old_effective, Logic new_effective);
  void evaluate_comb(CellId cell);
  void on_clock_edge(CellId cell);
  void on_async_pin_change(CellId cell);
  void evaluate_memory_read(CellId cell);
  void set_ff_state(CellId cell, Logic q, bool immediate);
  [[nodiscard]] Logic effective(NetId net) const;
  void init_constants_and_memories();

  const Netlist& netlist_;
  std::uint64_t now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;

  std::vector<Logic> driven_;      // last driver-produced value per net
  std::vector<Logic> forced_val_;  // overlay value per net
  std::vector<bool> forced_;
  std::vector<std::uint64_t> pending_gen_;
  std::vector<bool> has_pending_;

  std::vector<Logic> ff_q_;                       // per cell (FFs only)
  std::vector<std::vector<std::uint64_t>> mems_;  // per memory index
  std::vector<CellId> init_order_;                // topo order for power-up

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  ChangeObserver observer_;
  bool has_observer_ = false;  // hot-path guard: skip the std::function call
};

}  // namespace ssresf::sim
