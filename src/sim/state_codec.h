#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/engine.h"

namespace ssresf::sim {

/// Portable engine-checkpoint container: a framed, versioned, optionally
/// RLE-compressed byte blob around Engine::serialize_state. Snapshots
/// encoded on one process decode on another (same engine kind, same design)
/// with full round-trip fidelity — `state_matches` holds between the
/// original and the decoded snapshot — which is what lets the distributed
/// campaign ship checkpoints between coordinator and workers, and lets
/// memory-heavy SoC campaigns keep their golden ladder compressed.
enum class StateCodec : std::uint8_t {
  kRaw = 0,  // serialized payload stored verbatim
  kRle = 1,  // PackBits-style byte RLE (engine states are run-heavy)
};

/// Serializes `state` (a snapshot taken by `engine`) into a framed blob:
///   "SSES" magic | format version | codec | engine name | payload sizes |
///   (raw or RLE) payload.
/// Throws InvalidArgument when the snapshot does not belong to the engine's
/// concrete type.
[[nodiscard]] std::vector<std::uint8_t> encode_state(const Engine& engine,
                                                     const EngineState& state,
                                                     StateCodec codec);

/// Inverse of encode_state. Validates the frame (magic, version, engine
/// name, payload sizes) and rebuilds a snapshot restorable into `engine`.
/// Throws InvalidArgument on malformed input or an engine/design mismatch.
[[nodiscard]] std::unique_ptr<EngineState> decode_state(
    const Engine& engine, std::span<const std::uint8_t> blob);

/// PackBits-style run-length coding over raw bytes (exposed for tests and
/// for the shard files): control byte c < 128 copies c+1 literal bytes,
/// c >= 128 repeats the next byte c-125 times (runs of 3..130).
[[nodiscard]] std::vector<std::uint8_t> rle_compress(
    std::span<const std::uint8_t> data);

/// Throws InvalidArgument when `data` is not a valid stream or decodes to a
/// size different from `expected_size`.
[[nodiscard]] std::vector<std::uint8_t> rle_decompress(
    std::span<const std::uint8_t> data, std::size_t expected_size);

}  // namespace ssresf::sim
