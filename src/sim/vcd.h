#pragma once

#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.h"

namespace ssresf::sim {

/// IEEE 1364 VCD (value change dump) writer. Attach to an engine via
/// attach(); remember to call finish() (or destroy the writer) before
/// reading the stream. The paper's flow compares VCD files of golden and
/// faulty runs; we keep the writer for waveform inspection and debugging
/// while the campaign itself compares OutputTraces directly.
class VcdWriter {
 public:
  /// Dumps the given nets; when `nets` is empty, dumps all named nets.
  VcdWriter(std::ostream& out, const Netlist& netlist,
            std::vector<NetId> nets = {});
  ~VcdWriter();

  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Registers this writer as the engine's change observer and records
  /// current values as time-zero initial values.
  void attach(Engine& engine);

  /// Record a value change (called by the engine observer).
  void on_change(NetId net, std::uint64_t time_ps, Logic value);

  void finish();

 private:
  [[nodiscard]] static std::string id_code(std::size_t index);
  void emit_time(std::uint64_t time_ps);

  std::ostream& out_;
  const Netlist& netlist_;
  std::vector<NetId> nets_;
  std::unordered_map<std::uint32_t, std::string> codes_;
  std::uint64_t last_time_ = UINT64_MAX;
  bool finished_ = false;
};

}  // namespace ssresf::sim
