#include "sim/bit_parallel_sim.h"
#include "sim/engine.h"
#include "sim/event_sim.h"
#include "sim/levelized_sim.h"
#include "util/error.h"

namespace ssresf::sim {

std::unique_ptr<Engine> make_engine(EngineKind kind, const Netlist& netlist) {
  switch (kind) {
    case EngineKind::kEvent:
      return std::make_unique<EventSimulator>(netlist);
    case EngineKind::kLevelized:
      return std::make_unique<LevelizedSimulator>(netlist);
    case EngineKind::kBitParallel:
      return std::make_unique<BitParallelSimulator>(netlist);
  }
  throw InvalidArgument("unknown engine kind");
}

}  // namespace ssresf::sim
