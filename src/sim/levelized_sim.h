#pragma once

#include <vector>

#include "sim/engine.h"

namespace ssresf::sim {

/// Topological evaluation order shared by the zero-delay cycle-based
/// engines: combinational cells (inputs = all pins) and memory macros
/// (inputs = RADDR pins only; the read output is combinational, everything
/// else is sampled). LevelizedSimulator and BitParallelSimulator must settle
/// in this exact order for their trajectories to stay bit-identical.
/// Throws Error on a combinational cycle.
[[nodiscard]] std::vector<CellId> levelized_eval_order(const Netlist& netlist);

/// Oblivious (levelized / compiled-style) cycle-based simulator: the second
/// baseline engine. Every combinational cell — and every memory-macro
/// asynchronous read — is evaluated in topological order on each settle; a
/// rising edge on a clock-connected primary input triggers the sequential
/// capture/commit step.
///
/// Timing model: zero-delay within a cycle. Consequently a forced SET pulse
/// is latched iff the force is still active when a clock edge occurs —
/// transport/inertial effects inside a cycle are intentionally not modelled
/// (that is exactly the fidelity difference between the two engines the
/// campaign measures).
class LevelizedSimulator final : public Engine {
 public:
  explicit LevelizedSimulator(const Netlist& netlist);

  [[nodiscard]] const Netlist& design() const override { return netlist_; }
  void reset_state() override;
  [[nodiscard]] std::unique_ptr<EngineState> save_state() const override;
  void restore_state(const EngineState& state) override;
  void serialize_state(const EngineState& state,
                       util::ByteWriter& out) const override;
  [[nodiscard]] std::unique_ptr<EngineState> deserialize_state(
      util::ByteReader& in) const override;
  [[nodiscard]] bool state_matches(const EngineState& state) const override;
  void set_input(NetId net, Logic value) override;
  void advance_to(std::uint64_t time_ps) override;
  [[nodiscard]] std::uint64_t now() const override { return now_; }
  [[nodiscard]] Logic value(NetId net) const override;

  void force_net(NetId net, Logic value) override;
  void release_net(NetId net) override;
  void deposit_ff(CellId ff, Logic q) override;
  [[nodiscard]] Logic ff_state(CellId ff) const override;
  void write_mem_word(CellId mem, std::uint32_t word,
                      std::uint64_t value) override;
  [[nodiscard]] std::uint64_t read_mem_word(CellId mem,
                                            std::uint32_t word) const override;
  void set_observer(ChangeObserver observer) override {
    observer_ = std::move(observer);
    has_observer_ = static_cast<bool>(observer_);
  }
  [[nodiscard]] std::string_view name() const override { return "levelized"; }

  /// Total cell evaluations performed (throughput metric for benches).
  [[nodiscard]] std::uint64_t evals_performed() const { return evals_; }

 private:
  struct State;

  void settle();
  void clock_edge();
  [[nodiscard]] Logic effective(NetId net) const;
  void write_net(NetId net, Logic v);
  [[nodiscard]] bool mem_addr(const netlist::Cell& cell, std::uint64_t& addr) const;

  const Netlist& netlist_;
  std::uint64_t now_ = 0;
  std::uint64_t evals_ = 0;

  std::vector<Logic> driven_;
  std::vector<Logic> forced_val_;
  // Byte flags, not std::vector<bool>: effective()/write_net() read these on
  // every gate input of every settle, and the bit-proxy indexing costs more
  // than the memory it saves.
  std::vector<std::uint8_t> forced_;
  std::vector<Logic> ff_q_;
  std::vector<std::vector<std::uint64_t>> mems_;

  std::vector<CellId> eval_order_;  // comb cells + memory reads, topo order
  std::vector<CellId> reset_ffs_;   // flip-flops with an async reset pin
  std::vector<std::uint8_t> is_clock_net_;
  ChangeObserver observer_;
  bool has_observer_ = false;  // hot-path guard: skip the std::function call
};

}  // namespace ssresf::sim
