#pragma once

#include <vector>

#include "netlist/packed_wide.h"
#include "sim/engine.h"

namespace ssresf::sim {

using netlist::PackedLogic;

/// Bit-parallel packed fault simulator: the third engine, generalized over
/// lane width. Simulates 64*W concurrent runs of the same netlist — slot 0 is
/// the golden (fault-free) run, slots 1..64*W-1 carry faulty variants — using
/// two bit-planes of W machine words per net (value + unknown) so full
/// 4-valued semantics are preserved (see PackedLogic in netlist/logic.h and
/// PackedVecT in netlist/packed_wide.h). Every combinational cell is
/// evaluated once per settle with branch-free bitwise plane algebra, which is
/// the classic PROOFS/HOPE word-parallel speedup.
///
/// Two widths are instantiated:
///   W=1 (BitParallelSimulator):   the classic 64-lane word engine.
///   W=4 (BitParallelSimulator256): 256 lanes; plane ops run through a
///        runtime-dispatched kernel — AVX2 when the CPU has it, a portable
///        word-loop otherwise (see netlist/packed_wide.h). Both kernels are
///        lane-wise identical to the scalar operators, so lane width never
///        changes simulation results, only throughput.
///
/// Timing model: identical to LevelizedSimulator (levelized zero-delay
/// settle, capture on a rising clock-connected primary input), so a slot's
/// trajectory is bit-identical to a scalar levelized run with the same
/// stimulus — the campaign's word-batch scheduler relies on this to keep
/// packed-engine records byte-identical to kLevelized at any lane width.
///
/// The scalar Engine interface broadcasts writes to all lanes and reads back
/// slot 0, so the engine is a drop-in levelized simulator when driven
/// scalar-only (testbench clocking, golden replay, checkpointing). Fault
/// injection uses the slot-indexed *_slot variants, which touch one lane.
template <int W>
class PackedSimulatorT final : public Engine {
  static_assert(W == 1 || W == 4, "instantiated lane widths: 64 and 256");

 public:
  /// Number of runs per batch: slot 0 golden + kFaultSlots faulty.
  static constexpr int kSlots = 64 * W;
  static constexpr int kFaultSlots = kSlots - 1;
  /// Words per bit-plane (the W template argument, for generic callers).
  static constexpr int kWords = W;

  using Planes = netlist::PackedVecT<W>;
  using Mask = netlist::LaneMaskT<W>;

  explicit PackedSimulatorT(const Netlist& netlist);

  [[nodiscard]] const Netlist& design() const override { return netlist_; }
  void reset_state() override;
  [[nodiscard]] std::unique_ptr<EngineState> save_state() const override;
  void restore_state(const EngineState& state) override;
  void serialize_state(const EngineState& state,
                       util::ByteWriter& out) const override;
  [[nodiscard]] std::unique_ptr<EngineState> deserialize_state(
      util::ByteReader& in) const override;
  [[nodiscard]] bool state_matches(const EngineState& state) const override;
  void set_input(NetId net, Logic value) override;
  void advance_to(std::uint64_t time_ps) override;
  [[nodiscard]] std::uint64_t now() const override { return now_; }
  [[nodiscard]] Logic value(NetId net) const override {
    return netlist::wide_get(effective(net), 0);
  }

  void force_net(NetId net, Logic value) override;
  void release_net(NetId net) override;
  void deposit_ff(CellId ff, Logic q) override;
  [[nodiscard]] Logic ff_state(CellId ff) const override;
  void write_mem_word(CellId mem, std::uint32_t word,
                      std::uint64_t value) override;
  [[nodiscard]] std::uint64_t read_mem_word(CellId mem,
                                            std::uint32_t word) const override;
  void set_observer(ChangeObserver observer) override {
    observer_ = std::move(observer);
    has_observer_ = static_cast<bool>(observer_);
  }
  [[nodiscard]] std::string_view name() const override {
    return W == 1 ? "bit-parallel" : "bit-parallel-256";
  }

  // --- slot-indexed injection (the per-lane Engine contract) -----------------
  [[nodiscard]] Logic value_slot(NetId net, int slot) const {
    return netlist::wide_get(effective(net), slot);
  }
  [[nodiscard]] Planes packed_value(NetId net) const { return effective(net); }
  void force_net_slot(NetId net, int slot, Logic value);
  void release_net_slot(NetId net, int slot);
  void deposit_ff_slot(CellId ff, int slot, Logic q);
  [[nodiscard]] Logic ff_state_slot(CellId ff, int slot) const;
  void write_mem_word_slot(CellId mem, int slot, std::uint32_t word,
                           std::uint64_t value);
  [[nodiscard]] std::uint64_t read_mem_word_slot(CellId mem, int slot,
                                                 std::uint32_t word) const;

  /// Broadcasts a scalar engine's force-free dynamic state (net values,
  /// flip-flops, memories, time) into all lanes. Used by the campaign to
  /// seed word batches from the cheap scalar levelized checkpoint ladder —
  /// the two engines share the zero-delay timing model, so the adopted state
  /// is exactly what a packed replay would have produced. Precondition: no
  /// force is active on `golden` (checkpoints are taken on clean replays).
  void adopt_golden(const Engine& golden);

  /// Mask of lanes whose dynamic state may differ from the golden lane 0:
  /// flip-flop planes compared exactly, active forces and memory divergence
  /// tracked conservatively (a set bit may be a false positive, a clear bit
  /// never is). Combinational nets are a pure function of that state under
  /// broadcast inputs, so a clear bit proves the slot's future coincides
  /// with golden — the campaign's per-slot masked exit.
  [[nodiscard]] Mask state_diff_from_golden();

  /// Total packed cell evaluations performed (each covers 64*W lanes).
  [[nodiscard]] std::uint64_t evals_performed() const { return evals_; }

 private:
  struct State;

  void settle();
  void clock_edge(const Mask& capture_mask);
  [[nodiscard]] Planes effective(NetId net) const;
  void write_net(NetId net, const Planes& v);
  void note_forced(NetId net);
  void read_memory(const netlist::Cell& cell);
  [[nodiscard]] Planes eval_comb(netlist::CellKind kind, const Planes* ins,
                                 std::size_t n) const;

  const Netlist& netlist_;
  std::uint64_t now_ = 0;
  std::uint64_t evals_ = 0;

  std::vector<Planes> driven_;
  std::vector<Planes> forced_val_;
  std::vector<Mask> forced_;  // per-net mask of forced lanes
  std::vector<Planes> ff_q_;
  // Per memory index: 64*W lane-major arrays (lane * words + word).
  std::vector<std::vector<std::uint64_t>> mems_;
  // Lanes whose array may differ from lane 0 (conservative, per memory).
  std::vector<Mask> mem_dirty_;
  // Nets that may hold a non-zero forced_ mask (compacted lazily).
  std::vector<std::uint32_t> forced_nets_;

  std::vector<CellId> eval_order_;  // comb cells + memory reads, topo order
  std::vector<CellId> seq_cells_;   // FFs + memories, creation order
  std::vector<CellId> reset_ffs_;   // flip-flops with an async reset pin
  std::vector<std::uint8_t> is_clock_net_;
  std::vector<Planes> ff_next_;  // clock_edge scratch (per cell index)
  netlist::EvalCellW4Fn eval_w4_ = nullptr;  // W=4 kernel (AVX2 or generic)
  ChangeObserver observer_;
  bool has_observer_ = false;
};

extern template class PackedSimulatorT<1>;
extern template class PackedSimulatorT<4>;

/// The classic 64-lane engine (EngineKind::kBitParallel).
using BitParallelSimulator = PackedSimulatorT<1>;
/// The 256-lane engine (campaign `lanes = 256`): same results, wider batches.
using BitParallelSimulator256 = PackedSimulatorT<4>;

}  // namespace ssresf::sim
