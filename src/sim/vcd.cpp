#include "sim/vcd.h"

namespace ssresf::sim {

VcdWriter::VcdWriter(std::ostream& out, const Netlist& netlist,
                     std::vector<NetId> nets)
    : out_(out), netlist_(netlist), nets_(std::move(nets)) {
  if (nets_.empty()) {
    for (std::uint32_t i = 0; i < netlist_.num_nets(); ++i) {
      if (!netlist_.net(NetId{i}).name.empty()) nets_.push_back(NetId{i});
    }
  }
  out_ << "$timescale 1ps $end\n";
  out_ << "$scope module " << netlist_.name() << " $end\n";
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const std::string code = id_code(i);
    codes_.emplace(nets_[i].index(), code);
    out_ << "$var wire 1 " << code << " " << netlist_.net_name(nets_[i])
         << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
}

VcdWriter::~VcdWriter() { finish(); }

void VcdWriter::attach(Engine& engine) {
  emit_time(engine.now());
  for (const NetId net : nets_) {
    out_ << netlist::to_char(engine.value(net)) << codes_.at(net.index())
         << "\n";
  }
  engine.set_observer([this](NetId net, std::uint64_t t, Logic v) {
    on_change(net, t, v);
  });
}

void VcdWriter::on_change(NetId net, std::uint64_t time_ps, Logic value) {
  const auto it = codes_.find(net.index());
  if (it == codes_.end()) return;
  emit_time(time_ps);
  out_ << netlist::to_char(value) << it->second << "\n";
}

void VcdWriter::finish() {
  if (finished_) return;
  finished_ = true;
  out_.flush();
}

std::string VcdWriter::id_code(std::size_t index) {
  // Printable-ASCII identifier codes, base 94 starting at '!'.
  std::string code;
  do {
    code += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index > 0);
  return code;
}

void VcdWriter::emit_time(std::uint64_t time_ps) {
  if (time_ps == last_time_) return;
  last_time_ = time_ps;
  out_ << "#" << time_ps << "\n";
}

}  // namespace ssresf::sim
