#include "sim/levelized_sim.h"

#include <algorithm>

#include "util/bytes.h"
#include "util/error.h"

namespace ssresf::sim {

using netlist::as_input;
using netlist::Cell;
using netlist::CellKind;
using netlist::eval_cell;
using netlist::from_bool;
using netlist::is_flip_flop;
using netlist::is_known;
using netlist::is_sequential;
using netlist::logic_not;
using netlist::MemoryInfo;

LevelizedSimulator::LevelizedSimulator(const Netlist& netlist)
    : netlist_(netlist) {
  if (!netlist.finalized()) {
    throw InvalidArgument("LevelizedSimulator requires a finalized netlist");
  }
  eval_order_ = levelized_eval_order(netlist_);
  // Clock nets: primary inputs connected to any CK/CLK pin.
  is_clock_net_.assign(netlist_.num_nets(), 0);
  for (const CellId id : netlist_.all_cells()) {
    const Cell& cell = netlist_.cell(id);
    if (is_flip_flop(cell.kind)) {
      is_clock_net_[cell.inputs[1].index()] = 1;
      if (cell.kind != CellKind::kDff) reset_ffs_.push_back(id);
    } else if (cell.kind == CellKind::kMemory) {
      is_clock_net_[cell.inputs[0].index()] = 1;
    }
  }
  reset_state();
}

std::vector<CellId> levelized_eval_order(const Netlist& netlist) {
  // Topological order over "evaluation nodes": combinational cells (inputs =
  // all pins) and memory macros (inputs = ADDR pins only; their read output
  // is combinational in a levelized model, everything else is sampled).
  const std::size_t n = netlist.num_cells();
  std::vector<std::uint32_t> pending(n, 0);
  std::vector<CellId> ready;

  auto eval_inputs = [&](const Cell& cell) {
    std::vector<NetId> ins;
    if (cell.kind == CellKind::kMemory) {
      const MemoryInfo& mi = netlist.memory(cell.memory_index);
      for (int i = 0; i < mi.addr_bits; ++i) ins.push_back(cell.inputs[3u + i]);
    } else {
      ins = cell.inputs;
    }
    return ins;
  };
  auto is_eval_node = [&](const Cell& cell) {
    return !is_sequential(cell.kind) || cell.kind == CellKind::kMemory;
  };
  // A net is a "source" if it is a primary input or driven by a flip-flop.
  auto net_is_source = [&](NetId id) {
    const auto& net = netlist.net(id);
    if (net.is_primary_input) return true;
    return is_flip_flop(netlist.cell(net.driver).kind);
  };

  std::size_t num_eval_nodes = 0;
  for (std::uint32_t ci = 0; ci < n; ++ci) {
    const Cell& cell = netlist.cell(CellId{ci});
    if (!is_eval_node(cell)) continue;
    ++num_eval_nodes;
    std::uint32_t unresolved = 0;
    for (const NetId in : eval_inputs(cell)) {
      if (!net_is_source(in)) ++unresolved;
    }
    pending[ci] = unresolved;
    if (unresolved == 0) ready.push_back(CellId{ci});
  }

  std::vector<CellId> order;
  order.reserve(num_eval_nodes);
  while (!ready.empty()) {
    const CellId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    const Cell& cell = netlist.cell(id);
    for (const NetId out : cell.outputs) {
      for (const netlist::Fanout& fo : netlist.fanout(out)) {
        const Cell& sink = netlist.cell(fo.cell);
        if (!is_eval_node(sink)) continue;
        // Only count edges that the sink's eval-input set contains.
        if (sink.kind == CellKind::kMemory) {
          const MemoryInfo& mi = netlist.memory(sink.memory_index);
          if (fo.input_index < 3 || fo.input_index >= 3u + mi.addr_bits) {
            continue;
          }
        }
        if (--pending[fo.cell.index()] == 0) ready.push_back(fo.cell);
      }
    }
  }
  if (order.size() != num_eval_nodes) {
    throw Error("levelized eval order: combinational cycle in netlist");
  }
  return order;
}

void LevelizedSimulator::reset_state() {
  now_ = 0;
  evals_ = 0;
  driven_.assign(netlist_.num_nets(), Logic::X);
  forced_val_.assign(netlist_.num_nets(), Logic::X);
  forced_.assign(netlist_.num_nets(), 0);
  ff_q_.assign(netlist_.num_cells(), Logic::X);
  mems_.clear();
  for (const CellId id : netlist_.all_cells()) {
    const Cell& cell = netlist_.cell(id);
    if (cell.kind == CellKind::kMemory) {
      const MemoryInfo& mi = netlist_.memory(cell.memory_index);
      if (mems_.size() <= static_cast<std::size_t>(cell.memory_index)) {
        mems_.resize(static_cast<std::size_t>(cell.memory_index) + 1);
      }
      auto& array = mems_[static_cast<std::size_t>(cell.memory_index)];
      array = mi.init.empty() ? std::vector<std::uint64_t>(mi.words, 0)
                              : mi.init;
    } else if (cell.kind == CellKind::kConst0) {
      driven_[cell.outputs[0].index()] = Logic::L0;
    } else if (cell.kind == CellKind::kConst1) {
      driven_[cell.outputs[0].index()] = Logic::L1;
    }
  }
  settle();
}

struct LevelizedSimulator::State final : EngineState {
  std::uint64_t now = 0;
  std::uint64_t evals = 0;
  std::vector<Logic> driven;
  std::vector<Logic> forced_val;
  std::vector<std::uint8_t> forced;
  std::vector<Logic> ff_q;
  std::vector<std::vector<std::uint64_t>> mems;
};

std::unique_ptr<EngineState> LevelizedSimulator::save_state() const {
  auto state = std::make_unique<State>();
  state->now = now_;
  state->evals = evals_;
  state->driven = driven_;
  state->forced_val = forced_val_;
  state->forced = forced_;
  state->ff_q = ff_q_;
  state->mems = mems_;
  return state;
}

void LevelizedSimulator::restore_state(const EngineState& state) {
  const auto* s = dynamic_cast<const State*>(&state);
  if (s == nullptr) {
    throw InvalidArgument(
        "restore_state: snapshot is not a levelized-engine state");
  }
  if (s->driven.size() != netlist_.num_nets() ||
      s->ff_q.size() != netlist_.num_cells()) {
    throw InvalidArgument("restore_state: snapshot from a different design");
  }
  now_ = s->now;
  evals_ = s->evals;
  driven_ = s->driven;
  forced_val_ = s->forced_val;
  forced_ = s->forced;
  ff_q_ = s->ff_q;
  mems_ = s->mems;
}

void LevelizedSimulator::serialize_state(const EngineState& state,
                                         util::ByteWriter& out) const {
  const auto* s = dynamic_cast<const State*>(&state);
  if (s == nullptr) {
    throw InvalidArgument(
        "serialize_state: snapshot is not a levelized-engine state");
  }
  out.varint(s->now);
  out.varint(s->evals);
  out.byte_vec(s->driven);
  out.byte_vec(s->forced_val);
  out.byte_vec(s->forced);
  out.byte_vec(s->ff_q);
  out.varint(s->mems.size());
  for (const auto& mem : s->mems) out.u64_vec(mem);
}

std::unique_ptr<EngineState> LevelizedSimulator::deserialize_state(
    util::ByteReader& in) const {
  auto s = std::make_unique<State>();
  s->now = in.varint();
  s->evals = in.varint();
  s->driven = in.byte_vec<Logic>();
  s->forced_val = in.byte_vec<Logic>();
  s->forced = in.byte_vec<std::uint8_t>();
  s->ff_q = in.byte_vec<Logic>();
  // element_count bounds the count by the remaining input (each array is at
  // least its one-byte length prefix), so a malformed count cannot drive an
  // oversized allocation.
  const std::size_t num_mems = in.element_count(1);
  s->mems.reserve(num_mems);
  for (std::size_t m = 0; m < num_mems; ++m) s->mems.push_back(in.u64_vec());
  if (s->driven.size() != netlist_.num_nets() ||
      s->forced_val.size() != netlist_.num_nets() ||
      s->forced.size() != netlist_.num_nets() ||
      s->ff_q.size() != netlist_.num_cells()) {
    throw InvalidArgument("deserialize_state: snapshot from a different design");
  }
  // Memory arrays must match this engine's shape exactly: a truncated array
  // would otherwise become an out-of-bounds access on the next memory read.
  if (s->mems.size() != mems_.size()) {
    throw InvalidArgument("deserialize_state: memory count mismatch");
  }
  for (std::size_t m = 0; m < mems_.size(); ++m) {
    if (s->mems[m].size() != mems_[m].size()) {
      throw InvalidArgument("deserialize_state: memory array size mismatch");
    }
  }
  return s;
}

bool LevelizedSimulator::state_matches(const EngineState& state) const {
  const auto* s = dynamic_cast<const State*>(&state);
  if (s == nullptr) return false;
  if (now_ != s->now || driven_ != s->driven || ff_q_ != s->ff_q ||
      forced_ != s->forced || mems_ != s->mems) {
    return false;
  }
  for (std::size_t n = 0; n < forced_.size(); ++n) {
    if (forced_[n] != 0 && forced_val_[n] != s->forced_val[n]) return false;
  }
  return true;
}

Logic LevelizedSimulator::effective(NetId net) const {
  return forced_[net.index()] != 0 ? forced_val_[net.index()]
                                   : driven_[net.index()];
}

Logic LevelizedSimulator::value(NetId net) const { return effective(net); }

void LevelizedSimulator::write_net(NetId net, Logic v) {
  const auto n = net.index();
  if (driven_[n] == v) return;
  driven_[n] = v;
  if (has_observer_ && forced_[n] == 0) observer_(net, now_, v);
}

bool LevelizedSimulator::mem_addr(const Cell& cell, std::uint64_t& addr) const {
  const MemoryInfo& mi = netlist_.memory(cell.memory_index);
  addr = 0;
  for (int i = 0; i < mi.addr_bits; ++i) {
    const Logic bit = as_input(effective(cell.inputs[3u + i]));
    if (!is_known(bit)) return false;
    if (bit == Logic::L1) addr |= 1ull << i;
  }
  return addr < mi.words;
}

void LevelizedSimulator::settle() {
  // Asynchronous reset acts level-sensitively, independent of the clock.
  for (const CellId id : reset_ffs_) {
    const Cell& cell = netlist_.cell(id);
    const Logic rn = as_input(effective(cell.inputs[2]));
    if (rn == Logic::L0 && ff_q_[id.index()] != Logic::L0) {
      ff_q_[id.index()] = Logic::L0;
      write_net(cell.outputs[0], Logic::L0);
      write_net(cell.outputs[1], Logic::L1);
    } else if (rn == Logic::X && ff_q_[id.index()] != Logic::L0 &&
               ff_q_[id.index()] != Logic::X) {
      ff_q_[id.index()] = Logic::X;
      write_net(cell.outputs[0], Logic::X);
      write_net(cell.outputs[1], Logic::X);
    }
  }
  Logic ins[4];
  for (const CellId id : eval_order_) {
    const Cell& cell = netlist_.cell(id);
    ++evals_;
    if (cell.kind == CellKind::kMemory) {
      const MemoryInfo& mi = netlist_.memory(cell.memory_index);
      std::uint64_t addr = 0;
      if (!mem_addr(cell, addr)) {
        for (int i = 0; i < mi.width; ++i) write_net(cell.outputs[i], Logic::X);
      } else {
        const std::uint64_t word =
            mems_[static_cast<std::size_t>(cell.memory_index)][addr];
        for (int i = 0; i < mi.width; ++i) {
          write_net(cell.outputs[i], from_bool((word >> i) & 1));
        }
      }
      continue;
    }
    for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
      ins[i] = effective(cell.inputs[i]);
    }
    write_net(cell.outputs[0],
              eval_cell(cell.kind, std::span<const Logic>(ins, cell.inputs.size())));
  }
}

void LevelizedSimulator::clock_edge() {
  settle();  // make sure D pins are current

  // Capture phase: compute every sequential element's next state from the
  // pre-edge values, then commit — mirrors nonblocking assignment semantics.
  struct FfUpdate {
    CellId cell;
    Logic q;
  };
  std::vector<FfUpdate> ff_updates;
  struct MemWrite {
    std::int32_t mem_index;
    std::uint64_t addr;
    std::uint64_t word;
  };
  std::vector<MemWrite> mem_writes;

  for (const CellId id : netlist_.all_cells()) {
    const Cell& cell = netlist_.cell(id);
    if (is_flip_flop(cell.kind)) {
      if (cell.kind != CellKind::kDff) {
        const Logic rn = as_input(effective(cell.inputs[2]));
        if (rn == Logic::L0) {
          if (ff_q_[id.index()] != Logic::L0) {
            ff_updates.push_back({id, Logic::L0});
          }
          continue;
        }
        if (rn == Logic::X) {
          if (ff_q_[id.index()] != Logic::L0) ff_updates.push_back({id, Logic::X});
          continue;
        }
      }
      if (cell.kind == CellKind::kDffE) {
        const Logic en = as_input(effective(cell.inputs[3]));
        if (en == Logic::L0) continue;
        if (en == Logic::X) {
          const Logic d = as_input(effective(cell.inputs[0]));
          if (d != ff_q_[id.index()]) ff_updates.push_back({id, Logic::X});
          continue;
        }
      }
      const Logic d = as_input(effective(cell.inputs[0]));
      if (d != ff_q_[id.index()]) ff_updates.push_back({id, d});
    } else if (cell.kind == CellKind::kMemory) {
      const Logic en = as_input(effective(cell.inputs[1]));
      const Logic we = as_input(effective(cell.inputs[2]));
      if (en != Logic::L1 || we != Logic::L1) continue;
      const MemoryInfo& mi = netlist_.memory(cell.memory_index);
      std::uint64_t addr = 0;
      bool addr_known = true;
      for (int i = 0; i < mi.addr_bits; ++i) {
        const Logic bit =
            as_input(effective(cell.inputs[3u + mi.addr_bits + i]));
        if (!is_known(bit)) {
          addr_known = false;
          break;
        }
        if (bit == Logic::L1) addr |= 1ull << i;
      }
      if (!addr_known || addr >= mi.words) continue;
      std::uint64_t word = 0;
      bool known = true;
      for (int i = 0; i < mi.width; ++i) {
        const Logic bit =
            as_input(effective(cell.inputs[3u + 2u * mi.addr_bits + i]));
        if (!is_known(bit)) {
          known = false;
          break;
        }
        if (bit == Logic::L1) word |= 1ull << i;
      }
      if (known) mem_writes.push_back({cell.memory_index, addr, word});
    }
  }

  for (const auto& up : ff_updates) {
    ff_q_[up.cell.index()] = up.q;
    const Cell& cell = netlist_.cell(up.cell);
    write_net(cell.outputs[0], up.q);
    write_net(cell.outputs[1], logic_not(up.q));
  }
  for (const auto& wr : mem_writes) {
    mems_[static_cast<std::size_t>(wr.mem_index)][wr.addr] = wr.word;
  }

  settle();  // propagate the new state
}

void LevelizedSimulator::set_input(NetId net, Logic v) {
  if (!netlist_.net(net).is_primary_input) {
    throw InvalidArgument("set_input on non-primary-input net");
  }
  const Logic old = driven_[net.index()];
  if (old == v) return;
  driven_[net.index()] = v;
  if (is_clock_net_[net.index()] != 0 && old == Logic::L0 && v == Logic::L1 &&
      forced_[net.index()] == 0) {
    clock_edge();
  } else {
    settle();
  }
}

void LevelizedSimulator::advance_to(std::uint64_t time_ps) {
  now_ = std::max(now_, time_ps);
}

void LevelizedSimulator::force_net(NetId net, Logic v) {
  forced_[net.index()] = 1;
  forced_val_[net.index()] = v;
  settle();
}

void LevelizedSimulator::release_net(NetId net) {
  if (forced_[net.index()] == 0) return;
  forced_[net.index()] = 0;
  settle();
}

void LevelizedSimulator::deposit_ff(CellId ff, Logic q) {
  const Cell& cell = netlist_.cell(ff);
  if (!is_flip_flop(cell.kind)) {
    throw InvalidArgument("deposit_ff on non-flip-flop cell");
  }
  ff_q_[ff.index()] = q;
  write_net(cell.outputs[0], q);
  write_net(cell.outputs[1], logic_not(q));
  settle();
}

Logic LevelizedSimulator::ff_state(CellId ff) const {
  const Cell& cell = netlist_.cell(ff);
  if (!is_flip_flop(cell.kind)) {
    throw InvalidArgument("ff_state on non-flip-flop cell");
  }
  return ff_q_[ff.index()];
}

void LevelizedSimulator::write_mem_word(CellId mem, std::uint32_t word,
                                        std::uint64_t v) {
  const Cell& cell = netlist_.cell(mem);
  if (cell.kind != CellKind::kMemory) {
    throw InvalidArgument("write_mem_word on non-memory cell");
  }
  const MemoryInfo& mi = netlist_.memory(cell.memory_index);
  if (word >= mi.words) throw InvalidArgument("memory word out of range");
  mems_[static_cast<std::size_t>(cell.memory_index)][word] = v;
  settle();
}

std::uint64_t LevelizedSimulator::read_mem_word(CellId mem,
                                                std::uint32_t word) const {
  const Cell& cell = netlist_.cell(mem);
  if (cell.kind != CellKind::kMemory) {
    throw InvalidArgument("read_mem_word on non-memory cell");
  }
  const MemoryInfo& mi = netlist_.memory(cell.memory_index);
  if (word >= mi.words) throw InvalidArgument("memory word out of range");
  return mems_[static_cast<std::size_t>(cell.memory_index)][word];
}

}  // namespace ssresf::sim
