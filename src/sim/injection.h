#pragma once

#include "sim/engine.h"

namespace ssresf::sim {

/// VPI-style access facade (the role IEEE 1364 VPI plays in the paper's
/// flow): a narrow, simulator-agnostic handle that fault models use to
/// force/release nets and rewrite sequential state, independent of which
/// engine runs underneath.
class InjectionPort {
 public:
  explicit InjectionPort(Engine& engine) : engine_(&engine) {}

  /// Force a net to a value (SET transient start).
  void force(NetId net, Logic value) { engine_->force_net(net, value); }
  /// Release a forced net (SET transient end).
  void release(NetId net) { engine_->release_net(net); }
  /// Rewrite a flip-flop's state (SEU).
  void deposit(CellId ff, Logic q) { engine_->deposit_ff(ff, q); }
  /// Flip one stored bit of a memory macro (SEU in RAM).
  void flip_mem_bit(CellId mem, std::uint32_t word, std::uint32_t bit) {
    const std::uint64_t old = engine_->read_mem_word(mem, word);
    engine_->write_mem_word(mem, word, old ^ (1ull << bit));
  }

  [[nodiscard]] Logic probe(NetId net) const { return engine_->value(net); }
  [[nodiscard]] Logic probe_ff(CellId ff) const { return engine_->ff_state(ff); }

 private:
  Engine* engine_;
};

}  // namespace ssresf::sim
