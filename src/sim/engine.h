#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "netlist/netlist.h"

namespace ssresf::util {
class ByteWriter;
class ByteReader;
}  // namespace ssresf::util

namespace ssresf::sim {

using netlist::CellId;
using netlist::Logic;
using netlist::Netlist;
using netlist::NetId;

/// Change-notification hook (used by the VCD writer): (net, time_ps, value).
using ChangeObserver = std::function<void(NetId, std::uint64_t, Logic)>;

/// Opaque snapshot of an engine's complete dynamic state (net values, FF
/// state, memory arrays, pending events, time). Produced by
/// Engine::save_state and consumed by Engine::restore_state of an engine of
/// the same concrete type over the same netlist; immutable once taken, so
/// one snapshot can seed any number of engines (including concurrently).
class EngineState {
 public:
  virtual ~EngineState() = default;
};

/// Common interface of the simulation engines.
///
/// EventSimulator is the timing-accurate reference (the role Synopsys VCS
/// plays in the paper); LevelizedSimulator is the second, oblivious engine
/// (the role of OSS-CVC); BitParallelSimulator packs 64 levelized runs into
/// every machine word for campaign throughput. All expose the same
/// VPI-style injection primitives — force/release/deposit — that the paper
/// drives through the IEEE 1364 VPI.
class Engine {
 public:
  virtual ~Engine() = default;

  [[nodiscard]] virtual const Netlist& design() const = 0;

  /// Restore power-on state: FFs unknown (or reset), memories re-initialised,
  /// time zero.
  virtual void reset_state() = 0;

  /// Snapshot the complete dynamic state. The snapshot stays valid for the
  /// lifetime of the netlist and may be restored into any engine of the same
  /// concrete type built over the same netlist.
  [[nodiscard]] virtual std::unique_ptr<EngineState> save_state() const = 0;

  /// Resume from a snapshot taken by save_state on a compatible engine.
  /// Throws InvalidArgument if the snapshot came from a different engine
  /// type or a differently sized design. The observer is not part of the
  /// state and is left untouched.
  virtual void restore_state(const EngineState& state) = 0;

  /// Serializes a snapshot taken by this engine type into a portable byte
  /// stream (see sim/state_codec.h for the framed, optionally compressed
  /// container built on top of this). Counters and semantic state round-trip;
  /// bookkeeping that state_matches ignores (event sequence numbers,
  /// cancelled queue entries) may be re-normalized. Throws InvalidArgument
  /// for a foreign snapshot.
  virtual void serialize_state(const EngineState& state,
                               util::ByteWriter& out) const = 0;

  /// Rebuilds a snapshot from serialize_state output. The result restores
  /// into this engine (same concrete type, same design) and satisfies
  /// state_matches against the original snapshot. Throws InvalidArgument on
  /// malformed bytes or a design-size mismatch.
  [[nodiscard]] virtual std::unique_ptr<EngineState> deserialize_state(
      util::ByteReader& in) const = 0;

  /// True when the engine's dynamic state is semantically identical to the
  /// snapshot — same time, net values, forces, sequential state, memories,
  /// and pending activity (bookkeeping counters excluded) — so the two
  /// futures coincide under identical stimulus. The campaign uses this to
  /// prove a faulty run has reconverged with the golden run and stop it.
  /// Returns false (never throws) for a foreign snapshot.
  [[nodiscard]] virtual bool state_matches(const EngineState& state) const = 0;

  /// Drive a primary input at the current time.
  virtual void set_input(NetId net, Logic value) = 0;

  /// Process activity up to (and including) absolute time `time_ps`.
  virtual void advance_to(std::uint64_t time_ps) = 0;

  [[nodiscard]] virtual std::uint64_t now() const = 0;

  /// Effective (consumer-visible) value of a net.
  [[nodiscard]] virtual Logic value(NetId net) const = 0;

  // --- VPI-style injection ---------------------------------------------------
  /// Overrides a net with a value until release_net. Models a SET transient
  /// when applied for a bounded window.
  virtual void force_net(NetId net, Logic value) = 0;
  virtual void release_net(NetId net) = 0;

  /// Rewrites a flip-flop's stored state (SEU) and propagates Q/QN.
  virtual void deposit_ff(CellId ff, Logic q) = 0;
  [[nodiscard]] virtual Logic ff_state(CellId ff) const = 0;

  /// Direct access to a memory macro's array (SEU in a RAM bit).
  virtual void write_mem_word(CellId mem, std::uint32_t word,
                              std::uint64_t value) = 0;
  [[nodiscard]] virtual std::uint64_t read_mem_word(CellId mem,
                                                    std::uint32_t word) const = 0;

  /// Value-change observer (may be empty). Only the event engine reports
  /// per-ps changes; the levelized engine reports once per settle.
  virtual void set_observer(ChangeObserver observer) = 0;

  /// Human-readable engine name for reports ("event" / "levelized").
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Which engine to instantiate: the two baselines of Table III plus the
/// bit-parallel packed engine (64 runs per word, levelized timing) that the
/// campaign's word-batch scheduler exploits.
enum class EngineKind { kEvent, kLevelized, kBitParallel };

[[nodiscard]] std::unique_ptr<Engine> make_engine(EngineKind kind,
                                                  const Netlist& netlist);

}  // namespace ssresf::sim
