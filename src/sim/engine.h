#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "netlist/netlist.h"

namespace ssresf::sim {

using netlist::CellId;
using netlist::Logic;
using netlist::Netlist;
using netlist::NetId;

/// Change-notification hook (used by the VCD writer): (net, time_ps, value).
using ChangeObserver = std::function<void(NetId, std::uint64_t, Logic)>;

/// Common interface of the two simulation engines.
///
/// EventSimulator is the timing-accurate reference (the role Synopsys VCS
/// plays in the paper); LevelizedSimulator is the second, oblivious engine
/// (the role of OSS-CVC). Both expose the same VPI-style injection
/// primitives — force/release/deposit — that the paper drives through the
/// IEEE 1364 VPI.
class Engine {
 public:
  virtual ~Engine() = default;

  [[nodiscard]] virtual const Netlist& design() const = 0;

  /// Restore power-on state: FFs unknown (or reset), memories re-initialised,
  /// time zero.
  virtual void reset_state() = 0;

  /// Drive a primary input at the current time.
  virtual void set_input(NetId net, Logic value) = 0;

  /// Process activity up to (and including) absolute time `time_ps`.
  virtual void advance_to(std::uint64_t time_ps) = 0;

  [[nodiscard]] virtual std::uint64_t now() const = 0;

  /// Effective (consumer-visible) value of a net.
  [[nodiscard]] virtual Logic value(NetId net) const = 0;

  // --- VPI-style injection ---------------------------------------------------
  /// Overrides a net with a value until release_net. Models a SET transient
  /// when applied for a bounded window.
  virtual void force_net(NetId net, Logic value) = 0;
  virtual void release_net(NetId net) = 0;

  /// Rewrites a flip-flop's stored state (SEU) and propagates Q/QN.
  virtual void deposit_ff(CellId ff, Logic q) = 0;
  [[nodiscard]] virtual Logic ff_state(CellId ff) const = 0;

  /// Direct access to a memory macro's array (SEU in a RAM bit).
  virtual void write_mem_word(CellId mem, std::uint32_t word,
                              std::uint64_t value) = 0;
  [[nodiscard]] virtual std::uint64_t read_mem_word(CellId mem,
                                                    std::uint32_t word) const = 0;

  /// Value-change observer (may be empty). Only the event engine reports
  /// per-ps changes; the levelized engine reports once per settle.
  virtual void set_observer(ChangeObserver observer) = 0;

  /// Human-readable engine name for reports ("event" / "levelized").
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Which engine to instantiate (the two baselines of Table III).
enum class EngineKind { kEvent, kLevelized };

[[nodiscard]] std::unique_ptr<Engine> make_engine(EngineKind kind,
                                                  const Netlist& netlist);

}  // namespace ssresf::sim
