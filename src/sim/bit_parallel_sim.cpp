#include "sim/bit_parallel_sim.h"

#include <algorithm>
#include <array>
#include <bit>

#include "sim/levelized_sim.h"
#include "util/bytes.h"
#include "util/error.h"

namespace ssresf::sim {

using netlist::Cell;
using netlist::CellKind;
using netlist::eval_cell_packed;
using netlist::is_flip_flop;
using netlist::LaneMaskT;
using netlist::MemoryInfo;
using netlist::PackedVecT;
using netlist::wide_as_input;
using netlist::wide_get;
using netlist::wide_not;
using netlist::wide_select;
using netlist::wide_set;
using netlist::wide_splat;

namespace {

/// All-ones when bit 0 of x is set (broadcast of the golden lane's bit).
[[nodiscard]] constexpr std::uint64_t splat_lane0(std::uint64_t x) {
  return std::uint64_t{0} - (x & 1);
}

/// Lanes whose symbol differs from lane 0's symbol.
template <int W>
[[nodiscard]] constexpr LaneMaskT<W> plane_nonuniform(const PackedVecT<W>& p) {
  const std::uint64_t sv = splat_lane0(p.val[0]);
  const std::uint64_t su = splat_lane0(p.unk[0]);
  LaneMaskT<W> m;
  for (int k = 0; k < W; ++k) m.w[k] = (p.val[k] ^ sv) | (p.unk[k] ^ su);
  return m;
}

/// Lanes whose mask bit differs from lane 0's bit.
template <int W>
[[nodiscard]] constexpr LaneMaskT<W> mask_nonuniform(const LaneMaskT<W>& m) {
  const std::uint64_t s = splat_lane0(m.w[0]);
  LaneMaskT<W> o;
  for (int k = 0; k < W; ++k) o.w[k] = m.w[k] ^ s;
  return o;
}

/// Bit `lane` of a W-word plane.
template <int W>
[[nodiscard]] constexpr std::uint64_t plane_bit(
    const std::array<std::uint64_t, W>& plane, int lane) {
  return (plane[lane >> 6] >> (lane & 63)) & 1;
}

}  // namespace

template <int W>
PackedSimulatorT<W>::PackedSimulatorT(const Netlist& netlist)
    : netlist_(netlist) {
  if (!netlist.finalized()) {
    throw InvalidArgument("PackedSimulatorT requires a finalized netlist");
  }
  if constexpr (W == 4) eval_w4_ = netlist::eval_cell_w4_dispatch();
  // Settling in the exact levelized order is what keeps every lane
  // bit-identical to a scalar levelized run.
  eval_order_ = levelized_eval_order(netlist_);
  // Clock nets: primary inputs connected to any CK/CLK pin (same single
  // clock-domain model as the levelized engine).
  is_clock_net_.assign(netlist_.num_nets(), 0);
  for (const CellId id : netlist_.all_cells()) {
    const Cell& cell = netlist_.cell(id);
    if (is_flip_flop(cell.kind)) {
      is_clock_net_[cell.inputs[1].index()] = 1;
      seq_cells_.push_back(id);
      if (cell.kind != CellKind::kDff) reset_ffs_.push_back(id);
    } else if (cell.kind == CellKind::kMemory) {
      is_clock_net_[cell.inputs[0].index()] = 1;
      seq_cells_.push_back(id);
    }
  }
  ff_next_.resize(netlist_.num_cells());
  reset_state();
}

template <int W>
void PackedSimulatorT<W>::reset_state() {
  now_ = 0;
  evals_ = 0;
  driven_.assign(netlist_.num_nets(), wide_splat<W>(Logic::X));
  forced_val_.assign(netlist_.num_nets(), wide_splat<W>(Logic::X));
  forced_.assign(netlist_.num_nets(), Mask{});
  forced_nets_.clear();
  ff_q_.assign(netlist_.num_cells(), wide_splat<W>(Logic::X));
  mems_.clear();
  mem_dirty_.clear();
  for (const CellId id : netlist_.all_cells()) {
    const Cell& cell = netlist_.cell(id);
    if (cell.kind == CellKind::kMemory) {
      const MemoryInfo& mi = netlist_.memory(cell.memory_index);
      const auto m = static_cast<std::size_t>(cell.memory_index);
      if (mems_.size() <= m) {
        mems_.resize(m + 1);
        mem_dirty_.resize(m + 1, Mask{});
      }
      auto& array = mems_[m];
      array.assign(static_cast<std::size_t>(kSlots) * mi.words, 0);
      if (!mi.init.empty()) {
        for (int lane = 0; lane < kSlots; ++lane) {
          std::copy(mi.init.begin(), mi.init.end(),
                    array.begin() + static_cast<std::ptrdiff_t>(
                                        static_cast<std::size_t>(lane) * mi.words));
        }
      }
      mem_dirty_[m] = Mask{};
    } else if (cell.kind == CellKind::kConst0) {
      driven_[cell.outputs[0].index()] = wide_splat<W>(Logic::L0);
    } else if (cell.kind == CellKind::kConst1) {
      driven_[cell.outputs[0].index()] = wide_splat<W>(Logic::L1);
    }
  }
  settle();
}

template <int W>
struct PackedSimulatorT<W>::State final : EngineState {
  std::uint64_t now = 0;
  std::uint64_t evals = 0;
  std::vector<Planes> driven;
  std::vector<Planes> forced_val;
  std::vector<Mask> forced;
  std::vector<std::uint32_t> forced_nets;
  std::vector<Planes> ff_q;
  std::vector<std::vector<std::uint64_t>> mems;
  std::vector<Mask> mem_dirty;
};

template <int W>
std::unique_ptr<EngineState> PackedSimulatorT<W>::save_state() const {
  auto state = std::make_unique<State>();
  state->now = now_;
  state->evals = evals_;
  state->driven = driven_;
  state->forced_val = forced_val_;
  state->forced = forced_;
  state->forced_nets = forced_nets_;
  state->ff_q = ff_q_;
  state->mems = mems_;
  state->mem_dirty = mem_dirty_;
  return state;
}

template <int W>
void PackedSimulatorT<W>::restore_state(const EngineState& state) {
  const auto* s = dynamic_cast<const State*>(&state);
  if (s == nullptr) {
    throw InvalidArgument(
        "restore_state: snapshot is not a bit-parallel-engine state");
  }
  if (s->driven.size() != netlist_.num_nets() ||
      s->ff_q.size() != netlist_.num_cells()) {
    throw InvalidArgument("restore_state: snapshot from a different design");
  }
  now_ = s->now;
  evals_ = s->evals;
  driven_ = s->driven;
  forced_val_ = s->forced_val;
  forced_ = s->forced;
  forced_nets_ = s->forced_nets;
  ff_q_ = s->ff_q;
  mems_ = s->mems;
  mem_dirty_ = s->mem_dirty;
}

namespace {

/// Plane-separated layout (all value planes, then all unknown planes): the
/// unknown planes of a settled design are almost entirely zero, so the
/// codec's RLE pass collapses them to a handful of bytes. For W=1 this is
/// byte-identical to the historical single-word format.
template <int W>
void write_packed_vec(util::ByteWriter& out,
                      const std::vector<PackedVecT<W>>& v) {
  out.varint(v.size());
  for (const PackedVecT<W>& p : v) {
    for (int k = 0; k < W; ++k) out.fixed64(p.val[k]);
  }
  for (const PackedVecT<W>& p : v) {
    for (int k = 0; k < W; ++k) out.fixed64(p.unk[k]);
  }
}

template <int W>
[[nodiscard]] std::vector<PackedVecT<W>> read_packed_vec(util::ByteReader& in) {
  // Two W*8-byte planes per entry.
  const std::size_t n = in.element_count(16 * static_cast<std::size_t>(W));
  std::vector<PackedVecT<W>> v(n);
  for (PackedVecT<W>& p : v) {
    for (int k = 0; k < W; ++k) p.val[k] = in.fixed64();
  }
  for (PackedVecT<W>& p : v) {
    for (int k = 0; k < W; ++k) p.unk[k] = in.fixed64();
  }
  return v;
}

/// Masks flatten to W words each; for W=1 this matches the historical
/// one-word-per-net u64_vec layout.
template <int W>
void write_mask_vec(util::ByteWriter& out, const std::vector<LaneMaskT<W>>& v) {
  std::vector<std::uint64_t> flat;
  flat.reserve(v.size() * static_cast<std::size_t>(W));
  for (const LaneMaskT<W>& m : v) {
    for (int k = 0; k < W; ++k) flat.push_back(m.w[k]);
  }
  out.u64_vec(flat);
}

template <int W>
[[nodiscard]] std::vector<LaneMaskT<W>> read_mask_vec(util::ByteReader& in) {
  const std::vector<std::uint64_t> flat = in.u64_vec();
  if (flat.size() % static_cast<std::size_t>(W) != 0) {
    throw InvalidArgument("packed state: lane-mask vector not a multiple of W");
  }
  std::vector<LaneMaskT<W>> v(flat.size() / static_cast<std::size_t>(W));
  for (std::size_t i = 0; i < v.size(); ++i) {
    for (int k = 0; k < W; ++k) {
      v[i].w[k] = flat[i * static_cast<std::size_t>(W) + static_cast<std::size_t>(k)];
    }
  }
  return v;
}

}  // namespace

template <int W>
void PackedSimulatorT<W>::serialize_state(const EngineState& state,
                                          util::ByteWriter& out) const {
  const auto* s = dynamic_cast<const State*>(&state);
  if (s == nullptr) {
    throw InvalidArgument(
        "serialize_state: snapshot is not a bit-parallel-engine state");
  }
  out.varint(s->now);
  out.varint(s->evals);
  write_packed_vec<W>(out, s->driven);
  write_packed_vec<W>(out, s->forced_val);
  write_mask_vec<W>(out, s->forced);
  out.varint(s->forced_nets.size());
  for (const std::uint32_t n : s->forced_nets) out.varint(n);
  write_packed_vec<W>(out, s->ff_q);
  out.varint(s->mems.size());
  for (const auto& mem : s->mems) out.u64_vec(mem);
  write_mask_vec<W>(out, s->mem_dirty);
}

template <int W>
std::unique_ptr<EngineState> PackedSimulatorT<W>::deserialize_state(
    util::ByteReader& in) const {
  auto s = std::make_unique<State>();
  s->now = in.varint();
  s->evals = in.varint();
  s->driven = read_packed_vec<W>(in);
  s->forced_val = read_packed_vec<W>(in);
  s->forced = read_mask_vec<W>(in);
  // element_count bounds every count by the remaining input (each entry is
  // at least one byte), so a malformed count cannot drive an oversized
  // allocation.
  const std::size_t num_forced_nets = in.element_count(1);
  s->forced_nets.reserve(num_forced_nets);
  for (std::size_t i = 0; i < num_forced_nets; ++i) {
    s->forced_nets.push_back(static_cast<std::uint32_t>(in.varint()));
  }
  s->ff_q = read_packed_vec<W>(in);
  const std::size_t num_mems = in.element_count(1);
  s->mems.reserve(num_mems);
  for (std::size_t m = 0; m < num_mems; ++m) s->mems.push_back(in.u64_vec());
  s->mem_dirty = read_mask_vec<W>(in);
  if (s->driven.size() != netlist_.num_nets() ||
      s->forced_val.size() != netlist_.num_nets() ||
      s->forced.size() != netlist_.num_nets() ||
      s->ff_q.size() != netlist_.num_cells()) {
    throw InvalidArgument("deserialize_state: snapshot from a different design");
  }
  // Memory arrays (64*W lane-major copies each), the dirty mask, and the
  // forced-net index list must match this engine's shape exactly: a
  // truncated array or an out-of-range net index would otherwise become an
  // out-of-bounds access on the next settle.
  if (s->mems.size() != mems_.size() || s->mem_dirty.size() != mem_dirty_.size()) {
    throw InvalidArgument("deserialize_state: memory count mismatch");
  }
  for (std::size_t m = 0; m < mems_.size(); ++m) {
    if (s->mems[m].size() != mems_[m].size()) {
      throw InvalidArgument("deserialize_state: memory array size mismatch");
    }
  }
  for (const std::uint32_t n : s->forced_nets) {
    if (n >= netlist_.num_nets()) {
      throw InvalidArgument("deserialize_state: forced net out of range");
    }
  }
  return s;
}

template <int W>
bool PackedSimulatorT<W>::state_matches(const EngineState& state) const {
  const auto* s = dynamic_cast<const State*>(&state);
  if (s == nullptr) return false;
  if (now_ != s->now || driven_ != s->driven || ff_q_ != s->ff_q ||
      forced_ != s->forced || mems_ != s->mems) {
    return false;
  }
  // Forced overlay values matter only on lanes where a force is active.
  for (std::size_t n = 0; n < forced_.size(); ++n) {
    const Mask& mask = forced_[n];
    if (mask.none()) continue;
    const Planes& a = forced_val_[n];
    const Planes& b = s->forced_val[n];
    for (int k = 0; k < W; ++k) {
      if (((a.val[k] ^ b.val[k]) | (a.unk[k] ^ b.unk[k])) & mask.w[k]) {
        return false;
      }
    }
  }
  return true;
}

template <int W>
typename PackedSimulatorT<W>::Planes PackedSimulatorT<W>::effective(
    NetId net) const {
  const auto n = net.index();
  const Mask& m = forced_[n];
  const Planes& d = driven_[n];
  std::uint64_t any = 0;
  for (int k = 0; k < W; ++k) any |= m.w[k];
  if (any == 0) return d;
  const Planes& f = forced_val_[n];
  Planes o;
  for (int k = 0; k < W; ++k) {
    o.val[k] = (d.val[k] & ~m.w[k]) | (f.val[k] & m.w[k]);
    o.unk[k] = (d.unk[k] & ~m.w[k]) | (f.unk[k] & m.w[k]);
  }
  return o;
}

template <int W>
void PackedSimulatorT<W>::write_net(NetId net, const Planes& v) {
  const auto n = net.index();
  Planes& cur = driven_[n];
  if (cur == v) return;
  const bool lane0_changed =
      (((cur.val[0] ^ v.val[0]) | (cur.unk[0] ^ v.unk[0])) & 1) != 0;
  cur = v;
  // The observer sees the golden slot only (per-slot VCD is meaningless).
  if (has_observer_ && lane0_changed && (forced_[n].w[0] & 1) == 0) {
    observer_(net, now_, wide_get(v, 0));
  }
}

template <int W>
void PackedSimulatorT<W>::note_forced(NetId net) {
  forced_nets_.push_back(static_cast<std::uint32_t>(net.index()));
}

template <int W>
typename PackedSimulatorT<W>::Planes PackedSimulatorT<W>::eval_comb(
    CellKind kind, const Planes* ins, std::size_t n) const {
  if constexpr (W == 4) {
    return eval_w4_(kind, ins, n);
  } else {
    // W=1: the scalar packed evaluator (identical formulas, single word).
    std::array<PackedLogic, 4> pins;
    for (std::size_t i = 0; i < n; ++i) pins[i] = ins[i].word(0);
    Planes o;
    o.set_word(0,
               eval_cell_packed(kind, std::span<const PackedLogic>(pins.data(), n)));
    return o;
  }
}

template <int W>
void PackedSimulatorT<W>::read_memory(const Cell& cell) {
  const MemoryInfo& mi = netlist_.memory(cell.memory_index);
  const auto m = static_cast<std::size_t>(cell.memory_index);
  const std::uint64_t words = mi.words;
  const auto& array = mems_[m];

  std::array<Planes, 64> addr_planes;
  Mask unk_lanes;
  Mask nonuni = mem_dirty_[m];
  for (int i = 0; i < mi.addr_bits; ++i) {
    const Planes p = wide_as_input(effective(cell.inputs[3u + i]));
    addr_planes[static_cast<std::size_t>(i)] = p;
    for (int k = 0; k < W; ++k) unk_lanes.w[k] |= p.unk[k];
    nonuni |= plane_nonuniform<W>(p);
  }
  auto lane_addr = [&](int l, bool& ok) {
    std::uint64_t addr = 0;
    if (unk_lanes.test(l)) {
      ok = false;
      return addr;
    }
    for (int i = 0; i < mi.addr_bits; ++i) {
      addr |= plane_bit<W>(addr_planes[static_cast<std::size_t>(i)].val, l) << i;
    }
    ok = addr < words;
    return addr;
  };

  // Fast path: decode the golden lane once and broadcast, then patch only
  // lanes whose address or array contents may differ from lane 0.
  std::array<Mask, 64> val_p{};
  std::array<Mask, 64> unk_p{};
  bool ok0 = false;
  const std::uint64_t addr0 = lane_addr(0, ok0);
  const std::uint64_t word0 = ok0 ? array[addr0] : 0;
  for (int b = 0; b < mi.width; ++b) {
    if (ok0) {
      if ((word0 >> b) & 1) val_p[static_cast<std::size_t>(b)] = ~Mask{};
    } else {
      unk_p[static_cast<std::size_t>(b)] = ~Mask{};
    }
  }
  Mask patch = nonuni;
  patch.reset(0);
  for_each_set_lane(patch, [&](int l) {
    bool ok = false;
    const std::uint64_t addr = lane_addr(l, ok);
    const int wk = l >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (l & 63);
    const std::uint64_t word =
        ok ? array[static_cast<std::size_t>(l) * words + addr] : 0;
    for (int b = 0; b < mi.width; ++b) {
      const auto bi = static_cast<std::size_t>(b);
      if (ok) {
        val_p[bi].w[wk] = (val_p[bi].w[wk] & ~bit) | ((word >> b) & 1 ? bit : 0);
        unk_p[bi].w[wk] &= ~bit;
      } else {
        val_p[bi].w[wk] &= ~bit;
        unk_p[bi].w[wk] |= bit;
      }
    }
  });
  for (int b = 0; b < mi.width; ++b) {
    const auto bi = static_cast<std::size_t>(b);
    Planes out;
    out.val = val_p[bi].w;
    out.unk = unk_p[bi].w;
    write_net(cell.outputs[bi], out);
  }
}

template <int W>
void PackedSimulatorT<W>::settle() {
  // Asynchronous reset acts level-sensitively, independent of the clock.
  for (const CellId id : reset_ffs_) {
    const Cell& cell = netlist_.cell(id);
    const Planes rn = wide_as_input(effective(cell.inputs[2]));
    const Planes& q = ff_q_[id.index()];
    Planes nq;
    std::uint64_t any = 0;
    for (int k = 0; k < W; ++k) {
      const std::uint64_t rn0 = ~rn.val[k] & ~rn.unk[k];
      const std::uint64_t q_is0 = ~q.val[k] & ~q.unk[k];
      const std::uint64_t q_isx = q.unk[k] & ~q.val[k];
      const std::uint64_t to0 = rn0 & ~q_is0;
      const std::uint64_t tox = rn.unk[k] & ~q_is0 & ~q_isx;
      any |= to0 | tox;
      nq.val[k] = q.val[k] & ~(to0 | tox);
      nq.unk[k] = (q.unk[k] & ~to0) | tox;
    }
    if (any == 0) continue;
    ff_q_[id.index()] = nq;
    write_net(cell.outputs[0], nq);
    write_net(cell.outputs[1], wide_not(nq));
  }
  Planes ins[4];
  for (const CellId id : eval_order_) {
    const Cell& cell = netlist_.cell(id);
    ++evals_;
    if (cell.kind == CellKind::kMemory) {
      read_memory(cell);
      continue;
    }
    for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
      ins[i] = effective(cell.inputs[i]);
    }
    write_net(cell.outputs[0], eval_comb(cell.kind, ins, cell.inputs.size()));
  }
}

template <int W>
void PackedSimulatorT<W>::clock_edge(const Mask& capture_mask) {
  settle();  // make sure D pins are current

  // Capture phase: compute every flip-flop's next state from the pre-edge
  // values (nonblocking assignment semantics), lane-wise. Lanes outside
  // capture_mask (clock forced in that slot) hold their state.
  for (const CellId id : seq_cells_) {
    const Cell& cell = netlist_.cell(id);
    if (cell.kind == CellKind::kMemory) continue;
    const Planes& q = ff_q_[id.index()];
    const Planes d = wide_as_input(effective(cell.inputs[0]));
    Planes nq = d;
    if (cell.kind == CellKind::kDffE) {
      const Planes en = wide_as_input(effective(cell.inputs[3]));
      for (int k = 0; k < W; ++k) {
        const std::uint64_t en1 = en.val[k];  // known 1 (val plane normalized)
        const std::uint64_t en0 = ~en.val[k] & ~en.unk[k];
        const std::uint64_t neq =
            ~netlist::packed_eq_mask(d.word(k), q.word(k));
        const std::uint64_t tox = en.unk[k] & neq;
        const std::uint64_t keep = en0 | (en.unk[k] & ~neq);
        nq.val[k] = (en1 & d.val[k]) | (keep & q.val[k]);
        nq.unk[k] = (en1 & d.unk[k]) | (keep & q.unk[k]) | tox;
      }
    }
    if (cell.kind != CellKind::kDff) {
      const Planes rn = wide_as_input(effective(cell.inputs[2]));
      for (int k = 0; k < W; ++k) {
        const std::uint64_t rn1 = rn.val[k];
        const std::uint64_t q_is0 = ~q.val[k] & ~q.unk[k];
        const std::uint64_t tox = rn.unk[k] & ~q_is0;
        // rn known-0 lanes and (rn X, q already 0) lanes resolve to L0.
        nq.val[k] = rn1 & nq.val[k];
        nq.unk[k] = (rn1 & nq.unk[k]) | tox;
      }
    }
    ff_next_[id.index()] = wide_select(capture_mask, nq, q);
  }

  // Memory write ports, from pre-edge values. Commit is safe before the FF
  // commit: arrays are only consumed by the settle below.
  const Mask capture_nonuni = mask_nonuniform<W>(capture_mask);
  for (const CellId id : seq_cells_) {
    const Cell& cell = netlist_.cell(id);
    if (cell.kind != CellKind::kMemory) continue;
    const MemoryInfo& mi = netlist_.memory(cell.memory_index);
    const auto m = static_cast<std::size_t>(cell.memory_index);
    const std::uint64_t words = mi.words;
    auto& array = mems_[m];

    const Planes en = wide_as_input(effective(cell.inputs[1]));
    const Planes we = wide_as_input(effective(cell.inputs[2]));
    std::array<Planes, 64> waddr;
    std::array<Planes, 64> wdata;
    Mask nonuni = mem_dirty_[m] | capture_nonuni | plane_nonuniform<W>(en) |
                  plane_nonuniform<W>(we);
    for (int i = 0; i < mi.addr_bits; ++i) {
      const Planes p =
          wide_as_input(effective(cell.inputs[3u + mi.addr_bits + i]));
      waddr[static_cast<std::size_t>(i)] = p;
      nonuni |= plane_nonuniform<W>(p);
    }
    for (int i = 0; i < mi.width; ++i) {
      const Planes p =
          wide_as_input(effective(cell.inputs[3u + 2u * mi.addr_bits + i]));
      wdata[static_cast<std::size_t>(i)] = p;
      nonuni |= plane_nonuniform<W>(p);
    }

    // Scalar write condition, per lane: EN and WE known 1, address and data
    // fully known, address in range.
    auto lane_write = [&](int l, std::uint64_t& addr, std::uint64_t& word) {
      if (!capture_mask.test(l)) return false;
      if (plane_bit<W>(en.val, l) == 0 || plane_bit<W>(we.val, l) == 0) {
        return false;
      }
      addr = 0;
      for (int i = 0; i < mi.addr_bits; ++i) {
        const Planes& p = waddr[static_cast<std::size_t>(i)];
        if (plane_bit<W>(p.unk, l) != 0) return false;
        addr |= plane_bit<W>(p.val, l) << i;
      }
      if (addr >= words) return false;
      word = 0;
      for (int i = 0; i < mi.width; ++i) {
        const Planes& p = wdata[static_cast<std::size_t>(i)];
        if (plane_bit<W>(p.unk, l) != 0) return false;
        word |= plane_bit<W>(p.val, l) << i;
      }
      return true;
    };

    std::uint64_t addr0 = 0;
    std::uint64_t word0 = 0;
    const bool w0 = lane_write(0, addr0, word0);
    // Lanes outside nonuni provably behave like lane 0.
    if (w0) {
      for (int l = 0; l < kSlots; ++l) {
        if (!nonuni.test(l)) {
          array[static_cast<std::size_t>(l) * words + addr0] = word0;
        }
      }
    }
    Mask patch = nonuni;
    patch.reset(0);
    for_each_set_lane(patch, [&](int l) {
      std::uint64_t addr = 0;
      std::uint64_t word = 0;
      const bool w = lane_write(l, addr, word);
      if (w) array[static_cast<std::size_t>(l) * words + addr] = word;
      if (w != w0 || (w && (addr != addr0 || word != word0))) {
        mem_dirty_[m].set(l);
      }
    });
  }

  // Commit flip-flops and propagate Q/QN.
  for (const CellId id : seq_cells_) {
    const Cell& cell = netlist_.cell(id);
    if (cell.kind == CellKind::kMemory) continue;
    const Planes& fin = ff_next_[id.index()];
    if (fin == ff_q_[id.index()]) continue;
    ff_q_[id.index()] = fin;
    write_net(cell.outputs[0], fin);
    write_net(cell.outputs[1], wide_not(fin));
  }

  settle();  // propagate the new state
}

template <int W>
void PackedSimulatorT<W>::set_input(NetId net, Logic v) {
  if (!netlist_.net(net).is_primary_input) {
    throw InvalidArgument("set_input on non-primary-input net");
  }
  const auto n = net.index();
  const Planes pv = wide_splat<W>(v);
  const Planes old = driven_[n];
  if (old == pv) return;
  driven_[n] = pv;
  if (is_clock_net_[n] != 0 && wide_get(old, 0) == Logic::L0 &&
      v == Logic::L1) {
    // Lanes forcing the clock net see no edge, exactly like the scalar
    // engine with a forced clock.
    const Mask capture = ~forced_[n];
    if (capture.any()) {
      clock_edge(capture);
      return;
    }
  }
  settle();
}

template <int W>
void PackedSimulatorT<W>::advance_to(std::uint64_t time_ps) {
  now_ = std::max(now_, time_ps);
}

template <int W>
void PackedSimulatorT<W>::force_net(NetId net, Logic v) {
  const auto n = net.index();
  if (forced_[n].none()) note_forced(net);
  forced_[n] = ~Mask{};
  forced_val_[n] = wide_splat<W>(v);
  settle();
}

template <int W>
void PackedSimulatorT<W>::release_net(NetId net) {
  if (forced_[net.index()].none()) return;
  forced_[net.index()] = Mask{};
  settle();
}

template <int W>
void PackedSimulatorT<W>::force_net_slot(NetId net, int slot, Logic v) {
  const auto n = net.index();
  if (forced_[n].none()) note_forced(net);
  forced_[n].set(slot);
  wide_set(forced_val_[n], slot, v);
  settle();
}

template <int W>
void PackedSimulatorT<W>::release_net_slot(NetId net, int slot) {
  const auto n = net.index();
  if (!forced_[n].test(slot)) return;
  forced_[n].reset(slot);
  settle();
}

template <int W>
void PackedSimulatorT<W>::deposit_ff(CellId ff, Logic q) {
  const Cell& cell = netlist_.cell(ff);
  if (!is_flip_flop(cell.kind)) {
    throw InvalidArgument("deposit_ff on non-flip-flop cell");
  }
  ff_q_[ff.index()] = wide_splat<W>(q);
  write_net(cell.outputs[0], ff_q_[ff.index()]);
  write_net(cell.outputs[1], wide_not(ff_q_[ff.index()]));
  settle();
}

template <int W>
void PackedSimulatorT<W>::deposit_ff_slot(CellId ff, int slot, Logic q) {
  const Cell& cell = netlist_.cell(ff);
  if (!is_flip_flop(cell.kind)) {
    throw InvalidArgument("deposit_ff on non-flip-flop cell");
  }
  wide_set(ff_q_[ff.index()], slot, q);
  write_net(cell.outputs[0], ff_q_[ff.index()]);
  write_net(cell.outputs[1], wide_not(ff_q_[ff.index()]));
  settle();
}

template <int W>
Logic PackedSimulatorT<W>::ff_state(CellId ff) const {
  return ff_state_slot(ff, 0);
}

template <int W>
Logic PackedSimulatorT<W>::ff_state_slot(CellId ff, int slot) const {
  const Cell& cell = netlist_.cell(ff);
  if (!is_flip_flop(cell.kind)) {
    throw InvalidArgument("ff_state on non-flip-flop cell");
  }
  return wide_get(ff_q_[ff.index()], slot);
}

template <int W>
void PackedSimulatorT<W>::write_mem_word(CellId mem, std::uint32_t word,
                                         std::uint64_t v) {
  const Cell& cell = netlist_.cell(mem);
  if (cell.kind != CellKind::kMemory) {
    throw InvalidArgument("write_mem_word on non-memory cell");
  }
  const MemoryInfo& mi = netlist_.memory(cell.memory_index);
  if (word >= mi.words) throw InvalidArgument("memory word out of range");
  auto& array = mems_[static_cast<std::size_t>(cell.memory_index)];
  for (int lane = 0; lane < kSlots; ++lane) {
    array[static_cast<std::size_t>(lane) * mi.words + word] = v;
  }
  settle();
}

template <int W>
void PackedSimulatorT<W>::write_mem_word_slot(CellId mem, int slot,
                                              std::uint32_t word,
                                              std::uint64_t v) {
  const Cell& cell = netlist_.cell(mem);
  if (cell.kind != CellKind::kMemory) {
    throw InvalidArgument("write_mem_word on non-memory cell");
  }
  const MemoryInfo& mi = netlist_.memory(cell.memory_index);
  if (word >= mi.words) throw InvalidArgument("memory word out of range");
  const auto m = static_cast<std::size_t>(cell.memory_index);
  mems_[m][static_cast<std::size_t>(slot) * mi.words + word] = v;
  // A golden-lane write diverges every other lane instead.
  if (slot == 0) {
    Mask all = ~Mask{};
    all.reset(0);
    mem_dirty_[m] |= all;
  } else {
    mem_dirty_[m].set(slot);
  }
  settle();
}

template <int W>
std::uint64_t PackedSimulatorT<W>::read_mem_word(CellId mem,
                                                 std::uint32_t word) const {
  return read_mem_word_slot(mem, 0, word);
}

template <int W>
std::uint64_t PackedSimulatorT<W>::read_mem_word_slot(CellId mem, int slot,
                                                      std::uint32_t word) const {
  const Cell& cell = netlist_.cell(mem);
  if (cell.kind != CellKind::kMemory) {
    throw InvalidArgument("read_mem_word on non-memory cell");
  }
  const MemoryInfo& mi = netlist_.memory(cell.memory_index);
  if (word >= mi.words) throw InvalidArgument("memory word out of range");
  return mems_[static_cast<std::size_t>(cell.memory_index)]
              [static_cast<std::size_t>(slot) * mi.words + word];
}

template <int W>
void PackedSimulatorT<W>::adopt_golden(const Engine& golden) {
  if (&golden.design() != &netlist_) {
    throw InvalidArgument("adopt_golden: engine built over a different design");
  }
  now_ = golden.now();
  const std::size_t num_nets = netlist_.num_nets();
  for (std::size_t n = 0; n < num_nets; ++n) {
    driven_[n] =
        wide_splat<W>(golden.value(NetId{static_cast<std::uint32_t>(n)}));
  }
  std::fill(forced_.begin(), forced_.end(), Mask{});
  forced_nets_.clear();
  std::vector<std::uint64_t> scratch;
  for (const CellId id : seq_cells_) {
    const Cell& cell = netlist_.cell(id);
    if (is_flip_flop(cell.kind)) {
      ff_q_[id.index()] = wide_splat<W>(golden.ff_state(id));
      continue;
    }
    const MemoryInfo& mi = netlist_.memory(cell.memory_index);
    const auto m = static_cast<std::size_t>(cell.memory_index);
    scratch.resize(mi.words);
    for (std::uint32_t w = 0; w < mi.words; ++w) {
      scratch[w] = golden.read_mem_word(id, w);
    }
    auto& array = mems_[m];
    for (int lane = 0; lane < kSlots; ++lane) {
      std::copy(scratch.begin(), scratch.end(),
                array.begin() + static_cast<std::ptrdiff_t>(
                                    static_cast<std::size_t>(lane) * mi.words));
    }
    mem_dirty_[m] = Mask{};
  }
}

template <int W>
typename PackedSimulatorT<W>::Mask PackedSimulatorT<W>::state_diff_from_golden() {
  Mask diff;
  for (const CellId id : seq_cells_) {
    if (netlist_.cell(id).kind == CellKind::kMemory) continue;
    diff |= plane_nonuniform<W>(ff_q_[id.index()]);
  }
  for (const Mask& dirty : mem_dirty_) diff |= dirty;
  // Compact the forced-net list while folding in active force masks: a lane
  // holding any force differs from the (never forced) golden lane.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < forced_nets_.size(); ++i) {
    const Mask& mask = forced_[forced_nets_[i]];
    if (mask.none()) continue;
    diff |= mask;
    forced_nets_[kept++] = forced_nets_[i];
  }
  forced_nets_.resize(kept);
  diff.reset(0);
  return diff;
}

template class PackedSimulatorT<1>;
template class PackedSimulatorT<4>;

}  // namespace ssresf::sim
