#include "sim/bit_parallel_sim.h"

#include <algorithm>
#include <array>
#include <bit>

#include "sim/levelized_sim.h"
#include "util/bytes.h"
#include "util/error.h"

namespace ssresf::sim {

using netlist::Cell;
using netlist::CellKind;
using netlist::eval_cell_packed;
using netlist::is_flip_flop;
using netlist::MemoryInfo;
using netlist::packed_as_input;
using netlist::packed_eq_mask;
using netlist::packed_get;
using netlist::packed_not;
using netlist::packed_select;
using netlist::packed_set;
using netlist::packed_splat;

namespace {

/// All-ones when bit 0 of x is set (broadcast of the golden lane's bit).
[[nodiscard]] constexpr std::uint64_t splat_lane0(std::uint64_t x) {
  return std::uint64_t{0} - (x & 1);
}

/// Lanes whose symbol differs from lane 0's symbol.
[[nodiscard]] constexpr std::uint64_t plane_nonuniform(PackedLogic p) {
  return (p.val ^ splat_lane0(p.val)) | (p.unk ^ splat_lane0(p.unk));
}

}  // namespace

BitParallelSimulator::BitParallelSimulator(const Netlist& netlist)
    : netlist_(netlist) {
  if (!netlist.finalized()) {
    throw InvalidArgument("BitParallelSimulator requires a finalized netlist");
  }
  // Settling in the exact levelized order is what keeps every lane
  // bit-identical to a scalar levelized run.
  eval_order_ = levelized_eval_order(netlist_);
  // Clock nets: primary inputs connected to any CK/CLK pin (same single
  // clock-domain model as the levelized engine).
  is_clock_net_.assign(netlist_.num_nets(), 0);
  for (const CellId id : netlist_.all_cells()) {
    const Cell& cell = netlist_.cell(id);
    if (is_flip_flop(cell.kind)) {
      is_clock_net_[cell.inputs[1].index()] = 1;
      seq_cells_.push_back(id);
      if (cell.kind != CellKind::kDff) reset_ffs_.push_back(id);
    } else if (cell.kind == CellKind::kMemory) {
      is_clock_net_[cell.inputs[0].index()] = 1;
      seq_cells_.push_back(id);
    }
  }
  ff_next_.resize(netlist_.num_cells());
  reset_state();
}

void BitParallelSimulator::reset_state() {
  now_ = 0;
  evals_ = 0;
  driven_.assign(netlist_.num_nets(), packed_splat(Logic::X));
  forced_val_.assign(netlist_.num_nets(), packed_splat(Logic::X));
  forced_.assign(netlist_.num_nets(), 0);
  forced_nets_.clear();
  ff_q_.assign(netlist_.num_cells(), packed_splat(Logic::X));
  mems_.clear();
  mem_dirty_.clear();
  for (const CellId id : netlist_.all_cells()) {
    const Cell& cell = netlist_.cell(id);
    if (cell.kind == CellKind::kMemory) {
      const MemoryInfo& mi = netlist_.memory(cell.memory_index);
      const auto m = static_cast<std::size_t>(cell.memory_index);
      if (mems_.size() <= m) {
        mems_.resize(m + 1);
        mem_dirty_.resize(m + 1, 0);
      }
      auto& array = mems_[m];
      array.assign(static_cast<std::size_t>(kSlots) * mi.words, 0);
      if (!mi.init.empty()) {
        for (int lane = 0; lane < kSlots; ++lane) {
          std::copy(mi.init.begin(), mi.init.end(),
                    array.begin() + static_cast<std::ptrdiff_t>(
                                        static_cast<std::size_t>(lane) * mi.words));
        }
      }
      mem_dirty_[m] = 0;
    } else if (cell.kind == CellKind::kConst0) {
      driven_[cell.outputs[0].index()] = packed_splat(Logic::L0);
    } else if (cell.kind == CellKind::kConst1) {
      driven_[cell.outputs[0].index()] = packed_splat(Logic::L1);
    }
  }
  settle();
}

struct BitParallelSimulator::State final : EngineState {
  std::uint64_t now = 0;
  std::uint64_t evals = 0;
  std::vector<PackedLogic> driven;
  std::vector<PackedLogic> forced_val;
  std::vector<std::uint64_t> forced;
  std::vector<std::uint32_t> forced_nets;
  std::vector<PackedLogic> ff_q;
  std::vector<std::vector<std::uint64_t>> mems;
  std::vector<std::uint64_t> mem_dirty;
};

std::unique_ptr<EngineState> BitParallelSimulator::save_state() const {
  auto state = std::make_unique<State>();
  state->now = now_;
  state->evals = evals_;
  state->driven = driven_;
  state->forced_val = forced_val_;
  state->forced = forced_;
  state->forced_nets = forced_nets_;
  state->ff_q = ff_q_;
  state->mems = mems_;
  state->mem_dirty = mem_dirty_;
  return state;
}

void BitParallelSimulator::restore_state(const EngineState& state) {
  const auto* s = dynamic_cast<const State*>(&state);
  if (s == nullptr) {
    throw InvalidArgument(
        "restore_state: snapshot is not a bit-parallel-engine state");
  }
  if (s->driven.size() != netlist_.num_nets() ||
      s->ff_q.size() != netlist_.num_cells()) {
    throw InvalidArgument("restore_state: snapshot from a different design");
  }
  now_ = s->now;
  evals_ = s->evals;
  driven_ = s->driven;
  forced_val_ = s->forced_val;
  forced_ = s->forced;
  forced_nets_ = s->forced_nets;
  ff_q_ = s->ff_q;
  mems_ = s->mems;
  mem_dirty_ = s->mem_dirty;
}

namespace {

/// Plane-separated layout (all value planes, then all unknown planes): the
/// unknown planes of a settled design are almost entirely zero, so the
/// codec's RLE pass collapses them to a handful of bytes.
void write_packed_vec(util::ByteWriter& out, const std::vector<PackedLogic>& v) {
  out.varint(v.size());
  for (const PackedLogic& p : v) out.fixed64(p.val);
  for (const PackedLogic& p : v) out.fixed64(p.unk);
}

[[nodiscard]] std::vector<PackedLogic> read_packed_vec(util::ByteReader& in) {
  const std::size_t n = in.element_count(16);  // two 8-byte planes per entry
  std::vector<PackedLogic> v(n);
  for (PackedLogic& p : v) p.val = in.fixed64();
  for (PackedLogic& p : v) p.unk = in.fixed64();
  return v;
}

}  // namespace

void BitParallelSimulator::serialize_state(const EngineState& state,
                                           util::ByteWriter& out) const {
  const auto* s = dynamic_cast<const State*>(&state);
  if (s == nullptr) {
    throw InvalidArgument(
        "serialize_state: snapshot is not a bit-parallel-engine state");
  }
  out.varint(s->now);
  out.varint(s->evals);
  write_packed_vec(out, s->driven);
  write_packed_vec(out, s->forced_val);
  out.u64_vec(s->forced);
  out.varint(s->forced_nets.size());
  for (const std::uint32_t n : s->forced_nets) out.varint(n);
  write_packed_vec(out, s->ff_q);
  out.varint(s->mems.size());
  for (const auto& mem : s->mems) out.u64_vec(mem);
  out.u64_vec(s->mem_dirty);
}

std::unique_ptr<EngineState> BitParallelSimulator::deserialize_state(
    util::ByteReader& in) const {
  auto s = std::make_unique<State>();
  s->now = in.varint();
  s->evals = in.varint();
  s->driven = read_packed_vec(in);
  s->forced_val = read_packed_vec(in);
  s->forced = in.u64_vec();
  // element_count bounds every count by the remaining input (each entry is
  // at least one byte), so a malformed count cannot drive an oversized
  // allocation.
  const std::size_t num_forced_nets = in.element_count(1);
  s->forced_nets.reserve(num_forced_nets);
  for (std::size_t i = 0; i < num_forced_nets; ++i) {
    s->forced_nets.push_back(static_cast<std::uint32_t>(in.varint()));
  }
  s->ff_q = read_packed_vec(in);
  const std::size_t num_mems = in.element_count(1);
  s->mems.reserve(num_mems);
  for (std::size_t m = 0; m < num_mems; ++m) s->mems.push_back(in.u64_vec());
  s->mem_dirty = in.u64_vec();
  if (s->driven.size() != netlist_.num_nets() ||
      s->forced_val.size() != netlist_.num_nets() ||
      s->forced.size() != netlist_.num_nets() ||
      s->ff_q.size() != netlist_.num_cells()) {
    throw InvalidArgument("deserialize_state: snapshot from a different design");
  }
  // Memory arrays (64 lane-major copies each), the dirty mask, and the
  // forced-net index list must match this engine's shape exactly: a
  // truncated array or an out-of-range net index would otherwise become an
  // out-of-bounds access on the next settle.
  if (s->mems.size() != mems_.size() || s->mem_dirty.size() != mem_dirty_.size()) {
    throw InvalidArgument("deserialize_state: memory count mismatch");
  }
  for (std::size_t m = 0; m < mems_.size(); ++m) {
    if (s->mems[m].size() != mems_[m].size()) {
      throw InvalidArgument("deserialize_state: memory array size mismatch");
    }
  }
  for (const std::uint32_t n : s->forced_nets) {
    if (n >= netlist_.num_nets()) {
      throw InvalidArgument("deserialize_state: forced net out of range");
    }
  }
  return s;
}

bool BitParallelSimulator::state_matches(const EngineState& state) const {
  const auto* s = dynamic_cast<const State*>(&state);
  if (s == nullptr) return false;
  if (now_ != s->now || driven_ != s->driven || ff_q_ != s->ff_q ||
      forced_ != s->forced || mems_ != s->mems) {
    return false;
  }
  // Forced overlay values matter only on lanes where a force is active.
  for (std::size_t n = 0; n < forced_.size(); ++n) {
    const std::uint64_t mask = forced_[n];
    if (mask == 0) continue;
    const PackedLogic a = forced_val_[n];
    const PackedLogic b = s->forced_val[n];
    if (((a.val ^ b.val) | (a.unk ^ b.unk)) & mask) return false;
  }
  return true;
}

PackedLogic BitParallelSimulator::effective(NetId net) const {
  const auto n = net.index();
  const std::uint64_t m = forced_[n];
  const PackedLogic d = driven_[n];
  if (m == 0) return d;
  const PackedLogic f = forced_val_[n];
  return {(d.val & ~m) | (f.val & m), (d.unk & ~m) | (f.unk & m)};
}

void BitParallelSimulator::write_net(NetId net, PackedLogic v) {
  const auto n = net.index();
  PackedLogic& cur = driven_[n];
  if (cur == v) return;
  const bool lane0_changed = (((cur.val ^ v.val) | (cur.unk ^ v.unk)) & 1) != 0;
  cur = v;
  // The observer sees the golden slot only (per-slot VCD is meaningless).
  if (has_observer_ && lane0_changed && (forced_[n] & 1) == 0) {
    observer_(net, now_, packed_get(v, 0));
  }
}

void BitParallelSimulator::note_forced(NetId net) {
  forced_nets_.push_back(static_cast<std::uint32_t>(net.index()));
}

void BitParallelSimulator::read_memory(const Cell& cell) {
  const MemoryInfo& mi = netlist_.memory(cell.memory_index);
  const auto m = static_cast<std::size_t>(cell.memory_index);
  const std::uint64_t words = mi.words;
  const auto& array = mems_[m];

  std::array<PackedLogic, 64> addr_planes;
  std::uint64_t unk_lanes = 0;
  std::uint64_t nonuni = mem_dirty_[m];
  for (int i = 0; i < mi.addr_bits; ++i) {
    const PackedLogic p = packed_as_input(effective(cell.inputs[3u + i]));
    addr_planes[static_cast<std::size_t>(i)] = p;
    unk_lanes |= p.unk;
    nonuni |= plane_nonuniform(p);
  }
  auto lane_addr = [&](int l, bool& ok) {
    std::uint64_t addr = 0;
    if ((unk_lanes >> l) & 1) {
      ok = false;
      return addr;
    }
    for (int i = 0; i < mi.addr_bits; ++i) {
      addr |= ((addr_planes[static_cast<std::size_t>(i)].val >> l) & 1)
              << i;
    }
    ok = addr < words;
    return addr;
  };

  // Fast path: decode the golden lane once and broadcast, then patch only
  // lanes whose address or array contents may differ from lane 0.
  std::array<std::uint64_t, 64> val_p{};
  std::array<std::uint64_t, 64> unk_p{};
  bool ok0 = false;
  const std::uint64_t addr0 = lane_addr(0, ok0);
  const std::uint64_t word0 = ok0 ? array[addr0] : 0;
  for (int b = 0; b < mi.width; ++b) {
    if (ok0) {
      val_p[static_cast<std::size_t>(b)] =
          (word0 >> b) & 1 ? ~std::uint64_t{0} : 0;
    } else {
      unk_p[static_cast<std::size_t>(b)] = ~std::uint64_t{0};
    }
  }
  for (std::uint64_t rest = nonuni & ~std::uint64_t{1}; rest != 0;
       rest &= rest - 1) {
    const int l = std::countr_zero(rest);
    bool ok = false;
    const std::uint64_t addr = lane_addr(l, ok);
    const std::uint64_t bit = std::uint64_t{1} << l;
    const std::uint64_t word =
        ok ? array[static_cast<std::size_t>(l) * words + addr] : 0;
    for (int b = 0; b < mi.width; ++b) {
      const auto bi = static_cast<std::size_t>(b);
      if (ok) {
        val_p[bi] = (val_p[bi] & ~bit) | ((word >> b) & 1 ? bit : 0);
        unk_p[bi] &= ~bit;
      } else {
        val_p[bi] &= ~bit;
        unk_p[bi] |= bit;
      }
    }
  }
  for (int b = 0; b < mi.width; ++b) {
    const auto bi = static_cast<std::size_t>(b);
    write_net(cell.outputs[bi], {val_p[bi], unk_p[bi]});
  }
}

void BitParallelSimulator::settle() {
  // Asynchronous reset acts level-sensitively, independent of the clock.
  for (const CellId id : reset_ffs_) {
    const Cell& cell = netlist_.cell(id);
    const PackedLogic rn = packed_as_input(effective(cell.inputs[2]));
    const PackedLogic q = ff_q_[id.index()];
    const std::uint64_t rn0 = ~rn.val & ~rn.unk;
    const std::uint64_t q_is0 = ~q.val & ~q.unk;
    const std::uint64_t q_isx = q.unk & ~q.val;
    const std::uint64_t to0 = rn0 & ~q_is0;
    const std::uint64_t tox = rn.unk & ~q_is0 & ~q_isx;
    if ((to0 | tox) == 0) continue;
    const PackedLogic nq{q.val & ~(to0 | tox), (q.unk & ~to0) | tox};
    ff_q_[id.index()] = nq;
    write_net(cell.outputs[0], nq);
    write_net(cell.outputs[1], packed_not(nq));
  }
  PackedLogic ins[4];
  for (const CellId id : eval_order_) {
    const Cell& cell = netlist_.cell(id);
    ++evals_;
    if (cell.kind == CellKind::kMemory) {
      read_memory(cell);
      continue;
    }
    for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
      ins[i] = effective(cell.inputs[i]);
    }
    write_net(cell.outputs[0],
              eval_cell_packed(cell.kind, std::span<const PackedLogic>(
                                              ins, cell.inputs.size())));
  }
}

void BitParallelSimulator::clock_edge(std::uint64_t capture_mask) {
  settle();  // make sure D pins are current

  // Capture phase: compute every flip-flop's next state from the pre-edge
  // values (nonblocking assignment semantics), lane-wise. Lanes outside
  // capture_mask (clock forced in that slot) hold their state.
  for (const CellId id : seq_cells_) {
    const Cell& cell = netlist_.cell(id);
    if (cell.kind == CellKind::kMemory) continue;
    const PackedLogic q = ff_q_[id.index()];
    const PackedLogic d = packed_as_input(effective(cell.inputs[0]));
    PackedLogic nq = d;
    if (cell.kind == CellKind::kDffE) {
      const PackedLogic en = packed_as_input(effective(cell.inputs[3]));
      const std::uint64_t en1 = en.val;  // known 1 (val plane is normalized)
      const std::uint64_t en0 = ~en.val & ~en.unk;
      const std::uint64_t neq = ~packed_eq_mask(d, q);
      const std::uint64_t tox = en.unk & neq;
      const std::uint64_t keep = en0 | (en.unk & ~neq);
      nq.val = (en1 & d.val) | (keep & q.val);
      nq.unk = (en1 & d.unk) | (keep & q.unk) | tox;
    }
    if (cell.kind != CellKind::kDff) {
      const PackedLogic rn = packed_as_input(effective(cell.inputs[2]));
      const std::uint64_t rn1 = rn.val;
      const std::uint64_t q_is0 = ~q.val & ~q.unk;
      const std::uint64_t tox = rn.unk & ~q_is0;
      // rn known-0 lanes and (rn X, q already 0) lanes resolve to L0.
      nq.val = rn1 & nq.val;
      nq.unk = (rn1 & nq.unk) | tox;
    }
    ff_next_[id.index()] = packed_select(capture_mask, nq, q);
  }

  // Memory write ports, from pre-edge values. Commit is safe before the FF
  // commit: arrays are only consumed by the settle below.
  const std::uint64_t capture_nonuni =
      capture_mask ^ splat_lane0(capture_mask);
  for (const CellId id : seq_cells_) {
    const Cell& cell = netlist_.cell(id);
    if (cell.kind != CellKind::kMemory) continue;
    const MemoryInfo& mi = netlist_.memory(cell.memory_index);
    const auto m = static_cast<std::size_t>(cell.memory_index);
    const std::uint64_t words = mi.words;
    auto& array = mems_[m];

    const PackedLogic en = packed_as_input(effective(cell.inputs[1]));
    const PackedLogic we = packed_as_input(effective(cell.inputs[2]));
    std::array<PackedLogic, 64> waddr;
    std::array<PackedLogic, 64> wdata;
    std::uint64_t nonuni = mem_dirty_[m] | capture_nonuni |
                           plane_nonuniform(en) | plane_nonuniform(we);
    for (int i = 0; i < mi.addr_bits; ++i) {
      const PackedLogic p =
          packed_as_input(effective(cell.inputs[3u + mi.addr_bits + i]));
      waddr[static_cast<std::size_t>(i)] = p;
      nonuni |= plane_nonuniform(p);
    }
    for (int i = 0; i < mi.width; ++i) {
      const PackedLogic p =
          packed_as_input(effective(cell.inputs[3u + 2u * mi.addr_bits + i]));
      wdata[static_cast<std::size_t>(i)] = p;
      nonuni |= plane_nonuniform(p);
    }

    // Scalar write condition, per lane: EN and WE known 1, address and data
    // fully known, address in range.
    auto lane_write = [&](int l, std::uint64_t& addr, std::uint64_t& word) {
      if (!((capture_mask >> l) & 1)) return false;
      if (!((en.val >> l) & 1) || !((we.val >> l) & 1)) return false;
      addr = 0;
      for (int i = 0; i < mi.addr_bits; ++i) {
        const PackedLogic p = waddr[static_cast<std::size_t>(i)];
        if ((p.unk >> l) & 1) return false;
        addr |= ((p.val >> l) & 1) << i;
      }
      if (addr >= words) return false;
      word = 0;
      for (int i = 0; i < mi.width; ++i) {
        const PackedLogic p = wdata[static_cast<std::size_t>(i)];
        if ((p.unk >> l) & 1) return false;
        word |= ((p.val >> l) & 1) << i;
      }
      return true;
    };

    std::uint64_t addr0 = 0;
    std::uint64_t word0 = 0;
    const bool w0 = lane_write(0, addr0, word0);
    // Lanes outside nonuni provably behave like lane 0.
    if (w0) {
      for (int l = 0; l < kSlots; ++l) {
        if (!((nonuni >> l) & 1)) {
          array[static_cast<std::size_t>(l) * words + addr0] = word0;
        }
      }
    }
    for (std::uint64_t rest = nonuni & ~std::uint64_t{1}; rest != 0;
         rest &= rest - 1) {
      const int l = std::countr_zero(rest);
      std::uint64_t addr = 0;
      std::uint64_t word = 0;
      const bool w = lane_write(l, addr, word);
      if (w) array[static_cast<std::size_t>(l) * words + addr] = word;
      if (w != w0 || (w && (addr != addr0 || word != word0))) {
        mem_dirty_[m] |= std::uint64_t{1} << l;
      }
    }
  }

  // Commit flip-flops and propagate Q/QN.
  for (const CellId id : seq_cells_) {
    const Cell& cell = netlist_.cell(id);
    if (cell.kind == CellKind::kMemory) continue;
    const PackedLogic fin = ff_next_[id.index()];
    if (fin == ff_q_[id.index()]) continue;
    ff_q_[id.index()] = fin;
    write_net(cell.outputs[0], fin);
    write_net(cell.outputs[1], packed_not(fin));
  }

  settle();  // propagate the new state
}

void BitParallelSimulator::set_input(NetId net, Logic v) {
  if (!netlist_.net(net).is_primary_input) {
    throw InvalidArgument("set_input on non-primary-input net");
  }
  const auto n = net.index();
  const PackedLogic pv = packed_splat(v);
  const PackedLogic old = driven_[n];
  if (old == pv) return;
  driven_[n] = pv;
  if (is_clock_net_[n] != 0 && packed_get(old, 0) == Logic::L0 &&
      v == Logic::L1) {
    // Lanes forcing the clock net see no edge, exactly like the scalar
    // engine with a forced clock.
    const std::uint64_t capture = ~forced_[n];
    if (capture != 0) {
      clock_edge(capture);
      return;
    }
  }
  settle();
}

void BitParallelSimulator::advance_to(std::uint64_t time_ps) {
  now_ = std::max(now_, time_ps);
}

void BitParallelSimulator::force_net(NetId net, Logic v) {
  const auto n = net.index();
  if (forced_[n] == 0) note_forced(net);
  forced_[n] = ~std::uint64_t{0};
  forced_val_[n] = packed_splat(v);
  settle();
}

void BitParallelSimulator::release_net(NetId net) {
  if (forced_[net.index()] == 0) return;
  forced_[net.index()] = 0;
  settle();
}

void BitParallelSimulator::force_net_slot(NetId net, int slot, Logic v) {
  const auto n = net.index();
  if (forced_[n] == 0) note_forced(net);
  forced_[n] |= std::uint64_t{1} << slot;
  packed_set(forced_val_[n], slot, v);
  settle();
}

void BitParallelSimulator::release_net_slot(NetId net, int slot) {
  const auto n = net.index();
  const std::uint64_t bit = std::uint64_t{1} << slot;
  if ((forced_[n] & bit) == 0) return;
  forced_[n] &= ~bit;
  settle();
}

void BitParallelSimulator::deposit_ff(CellId ff, Logic q) {
  const Cell& cell = netlist_.cell(ff);
  if (!is_flip_flop(cell.kind)) {
    throw InvalidArgument("deposit_ff on non-flip-flop cell");
  }
  ff_q_[ff.index()] = packed_splat(q);
  write_net(cell.outputs[0], ff_q_[ff.index()]);
  write_net(cell.outputs[1], packed_not(ff_q_[ff.index()]));
  settle();
}

void BitParallelSimulator::deposit_ff_slot(CellId ff, int slot, Logic q) {
  const Cell& cell = netlist_.cell(ff);
  if (!is_flip_flop(cell.kind)) {
    throw InvalidArgument("deposit_ff on non-flip-flop cell");
  }
  packed_set(ff_q_[ff.index()], slot, q);
  write_net(cell.outputs[0], ff_q_[ff.index()]);
  write_net(cell.outputs[1], packed_not(ff_q_[ff.index()]));
  settle();
}

Logic BitParallelSimulator::ff_state(CellId ff) const {
  return ff_state_slot(ff, 0);
}

Logic BitParallelSimulator::ff_state_slot(CellId ff, int slot) const {
  const Cell& cell = netlist_.cell(ff);
  if (!is_flip_flop(cell.kind)) {
    throw InvalidArgument("ff_state on non-flip-flop cell");
  }
  return packed_get(ff_q_[ff.index()], slot);
}

void BitParallelSimulator::write_mem_word(CellId mem, std::uint32_t word,
                                          std::uint64_t v) {
  const Cell& cell = netlist_.cell(mem);
  if (cell.kind != CellKind::kMemory) {
    throw InvalidArgument("write_mem_word on non-memory cell");
  }
  const MemoryInfo& mi = netlist_.memory(cell.memory_index);
  if (word >= mi.words) throw InvalidArgument("memory word out of range");
  auto& array = mems_[static_cast<std::size_t>(cell.memory_index)];
  for (int lane = 0; lane < kSlots; ++lane) {
    array[static_cast<std::size_t>(lane) * mi.words + word] = v;
  }
  settle();
}

void BitParallelSimulator::write_mem_word_slot(CellId mem, int slot,
                                               std::uint32_t word,
                                               std::uint64_t v) {
  const Cell& cell = netlist_.cell(mem);
  if (cell.kind != CellKind::kMemory) {
    throw InvalidArgument("write_mem_word on non-memory cell");
  }
  const MemoryInfo& mi = netlist_.memory(cell.memory_index);
  if (word >= mi.words) throw InvalidArgument("memory word out of range");
  const auto m = static_cast<std::size_t>(cell.memory_index);
  mems_[m][static_cast<std::size_t>(slot) * mi.words + word] = v;
  // A golden-lane write diverges every other lane instead.
  mem_dirty_[m] |= slot == 0 ? ~std::uint64_t{1} : std::uint64_t{1} << slot;
  settle();
}

std::uint64_t BitParallelSimulator::read_mem_word(CellId mem,
                                                  std::uint32_t word) const {
  return read_mem_word_slot(mem, 0, word);
}

std::uint64_t BitParallelSimulator::read_mem_word_slot(
    CellId mem, int slot, std::uint32_t word) const {
  const Cell& cell = netlist_.cell(mem);
  if (cell.kind != CellKind::kMemory) {
    throw InvalidArgument("read_mem_word on non-memory cell");
  }
  const MemoryInfo& mi = netlist_.memory(cell.memory_index);
  if (word >= mi.words) throw InvalidArgument("memory word out of range");
  return mems_[static_cast<std::size_t>(cell.memory_index)]
              [static_cast<std::size_t>(slot) * mi.words + word];
}

void BitParallelSimulator::adopt_golden(const Engine& golden) {
  if (&golden.design() != &netlist_) {
    throw InvalidArgument("adopt_golden: engine built over a different design");
  }
  now_ = golden.now();
  const std::size_t num_nets = netlist_.num_nets();
  for (std::size_t n = 0; n < num_nets; ++n) {
    driven_[n] = packed_splat(golden.value(NetId{static_cast<std::uint32_t>(n)}));
  }
  std::fill(forced_.begin(), forced_.end(), 0);
  forced_nets_.clear();
  std::vector<std::uint64_t> scratch;
  for (const CellId id : seq_cells_) {
    const Cell& cell = netlist_.cell(id);
    if (is_flip_flop(cell.kind)) {
      ff_q_[id.index()] = packed_splat(golden.ff_state(id));
      continue;
    }
    const MemoryInfo& mi = netlist_.memory(cell.memory_index);
    const auto m = static_cast<std::size_t>(cell.memory_index);
    scratch.resize(mi.words);
    for (std::uint32_t w = 0; w < mi.words; ++w) {
      scratch[w] = golden.read_mem_word(id, w);
    }
    auto& array = mems_[m];
    for (int lane = 0; lane < kSlots; ++lane) {
      std::copy(scratch.begin(), scratch.end(),
                array.begin() + static_cast<std::ptrdiff_t>(
                                    static_cast<std::size_t>(lane) * mi.words));
    }
    mem_dirty_[m] = 0;
  }
}

std::uint64_t BitParallelSimulator::state_diff_from_golden() {
  std::uint64_t diff = 0;
  for (const CellId id : seq_cells_) {
    if (netlist_.cell(id).kind == CellKind::kMemory) continue;
    const PackedLogic q = ff_q_[id.index()];
    diff |= (q.val ^ splat_lane0(q.val)) | (q.unk ^ splat_lane0(q.unk));
  }
  for (const std::uint64_t dirty : mem_dirty_) diff |= dirty;
  // Compact the forced-net list while folding in active force masks: a lane
  // holding any force differs from the (never forced) golden lane.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < forced_nets_.size(); ++i) {
    const std::uint64_t mask = forced_[forced_nets_[i]];
    if (mask == 0) continue;
    diff |= mask;
    forced_nets_[kept++] = forced_nets_[i];
  }
  forced_nets_.resize(kept);
  return diff & ~std::uint64_t{1};
}

}  // namespace ssresf::sim
