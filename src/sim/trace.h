#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/logic.h"
#include "netlist/ids.h"

namespace ssresf::sim {

/// Cycle-by-cycle samples of a set of monitored nets ("the chip's main
/// output signals" in the paper). Golden-vs-faulty trace comparison is the
/// soft-error detector of the fault-injection campaign.
class OutputTrace {
 public:
  OutputTrace() = default;
  explicit OutputTrace(std::vector<netlist::NetId> nets)
      : nets_(std::move(nets)) {}

  [[nodiscard]] const std::vector<netlist::NetId>& nets() const { return nets_; }

  void append_cycle(std::vector<netlist::Logic> sample);

  /// Drop all recorded cycles, keeping the monitored-net list. Lets a
  /// testbench be reused across faulty runs without reallocating.
  void clear_cycles() { samples_.clear(); }

  [[nodiscard]] std::size_t num_cycles() const { return samples_.size(); }
  [[nodiscard]] const std::vector<netlist::Logic>& cycle(std::size_t i) const;

  /// Copy of the first `n` cycles (n must not exceed num_cycles). Used to
  /// seed a resumed testbench with the cycles a checkpoint already covers.
  [[nodiscard]] OutputTrace prefix(std::size_t n) const;

  /// First cycle where the traces differ, if any. Traces of different length
  /// differ at the first cycle beyond the shorter one.
  [[nodiscard]] static std::optional<std::size_t> first_mismatch(
      const OutputTrace& a, const OutputTrace& b);

  /// Number of cycles whose samples differ (for severity metrics).
  [[nodiscard]] static std::size_t mismatch_count(const OutputTrace& a,
                                                  const OutputTrace& b);

  /// Render a cycle's sample as a string of 0/1/x/z characters.
  [[nodiscard]] std::string cycle_string(std::size_t i) const;

 private:
  std::vector<netlist::NetId> nets_;
  std::vector<std::vector<netlist::Logic>> samples_;
};

}  // namespace ssresf::sim
