#include "sim/testbench.h"

#include "util/error.h"

namespace ssresf::sim {

Testbench::Testbench(Engine& engine, TestbenchConfig config)
    : engine_(engine), config_(std::move(config)), trace_(config_.monitored) {
  if (!config_.clk.valid()) throw InvalidArgument("testbench needs a clock");
  if (config_.clock_period_ps < 4) {
    throw InvalidArgument("clock period too small");
  }
  engine_.set_input(config_.clk, Logic::L0);
  if (config_.rstn.valid()) engine_.set_input(config_.rstn, Logic::L1);
}

void Testbench::reset() {
  if (config_.rstn.valid()) engine_.set_input(config_.rstn, Logic::L0);
  run_cycles(config_.reset_cycles);
  if (config_.rstn.valid()) engine_.set_input(config_.rstn, Logic::L1);
}

void Testbench::resume_at(std::uint64_t cycle, OutputTrace prefix) {
  if (cycles_ != 0 || trace_.num_cycles() != 0) {
    throw InvalidArgument("resume_at on a testbench that already ran");
  }
  if (prefix.num_cycles() != cycle) {
    throw InvalidArgument("resume_at: prefix length does not match cycle");
  }
  if (prefix.nets() != config_.monitored) {
    throw InvalidArgument("resume_at: prefix monitors different nets");
  }
  trace_ = std::move(prefix);
  cycles_ = cycle;
}

void Testbench::resume_at(std::uint64_t cycle) {
  if (cycles_ != 0 || trace_.num_cycles() != 0) {
    throw InvalidArgument("resume_at on a testbench that already ran");
  }
  cycles_ = cycle;
  trace_offset_ = cycle;
}

void Testbench::restart() {
  trace_.clear_cycles();
  cycles_ = 0;
  trace_offset_ = 0;
  actions_.clear();
  reference_ = nullptr;
  confirm_cycles_ = 0;
  divergence_.reset();
  stop_after_cycle_.reset();
  stopped_early_ = false;
  engine_.set_input(config_.clk, Logic::L0);
  if (config_.rstn.valid()) engine_.set_input(config_.rstn, Logic::L1);
}

void Testbench::compare_against(const OutputTrace* golden, int confirm_cycles) {
  reference_ = golden;
  confirm_cycles_ = confirm_cycles;
  divergence_.reset();
  stop_after_cycle_.reset();
  stopped_early_ = false;
}

void Testbench::run_cycles(int n) {
  for (int i = 0; i < n; ++i) {
    if (stop_after_cycle_ && cycles_ >= *stop_after_cycle_) {
      stopped_early_ = true;
      return;
    }
    const std::uint64_t start = cycles_ * config_.clock_period_ps;
    const std::uint64_t rise = start + config_.clock_period_ps / 2;
    const std::uint64_t end = start + config_.clock_period_ps;

    drain_actions_until(rise);
    engine_.advance_to(rise);
    sample();  // settled values of this cycle, just before the capturing edge
    engine_.set_input(config_.clk, Logic::L1);

    drain_actions_until(end);
    engine_.advance_to(end);
    engine_.set_input(config_.clk, Logic::L0);
    ++cycles_;
  }
}

void Testbench::at(std::uint64_t time_ps, std::function<void(Engine&)> action) {
  actions_.emplace(time_ps, std::move(action));
}

void Testbench::drain_actions_until(std::uint64_t time_ps) {
  while (!actions_.empty() && actions_.begin()->first < time_ps) {
    auto it = actions_.begin();
    engine_.advance_to(std::max(it->first, engine_.now()));
    auto action = std::move(it->second);
    actions_.erase(it);
    action(engine_);
  }
}

void Testbench::sample() {
  std::vector<Logic> sample;
  sample.reserve(config_.monitored.size());
  for (const NetId net : config_.monitored) {
    sample.push_back(engine_.value(net));
  }
  trace_.append_cycle(std::move(sample));

  if (reference_ == nullptr || divergence_.has_value()) return;
  const std::size_t local = trace_.num_cycles() - 1;
  const std::size_t i = static_cast<std::size_t>(trace_offset_) + local;
  if (i >= reference_->num_cycles() ||
      trace_.cycle(local) != reference_->cycle(i)) {
    divergence_ = i;
    if (confirm_cycles_ >= 0) {
      // Finish the current cycle, then allow the confirmation window.
      stop_after_cycle_ =
          cycles_ + 1 + static_cast<std::uint64_t>(confirm_cycles_);
    }
  }
}

}  // namespace ssresf::sim
