#include "sim/trace.h"

#include <algorithm>

#include "util/error.h"

namespace ssresf::sim {

void OutputTrace::append_cycle(std::vector<netlist::Logic> sample) {
  if (sample.size() != nets_.size()) {
    throw InvalidArgument("trace sample width mismatch");
  }
  samples_.push_back(std::move(sample));
}

const std::vector<netlist::Logic>& OutputTrace::cycle(std::size_t i) const {
  if (i >= samples_.size()) throw InvalidArgument("trace cycle out of range");
  return samples_[i];
}

OutputTrace OutputTrace::prefix(std::size_t n) const {
  if (n > samples_.size()) throw InvalidArgument("trace prefix out of range");
  OutputTrace out(nets_);
  out.samples_.assign(samples_.begin(),
                      samples_.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

std::optional<std::size_t> OutputTrace::first_mismatch(const OutputTrace& a,
                                                       const OutputTrace& b) {
  const std::size_t common = std::min(a.num_cycles(), b.num_cycles());
  for (std::size_t i = 0; i < common; ++i) {
    if (a.samples_[i] != b.samples_[i]) return i;
  }
  if (a.num_cycles() != b.num_cycles()) return common;
  return std::nullopt;
}

std::size_t OutputTrace::mismatch_count(const OutputTrace& a,
                                        const OutputTrace& b) {
  const std::size_t common = std::min(a.num_cycles(), b.num_cycles());
  std::size_t count = 0;
  for (std::size_t i = 0; i < common; ++i) {
    if (a.samples_[i] != b.samples_[i]) ++count;
  }
  count += std::max(a.num_cycles(), b.num_cycles()) - common;
  return count;
}

std::string OutputTrace::cycle_string(std::size_t i) const {
  const auto& sample = cycle(i);
  std::string out;
  out.reserve(sample.size());
  for (const netlist::Logic v : sample) out += netlist::to_char(v);
  return out;
}

}  // namespace ssresf::sim
