#pragma once

#include <memory>
#include <span>
#include <vector>

#include "fi/campaign.h"
#include "sim/testbench.h"

/// Internal execution layer of the fault-injection campaign, shared by
/// fi::run_campaign (single process) and the distributed shard runner in
/// fi/shard.h. The split is the backbone of the distribution model:
///
///   prepare_campaign  — everything that must be identical in every
///                       participant: golden run, clustering, sampling, the
///                       flattened injection plan, and (for executors) the
///                       golden trace + checkpoint ladder. Pure function of
///                       (model, config, database).
///   execute_injections — simulates an arbitrary subset of the plan, keyed
///                       by global injection index. Outcomes depend only on
///                       (seed, index), never on the subset or its order.
///   finalize_campaign — deterministic aggregation of a fully populated
///                       record vector into the CampaignResult.
///
/// Because every phase is deterministic in (model, config, db, index), a
/// campaign executed as N shards in N processes finalizes to a result
/// byte-identical to the single-process run.
namespace ssresf::fi::detail {

/// One entry of the flattened injection plan. The global index i is the
/// entry's position: it names the RNG stream and the record slot, so the
/// outcome of entry i is independent of which worker — thread or process —
/// simulates it and when.
struct PlannedInjection {
  int cluster = 0;
  netlist::CellId cell;
};

/// Engine kind that runs all golden (fault-free) work for `config`: the
/// scalar levelized engine stands in for the bit-parallel engine (identical
/// timing model, 64x smaller snapshots); the other engines are their own
/// golden engine.
[[nodiscard]] inline sim::EngineKind golden_engine_kind(
    const CampaignConfig& config) {
  return config.engine == sim::EngineKind::kBitParallel
             ? sim::EngineKind::kLevelized
             : config.engine;
}

struct CampaignPrep {
  cluster::ClusteringResult clustering;
  std::vector<PlannedInjection> plan;
  std::vector<double> cell_xsects;  // per cell, at the campaign LET
  int run_cycles = 0;               // post-reset workload length
  std::uint64_t clock_period_ps = 0;
  std::uint64_t window_ps = 0;  // run_cycles * period
  std::uint64_t t0 = 0;         // earliest strike time
  std::uint64_t t1 = 0;         // latest strike time
  sim::TestbenchConfig tb_config;
  int total_cycles = 0;  // reset + run_cycles, every faulty timeline's span

  // Execution-only members (empty when prepared with for_execution=false):
  // the golden reference trace and the checkpoint ladder.
  sim::OutputTrace golden_trace;
  struct Rung {
    int cycle = 0;
    std::unique_ptr<sim::EngineState> state;
  };
  std::vector<Rung> ladder;
};

/// Golden run, clustering, sampling, plan flattening. `for_execution=false`
/// skips the golden replay and checkpoint ladder — sufficient for planning
/// and for merging shard records, where no injection is simulated.
[[nodiscard]] CampaignPrep prepare_campaign(
    const soc::SocModel& model, const CampaignConfig& config,
    const radiation::SoftErrorDatabase& database, bool for_execution);

/// Simulates the plan entries whose global indices are listed in `owned`
/// (ascending, no duplicates), writing records[i] for each; other slots are
/// left untouched. Honors config.threads within this process.
void execute_injections(const soc::SocModel& model,
                        const CampaignConfig& config, const CampaignPrep& prep,
                        std::span<const std::size_t> owned,
                        std::vector<InjectionRecord>& records);

/// Aggregates fully populated records (one per plan entry) into the final
/// result. Consumes the prep's clustering/xsect tables.
[[nodiscard]] CampaignResult finalize_campaign(
    const soc::SocModel& model, const CampaignConfig& config,
    const radiation::SoftErrorDatabase& database, CampaignPrep&& prep,
    std::vector<InjectionRecord>&& records);

/// Order-independent integer counters a record stream folds into — the sole
/// input (besides the prep tables) of the stats kernel below. Integer
/// accumulation commutes, so any arrival order (threads, shards, socket
/// workers) produces the same counters and therefore bit-identical doubles.
struct StatsCounters {
  std::span<const std::size_t> cluster_samples;  // one per cluster
  std::span<const std::size_t> cluster_errors;   // one per cluster
  std::span<const std::size_t> class_samples;    // kModuleClassCount
  std::span<const std::size_t> class_errors;     // kModuleClassCount
};

/// The one stats kernel: reduces counters to per-cluster / per-class /
/// chip-level statistics (Eq. 2, Table I). finalize_campaign and the
/// streaming fi::CampaignAggregator both call this, which is what makes
/// "streaming stats == vector stats" structural rather than coincidental.
/// Fills everything except records/clustering/latency/timing bookkeeping.
[[nodiscard]] CampaignStats compute_campaign_stats(
    const soc::SocModel& model, const CampaignConfig& config,
    const radiation::SoftErrorDatabase& database,
    const cluster::ClusteringResult& clustering,
    std::span<const double> cell_xsects, std::uint64_t window_ps,
    const StatsCounters& counters);

}  // namespace ssresf::fi::detail
