#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fi/shard.h"

/// Streaming record flow: the columnar `.ssfs` v2 store and the
/// RecordSink / RecordSource API every record producer and consumer in the
/// framework now speaks.
///
/// The v1 design funnelled every campaign through one resident
/// vector<InjectionRecord> — run_campaign returned it, merge_shard_files
/// rebuilt it, the socket coordinator buffered every worker's frames into
/// it — capping campaign volume at coordinator RAM. v2 inverts the flow:
///
///   producers (run_campaign, run_campaign_shard, merge, coordinator)
///       --- RecordBatch --->  RecordSink   (append / flush)
///   consumers (ShardFileReader, columnar reader, build_dataset, CSV)
///       <-- RecordBatch ----  RecordSource (next_batch)
///
/// and statistics come from fi::CampaignAggregator, a sink that folds each
/// batch into order-independent integer counters and reduces them through
/// the same stats kernel finalize_campaign uses — so the streaming numbers
/// are bit-identical to the vector path's, while coordinator peak memory is
/// bounded by one batch.
///
/// Ordering contract:
///   - RecordSink::append may be called in ANY batch order (the socket
///     coordinator appends in worker-arrival order). Batch index ranges
///     never overlap, and each batch is internally strictly ascending.
///   - RecordSource::next_batch yields batches in ascending global-index
///     order across the whole stream.
/// The ColumnarFileWriter is the bridge: it accepts sink order, and its
/// chunk index lets ColumnarFileSource replay the file in source order.
namespace ssresf::fi {

namespace detail {
struct CampaignPrep;
}  // namespace detail

/// Columnar view of a run of records: one vector per field ("struct of
/// arrays"), the Batch every sink and source exchanges. Row i across all
/// columns is one ShardRecord.
struct RecordBatch {
  std::vector<std::uint64_t> index;     // global plan index
  std::vector<std::uint8_t> kind;       // radiation::FaultKind
  std::vector<std::uint32_t> cell;
  std::vector<std::uint32_t> word;
  std::vector<std::uint32_t> bit;
  std::vector<std::uint64_t> time_ps;
  std::vector<std::uint32_t> set_width_ps;
  std::vector<std::uint32_t> cluster;
  std::vector<std::uint8_t> module_class;
  std::vector<std::uint8_t> soft_error;  // 0 / 1
  std::vector<std::uint64_t> first_mismatch_cycle;

  [[nodiscard]] std::size_t row_count() const { return index.size(); }
  [[nodiscard]] bool empty() const { return index.empty(); }
  void clear();
  void reserve(std::size_t rows);

  /// Appends one row. The caller keeps the batch's internal ascending-index
  /// invariant (push strictly increasing indices).
  void push_back(std::uint64_t global_index, const InjectionRecord& record);
  void push_back(const ShardRecord& record) {
    push_back(record.index, record.record);
  }

  /// Reassembles row i as a ShardRecord (validates kind / module_class
  /// ranges like the v1 decoder; throws InvalidArgument on a bad row).
  [[nodiscard]] ShardRecord row(std::size_t i) const;
};

/// Consumer end of the record flow. Implementations: VectorSink (collecting
/// wrapper behind the legacy vector APIs), ColumnarFileWriter (.ssfs v2),
/// CampaignAggregator (streaming statistics), TeeSink (fan-out),
/// core::DatasetAccumulator (feature extraction).
class RecordSink {
 public:
  virtual ~RecordSink() = default;

  /// Start of stream: the producer announces the campaign metadata (seed,
  /// shard K/N, plan size, config digest) once it is known — which is after
  /// campaign preparation, i.e. after the sink was constructed. Sinks that
  /// need sizing or a file header (VectorSink, ColumnarFileWriter) pick it
  /// up here; callers that already passed metadata at construction are left
  /// untouched. Called at most once, before any append. Default no-op.
  virtual void begin(const ShardFileMeta& meta) { (void)meta; }

  /// Receives one batch. Batches may arrive in any order; their index
  /// ranges never overlap and each batch is internally strictly ascending.
  virtual void append(const RecordBatch& batch) = 0;

  /// End of stream: publish/seal whatever the sink buffers. Default no-op.
  virtual void flush() {}
};

/// Producer end: yields the stream back in ascending global-index order.
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  [[nodiscard]] virtual const ShardFileMeta& meta() const = 0;

  /// Fills `out` with the next batch (clearing it first). Returns false at
  /// end of stream (out left empty). Successive batches are in ascending
  /// global-index order.
  virtual bool next_batch(RecordBatch& out) = 0;
};

/// Scatters batches into a plan-sized vector<InjectionRecord> — the shim
/// that keeps every vector-returning legacy API as a thin wrapper over its
/// sink-based overload. Rejects out-of-range and duplicate indices.
class VectorSink : public RecordSink {
 public:
  /// Deferred sizing: the plan size arrives via begin().
  VectorSink() = default;
  explicit VectorSink(std::uint64_t plan_size);

  void begin(const ShardFileMeta& meta) override;
  void append(const RecordBatch& batch) override;

  [[nodiscard]] std::uint64_t filled() const { return filled_; }
  [[nodiscard]] const std::vector<InjectionRecord>& records() const {
    return records_;
  }
  /// Moves the fully populated vector out; throws InternalError if any plan
  /// slot is still unfilled.
  [[nodiscard]] std::vector<InjectionRecord> take_records();

 private:
  std::vector<InjectionRecord> records_;
  std::vector<std::uint8_t> seen_;
  std::uint64_t filled_ = 0;
  bool sized_ = false;
};

/// Replays an in-memory record vector as a source (implicit global indices
/// 0..n-1) — how the legacy CampaignResult plugs into RecordSource
/// consumers such as core::build_dataset.
class VectorSource : public RecordSource {
 public:
  explicit VectorSource(std::span<const InjectionRecord> records,
                        std::size_t batch_rows = kDefaultBatchRows);

  [[nodiscard]] const ShardFileMeta& meta() const override { return meta_; }
  bool next_batch(RecordBatch& out) override;

  static constexpr std::size_t kDefaultBatchRows = 4096;

 private:
  std::span<const InjectionRecord> records_;
  std::size_t batch_rows_;
  std::size_t next_ = 0;
  ShardFileMeta meta_;
};

/// RecordSource view of a v1 shard file — ShardFileReader rebased onto the
/// batch API so v1 and v2 files are interchangeable behind
/// open_record_source().
class ShardFileSource : public RecordSource {
 public:
  explicit ShardFileSource(const std::string& path,
                           std::size_t batch_rows = VectorSource::kDefaultBatchRows);

  [[nodiscard]] const ShardFileMeta& meta() const override {
    return reader_.meta();
  }
  bool next_batch(RecordBatch& out) override;

 private:
  ShardFileReader reader_;
  std::size_t batch_rows_;
};

/// Duplicates the stream to several sinks (e.g. a ColumnarFileWriter plus a
/// CampaignAggregator in one pass). flush() flushes in registration order.
class TeeSink : public RecordSink {
 public:
  explicit TeeSink(std::vector<RecordSink*> sinks) : sinks_(std::move(sinks)) {}

  void begin(const ShardFileMeta& meta) override {
    for (RecordSink* s : sinks_) s->begin(meta);
  }
  void append(const RecordBatch& batch) override {
    for (RecordSink* s : sinks_) s->append(batch);
  }
  void flush() override {
    for (RecordSink* s : sinks_) s->flush();
  }

 private:
  std::vector<RecordSink*> sinks_;
};

/// Chunked columnar `.ssfs` v2 writer (byte layout: docs/FORMATS.md).
/// Batches coalesce into chunks of up to `chunk_rows` rows; a chunk is cut
/// early when an incoming batch does not continue the buffered index run,
/// so arrival-order appends from a socket coordinator still produce
/// non-overlapping chunks the reader can replay in ascending order. Chunks
/// stream to `path + ".tmp"` as they close (peak memory = one chunk); flush
/// writes the chunk-index footer, fsyncs, and atomically renames into
/// place — the crash-safety contract of util::atomic_write_file without
/// ever holding the whole file in memory.
class ColumnarFileWriter : public RecordSink {
 public:
  static constexpr std::size_t kDefaultChunkRows = 4096;

  ColumnarFileWriter(std::string path, ShardFileMeta meta,
                     std::size_t chunk_rows = kDefaultChunkRows);
  /// Deferred-header variant: the file opens and the header is written when
  /// the producer announces the metadata via begin() — how a CLI constructs
  /// the sink before the campaign plan (and thus the header's total) exists.
  explicit ColumnarFileWriter(std::string path,
                              std::size_t chunk_rows = kDefaultChunkRows);
  /// Unflushed writer: removes the temporary file (never publishes a torn
  /// store).
  ~ColumnarFileWriter() override;

  // Owns a FILE*: copying or moving would double-close and double-remove.
  ColumnarFileWriter(const ColumnarFileWriter&) = delete;
  ColumnarFileWriter& operator=(const ColumnarFileWriter&) = delete;

  void begin(const ShardFileMeta& meta) override;
  void append(const RecordBatch& batch) override;
  void flush() override;

  [[nodiscard]] std::uint64_t records_written() const { return written_; }
  /// High-water marks of the writer's own buffering — what the bounded-
  /// memory test asserts against.
  [[nodiscard]] std::size_t peak_buffered_rows() const {
    return peak_buffered_rows_;
  }

 private:
  struct ChunkIndexEntry {
    std::uint64_t offset = 0;       // file offset of the chunk marker byte
    std::uint64_t row_count = 0;
    std::uint64_t first_index = 0;
    std::uint64_t last_index = 0;   // overlap check + reader-side pushdown
  };

  void open_file();  // opens the temp file and writes the header
  void cut_chunk();
  void write_raw(const void* data, std::size_t size);

  std::string path_;
  std::string tmp_path_;
  ShardFileMeta meta_;
  std::size_t chunk_rows_;
  std::FILE* file_ = nullptr;
  std::uint64_t offset_ = 0;  // bytes written to the temp file so far
  RecordBatch chunk_;
  std::vector<ChunkIndexEntry> chunks_;
  std::uint64_t written_ = 0;
  std::size_t peak_buffered_rows_ = 0;
  bool flushed_ = false;
};

/// `.ssfs` v2 reader: parses the footer from the end of the file, verifies
/// its digest, orders the chunk index by first record index, and streams
/// one chunk per next_batch() — verifying each chunk's checksum before
/// decoding. Corruption errors name the offending byte offset.
class ColumnarFileSource : public RecordSource {
 public:
  explicit ColumnarFileSource(const std::string& path);

  [[nodiscard]] const ShardFileMeta& meta() const override { return meta_; }
  bool next_batch(RecordBatch& out) override;

  [[nodiscard]] std::uint64_t total_records() const { return total_records_; }

  /// Predicate pushdown: restricts the stream to records with global index
  /// in [lo, hi). Chunks whose [first_index, last_index] span (from the
  /// footer chunk index) does not intersect the range are dropped from the
  /// replay plan without ever being read or decoded — a corrupt chunk
  /// outside the range is never even checksummed. Surviving chunks decode
  /// and verify as usual, then trim row-wise (chunk index runs may have
  /// gaps, so intersecting a chunk's span does not guarantee rows in
  /// range). Call before the first next_batch(); may be called once.
  void select_range(std::uint64_t lo, std::uint64_t hi);

  /// Pushdown observability — what the skipped-chunks-never-decoded test
  /// asserts against.
  [[nodiscard]] std::uint64_t chunks_decoded() const { return chunks_decoded_; }
  [[nodiscard]] std::uint64_t chunks_skipped() const { return chunks_skipped_; }

 private:
  struct ChunkIndexEntry {
    std::uint64_t offset = 0;
    std::uint64_t row_count = 0;
    std::uint64_t first_index = 0;
    std::uint64_t last_index = 0;
  };

  /// Reads, verifies, decodes, and range-trims chunks_[next_chunk_] into
  /// `out`. Returns false when the trim leaves no in-range rows.
  bool decode_chunk(RecordBatch& out);

  std::ifstream in_;
  std::string path_;
  ShardFileMeta meta_;
  std::vector<ChunkIndexEntry> chunks_;
  std::size_t next_chunk_ = 0;
  std::uint64_t total_records_ = 0;
  std::uint64_t prev_last_index_ = 0;  // cross-chunk ascending check
  std::uint64_t range_lo_ = 0;         // select_range window [lo, hi)
  std::uint64_t range_hi_ = UINT64_MAX;
  std::uint64_t chunks_decoded_ = 0;
  std::uint64_t chunks_skipped_ = 0;
};

/// Opens a record file of either version behind the one RecordSource API:
/// sniffs the version byte and returns a ShardFileSource (v1) or a
/// ColumnarFileSource (v2).
[[nodiscard]] std::unique_ptr<RecordSource> open_record_source(
    const std::string& path);

/// Streaming statistics sink: folds every batch into per-cluster /
/// per-class integer counters plus per-class detection-latency histograms
/// (the order-independent Welford-style accumulation net/health uses for
/// its moments), then finalize() reduces them through the same kernel as
/// detail::finalize_campaign. CampaignStats doubles are therefore
/// bit-identical to the CampaignResult a vector path computes — regardless
/// of batch arrival order, worker count, or transport.
class CampaignAggregator : public RecordSink {
 public:
  /// `prep` must outlive the aggregator (it borrows the clustering and
  /// cross-section tables; any for_execution=false prep works).
  CampaignAggregator(const soc::SocModel& model, const CampaignConfig& config,
                     const radiation::SoftErrorDatabase& database,
                     const detail::CampaignPrep& prep);
  ~CampaignAggregator() override;

  void append(const RecordBatch& batch) override;

  [[nodiscard]] CampaignStats finalize() const;

 private:
  const soc::SocModel& model_;
  const CampaignConfig& config_;
  const radiation::SoftErrorDatabase& db_;
  const detail::CampaignPrep& prep_;
  std::vector<std::size_t> cluster_samples_;
  std::vector<std::size_t> cluster_errors_;
  std::array<std::size_t, netlist::kModuleClassCount> class_samples_{};
  std::array<std::size_t, netlist::kModuleClassCount> class_errors_{};
  std::array<LatencyHistogram, netlist::kModuleClassCount> latency_{};
  std::uint64_t num_records_ = 0;
  std::uint64_t num_soft_errors_ = 0;
};

/// Streaming sink-based shard runner: the records owned by `spec` flow into
/// `sink` in ascending-index batches. Returns the full plan size. Identical
/// records to run_campaign_shard's vector overload.
std::uint64_t run_campaign_shard(const soc::SocModel& model,
                                 const CampaignConfig& config,
                                 const radiation::SoftErrorDatabase& database,
                                 ShardSpec spec, RecordSink& sink,
                                 const GoldenBundle* bundle = nullptr);

/// Streaming merge: K-way merges any mix of v1 and v2 record files into one
/// ascending-index stream through `sink`, validating digests, plan
/// cross-checks, duplicates, and coverage exactly like merge_shard_files —
/// with peak memory of one in-flight batch per input file. Statistics come
/// from a CampaignAggregator tee'd onto the stream.
[[nodiscard]] CampaignStats merge_record_files(
    const soc::SocModel& model, const CampaignConfig& config,
    const radiation::SoftErrorDatabase& database,
    const std::vector<std::string>& paths, RecordSink& sink);

namespace detail {

/// Shared merge core: validates and K-way merges `paths` into `sink`
/// (ascending global order), cross-checking every record against `prep`'s
/// plan. Both merge_shard_files overloads and merge_record_files run on
/// this. Returns the number of records streamed (== plan size on success).
std::uint64_t stream_merged_records(const soc::SocModel& model,
                                    const CampaignConfig& config,
                                    const CampaignPrep& prep,
                                    const std::vector<std::string>& paths,
                                    RecordSink& sink);

}  // namespace detail

/// Writes the canonical records CSV (same bytes as the vector overload in
/// campaign.h) from a source, one batch resident at a time.
void write_records_csv(const std::string& path, RecordSource& source);

/// Writes a v2 columnar record file from an in-memory record vector —
/// write_shard_file's v2 counterpart (records get implicit indices 0..n-1
/// unless `records` carries explicit ShardRecords).
void write_columnar_file(const std::string& path, const ShardFileMeta& meta,
                         std::span<const ShardRecord> records,
                         std::size_t chunk_rows =
                             ColumnarFileWriter::kDefaultChunkRows);

}  // namespace ssresf::fi
