#include "fi/record_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string_view>

#include "fi/campaign_exec.h"
#include "util/bytes.h"
#include "util/error.h"
#include "util/timer.h"

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace ssresf::fi {

namespace {

constexpr char kMagic[4] = {'S', 'S', 'F', 'S'};
constexpr char kTailMagic[4] = {'S', 'S', 'F', '2'};
constexpr std::uint8_t kVersionColumnar = 2;
constexpr std::uint8_t kChunkMarker = 0xC5;
// footer_len fixed64 + tail magic — the fixed suffix the reader seeks from.
constexpr std::uint64_t kTailBytes = 12;

// Zigzag maps small signed deltas (cell ids and strike times wobble around
// the previous row's value) to small unsigned varints.
std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Columns of one chunk, in payload order. Index first (delta-1, like the
/// v1 stream), then the event fields, then the outcome fields.
void encode_columns(util::ByteWriter& out, const RecordBatch& b) {
  const std::size_t n = b.row_count();
  for (std::size_t i = 0; i < n; ++i) {
    out.varint(i == 0 ? b.index[0] : b.index[i] - b.index[i - 1] - 1);
  }
  out.bytes(b.kind.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0) {
      out.varint(b.cell[0]);
    } else {
      out.varint(zigzag_encode(static_cast<std::int64_t>(b.cell[i]) -
                               static_cast<std::int64_t>(b.cell[i - 1])));
    }
  }
  for (std::size_t i = 0; i < n; ++i) out.varint(b.word[i]);
  for (std::size_t i = 0; i < n; ++i) out.varint(b.bit[i]);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0) {
      out.varint(b.time_ps[0]);
    } else {
      out.varint(zigzag_encode(static_cast<std::int64_t>(b.time_ps[i]) -
                               static_cast<std::int64_t>(b.time_ps[i - 1])));
    }
  }
  for (std::size_t i = 0; i < n; ++i) out.varint(b.set_width_ps[i]);
  for (std::size_t i = 0; i < n; ++i) out.varint(b.cluster[i]);
  out.bytes(b.module_class.data(), n);
  std::vector<std::uint8_t> soft((n + 7) / 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (b.soft_error[i] != 0) soft[i / 8] |= std::uint8_t{1} << (i % 8);
  }
  out.bytes(soft.data(), soft.size());
  for (std::size_t i = 0; i < n; ++i) out.varint(b.first_mismatch_cycle[i]);
}

void decode_columns(util::ByteReader& in, std::uint64_t rows, RecordBatch& out,
                    const std::string& where) {
  out.clear();
  out.reserve(static_cast<std::size_t>(rows));
  const std::size_t n = static_cast<std::size_t>(rows);
  try {
    out.index.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t delta = in.varint();
      out.index[i] = i == 0 ? delta : out.index[i - 1] + delta + 1;
    }
    out.kind.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.kind[i] = in.u8();
      if (out.kind[i] > static_cast<std::uint8_t>(radiation::FaultKind::kMemBit)) {
        throw InvalidArgument(where + ": bad fault kind");
      }
    }
    out.cell.resize(n);
    std::int64_t cell = 0;
    for (std::size_t i = 0; i < n; ++i) {
      cell = i == 0 ? static_cast<std::int64_t>(in.varint())
                    : cell + zigzag_decode(in.varint());
      if (cell < 0 || cell > 0xffffffffll) {
        throw InvalidArgument(where + ": cell id out of range");
      }
      out.cell[i] = static_cast<std::uint32_t>(cell);
    }
    out.word.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.word[i] = static_cast<std::uint32_t>(in.varint());
    }
    out.bit.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.bit[i] = static_cast<std::uint32_t>(in.varint());
    }
    out.time_ps.resize(n);
    std::int64_t t = 0;
    for (std::size_t i = 0; i < n; ++i) {
      t = i == 0 ? static_cast<std::int64_t>(in.varint())
                 : t + zigzag_decode(in.varint());
      if (t < 0) throw InvalidArgument(where + ": negative strike time");
      out.time_ps[i] = static_cast<std::uint64_t>(t);
    }
    out.set_width_ps.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.set_width_ps[i] = static_cast<std::uint32_t>(in.varint());
    }
    out.cluster.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.cluster[i] = static_cast<std::uint32_t>(in.varint());
    }
    out.module_class.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.module_class[i] = in.u8();
      if (out.module_class[i] >= netlist::kModuleClassCount) {
        throw InvalidArgument(where + ": bad module class");
      }
    }
    out.soft_error.resize(n);
    std::vector<std::uint8_t> soft((n + 7) / 8);
    for (std::uint8_t& byte : soft) byte = in.u8();
    for (std::size_t i = 0; i < n; ++i) {
      out.soft_error[i] = (soft[i / 8] >> (i % 8)) & 1;
    }
    out.first_mismatch_cycle.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.first_mismatch_cycle[i] = in.varint();
    }
  } catch (const InvalidArgument&) {
    throw;
  } catch (const Error& e) {
    throw InvalidArgument(where + ": " + e.what());
  }
  if (!in.at_end()) {
    throw InvalidArgument(where + ": trailing bytes after columns");
  }
}

}  // namespace

// --- RecordBatch ------------------------------------------------------------

void RecordBatch::clear() {
  index.clear();
  kind.clear();
  cell.clear();
  word.clear();
  bit.clear();
  time_ps.clear();
  set_width_ps.clear();
  cluster.clear();
  module_class.clear();
  soft_error.clear();
  first_mismatch_cycle.clear();
}

void RecordBatch::reserve(std::size_t rows) {
  index.reserve(rows);
  kind.reserve(rows);
  cell.reserve(rows);
  word.reserve(rows);
  bit.reserve(rows);
  time_ps.reserve(rows);
  set_width_ps.reserve(rows);
  cluster.reserve(rows);
  module_class.reserve(rows);
  soft_error.reserve(rows);
  first_mismatch_cycle.reserve(rows);
}

void RecordBatch::push_back(std::uint64_t global_index,
                            const InjectionRecord& record) {
  const radiation::FaultEvent& e = record.event;
  index.push_back(global_index);
  kind.push_back(static_cast<std::uint8_t>(e.target.kind));
  cell.push_back(e.target.cell.index());
  word.push_back(e.target.word);
  bit.push_back(e.target.bit);
  time_ps.push_back(e.time_ps);
  set_width_ps.push_back(e.set_width_ps);
  cluster.push_back(static_cast<std::uint32_t>(record.cluster));
  module_class.push_back(static_cast<std::uint8_t>(record.module_class));
  soft_error.push_back(record.soft_error ? 1 : 0);
  first_mismatch_cycle.push_back(record.first_mismatch_cycle);
}

ShardRecord RecordBatch::row(std::size_t i) const {
  if (i >= row_count()) {
    throw InvalidArgument("record batch: row out of range");
  }
  if (kind[i] > static_cast<std::uint8_t>(radiation::FaultKind::kMemBit)) {
    throw InvalidArgument("record batch: bad fault kind");
  }
  if (module_class[i] >= netlist::kModuleClassCount) {
    throw InvalidArgument("record batch: bad module class");
  }
  ShardRecord r;
  r.index = index[i];
  radiation::FaultEvent& e = r.record.event;
  e.target.kind = static_cast<radiation::FaultKind>(kind[i]);
  e.target.cell = netlist::CellId{cell[i]};
  e.target.word = word[i];
  e.target.bit = bit[i];
  e.time_ps = time_ps[i];
  e.set_width_ps = set_width_ps[i];
  r.record.cluster = static_cast<int>(cluster[i]);
  r.record.module_class = static_cast<netlist::ModuleClass>(module_class[i]);
  r.record.soft_error = soft_error[i] != 0;
  r.record.first_mismatch_cycle =
      static_cast<std::size_t>(first_mismatch_cycle[i]);
  return r;
}

// --- VectorSink / VectorSource ----------------------------------------------

VectorSink::VectorSink(std::uint64_t plan_size)
    : records_(static_cast<std::size_t>(plan_size)),
      seen_(static_cast<std::size_t>(plan_size), 0),
      sized_(true) {}

void VectorSink::begin(const ShardFileMeta& meta) {
  if (sized_) return;  // plan size fixed at construction wins
  records_.resize(static_cast<std::size_t>(meta.total_injections));
  seen_.assign(static_cast<std::size_t>(meta.total_injections), 0);
  sized_ = true;
}

void VectorSink::append(const RecordBatch& batch) {
  for (std::size_t i = 0; i < batch.row_count(); ++i) {
    const std::uint64_t gi = batch.index[i];
    if (gi >= records_.size()) {
      throw InvalidArgument("record stream: index " + std::to_string(gi) +
                            " out of range (plan size " +
                            std::to_string(records_.size()) + ")");
    }
    if (seen_[static_cast<std::size_t>(gi)] != 0) {
      throw InvalidArgument("duplicate record for injection " +
                            std::to_string(gi));
    }
    seen_[static_cast<std::size_t>(gi)] = 1;
    records_[static_cast<std::size_t>(gi)] = batch.row(i).record;
    ++filled_;
  }
}

std::vector<InjectionRecord> VectorSink::take_records() {
  if (filled_ != records_.size()) {
    throw InternalError("record stream covered " + std::to_string(filled_) +
                        " of " + std::to_string(records_.size()) +
                        " injections");
  }
  return std::move(records_);
}

VectorSource::VectorSource(std::span<const InjectionRecord> records,
                           std::size_t batch_rows)
    : records_(records),
      batch_rows_(batch_rows == 0 ? kDefaultBatchRows : batch_rows) {
  meta_.shard_index = 0;
  meta_.shard_count = 1;
  meta_.total_injections = records.size();
  meta_.num_records = records.size();
}

bool VectorSource::next_batch(RecordBatch& out) {
  out.clear();
  if (next_ == records_.size()) return false;
  const std::size_t n = std::min(batch_rows_, records_.size() - next_);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i, ++next_) {
    out.push_back(next_, records_[next_]);
  }
  return true;
}

ShardFileSource::ShardFileSource(const std::string& path,
                                 std::size_t batch_rows)
    : reader_(path),
      batch_rows_(batch_rows == 0 ? VectorSource::kDefaultBatchRows
                                  : batch_rows) {}

bool ShardFileSource::next_batch(RecordBatch& out) {
  out.clear();
  out.reserve(batch_rows_);
  ShardRecord r;
  while (out.row_count() < batch_rows_ && reader_.next(r)) {
    out.push_back(r);
  }
  return !out.empty();
}

// --- ColumnarFileWriter -----------------------------------------------------

ColumnarFileWriter::ColumnarFileWriter(std::string path, ShardFileMeta meta,
                                       std::size_t chunk_rows)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      meta_(meta),
      chunk_rows_(chunk_rows == 0 ? kDefaultChunkRows : chunk_rows) {
  open_file();
}

ColumnarFileWriter::ColumnarFileWriter(std::string path, std::size_t chunk_rows)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      chunk_rows_(chunk_rows == 0 ? kDefaultChunkRows : chunk_rows) {}

void ColumnarFileWriter::begin(const ShardFileMeta& meta) {
  if (file_ != nullptr) return;  // metadata fixed at construction wins
  meta_ = meta;
  open_file();
}

void ColumnarFileWriter::open_file() {
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    throw Error("columnar store: cannot create '" + tmp_path_ + "'");
  }
  util::ByteWriter header;
  header.bytes(kMagic, sizeof(kMagic));
  header.u8(kVersionColumnar);
  header.varint(meta_.seed);
  header.varint(meta_.shard_index);
  header.varint(meta_.shard_count);
  header.varint(meta_.total_injections);
  header.fixed64(meta_.config_digest);
  write_raw(header.data().data(), header.size());
}

ColumnarFileWriter::~ColumnarFileWriter() {
  if (!flushed_) {
    if (file_ != nullptr) std::fclose(file_);
    std::remove(tmp_path_.c_str());
  }
}

void ColumnarFileWriter::write_raw(const void* data, std::size_t size) {
  if (size == 0) return;
  if (std::fwrite(data, 1, size, file_) != size) {
    throw Error("columnar store: write to '" + tmp_path_ + "' failed");
  }
  offset_ += size;
}

void ColumnarFileWriter::append(const RecordBatch& batch) {
  if (flushed_) {
    throw InternalError("columnar store: append after flush");
  }
  if (file_ == nullptr) {
    throw InternalError(
        "columnar store: deferred writer received records before begin()");
  }
  for (std::size_t i = 0; i + 1 < batch.row_count(); ++i) {
    if (batch.index[i + 1] <= batch.index[i]) {
      throw InvalidArgument(
          "columnar store: batch indices must be strictly ascending");
    }
  }
  // A batch that does not continue the buffered index run starts a new
  // chunk, so every chunk covers a disjoint index range and the reader can
  // replay chunks in ascending first-index order.
  if (!chunk_.empty() && !batch.empty() &&
      batch.index.front() != chunk_.index.back() + 1) {
    cut_chunk();
  }
  std::size_t pos = 0;
  while (pos < batch.row_count()) {
    const std::size_t take =
        std::min(chunk_rows_ - chunk_.row_count(), batch.row_count() - pos);
    for (std::size_t i = 0; i < take; ++i, ++pos) {
      chunk_.index.push_back(batch.index[pos]);
      chunk_.kind.push_back(batch.kind[pos]);
      chunk_.cell.push_back(batch.cell[pos]);
      chunk_.word.push_back(batch.word[pos]);
      chunk_.bit.push_back(batch.bit[pos]);
      chunk_.time_ps.push_back(batch.time_ps[pos]);
      chunk_.set_width_ps.push_back(batch.set_width_ps[pos]);
      chunk_.cluster.push_back(batch.cluster[pos]);
      chunk_.module_class.push_back(batch.module_class[pos]);
      chunk_.soft_error.push_back(batch.soft_error[pos]);
      chunk_.first_mismatch_cycle.push_back(batch.first_mismatch_cycle[pos]);
    }
    peak_buffered_rows_ = std::max(peak_buffered_rows_, chunk_.row_count());
    if (chunk_.row_count() == chunk_rows_) cut_chunk();
  }
  written_ += batch.row_count();
}

void ColumnarFileWriter::cut_chunk() {
  if (chunk_.empty()) return;
  util::ByteWriter payload;
  encode_columns(payload, chunk_);
  ChunkIndexEntry entry;
  entry.offset = offset_;
  entry.row_count = chunk_.row_count();
  entry.first_index = chunk_.index.front();
  entry.last_index = chunk_.index.back();
  util::ByteWriter head;
  head.u8(kChunkMarker);
  head.varint(chunk_.row_count());
  head.varint(payload.size());
  write_raw(head.data().data(), head.size());
  write_raw(payload.data().data(), payload.size());
  util::ByteWriter sum;
  sum.fixed64(util::fnv1a(payload.data()));
  write_raw(sum.data().data(), sum.size());
  chunks_.push_back(entry);
  chunk_.clear();
}

void ColumnarFileWriter::flush() {
  if (flushed_) return;
  if (file_ == nullptr) {
    throw InternalError(
        "columnar store: deferred writer flushed before begin()");
  }
  cut_chunk();
  // Sink batches may arrive in any order, but their ranges must not
  // interleave — the one way a producer can violate the sink contract that
  // only shows up at chunk granularity.
  std::vector<ChunkIndexEntry> sorted = chunks_;
  std::sort(sorted.begin(), sorted.end(),
            [](const ChunkIndexEntry& a, const ChunkIndexEntry& b) {
              return a.first_index < b.first_index;
            });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].first_index <= sorted[i - 1].last_index) {
      throw InvalidArgument(
          "columnar store: record batches interleave around injection " +
          std::to_string(sorted[i].first_index));
    }
  }
  util::ByteWriter footer;
  footer.varint(chunks_.size());
  for (const ChunkIndexEntry& e : chunks_) {
    footer.varint(e.offset);
    footer.varint(e.row_count);
    footer.varint(e.first_index);
    // Delta-coded last index: what ColumnarFileSource::select_range uses to
    // skip non-intersecting chunks without reading them.
    footer.varint(e.last_index - e.first_index);
  }
  footer.varint(written_);
  footer.fixed64(util::fnv1a(footer.data()));
  const std::uint64_t footer_len = footer.size();
  write_raw(footer.data().data(), footer.size());
  util::ByteWriter tail;
  tail.fixed64(footer_len);
  tail.bytes(kTailMagic, sizeof(kTailMagic));
  write_raw(tail.data().data(), tail.size());

  // atomic_write_file's publication contract, without ever holding the
  // whole store in memory: flush + fsync the temp file, rename over the
  // final path, then fsync the directory (best effort).
  if (std::fflush(file_) != 0) {
    throw Error("columnar store: flush of '" + tmp_path_ + "' failed");
  }
#ifndef _WIN32
  if (::fsync(::fileno(file_)) != 0) {
    throw Error("columnar store: fsync of '" + tmp_path_ + "' failed");
  }
#endif
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    throw Error("columnar store: close of '" + tmp_path_ + "' failed");
  }
  file_ = nullptr;
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    throw Error("columnar store: rename to '" + path_ + "' failed");
  }
#ifndef _WIN32
  const std::filesystem::path parent =
      std::filesystem::path(path_).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
#endif
  flushed_ = true;
}

// --- ColumnarFileSource -----------------------------------------------------

ColumnarFileSource::ColumnarFileSource(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) throw Error("columnar store: cannot open '" + path + "'");
  const std::string where = "columnar store '" + path + "'";

  char magic[4];
  in_.read(magic, sizeof(magic));
  if (!in_ || std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    throw InvalidArgument(where + ": bad magic");
  }
  char version = 0;
  in_.read(&version, 1);
  if (!in_ || static_cast<std::uint8_t>(version) != kVersionColumnar) {
    throw InvalidArgument(where + ": unsupported version");
  }
  // The varint header fields are small; 64 bytes is more than enough.
  std::uint8_t header[64];
  in_.read(reinterpret_cast<char*>(header), sizeof(header));
  const std::size_t header_got = static_cast<std::size_t>(in_.gcount());
  util::ByteReader hr({header, header_got});
  try {
    meta_.seed = hr.varint();
    meta_.shard_index = static_cast<std::uint32_t>(hr.varint());
    meta_.shard_count = static_cast<std::uint32_t>(hr.varint());
    meta_.total_injections = hr.varint();
    meta_.config_digest = hr.fixed64();
  } catch (const Error&) {
    throw InvalidArgument(where + ": truncated header");
  }
  const std::uint64_t header_end =
      5 + (header_got - hr.remaining());

  in_.clear();
  in_.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in_.tellg());
  if (file_size < header_end + kTailBytes) {
    throw InvalidArgument(where + ": truncated file");
  }
  std::uint8_t tail[kTailBytes];
  in_.seekg(static_cast<std::streamoff>(file_size - kTailBytes));
  in_.read(reinterpret_cast<char*>(tail), sizeof(tail));
  if (!in_) throw InvalidArgument(where + ": truncated file");
  if (std::memcmp(tail + 8, kTailMagic, sizeof(kTailMagic)) != 0) {
    throw InvalidArgument(where + ": bad tail magic (offset " +
                          std::to_string(file_size - 4) + ")");
  }
  std::uint64_t footer_len = 0;
  for (int i = 0; i < 8; ++i) {
    footer_len |= static_cast<std::uint64_t>(tail[i]) << (8 * i);
  }
  if (footer_len < 8 || footer_len > file_size - kTailBytes - header_end) {
    throw InvalidArgument(where + ": bad footer length");
  }
  const std::uint64_t footer_start = file_size - kTailBytes - footer_len;
  std::vector<std::uint8_t> footer(static_cast<std::size_t>(footer_len));
  in_.seekg(static_cast<std::streamoff>(footer_start));
  in_.read(reinterpret_cast<char*>(footer.data()),
           static_cast<std::streamsize>(footer.size()));
  if (!in_) throw InvalidArgument(where + ": truncated footer");
  const std::uint64_t want_digest =
      util::fnv1a({footer.data(), footer.size() - 8});
  std::uint64_t got_digest = 0;
  for (int i = 0; i < 8; ++i) {
    got_digest |= static_cast<std::uint64_t>(footer[footer.size() - 8 +
                                                   static_cast<std::size_t>(i)])
                  << (8 * i);
  }
  if (want_digest != got_digest) {
    throw InvalidArgument(where + ": footer digest mismatch (offset " +
                          std::to_string(footer_start + footer_len - 8) + ")");
  }
  util::ByteReader fr({footer.data(), footer.size() - 8});
  try {
    const std::uint64_t num_chunks = fr.varint();
    if (num_chunks > fr.remaining() / 4) {
      throw InvalidArgument(where + ": bad chunk count");
    }
    chunks_.reserve(static_cast<std::size_t>(num_chunks));
    for (std::uint64_t i = 0; i < num_chunks; ++i) {
      ChunkIndexEntry e;
      e.offset = fr.varint();
      e.row_count = fr.varint();
      e.first_index = fr.varint();
      e.last_index = e.first_index + fr.varint();
      if (e.offset < header_end || e.offset >= footer_start ||
          e.row_count == 0 ||
          e.last_index - e.first_index < e.row_count - 1) {
        throw InvalidArgument(where + ": bad chunk index entry " +
                              std::to_string(i));
      }
      chunks_.push_back(e);
    }
    total_records_ = fr.varint();
    if (!fr.at_end()) {
      throw InvalidArgument(where + ": trailing bytes in footer");
    }
  } catch (const InvalidArgument&) {
    throw;
  } catch (const Error& e) {
    throw InvalidArgument(where + ": " + e.what());
  }
  std::uint64_t rows = 0;
  for (const ChunkIndexEntry& e : chunks_) rows += e.row_count;
  if (rows != total_records_) {
    throw InvalidArgument(where + ": chunk rows disagree with footer total");
  }
  meta_.num_records = total_records_;
  // Replay order: ascending first record index, regardless of the order
  // chunks arrived at the writer.
  std::sort(chunks_.begin(), chunks_.end(),
            [](const ChunkIndexEntry& a, const ChunkIndexEntry& b) {
              return a.first_index < b.first_index;
            });
}

void ColumnarFileSource::select_range(std::uint64_t lo, std::uint64_t hi) {
  if (next_chunk_ != 0 || chunks_decoded_ != 0) {
    throw InternalError("columnar store: select_range after reading started");
  }
  range_lo_ = lo;
  range_hi_ = hi;
  std::vector<ChunkIndexEntry> kept;
  kept.reserve(chunks_.size());
  for (const ChunkIndexEntry& e : chunks_) {
    if (lo >= hi || e.last_index < lo || e.first_index >= hi) {
      ++chunks_skipped_;
    } else {
      kept.push_back(e);
    }
  }
  chunks_ = std::move(kept);
}

namespace {

/// Drops rows [0, from) and [to, n) from every column.
void trim_batch(RecordBatch& b, std::size_t from, std::size_t to) {
  const auto cut = [from, to](auto& col) {
    col.erase(col.begin() + static_cast<std::ptrdiff_t>(to), col.end());
    col.erase(col.begin(), col.begin() + static_cast<std::ptrdiff_t>(from));
  };
  cut(b.index);
  cut(b.kind);
  cut(b.cell);
  cut(b.word);
  cut(b.bit);
  cut(b.time_ps);
  cut(b.set_width_ps);
  cut(b.cluster);
  cut(b.module_class);
  cut(b.soft_error);
  cut(b.first_mismatch_cycle);
}

}  // namespace

bool ColumnarFileSource::next_batch(RecordBatch& out) {
  out.clear();
  while (next_chunk_ != chunks_.size()) {
    if (decode_chunk(out)) return true;
  }
  return false;
}

bool ColumnarFileSource::decode_chunk(RecordBatch& out) {
  const ChunkIndexEntry& e = chunks_[next_chunk_];
  const std::string where = "columnar store '" + path_ + "': chunk at offset " +
                            std::to_string(e.offset);
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(e.offset));
  std::uint8_t marker = 0;
  in_.read(reinterpret_cast<char*>(&marker), 1);
  if (!in_ || marker != kChunkMarker) {
    throw InvalidArgument(where + ": bad chunk marker");
  }
  auto read_varint = [&]() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      std::uint8_t byte = 0;
      in_.read(reinterpret_cast<char*>(&byte), 1);
      if (!in_) throw InvalidArgument(where + ": truncated chunk header");
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
    }
    throw InvalidArgument(where + ": varint overflow");
  };
  const std::uint64_t rows = read_varint();
  const std::uint64_t payload_len = read_varint();
  if (rows != e.row_count) {
    throw InvalidArgument(where + ": row count contradicts the chunk index");
  }
  // Each row costs >= 10 payload bytes; a hostile row count must never
  // drive a huge allocation.
  if (rows > payload_len) {
    throw InvalidArgument(where + ": truncated chunk payload");
  }
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(payload_len));
  in_.read(reinterpret_cast<char*>(payload.data()),
           static_cast<std::streamsize>(payload.size()));
  if (!in_) throw InvalidArgument(where + ": truncated chunk payload");
  std::uint8_t sum[8];
  in_.read(reinterpret_cast<char*>(sum), sizeof(sum));
  if (!in_) throw InvalidArgument(where + ": truncated chunk checksum");
  std::uint64_t want = 0;
  for (int i = 0; i < 8; ++i) {
    want |= static_cast<std::uint64_t>(sum[i]) << (8 * i);
  }
  if (util::fnv1a(payload) != want) {
    throw InvalidArgument(where + ": checksum mismatch");
  }
  util::ByteReader pr(payload);
  decode_columns(pr, rows, out, where);
  if (out.index.front() != e.first_index || out.index.back() != e.last_index) {
    throw InvalidArgument(where +
                          ": index range contradicts the chunk index");
  }
  if (chunks_decoded_ > 0 && out.index.front() <= prev_last_index_) {
    throw InvalidArgument(where + ": chunk index ranges overlap");
  }
  prev_last_index_ = out.index.back();
  ++next_chunk_;
  ++chunks_decoded_;
  // Row-level trim of the select_range window. A chunk whose span
  // intersects the window can still hold zero in-range rows (index runs
  // may have gaps) — the caller then moves on to the next chunk.
  const auto lo = std::lower_bound(out.index.begin(), out.index.end(),
                                   range_lo_) -
                  out.index.begin();
  const auto hi = std::lower_bound(out.index.begin(), out.index.end(),
                                   range_hi_) -
                  out.index.begin();
  if (lo != 0 || hi != static_cast<std::ptrdiff_t>(out.row_count())) {
    trim_batch(out, static_cast<std::size_t>(lo), static_cast<std::size_t>(hi));
  }
  if (out.empty()) {
    out.clear();
    return false;
  }
  return true;
}

std::unique_ptr<RecordSource> open_record_source(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) throw Error("record store: cannot open '" + path + "'");
  char head[5] = {};
  probe.read(head, sizeof(head));
  if (!probe || std::string_view(head, 4) != std::string_view(kMagic, 4)) {
    throw InvalidArgument("record store '" + path + "': bad magic");
  }
  probe.close();
  const std::uint8_t version = static_cast<std::uint8_t>(head[4]);
  if (version == 1) return std::make_unique<ShardFileSource>(path);
  if (version == kVersionColumnar) {
    return std::make_unique<ColumnarFileSource>(path);
  }
  throw InvalidArgument("record store '" + path + "': unsupported version " +
                        std::to_string(version));
}

// --- CampaignAggregator -----------------------------------------------------

CampaignAggregator::CampaignAggregator(const soc::SocModel& model,
                                       const CampaignConfig& config,
                                       const radiation::SoftErrorDatabase& db,
                                       const detail::CampaignPrep& prep)
    : model_(model),
      config_(config),
      db_(db),
      prep_(prep),
      cluster_samples_(prep.clustering.clusters.size(), 0),
      cluster_errors_(prep.clustering.clusters.size(), 0) {}

CampaignAggregator::~CampaignAggregator() = default;

void CampaignAggregator::append(const RecordBatch& batch) {
  for (std::size_t i = 0; i < batch.row_count(); ++i) {
    const std::size_t k = batch.cluster[i];
    if (k >= cluster_samples_.size()) {
      throw InvalidArgument("record stream: cluster " + std::to_string(k) +
                            " out of range");
    }
    const std::size_t c = batch.module_class[i];
    if (c >= netlist::kModuleClassCount) {
      throw InvalidArgument("record stream: bad module class");
    }
    ++cluster_samples_[k];
    ++class_samples_[c];
    ++num_records_;
    if (batch.soft_error[i] != 0) {
      ++cluster_errors_[k];
      ++class_errors_[c];
      ++num_soft_errors_;
      latency_[c].add(batch.first_mismatch_cycle[i]);
    }
  }
}

CampaignStats CampaignAggregator::finalize() const {
  CampaignStats stats = detail::compute_campaign_stats(
      model_, config_, db_, prep_.clustering, prep_.cell_xsects,
      prep_.window_ps,
      detail::StatsCounters{cluster_samples_, cluster_errors_, class_samples_,
                            class_errors_});
  stats.latency = latency_;
  stats.num_records = num_records_;
  stats.num_soft_errors = num_soft_errors_;
  stats.golden_cycles = prep_.run_cycles;
  stats.clock_period_ps = prep_.clock_period_ps;
  return stats;
}

// --- Streaming merge --------------------------------------------------------

namespace detail {

namespace {

struct MergeCursor {
  std::unique_ptr<RecordSource> source;
  std::string path;
  RecordBatch batch;
  std::size_t pos = 0;

  bool advance() {
    while (pos == batch.row_count()) {
      if (!source->next_batch(batch)) return false;
      pos = 0;
    }
    return true;
  }
  [[nodiscard]] std::uint64_t head() const { return batch.index[pos]; }
};

}  // namespace

std::uint64_t stream_merged_records(const soc::SocModel& model,
                                    const CampaignConfig& config,
                                    const CampaignPrep& prep,
                                    const std::vector<std::string>& paths,
                                    RecordSink& sink) {
  if (paths.empty()) {
    throw InvalidArgument("merge: no shard files given");
  }
  const std::uint64_t digest = campaign_config_digest(model, config);
  const std::uint64_t plan_size = prep.plan.size();

  std::vector<MergeCursor> cursors;
  cursors.reserve(paths.size());
  for (const std::string& path : paths) {
    MergeCursor c;
    c.source = open_record_source(path);
    c.path = path;
    const ShardFileMeta& meta = c.source->meta();
    if (meta.config_digest != digest) {
      throw InvalidArgument("shard file '" + path +
                            "': campaign configuration digest mismatch");
    }
    if (meta.total_injections != plan_size) {
      throw InvalidArgument(
          "shard file '" + path + "': total injections " +
          std::to_string(meta.total_injections) +
          " does not match the campaign plan (" + std::to_string(plan_size) +
          ")");
    }
    cursors.push_back(std::move(c));
  }

  ShardFileMeta merged_meta;
  merged_meta.seed = config.seed;
  merged_meta.shard_index = 0;
  merged_meta.shard_count = 1;
  merged_meta.total_injections = plan_size;
  merged_meta.config_digest = digest;
  merged_meta.num_records = plan_size;
  sink.begin(merged_meta);

  // K-way merge of the per-file ascending streams into one ascending
  // stream: peak memory is one in-flight batch per input file.
  auto later = [&cursors](std::size_t a, std::size_t b) {
    return cursors[a].head() > cursors[b].head();
  };
  std::vector<std::size_t> heap;
  for (std::size_t i = 0; i < cursors.size(); ++i) {
    if (cursors[i].advance()) heap.push_back(i);
  }
  std::make_heap(heap.begin(), heap.end(), later);

  RecordBatch out;
  out.reserve(VectorSource::kDefaultBatchRows);
  std::uint64_t streamed = 0;
  std::uint64_t prev = 0;
  bool have_prev = false;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const std::size_t idx = heap.back();
    heap.pop_back();
    MergeCursor& c = cursors[idx];
    const std::uint64_t gi = c.head();
    if (have_prev && gi == prev) {
      throw InvalidArgument("duplicate record for injection " +
                            std::to_string(gi));
    }
    if (gi >= plan_size) {
      throw InvalidArgument("shard file '" + c.path + "': record index " +
                            std::to_string(gi) + " out of range");
    }
    const ShardRecord r = c.batch.row(c.pos);
    const PlannedInjection& planned = prep.plan[static_cast<std::size_t>(gi)];
    if (r.record.cluster != planned.cluster ||
        r.record.module_class != model.netlist.cell_class(planned.cell)) {
      throw InvalidArgument("shard file '" + c.path + "': record " +
                            std::to_string(gi) +
                            " contradicts the campaign plan");
    }
    out.push_back(r);
    if (out.row_count() == VectorSource::kDefaultBatchRows) {
      sink.append(out);
      out.clear();
    }
    prev = gi;
    have_prev = true;
    ++streamed;
    ++c.pos;
    if (c.advance()) {
      heap.push_back(idx);
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
  if (!out.empty()) sink.append(out);
  if (streamed != plan_size) {
    throw InvalidArgument("shard files cover " + std::to_string(streamed) +
                          " of " + std::to_string(plan_size) + " injections");
  }
  return streamed;
}

}  // namespace detail

CampaignStats merge_record_files(const soc::SocModel& model,
                                 const CampaignConfig& config,
                                 const radiation::SoftErrorDatabase& db,
                                 const std::vector<std::string>& paths,
                                 RecordSink& sink) {
  util::Timer timer;
  const detail::CampaignPrep prep =
      detail::prepare_campaign(model, config, db, /*for_execution=*/false);
  CampaignAggregator aggregator(model, config, db, prep);
  TeeSink tee({&aggregator, &sink});
  detail::stream_merged_records(model, config, prep, paths, tee);
  tee.flush();
  CampaignStats stats = aggregator.finalize();
  stats.simulation_seconds = timer.seconds();
  return stats;
}

// --- Streaming CSV / whole-vector v2 writer ---------------------------------

void write_records_csv(const std::string& path, RecordSource& source) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw Error("cannot open '" + path + "' for writing");
  std::fputs(
      "index,kind,cell,word,bit,time_ps,set_width_ps,cluster,module_class,"
      "soft_error,first_mismatch_cycle\n",
      f);
  RecordBatch batch;
  while (source.next_batch(batch)) {
    for (std::size_t i = 0; i < batch.row_count(); ++i) {
      const ShardRecord r = batch.row(i);
      const radiation::FaultEvent& e = r.record.event;
      std::fprintf(
          f, "%llu,%s,%u,%u,%u,%llu,%u,%d,%s,%d,%llu\n",
          static_cast<unsigned long long>(r.index),
          std::string(radiation::fault_kind_name(e.target.kind)).c_str(),
          e.target.cell.index(), e.target.word, e.target.bit,
          static_cast<unsigned long long>(e.time_ps), e.set_width_ps,
          r.record.cluster,
          std::string(netlist::module_class_name(r.record.module_class))
              .c_str(),
          r.record.soft_error ? 1 : 0,
          static_cast<unsigned long long>(r.record.first_mismatch_cycle));
    }
  }
  std::fclose(f);
}

void write_columnar_file(const std::string& path, const ShardFileMeta& meta,
                         std::span<const ShardRecord> records,
                         std::size_t chunk_rows) {
  for (std::size_t i = 0; i + 1 < records.size(); ++i) {
    if (records[i + 1].index <= records[i].index) {
      throw InvalidArgument(
          "write_columnar_file: records must be in ascending index order");
    }
  }
  ColumnarFileWriter writer(path, meta, chunk_rows);
  RecordBatch batch;
  for (std::size_t i = 0; i < records.size();) {
    const std::size_t n = std::min(chunk_rows == 0
                                       ? ColumnarFileWriter::kDefaultChunkRows
                                       : chunk_rows,
                                   records.size() - i);
    batch.clear();
    batch.reserve(n);
    for (std::size_t j = 0; j < n; ++j, ++i) batch.push_back(records[i]);
    writer.append(batch);
  }
  writer.flush();
}

}  // namespace ssresf::fi
