#include "fi/sensitivity.h"

#include <algorithm>
#include <cstdio>

#include "netlist/netlist.h"
#include "util/error.h"

namespace ssresf::fi {

namespace {

std::array<double, netlist::kModuleClassCount> class_sensitivity(
    const std::array<ClassStats, netlist::kModuleClassCount>& per_class) {
  std::array<double, netlist::kModuleClassCount> out{};
  for (std::size_t c = 0; c < out.size(); ++c) {
    const ClassStats& cls = per_class[c];
    out[c] = cls.samples > 0 ? 100.0 * static_cast<double>(cls.errors) /
                                   static_cast<double>(cls.samples)
                             : 0.0;
  }
  return out;
}

std::vector<ClusterStats> sort_by_ser(std::vector<ClusterStats> sorted) {
  std::sort(sorted.begin(), sorted.end(),
            [](const ClusterStats& a, const ClusterStats& b) {
              return a.ser_percent > b.ser_percent;
            });
  return sorted;
}

}  // namespace

std::array<double, netlist::kModuleClassCount>
high_sensitivity_percent_by_class(const CampaignResult& result) {
  return class_sensitivity(result.per_class);
}

std::array<double, netlist::kModuleClassCount>
high_sensitivity_percent_by_class(const CampaignStats& stats) {
  return class_sensitivity(stats.per_class);
}

std::vector<ClusterStats> clusters_by_ser(const CampaignResult& result) {
  return sort_by_ser(result.clusters);
}

std::vector<ClusterStats> clusters_by_ser(const CampaignStats& stats) {
  return sort_by_ser(stats.clusters);
}

void write_sensitivity_csv(
    const std::string& path, std::span<const ClusterStats> clusters,
    const std::array<ClassStats, netlist::kModuleClassCount>& per_class,
    double chip_ser_percent) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw Error("cannot open '" + path + "' for writing");
  std::fputs(
      "section,id,num_cells,samples,errors,propagation_ratio,xsect_cm2,"
      "ser_percent\n",
      f);
  for (const ClusterStats& c : clusters) {
    std::fprintf(f, "cluster,%d,%llu,%llu,%llu,%.17g,%.17g,%.17g\n", c.cluster,
                 static_cast<unsigned long long>(c.num_cells),
                 static_cast<unsigned long long>(c.samples),
                 static_cast<unsigned long long>(c.errors),
                 c.propagation_ratio, c.xsect_cm2, c.ser_percent);
  }
  for (std::size_t k = 0; k < per_class.size(); ++k) {
    const ClassStats& cls = per_class[k];
    const double ratio =
        cls.samples > 0 ? static_cast<double>(cls.errors) /
                              static_cast<double>(cls.samples)
                        : 0.0;
    std::fprintf(
        f, "class,%s,,%llu,%llu,%.17g,%.17g,%.17g\n",
        std::string(netlist::module_class_name(
                        static_cast<netlist::ModuleClass>(k)))
            .c_str(),
        static_cast<unsigned long long>(cls.samples),
        static_cast<unsigned long long>(cls.errors), ratio, cls.xsect_cm2,
        cls.ser_percent);
  }
  std::fprintf(f, "chip,,,,,,,%.17g\n", chip_ser_percent);
  std::fclose(f);
}

void write_sensitivity_csv(const std::string& path,
                           const CampaignResult& result) {
  write_sensitivity_csv(path, result.clusters, result.per_class,
                        result.chip_ser_percent);
}

void write_sensitivity_csv(const std::string& path,
                           const CampaignStats& stats) {
  write_sensitivity_csv(path, stats.clusters, stats.per_class,
                        stats.chip_ser_percent);
}

}  // namespace ssresf::fi
