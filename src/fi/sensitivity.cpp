#include "fi/sensitivity.h"

#include <algorithm>

namespace ssresf::fi {

std::array<double, netlist::kModuleClassCount>
high_sensitivity_percent_by_class(const CampaignResult& result) {
  std::array<double, netlist::kModuleClassCount> out{};
  for (std::size_t c = 0; c < out.size(); ++c) {
    const ClassStats& cls = result.per_class[c];
    out[c] = cls.samples > 0 ? 100.0 * static_cast<double>(cls.errors) /
                                   static_cast<double>(cls.samples)
                             : 0.0;
  }
  return out;
}

std::vector<ClusterStats> clusters_by_ser(const CampaignResult& result) {
  std::vector<ClusterStats> sorted = result.clusters;
  std::sort(sorted.begin(), sorted.end(),
            [](const ClusterStats& a, const ClusterStats& b) {
              return a.ser_percent > b.ser_percent;
            });
  return sorted;
}

}  // namespace ssresf::fi
