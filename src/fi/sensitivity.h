#pragma once

#include "fi/campaign.h"

namespace ssresf::fi {

/// Per-module-class percentage of sampled nodes whose injection produced a
/// soft error (the Fig. 7 series). Indexed by ModuleClass.
[[nodiscard]] std::array<double, netlist::kModuleClassCount>
high_sensitivity_percent_by_class(
    const CampaignResult& result);

/// Clusters ordered by descending SER (the paper sorts clusters by soft-
/// error probability to form the sensitive-node list).
[[nodiscard]] std::vector<ClusterStats> clusters_by_ser(
    const CampaignResult& result);

}  // namespace ssresf::fi
