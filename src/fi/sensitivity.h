#pragma once

#include <span>
#include <string>

#include "fi/campaign.h"

namespace ssresf::fi {

/// Per-module-class percentage of sampled nodes whose injection produced a
/// soft error (the Fig. 7 series). Indexed by ModuleClass.
[[nodiscard]] std::array<double, netlist::kModuleClassCount>
high_sensitivity_percent_by_class(
    const CampaignResult& result);

/// Same series from streaming-aggregated statistics — identical values, no
/// record vector required.
[[nodiscard]] std::array<double, netlist::kModuleClassCount>
high_sensitivity_percent_by_class(const CampaignStats& stats);

/// Clusters ordered by descending SER (the paper sorts clusters by soft-
/// error probability to form the sensitive-node list).
[[nodiscard]] std::vector<ClusterStats> clusters_by_ser(
    const CampaignResult& result);

[[nodiscard]] std::vector<ClusterStats> clusters_by_ser(
    const CampaignStats& stats);

/// Writes the canonical sensitivity-statistics CSV: one `cluster` row per
/// cluster (plan order), one `class` row per module class, one `chip` row.
/// All doubles print as %.17g (bit-exact round trip), so the CI equivalence
/// jobs can byte-diff this file across the v1 vector path, the v2
/// streaming path, and any worker count or transport.
void write_sensitivity_csv(
    const std::string& path, std::span<const ClusterStats> clusters,
    const std::array<ClassStats, netlist::kModuleClassCount>& per_class,
    double chip_ser_percent);

void write_sensitivity_csv(const std::string& path,
                           const CampaignResult& result);
void write_sensitivity_csv(const std::string& path,
                           const CampaignStats& stats);

}  // namespace ssresf::fi
