#include "fi/campaign.h"

#include <atomic>
#include <future>
#include <optional>

#include "netlist/stats.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ssresf::fi {

using netlist::CellId;
using netlist::CellKind;
using netlist::ModuleClass;
using radiation::FaultKind;

double chip_ser_percent(const std::vector<ClusterStats>& clusters) {
  double weighted = 0.0;
  double total_cells = 0.0;
  for (const ClusterStats& c : clusters) {
    weighted += static_cast<double>(c.num_cells) * c.ser_percent;
    total_cells += static_cast<double>(c.num_cells);
  }
  return total_cells > 0 ? weighted / total_cells : 0.0;
}

namespace {

/// Cross-section of one cell at the campaign LET; memory macros contribute
/// their whole array.
double cell_xsect(const netlist::Netlist& netlist,
                  const radiation::SoftErrorDatabase& db, CellId id,
                  double let) {
  const netlist::Cell& cell = netlist.cell(id);
  if (cell.kind == CellKind::kConst0 || cell.kind == CellKind::kConst1) {
    return 0.0;
  }
  if (cell.kind == CellKind::kMemory) {
    const auto& mi = netlist.memory(cell.memory_index);
    return db.mem_bit_xsect(mi.tech, let) *
           static_cast<double>(mi.total_bits());
  }
  return db.cell_xsect(cell.kind, let);
}

/// One entry of the flattened injection plan. The global index i is the
/// entry's position: it names the RNG stream and the record slot, so the
/// outcome of entry i is independent of which worker simulates it and when.
struct PlannedInjection {
  int cluster = 0;
  CellId cell;
};

}  // namespace

CampaignResult run_campaign(const soc::SocModel& model,
                            const CampaignConfig& config,
                            const radiation::SoftErrorDatabase& db) {
  util::Rng rng(config.seed);
  util::Rng cluster_rng = rng.fork();
  util::Rng sample_rng = rng.fork();

  CampaignResult result;
  result.clock_period_ps = soc::pick_clock_period(model.netlist);
  util::Timer sim_timer;

  // --- golden run -------------------------------------------------------------
  soc::SocRunner golden(model, config.engine, result.clock_period_ps);
  golden.reset();
  int run_cycles = config.run_cycles;
  if (run_cycles == 0) {
    golden.run_until_halt(config.max_cycles);
    if (!golden.halted()) {
      SSRESF_WARN << "golden run did not halt within " << config.max_cycles
                  << " cycles";
    }
    // Fixed total length for every faulty run (a fault may delay the halt).
    run_cycles = static_cast<int>(golden.testbench().cycles_run()) + 8;
  }
  result.golden_cycles = run_cycles;

  // --- clustering + sampling -----------------------------------------------------
  result.clustering =
      cluster::cluster_cells(model.netlist, config.clustering, cluster_rng);
  // Per-cell cross-section at the campaign LET, computed once and reused for
  // strike weighting and the per-cluster / per-class aggregation below.
  const double let = config.environment.let;
  std::vector<double> cell_xsects(model.netlist.num_cells(), 0.0);
  for (const CellId id : model.netlist.all_cells()) {
    cell_xsects[id.index()] = cell_xsect(model.netlist, db, id, let);
  }
  const auto samples =
      cluster::sample_clusters(model.netlist, result.clustering,
                               config.sampling, sample_rng, cell_xsects);

  // --- injections ------------------------------------------------------------------
  const radiation::Injector injector(model.netlist);
  const std::uint64_t period = result.clock_period_ps;
  const std::uint64_t window_ps = static_cast<std::uint64_t>(run_cycles) * period;
  // Inject after reset has settled and early enough to observe propagation.
  const std::uint64_t t0 = 5 * period;
  const std::uint64_t t1 = window_ps * 3 / 4;

  std::vector<PlannedInjection> plan;
  {
    std::size_t total = 0;
    for (const cluster::ClusterSample& cs : samples) total += cs.cells.size();
    plan.reserve(total);
  }
  for (const cluster::ClusterSample& cs : samples) {
    for (const CellId cell : cs.cells) plan.push_back({cs.cluster, cell});
  }
  result.records.resize(plan.size());

  sim::TestbenchConfig tb_config;
  tb_config.clk = model.clk;
  tb_config.rstn = model.rstn;
  tb_config.monitored = model.monitored;
  tb_config.clock_period_ps = period;
  // Every faulty timeline spans reset + run_cycles, like the golden trace.
  const int total_cycles = tb_config.reset_cycles + run_cycles;

  // Golden replay with a checkpoint ladder: simulate reset + workload once,
  // snapshotting the engine every `stride` cycles across the injection
  // window. A faulty run then resumes from the last checkpoint at or before
  // its strike time instead of re-simulating from power-on — the restored
  // state and the spliced golden trace prefix are exactly what an
  // uninterrupted run would have produced, so results are unchanged.
  struct Checkpoint {
    int cycle = 0;
    std::unique_ptr<sim::EngineState> state;
  };
  std::vector<Checkpoint> ladder;
  // Cycles fully simulated by t0 are fault-free in every run; that is the
  // earliest (and in the single-checkpoint limit, the only) rung.
  const int warm_cycles = static_cast<int>(std::min<std::uint64_t>(
      t0 / period, static_cast<std::uint64_t>(total_cycles)));
  const int stride = config.checkpoint_stride_cycles > 0
                         ? config.checkpoint_stride_cycles
                         : std::max(8, total_cycles / 32);
  const auto master = sim::make_engine(config.engine, model.netlist);
  sim::Testbench golden_tb(*master, tb_config);
  golden_tb.reset();
  int golden_done = tb_config.reset_cycles;
  const bool ladder_usable =
      (config.use_checkpoint || config.masked_exit) &&
      warm_cycles >= tb_config.reset_cycles;
  // Rungs past t1 are never restore targets (no injection is that late) but
  // still serve masked_exit as reconvergence witnesses.
  const auto maybe_snapshot = [&]() {
    const std::uint64_t cycle_start_ps =
        static_cast<std::uint64_t>(golden_done) * period;
    if (ladder_usable && golden_done < total_cycles &&
        (config.masked_exit || cycle_start_ps <= t1)) {
      ladder.push_back({golden_done, master->save_state()});
    }
  };
  if (warm_cycles > golden_done) {
    golden_tb.run_cycles(warm_cycles - golden_done);
    golden_done = warm_cycles;
  }
  maybe_snapshot();
  while (golden_done < total_cycles) {
    const int step = std::min(stride, total_cycles - golden_done);
    golden_tb.run_cycles(step);
    golden_done += step;
    maybe_snapshot();
  }
  const sim::OutputTrace& golden_trace = golden_tb.trace();

  // Fan-out: workers claim global indices from a shared counter; each owns a
  // private engine replica and writes only its own record slots, so the only
  // shared mutable state is the counter. Outcomes depend on the index alone
  // (RNG stream, checkpoint choice, golden comparison), never on which
  // worker ran them or in what order — that is the determinism guarantee.
  std::atomic<std::size_t> next_index{0};
  const auto run_shard = [&]() {
    const auto engine = sim::make_engine(config.engine, model.netlist);
    for (std::size_t i; (i = next_index.fetch_add(1)) < plan.size();) {
      const PlannedInjection& pi = plan[i];
      util::Rng inject_rng = util::Rng::from_stream(config.seed, i);
      const radiation::FaultTarget target =
          injector.target_for_cell(pi.cell, inject_rng);
      const radiation::FaultEvent event = injector.random_event(
          target, t0, t1, config.environment, inject_rng);

      // Latest checkpoint whose cycle starts at or before the strike.
      const Checkpoint* checkpoint = nullptr;
      if (config.use_checkpoint) {
        for (const Checkpoint& c : ladder) {
          if (static_cast<std::uint64_t>(c.cycle) * period > event.time_ps) {
            break;
          }
          checkpoint = &c;
        }
      }

      if (checkpoint != nullptr) {
        engine->restore_state(*checkpoint->state);
      } else {
        engine->reset_state();
      }
      sim::Testbench tb(*engine, tb_config);
      if (checkpoint != nullptr) {
        tb.resume_at(static_cast<std::uint64_t>(checkpoint->cycle),
                     golden_trace.prefix(
                         static_cast<std::size_t>(checkpoint->cycle)));
      }
      // Always stream-compare; a negative confirmation window means "track
      // the divergence but simulate to the end" (the full-fidelity mode).
      tb.compare_against(
          &golden_trace,
          config.early_exit ? config.early_exit_confirm_cycles : -1);
      injector.schedule(tb, event);
      if (checkpoint == nullptr) tb.reset();

      // All injection actions have been applied strictly before this time.
      const std::uint64_t fault_end_ps =
          event.time_ps + (target.kind == FaultKind::kSet
                               ? static_cast<std::uint64_t>(event.set_width_ps)
                               : 0);
      // Run in rung-sized chunks when hunting for reconvergence, else in one
      // go. At a rung whose state matches the golden snapshot, the remaining
      // simulation would replay the golden run exactly — stop there.
      std::size_t rung = 0;
      while (static_cast<int>(tb.cycles_run()) < total_cycles) {
        int run_to = total_cycles;
        const Checkpoint* witness = nullptr;
        if (config.masked_exit) {
          while (rung < ladder.size() &&
                 (ladder[rung].cycle <= static_cast<int>(tb.cycles_run()) ||
                  static_cast<std::uint64_t>(ladder[rung].cycle) * period <=
                      fault_end_ps)) {
            ++rung;
          }
          if (rung < ladder.size()) {
            run_to = ladder[rung].cycle;
            witness = &ladder[rung];
          }
        }
        tb.run_cycles(run_to - static_cast<int>(tb.cycles_run()));
        if (tb.stopped_early()) break;
        if (witness != nullptr && engine->state_matches(*witness->state)) {
          break;
        }
      }
      const std::optional<std::size_t> mismatch = tb.first_divergence();

      InjectionRecord& record = result.records[i];
      record.event = event;
      record.cluster = pi.cluster;
      record.module_class = model.netlist.cell_class(pi.cell);
      record.soft_error = mismatch.has_value();
      record.first_mismatch_cycle = mismatch.value_or(0);
    }
  };

  const int requested_threads = config.threads > 0
                                    ? config.threads
                                    : util::ThreadPool::hardware_threads();
  const int workers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(requested_threads),
      std::max<std::size_t>(plan.size(), 1)));
  if (workers <= 1) {
    run_shard();
  } else {
    util::ThreadPool pool(workers);
    std::vector<std::future<void>> shards;
    shards.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) shards.push_back(pool.submit(run_shard));
    for (auto& shard : shards) shard.get();
  }
  result.simulation_seconds = sim_timer.seconds();

  // --- aggregation -------------------------------------------------------------------
  const auto total = db.netlist_xsect(model.netlist, let);
  result.set_xsect_cm2 = total.set_cm2;
  result.seu_xsect_cm2 = total.seu_cm2;

  // Merge per-cluster and per-class counters from the records: index order is
  // plan order, so the aggregation is identical for every thread count.
  std::vector<std::size_t> cluster_samples(result.clustering.clusters.size(), 0);
  std::vector<std::size_t> cluster_errors(result.clustering.clusters.size(), 0);
  for (const InjectionRecord& r : result.records) {
    ++cluster_samples[static_cast<std::size_t>(r.cluster)];
    auto& cls = result.per_class[static_cast<std::size_t>(r.module_class)];
    ++cls.samples;
    if (r.soft_error) {
      ++cluster_errors[static_cast<std::size_t>(r.cluster)];
      ++cls.errors;
    }
  }

  for (std::size_t k = 0; k < result.clustering.clusters.size(); ++k) {
    ClusterStats stats;
    stats.cluster = static_cast<int>(k);
    // Weighted count (memory macros expand to words): the CellN of Eq. 2.
    stats.num_cells =
        static_cast<std::size_t>(result.clustering.cluster_weight[k]);
    stats.samples = cluster_samples[k];
    stats.errors = cluster_errors[k];
    stats.propagation_ratio =
        stats.samples > 0
            ? static_cast<double>(stats.errors) / static_cast<double>(stats.samples)
            : 0.0;
    for (const CellId id : result.clustering.clusters[k]) {
      stats.xsect_cm2 += cell_xsects[id.index()];
    }
    stats.ser_percent =
        stats.propagation_ratio *
        config.environment.upset_probability(stats.xsect_cm2, window_ps) * 100.0;
    result.clusters.push_back(stats);
  }
  result.chip_ser_percent = chip_ser_percent(result.clusters);

  // Per-module-class aggregation for Table I / Fig. 7.
  std::array<double, 5> class_xsect{};
  for (const CellId id : model.netlist.all_cells()) {
    class_xsect[static_cast<std::size_t>(model.netlist.cell_class(id))] +=
        cell_xsects[id.index()];
  }
  for (std::size_t c = 0; c < result.per_class.size(); ++c) {
    auto& cls = result.per_class[c];
    cls.xsect_cm2 = class_xsect[c];
    const double ratio =
        cls.samples > 0
            ? static_cast<double>(cls.errors) / static_cast<double>(cls.samples)
            : 0.0;
    cls.ser_percent =
        ratio *
        config.environment.upset_probability(cls.xsect_cm2, window_ps) * 100.0;
  }
  return result;
}

}  // namespace ssresf::fi
