#include "fi/campaign.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdio>
#include <future>
#include <numeric>
#include <optional>
#include <type_traits>

#include "fi/campaign_exec.h"
#include "fi/record_store.h"
#include "netlist/stats.h"
#include "sim/bit_parallel_sim.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ssresf::fi {

using netlist::CellId;
using netlist::CellKind;
using netlist::Logic;
using netlist::ModuleClass;
using radiation::FaultKind;

void write_records_csv(const std::string& path,
                       const std::vector<InjectionRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw Error("cannot open '" + path + "' for writing");
  std::fputs(
      "index,kind,cell,word,bit,time_ps,set_width_ps,cluster,module_class,"
      "soft_error,first_mismatch_cycle\n",
      f);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const InjectionRecord& r = records[i];
    const auto& e = r.event;
    std::fprintf(
        f, "%zu,%s,%u,%u,%u,%llu,%u,%d,%s,%d,%zu\n", i,
        std::string(radiation::fault_kind_name(e.target.kind)).c_str(),
        e.target.cell.index(), e.target.word, e.target.bit,
        static_cast<unsigned long long>(e.time_ps), e.set_width_ps, r.cluster,
        std::string(netlist::module_class_name(r.module_class)).c_str(),
        r.soft_error ? 1 : 0, r.first_mismatch_cycle);
  }
  std::fclose(f);
}

double chip_ser_percent(const std::vector<ClusterStats>& clusters) {
  double weighted = 0.0;
  double total_cells = 0.0;
  for (const ClusterStats& c : clusters) {
    weighted += static_cast<double>(c.num_cells) * c.ser_percent;
    total_cells += static_cast<double>(c.num_cells);
  }
  return total_cells > 0 ? weighted / total_cells : 0.0;
}

namespace {

/// Cross-section of one cell at the campaign LET; memory macros contribute
/// their whole array.
double cell_xsect(const netlist::Netlist& netlist,
                  const radiation::SoftErrorDatabase& db, CellId id,
                  double let) {
  const netlist::Cell& cell = netlist.cell(id);
  if (cell.kind == CellKind::kConst0 || cell.kind == CellKind::kConst1) {
    return 0.0;
  }
  if (cell.kind == CellKind::kMemory) {
    const auto& mi = netlist.memory(cell.memory_index);
    return db.mem_bit_xsect(mi.tech, let) *
           static_cast<double>(mi.total_bits());
  }
  return db.cell_xsect(cell.kind, let);
}

/// Fault parameters of plan entry `index`, fully determined by
/// (seed, index). Both execution paths — scalar shards and bit-parallel
/// word batches — derive injections through this one function, which is
/// what keeps their records byte-identical for the same seed.
struct InjectionParams {
  radiation::FaultTarget target;
  radiation::FaultEvent event;
  std::uint64_t fault_end_ps = 0;  // all actions applied strictly before this
};

InjectionParams derive_injection(const radiation::Injector& injector,
                                 CellId cell, std::uint64_t seed,
                                 std::size_t index, std::uint64_t t0,
                                 std::uint64_t t1,
                                 const radiation::Environment& env) {
  util::Rng rng = util::Rng::from_stream(seed, index);
  InjectionParams p;
  p.target = injector.target_for_cell(cell, rng);
  p.event = injector.random_event(p.target, t0, t1, env, rng);
  p.fault_end_ps = p.event.time_ps +
                   (p.target.kind == FaultKind::kSet
                        ? static_cast<std::uint64_t>(p.event.set_width_ps)
                        : 0);
  return p;
}

}  // namespace

namespace detail {

CampaignPrep prepare_campaign(const soc::SocModel& model,
                              const CampaignConfig& config,
                              const radiation::SoftErrorDatabase& db,
                              bool for_execution) {
  util::Rng rng(config.seed);
  util::Rng cluster_rng = rng.fork();
  util::Rng sample_rng = rng.fork();

  CampaignPrep prep;
  prep.clock_period_ps = soc::pick_clock_period(model.netlist);

  // The bit-parallel engine shares the levelized zero-delay timing model, so
  // all golden (fault-free) work — the reference run, the replay, and the
  // checkpoint ladder — runs on the scalar levelized engine: identical
  // trajectory at a fraction of the cost, and scalar snapshots are 64x
  // smaller than packed ones. Word batches broadcast a scalar checkpoint
  // into all lanes via BitParallelSimulator::adopt_golden.
  const sim::EngineKind golden_kind = golden_engine_kind(config);

  // --- golden run -------------------------------------------------------------
  soc::SocRunner golden(model, golden_kind, prep.clock_period_ps);
  golden.reset();
  int run_cycles = config.run_cycles;
  if (run_cycles == 0) {
    golden.run_until_halt(config.max_cycles);
    if (!golden.halted()) {
      SSRESF_WARN << "golden run did not halt within " << config.max_cycles
                  << " cycles";
    }
    // Fixed total length for every faulty run (a fault may delay the halt).
    run_cycles = static_cast<int>(golden.testbench().cycles_run()) + 8;
  }
  prep.run_cycles = run_cycles;

  // --- clustering + sampling -----------------------------------------------------
  prep.clustering =
      cluster::cluster_cells(model.netlist, config.clustering, cluster_rng);
  // Per-cell cross-section at the campaign LET, computed once and reused for
  // strike weighting and the per-cluster / per-class aggregation.
  const double let = config.environment.let;
  prep.cell_xsects.assign(model.netlist.num_cells(), 0.0);
  for (const CellId id : model.netlist.all_cells()) {
    prep.cell_xsects[id.index()] = cell_xsect(model.netlist, db, id, let);
  }
  const auto samples =
      cluster::sample_clusters(model.netlist, prep.clustering, config.sampling,
                               sample_rng, prep.cell_xsects);

  // --- injection plan ---------------------------------------------------------
  const std::uint64_t period = prep.clock_period_ps;
  prep.window_ps = static_cast<std::uint64_t>(run_cycles) * period;
  // Inject after reset has settled and early enough to observe propagation.
  prep.t0 = 5 * period;
  prep.t1 = prep.window_ps * 3 / 4;

  {
    std::size_t total = 0;
    for (const cluster::ClusterSample& cs : samples) total += cs.cells.size();
    prep.plan.reserve(total);
  }
  for (const cluster::ClusterSample& cs : samples) {
    for (const CellId cell : cs.cells) prep.plan.push_back({cs.cluster, cell});
  }

  prep.tb_config.clk = model.clk;
  prep.tb_config.rstn = model.rstn;
  prep.tb_config.monitored = model.monitored;
  prep.tb_config.clock_period_ps = period;
  // Every faulty timeline spans reset + run_cycles, like the golden trace.
  prep.total_cycles = prep.tb_config.reset_cycles + run_cycles;

  if (!for_execution) return prep;

  // Golden replay with a checkpoint ladder: simulate reset + workload once,
  // snapshotting the engine every `stride` cycles across the injection
  // window. A faulty run then resumes from the last checkpoint at or before
  // its strike time instead of re-simulating from power-on — the restored
  // state and the spliced golden trace prefix are exactly what an
  // uninterrupted run would have produced, so results are unchanged.
  // Cycles fully simulated by t0 are fault-free in every run; that is the
  // earliest (and in the single-checkpoint limit, the only) rung.
  const int warm_cycles = static_cast<int>(std::min<std::uint64_t>(
      prep.t0 / period, static_cast<std::uint64_t>(prep.total_cycles)));
  const int stride = config.checkpoint_stride_cycles > 0
                         ? config.checkpoint_stride_cycles
                         : std::max(8, prep.total_cycles / 32);
  const auto master = sim::make_engine(golden_kind, model.netlist);
  sim::Testbench golden_tb(*master, prep.tb_config);
  golden_tb.reset();
  int golden_done = prep.tb_config.reset_cycles;
  const bool ladder_usable =
      (config.use_checkpoint || config.masked_exit) &&
      warm_cycles >= prep.tb_config.reset_cycles;
  // Rungs past t1 are never restore targets (no injection is that late) but
  // still serve masked_exit as reconvergence witnesses.
  const auto maybe_snapshot = [&]() {
    const std::uint64_t cycle_start_ps =
        static_cast<std::uint64_t>(golden_done) * period;
    if (ladder_usable && golden_done < prep.total_cycles &&
        (config.masked_exit || cycle_start_ps <= prep.t1)) {
      prep.ladder.push_back({golden_done, master->save_state()});
    }
  };
  if (warm_cycles > golden_done) {
    golden_tb.run_cycles(warm_cycles - golden_done);
    golden_done = warm_cycles;
  }
  maybe_snapshot();
  while (golden_done < prep.total_cycles) {
    const int step = std::min(stride, prep.total_cycles - golden_done);
    golden_tb.run_cycles(step);
    golden_done += step;
    maybe_snapshot();
  }
  prep.golden_trace = golden_tb.trace();
  return prep;
}

void execute_injections(const soc::SocModel& model,
                        const CampaignConfig& config, const CampaignPrep& prep,
                        std::span<const std::size_t> owned,
                        std::vector<InjectionRecord>& records) {
  if (records.size() != prep.plan.size()) {
    throw InvalidArgument("execute_injections: record vector size mismatch");
  }
  const radiation::Injector injector(model.netlist);
  const std::uint64_t period = prep.clock_period_ps;
  const bool packed_mode = config.engine == sim::EngineKind::kBitParallel;
  const sim::EngineKind golden_kind = golden_engine_kind(config);
  const sim::OutputTrace& golden_trace = prep.golden_trace;
  const auto& ladder = prep.ladder;
  const auto& plan = prep.plan;
  const int total_cycles = prep.total_cycles;
  const sim::TestbenchConfig& tb_config = prep.tb_config;

  if (packed_mode && config.lanes != 64 && config.lanes != 256) {
    throw InvalidArgument("campaign lanes must be 64 or 256");
  }

  // Fan-out: workers claim work items (positions in `owned`, or word batches
  // in bit-parallel mode) from a shared counter; each owns a private engine
  // replica, a reusable testbench, and a private record arena, so no two
  // threads ever touch the same cache line of results. Outcomes depend on
  // the global index alone (RNG stream, checkpoint choice, golden
  // comparison), never on which worker — thread or process — ran them or in
  // what order: that is the determinism guarantee the distributed campaign
  // is built on. Arenas are merged by global index after the join, which is
  // deterministic because every index is produced exactly once.
  using RecordArena = std::vector<std::pair<std::size_t, InjectionRecord>>;
  // The two counters live on separate cache lines: the claim counter is hit
  // on every work item by every worker, and the progress counter next to it
  // turned each claim into a false-sharing round trip.
  struct alignas(64) PaddedCounter {
    std::atomic<std::uint64_t> v{0};
  };
  PaddedCounter next_index;
  PaddedCounter progress_done;
  const auto report_progress = [&](std::uint64_t completed) {
    if (config.progress) {
      config.progress(progress_done.v.fetch_add(completed) + completed,
                      owned.size());
    }
  };
  const auto run_shard = [&](RecordArena& out) {
    const auto engine = sim::make_engine(config.engine, model.netlist);
    // One testbench per worker, restarted per injection: constructing it per
    // run copied the monitored-net list and the golden trace prefix every
    // time, which dominated the per-injection cost at scale.
    sim::Testbench tb(*engine, tb_config);
    for (std::size_t oi; (oi = next_index.v.fetch_add(1)) < owned.size();) {
      const std::size_t i = owned[oi];
      const PlannedInjection& pi = plan[i];
      const InjectionParams inj =
          derive_injection(injector, pi.cell, config.seed, i, prep.t0, prep.t1,
                           config.environment);
      const radiation::FaultEvent& event = inj.event;

      // Latest checkpoint whose cycle starts at or before the strike.
      const CampaignPrep::Rung* checkpoint = nullptr;
      if (config.use_checkpoint) {
        for (const CampaignPrep::Rung& c : ladder) {
          if (static_cast<std::uint64_t>(c.cycle) * period > event.time_ps) {
            break;
          }
          checkpoint = &c;
        }
      }

      if (checkpoint != nullptr) {
        engine->restore_state(*checkpoint->state);
      } else {
        engine->reset_state();
      }
      tb.restart();
      if (checkpoint != nullptr) {
        // Prefix-free resume: the cycles a checkpoint covers are the golden
        // trace verbatim, so there is nothing to copy or re-compare.
        tb.resume_at(static_cast<std::uint64_t>(checkpoint->cycle));
      }
      // Always stream-compare; a negative confirmation window means "track
      // the divergence but simulate to the end" (the full-fidelity mode).
      tb.compare_against(
          &golden_trace,
          config.early_exit ? config.early_exit_confirm_cycles : -1);
      injector.schedule(tb, event);
      if (checkpoint == nullptr) tb.reset();

      const std::uint64_t fault_end_ps = inj.fault_end_ps;
      // Run in rung-sized chunks when hunting for reconvergence, else in one
      // go. At a rung whose state matches the golden snapshot, the remaining
      // simulation would replay the golden run exactly — stop there.
      std::size_t rung = 0;
      while (static_cast<int>(tb.cycles_run()) < total_cycles) {
        int run_to = total_cycles;
        const CampaignPrep::Rung* witness = nullptr;
        if (config.masked_exit) {
          while (rung < ladder.size() &&
                 (ladder[rung].cycle <= static_cast<int>(tb.cycles_run()) ||
                  static_cast<std::uint64_t>(ladder[rung].cycle) * period <=
                      fault_end_ps)) {
            ++rung;
          }
          if (rung < ladder.size()) {
            run_to = ladder[rung].cycle;
            witness = &ladder[rung];
          }
        }
        tb.run_cycles(run_to - static_cast<int>(tb.cycles_run()));
        if (tb.stopped_early()) break;
        if (witness != nullptr && engine->state_matches(*witness->state)) {
          break;
        }
      }
      const std::optional<std::size_t> mismatch = tb.first_divergence();

      InjectionRecord record;
      record.event = event;
      record.cluster = pi.cluster;
      record.module_class = model.netlist.cell_class(pi.cell);
      record.soft_error = mismatch.has_value();
      record.first_mismatch_cycle = mismatch.value_or(0);
      out.emplace_back(i, record);
      report_progress(1);
    }
  };

  // --- bit-parallel word batches ---------------------------------------------
  // The packed engine simulates slot 0 golden + up to 64*W-1 faulty runs per
  // batch (63 at the default 64-lane width, 255 at 256 lanes). Injection
  // parameters depend only on (seed, index), so the owned subset is
  // materialised up front and grouped deterministically into word batches:
  // injections sorted by strike time and chunked one batch-width at a time,
  // so each batch covers a contiguous (overlapping) slice of the injection
  // window. Each batch restores the golden checkpoint of its earliest strike
  // once, applies every slot's fault on its own lane, and retires finished
  // slots (diverged, or reconverged with the golden lane) from a live-slot
  // mask; the batch ends when the mask drains. Records are byte-identical to
  // the scalar levelized engine's — regardless of how the owned subset is
  // batched, and at every lane width — because every packed operator is
  // lane-wise identical to its scalar counterpart and slot trajectories are
  // lane-independent.
  std::vector<InjectionParams> packed;
  struct WordBatch {
    std::size_t rung = 0;  // 1 + ladder index; 0 = run from power-on reset
    std::vector<std::size_t> idx;  // global plan indices, slot s = idx[s-1]
  };
  std::vector<WordBatch> batches;
  if (packed_mode) {
    packed.resize(plan.size());
    for (const std::size_t i : owned) {
      packed[i] = derive_injection(injector, plan[i].cell, config.seed, i,
                                   prep.t0, prep.t1, config.environment);
    }
    std::vector<std::size_t> order(owned.begin(), owned.end());
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return packed[a].event.time_ps < packed[b].event.time_ps;
                     });
    const auto fault_slots = static_cast<std::size_t>(config.lanes - 1);
    for (std::size_t off = 0; off < order.size(); off += fault_slots) {
      const std::size_t end = std::min(off + fault_slots, order.size());
      WordBatch batch;
      batch.idx.assign(order.begin() + static_cast<std::ptrdiff_t>(off),
                       order.begin() + static_cast<std::ptrdiff_t>(end));
      if (config.use_checkpoint) {
        const std::uint64_t first_strike = packed[batch.idx.front()].event.time_ps;
        for (std::size_t r = 0; r < ladder.size(); ++r) {
          if (static_cast<std::uint64_t>(ladder[r].cycle) * period >
              first_strike) {
            break;
          }
          batch.rung = r + 1;
        }
      }
      batches.push_back(std::move(batch));
    }
  }

  PaddedCounter next_batch;
  // Generic over the packed simulator type: SimT is the 64-lane word engine
  // or the 256-lane AVX2 engine depending on config.lanes. Lane masks and
  // plane vectors widen with it; the algorithm is lane-count agnostic.
  const auto run_batches = [&]<typename SimT>(std::type_identity<SimT>,
                                              RecordArena& out) {
    using Mask = typename SimT::Mask;
    constexpr int kWords = SimT::kWords;
    SimT engine(model.netlist);
    // Scratch scalar engine: receives the (levelized) checkpoint snapshot,
    // which adopt_golden then broadcasts into all packed lanes.
    const auto scratch = sim::make_engine(golden_kind, model.netlist);
    // One scheduled per-slot fault action; merged by time below (stable sort
    // keeps a SET's force strictly before its same-time release).
    struct Action {
      std::uint64_t time_ps;
      int slot;
      enum class Kind : std::uint8_t {
        kSeuFlip,
        kSetForce,
        kSetRelease,
        kMemFlip
      } kind;
    };
    std::vector<Action> actions;
    for (std::size_t b; (b = next_batch.v.fetch_add(1)) < batches.size();) {
      const WordBatch& batch = batches[b];
      const int nslots = static_cast<int>(batch.idx.size());
      int cycle = 0;
      if (batch.rung > 0) {
        const CampaignPrep::Rung& c = ladder[batch.rung - 1];
        scratch->restore_state(*c.state);
        engine.adopt_golden(*scratch);
        cycle = c.cycle;
      } else {
        engine.reset_state();
      }
      // Testbench-constructor equivalent (no-ops when resuming mid-run).
      engine.set_input(tb_config.clk, Logic::L0);
      if (tb_config.rstn.valid()) engine.set_input(tb_config.rstn, Logic::L1);

      actions.clear();
      for (int s = 0; s < nslots; ++s) {
        const InjectionParams& pj = packed[batch.idx[static_cast<std::size_t>(s)]];
        const int slot = s + 1;
        switch (pj.target.kind) {
          case FaultKind::kSeu:
            actions.push_back({pj.event.time_ps, slot, Action::Kind::kSeuFlip});
            break;
          case FaultKind::kSet:
            actions.push_back({pj.event.time_ps, slot, Action::Kind::kSetForce});
            actions.push_back(
                {pj.event.time_ps +
                     static_cast<std::uint64_t>(pj.event.set_width_ps),
                 slot, Action::Kind::kSetRelease});
            break;
          case FaultKind::kMemBit:
            actions.push_back({pj.event.time_ps, slot, Action::Kind::kMemFlip});
            break;
        }
      }
      std::stable_sort(actions.begin(), actions.end(),
                       [](const Action& a, const Action& c) {
                         return a.time_ps < c.time_ps;
                       });
      const auto apply = [&](const Action& a) {
        const InjectionParams& pj =
            packed[batch.idx[static_cast<std::size_t>(a.slot - 1)]];
        switch (a.kind) {
          case Action::Kind::kSeuFlip: {
            const Logic flipped = netlist::logic_flip(
                engine.ff_state_slot(pj.target.cell, a.slot));
            engine.deposit_ff_slot(pj.target.cell, a.slot, flipped);
            break;
          }
          case Action::Kind::kSetForce: {
            const netlist::NetId victim =
                model.netlist.cell(pj.target.cell).outputs[0];
            engine.force_net_slot(
                victim, a.slot,
                netlist::logic_flip(engine.value_slot(victim, a.slot)));
            break;
          }
          case Action::Kind::kSetRelease:
            engine.release_net_slot(
                model.netlist.cell(pj.target.cell).outputs[0], a.slot);
            break;
          case Action::Kind::kMemFlip: {
            const std::uint64_t old = engine.read_mem_word_slot(
                pj.target.cell, a.slot, pj.target.word);
            engine.write_mem_word_slot(
                pj.target.cell, a.slot, pj.target.word,
                old ^ (std::uint64_t{1} << pj.target.bit));
            break;
          }
        }
      };

      Mask live = Mask::first_lanes(nslots + 1);
      live.reset(0);  // lane 0 is golden
      Mask diverged;
      std::array<std::size_t, SimT::kSlots> mismatch_cycle{};
      std::size_t ai = 0;
      for (; cycle < total_cycles && live.any(); ++cycle) {
        if (batch.rung == 0 && tb_config.rstn.valid()) {
          if (cycle == 0) engine.set_input(tb_config.rstn, Logic::L0);
          if (cycle == tb_config.reset_cycles) {
            engine.set_input(tb_config.rstn, Logic::L1);
          }
        }
        const std::uint64_t start = static_cast<std::uint64_t>(cycle) * period;
        const std::uint64_t rise = start + period / 2;
        const std::uint64_t cycle_end = start + period;
        while (ai < actions.size() && actions[ai].time_ps < rise) {
          apply(actions[ai++]);
        }
        engine.advance_to(rise);
        // Sample just before the capturing edge and stream-compare every
        // live slot against the golden trace row.
        const auto& gold = golden_trace.cycle(static_cast<std::size_t>(cycle));
        Mask diff;
        for (std::size_t j = 0; j < tb_config.monitored.size(); ++j) {
          const typename SimT::Planes p =
              engine.packed_value(tb_config.monitored[j]);
          const auto g = netlist::wide_splat<kWords>(gold[j]);
          for (int k = 0; k < kWords; ++k) {
            diff.w[k] |= (p.val[k] ^ g.val[k]) | (p.unk[k] ^ g.unk[k]);
          }
        }
        const Mask newly = diff & live & ~diverged;
        diverged |= newly;
        netlist::for_each_set_lane(newly, [&](int lane) {
          mismatch_cycle[static_cast<std::size_t>(lane)] =
              static_cast<std::size_t>(cycle);
        });
        // A diverged slot's outcome is fully decided; early exit retires it
        // immediately (the scalar confirmation window never changes records).
        if (config.early_exit) live &= ~diverged;
        engine.set_input(tb_config.clk, Logic::L1);
        while (ai < actions.size() && actions[ai].time_ps < cycle_end) {
          apply(actions[ai++]);
        }
        engine.advance_to(cycle_end);
        engine.set_input(tb_config.clk, Logic::L0);
        if (config.masked_exit && live.any()) {
          // Slots whose fault has ended and whose lane state provably equals
          // the golden lane have reconverged: their futures coincide with the
          // golden run, so they retire (healed SEUs, masked SETs).
          Mask cand;
          netlist::for_each_set_lane(live, [&](int s) {
            if (cycle_end >
                packed[batch.idx[static_cast<std::size_t>(s - 1)]].fault_end_ps) {
              cand.set(s);
            }
          });
          if (cand.any()) live &= ~(cand & ~engine.state_diff_from_golden());
        }
      }

      for (int s = 0; s < nslots; ++s) {
        const std::size_t i = batch.idx[static_cast<std::size_t>(s)];
        const int lane = s + 1;
        InjectionRecord record;
        record.event = packed[i].event;
        record.cluster = plan[i].cluster;
        record.module_class = model.netlist.cell_class(plan[i].cell);
        record.soft_error = diverged.test(lane);
        record.first_mismatch_cycle =
            record.soft_error ? mismatch_cycle[static_cast<std::size_t>(lane)]
                              : 0;
        out.emplace_back(i, record);
      }
      report_progress(static_cast<std::uint64_t>(nslots));
    }
  };

  const auto run_worker = [&](RecordArena& out) {
    if (!packed_mode) {
      run_shard(out);
    } else if (config.lanes == 256) {
      run_batches(std::type_identity<sim::BitParallelSimulator256>{}, out);
    } else {
      run_batches(std::type_identity<sim::BitParallelSimulator>{}, out);
    }
  };

  const std::size_t work_items = packed_mode ? batches.size() : owned.size();
  const int requested_threads = config.threads > 0
                                    ? config.threads
                                    : util::ThreadPool::hardware_threads();
  const int workers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(requested_threads),
      std::max<std::size_t>(work_items, 1)));
  std::vector<RecordArena> arenas(static_cast<std::size_t>(workers));
  for (RecordArena& a : arenas) {
    a.reserve(owned.size() / static_cast<std::size_t>(workers) + 1);
  }
  if (workers <= 1) {
    run_worker(arenas[0]);
  } else {
    util::ThreadPool pool(workers);
    std::vector<std::future<void>> shards;
    shards.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      RecordArena& arena = arenas[static_cast<std::size_t>(w)];
      shards.push_back(pool.submit([&run_worker, &arena] { run_worker(arena); }));
    }
    for (auto& shard : shards) shard.get();
  }
  // Deterministic merge: each global index was produced by exactly one
  // worker, so scattering the arenas into the shared vector here yields the
  // same bytes as any single-threaded run — and no worker ever wrote to the
  // shared vector while others were running.
  for (const RecordArena& arena : arenas) {
    for (const auto& [i, record] : arena) records[i] = record;
  }
}

CampaignStats compute_campaign_stats(const soc::SocModel& model,
                                     const CampaignConfig& config,
                                     const radiation::SoftErrorDatabase& db,
                                     const cluster::ClusteringResult& clustering,
                                     std::span<const double> cell_xsects,
                                     std::uint64_t window_ps,
                                     const StatsCounters& counters) {
  CampaignStats stats;

  const double let = config.environment.let;
  const auto total = db.netlist_xsect(model.netlist, let);
  stats.set_xsect_cm2 = total.set_cm2;
  stats.seu_xsect_cm2 = total.seu_cm2;

  for (std::size_t k = 0; k < clustering.clusters.size(); ++k) {
    ClusterStats cs;
    cs.cluster = static_cast<int>(k);
    // Weighted count (memory macros expand to words): the CellN of Eq. 2.
    cs.num_cells = static_cast<std::size_t>(clustering.cluster_weight[k]);
    cs.samples = counters.cluster_samples[k];
    cs.errors = counters.cluster_errors[k];
    cs.propagation_ratio =
        cs.samples > 0
            ? static_cast<double>(cs.errors) / static_cast<double>(cs.samples)
            : 0.0;
    for (const CellId id : clustering.clusters[k]) {
      cs.xsect_cm2 += cell_xsects[id.index()];
    }
    cs.ser_percent =
        cs.propagation_ratio *
        config.environment.upset_probability(cs.xsect_cm2, window_ps) * 100.0;
    stats.clusters.push_back(cs);
  }
  stats.chip_ser_percent = chip_ser_percent(stats.clusters);

  // Per-module-class aggregation for Table I / Fig. 7.
  std::array<double, netlist::kModuleClassCount> class_xsect{};
  for (const CellId id : model.netlist.all_cells()) {
    class_xsect[static_cast<std::size_t>(model.netlist.cell_class(id))] +=
        cell_xsects[id.index()];
  }
  for (std::size_t c = 0; c < stats.per_class.size(); ++c) {
    auto& cls = stats.per_class[c];
    cls.samples = counters.class_samples[c];
    cls.errors = counters.class_errors[c];
    cls.xsect_cm2 = class_xsect[c];
    const double ratio =
        cls.samples > 0
            ? static_cast<double>(cls.errors) / static_cast<double>(cls.samples)
            : 0.0;
    cls.ser_percent =
        ratio * config.environment.upset_probability(cls.xsect_cm2, window_ps) *
        100.0;
  }
  return stats;
}

CampaignResult finalize_campaign(const soc::SocModel& model,
                                 const CampaignConfig& config,
                                 const radiation::SoftErrorDatabase& db,
                                 CampaignPrep&& prep,
                                 std::vector<InjectionRecord>&& records) {
  CampaignResult result;
  result.clock_period_ps = prep.clock_period_ps;
  result.golden_cycles = prep.run_cycles;
  result.clustering = std::move(prep.clustering);
  result.records = std::move(records);

  // Fold the records into order-independent counters; the shared kernel
  // below does every floating-point reduction, so this path and the
  // streaming CampaignAggregator produce bit-identical statistics.
  std::vector<std::size_t> cluster_samples(result.clustering.clusters.size(), 0);
  std::vector<std::size_t> cluster_errors(result.clustering.clusters.size(), 0);
  std::array<std::size_t, netlist::kModuleClassCount> class_samples{};
  std::array<std::size_t, netlist::kModuleClassCount> class_errors{};
  for (const InjectionRecord& r : result.records) {
    ++cluster_samples[static_cast<std::size_t>(r.cluster)];
    ++class_samples[static_cast<std::size_t>(r.module_class)];
    if (r.soft_error) {
      ++cluster_errors[static_cast<std::size_t>(r.cluster)];
      ++class_errors[static_cast<std::size_t>(r.module_class)];
    }
  }

  CampaignStats stats = compute_campaign_stats(
      model, config, db, result.clustering, prep.cell_xsects, prep.window_ps,
      StatsCounters{cluster_samples, cluster_errors, class_samples,
                    class_errors});
  result.clusters = std::move(stats.clusters);
  result.per_class = stats.per_class;
  result.chip_ser_percent = stats.chip_ser_percent;
  result.set_xsect_cm2 = stats.set_xsect_cm2;
  result.seu_xsect_cm2 = stats.seu_xsect_cm2;
  return result;
}

}  // namespace detail

CampaignResult run_campaign(const soc::SocModel& model,
                            const CampaignConfig& config,
                            const radiation::SoftErrorDatabase& db) {
  util::Timer sim_timer;
  detail::CampaignPrep prep =
      detail::prepare_campaign(model, config, db, /*for_execution=*/true);
  std::vector<std::size_t> owned(prep.plan.size());
  std::iota(owned.begin(), owned.end(), std::size_t{0});
  std::vector<InjectionRecord> records(prep.plan.size());
  detail::execute_injections(model, config, prep, owned, records);
  const double seconds = sim_timer.seconds();
  CampaignResult result = detail::finalize_campaign(
      model, config, db, std::move(prep), std::move(records));
  result.simulation_seconds = seconds;
  return result;
}

CampaignStats run_campaign(const soc::SocModel& model,
                           const CampaignConfig& config,
                           const radiation::SoftErrorDatabase& db,
                           RecordSink& sink) {
  util::Timer sim_timer;
  detail::CampaignPrep prep =
      detail::prepare_campaign(model, config, db, /*for_execution=*/true);
  std::vector<std::size_t> owned(prep.plan.size());
  std::iota(owned.begin(), owned.end(), std::size_t{0});
  std::vector<InjectionRecord> records(prep.plan.size());
  detail::execute_injections(model, config, prep, owned, records);
  const double seconds = sim_timer.seconds();

  ShardFileMeta meta;
  meta.seed = config.seed;
  meta.shard_index = 0;
  meta.shard_count = 1;
  meta.total_injections = prep.plan.size();
  meta.config_digest = campaign_config_digest(model, config);
  meta.num_records = prep.plan.size();
  sink.begin(meta);

  CampaignAggregator aggregator(model, config, db, prep);
  RecordBatch batch;
  for (std::size_t i = 0; i < records.size();) {
    const std::size_t n = std::min(ColumnarFileWriter::kDefaultChunkRows,
                                   records.size() - i);
    batch.clear();
    batch.reserve(n);
    for (std::size_t j = 0; j < n; ++j, ++i) batch.push_back(i, records[i]);
    aggregator.append(batch);
    sink.append(batch);
  }
  sink.flush();
  CampaignStats stats = aggregator.finalize();
  stats.simulation_seconds = seconds;
  return stats;
}

}  // namespace ssresf::fi
