#include "fi/campaign.h"

#include "netlist/stats.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/timer.h"

namespace ssresf::fi {

using netlist::CellId;
using netlist::CellKind;
using netlist::ModuleClass;
using radiation::FaultKind;

double chip_ser_percent(const std::vector<ClusterStats>& clusters) {
  double weighted = 0.0;
  double total_cells = 0.0;
  for (const ClusterStats& c : clusters) {
    weighted += static_cast<double>(c.num_cells) * c.ser_percent;
    total_cells += static_cast<double>(c.num_cells);
  }
  return total_cells > 0 ? weighted / total_cells : 0.0;
}

namespace {

/// Cross-section of one cell at the campaign LET; memory macros contribute
/// their whole array.
double cell_xsect(const netlist::Netlist& netlist,
                  const radiation::SoftErrorDatabase& db, CellId id,
                  double let) {
  const netlist::Cell& cell = netlist.cell(id);
  if (cell.kind == CellKind::kConst0 || cell.kind == CellKind::kConst1) {
    return 0.0;
  }
  if (cell.kind == CellKind::kMemory) {
    const auto& mi = netlist.memory(cell.memory_index);
    return db.mem_bit_xsect(mi.tech, let) *
           static_cast<double>(mi.total_bits());
  }
  return db.cell_xsect(cell.kind, let);
}

}  // namespace

CampaignResult run_campaign(const soc::SocModel& model,
                            const CampaignConfig& config,
                            const radiation::SoftErrorDatabase& db) {
  util::Rng rng(config.seed);
  util::Rng cluster_rng = rng.fork();
  util::Rng sample_rng = rng.fork();
  util::Rng inject_rng = rng.fork();

  CampaignResult result;
  result.clock_period_ps = soc::pick_clock_period(model.netlist);
  util::Timer sim_timer;

  // --- golden run -------------------------------------------------------------
  soc::SocRunner golden(model, config.engine, result.clock_period_ps);
  golden.reset();
  int run_cycles = config.run_cycles;
  if (run_cycles == 0) {
    golden.run_until_halt(config.max_cycles);
    if (!golden.halted()) {
      SSRESF_WARN << "golden run did not halt within " << config.max_cycles
                  << " cycles";
    }
    // Fixed total length for every faulty run (a fault may delay the halt).
    run_cycles = static_cast<int>(golden.testbench().cycles_run()) + 8;
  }
  soc::SocRunner golden_fixed(model, config.engine, result.clock_period_ps);
  golden_fixed.reset();
  golden_fixed.run(run_cycles);
  const sim::OutputTrace& golden_trace = golden_fixed.trace();
  result.golden_cycles = run_cycles;

  // --- clustering + sampling -----------------------------------------------------
  result.clustering =
      cluster::cluster_cells(model.netlist, config.clustering, cluster_rng);
  std::vector<double> strike_weights(model.netlist.num_cells(), 0.0);
  for (const CellId id : model.netlist.all_cells()) {
    strike_weights[id.index()] =
        cell_xsect(model.netlist, db, id, config.environment.let);
  }
  const auto samples =
      cluster::sample_clusters(model.netlist, result.clustering,
                               config.sampling, sample_rng, strike_weights);

  // --- injections ------------------------------------------------------------------
  const radiation::Injector injector(model.netlist);
  const std::uint64_t window_ps =
      static_cast<std::uint64_t>(run_cycles) * result.clock_period_ps;
  // Inject after reset has settled and early enough to observe propagation.
  const std::uint64_t t0 = 5 * result.clock_period_ps;
  const std::uint64_t t1 = window_ps * 3 / 4;

  std::vector<std::size_t> cluster_samples(result.clustering.clusters.size(), 0);
  std::vector<std::size_t> cluster_errors(result.clustering.clusters.size(), 0);

  // One engine, reset per injection; a fresh testbench owns each timeline.
  const auto engine = sim::make_engine(config.engine, model.netlist);
  sim::TestbenchConfig tb_config;
  tb_config.clk = model.clk;
  tb_config.rstn = model.rstn;
  tb_config.monitored = model.monitored;
  tb_config.clock_period_ps = result.clock_period_ps;
  for (const cluster::ClusterSample& cs : samples) {
    for (const CellId cell : cs.cells) {
      const radiation::FaultTarget target =
          injector.target_for_cell(cell, inject_rng);
      const radiation::FaultEvent event = injector.random_event(
          target, t0, t1, config.environment, inject_rng);

      engine->reset_state();
      sim::Testbench tb(*engine, tb_config);
      injector.schedule(tb, event);
      tb.reset();
      tb.run_cycles(run_cycles);

      InjectionRecord record;
      record.event = event;
      record.cluster = cs.cluster;
      record.module_class = model.netlist.cell_class(cell);
      const auto mismatch =
          sim::OutputTrace::first_mismatch(golden_trace, tb.trace());
      record.soft_error = mismatch.has_value();
      record.first_mismatch_cycle = mismatch.value_or(0);
      result.records.push_back(record);

      ++cluster_samples[static_cast<std::size_t>(cs.cluster)];
      if (record.soft_error) {
        ++cluster_errors[static_cast<std::size_t>(cs.cluster)];
      }
    }
  }
  result.simulation_seconds = sim_timer.seconds();

  // --- aggregation -------------------------------------------------------------------
  const double let = config.environment.let;
  const auto total = db.netlist_xsect(model.netlist, let);
  result.set_xsect_cm2 = total.set_cm2;
  result.seu_xsect_cm2 = total.seu_cm2;

  for (std::size_t k = 0; k < result.clustering.clusters.size(); ++k) {
    ClusterStats stats;
    stats.cluster = static_cast<int>(k);
    // Weighted count (memory macros expand to words): the CellN of Eq. 2.
    stats.num_cells =
        static_cast<std::size_t>(result.clustering.cluster_weight[k]);
    stats.samples = cluster_samples[k];
    stats.errors = cluster_errors[k];
    stats.propagation_ratio =
        stats.samples > 0
            ? static_cast<double>(stats.errors) / static_cast<double>(stats.samples)
            : 0.0;
    for (const CellId id : result.clustering.clusters[k]) {
      stats.xsect_cm2 += cell_xsect(model.netlist, db, id, let);
    }
    stats.ser_percent =
        stats.propagation_ratio *
        config.environment.upset_probability(stats.xsect_cm2, window_ps) * 100.0;
    result.clusters.push_back(stats);
  }
  result.chip_ser_percent = chip_ser_percent(result.clusters);

  // Per-module-class aggregation for Table I / Fig. 7.
  std::array<double, 5> class_xsect{};
  for (const CellId id : model.netlist.all_cells()) {
    class_xsect[static_cast<std::size_t>(model.netlist.cell_class(id))] +=
        cell_xsect(model.netlist, db, id, let);
  }
  for (const InjectionRecord& r : result.records) {
    auto& cls = result.per_class[static_cast<std::size_t>(r.module_class)];
    ++cls.samples;
    if (r.soft_error) ++cls.errors;
  }
  for (std::size_t c = 0; c < result.per_class.size(); ++c) {
    auto& cls = result.per_class[c];
    cls.xsect_cm2 = class_xsect[c];
    const double ratio =
        cls.samples > 0
            ? static_cast<double>(cls.errors) / static_cast<double>(cls.samples)
            : 0.0;
    cls.ser_percent =
        ratio *
        config.environment.upset_probability(cls.xsect_cm2, window_ps) * 100.0;
  }
  return result;
}

}  // namespace ssresf::fi
