#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fi/campaign_exec.h"
#include "util/bytes.h"

namespace ssresf::fi {

/// The shippable golden work of a campaign: everything prepare_campaign
/// derives by simulating the fault-free SoC. A coordinator computes it once
/// and ships it to every worker (socket transport) or writes it next to the
/// shard files (process transport), so workers skip both golden passes — the
/// halt-length run and the replay + snapshot pass — that PR 3 paid per
/// shard. Checkpoints travel as sim/state_codec RLE frames, so the bundle is
/// host-portable like the .ssfs shard files.
struct GoldenBundle {
  /// Resolved workload length: config.run_cycles when set, else the length
  /// the coordinator's golden run halted at (plus margin).
  int run_cycles = 0;
  sim::OutputTrace trace;  // golden samples of every cycle, reset included
  struct Rung {
    int cycle = 0;
    std::vector<std::uint8_t> state;  // sim::encode_state blob (RLE)
  };
  std::vector<Rung> rungs;  // the checkpoint ladder, ascending cycle order
};

/// Extracts the bundle from an execution-ready prep (each ladder rung is
/// encoded with the golden engine's codec).
[[nodiscard]] GoldenBundle extract_golden_bundle(
    const soc::SocModel& model, const CampaignConfig& config,
    const detail::CampaignPrep& prep);

void encode_golden_bundle(util::ByteWriter& out, const GoldenBundle& bundle);

/// Throws InvalidArgument on malformed input.
[[nodiscard]] GoldenBundle decode_golden_bundle(util::ByteReader& in);

/// prepare_campaign with the golden work installed from `bundle` instead of
/// simulated: plans with for_execution=false under the bundle's resolved run
/// length (so not even the halt-length golden run happens), then adopts the
/// shipped trace and decodes the ladder into restorable snapshots. The
/// returned prep is execution-ready and produces records byte-identical to a
/// locally prepared one. Throws InvalidArgument when the bundle contradicts
/// (model, config) — wrong run length, trace shape, or snapshot design size.
[[nodiscard]] detail::CampaignPrep prepare_campaign_with_bundle(
    const soc::SocModel& model, const CampaignConfig& config,
    const radiation::SoftErrorDatabase& database, const GoldenBundle& bundle);

/// Golden-bundle file ("SSGB" magic, version, campaign_config_digest,
/// bundle): the process-transport coordinator writes one into the shard
/// scratch dir and points workers at it. The digest binds the file to the
/// exact campaign, like the .ssfs header does.
void write_golden_bundle_file(const std::string& path,
                              const soc::SocModel& model,
                              const CampaignConfig& config,
                              const GoldenBundle& bundle);

/// Throws InvalidArgument on a malformed file or a digest mismatch.
[[nodiscard]] GoldenBundle read_golden_bundle_file(
    const std::string& path, const soc::SocModel& model,
    const CampaignConfig& config);

}  // namespace ssresf::fi
