#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "fi/campaign.h"

namespace ssresf::util {
class ByteWriter;
class ByteReader;
}  // namespace ssresf::util

namespace ssresf::fi {

struct GoldenBundle;
namespace detail {
struct CampaignPrep;
}  // namespace detail

/// Deterministic partition of a campaign into `count` self-contained shards,
/// keyed by global injection index: shard k owns every planned injection i
/// with i % count == k. Every shard recomputes the identical golden run,
/// clustering, and sampling plan from (model, config, database) — shards
/// exchange no state, so they can run in different processes or on different
/// hosts — and per-injection randomness is Rng::from_stream(seed, i), so the
/// merged records are byte-identical to the single-process run for any
/// shard count.
struct ShardSpec {
  int index = 0;  // 0-based shard id
  int count = 1;  // total shards

  [[nodiscard]] bool owns(std::uint64_t global_index) const {
    return count <= 1 ||
           global_index % static_cast<std::uint64_t>(count) ==
               static_cast<std::uint64_t>(index);
  }
};

/// One injection outcome tagged with its global plan index (its slot in the
/// merged record vector).
struct ShardRecord {
  std::uint64_t index = 0;
  InjectionRecord record;

  [[nodiscard]] bool operator==(const ShardRecord&) const = default;
};

/// Header of a shard file. The digest binds the file to the exact campaign
/// (model shape + record-affecting config fields), so a merge of mismatched
/// shard files fails loudly instead of producing a silently wrong result.
struct ShardFileMeta {
  std::uint64_t seed = 0;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  std::uint64_t total_injections = 0;  // plan size of the full campaign
  std::uint64_t config_digest = 0;
  std::uint64_t num_records = 0;
};

/// FNV-1a digest over the record-affecting parts of the campaign: engine
/// kind, seed, environment, clustering and sampling knobs, run length, and
/// the model's shape. Execution knobs (threads, checkpointing, early exit)
/// are excluded — they never change records.
[[nodiscard]] std::uint64_t campaign_config_digest(const soc::SocModel& model,
                                                   const CampaignConfig& config);

/// Outcome of one shard's run: its records plus the size of the full plan
/// (identical in every shard — it goes into the shard-file header so a merge
/// can verify coverage).
struct ShardRunResult {
  std::uint64_t total_injections = 0;
  std::vector<ShardRecord> records;  // ascending global-index order
};

/// Runs the injections owned by `spec` (golden run, clustering, and sampling
/// are recomputed identically in every shard). Honors config.threads within
/// this process. When `bundle` is non-null, the golden work (run length,
/// trace, checkpoint ladder) is installed from the shipped bundle instead of
/// re-simulated — see fi/golden_bundle.h — without changing a single record.
[[nodiscard]] ShardRunResult run_campaign_shard(
    const soc::SocModel& model, const CampaignConfig& config,
    const radiation::SoftErrorDatabase& database, ShardSpec spec,
    const GoldenBundle* bundle = nullptr);

/// Record-stream codec shared by the shard files and the socket transport's
/// record frames: ascending global indices delta/varint-coded, followed by
/// the record fields. `records` must be in ascending index order.
void encode_records(util::ByteWriter& out, std::span<const ShardRecord> records);

/// Decodes `count` records appended by encode_records. Throws
/// InvalidArgument on malformed or truncated input.
[[nodiscard]] std::vector<ShardRecord> decode_records(util::ByteReader& in,
                                                      std::uint64_t count);

/// Writes a shard file: "SSFS" magic, version, meta, then delta/varint-coded
/// records. `records` must be in ascending index order.
void write_shard_file(const std::string& path, const ShardFileMeta& meta,
                      std::span<const ShardRecord> records);

/// Streaming shard-file reader: the header is parsed eagerly, records decode
/// one at a time — a merge never materialises a whole shard in memory.
class ShardFileReader {
 public:
  explicit ShardFileReader(const std::string& path);

  [[nodiscard]] const ShardFileMeta& meta() const { return meta_; }

  /// Decodes the next record into `out`. Returns false after the last
  /// record. Throws InvalidArgument on a malformed or truncated file.
  bool next(ShardRecord& out);

 private:
  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint64_t read_varint();

  std::ifstream in_;
  std::string path_;
  ShardFileMeta meta_;
  std::uint64_t read_count_ = 0;
  std::uint64_t prev_index_ = 0;
};

/// Merges shard files into the campaign result, streaming records straight
/// from disk into their plan slots (never more than one in-flight record per
/// file beyond the result itself). Validates that every file matches this
/// campaign's digest and that the files cover every injection exactly once.
/// The result is byte-identical to run_campaign over the same
/// (model, config, database) — records, cluster stats, and SER alike.
[[nodiscard]] CampaignResult merge_shard_files(
    const soc::SocModel& model, const CampaignConfig& config,
    const radiation::SoftErrorDatabase& database,
    const std::vector<std::string>& paths);

/// merge_shard_files over an already-prepared campaign — a coordinator that
/// prepared once to extract the golden bundle reuses its prep here instead
/// of re-deriving the plan a second time.
[[nodiscard]] CampaignResult merge_shard_files(
    const soc::SocModel& model, const CampaignConfig& config,
    const radiation::SoftErrorDatabase& database, detail::CampaignPrep&& prep,
    const std::vector<std::string>& paths);

}  // namespace ssresf::fi
