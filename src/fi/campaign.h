#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "cluster/sampling.h"
#include "radiation/injector.h"
#include "radiation/soft_error_db.h"
#include "soc/run.h"

namespace ssresf::fi {

/// Configuration of a fault-injection campaign (Sec. III-D of the paper).
struct CampaignConfig {
  /// kEvent / kLevelized simulate one injection per run; kBitParallel packs
  /// up to 63 injections plus a golden slot into each 64-lane word batch
  /// (records stay byte-identical to kLevelized — same timing model).
  sim::EngineKind engine = sim::EngineKind::kEvent;
  radiation::Environment environment;      // flux + LET
  cluster::ClusteringConfig clustering;    // KN, LN
  cluster::SamplingConfig sampling{
      .fraction = 0.05,
      .min_per_cluster = 8,
      .max_per_cluster = 64,
      .weighting = cluster::SampleWeighting::kMixed};
  int run_cycles = 0;     // 0: golden run length = cycles-to-halt + margin
  int max_cycles = 4000;  // bound for the golden run
  std::uint64_t seed = 1;

  // --- execution model --------------------------------------------------------
  // Results are bit-identical across all combinations of these knobs: each
  // injection's randomness derives from (seed, global injection index), the
  // checkpoint replays the exact reset + warm-up prefix, and early exit only
  // truncates runs whose outcome is already decided.
  int threads = 1;             // campaign workers; <= 0 picks hardware threads
  /// Lane width of the packed engine's word batches: 64 (one machine word
  /// per plane) or 256 (four words, AVX2-accelerated where the CPU has it;
  /// one golden lane + up to 255 faulty runs per batch). Ignored by the
  /// scalar engines. Execution-only: records are byte-identical at every
  /// width, so it is excluded from campaign_config_digest like `threads`.
  int lanes = 64;
  bool use_checkpoint = true;  // restore golden checkpoints instead of re-running
  bool early_exit = true;      // stop diverged runs after a confirmation window
  int early_exit_confirm_cycles = 8;
  /// Stop a run once the faulty engine state is semantically identical to
  /// the golden checkpoint of the same cycle: from that point the two
  /// futures provably coincide, so healed SEUs and electrically masked SETs
  /// need not simulate to the end of the workload.
  bool masked_exit = true;
  /// Spacing of the golden checkpoint ladder: the golden replay snapshots the
  /// engine every this many cycles across the injection window, and each
  /// faulty run resumes from the last checkpoint before its strike time.
  /// 0 picks a stride automatically from the run length.
  int checkpoint_stride_cycles = 0;
  /// Execution-side progress hook: invoked after every completed injection
  /// with (done, total) over the subset this process executes. Like the
  /// other execution knobs it never affects records and is excluded from
  /// campaign_config_digest. May be called concurrently from campaign
  /// worker threads — the callee must be thread-safe.
  std::function<void(std::uint64_t done, std::uint64_t total)> progress;
};

/// One injection and its observed outcome.
struct InjectionRecord {
  radiation::FaultEvent event;
  int cluster = 0;
  netlist::ModuleClass module_class = netlist::ModuleClass::kOther;
  bool soft_error = false;
  std::size_t first_mismatch_cycle = 0;  // valid when soft_error

  [[nodiscard]] bool operator==(const InjectionRecord&) const = default;
};

/// Per-cluster soft-error statistics: the propagation ratio measured by
/// injection, the cluster's total cross-section, and the resulting SER.
struct ClusterStats {
  int cluster = 0;
  std::size_t num_cells = 0;
  std::size_t samples = 0;
  std::size_t errors = 0;
  double propagation_ratio = 0.0;  // errors / samples
  double xsect_cm2 = 0.0;          // sum of member cross-sections at the LET
  double ser_percent = 0.0;        // propagation * P(upset in window) * 100
};

/// Per-module-class aggregation (the Memory / Bus / CPU columns of Table I
/// and the groups of Fig. 7).
struct ClassStats {
  std::size_t samples = 0;
  std::size_t errors = 0;
  double xsect_cm2 = 0.0;
  double ser_percent = 0.0;
};

/// Log2-bucketed histogram of soft-error detection latency (cycles from
/// strike to first architectural mismatch). Bucket b counts records with
/// bit_width(first_mismatch_cycle) == b, saturating in the last bucket —
/// integer counters, so accumulation order never changes the result.
struct LatencyHistogram {
  static constexpr std::size_t kBuckets = 16;
  std::array<std::uint64_t, kBuckets> counts{};

  void add(std::uint64_t cycles) {
    std::size_t b = 0;
    while (cycles != 0 && b + 1 < kBuckets) {
      cycles >>= 1;
      ++b;
    }
    ++counts[b];
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t n = 0;
    for (std::uint64_t c : counts) n += c;
    return n;
  }
  [[nodiscard]] bool operator==(const LatencyHistogram&) const = default;
};

/// Campaign statistics without the record vector: everything CampaignResult
/// derives from its records, computed instead by streaming aggregation
/// (fi::CampaignAggregator) so peak memory is bounded by one record batch.
/// The double-precision fields are bit-identical to CampaignResult's — both
/// paths accumulate the same order-independent integer counters and reduce
/// them through the one shared stats kernel.
struct CampaignStats {
  std::vector<ClusterStats> clusters;
  std::array<ClassStats, netlist::kModuleClassCount> per_class{};
  std::array<LatencyHistogram, netlist::kModuleClassCount> latency{};
  double chip_ser_percent = 0.0;
  double set_xsect_cm2 = 0.0;
  double seu_xsect_cm2 = 0.0;
  int golden_cycles = 0;
  std::uint64_t clock_period_ps = 0;
  std::uint64_t num_records = 0;
  std::uint64_t num_soft_errors = 0;
  double simulation_seconds = 0.0;
};

struct CampaignResult {
  cluster::ClusteringResult clustering;
  std::vector<InjectionRecord> records;
  std::vector<ClusterStats> clusters;
  std::array<ClassStats, netlist::kModuleClassCount> per_class;  // indexed by ModuleClass
  double chip_ser_percent = 0.0;        // Eq. 2
  double set_xsect_cm2 = 0.0;           // Table I "SET Xsect"
  double seu_xsect_cm2 = 0.0;           // Table I "SEU Xsect"
  int golden_cycles = 0;
  std::uint64_t clock_period_ps = 0;
  double simulation_seconds = 0.0;      // wall-clock spent simulating
};

class RecordSink;

/// Runs the full flow: golden run, clustering, equal-proportion sampling,
/// one fault injection + re-simulation per sampled cell, golden-vs-faulty
/// trace comparison, and SER aggregation per Eq. 2.
[[nodiscard]] CampaignResult run_campaign(
    const soc::SocModel& model, const CampaignConfig& config,
    const radiation::SoftErrorDatabase& database);

/// Streaming variant: records flow into `sink` in ascending global-index
/// batches instead of being returned, and the statistics come from the
/// streaming aggregator — byte-identical to run_campaign's (see
/// fi/record_store.h for the sink API and the equivalence contract).
[[nodiscard]] CampaignStats run_campaign(
    const soc::SocModel& model, const CampaignConfig& config,
    const radiation::SoftErrorDatabase& database, RecordSink& sink);

/// Chip-level SER per Eq. 2: the cell-count-weighted mean of cluster SERs.
[[nodiscard]] double chip_ser_percent(const std::vector<ClusterStats>& clusters);

/// Writes per-injection records as the canonical CSV the CI equivalence
/// jobs byte-diff across every execution route (single-process, shards,
/// socket transport, scenario sessions). One format, one implementation.
void write_records_csv(const std::string& path,
                       const std::vector<InjectionRecord>& records);

}  // namespace ssresf::fi
