#pragma once

#include <array>

#include "cluster/sampling.h"
#include "radiation/injector.h"
#include "radiation/soft_error_db.h"
#include "soc/run.h"

namespace ssresf::fi {

/// Configuration of a fault-injection campaign (Sec. III-D of the paper).
struct CampaignConfig {
  sim::EngineKind engine = sim::EngineKind::kEvent;
  radiation::Environment environment;      // flux + LET
  cluster::ClusteringConfig clustering;    // KN, LN
  cluster::SamplingConfig sampling{
      .fraction = 0.05,
      .min_per_cluster = 8,
      .max_per_cluster = 64,
      .weighting = cluster::SampleWeighting::kMixed};
  int run_cycles = 0;     // 0: golden run length = cycles-to-halt + margin
  int max_cycles = 4000;  // bound for the golden run
  std::uint64_t seed = 1;
};

/// One injection and its observed outcome.
struct InjectionRecord {
  radiation::FaultEvent event;
  int cluster = 0;
  netlist::ModuleClass module_class = netlist::ModuleClass::kOther;
  bool soft_error = false;
  std::size_t first_mismatch_cycle = 0;  // valid when soft_error
};

/// Per-cluster soft-error statistics: the propagation ratio measured by
/// injection, the cluster's total cross-section, and the resulting SER.
struct ClusterStats {
  int cluster = 0;
  std::size_t num_cells = 0;
  std::size_t samples = 0;
  std::size_t errors = 0;
  double propagation_ratio = 0.0;  // errors / samples
  double xsect_cm2 = 0.0;          // sum of member cross-sections at the LET
  double ser_percent = 0.0;        // propagation * P(upset in window) * 100
};

/// Per-module-class aggregation (the Memory / Bus / CPU columns of Table I
/// and the groups of Fig. 7).
struct ClassStats {
  std::size_t samples = 0;
  std::size_t errors = 0;
  double xsect_cm2 = 0.0;
  double ser_percent = 0.0;
};

struct CampaignResult {
  cluster::ClusteringResult clustering;
  std::vector<InjectionRecord> records;
  std::vector<ClusterStats> clusters;
  std::array<ClassStats, 5> per_class;  // indexed by ModuleClass
  double chip_ser_percent = 0.0;        // Eq. 2
  double set_xsect_cm2 = 0.0;           // Table I "SET Xsect"
  double seu_xsect_cm2 = 0.0;           // Table I "SEU Xsect"
  int golden_cycles = 0;
  std::uint64_t clock_period_ps = 0;
  double simulation_seconds = 0.0;      // wall-clock spent simulating
};

/// Runs the full flow: golden run, clustering, equal-proportion sampling,
/// one fault injection + re-simulation per sampled cell, golden-vs-faulty
/// trace comparison, and SER aggregation per Eq. 2.
[[nodiscard]] CampaignResult run_campaign(
    const soc::SocModel& model, const CampaignConfig& config,
    const radiation::SoftErrorDatabase& database);

/// Chip-level SER per Eq. 2: the cell-count-weighted mean of cluster SERs.
[[nodiscard]] double chip_ser_percent(const std::vector<ClusterStats>& clusters);

}  // namespace ssresf::fi
