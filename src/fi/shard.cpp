#include "fi/shard.h"

#include <algorithm>
#include <bit>
#include <string_view>

#include "fi/campaign_exec.h"
#include "fi/golden_bundle.h"
#include "fi/record_store.h"
#include "util/atomic_file.h"
#include "util/bytes.h"
#include "util/error.h"
#include "util/timer.h"

namespace ssresf::fi {

namespace {

constexpr char kMagic[4] = {'S', 'S', 'F', 'S'};
constexpr std::uint8_t kVersion = 1;

/// Streaming field helpers over the shared util::Fnv1a hasher.
struct Digest {
  util::Fnv1a fnv;

  void byte(std::uint8_t b) { fnv.byte(b); }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u64(s.size());
    for (const char c : s) byte(static_cast<std::uint8_t>(c));
  }
};

}  // namespace

void encode_records(util::ByteWriter& out,
                    std::span<const ShardRecord> records) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ShardRecord& r = records[i];
    if (i > 0 && r.index <= prev) {
      throw InvalidArgument(
          "encode_records: records must be in ascending index order");
    }
    out.varint(i == 0 ? r.index : r.index - prev - 1);
    const radiation::FaultEvent& e = r.record.event;
    out.u8(static_cast<std::uint8_t>(e.target.kind));
    out.varint(e.target.cell.index());
    out.varint(e.target.word);
    out.varint(e.target.bit);
    out.varint(e.time_ps);
    out.varint(e.set_width_ps);
    out.varint(static_cast<std::uint64_t>(r.record.cluster));
    out.u8(static_cast<std::uint8_t>(r.record.module_class));
    out.u8(r.record.soft_error ? 1 : 0);
    out.varint(r.record.first_mismatch_cycle);
    prev = r.index;
  }
}

std::vector<ShardRecord> decode_records(util::ByteReader& in,
                                        std::uint64_t count) {
  // An encoded record is at least 11 bytes, so a count the stream cannot
  // possibly hold is rejected before the reserve — a corrupt (or hostile)
  // count must never drive a multi-GiB allocation.
  if (count > in.remaining() / 11) {
    throw InvalidArgument("record stream: truncated input");
  }
  std::vector<ShardRecord> records;
  records.reserve(static_cast<std::size_t>(count));
  std::uint64_t prev = 0;
  try {
    for (std::uint64_t i = 0; i < count; ++i) {
      ShardRecord r;
      const std::uint64_t delta = in.varint();
      r.index = i == 0 ? delta : prev + delta + 1;
      const std::uint8_t kind = in.u8();
      if (kind > static_cast<std::uint8_t>(radiation::FaultKind::kMemBit)) {
        throw InvalidArgument("record stream: bad fault kind");
      }
      radiation::FaultEvent& e = r.record.event;
      e.target.kind = static_cast<radiation::FaultKind>(kind);
      e.target.cell = netlist::CellId{static_cast<std::uint32_t>(in.varint())};
      e.target.word = static_cast<std::uint32_t>(in.varint());
      e.target.bit = static_cast<std::uint32_t>(in.varint());
      e.time_ps = in.varint();
      e.set_width_ps = static_cast<std::uint32_t>(in.varint());
      r.record.cluster = static_cast<int>(in.varint());
      const std::uint8_t module_class = in.u8();
      if (module_class >= 5) {
        throw InvalidArgument("record stream: bad module class");
      }
      r.record.module_class = static_cast<netlist::ModuleClass>(module_class);
      r.record.soft_error = in.u8() != 0;
      r.record.first_mismatch_cycle = static_cast<std::size_t>(in.varint());
      prev = r.index;
      records.push_back(r);
    }
  } catch (const InvalidArgument&) {
    throw;
  } catch (const Error& e) {
    throw InvalidArgument(std::string("record stream: ") + e.what());
  }
  return records;
}

std::uint64_t campaign_config_digest(const soc::SocModel& model,
                                     const CampaignConfig& config) {
  Digest d;
  d.byte(static_cast<std::uint8_t>(config.engine));
  d.u64(config.seed);
  d.f64(config.environment.flux);
  d.f64(config.environment.let);
  d.u64(static_cast<std::uint64_t>(config.clustering.num_clusters));
  d.u64(static_cast<std::uint64_t>(config.clustering.layer_depth));
  d.u64(static_cast<std::uint64_t>(config.clustering.max_iterations));
  d.byte(config.clustering.expand_memory_weight ? 1 : 0);
  d.f64(config.sampling.fraction);
  d.u64(static_cast<std::uint64_t>(config.sampling.min_per_cluster));
  d.u64(static_cast<std::uint64_t>(config.sampling.max_per_cluster));
  d.byte(static_cast<std::uint8_t>(config.sampling.weighting));
  d.u64(static_cast<std::uint64_t>(config.sampling.memory_macro_draws));
  d.u64(static_cast<std::uint64_t>(config.run_cycles));
  d.u64(static_cast<std::uint64_t>(config.max_cycles));
  d.str(model.config.name);
  d.u64(model.netlist.num_cells());
  d.u64(model.netlist.num_nets());
  // Memory shapes and initial contents: the instruction memories carry the
  // program, so two SoCs that differ only in workload digest differently.
  d.u64(model.netlist.num_memories());
  for (std::size_t m = 0; m < model.netlist.num_memories(); ++m) {
    const netlist::MemoryInfo& mi =
        model.netlist.memory(static_cast<std::int32_t>(m));
    d.u64(mi.words);
    d.byte(mi.width);
    d.u64(mi.init.size());
    for (const std::uint64_t word : mi.init) d.u64(word);
  }
  return d.fnv.h;
}

ShardRunResult run_campaign_shard(const soc::SocModel& model,
                                  const CampaignConfig& config,
                                  const radiation::SoftErrorDatabase& db,
                                  ShardSpec spec, const GoldenBundle* bundle) {
  if (spec.count < 1 || spec.index < 0 || spec.index >= spec.count) {
    throw InvalidArgument("run_campaign_shard: shard " +
                          std::to_string(spec.index) + "/" +
                          std::to_string(spec.count) + " is out of range");
  }
  detail::CampaignPrep prep =
      bundle != nullptr
          ? prepare_campaign_with_bundle(model, config, db, *bundle)
          : detail::prepare_campaign(model, config, db, /*for_execution=*/true);
  std::vector<std::size_t> owned;
  owned.reserve(prep.plan.size() / static_cast<std::size_t>(spec.count) + 1);
  for (std::size_t i = static_cast<std::size_t>(spec.index);
       i < prep.plan.size(); i += static_cast<std::size_t>(spec.count)) {
    owned.push_back(i);
  }
  std::vector<InjectionRecord> records(prep.plan.size());
  detail::execute_injections(model, config, prep, owned, records);

  ShardRunResult out;
  out.total_injections = prep.plan.size();
  out.records.reserve(owned.size());
  for (const std::size_t i : owned) out.records.push_back({i, records[i]});
  return out;
}

std::uint64_t run_campaign_shard(const soc::SocModel& model,
                                 const CampaignConfig& config,
                                 const radiation::SoftErrorDatabase& db,
                                 ShardSpec spec, RecordSink& sink,
                                 const GoldenBundle* bundle) {
  if (spec.count < 1 || spec.index < 0 || spec.index >= spec.count) {
    throw InvalidArgument("run_campaign_shard: shard " +
                          std::to_string(spec.index) + "/" +
                          std::to_string(spec.count) + " is out of range");
  }
  detail::CampaignPrep prep =
      bundle != nullptr
          ? prepare_campaign_with_bundle(model, config, db, *bundle)
          : detail::prepare_campaign(model, config, db, /*for_execution=*/true);
  std::vector<std::size_t> owned;
  owned.reserve(prep.plan.size() / static_cast<std::size_t>(spec.count) + 1);
  for (std::size_t i = static_cast<std::size_t>(spec.index);
       i < prep.plan.size(); i += static_cast<std::size_t>(spec.count)) {
    owned.push_back(i);
  }
  std::vector<InjectionRecord> records(prep.plan.size());
  detail::execute_injections(model, config, prep, owned, records);

  ShardFileMeta meta;
  meta.seed = config.seed;
  meta.shard_index = static_cast<std::uint32_t>(spec.index);
  meta.shard_count = static_cast<std::uint32_t>(spec.count);
  meta.total_injections = prep.plan.size();
  meta.config_digest = campaign_config_digest(model, config);
  meta.num_records = owned.size();
  sink.begin(meta);

  RecordBatch batch;
  for (std::size_t pos = 0; pos < owned.size();) {
    const std::size_t n =
        std::min(VectorSource::kDefaultBatchRows, owned.size() - pos);
    batch.clear();
    batch.reserve(n);
    for (std::size_t j = 0; j < n; ++j, ++pos) {
      batch.push_back(owned[pos], records[owned[pos]]);
    }
    sink.append(batch);
  }
  sink.flush();
  return prep.plan.size();
}

void write_shard_file(const std::string& path, const ShardFileMeta& meta,
                      std::span<const ShardRecord> records) {
  if (meta.num_records != records.size()) {
    throw InvalidArgument("write_shard_file: num_records does not match");
  }
  util::ByteWriter out;
  out.bytes(kMagic, sizeof(kMagic));
  out.u8(kVersion);
  out.varint(meta.seed);
  out.varint(meta.shard_index);
  out.varint(meta.shard_count);
  out.varint(meta.total_injections);
  out.fixed64(meta.config_digest);
  out.varint(meta.num_records);
  encode_records(out, records);

  // Crash-safe: a worker killed mid-write must never leave a torn .ssfs
  // where the merge step expects a complete shard.
  util::atomic_write_file(path, out.data());
}

ShardFileReader::ShardFileReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) throw Error("shard file: cannot open '" + path + "'");
  char magic[4];
  in_.read(magic, sizeof(magic));
  if (!in_ || std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    throw InvalidArgument("shard file '" + path + "': bad magic");
  }
  const std::uint8_t version = read_u8();
  if (version != kVersion) {
    throw InvalidArgument("shard file '" + path + "': unsupported version " +
                          std::to_string(version));
  }
  meta_.seed = read_varint();
  meta_.shard_index = static_cast<std::uint32_t>(read_varint());
  meta_.shard_count = static_cast<std::uint32_t>(read_varint());
  meta_.total_injections = read_varint();
  std::uint8_t digest[8];
  in_.read(reinterpret_cast<char*>(digest), sizeof(digest));
  if (!in_) throw InvalidArgument("shard file '" + path + "': truncated header");
  meta_.config_digest = 0;
  for (int i = 0; i < 8; ++i) {
    meta_.config_digest |= static_cast<std::uint64_t>(digest[i]) << (8 * i);
  }
  meta_.num_records = read_varint();
}

std::uint8_t ShardFileReader::read_u8() {
  const int c = in_.get();
  if (c == std::char_traits<char>::eof()) {
    throw InvalidArgument("shard file '" + path_ + "': truncated");
  }
  return static_cast<std::uint8_t>(c);
}

std::uint64_t ShardFileReader::read_varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t b = read_u8();
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
  }
  throw InvalidArgument("shard file '" + path_ + "': varint overflow");
}

bool ShardFileReader::next(ShardRecord& out) {
  if (read_count_ >= meta_.num_records) return false;
  const std::uint64_t delta = read_varint();
  out.index = read_count_ == 0 ? delta : prev_index_ + delta + 1;
  const std::uint8_t kind = read_u8();
  if (kind > static_cast<std::uint8_t>(radiation::FaultKind::kMemBit)) {
    throw InvalidArgument("shard file '" + path_ + "': bad fault kind");
  }
  radiation::FaultEvent& e = out.record.event;
  e.target.kind = static_cast<radiation::FaultKind>(kind);
  e.target.cell = netlist::CellId{static_cast<std::uint32_t>(read_varint())};
  e.target.word = static_cast<std::uint32_t>(read_varint());
  e.target.bit = static_cast<std::uint32_t>(read_varint());
  e.time_ps = read_varint();
  e.set_width_ps = static_cast<std::uint32_t>(read_varint());
  out.record.cluster = static_cast<int>(read_varint());
  const std::uint8_t module_class = read_u8();
  if (module_class >= 5) {
    throw InvalidArgument("shard file '" + path_ + "': bad module class");
  }
  out.record.module_class = static_cast<netlist::ModuleClass>(module_class);
  out.record.soft_error = read_u8() != 0;
  out.record.first_mismatch_cycle = static_cast<std::size_t>(read_varint());
  prev_index_ = out.index;
  ++read_count_;
  return true;
}

CampaignResult merge_shard_files(const soc::SocModel& model,
                                 const CampaignConfig& config,
                                 const radiation::SoftErrorDatabase& db,
                                 const std::vector<std::string>& paths) {
  // The merge coordinator re-derives the plan (golden run, clustering,
  // sampling) but never simulates an injection, so it skips the golden
  // replay + checkpoint ladder and holds exactly one record vector — the
  // result's — while the shard files stream through.
  return merge_shard_files(
      model, config, db,
      detail::prepare_campaign(model, config, db, /*for_execution=*/false),
      paths);
}

CampaignResult merge_shard_files(const soc::SocModel& model,
                                 const CampaignConfig& config,
                                 const radiation::SoftErrorDatabase& db,
                                 detail::CampaignPrep&& prep,
                                 const std::vector<std::string>& paths) {
  // Thin collecting wrapper over the streaming merge core: the K-way merge
  // in fi/record_store.cpp does every validation (digest, plan cross-check,
  // duplicates, coverage) and streams records in ascending order into the
  // plan-sized vector, which then finalizes exactly as before.
  util::Timer timer;
  VectorSink sink(prep.plan.size());
  detail::stream_merged_records(model, config, prep, paths, sink);
  CampaignResult result = detail::finalize_campaign(model, config, db,
                                                    std::move(prep),
                                                    sink.take_records());
  result.simulation_seconds = timer.seconds();
  return result;
}

}  // namespace ssresf::fi
