#include "fi/golden_bundle.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "fi/campaign.h"
#include "fi/shard.h"
#include "sim/state_codec.h"
#include "util/atomic_file.h"
#include "util/error.h"

namespace ssresf::fi {

namespace {

constexpr char kBundleMagic[4] = {'S', 'S', 'G', 'B'};
constexpr std::uint8_t kBundleVersion = 1;

[[nodiscard]] std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void encode_trace(util::ByteWriter& out, const sim::OutputTrace& trace) {
  out.varint(trace.nets().size());
  for (const netlist::NetId net : trace.nets()) out.varint(net.index());
  out.varint(trace.num_cycles());
  for (std::size_t c = 0; c < trace.num_cycles(); ++c) {
    for (const netlist::Logic v : trace.cycle(c)) {
      out.u8(static_cast<std::uint8_t>(v));
    }
  }
}

sim::OutputTrace decode_trace(util::ByteReader& in) {
  const std::size_t num_nets = in.element_count(1);
  std::vector<netlist::NetId> nets;
  nets.reserve(num_nets);
  for (std::size_t n = 0; n < num_nets; ++n) {
    nets.push_back(netlist::NetId{static_cast<std::uint32_t>(in.varint())});
  }
  sim::OutputTrace trace(std::move(nets));
  // max(1) keeps the bound meaningful for a degenerate zero-net trace: the
  // cycle count can never exceed the bytes actually present.
  const std::uint64_t cycles = in.varint();
  if (cycles > in.remaining() / std::max<std::size_t>(num_nets, 1)) {
    throw InvalidArgument("golden bundle: truncated trace");
  }
  std::vector<netlist::Logic> row(num_nets);
  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (std::size_t j = 0; j < num_nets; ++j) {
      const std::uint8_t v = in.u8();
      if (v > static_cast<std::uint8_t>(netlist::Logic::Z)) {
        throw InvalidArgument("golden bundle: bad logic value in trace");
      }
      row[j] = static_cast<netlist::Logic>(v);
    }
    trace.append_cycle(row);
  }
  return trace;
}

}  // namespace

GoldenBundle extract_golden_bundle(const soc::SocModel& model,
                                   const CampaignConfig& config,
                                   const detail::CampaignPrep& prep) {
  GoldenBundle bundle;
  bundle.run_cycles = prep.run_cycles;
  bundle.trace = prep.golden_trace;
  const auto engine =
      sim::make_engine(detail::golden_engine_kind(config), model.netlist);
  bundle.rungs.reserve(prep.ladder.size());
  for (const detail::CampaignPrep::Rung& rung : prep.ladder) {
    bundle.rungs.push_back(
        {rung.cycle,
         sim::encode_state(*engine, *rung.state, sim::StateCodec::kRle)});
  }
  return bundle;
}

void encode_golden_bundle(util::ByteWriter& out, const GoldenBundle& bundle) {
  out.varint(static_cast<std::uint64_t>(bundle.run_cycles));
  encode_trace(out, bundle.trace);
  out.varint(bundle.rungs.size());
  for (const GoldenBundle::Rung& rung : bundle.rungs) {
    out.varint(static_cast<std::uint64_t>(rung.cycle));
    out.byte_vec(rung.state);
  }
}

GoldenBundle decode_golden_bundle(util::ByteReader& in) {
  try {
    GoldenBundle bundle;
    bundle.run_cycles = static_cast<int>(in.varint());
    bundle.trace = decode_trace(in);
    const std::size_t num_rungs = in.element_count(1);
    bundle.rungs.reserve(num_rungs);
    int prev_cycle = -1;
    for (std::size_t r = 0; r < num_rungs; ++r) {
      GoldenBundle::Rung rung;
      rung.cycle = static_cast<int>(in.varint());
      if (rung.cycle <= prev_cycle) {
        throw InvalidArgument("golden bundle: rung cycles not ascending");
      }
      prev_cycle = rung.cycle;
      rung.state = in.byte_vec<std::uint8_t>();
      bundle.rungs.push_back(std::move(rung));
    }
    return bundle;
  } catch (const InvalidArgument&) {
    throw;
  } catch (const Error& e) {
    throw InvalidArgument(std::string("golden bundle: ") + e.what());
  }
}

detail::CampaignPrep prepare_campaign_with_bundle(
    const soc::SocModel& model, const CampaignConfig& config,
    const radiation::SoftErrorDatabase& database, const GoldenBundle& bundle) {
  if (bundle.run_cycles <= 0) {
    throw InvalidArgument("golden bundle: non-positive run length");
  }
  if (config.run_cycles != 0 && config.run_cycles != bundle.run_cycles) {
    throw InvalidArgument(
        "golden bundle: run length " + std::to_string(bundle.run_cycles) +
        " contradicts config.run_cycles " + std::to_string(config.run_cycles));
  }
  // Pinning the resolved run length makes the planning pass simulation-free:
  // the plan (clustering, sampling, strike window) is a pure function of
  // (model, config, run_cycles), so the worker derives the exact plan the
  // coordinator did without ever running the golden workload.
  CampaignConfig pinned = config;
  pinned.run_cycles = bundle.run_cycles;
  detail::CampaignPrep prep =
      detail::prepare_campaign(model, pinned, database, /*for_execution=*/false);

  if (bundle.trace.nets() != prep.tb_config.monitored) {
    throw InvalidArgument(
        "golden bundle: trace monitors different nets than this model");
  }
  if (bundle.trace.num_cycles() != static_cast<std::size_t>(prep.total_cycles)) {
    throw InvalidArgument("golden bundle: trace covers " +
                          std::to_string(bundle.trace.num_cycles()) +
                          " cycles, campaign runs " +
                          std::to_string(prep.total_cycles));
  }
  prep.golden_trace = bundle.trace;

  const auto engine =
      sim::make_engine(detail::golden_engine_kind(config), model.netlist);
  prep.ladder.reserve(bundle.rungs.size());
  for (const GoldenBundle::Rung& rung : bundle.rungs) {
    if (rung.cycle < 0 || rung.cycle >= prep.total_cycles) {
      throw InvalidArgument("golden bundle: rung cycle " +
                            std::to_string(rung.cycle) + " out of range");
    }
    prep.ladder.push_back({rung.cycle, sim::decode_state(*engine, rung.state)});
  }
  return prep;
}

void write_golden_bundle_file(const std::string& path,
                              const soc::SocModel& model,
                              const CampaignConfig& config,
                              const GoldenBundle& bundle) {
  util::ByteWriter out;
  out.bytes(kBundleMagic, sizeof(kBundleMagic));
  out.u8(kBundleVersion);
  out.fixed64(campaign_config_digest(model, config));
  encode_golden_bundle(out, bundle);

  // Crash-safe: the .ssgb is shared across worker launches — a torn one
  // would fail every worker, an old-but-complete one is still valid.
  util::atomic_write_file(path, out.data());
}

GoldenBundle read_golden_bundle_file(const std::string& path,
                                     const soc::SocModel& model,
                                     const CampaignConfig& config) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw Error("golden bundle: cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  util::ByteReader in(bytes);
  char magic[4];
  if (in.remaining() < sizeof(magic) + 1 + 8) {
    throw InvalidArgument("golden bundle '" + path + "': truncated header (" +
                          std::to_string(bytes.size()) + " bytes, need " +
                          std::to_string(sizeof(magic) + 1 + 8) + ")");
  }
  in.bytes(magic, sizeof(magic));
  if (std::string_view(magic, 4) != std::string_view(kBundleMagic, 4)) {
    throw InvalidArgument("golden bundle '" + path + "': bad magic");
  }
  const std::uint8_t version = in.u8();
  if (version != kBundleVersion) {
    throw InvalidArgument("golden bundle '" + path + "': unsupported version " +
                          std::to_string(version));
  }
  const std::uint64_t digest = in.fixed64();
  const std::uint64_t expected = campaign_config_digest(model, config);
  if (digest != expected) {
    throw InvalidArgument("golden bundle '" + path +
                          "': campaign configuration digest mismatch (file " +
                          hex64(digest) + ", expected " + hex64(expected) +
                          " — different model, seed, or config)");
  }
  try {
    return decode_golden_bundle(in);
  } catch (const Error& e) {
    // Rethrow with the byte offset of the failure — "corrupt at offset N of
    // M" narrows a flipped bit or torn write to the spot, which matters when
    // the bundle crossed a network or a crashed coordinator.
    throw InvalidArgument(
        std::string(e.what()) + " (in '" + path + "' at byte offset " +
        std::to_string(bytes.size() - in.remaining()) + " of " +
        std::to_string(bytes.size()) + ")");
  }
}

}  // namespace ssresf::fi
