#include "net/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <optional>

#include "fi/campaign_exec.h"
#include "fi/golden_bundle.h"
#include "fi/record_store.h"
#include "fi/shard.h"
#include "net/auth.h"
#include "net/journal.h"
#include "util/error.h"
#include "util/timer.h"

namespace ssresf::net {

namespace {

using Clock = std::chrono::steady_clock;

enum class ConnState { kAwaitHello, kAwaitAuth, kAwaitReady, kIdle, kWorking };

struct Conn {
  util::Socket socket;
  ConnState state = ConnState::kAwaitHello;
  WorkMsg chunk;  // valid when state == kWorking
  Clock::time_point deadline;
  int id = 0;                  // stable id for log lines
  std::uint64_t pid = 0;       // worker-reported, logs only
  std::uint64_t worker_id = 0; // worker-reported stable identity
  std::uint64_t nonce = 0;     // our challenge, awaiting the kAuth proof
  std::uint64_t last_records_digest = 0;  // fnv of the last accepted batch
  std::uint16_t peer_port = 0;  // worker's election listener (0 = none)
  std::string peer_host;        // worker-advertised host ("" = use the socket's)
  /// Journal entries this worker's replica holds; kept equal to the mirror
  /// size by the tail sync at kReady and the per-append broadcast.
  std::uint64_t replica_entries = 0;
};

/// Graceful sender-side close: consume inbound bytes until the peer reads
/// our half-close FIN plus final frames and closes (or the deadline passes).
/// The caller must shutdown_write() first. Closing a socket with unread
/// inbound data (a worker's in-flight records) makes the kernel send RST,
/// which destroys frames the peer has buffered but not yet read — the
/// kReconnect redirect or final kShutdown would silently vanish.
void drain_to_eof(util::Socket& socket, Clock::time_point deadline) {
  std::uint8_t sink[4096];
  try {
    while (Clock::now() < deadline) {
      if (!socket.wait_readable(100)) continue;
      if (socket.recv_some(sink, sizeof(sink)) == 0) break;
    }
  } catch (const Error&) {
    // The peer reset first; nothing left to preserve.
  }
}

}  // namespace

Coordinator::Coordinator(const CampaignSpec& spec,
                         const radiation::SoftErrorDatabase& database,
                         CoordinatorOptions options)
    : spec_(spec),
      db_(database),
      options_(std::move(options)),
      model_(build_model(spec)),
      listener_(options_.port, options_.loopback_only),
      monitor_(options_.health) {
  if (options_.worker_timeout_seconds <= 0.0) {
    throw InvalidArgument("coordinator: worker timeout must be positive, got " +
                          std::to_string(options_.worker_timeout_seconds));
  }
  if (options_.frame_deadline_seconds <= 0.0) {
    throw InvalidArgument("coordinator: frame deadline must be positive, got " +
                          std::to_string(options_.frame_deadline_seconds));
  }
  if (options_.handoff_after_frames > 0 && options_.journal_path.empty()) {
    throw InvalidArgument(
        "coordinator: a handoff without a journal would strand the "
        "campaign's progress — set journal_path");
  }
}

fi::CampaignResult Coordinator::run() {
  fi::CampaignResult result;
  (void)run_impl(nullptr, &result);
  return result;
}

fi::CampaignStats Coordinator::run(fi::RecordSink& sink) {
  return run_impl(&sink, nullptr);
}

fi::CampaignStats Coordinator::run_impl(fi::RecordSink* user_sink,
                                        fi::CampaignResult* vector_out) {
  const fi::CampaignConfig& config = spec_.config;
  const auto log = [&](const char* fmt, auto... args) {
    if (options_.verbose) {
      std::fprintf(stderr, "coordinator: ");
      std::fprintf(stderr, fmt, args...);
      std::fputc('\n', stderr);
    }
  };

  util::Timer timer;
  // One golden pass for the whole fleet: the prep's trace and ladder are
  // encoded once and the identical campaign frame is replayed to every
  // worker that ever connects.
  fi::detail::CampaignPrep prep =
      fi::detail::prepare_campaign(model_, config, db_, /*for_execution=*/true);
  const std::uint64_t plan_size = prep.plan.size();
  const std::uint64_t digest = fi::campaign_config_digest(model_, config);

  CampaignMsg campaign;
  campaign.spec = spec_;
  campaign.config_digest = digest;
  campaign.total_injections = plan_size;
  {
    util::ByteWriter bundle_bytes;
    fi::encode_golden_bundle(bundle_bytes,
                             fi::extract_golden_bundle(model_, config, prep));
    campaign.bundle = bundle_bytes.take();
  }
  log("serving %llu injections on port %u (golden bundle %zu bytes)",
      static_cast<unsigned long long>(plan_size),
      static_cast<unsigned>(listener_.port()), campaign.bundle.size());

  // The streaming record flow: instead of a plan-sized record vector, the
  // coordinator keeps a seen bit plus an 8-byte record digest per injection
  // (for the cross-worker determinism check) and hands accepted batches
  // straight to the sinks — the caller's RecordSink plus the streaming
  // aggregator that computes the final statistics. The legacy run() wraps
  // this with a VectorSink.
  std::optional<fi::VectorSink> collect;
  if (vector_out != nullptr) collect.emplace(plan_size);
  std::vector<fi::RecordSink*> outs;
  if (user_sink != nullptr) outs.push_back(user_sink);
  if (collect) outs.push_back(&*collect);
  fi::TeeSink tee(std::move(outs));
  {
    fi::ShardFileMeta stream_meta;
    stream_meta.seed = config.seed;
    stream_meta.shard_index = 0;
    stream_meta.shard_count = 1;
    stream_meta.total_injections = plan_size;
    stream_meta.config_digest = digest;
    stream_meta.num_records = plan_size;
    tee.begin(stream_meta);
  }
  fi::CampaignAggregator aggregator(model_, config, db_, prep);

  std::vector<std::uint8_t> seen(plan_size, 0);
  std::vector<std::uint64_t> record_digests(plan_size, 0);
  std::uint64_t filled = 0;

  // Digest of one record's canonical encoding (index included): the stand-in
  // for the old stored-record equality in the duplicate-determinism check.
  // An FNV collision could mask a violation, but at 2^-64 per duplicate that
  // is far below any hardware-error floor — and the check is a tripwire for
  // bugs, not a correctness dependency of the merge itself.
  const auto record_digest = [](const fi::ShardRecord& r) {
    util::ByteWriter w;
    fi::encode_records(w, std::span<const fi::ShardRecord>(&r, 1));
    return fnv1a(w.data());
  };

  fi::RecordBatch accepted;
  const auto fill_records = [&](const RecordsMsg& msg) {
    accepted.clear();
    for (const fi::ShardRecord& r : msg.records) {
      if (r.index < msg.start || r.index >= msg.start + msg.count) {
        throw InvalidArgument("record index outside its chunk");
      }
      const fi::detail::PlannedInjection& planned =
          prep.plan[static_cast<std::size_t>(r.index)];
      if (r.record.cluster != planned.cluster ||
          r.record.module_class != model_.netlist.cell_class(planned.cell)) {
        throw InvalidArgument("record contradicts the campaign plan");
      }
      const auto i = static_cast<std::size_t>(r.index);
      if (seen[i] != 0) {
        // Duplicates can only be re-runs of a reassigned chunk; determinism
        // says they must agree. A conflict means a worker (or this process)
        // simulated wrongly — never paper over that.
        if (record_digests[i] != record_digest(r)) {
          throw InternalError(
              "duplicate record for injection " + std::to_string(r.index) +
              " differs between workers — determinism violation");
        }
        continue;
      }
      seen[i] = 1;
      record_digests[i] = record_digest(r);
      accepted.push_back(r);
      ++filled;
    }
    // One append per accepted frame, in arrival order: record frames are
    // ascending within a chunk, so the batch honors the sink contract.
    if (!accepted.empty()) {
      aggregator.append(accepted);
      tee.append(accepted);
    }
  };

  // Dispatch journal: replay what a previous incarnation already collected,
  // then append every batch we accept ourselves. Everything replayed goes
  // through the same plan cross-checks as live traffic — a corrupt or
  // foreign journal fails here, not in the merged result.
  //
  // `mirror` shadows the on-disk journal entry-for-entry as raw frame bytes:
  // it is what the kJournalSync replication streams to the fleet, so every
  // worker's replica is byte-identical to a prefix of this journal. Replayed
  // entries are re-encoded through the same codec, which reproduces the
  // exact on-disk bytes.
  std::optional<JournalWriter> journal;
  std::vector<std::vector<std::uint8_t>> mirror;
  if (!options_.journal_path.empty()) {
    if (std::filesystem::exists(options_.journal_path)) {
      const JournalContents contents =
          read_journal(options_.journal_path, digest, /*strict=*/false);
      if (contents.total_injections != plan_size) {
        throw InvalidArgument(
            "journal '" + options_.journal_path + "': records " +
            std::to_string(contents.total_injections) +
            " total injections, campaign plans " + std::to_string(plan_size));
      }
      for (const JournalEntry& entry : contents.entries) {
        RecordsMsg msg;
        msg.start = entry.start;
        msg.count = entry.records.size();
        msg.records = entry.records;
        fill_records(msg);
        mirror.push_back(encode_journal_entry(entry.start, entry.records));
      }
      journal.emplace(
          JournalWriter::resume(options_.journal_path, contents));
      log("resumed journal '%s': %llu of %llu injections already done",
          options_.journal_path.c_str(),
          static_cast<unsigned long long>(filled),
          static_cast<unsigned long long>(plan_size));
    } else {
      journal.emplace(options_.journal_path, digest, plan_size);
    }
  }
  // Fresh identity per incarnation: entry order can differ between
  // incarnations (reassignment reorders batches), so a replica mirrored from
  // a previous coordinator is NOT a prefix of this journal — workers see a
  // new id and re-sync from entry zero.
  campaign.journal_id = journal ? fresh_nonce() : 0;
  const std::vector<std::uint8_t> campaign_payload = encode_payload(campaign);

  // The work queue: contiguous chunks over the UNFILLED indices only
  // (everything on a fresh start), reassigned-first at the front.
  const std::uint64_t chunk_size =
      options_.chunk_injections > 0
          ? options_.chunk_injections
          : std::max<std::uint64_t>(1, plan_size / 64);
  std::deque<WorkMsg> queue;
  const auto queue_run = [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t start = begin; start < end; start += chunk_size) {
      queue.push_back({start, std::min(chunk_size, end - start)});
    }
  };
  {
    std::uint64_t run_start = 0;
    bool in_run = false;
    for (std::uint64_t i = 0; i < plan_size; ++i) {
      if (seen[i] == 0) {
        if (!in_run) {
          run_start = i;
          in_run = true;
        }
      } else if (in_run) {
        queue_run(run_start, i);
        in_run = false;
      }
    }
    if (in_run) queue_run(run_start, plan_size);
  }

  std::vector<Conn> conns;
  int next_conn_id = 0;
  std::uint64_t frames_seen = 0;
  const auto timeout = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(options_.worker_timeout_seconds));

  // Drops conns[k]: its outstanding chunk goes back to the FRONT of the
  // queue so a lost chunk is the next thing dispatched — a killed worker
  // delays the campaign by at most one chunk's simulation time.
  const auto drop = [&](std::size_t k, const char* why) {
    Conn& c = conns[k];
    log("worker #%d (pid %llu) dropped: %s", c.id,
        static_cast<unsigned long long>(c.pid), why);
    // A dead worker must not count toward the monitor's last-healthy guard.
    if (c.worker_id != 0) monitor_.on_disconnect(c.worker_id);
    if (c.state == ConnState::kWorking) {
      log("reassigning injections [%llu, %llu)",
          static_cast<unsigned long long>(c.chunk.start),
          static_cast<unsigned long long>(c.chunk.start + c.chunk.count));
      queue.push_front(c.chunk);
    }
    conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(k));
  };

  // Sends kError (best effort) and drops — the refusal paths: failed auth,
  // quarantined worker, mid-campaign quarantine.
  const auto refuse = [&](std::size_t k, const std::string& message) {
    const ErrorMsg err{message};
    try {
      send_frame(conns[k].socket, MsgType::kError, encode_payload(err));
    } catch (const Error&) {
    }
    drop(k, message.c_str());
  };

  // Election roster: every admitted worker that announced a peer port, by
  // stable worker id. Additive — a disconnected worker's peer service keeps
  // running, so it stays electable; an unreachable one is simply skipped
  // during an election round.
  std::vector<PeerEntry> roster;
  const auto broadcast_roster = [&] {
    const std::vector<std::uint8_t> payload =
        encode_payload(PeersMsg{roster});
    for (Conn& c : conns) {
      if (c.state != ConnState::kIdle && c.state != ConnState::kWorking) {
        continue;
      }
      try {
        send_frame(c.socket, MsgType::kPeers, payload);
      } catch (const Error&) {
        // A dead socket is reaped by its own receive path.
      }
    }
  };

  // Live journal replication: after an entry is on OUR disk, stream it to
  // every in-sync worker. Failures are deliberately not fatal here — the
  // worker's receive path reaps dead sockets, and its stale replica just
  // costs it candidacy weight in a future election, never correctness.
  const auto broadcast_entry = [&] {
    const std::uint64_t seq = mirror.size() - 1;
    JournalSyncMsg sync;
    sync.journal_id = campaign.journal_id;
    sync.seq = seq;
    sync.entry = mirror.back();
    const std::vector<std::uint8_t> payload = encode_payload(sync);
    for (Conn& c : conns) {
      if (c.state != ConnState::kIdle && c.state != ConnState::kWorking) {
        continue;
      }
      if (c.replica_entries != seq) continue;  // fell out of step: stale
      try {
        send_frame(c.socket, MsgType::kJournalSync, payload);
        c.replica_entries = seq + 1;
      } catch (const Error&) {
      }
    }
  };

  while (filled < plan_size) {
    // Dispatch to every idle worker (reassigned chunks first).
    for (std::size_t k = 0; k < conns.size();) {
      if (conns[k].state != ConnState::kIdle || queue.empty()) {
        ++k;
        continue;
      }
      Conn& c = conns[k];
      c.chunk = queue.front();
      try {
        send_frame(c.socket, MsgType::kWork, encode_payload(c.chunk));
      } catch (const Error&) {
        drop(k, "send failed");
        continue;
      }
      queue.pop_front();
      c.state = ConnState::kWorking;
      c.deadline = Clock::now() + timeout;
      ++k;
    }

    // Poll the listener and every connection; wake at the nearest deadline
    // so silent workers are reaped even when no fd stirs. Idle workers have
    // no deadline — a worker waiting out an empty queue is healthy, only
    // stalled handshakes and stalled chunks are reapable.
    std::vector<int> fds;
    fds.reserve(conns.size() + 1);
    fds.push_back(listener_.fd());
    for (const Conn& c : conns) fds.push_back(c.socket.fd());
    int poll_ms = -1;
    for (const Conn& c : conns) {
      if (c.state == ConnState::kIdle) continue;
      const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
          c.deadline - Clock::now());
      const int ms =
          static_cast<int>(std::clamp<long long>(wait.count(), 0, 60000));
      poll_ms = poll_ms < 0 ? ms : std::min(poll_ms, ms);
    }
    const std::vector<bool> ready = util::poll_readable(fds, poll_ms);

    if (ready[0]) {
      Conn c;
      c.socket = listener_.accept();
      c.state = ConnState::kAwaitHello;
      c.deadline = Clock::now() + timeout;
      c.id = next_conn_id++;
      log("worker #%d connected", c.id);
      conns.push_back(std::move(c));
      // The new conn was not polled this round; it is served next iteration.
    }

    // `ready` indexes the pre-accept fd list: entry ri corresponds to the
    // ri-1'th conn of that snapshot (a just-accepted conn is past the polled
    // range and waits a round). `k` tracks the same conn through erasures:
    // a drop shifts conns left, so k must NOT advance after one.
    std::size_t k = 0;
    for (std::size_t ri = 1; ri < ready.size() && k < conns.size(); ++ri) {
      if (!ready[ri]) {
        ++k;
        continue;
      }
      Conn& c = conns[k];
      Frame frame;
      bool ok = false;
      try {
        // The fd is readable, so the frame has started: the deadline-bounded
        // read is the slow-loris guard — a peer trickling bytes can stall
        // this loop for at most one frame deadline.
        ok = recv_frame_deadline(c.socket, frame,
                                 options_.frame_deadline_seconds);
      } catch (const Error& e) {
        drop(k, e.what());
        continue;
      }
      if (!ok) {
        drop(k, "disconnected");
        continue;
      }
      ++frames_seen;
      if (options_.death != nullptr && options_.death->on_frame()) {
        // SIGKILL semantics: this incarnation just stops existing. Abrupt
        // close on every socket (the kernel of a killed process does the
        // same), no redirect, no shutdown frames, no drain — recovery is
        // entirely the fleet's problem. The journal keeps whatever was
        // fsynced; in-flight batches die with us and must be re-queued by
        // whoever takes over.
        conns.clear();
        listener_.close();
        throw CoordinatorKilled(
            "coordinator: chaos schedule killed this incarnation after " +
            std::to_string(frames_seen) + " frames; journal '" +
            options_.journal_path + "' holds " + std::to_string(filled) +
            " of " + std::to_string(plan_size) + " injections");
      }
      c.deadline = Clock::now() + timeout;
      try {
        util::ByteReader payload(frame.payload);
        switch (frame.type) {
          case MsgType::kHello: {
            if (c.state != ConnState::kAwaitHello) {
              // A repeated handshake must not reset a working conn's state —
              // that would leak its outstanding chunk past drop()'s requeue.
              throw InvalidArgument("unexpected repeated hello");
            }
            const HelloMsg hello = HelloMsg::decode(payload);
            c.pid = hello.pid;
            c.worker_id = hello.worker_id;
            c.peer_port = hello.peer_port;
            c.peer_host = hello.peer_host;
            const bool was_quarantined = monitor_.quarantined(hello.worker_id);
            if (!monitor_.on_connect(hello.worker_id)) {
              const auto& health = monitor_.workers().at(hello.worker_id);
              refuse(k, "worker " + std::to_string(hello.worker_id) +
                            " is quarantined (" + to_string(health.reason) +
                            ")");
              continue;
            }
            if (was_quarantined) {
              log("worker %llu paroled: no healthy workers left",
                  static_cast<unsigned long long>(hello.worker_id));
            }
            // Challenge-response before any campaign data: we prove
            // ourselves over the worker's nonce, it must prove itself over
            // ours. The digest is the only thing an unauthenticated peer
            // ever learns.
            c.nonce = fresh_nonce();
            ChallengeMsg challenge;
            challenge.nonce = c.nonce;
            challenge.config_digest = digest;
            challenge.epoch = options_.epoch;
            challenge.mac = handshake_mac(options_.secret, kProtocolVersion,
                                          digest, options_.epoch, hello.nonce);
            send_frame(c.socket, MsgType::kChallenge,
                       encode_payload(challenge));
            c.state = ConnState::kAwaitAuth;
            break;
          }
          case MsgType::kAuth: {
            if (c.state != ConnState::kAwaitAuth) {
              throw InvalidArgument("unexpected auth message");
            }
            const AuthMsg auth = AuthMsg::decode(payload);
            const std::uint64_t expect =
                handshake_mac(options_.secret, kProtocolVersion, digest,
                              options_.epoch, c.nonce);
            if (auth.mac != expect) {
              refuse(k, "worker authentication failed "
                        "(wrong scenario secret?)");
              continue;
            }
            send_frame(c.socket, MsgType::kCampaign, campaign_payload);
            c.state = ConnState::kAwaitReady;
            break;
          }
          case MsgType::kReady: {
            if (c.state != ConnState::kAwaitReady) {
              throw InvalidArgument("unexpected ready message");
            }
            const ReadyMsg ready_msg = ReadyMsg::decode(payload);
            if (ready_msg.plan_size != plan_size) {
              throw InvalidArgument("worker derived a different plan size");
            }
            if (ready_msg.replica_entries > mirror.size()) {
              throw InvalidArgument(
                  "worker claims a journal replica longer than the journal");
            }
            c.replica_entries = ready_msg.replica_entries;
            c.state = ConnState::kIdle;
            // Catch the replica up before any work: a reconnecting worker
            // holds a prefix from this incarnation and needs only the tail;
            // a fresh worker streams from entry zero.
            if (journal) {
              JournalSyncMsg sync;
              sync.journal_id = campaign.journal_id;
              for (std::uint64_t s = c.replica_entries; s < mirror.size();
                   ++s) {
                sync.seq = s;
                sync.entry = mirror[static_cast<std::size_t>(s)];
                send_frame(c.socket, MsgType::kJournalSync,
                           encode_payload(sync));
              }
              c.replica_entries = mirror.size();
            }
            // Roster bookkeeping: an election-capable worker (it announced a
            // peer port, and we can name its host) becomes visible to the
            // whole fleet.
            if (c.peer_port != 0) {
              // An advertised host (--advertise-addr) wins over the address
              // the hello connection came from: behind NAT the two differ,
              // and only the advertised one is dialable by peers.
              const std::string host = !c.peer_host.empty()
                                           ? c.peer_host
                                           : c.socket.peer_host();
              if (!host.empty()) {
                const PeerEntry entry{c.worker_id, host, c.peer_port};
                const auto it = std::find_if(
                    roster.begin(), roster.end(), [&](const PeerEntry& p) {
                      return p.worker_id == c.worker_id;
                    });
                if (it == roster.end()) {
                  roster.push_back(entry);
                  broadcast_roster();
                } else if (it->host != entry.host ||
                           it->peer_port != entry.peer_port) {
                  *it = entry;
                  broadcast_roster();
                } else {
                  // Unchanged roster; still (re)send it to the newcomer,
                  // whose session state was reset by the reconnect.
                  try {
                    send_frame(c.socket, MsgType::kPeers,
                               encode_payload(PeersMsg{roster}));
                  } catch (const Error&) {
                  }
                }
              }
            }
            log("worker #%d (pid %llu, id %llu) ready (replica %llu/%zu)",
                c.id, static_cast<unsigned long long>(c.pid),
                static_cast<unsigned long long>(c.worker_id),
                static_cast<unsigned long long>(c.replica_entries),
                mirror.size());
            break;
          }
          case MsgType::kRecords: {
            if (c.state != ConnState::kWorking) {
              throw InvalidArgument("records from a worker without work");
            }
            const RecordsMsg msg = RecordsMsg::decode(payload);
            if (msg.start != c.chunk.start || msg.count != c.chunk.count) {
              throw InvalidArgument("records do not match the assigned chunk");
            }
            fill_records(msg);
            // Journal BEFORE acknowledging by dispatching more work: after a
            // crash, anything we acted on is guaranteed on disk. Then mirror
            // the entry to the fleet — local flush first, replicate second,
            // so no replica ever runs ahead of our own stable storage.
            if (journal) {
              journal->append(msg.start, msg.records);
              mirror.push_back(encode_journal_entry(msg.start, msg.records));
              broadcast_entry();
            }
            c.last_records_digest = fnv1a(frame.payload);
            c.state = ConnState::kIdle;
            break;
          }
          case MsgType::kHeartbeat: {
            const HeartbeatMsg heartbeat = HeartbeatMsg::decode(payload);
            if (heartbeat.worker_id != c.worker_id) {
              throw InvalidArgument("heartbeat for a different worker");
            }
            const QuarantineReason reason =
                monitor_.on_heartbeat(heartbeat, c.last_records_digest);
            if (reason != QuarantineReason::kNone) {
              refuse(k, "worker " + std::to_string(c.worker_id) +
                            " quarantined (" + to_string(reason) + ")");
              continue;
            }
            break;  // telemetry only; no state change
          }
          case MsgType::kError: {
            const ErrorMsg err = ErrorMsg::decode(payload);
            drop(k, err.message.c_str());
            continue;
          }
          default:
            throw InvalidArgument("unexpected message type");
        }
      } catch (const InternalError&) {
        throw;  // determinism violations abort the campaign
      } catch (const Error& e) {
        drop(k, e.what());
        continue;
      }
      ++k;
    }

    // Reap workers that have been silent past the timeout (idle workers are
    // exempt: with an empty queue there is nothing they could be sending).
    const auto now = Clock::now();
    for (std::size_t k2 = 0; k2 < conns.size();) {
      if (conns[k2].state != ConnState::kIdle && conns[k2].deadline <= now) {
        drop(k2, "timed out");
      } else {
        ++k2;
      }
    }

    // Failover hook: redirect the fleet to the standby and stop. The journal
    // (flushed on every accepted batch) is the baton.
    if (options_.handoff_after_frames > 0 &&
        frames_seen >= options_.handoff_after_frames && filled < plan_size) {
      ReconnectMsg redirect;
      redirect.host = options_.handoff_host;
      redirect.port = options_.handoff_port;
      const std::vector<std::uint8_t> redirect_payload =
          encode_payload(redirect);
      for (Conn& c : conns) {
        try {
          send_frame(c.socket, MsgType::kReconnect, redirect_payload);
          // Half-close, then drain below. Closing outright while a worker is
          // mid-send (records from its current chunk) would RST the
          // connection, and the RST destroys the kReconnect the worker has
          // buffered but not yet read — it would then retry the dead primary
          // instead of following the redirect.
          c.socket.shutdown_write();
        } catch (const Error&) {
          // A worker we cannot redirect will find the standby via its own
          // reconnect path (or die trying); the journal keeps its records.
        }
      }
      // Drain every connection to EOF so no RST is ever generated. Bytes
      // read here (in-flight record frames) are deliberately discarded, not
      // journaled: the standby re-queues those chunks and the campaign's
      // determinism plus the duplicate-record check keep the merge exact.
      const auto drain_deadline = Clock::now() + timeout;
      for (Conn& c : conns) drain_to_eof(c.socket, drain_deadline);
      conns.clear();
      // Stop listening too: a worker that missed the redirect must get
      // connection-refused from this dead incarnation, not a handshake
      // that never comes out of an unserved accept backlog.
      listener_.close();
      throw CoordinatorHandoff(
          "coordinator: handed off after " + std::to_string(frames_seen) +
          " frames; journal '" + options_.journal_path + "' holds " +
          std::to_string(filled) + " of " + std::to_string(plan_size) +
          " injections");
    }
  }

  log("all %llu injections filled, shutting workers down",
      static_cast<unsigned long long>(filled));
  for (Conn& c : conns) {
    try {
      send_frame(c.socket, MsgType::kShutdown, {});
      c.socket.shutdown_write();
    } catch (const Error&) {
      // A worker that died between its last records and shutdown is fine.
    }
  }
  // A worker that connected just as the last record landed is sitting in
  // the accept backlog waiting for a handshake that will never start —
  // accept it, tell it the campaign is over, and stop listening so any
  // later connect is refused outright instead of queueing forever.
  try {
    while (util::poll_readable({listener_.fd()}, 0)[0]) {
      Conn late;
      late.socket = listener_.accept();
      log("late worker connected after completion, sending shutdown");
      try {
        send_frame(late.socket, MsgType::kShutdown, {});
        late.socket.shutdown_write();
      } catch (const Error&) {
      }
      conns.push_back(std::move(late));
    }
  } catch (const Error&) {
    // A raced accept is fine; the listener closes either way.
  }
  listener_.close();
  const auto drain_deadline = Clock::now() + timeout;
  for (Conn& c : conns) drain_to_eof(c.socket, drain_deadline);
  conns.clear();

  const double seconds = timer.seconds();
  tee.flush();
  fi::CampaignStats stats = aggregator.finalize();
  stats.simulation_seconds = seconds;
  if (vector_out != nullptr) {
    // Reassemble the legacy CampaignResult: the records come from the
    // collecting sink, the statistics from the aggregator — which runs the
    // same stats kernel finalize_campaign does, so every double matches the
    // old in-place aggregation bit for bit.
    vector_out->records = collect->take_records();
    vector_out->clustering = std::move(prep.clustering);
    vector_out->clusters = stats.clusters;
    vector_out->per_class = stats.per_class;
    vector_out->chip_ser_percent = stats.chip_ser_percent;
    vector_out->set_xsect_cm2 = stats.set_xsect_cm2;
    vector_out->seu_xsect_cm2 = stats.seu_xsect_cm2;
    vector_out->golden_cycles = stats.golden_cycles;
    vector_out->clock_period_ps = stats.clock_period_ps;
    vector_out->simulation_seconds = seconds;
  }
  return stats;
}

}  // namespace ssresf::net
