#include "net/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>

#include "fi/campaign_exec.h"
#include "fi/golden_bundle.h"
#include "fi/shard.h"
#include "util/error.h"
#include "util/timer.h"

namespace ssresf::net {

namespace {

using Clock = std::chrono::steady_clock;

enum class ConnState { kAwaitHello, kAwaitReady, kIdle, kWorking };

struct Conn {
  util::Socket socket;
  ConnState state = ConnState::kAwaitHello;
  WorkMsg chunk;  // valid when state == kWorking
  Clock::time_point deadline;
  int id = 0;               // stable id for log lines
  std::uint64_t pid = 0;    // worker-reported, logs only
};

}  // namespace

Coordinator::Coordinator(const CampaignSpec& spec,
                         const radiation::SoftErrorDatabase& database,
                         CoordinatorOptions options)
    : spec_(spec),
      db_(database),
      options_(options),
      model_(build_model(spec)),
      listener_(options.port, options.loopback_only) {}

fi::CampaignResult Coordinator::run() {
  const fi::CampaignConfig& config = spec_.config;
  const auto log = [&](const char* fmt, auto... args) {
    if (options_.verbose) {
      std::fprintf(stderr, "coordinator: ");
      std::fprintf(stderr, fmt, args...);
      std::fputc('\n', stderr);
    }
  };

  util::Timer timer;
  // One golden pass for the whole fleet: the prep's trace and ladder are
  // encoded once and the identical campaign frame is replayed to every
  // worker that ever connects.
  fi::detail::CampaignPrep prep =
      fi::detail::prepare_campaign(model_, config, db_, /*for_execution=*/true);
  const std::uint64_t plan_size = prep.plan.size();

  CampaignMsg campaign;
  campaign.spec = spec_;
  campaign.config_digest = fi::campaign_config_digest(model_, config);
  campaign.total_injections = plan_size;
  {
    util::ByteWriter bundle_bytes;
    fi::encode_golden_bundle(bundle_bytes,
                             fi::extract_golden_bundle(model_, config, prep));
    campaign.bundle = bundle_bytes.take();
  }
  const std::vector<std::uint8_t> campaign_payload = encode_payload(campaign);
  log("serving %llu injections on port %u (golden bundle %zu bytes)",
      static_cast<unsigned long long>(plan_size),
      static_cast<unsigned>(listener_.port()), campaign.bundle.size());

  // The work queue: contiguous index chunks, reassigned-first at the front.
  const std::uint64_t chunk_size =
      options_.chunk_injections > 0
          ? options_.chunk_injections
          : std::max<std::uint64_t>(1, plan_size / 64);
  std::deque<WorkMsg> queue;
  for (std::uint64_t start = 0; start < plan_size; start += chunk_size) {
    queue.push_back({start, std::min(chunk_size, plan_size - start)});
  }

  std::vector<fi::InjectionRecord> records(plan_size);
  std::vector<std::uint8_t> seen(plan_size, 0);
  std::uint64_t filled = 0;

  std::vector<Conn> conns;
  int next_conn_id = 0;
  const auto timeout = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(options_.worker_timeout_seconds));

  // Drops conns[k]: its outstanding chunk goes back to the FRONT of the
  // queue so a lost chunk is the next thing dispatched — a killed worker
  // delays the campaign by at most one chunk's simulation time.
  const auto drop = [&](std::size_t k, const char* why) {
    Conn& c = conns[k];
    log("worker #%d (pid %llu) dropped: %s", c.id,
        static_cast<unsigned long long>(c.pid), why);
    if (c.state == ConnState::kWorking) {
      log("reassigning injections [%llu, %llu)",
          static_cast<unsigned long long>(c.chunk.start),
          static_cast<unsigned long long>(c.chunk.start + c.chunk.count));
      queue.push_front(c.chunk);
    }
    conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(k));
  };

  const auto fill_records = [&](const RecordsMsg& msg) {
    for (const fi::ShardRecord& r : msg.records) {
      if (r.index < msg.start || r.index >= msg.start + msg.count) {
        throw InvalidArgument("record index outside its chunk");
      }
      const fi::detail::PlannedInjection& planned =
          prep.plan[static_cast<std::size_t>(r.index)];
      if (r.record.cluster != planned.cluster ||
          r.record.module_class != model_.netlist.cell_class(planned.cell)) {
        throw InvalidArgument("record contradicts the campaign plan");
      }
      const auto i = static_cast<std::size_t>(r.index);
      if (seen[i] != 0) {
        // Duplicates can only be re-runs of a reassigned chunk; determinism
        // says they must agree. A conflict means a worker (or this process)
        // simulated wrongly — never paper over that.
        if (!(records[i] == r.record)) {
          throw InternalError(
              "duplicate record for injection " + std::to_string(r.index) +
              " differs between workers — determinism violation");
        }
        continue;
      }
      seen[i] = 1;
      records[i] = r.record;
      ++filled;
    }
  };

  while (filled < plan_size) {
    // Dispatch to every idle worker (reassigned chunks first).
    for (std::size_t k = 0; k < conns.size();) {
      if (conns[k].state != ConnState::kIdle || queue.empty()) {
        ++k;
        continue;
      }
      Conn& c = conns[k];
      c.chunk = queue.front();
      try {
        send_frame(c.socket, MsgType::kWork, encode_payload(c.chunk));
      } catch (const Error&) {
        drop(k, "send failed");
        continue;
      }
      queue.pop_front();
      c.state = ConnState::kWorking;
      c.deadline = Clock::now() + timeout;
      ++k;
    }

    // Poll the listener and every connection; wake at the nearest deadline
    // so silent workers are reaped even when no fd stirs. Idle workers have
    // no deadline — a worker waiting out an empty queue is healthy, only
    // stalled handshakes and stalled chunks are reapable.
    std::vector<int> fds;
    fds.reserve(conns.size() + 1);
    fds.push_back(listener_.fd());
    for (const Conn& c : conns) fds.push_back(c.socket.fd());
    int poll_ms = -1;
    for (const Conn& c : conns) {
      if (c.state == ConnState::kIdle) continue;
      const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
          c.deadline - Clock::now());
      const int ms =
          static_cast<int>(std::clamp<long long>(wait.count(), 0, 60000));
      poll_ms = poll_ms < 0 ? ms : std::min(poll_ms, ms);
    }
    const std::vector<bool> ready = util::poll_readable(fds, poll_ms);

    if (ready[0]) {
      Conn c;
      c.socket = listener_.accept();
      c.state = ConnState::kAwaitHello;
      c.deadline = Clock::now() + timeout;
      c.id = next_conn_id++;
      log("worker #%d connected", c.id);
      conns.push_back(std::move(c));
      // The new conn was not polled this round; it is served next iteration.
    }

    // `ready` indexes the pre-accept fd list: entry ri corresponds to the
    // ri-1'th conn of that snapshot (a just-accepted conn is past the polled
    // range and waits a round). `k` tracks the same conn through erasures:
    // a drop shifts conns left, so k must NOT advance after one.
    std::size_t k = 0;
    for (std::size_t ri = 1; ri < ready.size() && k < conns.size(); ++ri) {
      if (!ready[ri]) {
        ++k;
        continue;
      }
      Conn& c = conns[k];
      Frame frame;
      bool ok = false;
      try {
        ok = recv_frame(c.socket, frame);
      } catch (const Error& e) {
        drop(k, e.what());
        continue;
      }
      if (!ok) {
        drop(k, "disconnected");
        continue;
      }
      c.deadline = Clock::now() + timeout;
      try {
        util::ByteReader payload(frame.payload);
        switch (frame.type) {
          case MsgType::kHello: {
            if (c.state != ConnState::kAwaitHello) {
              // A repeated handshake must not reset a working conn's state —
              // that would leak its outstanding chunk past drop()'s requeue.
              throw InvalidArgument("unexpected repeated hello");
            }
            const HelloMsg hello = HelloMsg::decode(payload);
            c.pid = hello.pid;
            send_frame(c.socket, MsgType::kCampaign, campaign_payload);
            c.state = ConnState::kAwaitReady;
            break;
          }
          case MsgType::kReady: {
            if (c.state != ConnState::kAwaitReady) {
              throw InvalidArgument("unexpected ready message");
            }
            const ReadyMsg ready_msg = ReadyMsg::decode(payload);
            if (ready_msg.plan_size != plan_size) {
              throw InvalidArgument("worker derived a different plan size");
            }
            log("worker #%d (pid %llu) ready", c.id,
                static_cast<unsigned long long>(c.pid));
            c.state = ConnState::kIdle;
            break;
          }
          case MsgType::kRecords: {
            if (c.state != ConnState::kWorking) {
              throw InvalidArgument("records from a worker without work");
            }
            const RecordsMsg msg = RecordsMsg::decode(payload);
            if (msg.start != c.chunk.start || msg.count != c.chunk.count) {
              throw InvalidArgument("records do not match the assigned chunk");
            }
            fill_records(msg);
            c.state = ConnState::kIdle;
            break;
          }
          case MsgType::kError: {
            const ErrorMsg err = ErrorMsg::decode(payload);
            drop(k, err.message.c_str());
            continue;
          }
          default:
            throw InvalidArgument("unexpected message type");
        }
      } catch (const InternalError&) {
        throw;  // determinism violations abort the campaign
      } catch (const Error& e) {
        drop(k, e.what());
        continue;
      }
      ++k;
    }

    // Reap workers that have been silent past the timeout (idle workers are
    // exempt: with an empty queue there is nothing they could be sending).
    const auto now = Clock::now();
    for (std::size_t k = 0; k < conns.size();) {
      if (conns[k].state != ConnState::kIdle && conns[k].deadline <= now) {
        drop(k, "timed out");
      } else {
        ++k;
      }
    }
  }

  log("all %llu injections filled, shutting workers down",
      static_cast<unsigned long long>(filled));
  for (Conn& c : conns) {
    try {
      send_frame(c.socket, MsgType::kShutdown, {});
    } catch (const Error&) {
      // A worker that died between its last records and shutdown is fine.
    }
  }
  conns.clear();

  const double seconds = timer.seconds();
  fi::CampaignResult result = fi::detail::finalize_campaign(
      model_, config, db_, std::move(prep), std::move(records));
  result.simulation_seconds = seconds;
  return result;
}

}  // namespace ssresf::net
