#include "net/protocol.h"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>

#include "soc/programs.h"
#include "util/error.h"

namespace ssresf::net {

namespace {

constexpr char kFrameMagic[4] = {'S', 'S', 'N', 'P'};
constexpr std::size_t kHeaderSize = 4 + 1 + 1 + 4 + 8;

void put_f64(util::ByteWriter& out, double v) {
  out.fixed64(std::bit_cast<std::uint64_t>(v));
}

double get_f64(util::ByteReader& in) {
  return std::bit_cast<double>(in.fixed64());
}

[[nodiscard]] int get_int(util::ByteReader& in) {
  return static_cast<int>(in.varint());
}

}  // namespace

std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  return util::fnv1a(data);
}

std::vector<std::uint8_t> encode_frame(MsgType type,
                                       std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFramePayload) {
    throw InvalidArgument("net: frame payload exceeds the 1 GiB cap");
  }
  util::ByteWriter out;
  out.bytes(kFrameMagic, sizeof(kFrameMagic));
  out.u8(kProtocolVersion);
  out.u8(static_cast<std::uint8_t>(type));
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) out.u8(static_cast<std::uint8_t>(len >> (8 * i)));
  out.fixed64(fnv1a(payload));
  out.bytes(payload.data(), payload.size());
  return out.take();
}

void send_frame(util::Socket& socket, MsgType type,
                std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  socket.send_all(frame.data(), frame.size());
}

bool recv_frame(util::Socket& socket, Frame& out) {
  std::uint8_t header[kHeaderSize];
  if (!socket.recv_all(header, sizeof(header))) return false;
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    throw InvalidArgument("net: bad frame magic");
  }
  if (header[4] != kProtocolVersion) {
    throw InvalidArgument("net: protocol version mismatch (got " +
                          std::to_string(header[4]) + ", expected " +
                          std::to_string(kProtocolVersion) + ")");
  }
  if (header[5] > kMaxMsgType) {
    throw InvalidArgument("net: unknown message type " +
                          std::to_string(header[5]));
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[6 + i]) << (8 * i);
  }
  if (len > kMaxFramePayload) {
    throw InvalidArgument("net: frame payload length " + std::to_string(len) +
                          " exceeds the 1 GiB cap");
  }
  std::uint64_t digest = 0;
  for (int i = 0; i < 8; ++i) {
    digest |= static_cast<std::uint64_t>(header[10 + i]) << (8 * i);
  }
  out.type = static_cast<MsgType>(header[5]);
  out.payload.resize(len);
  if (len > 0 && !socket.recv_all(out.payload.data(), len)) {
    throw Error("net: connection closed inside a frame");
  }
  if (fnv1a(out.payload) != digest) {
    throw InvalidArgument("net: frame payload digest mismatch (corrupt or "
                          "truncated stream)");
  }
  return true;
}

namespace {

/// Exact-count read bounded by an absolute deadline, built from recv_some +
/// wait_readable. Returns false on a clean EOF before the first byte (only
/// when `allow_clean_eof`); throws Error on mid-buffer EOF or when the
/// deadline passes with the buffer incomplete.
bool recv_exact_by(util::Socket& socket, std::uint8_t* p, std::size_t n,
                   std::chrono::steady_clock::time_point deadline,
                   double deadline_seconds, bool allow_clean_eof) {
  std::size_t got = 0;
  while (got < n) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      throw Error("net: frame receive deadline of " +
                  std::to_string(deadline_seconds) + "s exceeded (" +
                  std::to_string(got) + " of " + std::to_string(n) +
                  " bytes; slow or stalled peer)");
    }
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int wait_ms = static_cast<int>(left.count()) + 1;
    if (!socket.wait_readable(wait_ms)) continue;  // re-check the deadline
    const std::size_t r = socket.recv_some(p + got, n - got);
    if (r == 0) {
      if (got == 0 && allow_clean_eof) return false;
      throw Error("net: connection closed mid-message (" +
                  std::to_string(got) + " of " + std::to_string(n) +
                  " bytes)");
    }
    got += r;
  }
  return true;
}

}  // namespace

bool recv_frame_deadline(util::Socket& socket, Frame& out,
                         double deadline_seconds) {
  if (deadline_seconds <= 0.0) {
    throw InvalidArgument("net: frame receive deadline must be positive, got " +
                          std::to_string(deadline_seconds));
  }
  // Waiting for a frame to *start* is unbounded — an idle peer is healthy.
  if (!socket.wait_readable(-1)) {
    throw Error("net: wait for frame failed");
  }
  // From the first header byte on, the whole frame must land in time.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(deadline_seconds));
  std::uint8_t header[kHeaderSize];
  if (!recv_exact_by(socket, header, sizeof(header), deadline,
                     deadline_seconds, /*allow_clean_eof=*/true)) {
    return false;
  }
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    throw InvalidArgument("net: bad frame magic");
  }
  if (header[4] != kProtocolVersion) {
    throw InvalidArgument("net: protocol version mismatch (got " +
                          std::to_string(header[4]) + ", expected " +
                          std::to_string(kProtocolVersion) + ")");
  }
  if (header[5] > kMaxMsgType) {
    throw InvalidArgument("net: unknown message type " +
                          std::to_string(header[5]));
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[6 + i]) << (8 * i);
  }
  if (len > kMaxFramePayload) {
    throw InvalidArgument("net: frame payload length " + std::to_string(len) +
                          " exceeds the 1 GiB cap");
  }
  std::uint64_t digest = 0;
  for (int i = 0; i < 8; ++i) {
    digest |= static_cast<std::uint64_t>(header[10 + i]) << (8 * i);
  }
  out.type = static_cast<MsgType>(header[5]);
  out.payload.resize(len);
  if (len > 0) {
    (void)recv_exact_by(socket, out.payload.data(), len, deadline,
                        deadline_seconds, /*allow_clean_eof=*/false);
  }
  if (fnv1a(out.payload) != digest) {
    throw InvalidArgument("net: frame payload digest mismatch (corrupt or "
                          "truncated stream)");
  }
  return true;
}

void CampaignSpec::encode(util::ByteWriter& out) const {
  out.sized_bytes(workload.data(), workload.size());
  out.sized_bytes(isa.data(), isa.size());
  out.sized_bytes(bus.data(), bus.size());
  out.varint(static_cast<std::uint64_t>(mem_kb));
  out.u8(static_cast<std::uint8_t>(config.engine));
  out.fixed64(config.seed);
  put_f64(out, config.environment.flux);
  put_f64(out, config.environment.let);
  out.varint(static_cast<std::uint64_t>(config.clustering.num_clusters));
  out.varint(static_cast<std::uint64_t>(config.clustering.layer_depth));
  out.varint(static_cast<std::uint64_t>(config.clustering.max_iterations));
  out.u8(config.clustering.expand_memory_weight ? 1 : 0);
  put_f64(out, config.sampling.fraction);
  out.varint(static_cast<std::uint64_t>(config.sampling.min_per_cluster));
  out.varint(static_cast<std::uint64_t>(config.sampling.max_per_cluster));
  out.u8(static_cast<std::uint8_t>(config.sampling.weighting));
  out.varint(static_cast<std::uint64_t>(config.sampling.memory_macro_draws));
  out.varint(static_cast<std::uint64_t>(config.run_cycles));
  out.varint(static_cast<std::uint64_t>(config.max_cycles));
}

CampaignSpec CampaignSpec::decode(util::ByteReader& in) {
  CampaignSpec spec;
  const auto get_string = [&in]() {
    const std::vector<char> bytes = in.byte_vec<char>();
    return std::string(bytes.begin(), bytes.end());
  };
  spec.workload = get_string();
  spec.isa = get_string();
  spec.bus = get_string();
  spec.mem_kb = get_int(in);
  const std::uint8_t engine = in.u8();
  if (engine > static_cast<std::uint8_t>(sim::EngineKind::kBitParallel)) {
    throw InvalidArgument("campaign spec: bad engine kind");
  }
  spec.config.engine = static_cast<sim::EngineKind>(engine);
  spec.config.seed = in.fixed64();
  spec.config.environment.flux = get_f64(in);
  spec.config.environment.let = get_f64(in);
  spec.config.clustering.num_clusters = get_int(in);
  spec.config.clustering.layer_depth = get_int(in);
  spec.config.clustering.max_iterations = get_int(in);
  spec.config.clustering.expand_memory_weight = in.u8() != 0;
  spec.config.sampling.fraction = get_f64(in);
  spec.config.sampling.min_per_cluster = get_int(in);
  spec.config.sampling.max_per_cluster = get_int(in);
  const std::uint8_t weighting = in.u8();
  if (weighting > static_cast<std::uint8_t>(cluster::SampleWeighting::kMixed)) {
    throw InvalidArgument("campaign spec: bad sample weighting");
  }
  spec.config.sampling.weighting =
      static_cast<cluster::SampleWeighting>(weighting);
  spec.config.sampling.memory_macro_draws = get_int(in);
  spec.config.run_cycles = get_int(in);
  spec.config.max_cycles = get_int(in);
  return spec;
}

soc::SocModel build_model(const CampaignSpec& spec) {
  soc::SocConfig cfg;
  cfg.name = "campaign-soc";
  cfg.mem_bytes = static_cast<std::uint64_t>(spec.mem_kb) * 1024;
  cfg.mem_tech = netlist::MemTech::kSram;
  if (spec.bus == "apb") {
    cfg.bus = soc::BusProtocol::kApb;
  } else if (spec.bus == "ahb") {
    cfg.bus = soc::BusProtocol::kAhb;
  } else {
    throw InvalidArgument("unknown bus '" + spec.bus + "'");
  }
  cfg.cpu_isa = spec.isa;

  const auto core_cfg = soc::CoreConfig::from_isa(cfg.cpu_isa);
  soc::Workload workload;
  if (spec.workload == "benchmark") {
    workload = soc::benchmark_workload(core_cfg, false);
  } else if (spec.workload == "benchmark-light") {
    workload = soc::benchmark_workload(core_cfg, true);
  } else if (spec.workload == "checksum") {
    workload = soc::checksum_workload();
  } else if (spec.workload == "fibonacci") {
    workload = soc::fibonacci_workload();
  } else if (spec.workload == "sort") {
    workload = soc::sort_workload();
  } else {
    throw InvalidArgument("unknown workload '" + spec.workload + "'");
  }
  const soc::Program programs[] = {soc::assemble(workload.source)};
  return soc::build_soc(cfg, programs);
}

void HelloMsg::encode(util::ByteWriter& out) const {
  out.varint(pid);
  out.fixed64(worker_id);
  out.varint(threads);
  out.fixed64(nonce);
  out.varint(peer_port);
  out.sized_bytes(peer_host.data(), peer_host.size());
}

HelloMsg HelloMsg::decode(util::ByteReader& in) {
  HelloMsg msg;
  msg.pid = in.varint();
  msg.worker_id = in.fixed64();
  msg.threads = static_cast<std::uint32_t>(in.varint());
  msg.nonce = in.fixed64();
  msg.peer_port = static_cast<std::uint16_t>(in.varint());
  const std::vector<char> host = in.byte_vec<char>();
  msg.peer_host.assign(host.begin(), host.end());
  return msg;
}

void ChallengeMsg::encode(util::ByteWriter& out) const {
  out.fixed64(nonce);
  out.fixed64(config_digest);
  out.varint(epoch);
  out.fixed64(mac);
}

ChallengeMsg ChallengeMsg::decode(util::ByteReader& in) {
  ChallengeMsg msg;
  msg.nonce = in.fixed64();
  msg.config_digest = in.fixed64();
  msg.epoch = in.varint();
  msg.mac = in.fixed64();
  return msg;
}

void AuthMsg::encode(util::ByteWriter& out) const { out.fixed64(mac); }

AuthMsg AuthMsg::decode(util::ByteReader& in) {
  AuthMsg msg;
  msg.mac = in.fixed64();
  return msg;
}

void HeartbeatMsg::encode(util::ByteWriter& out) const {
  out.fixed64(worker_id);
  out.varint(chunks_done);
  out.varint(records_produced);
  put_f64(out, last_chunk_seconds);
  put_f64(out, total_seconds);
  out.fixed64(last_records_digest);
}

HeartbeatMsg HeartbeatMsg::decode(util::ByteReader& in) {
  HeartbeatMsg msg;
  msg.worker_id = in.fixed64();
  msg.chunks_done = in.varint();
  msg.records_produced = in.varint();
  msg.last_chunk_seconds = get_f64(in);
  msg.total_seconds = get_f64(in);
  msg.last_records_digest = in.fixed64();
  return msg;
}

void ReconnectMsg::encode(util::ByteWriter& out) const {
  out.sized_bytes(host.data(), host.size());
  out.varint(port);
}

ReconnectMsg ReconnectMsg::decode(util::ByteReader& in) {
  ReconnectMsg msg;
  const std::vector<char> bytes = in.byte_vec<char>();
  msg.host.assign(bytes.begin(), bytes.end());
  msg.port = static_cast<std::uint16_t>(in.varint());
  return msg;
}

void CampaignMsg::encode(util::ByteWriter& out) const {
  spec.encode(out);
  out.fixed64(config_digest);
  out.varint(total_injections);
  out.fixed64(journal_id);
  out.byte_vec(bundle);
}

CampaignMsg CampaignMsg::decode(util::ByteReader& in) {
  CampaignMsg msg;
  msg.spec = CampaignSpec::decode(in);
  msg.config_digest = in.fixed64();
  msg.total_injections = in.varint();
  msg.journal_id = in.fixed64();
  msg.bundle = in.byte_vec<std::uint8_t>();
  return msg;
}

void ReadyMsg::encode(util::ByteWriter& out) const {
  out.varint(plan_size);
  out.varint(replica_entries);
}

ReadyMsg ReadyMsg::decode(util::ByteReader& in) {
  ReadyMsg msg;
  msg.plan_size = in.varint();
  msg.replica_entries = in.varint();
  return msg;
}

void JournalSyncMsg::encode(util::ByteWriter& out) const {
  out.fixed64(journal_id);
  out.varint(seq);
  out.byte_vec(entry);
}

JournalSyncMsg JournalSyncMsg::decode(util::ByteReader& in) {
  JournalSyncMsg msg;
  msg.journal_id = in.fixed64();
  msg.seq = in.varint();
  msg.entry = in.byte_vec<std::uint8_t>();
  return msg;
}

void PeersMsg::encode(util::ByteWriter& out) const {
  out.varint(peers.size());
  for (const PeerEntry& p : peers) {
    out.fixed64(p.worker_id);
    out.sized_bytes(p.host.data(), p.host.size());
    out.varint(p.peer_port);
  }
}

PeersMsg PeersMsg::decode(util::ByteReader& in) {
  PeersMsg msg;
  const std::uint64_t n = in.varint();
  msg.peers.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    PeerEntry p;
    p.worker_id = in.fixed64();
    const std::vector<char> host = in.byte_vec<char>();
    p.host.assign(host.begin(), host.end());
    p.peer_port = static_cast<std::uint16_t>(in.varint());
    msg.peers.push_back(std::move(p));
  }
  return msg;
}

void PeerQueryMsg::encode(util::ByteWriter& out) const {
  out.fixed64(worker_id);
}

PeerQueryMsg PeerQueryMsg::decode(util::ByteReader& in) {
  PeerQueryMsg msg;
  msg.worker_id = in.fixed64();
  return msg;
}

void PeerInfoMsg::encode(util::ByteWriter& out) const {
  out.fixed64(worker_id);
  out.varint(epoch);
  out.u8(static_cast<std::uint8_t>(phase));
  out.varint(replica_entries);
  out.u8(has_bundle ? 1 : 0);
  out.sized_bytes(coordinator_host.data(), coordinator_host.size());
  out.varint(coordinator_port);
}

PeerInfoMsg PeerInfoMsg::decode(util::ByteReader& in) {
  PeerInfoMsg msg;
  msg.worker_id = in.fixed64();
  msg.epoch = in.varint();
  const std::uint8_t phase = in.u8();
  if (phase > static_cast<std::uint8_t>(PeerPhase::kPromoted)) {
    throw InvalidArgument("peer info: unknown phase " + std::to_string(phase));
  }
  msg.phase = static_cast<PeerPhase>(phase);
  msg.replica_entries = in.varint();
  msg.has_bundle = in.u8() != 0;
  const std::vector<char> host = in.byte_vec<char>();
  msg.coordinator_host.assign(host.begin(), host.end());
  msg.coordinator_port = static_cast<std::uint16_t>(in.varint());
  return msg;
}

void WorkMsg::encode(util::ByteWriter& out) const {
  out.varint(start);
  out.varint(count);
}

WorkMsg WorkMsg::decode(util::ByteReader& in) {
  WorkMsg msg;
  msg.start = in.varint();
  msg.count = in.varint();
  return msg;
}

void RecordsMsg::encode(util::ByteWriter& out) const {
  if (records.size() != count) {
    throw InvalidArgument("records message: count does not match records");
  }
  out.varint(start);
  out.varint(count);
  fi::encode_records(out, records);
}

RecordsMsg RecordsMsg::decode(util::ByteReader& in) {
  RecordsMsg msg;
  msg.start = in.varint();
  msg.count = in.varint();
  if (msg.count > kMaxFramePayload) {
    throw InvalidArgument("records message: implausible record count");
  }
  msg.records = fi::decode_records(in, msg.count);
  return msg;
}

void ErrorMsg::encode(util::ByteWriter& out) const {
  out.sized_bytes(message.data(), message.size());
}

ErrorMsg ErrorMsg::decode(util::ByteReader& in) {
  ErrorMsg msg;
  const std::vector<char> bytes = in.byte_vec<char>();
  msg.message.assign(bytes.begin(), bytes.end());
  return msg;
}

namespace {

/// True when `v` survives a double -> u64 -> double round trip bit-exactly:
/// a non-negative integral value below 2^53. -0.0 is excluded (its bit
/// pattern would come back as +0.0), as are NaN and infinity.
bool varint_exact(double v) {
  if (std::signbit(v) || !(v < 9007199254740992.0)) return false;
  const auto u = static_cast<std::uint64_t>(v);
  return static_cast<double>(u) == v;
}

}  // namespace

void PredictRequestMsg::encode(util::ByteWriter& out) const {
  if (rows.size() != num_rows) {
    throw InvalidArgument("predict request: row count mismatch");
  }
  if (num_rows > kMaxPredictRows || num_features > kMaxPredictFeatures) {
    throw InvalidArgument("predict request: batch exceeds the size cap");
  }
  out.sized_bytes(alias.data(), alias.size());
  out.fixed64(config_digest);
  out.varint(num_rows);
  out.varint(num_features);
  for (std::uint64_t f = 0; f < num_features; ++f) {
    bool integral = true;
    for (const std::vector<double>& row : rows) {
      if (row.size() != num_features) {
        throw InvalidArgument("predict request: ragged feature row");
      }
      if (!varint_exact(row[f])) {
        integral = false;
        break;
      }
    }
    out.u8(integral ? 1 : 0);
    for (const std::vector<double>& row : rows) {
      if (integral) {
        out.varint(static_cast<std::uint64_t>(row[f]));
      } else {
        out.fixed64(std::bit_cast<std::uint64_t>(row[f]));
      }
    }
  }
}

PredictRequestMsg PredictRequestMsg::decode(util::ByteReader& in) {
  PredictRequestMsg msg;
  const std::vector<char> alias = in.byte_vec<char>();
  msg.alias.assign(alias.begin(), alias.end());
  msg.config_digest = in.fixed64();
  msg.num_rows = in.varint();
  msg.num_features = in.varint();
  if (msg.num_rows > kMaxPredictRows ||
      msg.num_features > kMaxPredictFeatures) {
    throw InvalidArgument("predict request: batch exceeds the size cap");
  }
  // Every value costs at least one wire byte, so a (rows, features) pair
  // whose product exceeds the remaining payload cannot be honest — reject
  // it before the allocation below, not after.
  if (msg.num_features > 0 && msg.num_rows > in.remaining() / msg.num_features) {
    throw InvalidArgument("predict request: batch larger than its payload");
  }
  msg.rows.assign(static_cast<std::size_t>(msg.num_rows),
                  std::vector<double>(
                      static_cast<std::size_t>(msg.num_features), 0.0));
  for (std::uint64_t f = 0; f < msg.num_features; ++f) {
    const std::uint8_t tag = in.u8();
    if (tag > 1) {
      throw InvalidArgument("predict request: unknown column encoding " +
                            std::to_string(tag));
    }
    for (std::uint64_t r = 0; r < msg.num_rows; ++r) {
      msg.rows[r][f] = tag == 1
                           ? static_cast<double>(in.varint())
                           : std::bit_cast<double>(in.fixed64());
    }
  }
  return msg;
}

void PredictResponseMsg::encode(util::ByteWriter& out) const {
  out.sized_bytes(alias.data(), alias.size());
  out.fixed64(config_digest);
  out.varint(generation);
  out.varint(labels.size());
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] > 0) acc |= static_cast<std::uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      out.u8(acc);
      acc = 0;
    }
  }
  if (labels.size() % 8 != 0) out.u8(acc);
}

PredictResponseMsg PredictResponseMsg::decode(util::ByteReader& in) {
  PredictResponseMsg msg;
  const std::vector<char> alias = in.byte_vec<char>();
  msg.alias.assign(alias.begin(), alias.end());
  msg.config_digest = in.fixed64();
  msg.generation = in.varint();
  const std::uint64_t n = in.varint();
  if (n > kMaxPredictRows) {
    throw InvalidArgument("predict response: implausible label count");
  }
  msg.labels.reserve(static_cast<std::size_t>(n));
  std::uint8_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (i % 8 == 0) acc = in.u8();
    msg.labels.push_back((acc >> (i % 8)) & 1u ? 1 : -1);
  }
  return msg;
}

}  // namespace ssresf::net
