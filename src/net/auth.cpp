#include "net/auth.h"

#include <atomic>
#include <chrono>

#include "util/bytes.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace ssresf::net {

namespace {

constexpr std::size_t kBlock = 64;

std::uint64_t fnv_key_block(std::string_view secret, std::uint8_t pad,
                            util::Fnv1a& digest) {
  // Derive the padded key block. A key longer than the block is replaced by
  // its hash (HMAC's rule), then zero-extended.
  std::uint8_t key[kBlock] = {};
  if (secret.size() <= kBlock) {
    for (std::size_t i = 0; i < secret.size(); ++i) {
      key[i] = static_cast<std::uint8_t>(secret[i]);
    }
  } else {
    util::Fnv1a h;
    for (const char c : secret) h.byte(static_cast<std::uint8_t>(c));
    for (int i = 0; i < 8; ++i) {
      key[i] = static_cast<std::uint8_t>(h.h >> (8 * i));
    }
  }
  for (std::size_t i = 0; i < kBlock; ++i) {
    digest.byte(static_cast<std::uint8_t>(key[i] ^ pad));
  }
  return 0;
}

}  // namespace

std::uint64_t hmac64(std::string_view secret,
                     std::span<const std::uint8_t> message) {
  util::Fnv1a inner;
  fnv_key_block(secret, 0x36, inner);
  inner.bytes(message);

  util::Fnv1a outer;
  fnv_key_block(secret, 0x5c, outer);
  for (int i = 0; i < 8; ++i) {
    outer.byte(static_cast<std::uint8_t>(inner.h >> (8 * i)));
  }
  return outer.h;
}

std::uint64_t handshake_mac(std::string_view secret,
                            std::uint8_t protocol_version,
                            std::uint64_t config_digest, std::uint64_t epoch,
                            std::uint64_t nonce) {
  util::ByteWriter msg;
  msg.u8(protocol_version);
  msg.fixed64(config_digest);
  msg.fixed64(epoch);
  msg.fixed64(nonce);
  return hmac64(secret, msg.data());
}

std::uint64_t fresh_nonce() {
  static std::atomic<std::uint64_t> counter{0};
  const auto now = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  std::uint64_t pid = 0;
#ifndef _WIN32
  pid = static_cast<std::uint64_t>(::getpid());
#endif
  // splitmix64 finalizer over (time, pid, counter) — distinct per call and
  // per process; unpredictability beyond that is not required (see header).
  std::uint64_t z = now ^ (pid << 32) ^ (counter.fetch_add(1) * 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace ssresf::net
