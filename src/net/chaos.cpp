#include "net/chaos.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/rng.h"

namespace ssresf::net {

ChaosSchedule ChaosSchedule::from_seed(std::uint64_t seed, std::size_t count,
                                       std::uint64_t first_op,
                                       std::uint64_t span) {
  ChaosSchedule schedule;
  if (span == 0) span = 1;
  for (std::size_t i = 0; i < count; ++i) {
    util::Rng rng = util::Rng::from_stream(seed, static_cast<std::uint64_t>(i));
    ChaosEvent event;
    event.op_index = first_op + rng.below(span);
    event.kind = static_cast<ChaosKind>(rng.below(4));
    switch (event.kind) {
      case ChaosKind::kTruncateSend:
        event.arg = static_cast<std::uint32_t>(1 + rng.below(12));
        break;
      case ChaosKind::kDelayMs:
        event.arg = static_cast<std::uint32_t>(1 + rng.below(20));
        break;
      default:
        event.arg = 0;
    }
    schedule.add(event);
  }
  return schedule;
}

std::optional<ChaosEvent> ChaosSchedule::take(std::uint64_t op_index) {
  const auto it = std::find_if(
      events_.begin(), events_.end(),
      [op_index](const ChaosEvent& e) { return e.op_index == op_index; });
  if (it == events_.end()) return std::nullopt;
  const ChaosEvent event = *it;
  events_.erase(it);  // consumed: the same fault never re-fires
  return event;
}

bool ChaosSchedule::send_frame(util::Socket& socket, MsgType type,
                               std::span<const std::uint8_t> payload) {
  const std::uint64_t op = ops_sent_++;
  const std::optional<ChaosEvent> event = take(op);
  if (!event) {
    net::send_frame(socket, type, payload);
    return true;
  }
  switch (event->kind) {
    case ChaosKind::kDisconnect:
      socket.close();
      return false;
    case ChaosKind::kGarbleSend: {
      std::vector<std::uint8_t> frame = encode_frame(type, payload);
      // Flip one bit inside the payload region (or the digest field when the
      // payload is empty) — the receiver's FNV check must reject it.
      const std::size_t header = 4 + 1 + 1 + 4 + 8;
      const std::size_t victim =
          frame.size() > header ? header : frame.size() - 1;
      frame[victim] ^= 0x01;
      socket.send_all(frame.data(), frame.size());
      // The receiver drops the connection on the digest mismatch; close our
      // side too so the next receive surfaces it immediately.
      socket.close();
      return false;
    }
    case ChaosKind::kTruncateSend: {
      const std::vector<std::uint8_t> frame = encode_frame(type, payload);
      // Always short of the full frame: a mid-frame EOF, never a clean close.
      const std::size_t keep =
          std::min<std::size_t>(event->arg, frame.size() - 1);
      socket.send_all(frame.data(), keep);
      socket.close();
      return false;
    }
    case ChaosKind::kDelayMs:
      std::this_thread::sleep_for(std::chrono::milliseconds(event->arg));
      net::send_frame(socket, type, payload);
      return true;
  }
  return true;  // unreachable
}

}  // namespace ssresf::net
