#include "net/election.h"

#include "util/error.h"

namespace ssresf::net {

PeerService::PeerService(std::uint64_t worker_id, std::uint16_t port,
                         bool loopback_only)
    : listener_(port, loopback_only) {
  info_.worker_id = worker_id;
  info_.phase = PeerPhase::kLost;  // no session yet
  thread_ = std::thread([this] { serve_loop(); });
}

PeerService::~PeerService() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  if (thread_.joinable()) thread_.join();
}

void PeerService::set_serving(std::uint64_t epoch,
                              const std::string& coordinator_host,
                              std::uint16_t coordinator_port) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // A promoted worker sessions against ITSELF (127.0.0.1) — that endpoint
  // is useless to remote peers, and kPromoted outranks kServing anyway.
  if (info_.phase == PeerPhase::kPromoted) return;
  info_.phase = PeerPhase::kServing;
  info_.epoch = epoch;
  info_.coordinator_host = coordinator_host;
  info_.coordinator_port = coordinator_port;
}

void PeerService::set_lost() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (info_.phase == PeerPhase::kPromoted) return;  // we ARE the coordinator
  info_.phase = PeerPhase::kLost;
  info_.coordinator_host.clear();
  info_.coordinator_port = 0;
}

void PeerService::set_electing() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (info_.phase == PeerPhase::kPromoted) return;
  info_.phase = PeerPhase::kElecting;
}

void PeerService::set_promoted(std::uint64_t epoch,
                               std::uint16_t coordinator_port) {
  const std::lock_guard<std::mutex> lock(mutex_);
  info_.phase = PeerPhase::kPromoted;
  info_.epoch = epoch;
  info_.coordinator_host.clear();  // "" = the host you reached me at
  info_.coordinator_port = coordinator_port;
}

void PeerService::set_candidacy(bool has_bundle,
                                std::uint64_t replica_entries) {
  const std::lock_guard<std::mutex> lock(mutex_);
  info_.has_bundle = has_bundle;
  info_.replica_entries = replica_entries;
}

PeerInfoMsg PeerService::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return info_;
}

void PeerService::serve_loop() {
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return;
    }
    try {
      // Short poll so a stop request is honored within ~100ms; the cost is
      // one poll syscall per tick, only while the worker process is alive.
      if (!util::poll_readable({listener_.fd()}, 100)[0]) continue;
      util::Socket conn = listener_.accept();
      Frame frame;
      // A peer that connects and stalls must not pin the service (it would
      // be deaf to the whole fleet): bounded wait for the query to start,
      // bounded read once it has, then move on.
      if (!conn.wait_readable(5000)) continue;
      if (!recv_frame_deadline(conn, frame, 5.0)) continue;
      if (frame.type != MsgType::kPeerQuery) continue;
      send_frame(conn, MsgType::kPeerInfo, encode_payload(snapshot()));
      // We read the query and the peer sends nothing more, so close() emits
      // FIN, not RST — the reply always survives.
    } catch (const Error&) {
      // A dropped querier hurts only itself; keep serving.
    }
  }
}

std::optional<PeerInfoMsg> query_peer(const std::string& host,
                                      std::uint16_t port,
                                      std::uint64_t asking_worker_id,
                                      double timeout_seconds) {
  try {
    util::Socket socket = util::connect_to(host, port, timeout_seconds);
    PeerQueryMsg query;
    query.worker_id = asking_worker_id;
    send_frame(socket, MsgType::kPeerQuery, encode_payload(query));
    Frame frame;
    if (!recv_frame_deadline(socket, frame, timeout_seconds)) {
      return std::nullopt;
    }
    if (frame.type != MsgType::kPeerInfo) return std::nullopt;
    util::ByteReader payload(frame.payload);
    return PeerInfoMsg::decode(payload);
  } catch (const Error&) {
    return std::nullopt;  // unreachable peer = not a candidate this round
  }
}

}  // namespace ssresf::net
