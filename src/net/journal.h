#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "fi/shard.h"

namespace ssresf::net {

/// Coordinator dispatch journal (.ssjl): the write-ahead record of every
/// accepted result batch, bound to the campaign-config digest. A standby (or
/// restarted) coordinator replays the journal, marks the recorded injections
/// as done, and re-dispatches only the gaps — so a coordinator crash costs at
/// most the batches in flight, never the campaign.
///
/// Layout:
///   "SSJL" | version u8 | config_digest u64 LE | total_injections u64 LE |
///   entries*
/// entry:
///   marker 0x5A | payload len u32 LE | FNV-1a(payload) u64 LE | payload
/// payload:
///   start varint | count varint | fi::encode_records bytes
///
/// Every append is flushed before the coordinator acknowledges further work,
/// so the journal never claims records the disk does not hold. A crash can
/// leave a torn final entry; the tolerant reader cuts it off, the strict
/// reader (used by tests and tooling) names the offending offset and digest.

struct JournalEntry {
  std::uint64_t start = 0;
  std::vector<fi::ShardRecord> records;
};

struct JournalContents {
  std::uint64_t config_digest = 0;
  std::uint64_t total_injections = 0;
  std::vector<JournalEntry> entries;
  /// Offset just past the last intact entry — the resume point.
  std::uint64_t valid_bytes = 0;
};

/// Reads a journal. Header defects (bad magic/version, digest not matching
/// `expected_config_digest`, truncation) always throw InvalidArgument naming
/// the path and both digests. Entry defects: with `strict` they throw with
/// the byte offset and the stored-vs-computed digest; without (crash
/// recovery) the scan stops at the first defect and `valid_bytes` marks the
/// cut point — a torn tail is expected after a crash mid-append.
[[nodiscard]] JournalContents read_journal(const std::string& path,
                                           std::uint64_t expected_config_digest,
                                           bool strict);

class JournalWriter {
 public:
  /// Creates (truncating) `path` and writes the header.
  JournalWriter(const std::string& path, std::uint64_t config_digest,
                std::uint64_t total_injections);

  /// Reopens an existing journal to continue a campaign: cuts the file back
  /// to `contents.valid_bytes` (dropping a torn tail) and appends from
  /// there. `contents` must come from read_journal on the same path.
  [[nodiscard]] static JournalWriter resume(const std::string& path,
                                            const JournalContents& contents);

  /// Appends one accepted batch and flushes — after return, the entry
  /// survives a coordinator crash. Throws Error when the write fails.
  void append(std::uint64_t start,
              const std::vector<fi::ShardRecord>& records);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct ResumeTag {};
  JournalWriter(ResumeTag, const std::string& path,
                const JournalContents& contents);

  std::string path_;
  std::ofstream file_;
};

}  // namespace ssresf::net
