#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "fi/shard.h"

namespace ssresf::net {

/// Coordinator dispatch journal (.ssjl): the write-ahead record of every
/// accepted result batch, bound to the campaign-config digest. A standby (or
/// restarted) coordinator replays the journal, marks the recorded injections
/// as done, and re-dispatches only the gaps — so a coordinator crash costs at
/// most the batches in flight, never the campaign.
///
/// Layout:
///   "SSJL" | version u8 | config_digest u64 LE | total_injections u64 LE |
///   entries*
/// entry:
///   marker 0x5A | payload len u32 LE | FNV-1a(payload) u64 LE | payload
/// payload:
///   start varint | count varint | fi::encode_records bytes
///
/// Every append is flushed AND fsynced before the coordinator acknowledges
/// further work, so the journal never claims records stable storage does not
/// hold — a power loss behaves like a SIGKILL. A crash can leave a torn
/// final entry; the tolerant reader cuts it off, the strict reader (used by
/// tests and tooling) names the offending offset and digest.
///
/// The entry frame doubles as the unit of live replication: kJournalSync
/// carries these exact bytes to every connected worker (see net/protocol.h),
/// so a worker's replica is byte-for-byte the coordinator's journal tail and
/// replays through the same readers after an election.

struct JournalEntry {
  std::uint64_t start = 0;
  std::vector<fi::ShardRecord> records;
};

struct JournalContents {
  std::uint64_t config_digest = 0;
  std::uint64_t total_injections = 0;
  std::vector<JournalEntry> entries;
  /// Offset just past the last intact entry — the resume point.
  std::uint64_t valid_bytes = 0;
};

/// Reads a journal. Header defects (bad magic/version, digest not matching
/// `expected_config_digest`, truncation) always throw InvalidArgument naming
/// the path and both digests. Entry defects: with `strict` they throw with
/// the byte offset and the stored-vs-computed digest; without (crash
/// recovery) the scan stops at the first defect and `valid_bytes` marks the
/// cut point — a torn tail is expected after a crash mid-append.
[[nodiscard]] JournalContents read_journal(const std::string& path,
                                           std::uint64_t expected_config_digest,
                                           bool strict);

/// The 21-byte journal header ("SSJL" | version | digest | total).
[[nodiscard]] std::vector<std::uint8_t> encode_journal_header(
    std::uint64_t config_digest, std::uint64_t total_injections);

/// One complete entry frame, exactly as it appears on disk (marker | len |
/// CRC | payload) — also the kJournalSync replication unit.
[[nodiscard]] std::vector<std::uint8_t> encode_journal_entry(
    std::uint64_t start, const std::vector<fi::ShardRecord>& records);

/// Validates and decodes exactly one entry frame: marker, length, payload
/// digest, and record codec are all checked; trailing bytes are a defect.
/// Throws InvalidArgument naming what is wrong — a worker applies this to
/// every kJournalSync frame before admitting it to its replica, so a replica
/// is intact by construction.
[[nodiscard]] JournalEntry decode_journal_entry(
    std::span<const std::uint8_t> entry_bytes);

/// Atomically publishes a complete journal (header + raw entry frames) at
/// `path` — the promotion step: an elected worker persists its replica
/// before replaying it as the new coordinator's journal. Uses
/// util::atomic_write_file, so a crash mid-promotion leaves no torn file.
void write_replica_journal(const std::string& path,
                           std::uint64_t config_digest,
                           std::uint64_t total_injections,
                           const std::vector<std::vector<std::uint8_t>>& entries);

class JournalWriter {
 public:
  /// Creates `path` with the header already on stable storage (atomic
  /// tmp+rename publication: a crash during creation leaves no file, or the
  /// previous complete one).
  JournalWriter(const std::string& path, std::uint64_t config_digest,
                std::uint64_t total_injections);

  /// Reopens an existing journal to continue a campaign: cuts the file back
  /// to `contents.valid_bytes` (dropping a torn tail) and appends from
  /// there. `contents` must come from read_journal on the same path.
  [[nodiscard]] static JournalWriter resume(const std::string& path,
                                            const JournalContents& contents);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Appends one accepted batch, flushed and fsynced — after return, the
  /// entry survives a coordinator kill at any instant (power loss included).
  /// Throws Error when the write fails.
  void append(std::uint64_t start,
              const std::vector<fi::ShardRecord>& records);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct ResumeTag {};
  JournalWriter(ResumeTag, const std::string& path,
                const JournalContents& contents);
  void open_for_append();

  std::string path_;
  std::FILE* file_ = nullptr;
};

}  // namespace ssresf::net
