#include "net/health.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace ssresf::net {

namespace {

struct Accumulator {
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;

  /// Chan's parallel-variance merge: exact combination of two Welford
  /// accumulators without revisiting samples.
  void merge(std::uint64_t bn, double bmean, double bm2) {
    if (bn == 0) return;
    if (n == 0) {
      n = bn;
      mean = bmean;
      m2 = bm2;
      return;
    }
    const double delta = bmean - mean;
    const std::uint64_t total = n + bn;
    mean += delta * static_cast<double>(bn) / static_cast<double>(total);
    m2 += bm2 + delta * delta * static_cast<double>(n) *
                    static_cast<double>(bn) / static_cast<double>(total);
    n = total;
  }
};

}  // namespace

const char* to_string(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kNone:
      return "healthy";
    case QuarantineReason::kDigestMismatch:
      return "records-digest-mismatch";
    case QuarantineReason::kFlapping:
      return "flapping";
    case QuarantineReason::kSlow:
      return "slow-outlier";
  }
  return "?";
}

FleetMonitor::FleetMonitor(HealthOptions options) : options_(options) {}

bool FleetMonitor::on_connect(std::uint64_t worker_id) {
  WorkerHealth& worker = workers_[worker_id];
  worker.worker_id = worker_id;
  worker.connects += 1;
  if (worker.quarantined()) {
    // Parole: with no connected healthy worker left, refusing the only
    // candidate would stall the campaign forever. Determinism makes even a
    // slow or flapping worker's records as good as anyone's.
    if (connected_healthy_count() == 0) {
      worker.reason = QuarantineReason::kNone;
      worker.connected = true;
      return true;
    }
    return false;
  }
  worker.connected = true;
  // connects - 1 reconnects so far; crossing the limit means crash-looping.
  if (worker.connects > 0 &&
      worker.connects - 1 > static_cast<std::uint64_t>(options_.flap_limit)) {
    if (try_quarantine(worker, QuarantineReason::kFlapping)) {
      worker.connected = false;
      return false;
    }
  }
  return true;
}

void FleetMonitor::on_disconnect(std::uint64_t worker_id) {
  const auto it = workers_.find(worker_id);
  if (it != workers_.end()) it->second.connected = false;
}

QuarantineReason FleetMonitor::on_heartbeat(
    const HeartbeatMsg& heartbeat, std::uint64_t accepted_records_digest) {
  WorkerHealth& worker = workers_[heartbeat.worker_id];
  worker.worker_id = heartbeat.worker_id;
  worker.chunks = heartbeat.chunks_done;
  worker.records = heartbeat.records_produced;
  worker.total_seconds = heartbeat.total_seconds;
  if (worker.quarantined()) return QuarantineReason::kNone;

  if (accepted_records_digest != 0 &&
      heartbeat.last_records_digest != accepted_records_digest) {
    if (try_quarantine(worker, QuarantineReason::kDigestMismatch)) {
      return QuarantineReason::kDigestMismatch;
    }
    return QuarantineReason::kNone;
  }

  // Welford update with this chunk's simulation time.
  worker.n += 1;
  const double delta = heartbeat.last_chunk_seconds - worker.mean;
  worker.mean += delta / static_cast<double>(worker.n);
  worker.m2 += delta * (heartbeat.last_chunk_seconds - worker.mean);

  if (worker.n < static_cast<std::uint64_t>(options_.min_worker_samples)) {
    return QuarantineReason::kNone;
  }
  // Judge this worker's mean against the REST of the fleet: merging every
  // other healthy worker's accumulator (Chan) and excluding the candidate —
  // an outlier's own samples would inflate the variance and mask it.
  Accumulator rest;
  for (const auto& [id, other] : workers_) {
    if (id == heartbeat.worker_id || other.quarantined()) continue;
    rest.merge(other.n, other.mean, other.m2);
  }
  if (rest.n < static_cast<std::uint64_t>(options_.min_fleet_samples)) {
    return QuarantineReason::kNone;
  }
  const double variance = rest.m2 / static_cast<double>(rest.n);
  // Floor the spread at 10% of the fleet mean: a near-uniform fleet must not
  // flag millisecond jitter as a multi-sigma outlier.
  const double spread =
      std::max({std::sqrt(variance), 0.1 * rest.mean, 1e-9});
  const double z = (worker.mean - rest.mean) / spread;
  if (z > options_.sigma_limit) {
    if (try_quarantine(worker, QuarantineReason::kSlow)) {
      return QuarantineReason::kSlow;
    }
  }
  return QuarantineReason::kNone;
}

bool FleetMonitor::quarantined(std::uint64_t worker_id) const {
  const auto it = workers_.find(worker_id);
  return it != workers_.end() && it->second.quarantined();
}

std::size_t FleetMonitor::healthy_count() const {
  std::size_t count = 0;
  for (const auto& [id, worker] : workers_) {
    (void)id;
    if (!worker.quarantined()) ++count;
  }
  return count;
}

bool FleetMonitor::try_quarantine(WorkerHealth& worker,
                                  QuarantineReason reason) {
  if (worker.quarantined()) return true;
  // Never quarantine the last CONNECTED healthy worker: a degraded fleet
  // that still finishes beats a pristine one that stalls. Counting every
  // worker ever seen would let a dead (but never-quarantined) worker stand
  // in for a live one, and an aggressive detector could then quarantine the
  // entire surviving fleet and deadlock the campaign.
  if (connected_healthy_count() <= 1) return false;
  worker.reason = reason;
  return true;
}

std::size_t FleetMonitor::connected_healthy_count() const {
  std::size_t count = 0;
  for (const auto& [id, worker] : workers_) {
    (void)id;
    if (worker.connected && !worker.quarantined()) ++count;
  }
  return count;
}

std::string FleetMonitor::status_table() const {
  std::ostringstream out;
  out << "worker            connects  chunks  records     mean-chunk  status\n";
  for (const auto& [id, w] : workers_) {
    out << std::left << std::setw(16) << id << "  " << std::right
        << std::setw(8) << w.connects << "  " << std::setw(6) << w.chunks
        << "  " << std::setw(7) << w.records << "  " << std::setw(11)
        << std::fixed << std::setprecision(4) << w.mean << "s  "
        << to_string(w.reason) << "\n";
  }
  if (workers_.empty()) out << "(no workers have connected)\n";
  return out.str();
}

}  // namespace ssresf::net
