#pragma once

#include <cstdint>

#include "net/protocol.h"
#include "radiation/soft_error_db.h"
#include "util/socket.h"

namespace ssresf::net {

struct CoordinatorOptions {
  std::uint16_t port = 0;     // 0 = ephemeral; read back via port()
  bool loopback_only = true;  // bind 127.0.0.1 only (tests, local spawner)
  /// Injections per work item. 0 picks plan_size/64 (min 1): small enough
  /// that a pull-based slow worker never straggles the campaign, large
  /// enough that framing cost stays negligible.
  std::uint64_t chunk_injections = 0;
  /// A worker silent for this long has its outstanding work reassigned and
  /// its connection dropped. Must exceed the worst-case time a worker spends
  /// simulating one chunk.
  double worker_timeout_seconds = 120.0;
  bool verbose = false;
};

/// Campaign coordinator of the socket transport. Owns the full campaign
/// lifecycle: prepares once (golden run, clustering, sampling, checkpoint
/// ladder), encodes the golden bundle a single time, then serves any number
/// of workers that connect — handshake (config + digest + bundle), dynamic
/// pull-based chunk dispatch, record collection with plan cross-checks, and
/// reassignment of chunks lost to worker disconnects or timeouts. The
/// coordinator never trusts a worker: every record frame is digest-checked
/// at the protocol layer and cross-checked against the locally derived plan,
/// and a worker that contradicts either is dropped and its work re-queued.
///
/// Determinism: records depend only on (model, config, global index), so the
/// merged result is byte-identical to single-process fi::run_campaign for
/// any worker count, any join/leave schedule, and any kill timing.
class Coordinator {
 public:
  /// Builds the campaign model from `spec` and binds the listen socket (so
  /// port() is valid immediately; workers may start connecting before run()).
  Coordinator(const CampaignSpec& spec,
              const radiation::SoftErrorDatabase& database,
              CoordinatorOptions options);

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Runs the campaign to completion and returns the merged result. Blocks
  /// until every planned injection has a record; with no workers connected
  /// it waits for them.
  [[nodiscard]] fi::CampaignResult run();

 private:
  CampaignSpec spec_;
  const radiation::SoftErrorDatabase& db_;
  CoordinatorOptions options_;
  soc::SocModel model_;
  util::ListenSocket listener_;
};

}  // namespace ssresf::net
