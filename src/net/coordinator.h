#pragma once

#include <cstdint>
#include <string>

#include "net/chaos.h"
#include "net/health.h"
#include "net/protocol.h"
#include "radiation/soft_error_db.h"
#include "util/error.h"
#include "util/socket.h"

namespace ssresf::net {

struct CoordinatorOptions {
  std::uint16_t port = 0;     // 0 = ephemeral; read back via port()
  bool loopback_only = true;  // bind 127.0.0.1 only (tests, local spawner)
  /// Injections per work item. 0 picks plan_size/64 (min 1): small enough
  /// that a pull-based slow worker never straggles the campaign, large
  /// enough that framing cost stays negligible.
  std::uint64_t chunk_injections = 0;
  /// A worker silent for this long has its outstanding work reassigned and
  /// its connection dropped. Must exceed the worst-case time a worker spends
  /// simulating one chunk.
  double worker_timeout_seconds = 120.0;
  /// Per-frame receive deadline (the slow-loris guard): once a frame has
  /// started arriving, the rest must land within this many seconds or the
  /// connection is dropped. Waiting for a frame to start stays unbounded.
  double frame_deadline_seconds = 30.0;
  /// Shared scenario secret of the authenticated handshake ("" = open
  /// fleet). A worker that cannot prove knowledge of it is refused before
  /// any campaign data is sent.
  std::string secret;
  /// Dispatch journal path (.ssjl). "" disables. With a journal, a restarted
  /// coordinator resumes the campaign from the last flushed batch instead of
  /// starting over — see net/journal.h.
  std::string journal_path;
  /// Health/quarantine thresholds — see net/health.h.
  HealthOptions health;
  /// Failover test hook: after receiving this many frames, redirect every
  /// worker to handoff_host:handoff_port via kReconnect, flush the journal,
  /// and throw CoordinatorHandoff (0 = never). Requires journal_path — a
  /// handoff without a journal would strand the campaign's progress.
  std::uint64_t handoff_after_frames = 0;
  std::string handoff_host = "127.0.0.1";
  std::uint16_t handoff_port = 0;
  /// Election epoch this coordinator serves at, bound into both handshake
  /// MACs (net/auth.h). 0 for a primary; an elected worker promotes itself
  /// at its last-known epoch + 1, which is exactly what locks a stale
  /// primary (still at the old epoch) out of the fleet.
  std::uint64_t epoch = 0;
  /// Chaos hook (net/chaos.h): deterministic in-process SIGKILL. When the
  /// schedule fires, every connection and the listener are closed abruptly —
  /// no redirect, no shutdown frames, no half-close courtesy — and run()
  /// throws CoordinatorKilled. Non-owning.
  CoordinatorDeathSchedule* death = nullptr;
  bool verbose = false;
};

/// Thrown by Coordinator::run() when the handoff hook fires: this
/// coordinator has redirected its fleet and stopped; a standby running on
/// the same journal finishes the campaign. Not an error in the fleet sense —
/// the campaign is alive, just elsewhere.
class CoordinatorHandoff : public Error {
 public:
  using Error::Error;
};

/// Thrown by Coordinator::run() when the CoordinatorDeathSchedule fires: the
/// deterministic stand-in for `kill -9` on the head node. Unlike a handoff,
/// NOTHING was sent to the fleet — the workers see a vanished peer and must
/// recover on their own (election, or an operator-started standby).
class CoordinatorKilled : public Error {
 public:
  using Error::Error;
};

/// Campaign coordinator of the socket transport. Owns the full campaign
/// lifecycle: prepares once (golden run, clustering, sampling, checkpoint
/// ladder), encodes the golden bundle a single time, then serves any number
/// of workers that connect — authenticated handshake (hello/challenge/auth,
/// net/auth.h), campaign shipping (config + digest + bundle), dynamic
/// pull-based chunk dispatch, record collection with plan cross-checks, and
/// reassignment of chunks lost to worker disconnects or timeouts. The
/// coordinator never trusts a worker: admission requires the scenario
/// secret, every record frame is digest-checked at the protocol layer and
/// cross-checked against the locally derived plan, heartbeat telemetry
/// feeds a FleetMonitor that quarantines flapping/slow/inconsistent
/// workers, and a worker that contradicts any invariant is dropped and its
/// work re-queued.
///
/// Fault tolerance: with a journal (options.journal_path) every accepted
/// batch is flushed to disk before more work is dispatched, and a restarted
/// coordinator resumes from the journal — re-dispatching only the gaps.
///
/// Determinism: records depend only on (model, config, global index), so the
/// merged result is byte-identical to single-process fi::run_campaign for
/// any worker count, any join/leave schedule, any kill timing — including a
/// coordinator death and resume.
class Coordinator {
 public:
  /// Builds the campaign model from `spec` and binds the listen socket (so
  /// port() is valid immediately; workers may start connecting before run()).
  /// Throws InvalidArgument on non-positive timeouts/deadlines or a handoff
  /// hook without a journal.
  Coordinator(const CampaignSpec& spec,
              const radiation::SoftErrorDatabase& database,
              CoordinatorOptions options);

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Runs the campaign to completion and returns the merged result. Blocks
  /// until every planned injection has a record; with no workers connected
  /// it waits for them. Thin collecting wrapper over the streaming overload.
  [[nodiscard]] fi::CampaignResult run();

  /// Streaming variant: accepted record batches flow into `sink` in worker-
  /// arrival order (non-overlapping ranges, each batch ascending — exactly
  /// the RecordSink contract), and the statistics come from a streaming
  /// aggregator. The coordinator keeps 9 bytes of bookkeeping per planned
  /// injection (a seen bit + a record digest for the cross-worker
  /// determinism check) instead of the records themselves, so its record
  /// memory is bounded by one in-flight frame regardless of campaign size.
  [[nodiscard]] fi::CampaignStats run(fi::RecordSink& sink);

  /// Fleet health table (per-worker counters + quarantine state) as of the
  /// last run() — `ssresf serve --fleet-status` prints this.
  [[nodiscard]] std::string fleet_status() const {
    return monitor_.status_table();
  }
  [[nodiscard]] const FleetMonitor& monitor() const { return monitor_; }

 private:
  [[nodiscard]] fi::CampaignStats run_impl(fi::RecordSink* user_sink,
                                           fi::CampaignResult* vector_out);

  CampaignSpec spec_;
  const radiation::SoftErrorDatabase& db_;
  CoordinatorOptions options_;
  soc::SocModel model_;
  util::ListenSocket listener_;
  FleetMonitor monitor_;
};

}  // namespace ssresf::net
