#include "net/worker.h"

#include <cstdio>
#include <numeric>

#include "fi/campaign_exec.h"
#include "fi/golden_bundle.h"
#include "util/error.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace ssresf::net {

Worker::Worker(const radiation::SoftErrorDatabase& database,
               WorkerOptions options)
    : db_(database), options_(std::move(options)) {}

std::uint64_t Worker::run() {
  const auto log = [&](const char* fmt, auto... args) {
    if (options_.verbose) {
      std::fprintf(stderr, "worker: ");
      std::fprintf(stderr, fmt, args...);
      std::fputc('\n', stderr);
    }
  };

  util::Socket socket =
      util::connect_to(options_.host, options_.port,
                       options_.connect_timeout_seconds);
  HelloMsg hello;
#ifndef _WIN32
  hello.pid = static_cast<std::uint64_t>(::getpid());
#endif
  hello.threads = static_cast<std::uint32_t>(std::max(options_.threads, 1));
  send_frame(socket, MsgType::kHello, encode_payload(hello));

  Frame frame;
  if (!recv_frame(socket, frame)) {
    throw Error("worker: coordinator hung up before the campaign handshake");
  }
  if (frame.type == MsgType::kError) {
    util::ByteReader payload(frame.payload);
    throw Error("worker: coordinator error: " +
                ErrorMsg::decode(payload).message);
  }
  if (frame.type != MsgType::kCampaign) {
    throw InvalidArgument("worker: expected the campaign message first");
  }
  util::ByteReader payload(frame.payload);
  const CampaignMsg campaign = CampaignMsg::decode(payload);

  // Rebuild the exact (model, config) the coordinator holds and prove it via
  // the digest — version skew, a different soft-error database, or any codec
  // bug fails here, before a single record is produced.
  const soc::SocModel model = build_model(campaign.spec);
  fi::CampaignConfig config = campaign.spec.config;
  config.threads = options_.threads;
  const std::uint64_t digest = fi::campaign_config_digest(model, config);
  if (digest != campaign.config_digest) {
    const ErrorMsg err{"campaign configuration digest mismatch"};
    try {
      send_frame(socket, MsgType::kError, encode_payload(err));
    } catch (const Error&) {
    }
    throw InvalidArgument(
        "worker: campaign configuration digest mismatch (coordinator sent " +
        std::to_string(campaign.config_digest) + ", derived " +
        std::to_string(digest) + ")");
  }

  util::ByteReader bundle_reader(campaign.bundle);
  const fi::GoldenBundle bundle = fi::decode_golden_bundle(bundle_reader);
  const fi::detail::CampaignPrep prep =
      fi::prepare_campaign_with_bundle(model, config, db_, bundle);
  if (prep.plan.size() != campaign.total_injections) {
    throw InvalidArgument("worker: derived plan size " +
                          std::to_string(prep.plan.size()) +
                          " does not match the coordinator's " +
                          std::to_string(campaign.total_injections));
  }
  log("campaign of %zu injections, %zu-rung ladder shipped (%zu bytes)",
      prep.plan.size(), prep.ladder.size(), campaign.bundle.size());

  ReadyMsg ready{prep.plan.size()};
  send_frame(socket, MsgType::kReady, encode_payload(ready));

  std::vector<fi::InjectionRecord> records(prep.plan.size());
  std::vector<std::size_t> owned;
  std::uint64_t produced = 0;
  std::uint64_t chunks_done = 0;
  for (;;) {
    if (!recv_frame(socket, frame)) {
      log("coordinator hung up, exiting");
      return produced;
    }
    if (frame.type == MsgType::kShutdown) {
      log("shutdown after %llu records",
          static_cast<unsigned long long>(produced));
      return produced;
    }
    if (frame.type == MsgType::kError) {
      util::ByteReader err_payload(frame.payload);
      throw Error("worker: coordinator error: " +
                  ErrorMsg::decode(err_payload).message);
    }
    if (frame.type != MsgType::kWork) {
      throw InvalidArgument("worker: unexpected message mid-campaign");
    }
    util::ByteReader work_payload(frame.payload);
    const WorkMsg work = WorkMsg::decode(work_payload);
    if (work.count == 0 || work.start + work.count > prep.plan.size()) {
      throw InvalidArgument("worker: work item outside the plan");
    }
    if (chunks_done >= options_.defect_after_chunks) {
      log("defecting on injections [%llu, %llu)",
          static_cast<unsigned long long>(work.start),
          static_cast<unsigned long long>(work.start + work.count));
      return produced;  // vanish without replying: the chunk is now lost
    }

    owned.resize(static_cast<std::size_t>(work.count));
    std::iota(owned.begin(), owned.end(),
              static_cast<std::size_t>(work.start));
    fi::detail::execute_injections(model, config, prep, owned, records);

    RecordsMsg reply;
    reply.start = work.start;
    reply.count = work.count;
    reply.records.reserve(owned.size());
    for (const std::size_t i : owned) {
      reply.records.push_back({i, records[i]});
    }
    send_frame(socket, MsgType::kRecords, encode_payload(reply));
    produced += work.count;
    ++chunks_done;
    if (options_.max_chunks > 0 && chunks_done >= options_.max_chunks) {
      log("chunk budget reached, disconnecting cleanly");
      return produced;
    }
  }
}

}  // namespace ssresf::net
