#include "net/worker.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <numeric>
#include <optional>
#include <thread>

#include "fi/campaign_exec.h"
#include "fi/golden_bundle.h"
#include "net/auth.h"
#include "net/journal.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/timer.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace ssresf::net {

double reconnect_backoff_seconds(std::uint64_t worker_id, int attempt,
                                 double base, double cap) {
  if (attempt < 1) return 0.0;
  double delay = base;
  for (int i = 1; i < attempt && delay < cap; ++i) delay *= 2.0;
  delay = std::min(delay, cap);
  util::Rng rng =
      util::Rng::from_stream(worker_id, static_cast<std::uint64_t>(attempt));
  return delay * (0.5 + 0.5 * rng.uniform());
}

/// Everything a session leaves behind for the next one: the campaign prep
/// cached by config digest (a reconnect costs a handshake, not a golden
/// rebuild) plus lifetime counters (chunk budgets and heartbeat telemetry
/// span sessions — the coordinator tracks the worker, not the connection).
struct Worker::SessionState {
  bool prepared = false;
  std::uint64_t digest = 0;
  std::optional<soc::SocModel> model;
  fi::CampaignConfig config;
  std::optional<fi::detail::CampaignPrep> prep;
  std::vector<fi::InjectionRecord> records;

  std::uint64_t produced = 0;
  std::uint64_t chunks_done = 0;
  double total_seconds = 0.0;
  bool progressed_this_session = false;

  // --- self-healing state (net/election.h) --------------------------------
  /// The campaign spec as shipped — exactly what a self-promotion feeds the
  /// replacement Coordinator.
  CampaignSpec spec;
  /// The coordinator incarnation whose journal `replica` mirrors. Entry
  /// order is only meaningful within one incarnation, so the replica is
  /// discarded whenever the id changes. 0 = the coordinator runs no journal.
  std::uint64_t journal_id = 0;
  /// Verified on-disk-format journal entries, in order. Always an intact
  /// prefix: every entry passed decode_journal_entry before admission.
  std::vector<std::vector<std::uint8_t>> replica;
  /// Fleet roster from the last kPeers broadcast.
  std::vector<PeerEntry> roster;
  /// Highest election epoch proven to us through a handshake MAC.
  std::uint64_t known_epoch = 0;
};

Worker::Worker(const radiation::SoftErrorDatabase& database,
               WorkerOptions options)
    : db_(database), options_(std::move(options)) {
  if (options_.worker_id == 0) options_.worker_id = fresh_nonce();
  if (options_.connect_timeout_seconds <= 0.0) {
    throw InvalidArgument("worker: connect timeout must be positive, got " +
                          std::to_string(options_.connect_timeout_seconds));
  }
  if (options_.election_timeout_seconds < 0.0) {
    throw InvalidArgument("worker: election timeout must be >= 0, got " +
                          std::to_string(options_.election_timeout_seconds));
  }
  if (options_.peer_timeout_seconds <= 0.0) {
    throw InvalidArgument("worker: peer timeout must be positive, got " +
                          std::to_string(options_.peer_timeout_seconds));
  }
}

Worker::~Worker() { join_promoted(); }

void Worker::join_promoted() {
  if (promoted_thread_.joinable()) promoted_thread_.join();
}

std::uint64_t Worker::run() {
  std::uint64_t produced = 0;
  try {
    produced = run_inner();
  } catch (const Error& e) {
    // Once this worker IS the coordinator, its own worker lane is
    // best-effort: the campaign's fate is the promoted coordinator's, so a
    // lane rejection (e.g. its self-session quarantined as a slow outlier)
    // must not kill the process that holds the merge.
    if (!promoted()) throw;
    if (options_.verbose) {
      std::fprintf(stderr, "worker: promoted; own worker lane ended: %s\n",
                   e.what());
    }
  }
  // A promoted worker only gets its clean kShutdown once its own coordinator
  // has merged the last record, so this join is a formality — but it is the
  // synchronization point that makes promoted_result_ safe to read.
  join_promoted();
  if (!promoted_error_.empty()) {
    throw Error("worker: promoted coordinator failed: " + promoted_error_);
  }
  return produced;
}

std::uint64_t Worker::run_inner() {
  const auto log = [&](const char* fmt, auto... args) {
    if (options_.verbose) {
      std::fprintf(stderr, "worker: ");
      std::fprintf(stderr, fmt, args...);
      std::fputc('\n', stderr);
    }
  };

  state_ = std::make_unique<SessionState>();
  SessionState& state = *state_;
  state.known_epoch = options_.initial_epoch;
  const bool elections = options_.election_timeout_seconds > 0.0;
  if (elections && peers_ == nullptr) {
    const bool loopback =
        options_.peer_loopback_only && options_.advertise_host.empty();
    peers_ = std::make_unique<PeerService>(options_.worker_id,
                                           options_.peer_port, loopback);
    log("peer service listening on port %u",
        static_cast<unsigned>(peers_->port()));
  }

  std::string host = options_.host;
  std::uint16_t port = options_.port;
  int attempt = 0;
  int election_rounds = 0;
  bool lost = false;
  std::chrono::steady_clock::time_point lost_since{};
  for (;;) {
    if (attempt > 0) {
      // Once the coordinator has been gone past the election timeout, the
      // ladder stops and the fleet heals itself. A promoted worker never
      // re-enters an election: it IS the coordinator now.
      const bool past_timeout =
          elections && !promoted() && lost &&
          std::chrono::steady_clock::now() - lost_since >=
              std::chrono::duration<double>(options_.election_timeout_seconds);
      if (past_timeout) {
        if (election_rounds >= std::max(options_.max_reconnect_attempts, 1)) {
          throw Error("worker: no election winner after " +
                      std::to_string(election_rounds) +
                      " rounds; giving up on the campaign");
        }
        ++election_rounds;
        const ElectionOutcome outcome = run_election(state, host, port);
        if (outcome == ElectionOutcome::kRetry) {
          const double delay = reconnect_backoff_seconds(
              options_.worker_id, election_rounds,
              options_.backoff_base_seconds, options_.backoff_cap_seconds);
          log("election round %d inconclusive, next round in %.3fs",
              election_rounds, delay);
          std::this_thread::sleep_for(std::chrono::duration<double>(delay));
          continue;
        }
        // Promoted, or following a newer coordinator: connect right away.
        attempt = 0;
        lost = false;
      } else {
        if (attempt > options_.max_reconnect_attempts) {
          throw Error("worker: giving up after " + std::to_string(attempt - 1) +
                      " consecutive failed sessions against " + host + ":" +
                      std::to_string(port));
        }
        const double delay = reconnect_backoff_seconds(
            options_.worker_id, attempt, options_.backoff_base_seconds,
            options_.backoff_cap_seconds);
        log("reconnect attempt %d in %.3fs", attempt, delay);
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }
    }
    state.progressed_this_session = false;
    // While a loss is on the clock, the connect-retry window must not
    // outlive the election deadline — election_timeout is the failover
    // latency promise, and a 60s operator-tuned connect window would
    // otherwise pin the worker against a dead port long past it.
    double connect_timeout = options_.connect_timeout_seconds;
    if (elections && !promoted() && lost) {
      const double remaining =
          options_.election_timeout_seconds -
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        lost_since)
              .count();
      connect_timeout = std::min(connect_timeout, std::max(remaining, 0.05));
    }
    try {
      switch (run_session(state, host, port, connect_timeout)) {
        case SessionEnd::kShutdown:
        case SessionEnd::kBudget:
          return state.produced;
        case SessionEnd::kRedirect:
          log("redirected to %s:%u", host.c_str(),
              static_cast<unsigned>(port));
          attempt = 0;  // a redirect is an instruction, not a failure
          lost = false;
          continue;
        case SessionEnd::kLost:
          break;
      }
    } catch (const StaleCoordinator& e) {
      // A deposed primary is back from the dead. With elections the campaign
      // simply lives elsewhere — fall through to discovery; without them
      // this is as final as any rejection.
      if (!elections) throw;
      log("stale coordinator at %s:%u: %s", host.c_str(),
          static_cast<unsigned>(port), e.what());
    } catch (const WorkerRejected&) {
      throw;  // a rejection is final; reconnecting cannot fix it
    } catch (const InvalidArgument&) {
      throw;  // protocol violations and digest mismatches are bugs, not luck
    } catch (const Error& e) {
      log("session lost: %s", e.what());
    }
    if (peers_ != nullptr) peers_->set_lost();
    // The election clock starts at the FIRST loss and resets on progress —
    // a flapping-but-working coordinator never triggers an election.
    if (state.progressed_this_session || !lost) {
      lost = true;
      lost_since = std::chrono::steady_clock::now();
    }
    if (state.progressed_this_session) election_rounds = 0;
    // A session that completed work earned a fresh backoff ladder.
    attempt = state.progressed_this_session ? 1 : attempt + 1;
  }
}

Worker::ElectionOutcome Worker::run_election(SessionState& state,
                                             std::string& host,
                                             std::uint16_t& port) {
  const auto log = [&](const char* fmt, auto... args) {
    if (options_.verbose) {
      std::fprintf(stderr, "worker: ");
      std::fprintf(stderr, fmt, args...);
      std::fputc('\n', stderr);
    }
  };
  peers_->set_electing();
  peers_->set_candidacy(state.prepared, state.replica.size());

  // Every reachable elector computes the same winner from the same roster:
  // the lowest worker id among peers (self included) holding the golden
  // bundle — their journal replicas are intact prefixes by construction, so
  // any candidate can resume the campaign without losing filled runs.
  std::uint64_t winner = state.prepared
                             ? options_.worker_id
                             : std::numeric_limits<std::uint64_t>::max();
  for (const PeerEntry& peer : state.roster) {
    if (peer.worker_id == options_.worker_id) continue;
    const std::optional<PeerInfoMsg> info =
        query_peer(peer.host, peer.peer_port, options_.worker_id,
                   options_.peer_timeout_seconds);
    if (!info.has_value()) continue;  // unreachable = not a candidate now
    if (info->epoch > state.known_epoch &&
        (info->phase == PeerPhase::kPromoted ||
         info->phase == PeerPhase::kServing) &&
        info->coordinator_port != 0) {
      // Someone already serves (or follows) the campaign at a newer epoch —
      // the election is over; join them. The epoch claim is gossip, so we do
      // NOT adopt it here: the handshake MAC will prove it on connect.
      host = info->coordinator_host.empty() ? peer.host
                                            : info->coordinator_host;
      port = info->coordinator_port;
      log("election: following worker %llu to %s:%u (epoch %llu)",
          static_cast<unsigned long long>(info->worker_id), host.c_str(),
          static_cast<unsigned>(port),
          static_cast<unsigned long long>(info->epoch));
      return ElectionOutcome::kFollow;
    }
    if (info->has_bundle && peer.worker_id < winner) winner = peer.worker_id;
  }
  if (winner == std::numeric_limits<std::uint64_t>::max()) {
    log("election: no candidate holds the golden bundle yet");
    return ElectionOutcome::kRetry;
  }
  if (winner != options_.worker_id) {
    // The winner promotes itself on its own schedule; we will see kPromoted
    // on its peer port next round and follow.
    log("election: deferring to worker %llu",
        static_cast<unsigned long long>(winner));
    return ElectionOutcome::kRetry;
  }
  try {
    promote(state, host, port);
  } catch (const Error& e) {
    // Promotion can fail before anything is published (journal write, port
    // bind). Withdraw cleanly; some other round — ours or a peer's — wins.
    log("election: promotion failed: %s", e.what());
    promoted_coordinator_.reset();
    return ElectionOutcome::kRetry;
  }
  return ElectionOutcome::kPromoted;
}

void Worker::promote(SessionState& state, std::string& host,
                     std::uint16_t& port) {
  const std::uint64_t epoch = state.known_epoch + 1;
  std::string journal_path = options_.promote_journal_path;
  if (journal_path.empty()) {
    journal_path =
        (std::filesystem::temp_directory_path() /
         ("ssresf_promoted_" + std::to_string(options_.worker_id) + ".ssjl"))
            .string();
  }
  // Persist the replica as a real journal. The Coordinator resumes from it
  // through the tolerant reader, re-queuing exactly the runs the dead
  // primary never mirrored to us (in particular its un-flushed tail).
  write_replica_journal(journal_path, state.digest, state.prep->plan.size(),
                        state.replica);

  CoordinatorOptions copts;
  copts.port = options_.promote_port;
  copts.loopback_only = options_.promote_loopback_only;
  copts.chunk_injections = options_.promote_chunk_injections;
  copts.worker_timeout_seconds = options_.promote_worker_timeout_seconds;
  copts.frame_deadline_seconds = options_.promote_frame_deadline_seconds;
  copts.secret = options_.secret;
  copts.journal_path = journal_path;
  copts.epoch = epoch;
  copts.verbose = options_.verbose;
  promoted_coordinator_ = std::make_unique<Coordinator>(state.spec, db_, copts);

  // Publish BEFORE run(): the listener binds in the constructor, so losers
  // polling our peer service can start connecting while we spin up.
  peers_->set_promoted(epoch, promoted_coordinator_->port());
  state.known_epoch = epoch;
  promoted_thread_ = std::thread([this] {
    try {
      promoted_result_ = promoted_coordinator_->run();
    } catch (const Error& e) {
      promoted_error_ = e.what();
    }
  });
  // Rejoin our own campaign as an ordinary worker — an election must not
  // cost the fleet a lane.
  host = "127.0.0.1";
  port = promoted_coordinator_->port();
}

Worker::SessionEnd Worker::run_session(SessionState& state, std::string& host,
                                       std::uint16_t& port,
                                       double connect_timeout) {
  const auto log = [&](const char* fmt, auto... args) {
    if (options_.verbose) {
      std::fprintf(stderr, "worker: ");
      std::fprintf(stderr, fmt, args...);
      std::fputc('\n', stderr);
    }
  };
  // All sends go through the chaos seam when a schedule is installed; a
  // fault that closes the socket surfaces as a lost session, never a crash.
  const auto send = [&](util::Socket& socket, MsgType type,
                        std::span<const std::uint8_t> payload) {
    if (options_.chaos != nullptr) {
      if (!options_.chaos->send_frame(socket, type, payload)) {
        throw Error("worker: connection lost to injected fault");
      }
      return;
    }
    send_frame(socket, type, payload);
  };

  util::Socket socket = util::connect_to(host, port, connect_timeout);

  // --- authenticated handshake (net/auth.h) -------------------------------
  HelloMsg hello;
#ifndef _WIN32
  hello.pid = static_cast<std::uint64_t>(::getpid());
#endif
  hello.worker_id = options_.worker_id;
  hello.threads = static_cast<std::uint32_t>(std::max(options_.threads, 1));
  hello.nonce = fresh_nonce();
  hello.peer_port = peers_ != nullptr ? peers_->port() : 0;
  hello.peer_host = options_.advertise_host;
  send(socket, MsgType::kHello, encode_payload(hello));

  // A handoff can fire at any point, including mid-handshake — follow the
  // redirect instead of treating it as a protocol violation.
  const auto follow_redirect = [&](const Frame& f) {
    util::ByteReader redirect_payload(f.payload);
    const ReconnectMsg redirect = ReconnectMsg::decode(redirect_payload);
    host = redirect.host.empty() ? host : redirect.host;
    port = redirect.port;
  };

  Frame frame;
  if (!recv_frame(socket, frame)) {
    throw Error("worker: coordinator hung up before the campaign handshake");
  }
  if (frame.type == MsgType::kShutdown) {
    // We raced the campaign's end: connected just as the last record landed.
    // Nothing to do is a clean outcome, not a protocol violation.
    log("campaign already complete, nothing to do");
    return SessionEnd::kShutdown;
  }
  if (frame.type == MsgType::kReconnect) {
    follow_redirect(frame);
    return SessionEnd::kRedirect;
  }
  if (frame.type == MsgType::kError) {
    util::ByteReader payload(frame.payload);
    throw WorkerRejected("worker: coordinator rejected us: " +
                         ErrorMsg::decode(payload).message);
  }
  if (frame.type != MsgType::kChallenge) {
    throw InvalidArgument("worker: expected the auth challenge first");
  }
  ChallengeMsg challenge;
  {
    util::ByteReader payload(frame.payload);
    challenge = ChallengeMsg::decode(payload);
  }
  // Epoch guard before anything else: a coordinator serving an election
  // epoch we have already seen superseded is a deposed primary back from
  // the dead — never follow it, no matter how good its MAC is.
  if (challenge.epoch < state.known_epoch) {
    throw StaleCoordinator("worker: coordinator serves election epoch " +
                           std::to_string(challenge.epoch) +
                           " but the fleet has moved on to " +
                           std::to_string(state.known_epoch));
  }
  // Mutual auth: the coordinator must have proven itself over OUR nonce
  // before we compute anything for it — a rogue listener learns nothing but
  // a digest.
  const std::uint64_t expect_mac =
      handshake_mac(options_.secret, kProtocolVersion, challenge.config_digest,
                    challenge.epoch, hello.nonce);
  if (challenge.mac != expect_mac) {
    throw WorkerRejected(
        "worker: coordinator failed authentication (wrong scenario secret?)");
  }
  // The MAC binds the epoch, so a verified challenge is proof the claimed
  // epoch is genuine — adopt it (followers learn post-election epochs here).
  state.known_epoch = challenge.epoch;
  AuthMsg auth;
  auth.mac = handshake_mac(options_.secret, kProtocolVersion,
                           challenge.config_digest, challenge.epoch,
                           challenge.nonce);
  send(socket, MsgType::kAuth, encode_payload(auth));

  if (!recv_frame(socket, frame)) {
    throw Error("worker: coordinator hung up after the auth proof");
  }
  if (frame.type == MsgType::kShutdown) {
    log("campaign completed during our handshake, nothing to do");
    return SessionEnd::kShutdown;
  }
  if (frame.type == MsgType::kReconnect) {
    follow_redirect(frame);
    return SessionEnd::kRedirect;
  }
  if (frame.type == MsgType::kError) {
    util::ByteReader payload(frame.payload);
    throw WorkerRejected("worker: coordinator rejected us: " +
                         ErrorMsg::decode(payload).message);
  }
  if (frame.type != MsgType::kCampaign) {
    throw InvalidArgument("worker: expected the campaign message after auth");
  }
  util::ByteReader payload(frame.payload);
  const CampaignMsg campaign = CampaignMsg::decode(payload);
  if (campaign.config_digest != challenge.config_digest) {
    throw InvalidArgument(
        "worker: campaign digest differs from the challenged one");
  }
  state.spec = campaign.spec;  // kept verbatim for a possible self-promotion
  if (campaign.journal_id != state.journal_id) {
    // A new coordinator incarnation orders its journal differently — a
    // replica is only meaningful within the incarnation that streamed it.
    state.journal_id = campaign.journal_id;
    state.replica.clear();
  }

  // Rebuild the exact (model, config) the coordinator holds and prove it via
  // the digest — version skew, a different soft-error database, or any codec
  // bug fails here, before a single record is produced. Cached by digest: a
  // reconnect to the same campaign (or its standby) skips the rebuild.
  if (!state.prepared || state.digest != campaign.config_digest) {
    soc::SocModel model = build_model(campaign.spec);
    fi::CampaignConfig config = campaign.spec.config;
    config.threads = options_.threads;
    config.lanes = options_.lanes;
    const std::uint64_t digest = fi::campaign_config_digest(model, config);
    if (digest != campaign.config_digest) {
      const ErrorMsg err{"campaign configuration digest mismatch"};
      try {
        send_frame(socket, MsgType::kError, encode_payload(err));
      } catch (const Error&) {
      }
      throw InvalidArgument(
          "worker: campaign configuration digest mismatch (coordinator sent " +
          std::to_string(campaign.config_digest) + ", derived " +
          std::to_string(digest) + ")");
    }
    util::ByteReader bundle_reader(campaign.bundle);
    const fi::GoldenBundle bundle = fi::decode_golden_bundle(bundle_reader);
    fi::detail::CampaignPrep prep =
        fi::prepare_campaign_with_bundle(model, config, db_, bundle);
    if (prep.plan.size() != campaign.total_injections) {
      throw InvalidArgument("worker: derived plan size " +
                            std::to_string(prep.plan.size()) +
                            " does not match the coordinator's " +
                            std::to_string(campaign.total_injections));
    }
    log("campaign of %zu injections, %zu-rung ladder shipped (%zu bytes)",
        prep.plan.size(), prep.ladder.size(), campaign.bundle.size());
    state.model = std::move(model);
    state.config = config;
    state.records.assign(prep.plan.size(), {});
    state.prep = std::move(prep);
    state.digest = campaign.config_digest;
    state.prepared = true;
  } else {
    log("reconnected to campaign %llu, prep cache hit",
        static_cast<unsigned long long>(state.digest));
  }
  const fi::detail::CampaignPrep& prep = *state.prep;

  // Report how much of THIS incarnation's journal we already mirror; the
  // coordinator streams us the missing tail before any work.
  ReadyMsg ready{prep.plan.size(),
                 state.journal_id != 0
                     ? static_cast<std::uint64_t>(state.replica.size())
                     : 0};
  send(socket, MsgType::kReady, encode_payload(ready));
  if (peers_ != nullptr) {
    peers_->set_serving(state.known_epoch, host, port);
    peers_->set_candidacy(state.prepared, state.replica.size());
  }

  std::vector<std::size_t> owned;
  for (;;) {
    if (!recv_frame(socket, frame)) {
      throw Error("worker: coordinator hung up mid-campaign");
    }
    if (frame.type == MsgType::kJournalSync) {
      util::ByteReader sync_payload(frame.payload);
      JournalSyncMsg sync = JournalSyncMsg::decode(sync_payload);
      if (sync.journal_id != state.journal_id) continue;  // stale stream
      if (sync.seq < state.replica.size()) continue;      // duplicate
      if (sync.seq > state.replica.size()) {
        throw InvalidArgument("worker: journal sync gap (expected seq " +
                              std::to_string(state.replica.size()) +
                              ", got " + std::to_string(sync.seq) + ")");
      }
      // CRC + codec check before admission: the replica holds only entries
      // that would replay, so it is an intact prefix by construction.
      (void)decode_journal_entry(sync.entry);
      state.replica.push_back(std::move(sync.entry));
      if (peers_ != nullptr) {
        peers_->set_candidacy(state.prepared, state.replica.size());
      }
      continue;
    }
    if (frame.type == MsgType::kPeers) {
      util::ByteReader peers_payload(frame.payload);
      state.roster = PeersMsg::decode(peers_payload).peers;
      continue;
    }
    if (frame.type == MsgType::kShutdown) {
      log("shutdown after %llu records",
          static_cast<unsigned long long>(state.produced));
      return SessionEnd::kShutdown;
    }
    if (frame.type == MsgType::kReconnect) {
      follow_redirect(frame);
      return SessionEnd::kRedirect;
    }
    if (frame.type == MsgType::kError) {
      util::ByteReader err_payload(frame.payload);
      throw WorkerRejected("worker: coordinator error: " +
                           ErrorMsg::decode(err_payload).message);
    }
    if (frame.type != MsgType::kWork) {
      throw InvalidArgument("worker: unexpected message mid-campaign");
    }
    util::ByteReader work_payload(frame.payload);
    const WorkMsg work = WorkMsg::decode(work_payload);
    if (work.count == 0 || work.start + work.count > prep.plan.size()) {
      throw InvalidArgument("worker: work item outside the plan");
    }
    if (state.chunks_done >= options_.defect_after_chunks) {
      log("defecting on injections [%llu, %llu)",
          static_cast<unsigned long long>(work.start),
          static_cast<unsigned long long>(work.start + work.count));
      return SessionEnd::kBudget;  // vanish without replying: chunk is lost
    }

    owned.resize(static_cast<std::size_t>(work.count));
    std::iota(owned.begin(), owned.end(),
              static_cast<std::size_t>(work.start));
    util::Timer chunk_timer;
    fi::detail::execute_injections(*state.model, state.config, prep, owned,
                                   state.records);
    const double chunk_seconds = options_.chunk_seconds_override >= 0.0
                                     ? options_.chunk_seconds_override
                                     : chunk_timer.seconds();
    state.total_seconds += chunk_seconds;

    RecordsMsg reply;
    reply.start = work.start;
    reply.count = work.count;
    reply.records.reserve(owned.size());
    for (const std::size_t i : owned) {
      reply.records.push_back({i, state.records[i]});
    }
    const std::vector<std::uint8_t> records_payload = encode_payload(reply);
    send(socket, MsgType::kRecords, records_payload);
    state.produced += work.count;
    state.chunks_done += 1;
    state.progressed_this_session = true;

    HeartbeatMsg heartbeat;
    heartbeat.worker_id = options_.worker_id;
    heartbeat.chunks_done = state.chunks_done;
    heartbeat.records_produced = state.produced;
    heartbeat.last_chunk_seconds = chunk_seconds;
    heartbeat.total_seconds = state.total_seconds;
    heartbeat.last_records_digest = fnv1a(records_payload);
    if (options_.corrupt_heartbeat_digest) {
      heartbeat.last_records_digest ^= 1;
    }
    send(socket, MsgType::kHeartbeat, encode_payload(heartbeat));

    if (options_.max_chunks > 0 && state.chunks_done >= options_.max_chunks) {
      log("chunk budget reached, disconnecting cleanly");
      return SessionEnd::kBudget;
    }
  }
}

}  // namespace ssresf::net
