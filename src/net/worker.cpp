#include "net/worker.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <optional>
#include <thread>

#include "fi/campaign_exec.h"
#include "fi/golden_bundle.h"
#include "net/auth.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/timer.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace ssresf::net {

double reconnect_backoff_seconds(std::uint64_t worker_id, int attempt,
                                 double base, double cap) {
  if (attempt < 1) return 0.0;
  double delay = base;
  for (int i = 1; i < attempt && delay < cap; ++i) delay *= 2.0;
  delay = std::min(delay, cap);
  util::Rng rng =
      util::Rng::from_stream(worker_id, static_cast<std::uint64_t>(attempt));
  return delay * (0.5 + 0.5 * rng.uniform());
}

/// Everything a session leaves behind for the next one: the campaign prep
/// cached by config digest (a reconnect costs a handshake, not a golden
/// rebuild) plus lifetime counters (chunk budgets and heartbeat telemetry
/// span sessions — the coordinator tracks the worker, not the connection).
struct Worker::SessionState {
  bool prepared = false;
  std::uint64_t digest = 0;
  std::optional<soc::SocModel> model;
  fi::CampaignConfig config;
  std::optional<fi::detail::CampaignPrep> prep;
  std::vector<fi::InjectionRecord> records;

  std::uint64_t produced = 0;
  std::uint64_t chunks_done = 0;
  double total_seconds = 0.0;
  bool progressed_this_session = false;
};

Worker::Worker(const radiation::SoftErrorDatabase& database,
               WorkerOptions options)
    : db_(database), options_(std::move(options)) {
  if (options_.worker_id == 0) options_.worker_id = fresh_nonce();
  if (options_.connect_timeout_seconds <= 0.0) {
    throw InvalidArgument("worker: connect timeout must be positive, got " +
                          std::to_string(options_.connect_timeout_seconds));
  }
}

std::uint64_t Worker::run() {
  const auto log = [&](const char* fmt, auto... args) {
    if (options_.verbose) {
      std::fprintf(stderr, "worker: ");
      std::fprintf(stderr, fmt, args...);
      std::fputc('\n', stderr);
    }
  };

  SessionState state;
  std::string host = options_.host;
  std::uint16_t port = options_.port;
  int attempt = 0;
  for (;;) {
    if (attempt > 0) {
      if (attempt > options_.max_reconnect_attempts) {
        throw Error("worker: giving up after " + std::to_string(attempt - 1) +
                    " consecutive failed sessions against " + host + ":" +
                    std::to_string(port));
      }
      const double delay = reconnect_backoff_seconds(
          options_.worker_id, attempt, options_.backoff_base_seconds,
          options_.backoff_cap_seconds);
      log("reconnect attempt %d in %.3fs", attempt, delay);
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
    state.progressed_this_session = false;
    try {
      switch (run_session(state, host, port)) {
        case SessionEnd::kShutdown:
        case SessionEnd::kBudget:
          return state.produced;
        case SessionEnd::kRedirect:
          log("redirected to %s:%u", host.c_str(),
              static_cast<unsigned>(port));
          attempt = 0;  // a redirect is an instruction, not a failure
          continue;
        case SessionEnd::kLost:
          break;
      }
    } catch (const WorkerRejected&) {
      throw;  // a rejection is final; reconnecting cannot fix it
    } catch (const InvalidArgument&) {
      throw;  // protocol violations and digest mismatches are bugs, not luck
    } catch (const Error& e) {
      log("session lost: %s", e.what());
    }
    // A session that completed work earned a fresh backoff ladder.
    attempt = state.progressed_this_session ? 1 : attempt + 1;
  }
}

Worker::SessionEnd Worker::run_session(SessionState& state, std::string& host,
                                       std::uint16_t& port) {
  const auto log = [&](const char* fmt, auto... args) {
    if (options_.verbose) {
      std::fprintf(stderr, "worker: ");
      std::fprintf(stderr, fmt, args...);
      std::fputc('\n', stderr);
    }
  };
  // All sends go through the chaos seam when a schedule is installed; a
  // fault that closes the socket surfaces as a lost session, never a crash.
  const auto send = [&](util::Socket& socket, MsgType type,
                        std::span<const std::uint8_t> payload) {
    if (options_.chaos != nullptr) {
      if (!options_.chaos->send_frame(socket, type, payload)) {
        throw Error("worker: connection lost to injected fault");
      }
      return;
    }
    send_frame(socket, type, payload);
  };

  util::Socket socket =
      util::connect_to(host, port, options_.connect_timeout_seconds);

  // --- authenticated handshake (net/auth.h) -------------------------------
  HelloMsg hello;
#ifndef _WIN32
  hello.pid = static_cast<std::uint64_t>(::getpid());
#endif
  hello.worker_id = options_.worker_id;
  hello.threads = static_cast<std::uint32_t>(std::max(options_.threads, 1));
  hello.nonce = fresh_nonce();
  send(socket, MsgType::kHello, encode_payload(hello));

  // A handoff can fire at any point, including mid-handshake — follow the
  // redirect instead of treating it as a protocol violation.
  const auto follow_redirect = [&](const Frame& f) {
    util::ByteReader redirect_payload(f.payload);
    const ReconnectMsg redirect = ReconnectMsg::decode(redirect_payload);
    host = redirect.host.empty() ? host : redirect.host;
    port = redirect.port;
  };

  Frame frame;
  if (!recv_frame(socket, frame)) {
    throw Error("worker: coordinator hung up before the campaign handshake");
  }
  if (frame.type == MsgType::kShutdown) {
    // We raced the campaign's end: connected just as the last record landed.
    // Nothing to do is a clean outcome, not a protocol violation.
    log("campaign already complete, nothing to do");
    return SessionEnd::kShutdown;
  }
  if (frame.type == MsgType::kReconnect) {
    follow_redirect(frame);
    return SessionEnd::kRedirect;
  }
  if (frame.type == MsgType::kError) {
    util::ByteReader payload(frame.payload);
    throw WorkerRejected("worker: coordinator rejected us: " +
                         ErrorMsg::decode(payload).message);
  }
  if (frame.type != MsgType::kChallenge) {
    throw InvalidArgument("worker: expected the auth challenge first");
  }
  ChallengeMsg challenge;
  {
    util::ByteReader payload(frame.payload);
    challenge = ChallengeMsg::decode(payload);
  }
  // Mutual auth: the coordinator must have proven itself over OUR nonce
  // before we compute anything for it — a rogue listener learns nothing but
  // a digest.
  const std::uint64_t expect_mac =
      handshake_mac(options_.secret, kProtocolVersion, challenge.config_digest,
                    hello.nonce);
  if (challenge.mac != expect_mac) {
    throw WorkerRejected(
        "worker: coordinator failed authentication (wrong scenario secret?)");
  }
  AuthMsg auth;
  auth.mac = handshake_mac(options_.secret, kProtocolVersion,
                           challenge.config_digest, challenge.nonce);
  send(socket, MsgType::kAuth, encode_payload(auth));

  if (!recv_frame(socket, frame)) {
    throw Error("worker: coordinator hung up after the auth proof");
  }
  if (frame.type == MsgType::kShutdown) {
    log("campaign completed during our handshake, nothing to do");
    return SessionEnd::kShutdown;
  }
  if (frame.type == MsgType::kReconnect) {
    follow_redirect(frame);
    return SessionEnd::kRedirect;
  }
  if (frame.type == MsgType::kError) {
    util::ByteReader payload(frame.payload);
    throw WorkerRejected("worker: coordinator rejected us: " +
                         ErrorMsg::decode(payload).message);
  }
  if (frame.type != MsgType::kCampaign) {
    throw InvalidArgument("worker: expected the campaign message after auth");
  }
  util::ByteReader payload(frame.payload);
  const CampaignMsg campaign = CampaignMsg::decode(payload);
  if (campaign.config_digest != challenge.config_digest) {
    throw InvalidArgument(
        "worker: campaign digest differs from the challenged one");
  }

  // Rebuild the exact (model, config) the coordinator holds and prove it via
  // the digest — version skew, a different soft-error database, or any codec
  // bug fails here, before a single record is produced. Cached by digest: a
  // reconnect to the same campaign (or its standby) skips the rebuild.
  if (!state.prepared || state.digest != campaign.config_digest) {
    soc::SocModel model = build_model(campaign.spec);
    fi::CampaignConfig config = campaign.spec.config;
    config.threads = options_.threads;
    const std::uint64_t digest = fi::campaign_config_digest(model, config);
    if (digest != campaign.config_digest) {
      const ErrorMsg err{"campaign configuration digest mismatch"};
      try {
        send_frame(socket, MsgType::kError, encode_payload(err));
      } catch (const Error&) {
      }
      throw InvalidArgument(
          "worker: campaign configuration digest mismatch (coordinator sent " +
          std::to_string(campaign.config_digest) + ", derived " +
          std::to_string(digest) + ")");
    }
    util::ByteReader bundle_reader(campaign.bundle);
    const fi::GoldenBundle bundle = fi::decode_golden_bundle(bundle_reader);
    fi::detail::CampaignPrep prep =
        fi::prepare_campaign_with_bundle(model, config, db_, bundle);
    if (prep.plan.size() != campaign.total_injections) {
      throw InvalidArgument("worker: derived plan size " +
                            std::to_string(prep.plan.size()) +
                            " does not match the coordinator's " +
                            std::to_string(campaign.total_injections));
    }
    log("campaign of %zu injections, %zu-rung ladder shipped (%zu bytes)",
        prep.plan.size(), prep.ladder.size(), campaign.bundle.size());
    state.model = std::move(model);
    state.config = config;
    state.records.assign(prep.plan.size(), {});
    state.prep = std::move(prep);
    state.digest = campaign.config_digest;
    state.prepared = true;
  } else {
    log("reconnected to campaign %llu, prep cache hit",
        static_cast<unsigned long long>(state.digest));
  }
  const fi::detail::CampaignPrep& prep = *state.prep;

  ReadyMsg ready{prep.plan.size()};
  send(socket, MsgType::kReady, encode_payload(ready));

  std::vector<std::size_t> owned;
  for (;;) {
    if (!recv_frame(socket, frame)) {
      throw Error("worker: coordinator hung up mid-campaign");
    }
    if (frame.type == MsgType::kShutdown) {
      log("shutdown after %llu records",
          static_cast<unsigned long long>(state.produced));
      return SessionEnd::kShutdown;
    }
    if (frame.type == MsgType::kReconnect) {
      follow_redirect(frame);
      return SessionEnd::kRedirect;
    }
    if (frame.type == MsgType::kError) {
      util::ByteReader err_payload(frame.payload);
      throw WorkerRejected("worker: coordinator error: " +
                           ErrorMsg::decode(err_payload).message);
    }
    if (frame.type != MsgType::kWork) {
      throw InvalidArgument("worker: unexpected message mid-campaign");
    }
    util::ByteReader work_payload(frame.payload);
    const WorkMsg work = WorkMsg::decode(work_payload);
    if (work.count == 0 || work.start + work.count > prep.plan.size()) {
      throw InvalidArgument("worker: work item outside the plan");
    }
    if (state.chunks_done >= options_.defect_after_chunks) {
      log("defecting on injections [%llu, %llu)",
          static_cast<unsigned long long>(work.start),
          static_cast<unsigned long long>(work.start + work.count));
      return SessionEnd::kBudget;  // vanish without replying: chunk is lost
    }

    owned.resize(static_cast<std::size_t>(work.count));
    std::iota(owned.begin(), owned.end(),
              static_cast<std::size_t>(work.start));
    util::Timer chunk_timer;
    fi::detail::execute_injections(*state.model, state.config, prep, owned,
                                   state.records);
    const double chunk_seconds = options_.chunk_seconds_override >= 0.0
                                     ? options_.chunk_seconds_override
                                     : chunk_timer.seconds();
    state.total_seconds += chunk_seconds;

    RecordsMsg reply;
    reply.start = work.start;
    reply.count = work.count;
    reply.records.reserve(owned.size());
    for (const std::size_t i : owned) {
      reply.records.push_back({i, state.records[i]});
    }
    const std::vector<std::uint8_t> records_payload = encode_payload(reply);
    send(socket, MsgType::kRecords, records_payload);
    state.produced += work.count;
    state.chunks_done += 1;
    state.progressed_this_session = true;

    HeartbeatMsg heartbeat;
    heartbeat.worker_id = options_.worker_id;
    heartbeat.chunks_done = state.chunks_done;
    heartbeat.records_produced = state.produced;
    heartbeat.last_chunk_seconds = chunk_seconds;
    heartbeat.total_seconds = state.total_seconds;
    heartbeat.last_records_digest = fnv1a(records_payload);
    if (options_.corrupt_heartbeat_digest) {
      heartbeat.last_records_digest ^= 1;
    }
    send(socket, MsgType::kHeartbeat, encode_payload(heartbeat));

    if (options_.max_chunks > 0 && state.chunks_done >= options_.max_chunks) {
      log("chunk budget reached, disconnecting cleanly");
      return SessionEnd::kBudget;
    }
  }
}

}  // namespace ssresf::net
