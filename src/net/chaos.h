#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/protocol.h"
#include "util/socket.h"

namespace ssresf::net {

/// Deterministic in-process network-chaos harness. A ChaosSchedule sits at
/// the worker's frame-send seam and injects faults at fixed *operation
/// indices* (the worker's lifetime count of sent frames), never at wall-clock
/// times — so a chaos test replays bit-identically and asserts without sleeps
/// or retries. Every fault surfaces through the transport's normal failure
/// machinery (digest rejection, mid-frame EOF, clean close), which is exactly
/// the point: chaos tests prove the *recovery* paths, not the faults.
///
/// Events are consumed when they fire. A worker that reconnects after a
/// kDisconnect keeps counting ops from where it left off, so the same fault
/// can never re-fire and starve progress.
enum class ChaosKind : std::uint8_t {
  /// Close the connection instead of sending the frame — a crashed or
  /// partitioned worker from the coordinator's point of view.
  kDisconnect = 0,
  /// Flip one payload bit and send — the coordinator's digest check must
  /// reject the frame and drop the connection.
  kGarbleSend = 1,
  /// Send only the first `arg` bytes of the frame, then close — the
  /// coordinator sees a mid-frame EOF.
  kTruncateSend = 2,
  /// Sleep `arg` milliseconds, then send intact — latency without
  /// corruption; merged results must be unaffected.
  kDelayMs = 3,
};

struct ChaosEvent {
  std::uint64_t op_index = 0;  // which send operation the fault hits
  ChaosKind kind = ChaosKind::kDelayMs;
  std::uint32_t arg = 0;  // ms for kDelayMs; byte count for kTruncateSend
};

class ChaosSchedule {
 public:
  ChaosSchedule() = default;

  void add(ChaosEvent event) { events_.push_back(event); }

  /// `count` events at deterministic, seed-derived op indices in
  /// [first_op, first_op + span), kinds and args also seed-derived.
  /// Same seed, same schedule — across processes and runs.
  [[nodiscard]] static ChaosSchedule from_seed(std::uint64_t seed,
                                               std::size_t count,
                                               std::uint64_t first_op,
                                               std::uint64_t span);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const { return events_.size(); }
  [[nodiscard]] std::uint64_t ops_sent() const { return ops_sent_; }

  /// The worker's frame-send seam: counts the op, applies at most one
  /// matching event (consuming it), and sends whatever the event dictates.
  /// Returns false when the event closed the socket (kDisconnect /
  /// kTruncateSend) — the caller treats it like any other lost connection
  /// and goes through its reconnect path.
  [[nodiscard]] bool send_frame(util::Socket& socket, MsgType type,
                                std::span<const std::uint8_t> payload);

 private:
  [[nodiscard]] std::optional<ChaosEvent> take(std::uint64_t op_index);

  std::vector<ChaosEvent> events_;
  std::uint64_t ops_sent_ = 0;
};

/// The coordinator-side counterpart: deterministic coordinator *death*.
/// Counts the frames the coordinator receives and fires once at a fixed
/// frame index — the in-process stand-in for `kill -9` on the head node.
/// When it fires, the coordinator abruptly closes every connection and its
/// listener (no redirect, no shutdown, no drain — nothing a SIGKILLed
/// process could send) and throws CoordinatorKilled. Because the trigger is
/// an op index, an election test replays bit-identically with zero sleeps:
/// the workers observe a vanished coordinator at exactly the same point in
/// the dispatch stream every run.
class CoordinatorDeathSchedule {
 public:
  CoordinatorDeathSchedule() = default;
  /// Dies upon receiving frame number `die_at_frame` (1-based count of
  /// frames received across the coordinator's lifetime). 0 = never.
  explicit CoordinatorDeathSchedule(std::uint64_t die_at_frame)
      : die_at_frame_(die_at_frame) {}

  /// The coordinator's frame-received seam: counts the frame, returns true
  /// exactly once — when the schedule says this incarnation dies now.
  [[nodiscard]] bool on_frame() {
    ++frames_seen_;
    if (fired_ || die_at_frame_ == 0 || frames_seen_ < die_at_frame_) {
      return false;
    }
    fired_ = true;
    return true;
  }

  [[nodiscard]] std::uint64_t frames_seen() const { return frames_seen_; }
  [[nodiscard]] bool fired() const { return fired_; }

 private:
  std::uint64_t die_at_frame_ = 0;
  std::uint64_t frames_seen_ = 0;
  bool fired_ = false;
};

}  // namespace ssresf::net
