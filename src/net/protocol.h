#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fi/campaign.h"
#include "fi/shard.h"
#include "soc/soc.h"
#include "util/bytes.h"
#include "util/socket.h"

namespace ssresf::net {

/// Wire protocol of the socket campaign transport. One frame per message:
///
///   "SSNP" | version u8 | type u8 | payload length u32 LE |
///   FNV-1a(payload) u64 LE | payload
///
/// Every frame is digest-checked on receipt, so a truncated, corrupted, or
/// version-skewed stream fails loudly instead of decoding into a silently
/// wrong campaign. Payloads reuse the util/bytes.h LEB128 codecs, the
/// fi/shard.h record codec, and the fi/golden_bundle.h golden-work codec —
/// the same byte formats the .ssfs / .ssgb files use on disk.
///
/// Version 2 added the authenticated hello/challenge handshake (net/auth.h),
/// worker heartbeat telemetry, and coordinator-failover redirects.
///
/// Version 3 added self-healing failover: live journal replication
/// (kJournalSync), the peer roster (kPeers) + peer query protocol
/// (kPeerQuery/kPeerInfo) behind automatic coordinator election, the
/// election epoch in the challenge (and bound into the handshake MAC — the
/// split-brain guard), and the worker's replica length in kReady.
///
/// Version 4 added the model-serving frames (kPredictRequest /
/// kPredictResponse — batched classification against a warm .ssmd bundle,
/// see serve/predict_server.h) and the worker's advertised peer host in
/// kHello (multi-host fleets behind NAT report the address peers should
/// dial instead of whatever the accept() socket saw).
inline constexpr std::uint8_t kProtocolVersion = 4;

/// Frames over 1 GiB are rejected before allocation: no golden bundle or
/// record batch comes close, so a larger length is a corrupt or hostile
/// header.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;

enum class MsgType : std::uint8_t {
  kHello = 0,      // worker -> coordinator: ids + threads + worker nonce
  kCampaign = 1,   // coordinator -> worker: spec + digest + golden bundle
  kReady = 2,      // worker -> coordinator: plan derived, plan size echoed
  kWork = 3,       // coordinator -> worker: one chunk of global indices
  kRecords = 4,    // worker -> coordinator: the chunk's records
  kShutdown = 5,   // coordinator -> worker: campaign complete, disconnect
  kError = 6,      // either direction: fatal condition, human-readable
  kChallenge = 7,  // coordinator -> worker: nonce + digest + its own proof
  kAuth = 8,       // worker -> coordinator: proof over the challenge nonce
  kHeartbeat = 9,  // worker -> coordinator: telemetry after each chunk
  kReconnect = 10, // coordinator -> worker: campaign continues at host:port
  kJournalSync = 11,  // coordinator -> worker: one replicated journal entry
  kPeers = 12,        // coordinator -> worker: the fleet roster (peer ports)
  kPeerQuery = 13,    // worker -> worker: election probe on the peer port
  kPeerInfo = 14,     // worker -> worker: candidacy/leadership answer
  kPredictRequest = 15,   // client -> model server: one batch of feature rows
  kPredictResponse = 16,  // model server -> client: one label per row
};

inline constexpr std::uint8_t kMaxMsgType =
    static_cast<std::uint8_t>(MsgType::kPredictResponse);

struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

[[nodiscard]] std::uint64_t fnv1a(std::span<const std::uint8_t> data);

[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    MsgType type, std::span<const std::uint8_t> payload);

void send_frame(util::Socket& socket, MsgType type,
                std::span<const std::uint8_t> payload);

/// Blocking read of one frame. Returns false on a clean end-of-stream before
/// the first header byte (the peer hung up between messages). Throws
/// InvalidArgument on bad magic/version/type, an oversized length, or a
/// payload digest mismatch; util Error on a mid-frame disconnect.
[[nodiscard]] bool recv_frame(util::Socket& socket, Frame& out);

/// recv_frame with a per-frame receive deadline: waiting for a frame to
/// *start* still blocks forever (an idle peer is healthy), but once the
/// first byte has arrived the rest of the frame must land within
/// `deadline_seconds`, or an Error("frame receive deadline...") is thrown.
/// This is the slow-loris guard: a stalled or byte-trickling peer can cost
/// the coordinator's poll loop at most one deadline, never hang it.
[[nodiscard]] bool recv_frame_deadline(util::Socket& socket, Frame& out,
                                       double deadline_seconds);

/// Campaign-defining parameters, sufficient to reconstruct the identical
/// (model, config) pair on any host: the workload/SoC shape plus the full
/// CampaignConfig. Execution knobs (threads, checkpoint/exit flags) never
/// affect records and are NOT transmitted — each worker keeps its own.
/// The receiver cross-checks fi::campaign_config_digest of the rebuilt pair
/// against the digest the coordinator sent.
struct CampaignSpec {
  std::string workload = "benchmark-light";
  std::string isa = "RV32IM";
  std::string bus = "ahb";
  int mem_kb = 16;
  fi::CampaignConfig config;

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static CampaignSpec decode(util::ByteReader& in);
};

/// Builds the campaign SoC the spec describes (assembles the named workload,
/// instantiates the bus and memories). Throws InvalidArgument on an unknown
/// workload or bus name.
[[nodiscard]] soc::SocModel build_model(const CampaignSpec& spec);

// --- message payloads ---------------------------------------------------------

struct HelloMsg {
  std::uint64_t pid = 0;
  /// Stable identity of one Worker instance, preserved across reconnects —
  /// the key of the coordinator's health telemetry and quarantine set (a
  /// pid is not enough: in-process test fleets share one).
  std::uint64_t worker_id = 0;
  std::uint32_t threads = 1;
  /// The worker's challenge to the coordinator (mutual auth): the
  /// kChallenge reply must carry handshake_mac(secret, ..., nonce).
  std::uint64_t nonce = 0;
  /// Port of the worker's peer-query listener (net/election.h), exchanged
  /// during the handshake so the coordinator can hand every worker a roster
  /// of its peers — the contact list a coordinator-less election runs over.
  /// 0 = this worker does not participate in elections.
  std::uint16_t peer_port = 0;
  /// Host peers should dial to reach the peer-query listener. Empty = use
  /// whatever address this hello's connection came from (the loopback /
  /// single-host default). Set via --advertise-addr when the worker sits
  /// behind NAT or binds a non-routable interface.
  std::string peer_host;

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static HelloMsg decode(util::ByteReader& in);
};

/// Coordinator -> worker, in reply to kHello: the coordinator's nonce for
/// the worker to prove itself over, the campaign-config digest the proofs
/// bind to, and the coordinator's own proof over the worker's hello nonce.
/// No campaign data beyond the digest crosses the wire until the worker's
/// kAuth proof has been verified.
struct ChallengeMsg {
  std::uint64_t nonce = 0;
  std::uint64_t config_digest = 0;
  /// The coordinator's election epoch, bound into both handshake MACs. A
  /// worker that has seen an election at epoch E rejects any challenge with
  /// epoch < E as WorkerRejected — a stale primary coming back from the
  /// dead cannot pass the handshake, let alone split the fleet, because its
  /// MAC is computed over the old epoch.
  std::uint64_t epoch = 0;
  std::uint64_t mac = 0;  // handshake_mac over the hello's nonce

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static ChallengeMsg decode(util::ByteReader& in);
};

struct AuthMsg {
  std::uint64_t mac = 0;  // handshake_mac over the challenge's nonce

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static AuthMsg decode(util::ByteReader& in);
};

/// Worker -> coordinator after every kRecords frame: cumulative counters
/// plus the payload digest of the records frame just sent, so the
/// coordinator can cross-check what it received against what the worker
/// believes it produced. Feeds the health::FleetMonitor.
struct HeartbeatMsg {
  std::uint64_t worker_id = 0;
  std::uint64_t chunks_done = 0;
  std::uint64_t records_produced = 0;
  double last_chunk_seconds = 0.0;  // simulation wall time of the last chunk
  double total_seconds = 0.0;
  std::uint64_t last_records_digest = 0;  // fnv1a of the last kRecords payload

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static HeartbeatMsg decode(util::ByteReader& in);
};

/// Coordinator -> worker: this coordinator is going away; the campaign
/// continues at host:port (a standby resuming from the dispatch journal).
struct ReconnectMsg {
  std::string host;
  std::uint16_t port = 0;

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static ReconnectMsg decode(util::ByteReader& in);
};

struct CampaignMsg {
  CampaignSpec spec;
  std::uint64_t config_digest = 0;
  std::uint64_t total_injections = 0;
  /// Identity of this coordinator incarnation's journal (a fresh nonce per
  /// incarnation, 0 = journaling/replication off). Entry order can diverge
  /// across incarnations, so a worker's replica is only a valid prefix of
  /// the journal it was mirrored from — on a journal_id change the worker
  /// discards its replica and re-syncs from scratch via kReady/kJournalSync.
  std::uint64_t journal_id = 0;
  std::vector<std::uint8_t> bundle;  // encode_golden_bundle bytes

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static CampaignMsg decode(util::ByteReader& in);
};

struct ReadyMsg {
  std::uint64_t plan_size = 0;
  /// How many journal entries of the campaign's journal_id this worker's
  /// replica already holds — the coordinator streams only the missing tail.
  std::uint64_t replica_entries = 0;

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static ReadyMsg decode(util::ByteReader& in);
};

/// Coordinator -> worker after every accepted (and locally fsynced) batch:
/// one journal entry, as the exact on-disk bytes (marker | len | CRC |
/// payload — see net/journal.h). The worker CRC-checks and decodes the
/// frame before admitting it to its in-memory replica, so every replica is
/// a verified byte-for-byte prefix of the coordinator's journal, ready to
/// be replayed by the tolerant reader after an election.
struct JournalSyncMsg {
  std::uint64_t journal_id = 0;
  std::uint64_t seq = 0;  // index of this entry within the journal
  std::vector<std::uint8_t> entry;  // one encode_journal_entry frame

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static JournalSyncMsg decode(util::ByteReader& in);
};

/// One fleet member as seen by the coordinator: its stable worker id plus
/// the host:port of its peer-query listener.
struct PeerEntry {
  std::uint64_t worker_id = 0;
  std::string host;
  std::uint16_t peer_port = 0;
};

/// Coordinator -> worker on every roster change: the election-capable fleet
/// members. When the coordinator dies, this list is who the survivors ask.
struct PeersMsg {
  std::vector<PeerEntry> peers;

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static PeersMsg decode(util::ByteReader& in);
};

/// Worker -> worker on the peer port: who is asking.
struct PeerQueryMsg {
  std::uint64_t worker_id = 0;

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static PeerQueryMsg decode(util::ByteReader& in);
};

/// The phase a peer reports during an election round. See net/election.h
/// for the state machine.
enum class PeerPhase : std::uint8_t {
  kServing = 0,   // in a live session with the coordinator below
  kLost = 1,      // lost its coordinator, not yet electing
  kElecting = 2,  // running an election round
  kPromoted = 3,  // won an election; coordinator below is itself
};

/// Worker -> worker reply to kPeerQuery: everything an elector needs to
/// pick a leader — candidacy (bundle + replica length), phase, and where
/// the campaign now lives if this peer already knows. An empty
/// coordinator_host means "the host you reached me at".
struct PeerInfoMsg {
  std::uint64_t worker_id = 0;
  std::uint64_t epoch = 0;
  PeerPhase phase = PeerPhase::kLost;
  std::uint64_t replica_entries = 0;
  bool has_bundle = false;
  std::string coordinator_host;
  std::uint16_t coordinator_port = 0;

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static PeerInfoMsg decode(util::ByteReader& in);
};

struct WorkMsg {
  std::uint64_t start = 0;
  std::uint64_t count = 0;

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static WorkMsg decode(util::ByteReader& in);
};

struct RecordsMsg {
  std::uint64_t start = 0;
  std::uint64_t count = 0;
  std::vector<fi::ShardRecord> records;  // ascending index order

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static RecordsMsg decode(util::ByteReader& in);
};

struct ErrorMsg {
  std::string message;

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static ErrorMsg decode(util::ByteReader& in);
};

/// Hard caps on one predict batch. Far above any real netlist (the largest
/// built-in SoC has a few thousand injectable cells, ten features each);
/// anything bigger is a corrupt or hostile request and is rejected before
/// allocation.
inline constexpr std::uint64_t kMaxPredictRows = 1u << 20;
inline constexpr std::uint64_t kMaxPredictFeatures = 1u << 12;

/// Client -> model server: one batch of raw (unscaled, unmasked) feature
/// rows to classify with the bundle registered under `alias`. Rows are
/// stored column-major and each column is varint-coded like the record
/// columns in .ssfs files: node features are overwhelmingly small
/// non-negative integers (fan-in counts, depths, type codes), so a column
/// of exactly-representable integral doubles travels as one tag byte plus
/// LEB128 varints; any other column falls back to raw IEEE-754 bit
/// patterns. Both paths are bit-exact, which is what makes the served
/// predictions byte-diffable against offline `ssresf predict`.
struct PredictRequestMsg {
  std::string alias;
  /// Expected campaign-config digest of the served bundle; the server
  /// refuses the batch if its bundle disagrees. 0 = accept any (the
  /// cross-netlist case, mirroring predict --cross-netlist).
  std::uint64_t config_digest = 0;
  std::uint64_t num_rows = 0;
  std::uint64_t num_features = 0;
  /// Row-major rows.size() == num_rows, each of num_features doubles.
  std::vector<std::vector<double>> rows;

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static PredictRequestMsg decode(util::ByteReader& in);
};

/// Model server -> client: one ±1 label per request row (bit-packed, 1 =
/// sensitive / +1), plus the identity of the bundle that answered so the
/// client can pin results to a model generation across hot reloads.
struct PredictResponseMsg {
  std::string alias;
  std::uint64_t config_digest = 0;  // digest of the bundle that answered
  std::uint64_t generation = 0;     // registry generation that answered
  std::vector<int> labels;          // +1 / -1, one per request row

  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static PredictResponseMsg decode(util::ByteReader& in);
};

/// encode() into a fresh payload buffer (convenience for send_frame).
template <typename Msg>
[[nodiscard]] std::vector<std::uint8_t> encode_payload(const Msg& msg) {
  util::ByteWriter out;
  msg.encode(out);
  return out.take();
}

}  // namespace ssresf::net
