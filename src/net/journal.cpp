#include "net/journal.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/atomic_file.h"
#include "util/bytes.h"
#include "util/error.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace ssresf::net {

namespace {

constexpr char kJournalMagic[4] = {'S', 'S', 'J', 'L'};
constexpr std::uint8_t kJournalVersion = 1;
constexpr std::uint8_t kEntryMarker = 0x5A;
constexpr std::size_t kHeaderBytes = 4 + 1 + 8 + 8;
constexpr std::size_t kEntryHeaderBytes = 1 + 4 + 8;

std::string hex(std::uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << std::setfill('0') << std::setw(16) << v;
  return out.str();
}

void put_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Flush userspace buffers AND the kernel's: after this, the bytes survive
/// power loss, not just a process kill. No-op fsync on Windows — the fleet
/// runtime is POSIX-only anyway.
void flush_to_disk(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    throw Error("journal: flush of '" + path + "' failed");
  }
#ifndef _WIN32
  if (::fsync(::fileno(file)) != 0) {
    throw Error("journal: fsync of '" + path + "' failed");
  }
#endif
}

}  // namespace

JournalContents read_journal(const std::string& path,
                             std::uint64_t expected_config_digest,
                             bool strict) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw Error("journal: cannot open '" + path + "'");
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());

  if (bytes.size() < kHeaderBytes) {
    throw InvalidArgument("journal '" + path + "': truncated header (" +
                          std::to_string(bytes.size()) + " of " +
                          std::to_string(kHeaderBytes) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    throw InvalidArgument("journal '" + path + "': bad magic");
  }
  if (bytes[4] != kJournalVersion) {
    throw InvalidArgument("journal '" + path + "': unsupported version " +
                          std::to_string(bytes[4]));
  }
  JournalContents contents;
  contents.config_digest = get_u64_le(bytes.data() + 5);
  contents.total_injections = get_u64_le(bytes.data() + 13);
  if (contents.config_digest != expected_config_digest) {
    throw InvalidArgument(
        "journal '" + path + "': campaign configuration digest mismatch (file " +
        hex(contents.config_digest) + ", campaign " +
        hex(expected_config_digest) + ") — this journal belongs to a "
        "different campaign");
  }

  std::size_t offset = kHeaderBytes;
  const auto defect = [&](const std::string& what) {
    if (strict) {
      throw InvalidArgument("journal '" + path + "': " + what);
    }
    // Crash recovery: a torn tail is expected; everything before it stands.
  };
  while (offset < bytes.size()) {
    contents.valid_bytes = offset;
    if (bytes[offset] != kEntryMarker) {
      defect("bad entry marker " + hex(bytes[offset]) + " at offset " +
             std::to_string(offset));
      return contents;
    }
    if (bytes.size() - offset < kEntryHeaderBytes) {
      defect("truncated entry header at offset " + std::to_string(offset) +
             " (" + std::to_string(bytes.size() - offset) + " of " +
             std::to_string(kEntryHeaderBytes) + " bytes)");
      return contents;
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(bytes[offset + 1 + i]) << (8 * i);
    }
    const std::uint64_t stored_digest = get_u64_le(bytes.data() + offset + 5);
    if (bytes.size() - offset - kEntryHeaderBytes < len) {
      defect("truncated entry payload at offset " + std::to_string(offset) +
             " (" + std::to_string(bytes.size() - offset - kEntryHeaderBytes) +
             " of " + std::to_string(len) + " bytes)");
      return contents;
    }
    const std::span<const std::uint8_t> payload(
        bytes.data() + offset + kEntryHeaderBytes, len);
    const std::uint64_t computed = util::fnv1a(payload);
    if (computed != stored_digest) {
      defect("entry payload digest mismatch at offset " +
             std::to_string(offset) + " (stored " + hex(stored_digest) +
             ", computed " + hex(computed) + ")");
      return contents;
    }
    try {
      util::ByteReader in(payload);
      JournalEntry entry;
      entry.start = in.varint();
      const std::uint64_t count = in.varint();
      entry.records = fi::decode_records(in, count);
      contents.entries.push_back(std::move(entry));
    } catch (const Error& e) {
      defect("undecodable entry at offset " + std::to_string(offset) + ": " +
             e.what());
      return contents;
    }
    offset += kEntryHeaderBytes + len;
  }
  contents.valid_bytes = offset;
  return contents;
}

std::vector<std::uint8_t> encode_journal_header(
    std::uint64_t config_digest, std::uint64_t total_injections) {
  std::vector<std::uint8_t> header;
  header.reserve(kHeaderBytes);
  header.insert(header.end(), kJournalMagic, kJournalMagic + 4);
  header.push_back(kJournalVersion);
  put_u64_le(header, config_digest);
  put_u64_le(header, total_injections);
  return header;
}

std::vector<std::uint8_t> encode_journal_entry(
    std::uint64_t start, const std::vector<fi::ShardRecord>& records) {
  util::ByteWriter payload;
  payload.varint(start);
  payload.varint(records.size());
  fi::encode_records(payload, records);

  const auto& body = payload.data();
  std::vector<std::uint8_t> entry;
  entry.reserve(kEntryHeaderBytes + body.size());
  entry.push_back(kEntryMarker);
  const auto len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) {
    entry.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  put_u64_le(entry, util::fnv1a(body));
  entry.insert(entry.end(), body.begin(), body.end());
  return entry;
}

JournalEntry decode_journal_entry(std::span<const std::uint8_t> entry_bytes) {
  if (entry_bytes.size() < kEntryHeaderBytes) {
    throw InvalidArgument("journal entry: truncated header (" +
                          std::to_string(entry_bytes.size()) + " of " +
                          std::to_string(kEntryHeaderBytes) + " bytes)");
  }
  if (entry_bytes[0] != kEntryMarker) {
    throw InvalidArgument("journal entry: bad marker " + hex(entry_bytes[0]));
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(entry_bytes[1 + i]) << (8 * i);
  }
  if (entry_bytes.size() - kEntryHeaderBytes != len) {
    throw InvalidArgument("journal entry: length " + std::to_string(len) +
                          " does not match the frame (" +
                          std::to_string(entry_bytes.size() -
                                         kEntryHeaderBytes) +
                          " payload bytes)");
  }
  const std::uint64_t stored_digest = get_u64_le(entry_bytes.data() + 5);
  const std::span<const std::uint8_t> payload(
      entry_bytes.data() + kEntryHeaderBytes, len);
  const std::uint64_t computed = util::fnv1a(payload);
  if (computed != stored_digest) {
    throw InvalidArgument("journal entry: payload digest mismatch (stored " +
                          hex(stored_digest) + ", computed " + hex(computed) +
                          ")");
  }
  util::ByteReader in(payload);
  JournalEntry entry;
  entry.start = in.varint();
  const std::uint64_t count = in.varint();
  entry.records = fi::decode_records(in, count);
  return entry;
}

void write_replica_journal(
    const std::string& path, std::uint64_t config_digest,
    std::uint64_t total_injections,
    const std::vector<std::vector<std::uint8_t>>& entries) {
  std::vector<std::uint8_t> bytes =
      encode_journal_header(config_digest, total_injections);
  for (const std::vector<std::uint8_t>& entry : entries) {
    bytes.insert(bytes.end(), entry.begin(), entry.end());
  }
  util::atomic_write_file(path, bytes);
}

void JournalWriter::open_for_append() {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    throw Error("journal: cannot open '" + path_ + "' for append");
  }
}

JournalWriter::JournalWriter(const std::string& path,
                             std::uint64_t config_digest,
                             std::uint64_t total_injections)
    : path_(path) {
  // Publish the header atomically (tmp + fsync + rename): a kill during
  // creation leaves either no journal or a complete empty one, never a
  // torn header a resuming coordinator would choke on.
  util::atomic_write_file(path,
                          encode_journal_header(config_digest,
                                                total_injections));
  open_for_append();
}

JournalWriter::JournalWriter(ResumeTag, const std::string& path,
                             const JournalContents& contents)
    : path_(path) {
  // Drop the torn tail, if any, before appending — the file must end at an
  // entry boundary or replay after the *next* crash would stop early.
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw Error("journal: cannot stat '" + path + "': " + ec.message());
  if (contents.valid_bytes > size) {
    throw InvalidArgument("journal '" + path + "': resume offset " +
                          std::to_string(contents.valid_bytes) +
                          " beyond file size " + std::to_string(size));
  }
  if (contents.valid_bytes < size) {
    std::filesystem::resize_file(path, contents.valid_bytes, ec);
    if (ec) {
      throw Error("journal: cannot truncate '" + path + "': " + ec.message());
    }
  }
  open_for_append();
}

JournalWriter JournalWriter::resume(const std::string& path,
                                    const JournalContents& contents) {
  return JournalWriter(ResumeTag{}, path, contents);
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : path_(std::move(other.path_)), file_(other.file_) {
  other.file_ = nullptr;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    path_ = std::move(other.path_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void JournalWriter::append(std::uint64_t start,
                           const std::vector<fi::ShardRecord>& records) {
  const std::vector<std::uint8_t> entry = encode_journal_entry(start, records);
  if (std::fwrite(entry.data(), 1, entry.size(), file_) != entry.size()) {
    throw Error("journal: write to '" + path_ + "' failed");
  }
  flush_to_disk(file_, path_);
}

}  // namespace ssresf::net
