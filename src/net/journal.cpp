#include "net/journal.h"

#include <cstring>
#include <filesystem>
#include <iomanip>
#include <sstream>

#include "util/bytes.h"
#include "util/error.h"

namespace ssresf::net {

namespace {

constexpr char kJournalMagic[4] = {'S', 'S', 'J', 'L'};
constexpr std::uint8_t kJournalVersion = 1;
constexpr std::uint8_t kEntryMarker = 0x5A;
constexpr std::size_t kHeaderBytes = 4 + 1 + 8 + 8;
constexpr std::size_t kEntryHeaderBytes = 1 + 4 + 8;

std::string hex(std::uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << std::setfill('0') << std::setw(16) << v;
  return out.str();
}

void put_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

JournalContents read_journal(const std::string& path,
                             std::uint64_t expected_config_digest,
                             bool strict) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw Error("journal: cannot open '" + path + "'");
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());

  if (bytes.size() < kHeaderBytes) {
    throw InvalidArgument("journal '" + path + "': truncated header (" +
                          std::to_string(bytes.size()) + " of " +
                          std::to_string(kHeaderBytes) + " bytes)");
  }
  if (std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    throw InvalidArgument("journal '" + path + "': bad magic");
  }
  if (bytes[4] != kJournalVersion) {
    throw InvalidArgument("journal '" + path + "': unsupported version " +
                          std::to_string(bytes[4]));
  }
  JournalContents contents;
  contents.config_digest = get_u64_le(bytes.data() + 5);
  contents.total_injections = get_u64_le(bytes.data() + 13);
  if (contents.config_digest != expected_config_digest) {
    throw InvalidArgument(
        "journal '" + path + "': campaign configuration digest mismatch (file " +
        hex(contents.config_digest) + ", campaign " +
        hex(expected_config_digest) + ") — this journal belongs to a "
        "different campaign");
  }

  std::size_t offset = kHeaderBytes;
  const auto defect = [&](const std::string& what) {
    if (strict) {
      throw InvalidArgument("journal '" + path + "': " + what);
    }
    // Crash recovery: a torn tail is expected; everything before it stands.
  };
  while (offset < bytes.size()) {
    contents.valid_bytes = offset;
    if (bytes[offset] != kEntryMarker) {
      defect("bad entry marker " + hex(bytes[offset]) + " at offset " +
             std::to_string(offset));
      return contents;
    }
    if (bytes.size() - offset < kEntryHeaderBytes) {
      defect("truncated entry header at offset " + std::to_string(offset) +
             " (" + std::to_string(bytes.size() - offset) + " of " +
             std::to_string(kEntryHeaderBytes) + " bytes)");
      return contents;
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(bytes[offset + 1 + i]) << (8 * i);
    }
    const std::uint64_t stored_digest = get_u64_le(bytes.data() + offset + 5);
    if (bytes.size() - offset - kEntryHeaderBytes < len) {
      defect("truncated entry payload at offset " + std::to_string(offset) +
             " (" + std::to_string(bytes.size() - offset - kEntryHeaderBytes) +
             " of " + std::to_string(len) + " bytes)");
      return contents;
    }
    const std::span<const std::uint8_t> payload(
        bytes.data() + offset + kEntryHeaderBytes, len);
    const std::uint64_t computed = util::fnv1a(payload);
    if (computed != stored_digest) {
      defect("entry payload digest mismatch at offset " +
             std::to_string(offset) + " (stored " + hex(stored_digest) +
             ", computed " + hex(computed) + ")");
      return contents;
    }
    try {
      util::ByteReader in(payload);
      JournalEntry entry;
      entry.start = in.varint();
      const std::uint64_t count = in.varint();
      entry.records = fi::decode_records(in, count);
      contents.entries.push_back(std::move(entry));
    } catch (const Error& e) {
      defect("undecodable entry at offset " + std::to_string(offset) + ": " +
             e.what());
      return contents;
    }
    offset += kEntryHeaderBytes + len;
  }
  contents.valid_bytes = offset;
  return contents;
}

JournalWriter::JournalWriter(const std::string& path,
                             std::uint64_t config_digest,
                             std::uint64_t total_injections)
    : path_(path) {
  file_.open(path, std::ios::binary | std::ios::trunc);
  if (!file_) throw Error("journal: cannot create '" + path + "'");
  std::vector<std::uint8_t> header;
  header.reserve(kHeaderBytes);
  header.insert(header.end(), kJournalMagic, kJournalMagic + 4);
  header.push_back(kJournalVersion);
  put_u64_le(header, config_digest);
  put_u64_le(header, total_injections);
  file_.write(reinterpret_cast<const char*>(header.data()),
              static_cast<std::streamsize>(header.size()));
  file_.flush();
  if (!file_) throw Error("journal: write to '" + path + "' failed");
}

JournalWriter::JournalWriter(ResumeTag, const std::string& path,
                             const JournalContents& contents)
    : path_(path) {
  // Drop the torn tail, if any, before appending — the file must end at an
  // entry boundary or replay after the *next* crash would stop early.
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw Error("journal: cannot stat '" + path + "': " + ec.message());
  if (contents.valid_bytes > size) {
    throw InvalidArgument("journal '" + path + "': resume offset " +
                          std::to_string(contents.valid_bytes) +
                          " beyond file size " + std::to_string(size));
  }
  if (contents.valid_bytes < size) {
    std::filesystem::resize_file(path, contents.valid_bytes, ec);
    if (ec) {
      throw Error("journal: cannot truncate '" + path + "': " + ec.message());
    }
  }
  file_.open(path, std::ios::binary | std::ios::app);
  if (!file_) throw Error("journal: cannot reopen '" + path + "'");
}

JournalWriter JournalWriter::resume(const std::string& path,
                                    const JournalContents& contents) {
  return JournalWriter(ResumeTag{}, path, contents);
}

void JournalWriter::append(std::uint64_t start,
                           const std::vector<fi::ShardRecord>& records) {
  util::ByteWriter payload;
  payload.varint(start);
  payload.varint(records.size());
  fi::encode_records(payload, records);

  const auto& body = payload.data();
  std::vector<std::uint8_t> entry;
  entry.reserve(kEntryHeaderBytes + body.size());
  entry.push_back(kEntryMarker);
  const auto len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) {
    entry.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  put_u64_le(entry, util::fnv1a(body));
  entry.insert(entry.end(), body.begin(), body.end());

  file_.write(reinterpret_cast<const char*>(entry.data()),
              static_cast<std::streamsize>(entry.size()));
  file_.flush();
  if (!file_) throw Error("journal: write to '" + path_ + "' failed");
}

}  // namespace ssresf::net
