#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "net/protocol.h"
#include "util/socket.h"

namespace ssresf::net {

/// Deterministic coordinator election, run by the workers themselves when
/// the head node dies and no standby exists.
///
/// Ingredients, all exchanged over the normal transport while the
/// coordinator is still alive:
///  - every election-capable worker runs a PeerService: a tiny listener
///    answering kPeerQuery with kPeerInfo (phase, epoch, candidacy);
///  - its port rides in kHello, and the coordinator broadcasts the roster
///    of (worker_id, host, peer_port) via kPeers on every membership change;
///  - the dispatch journal is live-replicated to every worker as
///    kJournalSync frames, so each holds a replayable prefix of dispatch
///    state next to the golden bundle it already caches by config digest.
///
/// When a worker's session is lost past election_timeout, it queries the
/// roster. If any peer already follows (or is) a coordinator at a HIGHER
/// epoch, it defers and reconnects there. Otherwise the winner is the
/// lowest worker id among the candidates — peers that hold the golden
/// bundle and an intact journal replica (every reachable candidate computes
/// the same winner from the same roster, no negotiation round needed). The
/// winner bumps the epoch, persists its replica as the new journal, replays
/// it through the tolerant reader (re-queuing only unfilled runs — in
/// particular the un-mirrored tail batches that died with the primary), and
/// serves; losers poll the winner's peer port until it reports kPromoted,
/// then join as ordinary workers via the PR 6 retry ladder.
///
/// Split-brain is impossible by construction: the epoch is bound into the
/// handshake MAC (net/auth.h), so a deposed primary returning from the dead
/// fails every worker's challenge check and is rejected, not followed.

/// Answers kPeerQuery on a dedicated listener for the lifetime of a Worker.
/// The worker thread publishes its state through the setters; the service
/// thread serves snapshots under the same mutex — no shared state is ever
/// touched unlocked (the election tests run under TSan).
class PeerService {
 public:
  /// Binds the listener (port 0 = ephemeral; read back via port()) and
  /// starts the service thread.
  PeerService(std::uint64_t worker_id, std::uint16_t port, bool loopback_only);
  ~PeerService();

  PeerService(const PeerService&) = delete;
  PeerService& operator=(const PeerService&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// In a live session with the coordinator at host:port (host "" = not
  /// shareable, e.g. learned over AF_UNIX). Keeps epoch current so late
  /// electors can follow this pointer instead of re-electing.
  void set_serving(std::uint64_t epoch, const std::string& coordinator_host,
                   std::uint16_t coordinator_port);
  /// Session lost; the stale coordinator pointer is withdrawn immediately
  /// so peers cannot chase it mid-election.
  void set_lost();
  void set_electing();
  /// Won the election: serving the campaign ourselves at `port` (host is
  /// reported empty = "where you reached me").
  void set_promoted(std::uint64_t epoch, std::uint16_t coordinator_port);
  /// Candidacy inputs, refreshed as kJournalSync frames land.
  void set_candidacy(bool has_bundle, std::uint64_t replica_entries);

  [[nodiscard]] PeerInfoMsg snapshot() const;

 private:
  void serve_loop();

  util::ListenSocket listener_;
  mutable std::mutex mutex_;
  PeerInfoMsg info_;
  bool stop_ = false;  // guarded by mutex_
  std::thread thread_;
};

/// One kPeerQuery round trip: connect, ask, decode. Returns nullopt when
/// the peer is unreachable, times out, or answers garbage — an unreachable
/// peer is simply not a candidate this round, never an error.
[[nodiscard]] std::optional<PeerInfoMsg> query_peer(
    const std::string& host, std::uint16_t port, std::uint64_t asking_worker_id,
    double timeout_seconds);

}  // namespace ssresf::net
