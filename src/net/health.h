#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "net/protocol.h"

namespace ssresf::net {

/// Fleet health telemetry: the coordinator feeds every connect and heartbeat
/// into a FleetMonitor, which maintains per-worker counters plus an online
/// mean/variance (Welford) of per-chunk simulation time, and quarantines
/// workers that misbehave:
///
///   - kDigestMismatch: the heartbeat's records digest disagrees with what
///     the coordinator actually accepted — the worker's view of its own
///     output is wrong, so none of its future output can be trusted.
///   - kFlapping: reconnected more times than the flap limit — likely
///     crash-looping; its chunks are better spent elsewhere.
///   - kSlow: mean chunk time is a z-score outlier against the rest of the
///     fleet (each candidate is judged against the *other* workers'
///     accumulators, merged by Chan's parallel-variance formula — including
///     the candidate's own samples would inflate the variance and hide it).
///
/// Quarantine is an admission decision, not a correctness one: records
/// already accepted from a worker stay (determinism makes them as good as
/// anyone's); the worker is dropped and refused at its next hello. Two
/// liveness guards keep an aggressive detector from stalling the campaign:
/// the monitor never quarantines the last *connected* healthy worker
/// (workers that died without being quarantined must not count — they
/// cannot do any work), and a quarantined worker that reconnects while no
/// connected healthy worker exists is paroled rather than refused — a
/// degraded fleet that still finishes beats a pristine one that stalls.
struct HealthOptions {
  /// Reconnects (beyond the first connect) tolerated before kFlapping.
  int flap_limit = 5;
  /// z-score beyond which a worker's mean chunk time is an outlier.
  double sigma_limit = 4.0;
  /// Minimum per-chunk samples from the *rest* of the fleet before the
  /// slow-worker detector can fire (a z-score against two samples is noise).
  int min_fleet_samples = 8;
  /// Minimum samples from the candidate itself.
  int min_worker_samples = 2;
};

enum class QuarantineReason : std::uint8_t {
  kNone = 0,
  kDigestMismatch = 1,
  kFlapping = 2,
  kSlow = 3,
};

[[nodiscard]] const char* to_string(QuarantineReason reason);

struct WorkerHealth {
  std::uint64_t worker_id = 0;
  std::uint64_t connects = 0;
  std::uint64_t chunks = 0;
  std::uint64_t records = 0;
  double total_seconds = 0.0;
  /// Live TCP session right now (set on admitted connect, cleared by
  /// on_disconnect). The last-healthy guard counts only connected workers.
  bool connected = false;
  // Welford accumulator over per-chunk simulation seconds.
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;
  QuarantineReason reason = QuarantineReason::kNone;

  [[nodiscard]] bool quarantined() const {
    return reason != QuarantineReason::kNone;
  }
};

class FleetMonitor {
 public:
  explicit FleetMonitor(HealthOptions options = {});

  /// Registers a (re)connect. Returns false when the worker is quarantined —
  /// the coordinator must refuse it at hello — either from before or because
  /// this very connect crossed the flap limit. Exception: a quarantined
  /// worker reconnecting while no connected healthy worker exists is paroled
  /// (its quarantine is cleared and it is admitted) — refusing the only
  /// candidate would stall the campaign forever.
  [[nodiscard]] bool on_connect(std::uint64_t worker_id);

  /// Registers that a worker's session ended (clean or not). A disconnected
  /// worker keeps its history and its quarantine, but no longer counts
  /// toward the last-healthy guard.
  void on_disconnect(std::uint64_t worker_id);

  /// Feeds one heartbeat. `accepted_records_digest` is the FNV-1a of the
  /// last kRecords payload the coordinator accepted from this worker (0 when
  /// none was). Returns the reason applied *by this call*, kNone when the
  /// worker stays healthy.
  [[nodiscard]] QuarantineReason on_heartbeat(
      const HeartbeatMsg& heartbeat, std::uint64_t accepted_records_digest);

  [[nodiscard]] bool quarantined(std::uint64_t worker_id) const;
  [[nodiscard]] std::size_t healthy_count() const;
  [[nodiscard]] const std::map<std::uint64_t, WorkerHealth>& workers() const {
    return workers_;
  }

  /// Human-readable fleet table (`ssresf serve --fleet-status`).
  [[nodiscard]] std::string status_table() const;

 private:
  /// Applies `reason` unless this is the last connected healthy worker.
  /// Returns whether the quarantine took effect.
  bool try_quarantine(WorkerHealth& worker, QuarantineReason reason);

  [[nodiscard]] std::size_t connected_healthy_count() const;

  HealthOptions options_;
  std::map<std::uint64_t, WorkerHealth> workers_;
};

}  // namespace ssresf::net
