#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace ssresf::net {

/// Admission control of the fleet transport: an HMAC-style keyed MAC over
/// the handshake parameters, built on the same FNV-1a-64 the rest of the
/// distribution layer uses. The coordinator and every worker share a
/// scenario secret; the hello/challenge exchange proves — in both
/// directions — that the peer holds it, bound to the protocol version, the
/// campaign-config digest, and a per-connection nonce, so a stray worker,
/// a stale binary, or a replayed handshake can never join and corrupt a
/// campaign.
///
/// This is integrity/admission control, NOT confidentiality: frames travel
/// in plaintext and FNV-1a is not a cryptographic hash. An attacker who can
/// read the wire can recover enough to forge; the threat model is
/// misconfiguration and accidental cross-campaign joins on a trusted
/// network. TLS stays future work (see README "Fleet fault tolerance").

/// HMAC construction (ipad/opad over a 64-byte block) with FNV-1a-64 as the
/// underlying hash. Keys longer than the block are pre-hashed, like HMAC.
[[nodiscard]] std::uint64_t hmac64(std::string_view secret,
                                   std::span<const std::uint8_t> message);

/// The MAC each side presents: hmac64(secret, version || config_digest ||
/// epoch || nonce), where `nonce` is the challenge the *verifying* side
/// issued. The worker proves itself over the coordinator's nonce and vice
/// versa, so one side's proof cannot be replayed as the other's. `epoch` is
/// the election epoch (net/election.h): binding it into the MAC is the
/// split-brain guard — a deposed coordinator resuming at a stale epoch
/// computes stale MACs, so every surviving worker rejects it at the
/// handshake and the fleet can never serve two masters.
[[nodiscard]] std::uint64_t handshake_mac(std::string_view secret,
                                          std::uint8_t protocol_version,
                                          std::uint64_t config_digest,
                                          std::uint64_t epoch,
                                          std::uint64_t nonce);

/// A fresh per-connection nonce. Not part of any record-affecting path, so
/// it draws from wall clock + a process-local counter rather than a seeded
/// stream — two handshakes never see the same nonce.
[[nodiscard]] std::uint64_t fresh_nonce();

}  // namespace ssresf::net
