#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "net/chaos.h"
#include "net/coordinator.h"
#include "net/election.h"
#include "net/protocol.h"
#include "radiation/soft_error_db.h"
#include "util/error.h"

namespace ssresf::net {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int threads = 1;  // execution threads inside this worker process
  int lanes = 64;   // packed-engine lane width (64 | 256); execution-only
  /// Retry window for each connect (covers the worker-starts-before-
  /// coordinator race of a parallel launch, and a coordinator restart).
  double connect_timeout_seconds = 10.0;
  /// Shared scenario secret of the authenticated handshake ("" = open
  /// fleet; both sides must agree — the MAC covers the secret either way).
  std::string secret;
  /// Stable identity across reconnects (the coordinator's health/quarantine
  /// key AND the election tiebreak: the lowest id among capable candidates
  /// wins). 0 derives a fresh unique id at construction.
  std::uint64_t worker_id = 0;
  /// Consecutive failed sessions tolerated before run() gives up. A session
  /// that makes progress (completes at least one chunk) resets the count.
  int max_reconnect_attempts = 8;
  /// Exponential backoff between reconnect attempts: delay =
  /// min(cap, base * 2^(attempt-1)), scaled by deterministic jitter drawn
  /// from Rng::from_stream(worker_id, attempt).
  double backoff_base_seconds = 0.05;
  double backoff_cap_seconds = 2.0;

  // --- automatic failover (net/election.h) --------------------------------
  /// How long a lost coordinator is tolerated before this worker runs an
  /// election round instead of another reconnect. 0 disables elections
  /// entirely (the PR 6 behavior: retry the ladder, then give up). With a
  /// positive timeout the worker binds a peer-query listener, announces it
  /// in kHello, and mirrors the dispatch journal from kJournalSync frames.
  double election_timeout_seconds = 0.0;
  /// Peer-query listener port (0 = ephemeral) and its bind scope.
  std::uint16_t peer_port = 0;
  bool peer_loopback_only = true;
  /// Host other fleet members should dial to reach this worker's peer
  /// listener, announced in kHello (--advertise-addr). Empty (default): the
  /// coordinator derives the host from the hello connection's peer address,
  /// which only works when workers are mutually reachable at that address.
  /// Setting this also widens the peer listener bind from loopback to all
  /// interfaces — an advertised address must actually be dialable.
  std::string advertise_host;
  /// Budget of one peer-query round trip during an election round.
  double peer_timeout_seconds = 1.0;
  /// Where a promoted worker persists its replica as the new journal
  /// ("" = "<tmp>/ssresf_promoted_<worker_id>.ssjl").
  std::string promote_journal_path;
  /// Listener of the promoted coordinator (0 = ephemeral) and bind scope.
  std::uint16_t promote_port = 0;
  bool promote_loopback_only = true;
  /// Dispatch knobs a promoted coordinator serves with (chunk 0 = auto).
  std::uint64_t promote_chunk_injections = 0;
  double promote_worker_timeout_seconds = 120.0;
  double promote_frame_deadline_seconds = 30.0;
  /// The election epoch this worker believes current at start. A worker
  /// that lived through elections tracks the epoch automatically; the knob
  /// exists for standbys/tools joining a post-election fleet (and tests).
  std::uint64_t initial_epoch = 0;

  /// Test hook: disconnect cleanly after completing this many work items
  /// (0 = unlimited). Exercises the coordinator's late-leaver path.
  std::uint64_t max_chunks = 0;
  /// Test hook: after completing this many work items, accept the next one
  /// and vanish without replying — the deterministic stand-in for a worker
  /// killed mid-chunk. UINT64_MAX disables.
  std::uint64_t defect_after_chunks = UINT64_MAX;
  /// Test hook: fault-injection schedule applied at this worker's
  /// frame-send seam (non-owning; see net/chaos.h). Faulted connections go
  /// through the normal reconnect path.
  ChaosSchedule* chaos = nullptr;
  /// Test hook: report this value as every heartbeat's per-chunk seconds
  /// instead of the measured time (negative = measure). Drives the
  /// slow-worker detector deterministically.
  double chunk_seconds_override = -1.0;
  /// Test hook: corrupt the heartbeat's records digest — the coordinator's
  /// health monitor must quarantine this worker.
  bool corrupt_heartbeat_digest = false;
  bool verbose = false;
};

/// A coordinator-issued rejection (kError frame) or an authentication
/// failure: wrong secret, quarantined worker id, digest mismatch. Final —
/// the resilience loop never retries these; reconnecting cannot fix it.
class WorkerRejected : public Error {
 public:
  using Error::Error;
};

/// A coordinator whose challenge carries an election epoch older than what
/// this worker has lived through: a deposed primary back from the dead.
/// With elections enabled the worker abandons the endpoint and re-enters
/// discovery (the campaign lives elsewhere); with them disabled it is as
/// final as any other rejection.
class StaleCoordinator : public WorkerRejected {
 public:
  using WorkerRejected::WorkerRejected;
};

/// The deterministic backoff schedule (exposed for tests): delay for the
/// `attempt`-th consecutive failure (attempt >= 1), jittered into
/// [0.5, 1.0) x the exponential value via Rng::from_stream(worker_id,
/// attempt) — every worker backs off differently (no thundering herd), yet
/// identically across runs.
[[nodiscard]] double reconnect_backoff_seconds(std::uint64_t worker_id,
                                               int attempt, double base,
                                               double cap);

/// Campaign worker of the socket transport: connects, proves itself through
/// the mutual hello/challenge handshake (net/auth.h), receives the campaign
/// spec + golden bundle, rebuilds (model, config) locally and cross-checks
/// the coordinator's FNV-1a config digest, then pulls work items and streams
/// records + heartbeat telemetry back until shutdown.
///
/// Resilience: a lost connection (coordinator restart, chaos fault, network
/// drop) is not fatal — the worker reconnects with bounded exponential
/// backoff and re-runs the handshake; its campaign prep is cached by config
/// digest, so resuming costs a handshake, not a rebuild. A kReconnect frame
/// redirects it to a standby coordinator immediately. Only a protocol-level
/// rejection (kError frame, auth failure, digest mismatch) is fatal.
///
/// Self-healing (election_timeout_seconds > 0): the worker also mirrors the
/// coordinator's dispatch journal (kJournalSync) and serves peer queries.
/// Once the coordinator has been gone past the election timeout, the fleet
/// elects the lowest-id worker holding the golden bundle + an intact
/// replica; the winner persists its replica, promotes itself to coordinator
/// at epoch+1 (see net/election.h), and rejoins its own campaign as a
/// worker so no capacity is lost. Losers discover the new head via peer
/// queries and reconnect. Worker::run() then returns normally; the merged
/// campaign result of a promoted worker is available via promoted_result().
class Worker {
 public:
  Worker(const radiation::SoftErrorDatabase& database, WorkerOptions options);
  ~Worker();

  [[nodiscard]] std::uint64_t worker_id() const { return options_.worker_id; }

  /// Runs sessions until the campaign shuts down cleanly. Returns the number
  /// of injection records produced across all sessions. Throws on auth
  /// failure, protocol violations, a campaign digest mismatch, or when
  /// max_reconnect_attempts consecutive sessions fail without progress
  /// (and, with elections enabled, no election round found a leader).
  std::uint64_t run();

  /// True when this worker won an election and served the campaign's tail
  /// as its coordinator.
  [[nodiscard]] bool promoted() const { return promoted_coordinator_ != nullptr; }

  /// The merged campaign result, present after run() iff promoted(): the
  /// elected worker is the fleet's exit point, so ITS process can emit the
  /// final CSV exactly as the dead coordinator's would have.
  [[nodiscard]] const std::optional<fi::CampaignResult>& promoted_result()
      const {
    return promoted_result_;
  }

 private:
  struct SessionState;
  enum class SessionEnd { kShutdown, kRedirect, kLost, kBudget };
  enum class ElectionOutcome { kPromoted, kFollow, kRetry };
  SessionEnd run_session(SessionState& state, std::string& host,
                         std::uint16_t& port, double connect_timeout);
  ElectionOutcome run_election(SessionState& state, std::string& host,
                               std::uint16_t& port);
  void promote(SessionState& state, std::string& host, std::uint16_t& port);
  std::uint64_t run_inner();
  void join_promoted();

  const radiation::SoftErrorDatabase& db_;
  WorkerOptions options_;
  std::unique_ptr<PeerService> peers_;
  std::unique_ptr<SessionState> state_;
  /// Present after a won election: the coordinator this worker became. It
  /// runs on its own thread while the worker loop rejoins the campaign as
  /// an ordinary (self-connected) worker.
  std::unique_ptr<Coordinator> promoted_coordinator_;
  std::thread promoted_thread_;
  std::optional<fi::CampaignResult> promoted_result_;
  std::string promoted_error_;
};

}  // namespace ssresf::net
