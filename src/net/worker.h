#pragma once

#include <cstdint>
#include <string>

#include "net/protocol.h"
#include "radiation/soft_error_db.h"

namespace ssresf::net {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int threads = 1;  // execution threads inside this worker process
  /// Retry window for the initial connect (covers the worker-starts-before-
  /// coordinator race of a parallel launch).
  double connect_timeout_seconds = 10.0;
  /// Test hook: disconnect cleanly after completing this many work items
  /// (0 = unlimited). Exercises the coordinator's late-leaver path.
  std::uint64_t max_chunks = 0;
  /// Test hook: after completing this many work items, accept the next one
  /// and vanish without replying — the deterministic stand-in for a worker
  /// killed mid-chunk. UINT64_MAX disables.
  std::uint64_t defect_after_chunks = UINT64_MAX;
  bool verbose = false;
};

/// Campaign worker of the socket transport: connects, receives the campaign
/// spec + golden bundle, rebuilds (model, config) locally and cross-checks
/// the coordinator's FNV-1a config digest, then pulls work items and streams
/// records back until shutdown. The shipped bundle means a worker performs
/// no golden simulation at all — planning is simulation-free and every
/// checkpoint rung arrives as a sim/state_codec frame.
class Worker {
 public:
  Worker(const radiation::SoftErrorDatabase& database, WorkerOptions options);

  /// Runs one session to completion. Returns the number of injection records
  /// produced. Throws on connection failure, protocol violations, or a
  /// campaign digest mismatch.
  std::uint64_t run();

 private:
  const radiation::SoftErrorDatabase& db_;
  WorkerOptions options_;
};

}  // namespace ssresf::net
