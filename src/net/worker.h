#pragma once

#include <cstdint>
#include <string>

#include "net/chaos.h"
#include "net/protocol.h"
#include "radiation/soft_error_db.h"
#include "util/error.h"

namespace ssresf::net {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int threads = 1;  // execution threads inside this worker process
  /// Retry window for each connect (covers the worker-starts-before-
  /// coordinator race of a parallel launch, and a coordinator restart).
  double connect_timeout_seconds = 10.0;
  /// Shared scenario secret of the authenticated handshake ("" = open
  /// fleet; both sides must agree — the MAC covers the secret either way).
  std::string secret;
  /// Stable identity across reconnects (the coordinator's health/quarantine
  /// key). 0 derives a fresh unique id at construction.
  std::uint64_t worker_id = 0;
  /// Consecutive failed sessions tolerated before run() gives up. A session
  /// that makes progress (completes at least one chunk) resets the count.
  int max_reconnect_attempts = 8;
  /// Exponential backoff between reconnect attempts: delay =
  /// min(cap, base * 2^(attempt-1)), scaled by deterministic jitter drawn
  /// from Rng::from_stream(worker_id, attempt).
  double backoff_base_seconds = 0.05;
  double backoff_cap_seconds = 2.0;
  /// Test hook: disconnect cleanly after completing this many work items
  /// (0 = unlimited). Exercises the coordinator's late-leaver path.
  std::uint64_t max_chunks = 0;
  /// Test hook: after completing this many work items, accept the next one
  /// and vanish without replying — the deterministic stand-in for a worker
  /// killed mid-chunk. UINT64_MAX disables.
  std::uint64_t defect_after_chunks = UINT64_MAX;
  /// Test hook: fault-injection schedule applied at this worker's
  /// frame-send seam (non-owning; see net/chaos.h). Faulted connections go
  /// through the normal reconnect path.
  ChaosSchedule* chaos = nullptr;
  /// Test hook: report this value as every heartbeat's per-chunk seconds
  /// instead of the measured time (negative = measure). Drives the
  /// slow-worker detector deterministically.
  double chunk_seconds_override = -1.0;
  /// Test hook: corrupt the heartbeat's records digest — the coordinator's
  /// health monitor must quarantine this worker.
  bool corrupt_heartbeat_digest = false;
  bool verbose = false;
};

/// A coordinator-issued rejection (kError frame) or an authentication
/// failure: wrong secret, quarantined worker id, digest mismatch. Final —
/// the resilience loop never retries these; reconnecting cannot fix them.
class WorkerRejected : public Error {
 public:
  using Error::Error;
};

/// The deterministic backoff schedule (exposed for tests): delay for the
/// `attempt`-th consecutive failure (attempt >= 1), jittered into
/// [0.5, 1.0) x the exponential value via Rng::from_stream(worker_id,
/// attempt) — every worker backs off differently (no thundering herd), yet
/// identically across runs.
[[nodiscard]] double reconnect_backoff_seconds(std::uint64_t worker_id,
                                               int attempt, double base,
                                               double cap);

/// Campaign worker of the socket transport: connects, proves itself through
/// the mutual hello/challenge handshake (net/auth.h), receives the campaign
/// spec + golden bundle, rebuilds (model, config) locally and cross-checks
/// the coordinator's FNV-1a config digest, then pulls work items and streams
/// records + heartbeat telemetry back until shutdown.
///
/// Resilience: a lost connection (coordinator restart, chaos fault, network
/// drop) is not fatal — the worker reconnects with bounded exponential
/// backoff and re-runs the handshake; its campaign prep is cached by config
/// digest, so resuming costs a handshake, not a rebuild. A kReconnect frame
/// redirects it to a standby coordinator immediately. Only a protocol-level
/// rejection (kError frame, auth failure, digest mismatch) is fatal.
class Worker {
 public:
  Worker(const radiation::SoftErrorDatabase& database, WorkerOptions options);

  [[nodiscard]] std::uint64_t worker_id() const { return options_.worker_id; }

  /// Runs sessions until the campaign shuts down cleanly. Returns the number
  /// of injection records produced across all sessions. Throws on auth
  /// failure, protocol violations, a campaign digest mismatch, or when
  /// max_reconnect_attempts consecutive sessions fail without progress.
  std::uint64_t run();

 private:
  struct SessionState;
  enum class SessionEnd { kShutdown, kRedirect, kLost, kBudget };
  SessionEnd run_session(SessionState& state, std::string& host,
                         std::uint16_t& port);

  const radiation::SoftErrorDatabase& db_;
  WorkerOptions options_;
};

}  // namespace ssresf::net
