#include "util/socket.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/error.h"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace ssresf::util {

#ifndef _WIN32

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Socket::~Socket() { close(); }

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(const void* data, std::size_t n) {
  if (fd_ < 0) throw Error("socket: send on closed socket");
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a peer killed mid-campaign must surface as an error
    // return, not a process-terminating SIGPIPE.
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw_errno("socket: send failed");
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
}

bool Socket::recv_all(void* data, std::size_t n) {
  if (fd_ < 0) throw Error("socket: recv on closed socket");
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("socket: recv failed");
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a message boundary
      throw Error("socket: connection closed mid-message (" +
                  std::to_string(got) + " of " + std::to_string(n) +
                  " bytes)");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

std::size_t Socket::recv_some(void* data, std::size_t n) {
  if (fd_ < 0) throw Error("socket: recv on closed socket");
  ssize_t r;
  do {
    r = ::recv(fd_, data, n, 0);
  } while (r < 0 && errno == EINTR);
  if (r < 0) throw_errno("socket: recv failed");
  return static_cast<std::size_t>(r);
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

bool Socket::wait_readable(int timeout_ms) const {
  struct pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  int r;
  do {
    r = ::poll(&pfd, 1, timeout_ms);
  } while (r < 0 && errno == EINTR);
  if (r < 0) throw_errno("socket: poll failed");
  return r > 0;
}

std::string Socket::peer_host() const {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (fd_ < 0 ||
      ::getpeername(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      addr.ss_family != AF_INET) {
    return "";
  }
  char buf[INET_ADDRSTRLEN] = {};
  const auto* in = reinterpret_cast<const sockaddr_in*>(&addr);
  if (::inet_ntop(AF_INET, &in->sin_addr, buf, sizeof(buf)) == nullptr) {
    return "";
  }
  return buf;
}

std::pair<Socket, Socket> Socket::pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw_errno("socket: socketpair failed");
  }
  return {Socket(fds[0]), Socket(fds[1])};
}

ListenSocket::ListenSocket(std::uint16_t port, bool loopback_only) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket: cannot create listen socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("socket: cannot bind port " + std::to_string(port));
  }
  if (::listen(fd_, 64) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("socket: listen failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("socket: getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

ListenSocket::~ListenSocket() { close(); }

void ListenSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket ListenSocket::accept() {
  int client;
  do {
    client = ::accept(fd_, nullptr, nullptr);
  } while (client < 0 && errno == EINTR);
  if (client < 0) throw_errno("socket: accept failed");
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(client);
}

Socket connect_to(const std::string& host, std::uint16_t port,
                  double timeout_seconds) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int gai =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (gai != 0 || res == nullptr) {
    throw Error("socket: cannot resolve '" + host +
                "': " + ::gai_strerror(gai));
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  int last_errno = 0;
  for (;;) {
    for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
      const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        ::freeaddrinfo(res);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return Socket(fd);
      }
      last_errno = errno;
      ::close(fd);
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    // The coordinator may not be listening yet (worker spawned first).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ::freeaddrinfo(res);
  throw Error("socket: cannot connect to " + host + ":" +
              std::to_string(port) + " within " +
              std::to_string(timeout_seconds) +
              "s: " + std::strerror(last_errno));
}

std::vector<bool> poll_readable(const std::vector<int>& fds, int timeout_ms) {
  std::vector<struct pollfd> pfds;
  pfds.reserve(fds.size());
  for (const int fd : fds) {
    struct pollfd pfd{};
    pfd.fd = fd;  // poll ignores negative fds, matching "skip" semantics
    pfd.events = POLLIN;
    pfds.push_back(pfd);
  }
  int r;
  do {
    r = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (r < 0 && errno == EINTR);
  if (r < 0) throw_errno("socket: poll failed");
  std::vector<bool> ready(fds.size(), false);
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    ready[i] = (pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0;
  }
  return ready;
}

#else  // _WIN32

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
Socket& Socket::operator=(Socket&& other) noexcept {
  fd_ = other.fd_;
  other.fd_ = -1;
  return *this;
}
Socket::~Socket() = default;
void Socket::close() {}
void Socket::send_all(const void*, std::size_t) {
  throw Error("socket: not supported on this platform");
}
bool Socket::recv_all(void*, std::size_t) {
  throw Error("socket: not supported on this platform");
}
std::size_t Socket::recv_some(void*, std::size_t) {
  throw Error("socket: not supported on this platform");
}
bool Socket::wait_readable(int) const {
  throw Error("socket: not supported on this platform");
}
void Socket::shutdown_write() {}
std::string Socket::peer_host() const { return ""; }
std::pair<Socket, Socket> Socket::pair() {
  throw Error("socket: not supported on this platform");
}
ListenSocket::ListenSocket(std::uint16_t, bool) {
  throw Error("socket: not supported on this platform");
}
ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}
ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  fd_ = other.fd_;
  port_ = other.port_;
  other.fd_ = -1;
  return *this;
}
ListenSocket::~ListenSocket() = default;
void ListenSocket::close() {}
Socket ListenSocket::accept() {
  throw Error("socket: not supported on this platform");
}
Socket connect_to(const std::string&, std::uint16_t, double) {
  throw Error("socket: not supported on this platform");
}
std::vector<bool> poll_readable(const std::vector<int>&, int) {
  throw Error("socket: not supported on this platform");
}

#endif

}  // namespace ssresf::util
