#include "util/subprocess.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.h"

#ifndef _WIN32
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace ssresf::util {

#ifndef _WIN32

Subprocess::Subprocess(std::vector<std::string> argv) {
  if (argv.empty()) throw InvalidArgument("Subprocess: empty argv");
  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (std::string& arg : argv) c_argv.push_back(arg.data());
  c_argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw Error(std::string("Subprocess: fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::execvp(c_argv[0], c_argv.data());
    // Only reached when exec failed; report via the conventional exit code.
    ::perror("ssresf: execvp");
    ::_exit(127);
  }
  pid_ = pid;
}

int Subprocess::wait() {
  if (pid_ > 0) {
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(static_cast<pid_t>(pid_), &status, 0);
    } while (r < 0 && errno == EINTR);
    pid_ = -1;
    if (r < 0) {
      exit_code_ = -1;
    } else if (WIFEXITED(status)) {
      exit_code_ = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      exit_code_ = 128 + WTERMSIG(status);
    } else {
      exit_code_ = -1;
    }
  }
  return exit_code_;
}

void Subprocess::terminate() {
  if (pid_ > 0) ::kill(static_cast<pid_t>(pid_), SIGKILL);
}

#else  // _WIN32

Subprocess::Subprocess(std::vector<std::string>) {
  throw Error("Subprocess: not supported on this platform");
}

int Subprocess::wait() { return exit_code_; }

void Subprocess::terminate() {}

#endif

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      exit_code_(std::exchange(other.exit_code_, -1)) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    wait();
    pid_ = std::exchange(other.pid_, -1);
    exit_code_ = std::exchange(other.exit_code_, -1);
  }
  return *this;
}

Subprocess::~Subprocess() { wait(); }

int Subprocess::run(std::vector<std::string> argv) {
  return Subprocess(std::move(argv)).wait();
}

}  // namespace ssresf::util
