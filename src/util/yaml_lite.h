#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ssresf::util {

/// A small YAML subset sufficient for the SSRESF soft-error database format
/// (Fig. 3 of the paper): block maps, block lists ("- " items), flow lists of
/// scalars ("[D, CK, Q, QN]"), and scalars. Comments start with '#'.
///
/// This is intentionally not a general YAML implementation — no anchors,
/// multi-line scalars, or type tags — but it parses and re-emits the exact
/// schema the paper's database uses, and rejects malformed input with
/// ParseError carrying the line number.
class YamlNode {
 public:
  enum class Kind { kScalar, kList, kMap };

  YamlNode() : kind_(Kind::kScalar) {}
  static YamlNode scalar(std::string value);
  static YamlNode list();
  static YamlNode map();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_scalar() const { return kind_ == Kind::kScalar; }
  [[nodiscard]] bool is_list() const { return kind_ == Kind::kList; }
  [[nodiscard]] bool is_map() const { return kind_ == Kind::kMap; }

  // --- scalar access -------------------------------------------------------
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] long long as_int() const;

  // --- list access ---------------------------------------------------------
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const YamlNode& at(std::size_t index) const;
  void push_back(YamlNode child);

  // --- map access (ordered) ------------------------------------------------
  [[nodiscard]] bool has(std::string_view key) const;
  [[nodiscard]] const YamlNode& at(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, YamlNode>>& entries()
      const;
  void set(std::string key, YamlNode value);

  /// Parse a document. Throws ParseError on malformed input.
  static YamlNode parse(std::string_view text);

  /// Serialize back to text in the same subset.
  [[nodiscard]] std::string dump() const;

 private:
  Kind kind_;
  std::string scalar_;
  std::vector<YamlNode> list_;
  std::vector<std::pair<std::string, YamlNode>> map_;

  void dump_into(std::string& out, int indent) const;
};

}  // namespace ssresf::util
