#include "util/thread_pool.h"

#include <algorithm>

namespace ssresf::util {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  std::packaged_task<void()> task(std::move(job));
  std::future<void> future = task.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(std::move(task));
  }
  work_ready_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping and drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();  // exceptions land in the job's future
  }
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace ssresf::util
