#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace ssresf::util {

/// Crash-safe whole-file publication: the bytes land at `path` atomically,
/// or not at all. The write goes to `path + ".tmp"`, is flushed to stable
/// storage (fsync), and only then renamed over the final path — POSIX
/// rename() replaces the destination atomically, so a reader (or a process
/// killed at ANY instant, power loss included) observes either the complete
/// old file or the complete new file at `path`, never a torn mixture. The
/// directory is fsynced after the rename so the publication itself survives
/// power loss too.
///
/// Every on-disk artifact the pipeline persists (.ssfs shards, .ssgb golden
/// bundles, .ssmd/.ssds model/dataset bundles, the .ssjl journal header)
/// goes through this helper: the strict readers may reject a *stale* file
/// after a crash, but never a torn one.
///
/// `crash_before_rename` is the deterministic test seam for the kill window:
/// it performs the full write + fsync of the tmp file and then returns
/// WITHOUT renaming — exactly the state a process SIGKILLed between flush
/// and publish leaves behind (tmp debris beside an intact old file). Tests
/// use it to prove the old artifact still reads back strictly.
///
/// Throws Error naming the path and the errno string on any failure.
void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes,
                       bool crash_before_rename = false);

}  // namespace ssresf::util
