#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ssresf::util {

/// Remove leading/trailing whitespace (space, tab, CR, LF).
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Split on arbitrary whitespace runs; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Join elements with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Lower-case ASCII copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ssresf::util
