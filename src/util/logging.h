#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace ssresf::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are discarded. Defaults to kWarn
/// so library users (and tests) are quiet unless they opt in.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line to stderr with a level prefix. Prefer the SSRESF_LOG
/// macro, which skips message formatting when the level is filtered out.
void log_message(LogLevel level, std::string_view message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_message(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace ssresf::util

#define SSRESF_LOG(level)                                  \
  if (static_cast<int>(level) <                            \
      static_cast<int>(::ssresf::util::log_level())) {     \
  } else                                                   \
    ::ssresf::util::detail::LogStream(level)

#define SSRESF_DEBUG SSRESF_LOG(::ssresf::util::LogLevel::kDebug)
#define SSRESF_INFO SSRESF_LOG(::ssresf::util::LogLevel::kInfo)
#define SSRESF_WARN SSRESF_LOG(::ssresf::util::LogLevel::kWarn)
#define SSRESF_ERROR SSRESF_LOG(::ssresf::util::LogLevel::kError)
