#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace ssresf::util {

namespace {
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace ssresf::util
