#pragma once

#include <string>
#include <vector>

namespace ssresf::util {

/// Minimal POSIX subprocess wrapper: spawn an argv vector, wait for exit.
/// This is the process-level analogue of ThreadPool — the distributed
/// campaign coordinator uses it to fan shards out to worker processes (one
/// `ssresf_campaign --shard k/N` child per shard) and join them before
/// merging their shard files.
class Subprocess {
 public:
  Subprocess() = default;

  /// Spawns `argv` (argv[0] is the executable, resolved via PATH). Throws
  /// util Error when the process cannot be created.
  explicit Subprocess(std::vector<std::string> argv);

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// Waits (if still running) — a spawned child is never left unreaped.
  ~Subprocess();

  [[nodiscard]] bool running() const { return pid_ > 0; }
  [[nodiscard]] long pid() const { return pid_; }

  /// Blocks until the child exits. Returns its exit code, or 128 + signal
  /// number when the child died on a signal (shell convention). Idempotent:
  /// later calls return the first result.
  int wait();

  /// Kills the child (SIGKILL) if it is still running; wait() then reports
  /// 128 + SIGKILL. The campaign chaos tests use this to fell a worker
  /// mid-run. No-op after the child has been waited for.
  void terminate();

  /// Convenience: spawn + wait.
  static int run(std::vector<std::string> argv);

 private:
  long pid_ = -1;  // pid_t, kept long to keep <sys/types.h> out of the header
  int exit_code_ = -1;
};

}  // namespace ssresf::util
