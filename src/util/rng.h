#pragma once

#include <cstdint>
#include <limits>

namespace ssresf::util {

/// Deterministic, seedable PRNG (xoshiro256**). All stochastic behaviour in
/// SSRESF (cluster init, sampling, injection times, environment arrivals,
/// dataset shuffles) draws from an explicitly seeded Rng so experiments are
/// reproducible bit-for-bit.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface, usable with <random> distributions.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Fork an independent, deterministically derived child stream. Used to
  /// give each subsystem its own stream so adding draws in one place does
  /// not perturb another.
  Rng fork() { return Rng(next() ^ 0xd1b54a32d192ed03ull); }

  /// Child stream fully determined by (seed, stream), independent of any
  /// draw order: stream i yields the same Rng no matter which thread asks,
  /// or in which order. The campaign derives each injection's randomness
  /// from (campaign seed, global injection index) this way, which is what
  /// makes results bit-identical for every thread count.
  static Rng from_stream(std::uint64_t seed, std::uint64_t stream) {
    // splitmix64 finalizer over a golden-ratio stride decorrelates
    // consecutive streams.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return Rng(z ^ (z >> 31));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

/// Fisher-Yates shuffle driven by Rng.
template <typename Container>
void shuffle(Container& c, Rng& rng) {
  if (c.size() < 2) return;
  for (std::size_t i = c.size() - 1; i > 0; --i) {
    using std::swap;
    swap(c[i], c[static_cast<std::size_t>(rng.below(i + 1))]);
  }
}

}  // namespace ssresf::util
