#include "util/csv.h"

#include <cstdio>

namespace ssresf::util {

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace ssresf::util
