#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ssresf::util {

/// Minimal blocking TCP layer for the distributed campaign's socket
/// transport: RAII fd ownership, exact-count send/receive (the frame codec in
/// net/protocol.h never sees a partial read), and poll-based readiness. POSIX
/// only, like Subprocess — the Windows build throws on construction.
class Socket {
 public:
  Socket() = default;
  /// Adopts an already-connected fd.
  explicit Socket(int fd) : fd_(fd) {}

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// Sends exactly `n` bytes (loops over partial writes and EINTR; SIGPIPE
  /// suppressed). Throws Error when the peer is gone.
  void send_all(const void* data, std::size_t n);

  /// Receives exactly `n` bytes. Returns false on a clean end-of-stream
  /// before the first byte (the peer closed between messages); throws Error
  /// on a mid-buffer EOF or a socket error — a connection dropped inside a
  /// message must never look like a clean shutdown.
  [[nodiscard]] bool recv_all(void* data, std::size_t n);

  /// One recv() call: returns however many bytes arrived (at most `n`),
  /// 0 on end-of-stream. Throws Error on a socket error. The deadline-bounded
  /// frame reader in net/protocol builds exact-count reads from this plus
  /// wait_readable, so a slow-loris peer trickling bytes can never pin a
  /// blocking recv_all forever.
  [[nodiscard]] std::size_t recv_some(void* data, std::size_t n);

  /// Blocks until the socket is readable (data, EOF, or error) or
  /// `timeout_ms` elapses; negative waits forever. Returns readable.
  [[nodiscard]] bool wait_readable(int timeout_ms) const;

  /// Half-closes the sending direction (TCP FIN); the receive side stays
  /// open. Closing a socket with unread inbound data makes the kernel send
  /// RST, which destroys data the peer has already buffered but not yet
  /// read — a graceful sender shuts down writes, then drains to EOF before
  /// closing, so its last frames reliably reach the peer.
  void shutdown_write();

  /// Dotted-quad address of the connected peer (getpeername), or "" when
  /// the socket has no IPv4 peer (AF_UNIX test pairs). The coordinator uses
  /// this to build the fleet roster: a worker's peer-query listener lives at
  /// (peer_host of its connection, the port it announced in kHello).
  [[nodiscard]] std::string peer_host() const;

  /// Connected AF_UNIX pair (for in-process protocol tests).
  [[nodiscard]] static std::pair<Socket, Socket> pair();

 private:
  int fd_ = -1;
};

/// Listening TCP socket. Port 0 binds an ephemeral port — read the chosen
/// one back via port(). `loopback_only` binds 127.0.0.1 instead of all
/// interfaces (the loopback worker spawner and the tests use this).
class ListenSocket {
 public:
  explicit ListenSocket(std::uint16_t port, bool loopback_only = false);

  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;
  ~ListenSocket();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Stops listening (idempotent). A server that has finished its job must
  /// close — a socket left listening keeps completing TCP handshakes into
  /// the accept backlog, and a peer "connected" to a backlog nobody will
  /// ever accept waits forever; refusing outright lets it fail fast.
  void close();

  /// Accepts one pending connection (blocks; poll the fd first to avoid
  /// blocking when multiplexing).
  [[nodiscard]] Socket accept();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to host:port, retrying for up to `timeout_seconds` — a worker
/// started a moment before its coordinator must not die on the race. Throws
/// Error when the deadline passes without a connection.
[[nodiscard]] Socket connect_to(const std::string& host, std::uint16_t port,
                                double timeout_seconds = 10.0);

/// One poll() pass over `fds` (entries < 0 are skipped). Returns one flag per
/// fd: true when readable, hung up, or in error — every state where a read
/// will not block. `timeout_ms` < 0 waits forever.
[[nodiscard]] std::vector<bool> poll_readable(const std::vector<int>& fds,
                                              int timeout_ms);

}  // namespace ssresf::util
