#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ssresf::util {

/// Minimal CSV writer used by benches to dump series (e.g. ROC points,
/// Fig. 5 sweeps) alongside the human-readable tables.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void header(const std::vector<std::string>& columns) { row(columns); }

  void row(const std::vector<std::string>& fields);

  /// Convenience: format doubles with enough digits to round-trip.
  static std::string num(double v);

 private:
  static std::string escape(const std::string& field);
  std::ostream& out_;
};

}  // namespace ssresf::util
