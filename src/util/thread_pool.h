#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ssresf::util {

/// Minimal fixed-size worker pool for embarrassingly parallel fan-out (the
/// fault-injection campaign shards its injection list across it). Jobs are
/// plain callables; submit returns a future so callers can join and
/// propagate worker exceptions.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. The future resolves when the job finishes and rethrows
  /// anything the job threw.
  std::future<void> submit(std::function<void()> job);

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Number of concurrent hardware threads (at least 1).
  [[nodiscard]] static int hardware_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<std::packaged_task<void()>> jobs_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace ssresf::util
