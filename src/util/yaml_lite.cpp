#include "util/yaml_lite.h"

#include <cstdlib>

#include "util/error.h"
#include "util/strings.h"

namespace ssresf::util {

YamlNode YamlNode::scalar(std::string value) {
  YamlNode n;
  n.kind_ = Kind::kScalar;
  n.scalar_ = std::move(value);
  return n;
}

YamlNode YamlNode::list() {
  YamlNode n;
  n.kind_ = Kind::kList;
  return n;
}

YamlNode YamlNode::map() {
  YamlNode n;
  n.kind_ = Kind::kMap;
  return n;
}

const std::string& YamlNode::as_string() const {
  if (!is_scalar()) throw InvalidArgument("yaml: node is not a scalar");
  return scalar_;
}

double YamlNode::as_double() const {
  const std::string& s = as_string();
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || !trim(std::string_view(end)).empty()) {
    throw InvalidArgument("yaml: '" + s + "' is not a number");
  }
  return v;
}

long long YamlNode::as_int() const {
  const std::string& s = as_string();
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 0);
  if (end == s.c_str() || !trim(end).empty()) {
    throw InvalidArgument("yaml: '" + s + "' is not an integer");
  }
  return v;
}

std::size_t YamlNode::size() const {
  if (is_list()) return list_.size();
  if (is_map()) return map_.size();
  return 0;
}

const YamlNode& YamlNode::at(std::size_t index) const {
  if (!is_list()) throw InvalidArgument("yaml: node is not a list");
  if (index >= list_.size()) throw InvalidArgument("yaml: list index out of range");
  return list_[index];
}

void YamlNode::push_back(YamlNode child) {
  if (!is_list()) throw InvalidArgument("yaml: node is not a list");
  list_.push_back(std::move(child));
}

bool YamlNode::has(std::string_view key) const {
  if (!is_map()) return false;
  for (const auto& [k, v] : map_) {
    if (k == key) return true;
  }
  return false;
}

const YamlNode& YamlNode::at(std::string_view key) const {
  if (!is_map()) throw InvalidArgument("yaml: node is not a map");
  for (const auto& [k, v] : map_) {
    if (k == key) return v;
  }
  throw InvalidArgument("yaml: missing key '" + std::string(key) + "'");
}

const std::vector<std::pair<std::string, YamlNode>>& YamlNode::entries() const {
  if (!is_map()) throw InvalidArgument("yaml: node is not a map");
  return map_;
}

void YamlNode::set(std::string key, YamlNode value) {
  if (!is_map()) throw InvalidArgument("yaml: node is not a map");
  for (auto& [k, v] : map_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  map_.emplace_back(std::move(key), std::move(value));
}

namespace {

struct Line {
  int indent = 0;
  std::string text;  // content with indentation stripped
  int number = 0;    // 1-based source line for diagnostics
};

std::vector<Line> tokenize(std::string_view text) {
  std::vector<Line> lines;
  int number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view raw = text.substr(pos, eol - pos);
    ++number;
    pos = eol + 1;

    // Strip comments that begin a token (not inside values containing '#').
    std::string_view body = raw;
    int indent = 0;
    while (!body.empty() && body.front() == ' ') {
      ++indent;
      body.remove_prefix(1);
    }
    if (!body.empty() && body.front() == '\t') {
      throw ParseError("yaml: tab indentation is not supported", number);
    }
    body = trim(body);
    if (body.empty() || body.front() == '#') {
      if (pos > text.size()) break;
      continue;
    }
    lines.push_back(Line{indent, std::string(body), number});
    if (pos > text.size()) break;
  }
  return lines;
}

std::string unquote(std::string_view s) {
  if (s.size() >= 2 &&
      ((s.front() == '"' && s.back() == '"') ||
       (s.front() == '\'' && s.back() == '\''))) {
    return std::string(s.substr(1, s.size() - 2));
  }
  return std::string(s);
}

/// Parse an inline value: flow list of scalars or plain scalar.
YamlNode parse_inline(std::string_view value, int line_number) {
  value = trim(value);
  if (!value.empty() && value.front() == '[') {
    if (value.back() != ']') {
      throw ParseError("yaml: unterminated flow list", line_number);
    }
    YamlNode node = YamlNode::list();
    std::string_view inner = value.substr(1, value.size() - 2);
    if (!trim(inner).empty()) {
      for (const auto& item : split(inner, ',')) {
        node.push_back(YamlNode::scalar(unquote(trim(item))));
      }
    }
    return node;
  }
  return YamlNode::scalar(unquote(value));
}

class Parser {
 public:
  explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  YamlNode parse_document() {
    if (lines_.empty()) return YamlNode::map();
    YamlNode root = parse_block(lines_[0].indent);
    if (pos_ != lines_.size()) {
      throw ParseError("yaml: unexpected content after document",
                       lines_[pos_].number);
    }
    return root;
  }

 private:
  YamlNode parse_block(int indent) {
    if (starts_list(lines_[pos_].text)) return parse_list(indent);
    return parse_map(indent);
  }

  static bool starts_list(const std::string& text) {
    return text == "-" || starts_with(text, "- ");
  }

  YamlNode parse_map(int indent) {
    YamlNode node = YamlNode::map();
    while (pos_ < lines_.size() && lines_[pos_].indent == indent &&
           !starts_list(lines_[pos_].text)) {
      const Line& line = lines_[pos_];
      const std::size_t colon = line.text.find(':');
      if (colon == std::string::npos) {
        throw ParseError("yaml: expected 'key: value'", line.number);
      }
      std::string key(trim(std::string_view(line.text).substr(0, colon)));
      std::string_view rest = trim(std::string_view(line.text).substr(colon + 1));
      ++pos_;
      if (!rest.empty()) {
        node.set(std::move(key), parse_inline(rest, line.number));
        continue;
      }
      // Block value: nested content with greater indent, or a list whose
      // dashes sit at the same indent as the key (YAML allows this).
      if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
        node.set(std::move(key), parse_block(lines_[pos_].indent));
      } else if (pos_ < lines_.size() && lines_[pos_].indent == indent &&
                 starts_list(lines_[pos_].text)) {
        node.set(std::move(key), parse_list(indent));
      } else {
        node.set(std::move(key), YamlNode::scalar(""));
      }
    }
    return node;
  }

  YamlNode parse_list(int indent) {
    YamlNode node = YamlNode::list();
    while (pos_ < lines_.size() && lines_[pos_].indent == indent &&
           starts_list(lines_[pos_].text)) {
      Line& line = lines_[pos_];
      std::string rest =
          line.text == "-" ? "" : std::string(trim(std::string_view(line.text).substr(2)));
      if (rest.empty()) {
        // "-" alone: nested block on following, deeper-indented lines.
        ++pos_;
        if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
          node.push_back(parse_block(lines_[pos_].indent));
        } else {
          node.push_back(YamlNode::scalar(""));
        }
        continue;
      }
      const std::size_t colon = rest.find(':');
      const bool item_is_map =
          colon != std::string::npos &&
          (colon + 1 == rest.size() || rest[colon + 1] == ' ');
      if (item_is_map) {
        // Rewrite "- key: v" as a virtual "key: v" line at indent+2 and let
        // parse_map pick up the rest of the item's keys at that indent.
        line.indent = indent + 2;
        line.text = rest;
        node.push_back(parse_map(indent + 2));
      } else {
        ++pos_;
        node.push_back(parse_inline(rest, line.number));
      }
    }
    return node;
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

bool scalar_needs_quotes(const std::string& s) {
  if (s.empty()) return false;
  if (s.front() == ' ' || s.back() == ' ') return true;
  return s.find_first_of("[]{}#\"'\n") != std::string::npos;
}

}  // namespace

YamlNode YamlNode::parse(std::string_view text) {
  return Parser(tokenize(text)).parse_document();
}

std::string YamlNode::dump() const {
  std::string out;
  dump_into(out, 0);
  return out;
}

void YamlNode::dump_into(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  switch (kind_) {
    case Kind::kScalar: {
      out += scalar_needs_quotes(scalar_) ? "\"" + scalar_ + "\"" : scalar_;
      out += '\n';
      break;
    }
    case Kind::kList: {
      // Flow style when every element is a scalar; block style otherwise.
      bool all_scalar = true;
      for (const auto& item : list_) all_scalar &= item.is_scalar();
      if (all_scalar) {
        out += '[';
        for (std::size_t i = 0; i < list_.size(); ++i) {
          if (i > 0) out += ", ";
          out += list_[i].scalar_;
        }
        out += "]\n";
      } else {
        if (!out.empty() && out.back() != '\n') out += '\n';
        for (const auto& item : list_) {
          out += pad;
          out += "- ";
          if (item.is_map()) {
            // First entry inline after the dash, remaining entries indented.
            bool first = true;
            for (const auto& [k, v] : item.map_) {
              if (!first) {
                out += pad;
                out += "  ";
              }
              out += k;
              out += ": ";
              if (v.is_map() || (v.is_list() && v.dump().front() != '[')) {
                out += '\n';
                v.dump_into(out, indent + 4);
              } else {
                v.dump_into(out, indent + 4);
              }
              first = false;
            }
          } else {
            item.dump_into(out, indent + 2);
          }
        }
      }
      break;
    }
    case Kind::kMap: {
      if (!out.empty() && out.back() != '\n') out += '\n';
      for (const auto& [k, v] : map_) {
        out += pad;
        out += k;
        out += ':';
        if (v.is_scalar() || (v.is_list() && [&] {
              bool all = true;
              for (const auto& item : v.list_) all &= item.is_scalar();
              return all;
            }())) {
          out += ' ';
          v.dump_into(out, indent + 2);
        } else {
          out += '\n';
          v.dump_into(out, indent + 2);
        }
      }
      break;
    }
  }
}

}  // namespace ssresf::util
