#pragma once

#include <chrono>

namespace ssresf::util {

/// Simple wall-clock stopwatch used by the benchmark harnesses to report
/// runtimes in the same units as the paper's Table III (seconds).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ssresf::util
