#pragma once

#include <stdexcept>
#include <string>

namespace ssresf {

/// Root of all errors thrown by the SSRESF libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input (netlist text, YAML database, assembly source, ...).
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line = 0)
      : Error(line > 0 ? "line " + std::to_string(line) + ": " + what : what),
        line_(line) {}
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_ = 0;
};

/// A request that violates an API precondition (unknown net, bad width, ...).
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// Internal invariant violation; indicates a bug in this library.
class InternalError : public Error {
 public:
  using Error::Error;
};

}  // namespace ssresf
