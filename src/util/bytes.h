#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/error.h"

namespace ssresf::util {

/// FNV-1a 64-bit — the one digest of the distribution layer: shard-file and
/// golden-bundle campaign binding, and socket frame payload integrity.
struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ull;

  void byte(std::uint8_t b) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  void bytes(std::span<const std::uint8_t> data) {
    for (const std::uint8_t b : data) byte(b);
  }
};

[[nodiscard]] inline std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  Fnv1a d;
  d.bytes(data);
  return d.h;
}

/// Little byte-stream serialization layer shared by the engine state codec
/// and the campaign shard files: LEB128 varints for counts and mostly-small
/// integers, fixed little-endian 64-bit words for bit-plane data (which the
/// RLE pass of the state codec then compresses), and length-prefixed vector
/// helpers. Readers validate every read and throw util-level Error on
/// truncated or malformed input — a corrupt shard file must never become a
/// silent out-of-bounds access.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  /// Unsigned LEB128.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Fixed-width little-endian (endianness-stable across hosts).
  void fixed64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  /// Double as its raw IEEE-754 word: bit-exact round trip (the model and
  /// dataset artifacts depend on it — a reloaded model must predict
  /// identically).
  void f64(double v) { fixed64(std::bit_cast<std::uint64_t>(v)); }

  /// Length-prefixed vector of bit-exact doubles.
  void f64_vec(const std::vector<double>& v) {
    varint(v.size());
    for (const double x : v) f64(x);
  }

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// varint length prefix + raw bytes.
  void sized_bytes(const void* data, std::size_t n) {
    varint(n);
    bytes(data, n);
  }

  /// Length-prefixed vector of byte-sized elements (Logic, std::uint8_t...).
  template <typename T>
    requires(sizeof(T) == 1)
  void byte_vec(const std::vector<T>& v) {
    sized_bytes(v.data(), v.size());
  }

  /// Length-prefixed vector of 64-bit words, each fixed little-endian.
  void u64_vec(const std::vector<std::uint64_t>& v) {
    varint(v.size());
    for (const std::uint64_t w : v) fixed64(w);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data)
      : p_(data.data()), end_(data.data() + data.size()) {}

  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }
  [[nodiscard]] bool at_end() const { return p_ == end_; }

  std::uint8_t u8() {
    need(1);
    return *p_++;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    throw Error("bytes: varint longer than 64 bits");
  }

  std::uint64_t fixed64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
    }
    p_ += 8;
    return v;
  }

  void bytes(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, p_, n);
    p_ += n;
  }

  /// Length prefix for a sequence of `element_size`-byte elements, bounded
  /// by the bytes actually left in the stream — a malformed count can never
  /// drive an allocation larger than the input itself.
  std::size_t element_count(std::size_t element_size) {
    const std::uint64_t n = varint();
    if (n > remaining() / element_size) throw Error("bytes: truncated input");
    return static_cast<std::size_t>(n);
  }

  template <typename T>
    requires(sizeof(T) == 1)
  std::vector<T> byte_vec() {
    const std::size_t n = element_count(1);
    std::vector<T> v(n);
    if (n > 0) bytes(v.data(), n);
    return v;
  }

  std::vector<std::uint64_t> u64_vec() {
    const std::size_t n = element_count(8);
    std::vector<std::uint64_t> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(fixed64());
    return v;
  }

  double f64() { return std::bit_cast<double>(fixed64()); }

  std::vector<double> f64_vec() {
    const std::size_t n = element_count(8);
    std::vector<double> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(f64());
    return v;
  }

 private:
  void need(std::uint64_t n) const {
    if (n > remaining()) throw Error("bytes: truncated input");
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace ssresf::util
