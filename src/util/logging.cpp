#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace ssresf::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[ssresf %s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace ssresf::util
