#pragma once

#include <string>
#include <vector>

namespace ssresf::util {

/// ASCII table renderer for the benchmark harnesses, so each bench prints
/// rows in the same layout as the paper's tables.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void add_row(std::vector<std::string> fields);

  /// Render with column alignment, a header rule, and an outer border.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ssresf::util
