#include "util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/error.h"

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace ssresf::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw Error("atomic_write_file: " + what + " '" + path +
              "': " + std::strerror(errno));
}

}  // namespace

#ifndef _WIN32

void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes,
                       bool crash_before_rename) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot create", tmp);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ::ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("write to", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync of", tmp);
  }
  if (::close(fd) != 0) fail("close of", tmp);
  if (crash_before_rename) return;  // test seam: die before publishing
  if (std::rename(tmp.c_str(), path.c_str()) != 0) fail("rename to", path);
  // Persist the rename itself: fsync the containing directory, or the
  // publication can be rolled back by power loss even though the data
  // survived. Best effort on filesystems that refuse directory fsync.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

#else  // _WIN32

void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes,
                       bool crash_before_rename) {
  // No fsync-through-rename discipline on the Windows fallback; the net
  // layer (the only crash-safety consumer) is POSIX-only anyway.
  const std::string tmp = path + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) fail("cannot create", tmp);
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
      std::fclose(f);
      fail("write to", tmp);
    }
    if (std::fclose(f) != 0) fail("close of", tmp);
  }
  if (crash_before_rename) return;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) throw Error("atomic_write_file: rename to '" + path +
                      "': " + ec.message());
}

#endif

}  // namespace ssresf::util
