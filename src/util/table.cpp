#include "util/table.h"

#include "util/error.h"

namespace ssresf::util {

void Table::add_row(std::vector<std::string> fields) {
  if (fields.size() != columns_.size()) {
    throw InvalidArgument("table row has " + std::to_string(fields.size()) +
                          " fields, expected " +
                          std::to_string(columns_.size()));
  }
  rows_.push_back(std::move(fields));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) {
      line.append(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out = rule();
  out += emit_row(columns_);
  out += rule();
  for (const auto& row : rows_) out += emit_row(row);
  out += rule();
  return out;
}

}  // namespace ssresf::util
