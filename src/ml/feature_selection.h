#pragma once

#include "ml/cross_validation.h"

namespace ssresf::ml {

/// Fisher score of every feature: (m+ - m-)^2 / (v+ + v-). Higher is more
/// discriminative. Zero-variance features score 0.
[[nodiscard]] std::vector<double> fisher_scores(const Dataset& dataset);

/// The paper's feature-selection experiment (Fig. 5): rank features by
/// Fisher score, then evaluate the mean k-fold CV accuracy using the top-1,
/// top-2, ... top-N feature subsets. best_count is the smallest subset
/// within half a standard deviation of the best score.
struct FeatureSelectionResult {
  std::vector<int> ranked;               // feature indices, best first
  std::vector<double> cv_score_by_count; // [k-1] = score using top-k
  int best_count = 0;
};

[[nodiscard]] FeatureSelectionResult select_features(const Dataset& dataset,
                                                     const SvmConfig& config,
                                                     int folds,
                                                     util::Rng& rng);

}  // namespace ssresf::ml
