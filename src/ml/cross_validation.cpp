#include "ml/cross_validation.h"

#include <cmath>

#include "util/error.h"

namespace ssresf::ml {

CvResult cross_validate(const Dataset& dataset, const SvmConfig& config,
                        int folds, util::Rng& rng) {
  const auto fold_indices = stratified_kfold(dataset, folds, rng);
  CvResult result;
  for (int k = 0; k < folds; ++k) {
    std::vector<std::size_t> train_idx;
    for (int j = 0; j < folds; ++j) {
      if (j == k) continue;
      train_idx.insert(train_idx.end(), fold_indices[static_cast<std::size_t>(j)].begin(),
                       fold_indices[static_cast<std::size_t>(j)].end());
    }
    const auto& test_idx = fold_indices[static_cast<std::size_t>(k)];
    if (test_idx.empty() || train_idx.empty()) continue;

    Dataset train = dataset.subset(train_idx);
    if (train.count_label(1) == 0 || train.count_label(-1) == 0) continue;
    MinMaxScaler scaler;
    scaler.fit_transform(train);

    SvmClassifier model(config);
    model.train(train);

    ConfusionMatrix cm;
    for (const std::size_t i : test_idx) {
      const auto x = scaler.transform_row(dataset.row(i));
      const double score = model.decision_value(x);
      cm.add(dataset.label(i), score >= 0 ? 1 : -1);
      result.decision_values.push_back(score);
      result.labels.push_back(dataset.label(i));
    }
    result.fold_accuracies.push_back(cm.accuracy());
    result.aggregate += cm;
  }
  if (result.fold_accuracies.empty()) {
    const bool single_class =
        dataset.size() > 0 &&
        (dataset.count_label(1) == 0 || dataset.count_label(-1) == 0);
    if (!single_class) {
      throw InvalidArgument("cross-validation produced no usable folds");
    }
    // Single-class dataset: every fold degenerates, and the constant
    // majority classifier is trivially right on all held-out samples.
    // Campaigns on robust designs can legitimately observe zero soft
    // errors, so report that instead of failing the whole pipeline.
    const int label = dataset.count_label(1) > 0 ? 1 : -1;
    ConfusionMatrix cm;
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      cm.add(dataset.label(i), label);
      result.decision_values.push_back(static_cast<double>(label));
      result.labels.push_back(dataset.label(i));
    }
    result.fold_accuracies.push_back(cm.accuracy());
    result.aggregate += cm;
  }
  double sum = 0.0;
  for (const double a : result.fold_accuracies) sum += a;
  result.mean_accuracy = sum / static_cast<double>(result.fold_accuracies.size());
  double var = 0.0;
  for (const double a : result.fold_accuracies) {
    var += (a - result.mean_accuracy) * (a - result.mean_accuracy);
  }
  result.stddev_accuracy =
      std::sqrt(var / static_cast<double>(result.fold_accuracies.size()));
  return result;
}

GridSearchResult grid_search(const Dataset& dataset, const SvmConfig& base,
                             std::span<const double> c_values,
                             std::span<const double> gamma_values, int folds,
                             util::Rng& rng) {
  if (c_values.empty() || gamma_values.empty()) {
    throw InvalidArgument("grid_search needs candidate values");
  }
  GridSearchResult result;
  result.best = base;
  result.best_score = -1.0;
  for (const double c : c_values) {
    for (const double gamma : gamma_values) {
      SvmConfig config = base;
      config.c = c;
      config.kernel.gamma = gamma;
      util::Rng fold_rng = rng.fork();
      const CvResult cv = cross_validate(dataset, config, folds, fold_rng);
      result.grid.push_back({c, gamma, cv.mean_accuracy});
      if (cv.mean_accuracy > result.best_score) {
        result.best_score = cv.mean_accuracy;
        result.best = config;
      }
    }
  }
  return result;
}

}  // namespace ssresf::ml
