#pragma once

#include <span>
#include <vector>

#include "ml/dataset.h"

namespace ssresf::util {
class ByteWriter;
class ByteReader;
}  // namespace ssresf::util

namespace ssresf::ml {

enum class KernelType { kLinear, kRbf, kPoly };

struct KernelConfig {
  KernelType type = KernelType::kRbf;
  double gamma = 1.0;  // RBF / poly scale
  int degree = 3;      // poly only
  double coef0 = 1.0;  // poly only

  [[nodiscard]] bool operator==(const KernelConfig&) const = default;
};

[[nodiscard]] double kernel_eval(const KernelConfig& kernel,
                                 std::span<const double> a,
                                 std::span<const double> b);

struct SvmConfig {
  KernelConfig kernel;
  double c = 1.0;          // soft-margin penalty
  double tolerance = 1e-3;
  int max_passes = 8;      // convergence: passes without alpha updates
  int max_iterations = 20000;
  std::uint64_t seed = 42;

  [[nodiscard]] bool operator==(const SvmConfig&) const = default;

  /// Bit-exact serialization (doubles travel as raw IEEE-754 words), used by
  /// the .ssmd model bundle; decode(encode(x)) == x exactly.
  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static SvmConfig decode(util::ByteReader& in);
};

/// Soft-margin SVM trained with Platt's SMO (simplified heuristics). The SMO
/// loop reads the Q-matrix row-wise, so rows are computed on demand and kept
/// in an LRU cache instead of materialising the full n x n kernel matrix —
/// small datasets still see every row cached after one pass, large datasets
/// stay within a fixed memory budget, and no kernel value is ever recomputed
/// while its row is resident. Decision value
/// f(x) = sum_i alpha_i y_i K(x_i, x) + b; predict = sign(f).
class SvmClassifier {
 public:
  explicit SvmClassifier(SvmConfig config = {}) : config_(std::move(config)) {}

  void train(const Dataset& dataset);

  [[nodiscard]] bool trained() const { return !support_x_.empty(); }
  [[nodiscard]] double decision_value(std::span<const double> x) const;
  [[nodiscard]] int predict(std::span<const double> x) const {
    return decision_value(x) >= 0 ? 1 : -1;
  }

  [[nodiscard]] std::size_t num_support_vectors() const {
    return support_x_.size();
  }
  [[nodiscard]] double bias() const { return bias_; }
  [[nodiscard]] const SvmConfig& config() const { return config_; }

  /// Kernel evaluations spent by the last train() call (cache-efficiency
  /// metric; the Table II bench asserts it stays at or below the old full
  /// kernel-matrix precompute).
  [[nodiscard]] std::uint64_t kernel_evals() const { return kernel_evals_; }

  /// Bit-exact round trip of the trained model (config, support vectors,
  /// alpha*y weights, bias): a decoded classifier produces decision values
  /// identical to the original on every input. The .ssmd transport.
  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static SvmClassifier decode(util::ByteReader& in);

 private:
  SvmConfig config_;
  std::vector<std::vector<double>> support_x_;
  std::vector<double> support_alpha_y_;  // alpha_i * y_i
  double bias_ = 0.0;
  std::uint64_t kernel_evals_ = 0;
};

}  // namespace ssresf::ml
