#include "ml/dataset.h"

#include "util/error.h"

namespace ssresf::ml {

void Dataset::add(std::vector<double> row, int label) {
  if (label != 1 && label != -1) {
    throw InvalidArgument("labels must be +1 or -1");
  }
  if (!rows_.empty() && row.size() != rows_[0].size()) {
    throw InvalidArgument("inconsistent feature count");
  }
  rows_.push_back(std::move(row));
  labels_.push_back(label);
}

std::size_t Dataset::count_label(int label) const {
  std::size_t count = 0;
  for (const int y : labels_) count += y == label;
  return count;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(feature_names_);
  for (const std::size_t i : indices) {
    if (i >= rows_.size()) throw InvalidArgument("subset index out of range");
    out.add(rows_[i], labels_[i]);
  }
  return out;
}

Dataset Dataset::project(std::span<const int> features) const {
  std::vector<std::string> names;
  for (const int f : features) {
    if (f < 0 || static_cast<std::size_t>(f) >= num_features()) {
      throw InvalidArgument("projected feature out of range");
    }
    if (f < static_cast<int>(feature_names_.size())) {
      names.push_back(feature_names_[static_cast<std::size_t>(f)]);
    } else {
      // Two-step append: gcc 12's -Wrestrict misfires on the fused
      // "literal" + std::to_string(...) temporary at -O2 (PR 105329).
      std::string name = "f";
      name += std::to_string(f);
      names.push_back(std::move(name));
    }
  }
  Dataset out(std::move(names));
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    std::vector<double> row;
    row.reserve(features.size());
    for (const int f : features) {
      row.push_back(rows_[i][static_cast<std::size_t>(f)]);
    }
    out.add(std::move(row), labels_[i]);
  }
  return out;
}

std::vector<std::vector<std::size_t>> stratified_kfold(const Dataset& dataset,
                                                       int folds,
                                                       util::Rng& rng) {
  if (folds < 2) throw InvalidArgument("need at least 2 folds");
  std::vector<std::size_t> positives;
  std::vector<std::size_t> negatives;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    (dataset.label(i) == 1 ? positives : negatives).push_back(i);
  }
  util::shuffle(positives, rng);
  util::shuffle(negatives, rng);

  std::vector<std::vector<std::size_t>> out(static_cast<std::size_t>(folds));
  for (std::size_t i = 0; i < positives.size(); ++i) {
    out[i % static_cast<std::size_t>(folds)].push_back(positives[i]);
  }
  for (std::size_t i = 0; i < negatives.size(); ++i) {
    out[i % static_cast<std::size_t>(folds)].push_back(negatives[i]);
  }
  return out;
}

}  // namespace ssresf::ml
