#pragma once

#include <span>
#include <vector>

#include "ml/dataset.h"

namespace ssresf::util {
class ByteWriter;
class ByteReader;
}  // namespace ssresf::util

namespace ssresf::ml {

/// Min-max normalization to [0, 1] per feature (the paper's preprocessing
/// step "cleaning, coding, normalization"). Constant features map to 0.
class MinMaxScaler {
 public:
  void fit(const Dataset& dataset);
  [[nodiscard]] std::vector<double> transform_row(
      std::span<const double> row) const;
  void transform(Dataset& dataset) const;
  void fit_transform(Dataset& dataset) {
    fit(dataset);
    transform(dataset);
  }

  [[nodiscard]] bool fitted() const { return !min_.empty(); }
  [[nodiscard]] const std::vector<double>& minimums() const { return min_; }
  [[nodiscard]] const std::vector<double>& maximums() const { return max_; }

  /// Bit-exact round trip of the fitted bounds (raw IEEE-754 words): a
  /// decoded scaler transforms every row identically to the original.
  void encode(util::ByteWriter& out) const;
  [[nodiscard]] static MinMaxScaler decode(util::ByteReader& in);

 private:
  std::vector<double> min_;
  std::vector<double> max_;
};

/// Z-score standardization (zero mean, unit variance) — the alternative
/// normalizer, used by the preprocessing ablation bench.
class StandardScaler {
 public:
  void fit(const Dataset& dataset);
  [[nodiscard]] std::vector<double> transform_row(
      std::span<const double> row) const;
  void transform(Dataset& dataset) const;
  void fit_transform(Dataset& dataset) {
    fit(dataset);
    transform(dataset);
  }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace ssresf::ml
