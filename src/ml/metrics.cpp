#include "ml/metrics.h"

#include <algorithm>

#include "util/error.h"

namespace ssresf::ml {

void ConfusionMatrix::add(int truth, int predicted) {
  if (truth == 1) {
    predicted == 1 ? ++tp : ++fn;
  } else {
    predicted == 1 ? ++fp : ++tn;
  }
}

ConfusionMatrix& ConfusionMatrix::operator+=(const ConfusionMatrix& other) {
  tp += other.tp;
  tn += other.tn;
  fp += other.fp;
  fn += other.fn;
  return *this;
}

double ConfusionMatrix::tpr() const {
  return tp + fn > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                     : 0.0;
}

double ConfusionMatrix::tnr() const {
  return tn + fp > 0 ? static_cast<double>(tn) / static_cast<double>(tn + fp)
                     : 0.0;
}

double ConfusionMatrix::precision() const {
  return tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                     : 0.0;
}

double ConfusionMatrix::accuracy() const {
  return total() > 0 ? static_cast<double>(tp + tn) / static_cast<double>(total())
                     : 0.0;
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = tpr();
  return p + r > 0 ? 2.0 * p * r / (p + r) : 0.0;
}

ConfusionMatrix evaluate(const SvmClassifier& model, const Dataset& dataset) {
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    cm.add(dataset.label(i), model.predict(dataset.row(i)));
  }
  return cm;
}

std::vector<RocPoint> roc_curve(std::span<const double> decision_values,
                                std::span<const int> labels) {
  if (decision_values.size() != labels.size() || labels.empty()) {
    throw InvalidArgument("roc_curve: bad inputs");
  }
  std::size_t positives = 0;
  std::size_t negatives = 0;
  for (const int y : labels) (y == 1 ? positives : negatives) += 1;
  if (positives == 0 || negatives == 0) {
    throw InvalidArgument("roc_curve needs both classes");
  }

  std::vector<std::size_t> order(labels.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return decision_values[a] > decision_values[b];
  });

  std::vector<RocPoint> curve;
  curve.push_back({0.0, 0.0, std::numeric_limits<double>::infinity()});
  std::size_t tp = 0;
  std::size_t fp = 0;
  for (std::size_t idx = 0; idx < order.size(); ++idx) {
    const std::size_t i = order[idx];
    (labels[i] == 1 ? tp : fp) += 1;
    // Emit a point after each group of equal scores.
    if (idx + 1 < order.size() &&
        decision_values[order[idx + 1]] == decision_values[i]) {
      continue;
    }
    curve.push_back({static_cast<double>(fp) / static_cast<double>(negatives),
                     static_cast<double>(tp) / static_cast<double>(positives),
                     decision_values[i]});
  }
  return curve;
}

double roc_auc(std::span<const RocPoint> curve) {
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    area += (curve[i].fpr - curve[i - 1].fpr) *
            (curve[i].tpr + curve[i - 1].tpr) * 0.5;
  }
  return area;
}

}  // namespace ssresf::ml
