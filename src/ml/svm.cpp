#include "ml/svm.h"

#include <algorithm>
#include <cmath>
#include <list>
#include <unordered_map>

#include "util/bytes.h"
#include "util/error.h"

namespace ssresf::ml {

void SvmConfig::encode(util::ByteWriter& out) const {
  out.u8(static_cast<std::uint8_t>(kernel.type));
  out.f64(kernel.gamma);
  out.varint(static_cast<std::uint64_t>(kernel.degree));
  out.f64(kernel.coef0);
  out.f64(c);
  out.f64(tolerance);
  out.varint(static_cast<std::uint64_t>(max_passes));
  out.varint(static_cast<std::uint64_t>(max_iterations));
  out.varint(seed);
}

SvmConfig SvmConfig::decode(util::ByteReader& in) {
  SvmConfig config;
  const std::uint8_t kind = in.u8();
  if (kind > static_cast<std::uint8_t>(KernelType::kPoly)) {
    throw InvalidArgument("svm: unknown kernel type " + std::to_string(kind));
  }
  config.kernel.type = static_cast<KernelType>(kind);
  config.kernel.gamma = in.f64();
  config.kernel.degree = static_cast<int>(in.varint());
  config.kernel.coef0 = in.f64();
  config.c = in.f64();
  config.tolerance = in.f64();
  config.max_passes = static_cast<int>(in.varint());
  config.max_iterations = static_cast<int>(in.varint());
  config.seed = in.varint();
  return config;
}

void SvmClassifier::encode(util::ByteWriter& out) const {
  config_.encode(out);
  out.f64(bias_);
  out.varint(support_x_.size());
  out.varint(support_x_.empty() ? 0 : support_x_.front().size());
  for (std::size_t i = 0; i < support_x_.size(); ++i) {
    out.f64(support_alpha_y_[i]);
    for (const double v : support_x_[i]) out.f64(v);
  }
}

SvmClassifier SvmClassifier::decode(util::ByteReader& in) {
  SvmClassifier model(SvmConfig::decode(in));
  model.bias_ = in.f64();
  const std::size_t num_sv = in.element_count(1);
  // Each dimension is one 8-byte double, so bound the count by the input
  // itself: a crafted bundle must not drive an arbitrary-size reserve.
  const std::size_t dims = in.element_count(8);
  model.support_alpha_y_.reserve(num_sv);
  model.support_x_.reserve(num_sv);
  for (std::size_t i = 0; i < num_sv; ++i) {
    model.support_alpha_y_.push_back(in.f64());
    std::vector<double> x;
    x.reserve(dims);
    for (std::size_t d = 0; d < dims; ++d) x.push_back(in.f64());
    model.support_x_.push_back(std::move(x));
  }
  return model;
}

namespace {

/// Memory budget of the Q-matrix row cache. Table-II-sized datasets (a few
/// hundred to a few thousand samples) fit entirely; larger datasets degrade
/// to LRU behaviour instead of failing or allocating n^2 doubles.
constexpr std::size_t kQCacheBytes = std::size_t{64} << 20;

/// LRU cache of Q-matrix rows (row i = K(x_i, x_j) for all j), computed on
/// demand. Symmetry is exploited on fill: entries whose mirror row is
/// resident are copied instead of re-evaluated, so a fully resident cache
/// costs exactly the n(n+1)/2 evaluations of a triangular precompute while
/// touching rows lazily.
class QRowCache {
 public:
  QRowCache(const Dataset& dataset, const KernelConfig& kernel,
            std::uint64_t& evals)
      : dataset_(dataset), kernel_(kernel), evals_(evals) {
    const std::size_t n = dataset.size();
    capacity_ = std::clamp<std::size_t>(
        kQCacheBytes / (n * sizeof(double)), 2, n);
    resident_.assign(n, nullptr);
    diag_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      diag_[i] = kernel_eval(kernel_, dataset_.row(i), dataset_.row(i));
      ++evals_;
    }
  }

  [[nodiscard]] double diag(std::size_t i) const { return diag_[i]; }

  /// Reference stays valid until at least one more row() call has completed
  /// after the next one (capacity >= 2: the two most recent rows coexist).
  const std::vector<double>& row(std::size_t i) {
    if (auto it = index_.find(i); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    const std::size_t n = dataset_.size();
    if (lru_.size() >= capacity_) {
      // Recycle the least-recently-used row's storage.
      const std::size_t evicted = lru_.back().first;
      index_.erase(evicted);
      resident_[evicted] = nullptr;
      lru_.splice(lru_.begin(), lru_, std::prev(lru_.end()));
      lru_.front().first = i;
    } else {
      lru_.emplace_front(i, std::vector<double>(n));
    }
    std::vector<double>& row = lru_.front().second;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) {
        row[j] = diag_[i];
      } else if (resident_[j] != nullptr) {
        row[j] = (*resident_[j])[i];  // K is symmetric
      } else {
        row[j] = kernel_eval(kernel_, dataset_.row(i), dataset_.row(j));
        ++evals_;
      }
    }
    index_[i] = lru_.begin();
    resident_[i] = &row;
    return row;
  }

 private:
  using RowList = std::list<std::pair<std::size_t, std::vector<double>>>;
  const Dataset& dataset_;
  const KernelConfig& kernel_;
  std::uint64_t& evals_;
  std::size_t capacity_ = 2;
  std::vector<double> diag_;
  std::vector<const std::vector<double>*> resident_;  // null when not cached
  RowList lru_;
  std::unordered_map<std::size_t, RowList::iterator> index_;
};

}  // namespace

double kernel_eval(const KernelConfig& kernel, std::span<const double> a,
                   std::span<const double> b) {
  if (a.size() != b.size()) throw InvalidArgument("kernel operand size mismatch");
  switch (kernel.type) {
    case KernelType::kLinear: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return dot;
    }
    case KernelType::kRbf: {
      double dist2 = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        dist2 += d * d;
      }
      return std::exp(-kernel.gamma * dist2);
    }
    case KernelType::kPoly: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return std::pow(kernel.gamma * dot + kernel.coef0, kernel.degree);
    }
  }
  throw InvalidArgument("unknown kernel type");
}

void SvmClassifier::train(const Dataset& dataset) {
  const std::size_t n = dataset.size();
  kernel_evals_ = 0;
  if (n == 0) throw InvalidArgument("SVM needs at least one sample");
  if (dataset.count_label(1) == 0 || dataset.count_label(-1) == 0) {
    // Single-class dataset (e.g. a campaign that observed no soft errors):
    // the constant majority classifier, reusing the degenerate-convergence
    // representation (no support vectors, bias carries the vote).
    support_x_.clear();
    support_alpha_y_.clear();
    bias_ = dataset.count_label(1) >= dataset.count_label(-1) ? 1.0 : -1.0;
    return;
  }
  if (n < 2) throw InvalidArgument("SVM needs at least two samples");

  QRowCache cache(dataset, config_.kernel, kernel_evals_);
  const auto y = [&](std::size_t i) {
    return static_cast<double>(dataset.label(i));
  };

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  const double c = config_.c;
  const double tol = config_.tolerance;
  util::Rng rng(config_.seed);

  // f consumes a whole Q-row; k_i[j] == K(x_i, x_j) by symmetry.
  auto f = [&](const std::vector<double>& k_i) {
    double sum = b;
    for (std::size_t j = 0; j < n; ++j) {
      if (alpha[j] != 0.0) sum += alpha[j] * y(j) * k_i[j];
    }
    return sum;
  };

  int passes = 0;
  int iterations = 0;
  while (passes < config_.max_passes && iterations < config_.max_iterations) {
    int changed = 0;
    for (std::size_t i = 0; i < n && iterations < config_.max_iterations; ++i) {
      ++iterations;
      const double ei = f(cache.row(i)) - y(i);
      const bool violates = (y(i) * ei < -tol && alpha[i] < c) ||
                            (y(i) * ei > tol && alpha[i] > 0);
      if (!violates) continue;
      std::size_t j = static_cast<std::size_t>(rng.below(n - 1));
      if (j >= i) ++j;
      // Fetch row j first, then re-reference row i: the two most recent
      // rows are guaranteed resident together (cache capacity >= 2).
      const double ej = f(cache.row(j)) - y(j);
      const std::vector<double>& k_i = cache.row(i);
      const double ai_old = alpha[i];
      const double aj_old = alpha[j];
      double lo;
      double hi;
      if (dataset.label(i) != dataset.label(j)) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      const double k_ij = k_i[j];
      const double eta = 2.0 * k_ij - cache.diag(i) - cache.diag(j);
      if (eta >= 0) continue;
      double aj = aj_old - y(j) * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-6) continue;
      const double ai = ai_old + y(i) * y(j) * (aj_old - aj);
      alpha[i] = ai;
      alpha[j] = aj;
      const double b1 = b - ei - y(i) * (ai - ai_old) * cache.diag(i) -
                        y(j) * (aj - aj_old) * k_ij;
      const double b2 = b - ej - y(i) * (ai - ai_old) * k_ij -
                        y(j) * (aj - aj_old) * cache.diag(j);
      if (ai > 0 && ai < c) {
        b = b1;
      } else if (aj > 0 && aj < c) {
        b = b2;
      } else {
        b = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  support_x_.clear();
  support_alpha_y_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-9) {
      support_x_.emplace_back(dataset.row(i).begin(), dataset.row(i).end());
      support_alpha_y_.push_back(alpha[i] * y(i));
    }
  }
  bias_ = b;
  if (support_x_.empty()) {
    // Degenerate convergence: fall back to a majority-vote bias.
    bias_ = dataset.count_label(1) >= dataset.count_label(-1) ? 1.0 : -1.0;
  }
}

double SvmClassifier::decision_value(std::span<const double> x) const {
  if (!trained() && support_x_.empty()) {
    return bias_;  // degenerate majority model
  }
  double sum = bias_;
  for (std::size_t i = 0; i < support_x_.size(); ++i) {
    sum += support_alpha_y_[i] * kernel_eval(config_.kernel, support_x_[i], x);
  }
  return sum;
}

}  // namespace ssresf::ml
