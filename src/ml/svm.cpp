#include "ml/svm.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace ssresf::ml {

double kernel_eval(const KernelConfig& kernel, std::span<const double> a,
                   std::span<const double> b) {
  if (a.size() != b.size()) throw InvalidArgument("kernel operand size mismatch");
  switch (kernel.type) {
    case KernelType::kLinear: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return dot;
    }
    case KernelType::kRbf: {
      double dist2 = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        dist2 += d * d;
      }
      return std::exp(-kernel.gamma * dist2);
    }
    case KernelType::kPoly: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return std::pow(kernel.gamma * dot + kernel.coef0, kernel.degree);
    }
  }
  throw InvalidArgument("unknown kernel type");
}

void SvmClassifier::train(const Dataset& dataset) {
  const std::size_t n = dataset.size();
  if (n == 0) throw InvalidArgument("SVM needs at least one sample");
  if (dataset.count_label(1) == 0 || dataset.count_label(-1) == 0) {
    // Single-class dataset (e.g. a campaign that observed no soft errors):
    // the constant majority classifier, reusing the degenerate-convergence
    // representation (no support vectors, bias carries the vote).
    support_x_.clear();
    support_alpha_y_.clear();
    bias_ = dataset.count_label(1) >= dataset.count_label(-1) ? 1.0 : -1.0;
    return;
  }
  if (n < 2) throw InvalidArgument("SVM needs at least two samples");

  // Full kernel matrix cache (n is at most a few thousand in SSRESF).
  if (n > 8192) throw InvalidArgument("dataset too large for the kernel cache");
  std::vector<double> k(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel_eval(config_.kernel, dataset.row(i), dataset.row(j));
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
  }
  const auto y = [&](std::size_t i) {
    return static_cast<double>(dataset.label(i));
  };

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  const double c = config_.c;
  const double tol = config_.tolerance;
  util::Rng rng(config_.seed);

  auto f = [&](std::size_t i) {
    double sum = b;
    for (std::size_t j = 0; j < n; ++j) {
      if (alpha[j] != 0.0) sum += alpha[j] * y(j) * k[j * n + i];
    }
    return sum;
  };

  int passes = 0;
  int iterations = 0;
  while (passes < config_.max_passes && iterations < config_.max_iterations) {
    int changed = 0;
    for (std::size_t i = 0; i < n && iterations < config_.max_iterations; ++i) {
      ++iterations;
      const double ei = f(i) - y(i);
      const bool violates = (y(i) * ei < -tol && alpha[i] < c) ||
                            (y(i) * ei > tol && alpha[i] > 0);
      if (!violates) continue;
      std::size_t j = static_cast<std::size_t>(rng.below(n - 1));
      if (j >= i) ++j;
      const double ej = f(j) - y(j);
      const double ai_old = alpha[i];
      const double aj_old = alpha[j];
      double lo;
      double hi;
      if (dataset.label(i) != dataset.label(j)) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      const double eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
      if (eta >= 0) continue;
      double aj = aj_old - y(j) * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-6) continue;
      const double ai = ai_old + y(i) * y(j) * (aj_old - aj);
      alpha[i] = ai;
      alpha[j] = aj;
      const double b1 = b - ei - y(i) * (ai - ai_old) * k[i * n + i] -
                        y(j) * (aj - aj_old) * k[i * n + j];
      const double b2 = b - ej - y(i) * (ai - ai_old) * k[i * n + j] -
                        y(j) * (aj - aj_old) * k[j * n + j];
      if (ai > 0 && ai < c) {
        b = b1;
      } else if (aj > 0 && aj < c) {
        b = b2;
      } else {
        b = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  support_x_.clear();
  support_alpha_y_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-9) {
      support_x_.emplace_back(dataset.row(i).begin(), dataset.row(i).end());
      support_alpha_y_.push_back(alpha[i] * y(i));
    }
  }
  bias_ = b;
  if (support_x_.empty()) {
    // Degenerate convergence: fall back to a majority-vote bias.
    bias_ = dataset.count_label(1) >= dataset.count_label(-1) ? 1.0 : -1.0;
  }
}

double SvmClassifier::decision_value(std::span<const double> x) const {
  if (!trained() && support_x_.empty()) {
    return bias_;  // degenerate majority model
  }
  double sum = bias_;
  for (std::size_t i = 0; i < support_x_.size(); ++i) {
    sum += support_alpha_y_[i] * kernel_eval(config_.kernel, support_x_[i], x);
  }
  return sum;
}

}  // namespace ssresf::ml
