#pragma once

#include "ml/metrics.h"
#include "ml/scaler.h"

namespace ssresf::ml {

/// Result of a k-fold cross-validation run.
struct CvResult {
  std::vector<double> fold_accuracies;
  ConfusionMatrix aggregate;  // summed over held-out folds
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  /// Held-out decision values + labels, for ROC plotting (Fig. 6).
  std::vector<double> decision_values;
  std::vector<int> labels;
};

/// Stratified k-fold cross-validation: per fold, fit a MinMaxScaler and the
/// SVM on the training split, evaluate on the held-out split.
[[nodiscard]] CvResult cross_validate(const Dataset& dataset,
                                      const SvmConfig& config, int folds,
                                      util::Rng& rng);

/// Grid search over (C, gamma) with k-fold CV, as in Sec. IV-B.
struct GridPoint {
  double c = 0.0;
  double gamma = 0.0;
  double score = 0.0;
};

struct GridSearchResult {
  SvmConfig best;
  double best_score = 0.0;
  std::vector<GridPoint> grid;
};

[[nodiscard]] GridSearchResult grid_search(const Dataset& dataset,
                                           const SvmConfig& base,
                                           std::span<const double> c_values,
                                           std::span<const double> gamma_values,
                                           int folds, util::Rng& rng);

}  // namespace ssresf::ml
