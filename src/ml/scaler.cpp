#include "ml/scaler.h"

#include <algorithm>
#include <cmath>

#include "util/bytes.h"
#include "util/error.h"

namespace ssresf::ml {

void MinMaxScaler::encode(util::ByteWriter& out) const {
  out.f64_vec(min_);
  out.f64_vec(max_);
}

MinMaxScaler MinMaxScaler::decode(util::ByteReader& in) {
  MinMaxScaler scaler;
  scaler.min_ = in.f64_vec();
  scaler.max_ = in.f64_vec();
  if (scaler.min_.size() != scaler.max_.size()) {
    throw InvalidArgument("scaler: min/max bound count mismatch");
  }
  return scaler;
}

void MinMaxScaler::fit(const Dataset& dataset) {
  if (dataset.size() == 0) throw InvalidArgument("fit on empty dataset");
  const std::size_t nf = dataset.num_features();
  min_.assign(nf, std::numeric_limits<double>::infinity());
  max_.assign(nf, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto row = dataset.row(i);
    for (std::size_t f = 0; f < nf; ++f) {
      min_[f] = std::min(min_[f], row[f]);
      max_[f] = std::max(max_[f], row[f]);
    }
  }
}

std::vector<double> MinMaxScaler::transform_row(
    std::span<const double> row) const {
  if (row.size() != min_.size()) {
    throw InvalidArgument("scaler/row feature count mismatch");
  }
  std::vector<double> out(row.size());
  for (std::size_t f = 0; f < row.size(); ++f) {
    const double range = max_[f] - min_[f];
    out[f] = range > 0 ? (row[f] - min_[f]) / range : 0.0;
  }
  return out;
}

void MinMaxScaler::transform(Dataset& dataset) const {
  for (auto& row : dataset.mutable_rows()) {
    const auto scaled = transform_row(row);
    row.assign(scaled.begin(), scaled.end());
  }
}

void StandardScaler::fit(const Dataset& dataset) {
  if (dataset.size() == 0) throw InvalidArgument("fit on empty dataset");
  const std::size_t nf = dataset.num_features();
  mean_.assign(nf, 0.0);
  stddev_.assign(nf, 0.0);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto row = dataset.row(i);
    for (std::size_t f = 0; f < nf; ++f) mean_[f] += row[f];
  }
  for (double& m : mean_) m /= static_cast<double>(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto row = dataset.row(i);
    for (std::size_t f = 0; f < nf; ++f) {
      const double d = row[f] - mean_[f];
      stddev_[f] += d * d;
    }
  }
  for (double& s : stddev_) {
    s = std::sqrt(s / static_cast<double>(dataset.size()));
  }
}

std::vector<double> StandardScaler::transform_row(
    std::span<const double> row) const {
  if (row.size() != mean_.size()) {
    throw InvalidArgument("scaler/row feature count mismatch");
  }
  std::vector<double> out(row.size());
  for (std::size_t f = 0; f < row.size(); ++f) {
    out[f] = stddev_[f] > 0 ? (row[f] - mean_[f]) / stddev_[f] : 0.0;
  }
  return out;
}

void StandardScaler::transform(Dataset& dataset) const {
  for (auto& row : dataset.mutable_rows()) {
    const auto scaled = transform_row(row);
    row.assign(scaled.begin(), scaled.end());
  }
}

}  // namespace ssresf::ml
