#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace ssresf::ml {

/// A dense labeled dataset with +1 / -1 labels (high / low sensitivity).
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names)
      : feature_names_(std::move(feature_names)) {}

  void add(std::vector<double> row, int label);

  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_features() const {
    return rows_.empty() ? feature_names_.size() : rows_[0].size();
  }
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return rows_[i];
  }
  [[nodiscard]] int label(std::size_t i) const { return labels_[i]; }
  [[nodiscard]] const std::vector<int>& labels() const { return labels_; }
  [[nodiscard]] const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  [[nodiscard]] std::size_t count_label(int label) const;

  /// Rows at `indices`, preserving order.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Keeps only the listed feature columns (projection for feature
  /// selection).
  [[nodiscard]] Dataset project(std::span<const int> features) const;

  /// Mutable access for in-place scaling.
  [[nodiscard]] std::vector<std::vector<double>>& mutable_rows() {
    return rows_;
  }

 private:
  std::vector<std::string> feature_names_;
  std::vector<std::vector<double>> rows_;
  std::vector<int> labels_;
};

/// Stratified k-fold split: each fold receives a proportional share of both
/// classes, shuffled deterministically by `rng`. Returns k index lists.
[[nodiscard]] std::vector<std::vector<std::size_t>> stratified_kfold(
    const Dataset& dataset, int folds, util::Rng& rng);

}  // namespace ssresf::ml
