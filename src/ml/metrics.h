#pragma once

#include <span>

#include "ml/svm.h"

namespace ssresf::ml {

/// Binary confusion matrix and the derived indicators the paper reports in
/// Table II (TNR, TPR, precision, accuracy, F1).
struct ConfusionMatrix {
  std::size_t tp = 0;
  std::size_t tn = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;

  void add(int truth, int predicted);
  ConfusionMatrix& operator+=(const ConfusionMatrix& other);

  [[nodiscard]] std::size_t total() const { return tp + tn + fp + fn; }
  [[nodiscard]] double tpr() const;        // recall / sensitivity
  [[nodiscard]] double tnr() const;        // specificity
  [[nodiscard]] double precision() const;
  [[nodiscard]] double accuracy() const;
  [[nodiscard]] double f1() const;
};

/// Confusion matrix of a trained classifier over a dataset.
[[nodiscard]] ConfusionMatrix evaluate(const SvmClassifier& model,
                                       const Dataset& dataset);

/// One point of a ROC curve.
struct RocPoint {
  double fpr = 0.0;
  double tpr = 0.0;
  double threshold = 0.0;
};

/// ROC curve from decision values: thresholds sweep the sorted scores;
/// points are ordered by increasing FPR (Fig. 6).
[[nodiscard]] std::vector<RocPoint> roc_curve(
    std::span<const double> decision_values, std::span<const int> labels);

/// Area under the ROC curve (trapezoidal).
[[nodiscard]] double roc_auc(std::span<const RocPoint> curve);

}  // namespace ssresf::ml
