#include "ml/feature_selection.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace ssresf::ml {

std::vector<double> fisher_scores(const Dataset& dataset) {
  const std::size_t nf = dataset.num_features();
  std::vector<double> mean_pos(nf, 0.0);
  std::vector<double> mean_neg(nf, 0.0);
  std::vector<double> var_pos(nf, 0.0);
  std::vector<double> var_neg(nf, 0.0);
  const double n_pos = static_cast<double>(dataset.count_label(1));
  const double n_neg = static_cast<double>(dataset.count_label(-1));
  if (n_pos == 0 || n_neg == 0) {
    throw InvalidArgument("fisher_scores needs both classes");
  }
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto row = dataset.row(i);
    auto& mean = dataset.label(i) == 1 ? mean_pos : mean_neg;
    for (std::size_t f = 0; f < nf; ++f) mean[f] += row[f];
  }
  for (std::size_t f = 0; f < nf; ++f) {
    mean_pos[f] /= n_pos;
    mean_neg[f] /= n_neg;
  }
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const auto row = dataset.row(i);
    const bool pos = dataset.label(i) == 1;
    for (std::size_t f = 0; f < nf; ++f) {
      const double d = row[f] - (pos ? mean_pos[f] : mean_neg[f]);
      (pos ? var_pos[f] : var_neg[f]) += d * d;
    }
  }
  std::vector<double> scores(nf, 0.0);
  for (std::size_t f = 0; f < nf; ++f) {
    const double denom = var_pos[f] / n_pos + var_neg[f] / n_neg;
    const double num =
        (mean_pos[f] - mean_neg[f]) * (mean_pos[f] - mean_neg[f]);
    scores[f] = denom > 0 ? num / denom : 0.0;
  }
  return scores;
}

FeatureSelectionResult select_features(const Dataset& dataset,
                                       const SvmConfig& config, int folds,
                                       util::Rng& rng) {
  const auto scores = fisher_scores(dataset);
  FeatureSelectionResult result;
  result.ranked.resize(scores.size());
  std::iota(result.ranked.begin(), result.ranked.end(), 0);
  std::stable_sort(result.ranked.begin(), result.ranked.end(),
                   [&](int a, int b) {
                     return scores[static_cast<std::size_t>(a)] >
                            scores[static_cast<std::size_t>(b)];
                   });

  std::vector<double> stddevs;
  for (std::size_t k = 1; k <= result.ranked.size(); ++k) {
    const std::span<const int> top(result.ranked.data(), k);
    const Dataset projected = dataset.project(top);
    util::Rng fold_rng = rng.fork();
    const CvResult cv = cross_validate(projected, config, folds, fold_rng);
    result.cv_score_by_count.push_back(cv.mean_accuracy);
    stddevs.push_back(cv.stddev_accuracy);
  }
  // Smallest subset within half a standard deviation of the best score.
  const std::size_t best_index = static_cast<std::size_t>(
      std::max_element(result.cv_score_by_count.begin(),
                       result.cv_score_by_count.end()) -
      result.cv_score_by_count.begin());
  const double floor =
      result.cv_score_by_count[best_index] - 0.5 * stddevs[best_index];
  result.best_count = static_cast<int>(best_index) + 1;
  for (std::size_t k = 0; k <= best_index; ++k) {
    if (result.cv_score_by_count[k] >= floor) {
      result.best_count = static_cast<int>(k) + 1;
      break;
    }
  }
  return result;
}

}  // namespace ssresf::ml
